(* The wavefront command-line tool: predictions, validation runs, parameter
   fitting and figure regeneration for the plug-and-play wavefront model. *)

open Cmdliner
open Wavefront_core

(* --- Shared argument parsing --- *)

let app_names = [ "lu"; "sweep3d"; "chimaera" ]

let app_arg =
  let doc = Fmt.str "Application: %s." (String.concat ", " app_names) in
  Arg.(value & opt (enum (List.map (fun n -> (n, n)) app_names)) "sweep3d"
       & info [ "a"; "app" ] ~docv:"APP" ~doc)

let grid_arg =
  let doc = "Problem size as NX,NY,NZ (or a single N for a cube)." in
  let parse s =
    match String.split_on_char ',' s |> List.map int_of_string_opt with
    | [ Some n ] -> Ok (Wgrid.Data_grid.cube n)
    | [ Some nx; Some ny; Some nz ] -> Ok (Wgrid.Data_grid.v ~nx ~ny ~nz)
    | _ -> Error (`Msg "expected N or NX,NY,NZ")
  in
  let print ppf (g : Wgrid.Data_grid.t) = Wgrid.Data_grid.pp ppf g in
  Arg.(value
       & opt (conv (parse, print)) (Wgrid.Data_grid.cube 240)
       & info [ "g"; "grid" ] ~docv:"GRID" ~doc)

let cores_arg =
  Arg.(value & opt int 1024
       & info [ "p"; "cores" ] ~docv:"P" ~doc:"Total number of cores.")

let cpn_arg =
  Arg.(value & opt int 2
       & info [ "cores-per-node" ] ~docv:"C"
           ~doc:"Cores per node (1, 2, 4, 8 or 16).")

let htile_arg =
  Arg.(value & opt (some float) None
       & info [ "htile" ] ~docv:"H" ~doc:"Override the tile height Htile.")

let wg_arg =
  Arg.(value & opt (some float) None
       & info [ "wg" ] ~docv:"US"
           ~doc:"Override the per-cell computation time Wg (us).")

let iterations_arg =
  Arg.(value & opt (some int) None
       & info [ "iterations" ] ~docv:"N"
           ~doc:"Wavefront iterations per time step.")

let groups_arg =
  Arg.(value & opt int 1
       & info [ "energy-groups" ] ~docv:"N" ~doc:"Energy groups per time step.")

let steps_arg =
  Arg.(value & opt int 1
       & info [ "time-steps" ] ~docv:"N" ~doc:"Time steps in the run.")

let platform_arg =
  let doc = "Platform parameters: xt4 or sp2." in
  Arg.(value
       & opt (enum [ ("xt4", Loggp.Params.xt4); ("sp2", Loggp.Params.sp2) ])
           Loggp.Params.xt4
       & info [ "platform" ] ~docv:"PLATFORM" ~doc)

let spec_arg =
  Arg.(value & opt (some file) None
       & info [ "spec" ] ~docv:"FILE"
           ~doc:
             "Model the application described by a KEY = VALUE spec file \
              instead of a built-in benchmark (see Apps.Spec).")

let make_app ?spec name grid ~htile ~wg ~iterations =
  let app =
    match spec with
    | Some path -> (
        match Apps.Spec.of_file path with
        | Ok app -> app
        | Error (`Msg m) -> Fmt.failwith "%s: %s" path m)
    | None -> (
        match name with
        | "lu" -> Apps.Lu.params ?wg ?iterations grid
        | "sweep3d" -> Apps.Sweep3d.params ?wg ?iterations grid
        | "chimaera" -> Apps.Chimaera.params ?wg ?iterations grid
        | _ -> assert false)
  in
  match htile with Some h -> App_params.with_htile app h | None -> app

let make_cfg platform ~cores ~cpn =
  let platform = Loggp.Params.with_cores_per_node platform cpn in
  Plugplay.config ~cmp:(Wgrid.Cmp.of_cores_per_node cpn) platform ~cores

let engine_arg =
  let doc =
    "Simulation engine: event (the event-level simulator: fibers, bus \
     contention, rank ceiling) or batched (the wave-batched flat-array \
     engine: dataflow cost arithmetic, scales to millions of ranks)."
  in
  Arg.(value & opt (enum Harness.Engine.all) Harness.Engine.Event
       & info [ "engine" ] ~docv:"ENGINE" ~doc)

let no_bus_arg =
  Arg.(value & flag
       & info [ "no-bus" ]
           ~doc:
             "Switch off the shared-bus contention layer (event engine: the \
              per-node bus clock; batched engine: the closed-form Table-6 \
              interference charges). With single-core nodes the bus never \
              fires, so this flag changes nothing.")

(* The event engine's rank ceiling, as a CLI error instead of an escaped
   exception: the registered printer already points at --engine=batched. *)
let or_rank_ceiling f =
  try f ()
  with Xtsim.Wavefront_sim.Rank_ceiling _ as e ->
    Fmt.epr "wavefront: %s@." (Printexc.to_string e);
    exit 2

let waves_of (app : App_params.t) =
  Sweeps.Schedule.nsweeps app.schedule
  * Wgrid.Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile

(* --- Observability context: --metrics-out / --ledger, every subcommand --- *)

(* Parsed once per invocation; the start-of-run runtime sample is taken
   when Cmdliner evaluates the term, so the ledger's duration and
   runtime section cover everything from argument parsing on. *)
module Obs_ctx = struct
  type t = {
    metrics_out : string option;
    ledger_path : string option;
    no_ledger : bool;
    t0 : float;  (* unix seconds; the ledger record's timestamp *)
    start : Obs.Runtime.sample;
  }

  let term =
    let metrics_out =
      Arg.(value & opt (some string) None
           & info [ "metrics-out" ] ~docv:"FILE"
               ~doc:
                 "Write an OpenMetrics/Prometheus text exposition of the \
                  run's metrics (runtime gauges, outcome numbers, any \
                  registry the subcommand kept) to FILE, labelled with the \
                  subcommand and engine.")
    in
    let ledger =
      Arg.(value & opt (some string) None
           & info [ "ledger" ] ~docv:"FILE"
               ~doc:
                 (Fmt.str
                    "Run-ledger file this invocation is appended to \
                     (default %s)."
                    Obs.Ledger.default_path))
    in
    let no_ledger =
      Arg.(value & flag
           & info [ "no-ledger" ]
               ~doc:"Do not append this invocation to the run ledger.")
    in
    let make metrics_out ledger_path no_ledger =
      {
        metrics_out;
        ledger_path;
        no_ledger;
        t0 = Unix.gettimeofday ();
        start = Obs.Runtime.sample ();
      }
    in
    Term.(const make $ metrics_out $ ledger $ no_ledger)

  (* Record the invocation: an OpenMetrics exposition when asked for, one
     ledger line unless opted out. [kv] holds the subcommand's key outcome
     numbers — exposed as outcome.* gauges and judged by `runs compare`;
     [metrics] is an existing registry to expose alongside them; [config]
     is a canonical argument string (hashed, so `runs list` can group
     like-for-like runs); [spec] the --spec file to digest. Write
     failures are warnings: observability must not fail the run it
     records. *)
  let finish ?metrics ?(engine = "") ?spec ?config ?(kv = []) ctx subcommand =
    let d = Obs.Runtime.delta ctx.start (Obs.Runtime.sample ()) in
    (match ctx.metrics_out with
    | None -> ()
    | Some path -> (
        let reg =
          match metrics with Some m -> m | None -> Obs.Metrics.create ()
        in
        List.iter
          (fun (k, v) ->
            Obs.Metrics.set (Obs.Metrics.gauge reg ("outcome." ^ k)) v)
          kv;
        Obs.Runtime.to_metrics reg d;
        let labels =
          ("subcommand", subcommand)
          :: (if engine = "" then [] else [ ("engine", engine) ])
        in
        match open_out path with
        | exception Sys_error m ->
            Fmt.epr "wavefront: cannot write metrics: %s@." m
        | oc ->
            output_string oc (Obs.Openmetrics.render ~labels reg);
            close_out oc;
            Fmt.pr "metrics written to %s@." path));
    if not ctx.no_ledger then begin
      let config_hash =
        match config with
        | None -> ""
        | Some c -> String.sub (Digest.to_hex (Digest.string c)) 0 12
      in
      let spec_digest =
        match spec with
        | None -> ""
        | Some p -> ( try Digest.to_hex (Digest.file p) with Sys_error _ -> "")
      in
      let r =
        Obs.Ledger.v ~engine ~config_hash ~spec_digest
          ~git:(Obs.Ledger.git_describe ()) ~metrics:kv
          ~runtime:(Obs.Runtime.delta_kv d) ~timestamp:ctx.t0
          ~duration_s:d.Obs.Runtime.wall_s subcommand
      in
      match Obs.Ledger.append ?path:ctx.ledger_path r with
      | Ok () -> ()
      | Error m -> Fmt.epr "wavefront: ledger: %s@." m
    end

  let engine_name : Harness.Engine.t -> string = function
    | Event -> "event"
    | Batched -> "batched"
end

let bool01 b = if b then 1.0 else 0.0

(* --- predict --- *)

let predict spec app_name grid cores cpn htile wg iterations groups steps
    platform ctx =
  let app = make_app ?spec app_name grid ~htile ~wg ~iterations in
  let cfg = make_cfg platform ~cores ~cpn in
  let r = Plugplay.iteration app cfg in
  let run = Predictor.run ~energy_groups:groups ~time_steps:steps () in
  let total = Predictor.total_time ~run app cfg in
  Fmt.pr "@[<v>%a@,@,platform: %s, %d cores (%d/node)@,%a@,@,\
          per time step: %a (%d iterations x %d groups)@,\
          total (%d steps): %a (%.2f days)@]@."
    App_params.pp app platform.Loggp.Params.name cores cpn Plugplay.pp_result
    r Units.pp_time
    (float_of_int groups *. Predictor.time_step_time app cfg)
    app.iterations groups steps Units.pp_time total (Units.to_days total);
  Obs_ctx.finish ?spec
    ~config:
      (Fmt.str "%s|%a|p%d|c%d|%s" app.App_params.name Wgrid.Data_grid.pp
         app.grid cores cpn platform.Loggp.Params.name)
    ~kv:[ ("t_iteration", r.t_iteration); ("total_us", total) ]
    ctx "predict"

let predict_cmd =
  let doc = "Predict wavefront execution time with the plug-and-play model" in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(const predict $ spec_arg $ app_arg $ grid_arg $ cores_arg $ cpn_arg
          $ htile_arg $ wg_arg $ iterations_arg $ groups_arg $ steps_arg
          $ platform_arg $ Obs_ctx.term)

(* --- explain --- *)

let explain spec app_name grid cores cpn htile wg iterations platform ctx =
  let app = make_app ?spec app_name grid ~htile ~wg ~iterations in
  let cfg = make_cfg platform ~cores ~cpn in
  Fmt.pr "%a@." (fun ppf () -> Explain.worksheet ppf app cfg) ();
  Fmt.pr "@.%a@." Sensitivity.pp (Sensitivity.analyze app cfg);
  Obs_ctx.finish ?spec
    ~config:
      (Fmt.str "%s|%a|p%d|c%d|%s" app.App_params.name Wgrid.Data_grid.pp
         app.grid cores cpn platform.Loggp.Params.name)
    ~kv:[ ("t_iteration", Plugplay.time_per_iteration app cfg) ]
    ctx "explain"

let explain_cmd =
  let doc = "Show the full model worksheet and input sensitivities" in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const explain $ spec_arg $ app_arg $ grid_arg $ cores_arg $ cpn_arg
          $ htile_arg $ wg_arg $ iterations_arg $ platform_arg $ Obs_ctx.term)

(* --- simulate --- *)

let simulate spec app_name grid cores cpn htile wg iterations engine no_bus
    domains max_ranks tl_json tl_csv ctx =
  if domains < 1 then begin
    Fmt.epr "wavefront: --domains must be at least 1@.";
    exit 2
  end;
  let app = make_app ?spec app_name grid ~htile ~wg ~iterations in
  let pg = Wgrid.Proc_grid.of_cores cores in
  let cmp = Wgrid.Cmp.of_cores_per_node cpn in
  let cfg = make_cfg Loggp.Params.xt4 ~cores ~cpn in
  let model = Plugplay.time_per_iteration app cfg in
  let model_line per_iteration =
    Fmt.pr "model prediction: %a/iteration (error %+.2f%%)@." Units.pp_time
      model
      (100.0 *. (model -. per_iteration) /. per_iteration)
  in
  let write path emit what =
    match open_out path with
    | exception Sys_error m ->
        Fmt.epr "wavefront: cannot write %s: %s@." what m;
        exit 1
    | oc ->
        emit (output_string oc);
        close_out oc;
        Fmt.pr "%s written to %s@." what path
  in
  let finish kv =
    Obs_ctx.finish ?spec
      ~engine:(Obs_ctx.engine_name engine)
      ~config:
        (Fmt.str "%s|%a|p%d|c%d|bus%b|d%d" app.App_params.name
           Wgrid.Data_grid.pp app.grid cores cpn (not no_bus) domains)
      ~kv ctx "simulate"
  in
  match (engine : Harness.Engine.t) with
  | Event ->
      let machine =
        Xtsim.Machine.v ~model_bus:(not no_bus) ~cmp Loggp.Params.xt4 pg
      in
      Fmt.pr "simulating %s on %a...@." app.App_params.name Xtsim.Machine.pp
        machine;
      let o =
        or_rank_ceiling (fun () ->
            Xtsim.Wavefront_sim.run ?max_ranks machine app)
      in
      Fmt.pr "%a@." Xtsim.Wavefront_sim.pp_outcome o;
      model_line o.per_iteration;
      finish
        [ ("per_iteration", o.per_iteration); ("elapsed", o.elapsed);
          ("events", float_of_int o.events) ]
  | Batched ->
      let costs =
        Wrun.Costs.loggp ~model_bus:(not no_bus) ~cmp Loggp.Params.xt4 pg app
      in
      Fmt.pr "simulating %s on %a (wave-batched, %d domain(s))...@."
        app.App_params.name Wgrid.Proc_grid.pp pg domains;
      (* Stream per-cell analytics into the bounded accumulator; the
         dense grid is out of reach at the rank counts this engine is
         for. *)
      let stream =
        Obs.Timeline_stream.create ~ranks:cores ~waves:(waves_of app) ()
      in
      let o =
        Wrun.Batched.run ~cells:(Obs.Timeline_stream.sink stream) ~domains
          ~costs pg app
      in
      Fmt.pr "%a@." Wrun.Batched.pp_outcome o;
      model_line o.per_iteration;
      let total m =
        let acc = ref 0.0 in
        for col = 0 to o.waves do
          acc := !acc +. Obs.Timeline_stream.column_total stream m col
        done;
        !acc
      in
      Fmt.pr
        "streamed analytics: %d cells into a %dx%d bucket grid; totals \
         busy %a, wait %a, idle %a@."
        (Obs.Timeline_stream.cells stream)
        (Obs.Timeline_stream.rank_buckets stream)
        (Obs.Timeline_stream.wave_buckets stream)
        Units.pp_time (total Obs.Timeline.Busy) Units.pp_time
        (total Obs.Timeline.Wait) Units.pp_time (total Obs.Timeline.Idle);
      Option.iter
        (fun p ->
          write p
            (fun w -> Obs.Timeline_stream.emit_json ~label:"simulate" stream w)
            "timeline-stream JSON")
        tl_json;
      Option.iter
        (fun p ->
          write p
            (fun w -> Obs.Timeline_stream.emit_csv stream w)
            "timeline-stream CSV")
        tl_csv;
      finish
        [ ("per_iteration", o.per_iteration); ("elapsed", o.elapsed);
          ("messages", float_of_int o.messages);
          ("completed", bool01 o.completed) ]

let simulate_cmd =
  let doc =
    "Execute the wavefront code on the simulated machine (event-level or \
     wave-batched engine)"
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:
               "Shard the batched engine's ranks across N OCaml domains \
                (results are bitwise-identical for every N; event engine: \
                ignored).")
  in
  let max_ranks =
    Arg.(value & opt (some int) None
         & info [ "max-ranks" ] ~docv:"N"
             ~doc:
               (Fmt.str
                  "Raise (or lower) the event engine's rank ceiling \
                   (default %d)."
                  Xtsim.Wavefront_sim.default_max_ranks))
  in
  let tl_json =
    Arg.(value & opt (some string) None
         & info [ "timeline-json" ] ~docv:"FILE"
             ~doc:
               "Write the batched engine's streamed timeline analytics as \
                chunked JSON (schema wavefront-timeline-stream/v1).")
  in
  let tl_csv =
    Arg.(value & opt (some string) None
         & info [ "timeline-csv" ] ~docv:"FILE"
             ~doc:
               "Write the batched engine's streamed timeline analytics as \
                chunked CSV.")
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const simulate $ spec_arg $ app_arg $ grid_arg $ cores_arg $ cpn_arg
          $ htile_arg $ wg_arg $ iterations_arg $ engine_arg $ no_bus_arg
          $ domains $ max_ranks $ tl_json $ tl_csv $ Obs_ctx.term)

(* --- validate --- *)

let validate spec app_name grid cores htile wg iterations ctx =
  let app = make_app ?spec app_name grid ~htile ~wg ~iterations in
  let pg = Wgrid.Proc_grid.of_cores cores in
  Fmt.pr "validating %s on %a (reference dataflow backend)...@."
    app.App_params.name Wgrid.Proc_grid.pp pg;
  let t0 = Unix.gettimeofday () in
  let o = Wrun.Dataflow.run pg app in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Fmt.pr "%a (%.0f ms)@." Wrun.Dataflow.pp_outcome o elapsed_ms;
  List.iter (fun m -> Fmt.epr "  mismatch: %s@." m) o.mismatches;
  Obs_ctx.finish ?spec
    ~config:
      (Fmt.str "%s|%a|p%d" app.App_params.name Wgrid.Data_grid.pp app.grid
         cores)
    ~kv:
      [ ("completed", bool01 o.completed); ("wall_ms", elapsed_ms);
        ("mismatches", float_of_int (List.length o.mismatches)) ]
    ctx "validate";
  if not o.completed || o.mismatches <> [] then exit 1

let validate_cmd =
  let doc =
    "Check a schedule deadlocks nowhere and every rank agrees on the \
     message sequence, on the fast reference dataflow backend (no \
     simulation clock; scales to 100K+ ranks)"
  in
  Cmd.v (Cmd.info "validate" ~doc)
    Term.(const validate $ spec_arg $ app_arg $ grid_arg $ cores_arg
          $ htile_arg $ wg_arg $ iterations_arg $ Obs_ctx.term)

(* --- figure --- *)

let scale_arg =
  Arg.(value & flag
       & info [ "full" ]
           ~doc:"Include the large (slow) simulation points.")

let csv_arg =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~docv:"DIR"
           ~doc:"Also write each table as DIR/<id>.csv.")

let write_csv dir (t : Harness.Table.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (String.lowercase_ascii t.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (Harness.Table.to_csv t);
  close_out oc;
  Fmt.pr "wrote %s@." path

let figure ids full csv ctx =
  let scale = if full then Harness.Experiments.Full else Quick in
  let run_id (_id, f) =
    let artifacts = f () in
    List.iter (Harness.Experiments.render_artifact Fmt.stdout) artifacts;
    Option.iter
      (fun dir ->
        List.iter
          (function
            | Harness.Experiments.Table t -> write_csv dir t
            | Plot _ -> ())
          artifacts)
      csv
  in
  (match ids with
  | [] -> List.iter run_id (Harness.Experiments.all ~scale ())
  | ids ->
      List.iter
        (fun id ->
          match Harness.Experiments.find ~scale id with
          | Some f -> run_id (id, f)
          | None -> Fmt.invalid_arg "unknown experiment %S" id)
        ids);
  Obs_ctx.finish
    ~config:(Fmt.str "%s|full%b" (String.concat "," ids) full)
    ~kv:[ ("experiments", float_of_int (max 1 (List.length ids))) ]
    ctx "figure"

let figure_cmd =
  let doc = "Regenerate the paper's tables and figures (all, or by id)" in
  let ids =
    Arg.(value & pos_all string []
         & info [] ~docv:"ID"
             ~doc:
               (Fmt.str "Experiment ids: %s."
                  (String.concat ", " (Harness.Experiments.ids ()))))
  in
  Cmd.v (Cmd.info "figure" ~doc)
    Term.(const figure $ ids $ scale_arg $ csv_arg $ Obs_ctx.term)

(* --- scale --- *)

let scaling app_name grid cpn htile wg iterations ctx =
  let app = make_app app_name grid ~htile ~wg ~iterations in
  let rows =
    Metrics.strong_scaling ~cmp:(Wgrid.Cmp.of_cores_per_node cpn)
      ~platform:Loggp.Params.xt4
      ~core_counts:[ 64; 256; 1024; 4096; 16384; 65536 ]
      app
  in
  Fmt.pr "%a on the XT4 (%d cores/node):@." App_params.pp app cpn;
  Fmt.pr "  %8s %14s %10s %10s@." "cores" "t/iter" "speedup" "efficiency";
  List.iter
    (fun (r : Metrics.scaling_row) ->
      Fmt.pr "  %8d %14s %10.1f %9.1f%%@." r.cores
        (Fmt.str "%a" Units.pp_time r.t_iteration)
        r.speedup (100.0 *. r.efficiency))
    rows;
  Obs_ctx.finish
    ~config:
      (Fmt.str "%s|%a|c%d" app.App_params.name Wgrid.Data_grid.pp app.grid
         cpn)
    ~kv:[ ("rows", float_of_int (List.length rows)) ]
    ctx "scale"

let scale_cmd =
  let doc = "Strong-scaling table: time, speedup, efficiency" in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(const scaling $ app_arg $ grid_arg $ cpn_arg $ htile_arg $ wg_arg
          $ iterations_arg $ Obs_ctx.term)

(* --- report --- *)

let report app_name grid cores cpn htile wg iterations trace_csv ctx =
  let app = make_app app_name grid ~htile ~wg ~iterations in
  let pg = Wgrid.Proc_grid.of_cores cores in
  let cmp = Wgrid.Cmp.of_cores_per_node cpn in
  let machine = Xtsim.Machine.v ~cmp Loggp.Params.xt4 pg in
  let est = Xtsim.Wavefront_sim.estimated_events machine app ~iterations:1 in
  Fmt.pr "simulating %s on %a (~%d events)...@." app.App_params.name
    Xtsim.Machine.pp machine est;
  let trace = Xtsim.Trace.create () in
  let o = Xtsim.Wavefront_sim.run ~trace machine app in
  Fmt.pr "%a@.@." Xtsim.Wavefront_sim.pp_outcome o;
  Fmt.pr "%a@.@." Xtsim.Report.pp (Xtsim.Report.of_outcome machine o);
  Fmt.pr "message mix:@.";
  List.iter
    (fun (proto, n) -> Fmt.pr "  %-10s %d@." proto n)
    (Xtsim.Trace.by_protocol trace);
  (match trace_csv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Xtsim.Trace.to_csv trace);
      close_out oc;
      Fmt.pr "trace written to %s (%d of %d messages)@." path
        (Xtsim.Trace.recorded trace) (Xtsim.Trace.total trace));
  Obs_ctx.finish ~engine:"event"
    ~config:
      (Fmt.str "%s|%a|p%d|c%d" app.App_params.name Wgrid.Data_grid.pp
         app.grid cores cpn)
    ~kv:[ ("per_iteration", o.per_iteration); ("elapsed", o.elapsed) ]
    ctx "report"

let report_cmd =
  let doc = "Simulate a run and report utilization and message mix" in
  let trace_csv =
    Arg.(value & opt (some string) None
         & info [ "trace-csv" ] ~docv:"FILE"
             ~doc:"Write the message trace as CSV.")
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const report $ app_arg $ grid_arg $ cores_arg $ cpn_arg $ htile_arg
          $ wg_arg $ iterations_arg $ trace_csv $ Obs_ctx.term)

(* --- profile --- *)

let profile spec app_name grid cores cpn htile wg iterations platform real
    capacity trace_out ctx =
  (match capacity with
  | Some c when c < 1 ->
      Fmt.epr "wavefront: --capacity must be at least 1@.";
      exit 2
  | _ -> ());
  let app = make_app ?spec app_name grid ~htile ~wg ~iterations in
  let cfg = make_cfg platform ~cores ~cpn in
  Fmt.pr "profiling %s on %d cores (%d/node, %s)...@." app.App_params.name
    cores cpn platform.Loggp.Params.name;
  let p = Harness.Profile.run ~real ?capacity cfg app in
  Fmt.pr "%a@." Harness.Profile.pp p;
  (match trace_out with
  | None -> ()
  | Some path -> (
      match open_out path with
      | exception Sys_error m ->
          Fmt.epr "wavefront: cannot write trace: %s@." m;
          exit 1
      | oc ->
          output_string oc (Harness.Profile.trace_json p);
          close_out oc;
          let dropped = p.sim_dropped + p.real_dropped in
          Fmt.pr
            "trace written to %s (load in Perfetto / chrome://tracing)%s@."
            path
            (if dropped > 0 then Fmt.str "; %d spans dropped" dropped else "")));
  Obs_ctx.finish ~metrics:p.metrics ~engine:"event" ?spec
    ~config:
      (Fmt.str "%s|%a|p%d|c%d|%s|real%b" app.App_params.name
         Wgrid.Data_grid.pp app.grid cores cpn platform.Loggp.Params.name
         real)
    ~kv:
      [ ("sim_per_iteration", p.sim.per_iteration);
        ("sim_elapsed", p.sim.elapsed) ]
    ctx "profile"

let profile_cmd =
  let doc =
    "Profile one configuration: model vs simulated (vs real) breakdown, \
     message mix, critical path, Chrome trace"
  in
  let real =
    Arg.(value & flag
         & info [ "real" ]
             ~doc:
               "Also execute the transport kernel on one OCaml domain per \
                rank (use small core counts).")
  in
  let capacity =
    Arg.(value & opt (some int) None
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Per-tracer span capacity (drops are reported).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON of the run.")
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const profile $ spec_arg $ app_arg $ grid_arg $ cores_arg $ cpn_arg
          $ htile_arg $ wg_arg $ iterations_arg $ platform_arg $ real
          $ capacity $ trace_out $ Obs_ctx.term)

(* --- perturb --- *)

let perturb spec app_name grid cores cpn htile wg iterations platform engine
    no_bus pspec real capacity ctx =
  (match capacity with
  | Some c when c < 1 ->
      Fmt.epr "wavefront: --capacity must be at least 1@.";
      exit 2
  | _ -> ());
  let app = make_app ?spec app_name grid ~htile ~wg ~iterations in
  (* Precedence: --perturb on the command line, then the spec file's
     perturb stanza, then the zero spec (a do-nothing control run). *)
  let pspec =
    match pspec with
    | Some s -> (
        match Perturb.Spec.of_string s with
        | Ok p -> p
        | Error (`Msg m) ->
            Fmt.epr "wavefront: --perturb: %s@." m;
            exit 2)
    | None -> (
        match spec with
        | None -> Perturb.Spec.zero
        | Some path -> (
            match Apps.Spec.full_of_file path with
            | Ok { perturb = Some p; _ } -> p
            | Ok { perturb = None; _ } -> Perturb.Spec.zero
            | Error (`Msg m) -> Fmt.failwith "%s: %s" path m))
  in
  let cfg = make_cfg platform ~cores ~cpn in
  Fmt.pr "perturbing %s on %d cores (%d/node, %s) with [%a]...@."
    app.App_params.name cores cpn platform.Loggp.Params.name Perturb.Spec.pp
    pspec;
  if Perturb.Spec.is_zero pspec then
    Fmt.pr "(zero spec: control run, expect no deltas)@.";
  let r =
    or_rank_ceiling (fun () ->
        Harness.Perturb_report.run ~real ~model_bus:(not no_bus) ~engine
          ?capacity cfg app pspec)
  in
  Fmt.pr "%a@." Harness.Perturb_report.pp r;
  (* 0 clean, 3 degraded, 4 unrecovered failure — see
     Perturb_report.exit_status. *)
  let status = Harness.Perturb_report.exit_status r in
  Obs_ctx.finish
    ~engine:(Obs_ctx.engine_name engine)
    ?spec
    ~config:
      (Fmt.str "%s|%a|p%d|c%d|%s|%a" app.App_params.name Wgrid.Data_grid.pp
         app.grid cores cpn platform.Loggp.Params.name Perturb.Spec.pp pspec)
    ~kv:
      [ ("per_iteration", r.sim.per_iteration);
        ("base_per_iteration", r.sim_base.per_iteration);
        ("exit_status", float_of_int status) ]
    ctx "perturb";
  match status with 0 -> () | s -> exit s

let perturb_cmd =
  let doc =
    "Evaluate one perturbation spec on every substrate: noise-adjusted \
     model estimate vs perturbed simulation (vs real), dataflow \
     completion under adversarial straggler ordering, and where the \
     injected delay was absorbed"
  in
  let pspec =
    Arg.(value & opt (some string) None
         & info [ "perturb" ] ~docv:"SPEC"
             ~doc:
               "Perturbation clauses, e.g. 'seed=42 noise=uniform:0.2 \
                straggler=3:50 fail=1:10'; overrides the spec file's \
                perturb stanza.")
  in
  let real =
    Arg.(value & flag
         & info [ "real" ]
             ~doc:
               "Also execute the transport kernel, unperturbed then \
                perturbed (resilient), on one OCaml domain per rank (use \
                small core counts).")
  in
  let capacity =
    Arg.(value & opt (some int) None
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Per-tracer span capacity (drops are reported).")
  in
  Cmd.v (Cmd.info "perturb" ~doc)
    Term.(const perturb $ spec_arg $ app_arg $ grid_arg $ cores_arg $ cpn_arg
          $ htile_arg $ wg_arg $ iterations_arg $ platform_arg $ engine_arg
          $ no_bus_arg $ pspec $ real $ capacity $ Obs_ctx.term)

(* --- recover --- *)

let recover spec app_name grid cores cpn htile wg iterations platform engine
    no_bus pspec interval ckpt_cost restart_cost tolerance real
    fail_on_mismatch capacity out ctx =
  (match capacity with
  | Some c when c < 1 ->
      Fmt.epr "wavefront: --capacity must be at least 1@.";
      exit 2
  | _ -> ());
  (match interval with
  | Some k when k < 0 ->
      Fmt.epr "wavefront: --interval must be >= 0@.";
      exit 2
  | _ -> ());
  if ckpt_cost < 0.0 || restart_cost < 0.0 then begin
    Fmt.epr "wavefront: checkpoint and restart costs must be >= 0@.";
    exit 2
  end;
  let app = make_app ?spec app_name grid ~htile ~wg ~iterations in
  let pspec =
    match pspec with
    | Some s -> (
        match Perturb.Spec.of_string s with
        | Ok p -> p
        | Error (`Msg m) ->
            Fmt.epr "wavefront: --perturb: %s@." m;
            exit 2)
    | None -> (
        match spec with
        | None -> Perturb.Spec.zero
        | Some path -> (
            match Apps.Spec.full_of_file path with
            | Ok { perturb = Some p; _ } -> p
            | Ok { perturb = None; _ } -> Perturb.Spec.zero
            | Error (`Msg m) -> Fmt.failwith "%s: %s" path m))
  in
  let cfg = make_cfg platform ~cores ~cpn in
  (* --interval omitted: take the Daly-style optimum for this run. *)
  let interval =
    match interval with
    | Some k -> k
    | None ->
        let r = Plugplay.iteration app cfg in
        let waves =
          Sweeps.Schedule.nsweeps app.schedule
          * Wgrid.Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile
        in
        Perturb.Recover.optimal_interval ~waves ~wave_cost:(r.w +. r.w_pre)
          ~failures:(List.length pspec.failures) ~ckpt_cost
  in
  let policy = Perturb.Recover.v ~ckpt_cost ~restart_cost interval in
  Fmt.pr "recovering %s on %d cores (%d/node, %s) with [%a] under %a...@."
    app.App_params.name cores cpn platform.Loggp.Params.name Perturb.Spec.pp
    pspec Perturb.Recover.pp policy;
  let r =
    or_rank_ceiling (fun () ->
        Harness.Recover_report.run ~real ~model_bus:(not no_bus) ~engine
          ?tolerance ?capacity ~policy cfg app pspec)
  in
  Fmt.pr "%a@." Harness.Recover_report.pp r;
  (match out with
  | None -> ()
  | Some path -> (
      match open_out path with
      | exception Sys_error m ->
          Fmt.epr "wavefront: cannot write report: %s@." m;
          exit 1
      | oc ->
          output_string oc (Fmt.str "%a@." Harness.Recover_report.pp r);
          close_out oc;
          Fmt.pr "report written to %s@." path));
  (* 0 clean, 3 degraded, 4 unrecovered — see Recover_report.exit_status.
     Without --fail-on-mismatch a model-vs-simulated tolerance miss (or a
     real-run grid mismatch) is reported but tolerated. *)
  let status =
    let s = Harness.Recover_report.exit_status r in
    if
      s = 3 && (not fail_on_mismatch)
      && r.dataflow.mismatches = []
      && r.dataflow.orphaned = 0
    then 0
    else s
  in
  Obs_ctx.finish
    ~engine:(Obs_ctx.engine_name engine)
    ?spec
    ~config:
      (Fmt.str "%s|%a|p%d|c%d|%s|%a|%a" app.App_params.name
         Wgrid.Data_grid.pp app.grid cores cpn platform.Loggp.Params.name
         Perturb.Spec.pp pspec Perturb.Recover.pp policy)
    ~kv:
      [ ("predicted_overhead", r.predicted.total);
        ("simulated_overhead", r.simulated.total);
        ("within_tolerance", bool01 r.within_tolerance);
        ("exit_status", float_of_int status) ]
    ctx "recover";
  if status <> 0 then exit status

let recover_cmd =
  let doc =
    "Evaluate a failure spec under checkpoint/rollback recovery on every \
     substrate: closed-form overhead term vs simulated recovery cost (vs \
     the real runtime restoring a killed rank from its snapshot), plus \
     the Daly-style optimal checkpoint interval"
  in
  let pspec =
    Arg.(value & opt (some string) None
         & info [ "perturb" ] ~docv:"SPEC"
             ~doc:
               "Perturbation clauses, e.g. 'seed=42 fail=1:10'; overrides \
                the spec file's perturb stanza.")
  in
  let interval =
    Arg.(value & opt (some int) None
         & info [ "interval" ] ~docv:"K"
             ~doc:
               "Checkpoint every K waves (0 disables recovery; default: \
                the Daly-style optimum for this run).")
  in
  let ckpt_cost =
    Arg.(value & opt float 50.0
         & info [ "ckpt-cost" ] ~docv:"US"
             ~doc:"Modelled cost of taking one checkpoint (us).")
  in
  let restart_cost =
    Arg.(value & opt float 500.0
         & info [ "restart-cost" ] ~docv:"US"
             ~doc:"Modelled cost of respawning a rank from a snapshot (us).")
  in
  let tolerance =
    Arg.(value & opt (some float) None
         & info [ "tolerance" ] ~docv:"FRAC"
             ~doc:
               "Accepted relative gap between simulated and closed-form \
                overhead (default 0.05).")
  in
  let real =
    Arg.(value & flag
         & info [ "real" ]
             ~doc:
               "Also execute the transport kernel under genuine \
                checkpoint/rollback, one OCaml domain per rank (use small \
                core counts).")
  in
  let fail_on_mismatch =
    Arg.(value & flag
         & info [ "fail-on-mismatch" ]
             ~doc:
               "Exit 3 when the simulated overhead misses the closed form \
                beyond --tolerance (or a recovered real run's grid differs \
                from the reference).")
  in
  let capacity =
    Arg.(value & opt (some int) None
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Per-tracer span capacity (drops are reported).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Also write the report to FILE.")
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(const recover $ spec_arg $ app_arg $ grid_arg $ cores_arg $ cpn_arg
          $ htile_arg $ wg_arg $ iterations_arg $ platform_arg $ engine_arg
          $ no_bus_arg $ pspec $ interval $ ckpt_cost $ restart_cost
          $ tolerance $ real $ fail_on_mismatch $ capacity $ out
          $ Obs_ctx.term)

(* --- timeline --- *)

let timeline spec app_name grid cores cpn htile wg iterations platform engine
    real no_bus metric capacity json_out csv_out ctx =
  (match capacity with
  | Some c when c < 1 ->
      Fmt.epr "wavefront: --capacity must be at least 1@.";
      exit 2
  | _ -> ());
  let metric =
    match Obs.Timeline.metric_of_string metric with
    | Some m -> m
    | None ->
        Fmt.epr
          "wavefront: unknown --metric %S (compute, send, recv, wait, idle, \
           busy, total)@."
          metric;
        exit 2
  in
  let app = make_app ?spec app_name grid ~htile ~wg ~iterations in
  let cfg = make_cfg platform ~cores ~cpn in
  Fmt.pr "timeline of %s on %d cores (%d/node, %s)...@." app.App_params.name
    cores cpn platform.Loggp.Params.name;
  let t =
    or_rank_ceiling (fun () ->
        Harness.Timeline_report.run ~real ~model_bus:(not no_bus) ~engine
          ?capacity cfg app)
  in
  Fmt.pr "%a@." (Harness.Timeline_report.pp ~metric) t;
  let write path content what =
    match open_out path with
    | exception Sys_error m ->
        Fmt.epr "wavefront: cannot write %s: %s@." what m;
        exit 1
    | oc ->
        output_string oc content;
        close_out oc;
        Fmt.pr "%s written to %s@." what path
  in
  Option.iter
    (fun p -> write p (Harness.Timeline_report.to_json t) "timeline JSON")
    json_out;
  Option.iter
    (fun p -> write p (Harness.Timeline_report.to_csv t) "timeline CSV")
    csv_out;
  Obs_ctx.finish
    ~engine:(Obs_ctx.engine_name engine)
    ?spec
    ~config:
      (Fmt.str "%s|%a|p%d|c%d|%s|bus%b" app.App_params.name
         Wgrid.Data_grid.pp app.grid cores cpn platform.Loggp.Params.name
         (not no_bus))
    ~kv:
      [ ("t_iteration", t.t_iteration); ("elapsed", t.sim.elapsed);
        ("gap", t.divergence.gap) ]
    ctx "timeline"

let timeline_cmd =
  let doc =
    "Reconstruct per-rank x per-wave timelines (simulated, analytic term \
     schedule, optionally real), render them as heatmaps, and attribute \
     the model's error wave by wave"
  in
  let real =
    Arg.(value & flag
         & info [ "real" ]
             ~doc:
               "Also execute the transport kernel on one OCaml domain per \
                rank and reconstruct its timeline (use small core counts).")
  in
  let no_bus =
    Arg.(value & flag
         & info [ "no-bus" ]
             ~doc:
               "Switch off the simulator's shared-bus contention; with \
                single-core nodes the observed and model timelines then \
                coincide.")
  in
  let metric =
    Arg.(value & opt string "wait"
         & info [ "metric" ] ~docv:"M"
             ~doc:
               "Heatmap metric: compute, send, recv, wait, idle, busy or \
                total.")
  in
  let capacity =
    Arg.(value & opt (some int) None
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Per-tracer span capacity (drops are reported).")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the wavefront-timeline-report/v1 JSON document.")
  in
  let csv_out =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Write the per-cell decompositions as CSV.")
  in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(const timeline $ spec_arg $ app_arg $ grid_arg $ cores_arg $ cpn_arg
          $ htile_arg $ wg_arg $ iterations_arg $ platform_arg $ engine_arg
          $ real $ no_bus $ metric $ capacity $ json_out $ csv_out
          $ Obs_ctx.term)

(* --- idlewave --- *)

let idlewave spec app_name grid cores cpn htile wg iterations platform engine
    pgrid pspec real no_bus fail_on_mismatch capacity out json_out csv_out ctx
    =
  (match capacity with
  | Some c when c < 1 ->
      Fmt.epr "wavefront: --capacity must be at least 1@.";
      exit 2
  | _ -> ());
  let app = make_app ?spec app_name grid ~htile ~wg ~iterations in
  let pspec =
    match pspec with
    | Some s -> (
        match Perturb.Spec.of_string s with
        | Ok p -> p
        | Error (`Msg m) ->
            Fmt.epr "wavefront: --perturb: %s@." m;
            exit 2)
    | None -> (
        match spec with
        | None -> Perturb.Spec.zero
        | Some path -> (
            match Apps.Spec.full_of_file path with
            | Ok { perturb = Some p; _ } -> p
            | Ok { perturb = None; _ } -> Perturb.Spec.zero
            | Error (`Msg m) -> Fmt.failwith "%s: %s" path m))
  in
  (* --pgrid overrides the near-square factorization of -p: idle-wave
     studies are pipeline studies, and a COLSx1 chain is where the
     analytic model is exact. *)
  let cfg, cores =
    match pgrid with
    | None -> (make_cfg platform ~cores ~cpn, cores)
    | Some s -> (
        match String.split_on_char 'x' s |> List.map int_of_string_opt with
        | [ Some c; Some r ] when c >= 1 && r >= 1 ->
            let platform = Loggp.Params.with_cores_per_node platform cpn in
            ( Plugplay.config ~cmp:(Wgrid.Cmp.of_cores_per_node cpn)
                ~pgrid:(Wgrid.Proc_grid.v ~cols:c ~rows:r)
                platform ~cores:(c * r),
              c * r )
        | _ ->
            Fmt.epr "wavefront: --pgrid expects COLSxROWS, e.g. 16x1@.";
            exit 2)
  in
  Fmt.pr "idle-wave study of %s on %d cores (%d/node, %s) with [%a]...@."
    app.App_params.name cores cpn platform.Loggp.Params.name Perturb.Spec.pp
    pspec;
  if pspec.pulses = [] then
    Fmt.pr "(no pulse clause: expect no idle wave; try --perturb \
            'pulse=RANK:WAVE:DELAY_US')@.";
  let r =
    or_rank_ceiling (fun () ->
        Harness.Idlewave_report.run ~real ~model_bus:(not no_bus) ~engine
          ?capacity cfg app pspec)
  in
  Fmt.pr "%a@." Harness.Idlewave_report.pp r;
  let write path content what =
    match open_out path with
    | exception Sys_error m ->
        Fmt.epr "wavefront: cannot write %s: %s@." what m;
        exit 1
    | oc ->
        output_string oc content;
        close_out oc;
        Fmt.pr "%s written to %s@." what path
  in
  Option.iter
    (fun p ->
      write p (Fmt.str "%a@." Harness.Idlewave_report.pp r) "report")
    out;
  Option.iter
    (fun p -> write p (Harness.Idlewave_report.to_json r) "idle-wave JSON")
    json_out;
  Option.iter
    (fun p -> write p (Harness.Idlewave_report.to_csv r) "idle-wave CSV")
    csv_out;
  (* 0 clean, 3 when a spec'd pulse went undetected or (with
     --fail-on-mismatch) the substrates disagree — see
     Idlewave_report.exit_status. *)
  let status = Harness.Idlewave_report.exit_status ~fail_on_mismatch r in
  Obs_ctx.finish
    ~engine:(Obs_ctx.engine_name engine)
    ?spec
    ~config:
      (Fmt.str "%s|%a|p%d|c%d|%s|%a" app.App_params.name Wgrid.Data_grid.pp
         app.grid cores cpn platform.Loggp.Params.name Perturb.Spec.pp pspec)
    ~kv:
      [ ("fronts", float_of_int (List.length r.sim.fronts));
        ("identity", bool01 r.identity);
        ("exit_status", float_of_int status) ]
    ctx "idlewave";
  match status with 0 -> () | s -> exit s

let idlewave_cmd =
  let doc =
    "Inject an idle-wave source and measure the wave: differential front \
     detection on control/perturbed run pairs, propagation speed and \
     decay fits, reconciled against the closed-form idle-wave model on \
     every substrate"
  in
  let pgrid =
    Arg.(value & opt (some string) None
         & info [ "pgrid" ] ~docv:"CxR"
             ~doc:
               "Processor grid shape COLSxROWS, overriding the near-square \
                factorization of -p (e.g. 16x1 for the 1-D chain where the \
                analytic idle-wave model is exact).")
  in
  let pspec =
    Arg.(value & opt (some string) None
         & info [ "perturb" ] ~docv:"SPEC"
             ~doc:
               "Perturbation clauses; the idle-wave sources are \
                'pulse=RANK:WAVE:DELAY_US' (repeatable), \
                'periodic=PERIOD_WAVES:AMPLITUDE_US' and 'collnoise=US', \
                composable with the noise/straggler/link clauses. \
                Overrides the spec file's perturb stanza.")
  in
  let real =
    Arg.(value & flag
         & info [ "real" ]
             ~doc:
               "Also execute the transport kernel pair on one OCaml domain \
                per rank and run the detector on its timelines (use small \
                core counts).")
  in
  let no_bus =
    Arg.(value & flag
         & info [ "no-bus" ]
             ~doc:
               "Switch off the simulator's shared-bus contention; with \
                single-core nodes the simulated and dataflow timelines \
                then coincide cell for cell.")
  in
  let fail_on_mismatch =
    Arg.(value & flag
         & info [ "fail-on-mismatch" ]
             ~doc:
               "Exit 3 when the sim/dataflow timelines diverge or the \
                fitted hop latency misses the analytic one beyond 5%.")
  in
  let capacity =
    Arg.(value & opt (some int) None
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Per-tracer span capacity (drops are reported).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Also write the report to FILE.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the wavefront-idlewave/v1 JSON document.")
  in
  let csv_out =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Write the reconciliation table as CSV.")
  in
  Cmd.v (Cmd.info "idlewave" ~doc)
    Term.(const idlewave $ spec_arg $ app_arg $ grid_arg $ cores_arg $ cpn_arg
          $ htile_arg $ wg_arg $ iterations_arg $ platform_arg $ engine_arg
          $ pgrid $ pspec $ real $ no_bus $ fail_on_mismatch $ capacity $ out
          $ json_out $ csv_out $ Obs_ctx.term)

(* --- bench --- *)

let bench quick out against fail_on_regression label repeats min_delta ctx =
  let cases = Harness.Bench_suite.cases ~quick () in
  Fmt.pr "running %d benchmark case(s)%s...@." (List.length cases)
    (if quick then " (quick subset)" else "");
  let results =
    List.map
      (fun (c : Harness.Bench_suite.case) ->
        (* --repeats wins; else the case's own count (the multi-second
           scale cases run few repetitions). *)
        let repeats =
          match repeats with Some _ -> repeats | None -> c.repeats
        in
        let s = Bench_stats.Runner.measure ?repeats ~name:c.name c.f in
        Fmt.pr "  %a@." Bench_stats.Runner.pp s;
        s)
      cases
  in
  let meta =
    [
      ("peak_rss_mb", string_of_int (Harness.Bench_suite.peak_rss_mb ()));
      ("scale_domains", string_of_int Harness.Bench_suite.scale_domains);
    ]
  in
  let report = Bench_stats.Report.v ~label ~meta results in
  (match out with
  | None -> ()
  | Some path ->
      Bench_stats.Report.write path report;
      Fmt.pr "report written to %s (schema %s)@." path Bench_stats.Report.schema);
  let regressed =
    match against with
    | None -> false
    | Some path ->
        let baseline =
          try Bench_stats.Report.read path
          with
          | Sys_error m ->
              Fmt.epr "wavefront: cannot read baseline: %s@." m;
              exit 2
          | Bench_stats.Json.Parse_error m ->
              Fmt.epr "wavefront: bad baseline %s: %s@." path m;
              exit 2
        in
        let cmp =
          Bench_stats.Compare.compare ?min_delta_pct:min_delta ~baseline
            ~current:report ()
        in
        Fmt.pr "@.against %s (%s):@.%a" path baseline.Bench_stats.Report.label
          Bench_stats.Compare.pp cmp;
        Bench_stats.Compare.regressions cmp <> []
  in
  (* Each case's median wall time (us) becomes an outcome number, so the
     run ledger doubles as a coarse longitudinal benchmark record. *)
  Obs_ctx.finish
    ~config:(Fmt.str "quick%b|%s" quick label)
    ~kv:
      (("cases", float_of_int (List.length results))
      :: List.map
           (fun (s : Bench_stats.Runner.summary) -> (s.name, s.median))
           results)
    ctx "bench";
  if fail_on_regression && regressed then exit 1

let bench_cmd =
  let doc =
    "Run the continuous-benchmarking suite with statistical rigor (warmup, \
     repetitions, bootstrap confidence intervals), emit a \
     machine-readable report, and optionally compare against a baseline"
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Run only the fast CI subset of cases.")
  in
  let out =
    Arg.(value & opt (some string) (Some "BENCH_wavefront.json")
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the wavefront-bench/v1 JSON report (default \
                   BENCH_wavefront.json).")
  in
  let against =
    Arg.(value & opt (some file) None
         & info [ "against" ] ~docv:"OLD.json"
             ~doc:
               "Compare against a previous report; regressions are cases \
                whose confidence intervals are disjoint from the \
                baseline's and whose median moved beyond the noise \
                threshold.")
  in
  let fail_on_regression =
    Arg.(value & flag
         & info [ "fail-on-regression" ]
             ~doc:
               "Exit 1 when --against finds regressions (default: report \
                and exit 0, the soft CI gate).")
  in
  let label =
    Arg.(value & opt string "local"
         & info [ "label" ] ~docv:"LABEL"
             ~doc:"Label recorded in the report, e.g. a git ref.")
  in
  let repeats =
    Arg.(value & opt (some int) None
         & info [ "repeats" ] ~docv:"N"
             ~doc:"Timed repetitions per case (default 20).")
  in
  let min_delta =
    Arg.(value & opt (some float) None
         & info [ "min-delta-pct" ] ~docv:"PCT"
             ~doc:"Noise threshold for --against (default 5%).")
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const bench $ quick $ out $ against $ fail_on_regression $ label
          $ repeats $ min_delta $ Obs_ctx.term)

(* --- fit --- *)

(* Both transports expose the one MICROBENCH signature, so the simulated
   and the real curve reach Loggp.Fit through literally the same calls. *)
let fit real ctx =
  (if real then begin
     let (module M : Wrun.Substrate.MICROBENCH) =
       Shmpi.Pingpong.microbench ()
     in
     let curve =
       M.curve ~rounds:100 ~sizes:[ 64; 256; 1024; 4096; 16384; 65536 ] ()
     in
     let p = Shmpi.Pingpong.fit_platform curve in
     Fmt.pr "measured %s:@." M.name;
     List.iter (fun (s, t) -> Fmt.pr "  %6d B: %8.3f us@." s t) curve;
     Fmt.pr "fitted: %a@." Loggp.Params.pp p
   end
   else begin
     let sizes = Xtsim.Pingpong.figure3_sizes in
     let (module Off : Wrun.Substrate.MICROBENCH) =
       Xtsim.Pingpong.microbench Loggp.Params.xt4 Off_node
     in
     let (module On : Wrun.Substrate.MICROBENCH) =
       Xtsim.Pingpong.microbench Loggp.Params.xt4 On_chip
     in
     let off, _ = Loggp.Fit.fit_offnode (Off.curve ~sizes ()) in
     let on, _ = Loggp.Fit.fit_onchip (On.curve ~sizes ()) in
     Fmt.pr "fitted from the simulated XT4 microbenchmark:@.";
     Fmt.pr "  off-node: %a@." Loggp.Params.pp_offnode off;
     Fmt.pr "  on-chip:  %a@." Loggp.Params.pp_onchip on
   end);
  Obs_ctx.finish ~config:(Fmt.str "real%b" real) ctx "fit"

let fit_cmd =
  let doc = "Fit LogGP parameters from a ping-pong microbenchmark" in
  let real =
    Arg.(value & flag
         & info [ "real" ]
             ~doc:"Measure this machine's shared-memory transport instead \
                   of the simulated XT4.")
  in
  Cmd.v (Cmd.info "fit" ~doc) Term.(const fit $ real $ Obs_ctx.term)

(* --- measure-wg --- *)

let measure ctx =
  let wg6 = Kernels.Measure.transport_wg () in
  let wg10 =
    Kernels.Measure.transport_wg ~config:(Kernels.Transport.v ~angles:10 ()) ()
  in
  let lu = Kernels.Measure.lu_wg () in
  let lu_pre = Kernels.Measure.lu_wg_pre () in
  Fmt.pr
    "@[<v>measured on this machine (us/cell):@,\
     transport, 6 angles (Sweep3D-like):  %.4f@,\
     transport, 10 angles (Chimaera-like): %.4f@,\
     LU sweep kernel:                      %.4f@,\
     LU pre-computation:                   %.4f@]@."
    wg6 wg10 lu lu_pre;
  Obs_ctx.finish
    ~kv:
      [ ("transport_wg6", wg6); ("transport_wg10", wg10); ("lu_wg", lu);
        ("lu_wg_pre", lu_pre) ]
    ctx "measure-wg"

let measure_cmd =
  let doc = "Measure per-cell kernel times (the model's Wg inputs) for real" in
  Cmd.v (Cmd.info "measure-wg" ~doc) Term.(const measure $ Obs_ctx.term)

(* --- telemetry --- *)

(* The allocation gate: minor-heap words per evaluation of the serving
   path's units of work, judged against pinned budgets. The predictor's
   closed-form evaluator and the batched engine's steady-state step are
   contractually allocation-free (budget 0, pinned exactly); the full
   batched run carries a nonzero ratchet with headroom, so a change that
   starts boxing in either hot loop trips --assert-zero-alloc in CI. *)

type alloc_target = {
  tname : string;
  tdoc : string;
  budget : float;  (** minor words per iteration, inclusive ceiling *)
  titerations : int;
  prepare : cores:int -> unit -> unit;
      (** builds all state (evaluator, probe, cost tables) outside the
          measured window and returns the unit of work *)
}

(* Measured at ~710k minor words per 256-rank sweep3d run (the outcome
   record, the per-rank flat arrays, the scheduler's diagonal lists —
   setup, not the tile loop); the ratchet pins 1M so only a real
   regression trips it — per-tile boxing on this grid would add tens of
   millions of words, setup jitter a few thousand. *)
let batched_run_budget = 1_000_000.0

let alloc_targets =
  [
    {
      tname = "predictor";
      tdoc = "Plugplay.Eval.run: the closed-form (r1)-(r5) evaluation";
      budget = 0.0;
      titerations = 1000;
      prepare =
        (fun ~cores ->
          let app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 32) in
          let cfg = make_cfg Loggp.Params.xt4 ~cores ~cpn:2 in
          let e = Plugplay.Eval.create app cfg in
          fun () -> Plugplay.Eval.run e);
    };
    {
      tname = "batched-step";
      tdoc = "Batched.Steady.step: one steady-state per-tile op sequence";
      budget = 0.0;
      titerations = 1000;
      prepare =
        (fun ~cores ->
          let app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 32) in
          let pg = Wgrid.Proc_grid.of_cores cores in
          let costs =
            Wrun.Costs.loggp ~model_bus:false ~cmp:Wgrid.Cmp.single_core
              Loggp.Params.xt4 pg app
          in
          let p = Wrun.Batched.Steady.probe ~costs pg app in
          fun () -> Wrun.Batched.Steady.step p);
    };
    {
      tname = "batched-run";
      tdoc = "Batched.run, 256 ranks end to end (ratchet, not zero)";
      budget = batched_run_budget;
      titerations = 25;
      prepare =
        (fun ~cores:_ ->
          let app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 32) in
          let pg = Wgrid.Proc_grid.of_cores 256 in
          let costs =
            Wrun.Costs.loggp ~model_bus:false ~cmp:Wgrid.Cmp.single_core
              Loggp.Params.xt4 pg app
          in
          fun () -> ignore (Wrun.Batched.run ~costs pg app));
    };
    {
      tname = "serve-predict";
      tdoc =
        "Api.predict_into: the daemon's parse -> Eval.run -> serialize hot \
         path (ratchet, not zero: JSON parse and response render allocate a \
         bounded constant)";
      (* Measured at 211,424 minor words per request on this body at the
         default 4096-core grid, ~51 words/core: the parse and the
         response render are small constants, the bulk is the
         per-request Eval.create hoisting its O(cores) communication
         tables. The ratchet pins 256k so only a real regression trips
         it — quadratic table growth or a per-column response copy is
         tens of millions. *)
      budget = 256_000.0;
      titerations = 1000;
      prepare =
        (fun ~cores ->
          let body =
            Printf.sprintf
              {|{"app":{"name":"sweep3d","nx":256,"ny":256,"nz":256},"machine":{"platform":"xt4","cores":%d,"cores_per_node":2}}|}
              cores
          in
          let buf = Buffer.create 4096 in
          fun () ->
            match Serve.Api.predict_into buf body with
            | Ok () -> ()
            | Error m -> Fmt.failwith "serve-predict: %s" m);
    };
    {
      tname = "control-alloc";
      tdoc = "a deliberately allocating closure (the gate's negative control)";
      budget = 0.0;
      titerations = 1000;
      prepare =
        (fun ~cores:_ () -> ignore (Sys.opaque_identity (ref (Sys.opaque_identity 0))));
    };
  ]

let telemetry targets cores assert_zero ctx =
  if cores < 9 then begin
    Fmt.epr
      "wavefront: --cores must be at least 9 (the steady-state probe \
       needs a 3x3 processor grid)@.";
    exit 2
  end;
  (* Default set: the contractual targets. The negative control only
     runs when asked for — its whole point is to exit nonzero. *)
  let selected =
    match targets with
    | [] ->
        List.filter (fun t -> t.tname <> "control-alloc") alloc_targets
    | names ->
        List.map
          (fun n ->
            match List.find_opt (fun t -> t.tname = n) alloc_targets with
            | Some t -> t
            | None ->
                Fmt.epr "wavefront: unknown --target %s (have: %s)@." n
                  (String.concat ", "
                     (List.map (fun t -> t.tname) alloc_targets));
                exit 2)
          names
  in
  Fmt.pr "allocation gate: %d target(s), %d-core batched grid@."
    (List.length selected) cores;
  let phases = Obs.Runtime.phases () in
  let rows =
    List.map
      (fun t ->
        Obs.Runtime.phase phases t.tname @@ fun () ->
        let f =
          try t.prepare ~cores
          with Invalid_argument m ->
            Fmt.epr "wavefront: %s: %s@." t.tname m;
            exit 2
        in
        (t, Obs.Runtime.measure_alloc ~iterations:t.titerations f))
      selected
  in
  let breaches =
    List.filter
      (fun (t, (a : Obs.Runtime.alloc)) -> a.minor_words_per_iter > t.budget)
      rows
  in
  List.iter
    (fun (t, (a : Obs.Runtime.alloc)) ->
      let ok = a.minor_words_per_iter <= t.budget in
      Fmt.pr "@[<v>%-13s %s@,%-13s %a@,%-13s budget %g words/iter: %s@]@."
        t.tname t.tdoc "" Obs.Runtime.pp_alloc a "" t.budget
        (if ok then "within budget" else "EXCEEDED"))
    rows;
  Fmt.pr "runtime:@.%a@." Obs.Runtime.pp_report (Obs.Runtime.report phases);
  let status = if breaches <> [] && assert_zero then 1 else 0 in
  if breaches <> [] then
    Fmt.pr "%d target(s) over budget%s@." (List.length breaches)
      (if assert_zero then " (failing: --assert-zero-alloc)"
       else " (reported only; gate with --assert-zero-alloc)");
  Obs_ctx.finish
    ~config:
      (Fmt.str "%s|p%d"
         (String.concat "," (List.map (fun (t, _) -> t.tname) rows))
         cores)
    ~kv:
      (("exit_status", float_of_int status)
      :: List.map
           (fun (t, (a : Obs.Runtime.alloc)) ->
             (t.tname ^ ".minor_words_per_iter", a.minor_words_per_iter))
           rows)
    ctx "telemetry";
  if status <> 0 then exit status

let telemetry_cmd =
  let doc =
    "Measure minor-heap allocation per evaluation of the serving-path \
     units (the closed-form predictor, the batched engine's steady-state \
     step, a full batched run) and gate them against pinned budgets"
  in
  let targets =
    Arg.(value
         & opt_all
             (enum (List.map (fun t -> (t.tname, t.tname)) alloc_targets))
             []
         & info [ "target" ] ~docv:"T"
             ~doc:
               "Target to measure (repeatable): predictor, batched-step, \
                batched-run or control-alloc. Default: the three \
                contractual targets; control-alloc is a deliberately \
                allocating closure that proves the gate can fail.")
  in
  let cores =
    Arg.(value & opt int 4096
         & info [ "p"; "cores" ] ~docv:"P"
             ~doc:
               "Core count of the model configuration and the batched \
                steady-state grid (at least 9).")
  in
  let assert_zero =
    Arg.(value & flag
         & info [ "assert-zero-alloc" ]
             ~doc:
               "Exit 1 when any measured target exceeds its allocation \
                budget (the CI gate; default reports without failing).")
  in
  Cmd.v (Cmd.info "telemetry" ~doc)
    Term.(const telemetry $ targets $ cores $ assert_zero $ Obs_ctx.term)

(* --- runs --- *)

(* Reading the ledger other runs append to. Neither subcommand writes:
   listing or diffing the record must not grow it. *)

let runs_ledger_arg =
  Arg.(value & opt (some string) None
       & info [ "ledger" ] ~docv:"FILE"
           ~doc:
             (Fmt.str "Run-ledger file to read (default %s)."
                Obs.Ledger.default_path))

let load_ledger path =
  match Obs.Ledger.load ?path () with
  | Error m ->
      Fmt.epr "wavefront: %s@." m;
      exit 2
  | Ok (records, skipped) ->
      if skipped > 0 then
        Fmt.epr "wavefront: ledger: skipped %d malformed line(s)@." skipped;
      records

let runs_list ledger last =
  let records = load_ledger ledger in
  let total = List.length records in
  if total = 0 then
    Fmt.pr "ledger %s is empty@."
      (Option.value ledger ~default:Obs.Ledger.default_path)
  else begin
    let first_shown = if last <= 0 then 0 else max 0 (total - last) in
    Fmt.pr "%4s  %-19s %-10s %-7s %-12s %9s  %s@." "#" "when" "subcommand"
      "engine" "config" "duration" "git";
    List.iteri
      (fun i (r : Obs.Ledger.t) ->
        if i >= first_shown then
          let tm = Unix.localtime r.timestamp in
          Fmt.pr "%4d  %04d-%02d-%02d %02d:%02d:%02d %-10s %-7s %-12s %8.2fs  %s@."
            i (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
            tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec r.subcommand
            (if r.engine = "" then "-" else r.engine)
            (if r.config_hash = "" then "-" else r.config_hash)
            r.duration_s
            (if r.git = "" then "-" else r.git))
      records;
    if first_shown > 0 then
      Fmt.pr "(%d earlier record(s) elided; -n 0 shows all)@." first_shown
  end

let runs_list_cmd =
  let doc = "List the recorded invocations, oldest first" in
  let last =
    Arg.(value & opt int 20
         & info [ "n"; "last" ] ~docv:"N"
             ~doc:"Show only the last N records (0 = all; default 20).")
  in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(const runs_list $ runs_ledger_arg $ last)

let runs_compare ledger a b min_delta fail_on_regression =
  let records = load_ledger ledger in
  let total = List.length records in
  let resolve label i =
    let j = if i < 0 then total + i else i in
    if j < 0 || j >= total then begin
      Fmt.epr
        "wavefront: %s index %d out of range (ledger has %d record(s); \
         negative indices count from the end)@."
        label i total;
      exit 2
    end;
    List.nth records j
  in
  let base = resolve "BASE" a and current = resolve "CURRENT" b in
  if
    base.Obs.Ledger.subcommand <> current.Obs.Ledger.subcommand
    || (base.config_hash <> "" && current.config_hash <> ""
        && base.config_hash <> current.config_hash)
  then
    Fmt.pr
      "note: comparing %s/%s against %s/%s — different work, deltas are \
       apples to oranges@."
      base.subcommand base.config_hash current.subcommand
      current.config_hash;
  let diffs = Obs.Ledger.compare_runs ?min_delta_pct:min_delta base current in
  List.iter (fun d -> Fmt.pr "%a@." Obs.Ledger.pp_diff d) diffs;
  let regressed = Obs.Ledger.regressions diffs in
  if regressed = [] then Fmt.pr "no regressions@."
  else begin
    Fmt.pr "%d regression(s)@." (List.length regressed);
    if fail_on_regression then exit 1
  end

let runs_compare_cmd =
  let doc =
    "Diff two ledger records metric by metric and flag regressions \
     beyond the noise threshold"
  in
  let base =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"BASE"
             ~doc:"Baseline record index (negative counts from the end).")
  in
  let current =
    Arg.(required & pos 1 (some int) None
         & info [] ~docv:"CURRENT"
             ~doc:"Current record index (negative counts from the end).")
  in
  let min_delta =
    Arg.(value & opt (some float) None
         & info [ "min-delta-pct" ] ~docv:"PCT"
             ~doc:"Noise threshold; moves under it are Unchanged \
                   (default 5%).")
  in
  let fail_on_regression =
    Arg.(value & flag
         & info [ "fail-on-regression" ]
             ~doc:
               "Exit 1 when any metric regressed (default: report and \
                exit 0, the soft CI gate).")
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const runs_compare $ runs_ledger_arg $ base $ current $ min_delta
          $ fail_on_regression)

let runs_cmd =
  let doc =
    "Inspect the run ledger: list recorded invocations, diff two of them"
  in
  Cmd.group (Cmd.info "runs" ~doc) [ runs_list_cmd; runs_compare_cmd ]

(* --- serve / slam --- *)

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind or target.")

let port_arg ~default doc =
  Arg.(value & opt int default & info [ "port" ] ~docv:"PORT" ~doc)

let seed_serve_arg =
  Arg.(value & opt int 42
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"PRNG seed for the chaos/request streams.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress output.")

let serve_main host port workers queue max_body header_timeout_ms deadline_ms
    chaos_burst chaos_fail chaos_slow chaos_slow_ms breaker_window
    breaker_min_calls breaker_threshold breaker_cooldown seed quiet =
  let chaos =
    Serve.Chaos.v ~fail_burst:chaos_burst ~fail_rate:chaos_fail
      ~slow_rate:chaos_slow ~slow_ms:chaos_slow_ms ()
  in
  let cfg =
    {
      Serve.Server.host;
      port;
      workers;
      queue_capacity = queue;
      max_body;
      header_timeout_ms;
      default_deadline_ms = deadline_ms;
      chaos;
      seed;
      breaker_window;
      breaker_min_calls;
      breaker_threshold;
      breaker_cooldown_s = breaker_cooldown;
      quiet;
    }
  in
  exit (Serve.Server.run cfg)

let serve_cmd =
  let doc =
    "Serve the plug-and-play model over HTTP: predictions, design-space \
     sweeps, health and metrics, with load shedding, deadlines, a \
     validation circuit breaker and graceful drain"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Endpoints: GET /healthz, GET /readyz (503 while draining), GET \
         /metrics (OpenMetrics), POST /v1/predict (model evaluation, \
         optionally cross-validated against the batched engine behind a \
         circuit breaker), POST /v1/sweep (bounded (Htile, grid, K) \
         design-space sweep with a Pareto frontier).";
      `P
        "Robustness contracts: connections beyond the admission queue are \
         answered 429 with Retry-After; a request's X-Deadline-Ms header \
         caps its total evaluation time (504 on expiry, checked \
         cooperatively inside sweeps); requests whose headers stall past \
         the header budget get 408; SIGTERM/SIGINT drain the backlog so \
         every admitted connection is answered, then exit 0.";
    ]
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue capacity; beyond it connections shed \
                   with 429.")
  in
  let max_body =
    Arg.(value & opt int (1024 * 1024)
         & info [ "max-body" ] ~docv:"BYTES"
             ~doc:"Request body cap; larger advertisements get 413 before \
                   the body is read.")
  in
  let header_timeout =
    Arg.(value & opt float 2000.0
         & info [ "header-timeout-ms" ] ~docv:"MS"
             ~doc:"Budget for a request to arrive in full (slow-loris \
                   defense, 408).")
  in
  let deadline =
    Arg.(value & opt float 10_000.0
         & info [ "default-deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline when X-Deadline-Ms is absent.")
  in
  let chaos_burst =
    Arg.(value & opt int 0
         & info [ "chaos-fail-burst" ] ~docv:"N"
             ~doc:"Chaos: fail the first N validation calls (opens the \
                   breaker deterministically, then lets it recover).")
  in
  let chaos_fail =
    Arg.(value & opt float 0.0
         & info [ "chaos-fail-rate" ] ~docv:"P"
             ~doc:"Chaos: steady-state validation failure probability.")
  in
  let chaos_slow =
    Arg.(value & opt float 0.0
         & info [ "chaos-slow-rate" ] ~docv:"P"
             ~doc:"Chaos: probability of stalling a validation call.")
  in
  let chaos_slow_ms =
    Arg.(value & opt float 50.0
         & info [ "chaos-slow-ms" ] ~docv:"MS"
             ~doc:"Chaos: stall duration for --chaos-slow-rate.")
  in
  let breaker_window =
    Arg.(value & opt int 16
         & info [ "breaker-window" ] ~docv:"N"
             ~doc:"Sliding outcome window of the validation breaker.")
  in
  let breaker_min_calls =
    Arg.(value & opt int 4
         & info [ "breaker-min-calls" ] ~docv:"N"
             ~doc:"Outcomes required before the failure rate is judged.")
  in
  let breaker_threshold =
    Arg.(value & opt float 0.5
         & info [ "breaker-threshold" ] ~docv:"F"
             ~doc:"Failure fraction that opens the breaker.")
  in
  let breaker_cooldown =
    Arg.(value & opt float 2.0
         & info [ "breaker-cooldown-s" ] ~docv:"S"
             ~doc:"Open-state cooldown before the half-open probe.")
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(const serve_main $ host_arg
          $ port_arg ~default:8080 "Port to bind (0 = ephemeral)."
          $ workers $ queue $ max_body $ header_timeout $ deadline
          $ chaos_burst $ chaos_fail $ chaos_slow $ chaos_slow_ms
          $ breaker_window $ breaker_min_calls $ breaker_threshold
          $ breaker_cooldown $ seed_serve_arg $ quiet_arg)

let slam_main host port requests clients seed client_timeout latency_budget
    expect_breaker fail_on_invariant report quiet =
  let cfg =
    {
      Serve.Slam.host;
      port;
      requests;
      clients;
      seed;
      client_timeout_s = client_timeout;
      latency_budget_ms = latency_budget;
      expect_breaker;
      fail_on_invariant;
      report_path = report;
      quiet;
    }
  in
  exit (Serve.Slam.run cfg)

let slam_cmd =
  let doc =
    "Chaos/soak-test a running serve daemon with a seeded mix of valid, \
     malformed, oversized, slow-loris and deadline-doomed requests, then \
     assert its robustness invariants"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Invariants: the daemon survives; every awaited connection gets a \
         well-formed status line; the daemon's own accounting reconciles \
         (requests = outcomes + in-flight + queued on the final /metrics \
         scrape); malformed/oversized/slow-loris/expired requests get \
         their contracted 400/413/408/504 (shedding 429s excepted); the \
         fast-path p99 stays under the latency budget. With \
         --expect-breaker, the validation breaker must have opened and \
         recovered. Exit 0 on success, 1 when an invariant failed under \
         --fail-on-invariant, 2 when the daemon is unreachable.";
    ]
  in
  let requests =
    Arg.(value & opt int 1000
         & info [ "n"; "requests" ] ~docv:"N" ~doc:"Total requests.")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client domains.")
  in
  let client_timeout =
    Arg.(value & opt float 10.0
         & info [ "client-timeout-s" ] ~docv:"S"
             ~doc:"Per-connection give-up budget (a hang past it is an \
                   invariant breach).")
  in
  let latency_budget =
    Arg.(value & opt float 2000.0
         & info [ "latency-budget-ms" ] ~docv:"MS"
             ~doc:"Fast-path p99 bound.")
  in
  let expect_breaker =
    Arg.(value & flag
         & info [ "expect-breaker" ]
             ~doc:"Assert the validation breaker opened and recovered \
                   (pair with the daemon's --chaos-fail-burst).")
  in
  let fail_on_invariant =
    Arg.(value & flag
         & info [ "fail-on-invariant" ]
             ~doc:"Exit 1 when any invariant failed (default: report and \
                   exit 0).")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Write the wavefront-slam/v1 JSON report here.")
  in
  Cmd.v (Cmd.info "slam" ~doc ~man)
    Term.(const slam_main $ host_arg
          $ port_arg ~default:8080 "Daemon port to target."
          $ requests $ clients $ seed_serve_arg $ client_timeout
          $ latency_budget $ expect_breaker $ fail_on_invariant $ report
          $ quiet_arg)

(* --- main --- *)

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "wavefront" ~version:"1.0.0"
      ~doc:
        "Plug-and-play LogGP performance model for pipelined wavefront \
         computations (Mudalige, Vernon & Jarvis, IPDPS 2008)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ predict_cmd; explain_cmd; simulate_cmd; validate_cmd; report_cmd;
            profile_cmd; perturb_cmd; recover_cmd; timeline_cmd; idlewave_cmd;
            bench_cmd; figure_cmd; scale_cmd; fit_cmd; measure_cmd;
            telemetry_cmd; runs_cmd; serve_cmd; slam_cmd ]))
