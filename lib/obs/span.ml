(* A completed interval of work on one rank: the unit of the structured
   event trace. Spans are plain data — producers stamp them from whatever
   clock governs their execution (wall time for real runs, engine time for
   simulated ones), so simulated and measured timelines share one format. *)

type arg = Int of int | Float of float | Str of string

type t = {
  name : string;  (** what the rank was doing, e.g. "compute", "recv" *)
  cat : string;  (** coarse grouping, e.g. "compute", "comm" *)
  rank : int;
  t_start : float;  (** us, in the producer's clock domain *)
  dur : float;  (** us *)
  args : (string * arg) list;
}

(* A negative duration can only come from a broken clock (the classic case:
   an NTP step under gettimeofday). Such a span is still evidence that the
   operation happened, so instead of refusing it the duration is clamped to
   zero and the raw value kept as an arg, where exporters and reports can
   surface it. *)
let clamped_key = "clamped_neg_dur"

let v ?(cat = "") ?(args = []) ~rank ~start ~dur name =
  if dur >= 0.0 then { name; cat; rank; t_start = start; dur; args }
  else
    { name; cat; rank; t_start = start; dur = 0.0;
      args = (clamped_key, Float dur) :: args }

let clamped s = List.mem_assoc clamped_key s.args

let end_time s = s.t_start +. s.dur

let compare_start a b =
  match Float.compare a.t_start b.t_start with
  | 0 -> compare a.rank b.rank
  | c -> c

let arg_int s key =
  match List.assoc_opt key s.args with Some (Int i) -> Some i | _ -> None

let arg_float s key =
  match List.assoc_opt key s.args with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let pp_arg ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%s" s

let pp ppf s =
  Format.fprintf ppf "[rank %d] %s %.3f+%.3fus" s.rank s.name s.t_start s.dur;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_arg v) s.args
