(** Chrome [trace_event] JSON export, loadable in [chrome://tracing] and
    Perfetto: complete ("X") events, one process per span source, one
    thread per rank. [process_name] / [thread_name] metadata events label
    processes and ranks in the Perfetto sidebar, and ["perturb.*"] /
    ["recover.*"] spans carry a distinct leading category ([perturb] /
    [recover], ahead of the producer's own) so injected delays and the
    recovery protocol can be isolated with the category filter. *)

type process = { pid : int; name : string; spans : Span.t list }

val to_json : ?normalize:bool -> process list -> string
(** With [normalize] (the default), each process's timestamps are shifted
    so its earliest span starts at 0 — a simulated timeline and a
    wall-clock-stamped real one then align for side-by-side reading. *)

val spans_csv : Span.t list -> string
(** A flat [rank,name,cat,t_start,dur] CSV of the same spans. *)
