(* A zero-dependency metrics registry: counters, gauges, and log-scaled
   histograms with quantile estimation.

   Histograms bucket geometrically: bucket 0 holds values <= [lo], bucket k
   (k >= 1) holds (lo * r^(k-1), lo * r^k] with r = 2^(1/8) (eight buckets
   per doubling, so quantile estimates carry at most ~9% relative bucket
   error, tightened by clamping to the observed min/max). The registry
   preserves insertion order so rendered summaries are stable.

   The registry is not synchronized: create/update it from one domain, or
   give each domain its own (the shmpi runtime gives each rank its own
   tracer for the same reason). *)

type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  lo : float;
  log_r : float;  (* log of the bucket ratio *)
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable rev_order : string list;
}

let create () = { tbl = Hashtbl.create 32; rev_order = [] }

let intern t name m =
  Hashtbl.add t.tbl name m;
  t.rev_order <- name :: t.rev_order

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { count = 0 } in
      intern t name (Counter c);
      c

let inc ?(by = 1) c = c.count <- c.count + by
let count c = c.count

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
      let g = { value = nan } in
      intern t name (Gauge g);
      g

let set g v = g.value <- v
let value g = g.value

(* 2^(1/8): eight buckets per doubling. The default range [1e-3, 1e10] us
   spans nanoseconds to hours in ~347 buckets. *)
let default_lo = 1e-3
let default_hi = 1e10
let bucket_ratio = Float.exp (Float.log 2.0 /. 8.0)

let histogram ?(lo = default_lo) ?(hi = default_hi) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
      if lo <= 0.0 || hi <= lo then invalid_arg "Metrics.histogram: bad range";
      let log_r = Float.log bucket_ratio in
      let nbuckets = 2 + int_of_float (Float.ceil (Float.log (hi /. lo) /. log_r)) in
      let h =
        { lo; log_r; buckets = Array.make nbuckets 0; n = 0; sum = 0.0;
          minv = infinity; maxv = neg_infinity }
      in
      intern t name (Histogram h);
      h

let bucket_index h v =
  if v <= h.lo then 0
  else
    let k = 1 + int_of_float (Float.floor (Float.log (v /. h.lo) /. h.log_r)) in
    min k (Array.length h.buckets - 1)

let observe h v =
  if not (Float.is_nan v) then begin
    h.buckets.(bucket_index h v) <- h.buckets.(bucket_index h v) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.minv then h.minv <- v;
    if v > h.maxv then h.maxv <- v
  end

let observations h = h.n
let sum h = h.sum
let min_value h = h.minv
let max_value h = h.maxv
let mean h = if h.n = 0 then nan else h.sum /. float_of_int h.n

(* The geometric midpoint of the bucket holding the q-th ranked
   observation, clamped to the observed range. *)
let quantile h q =
  if h.n = 0 then nan
  else if q <= 0.0 then h.minv
  else if q >= 1.0 then h.maxv
  else begin
    let target = q *. float_of_int h.n in
    let k = ref 0 and cum = ref 0.0 in
    (try
       for i = 0 to Array.length h.buckets - 1 do
         cum := !cum +. float_of_int h.buckets.(i);
         if !cum >= target then begin
           k := i;
           raise Exit
         end
       done
     with Exit -> ());
    let mid =
      if !k = 0 then h.lo
      else h.lo *. Float.exp ((float_of_int !k -. 0.5) *. h.log_r)
    in
    Float.min h.maxv (Float.max h.minv mid)
  end

(* Cumulative buckets for exposition formats. Only occupied buckets get
   an entry (the geometric grid has ~347, almost all empty); cumulative
   counts are monotone over any upper-bound subset, so the sparse list is
   still a valid cumulative histogram. The terminal +Inf entry always
   carries the full count. *)
type bucket = { le : float; count : int; cumulative : int }

let buckets h =
  let nb = Array.length h.buckets in
  let acc = ref [] and cum = ref 0 in
  for k = 0 to nb - 1 do
    let c = h.buckets.(k) in
    if c > 0 then begin
      cum := !cum + c;
      let le =
        if k = nb - 1 then infinity
        else h.lo *. Float.exp (float_of_int k *. h.log_r)
      in
      acc := { le; count = c; cumulative = !cum } :: !acc
    end
  done;
  let tail =
    match !acc with
    | { le; _ } :: _ when le = infinity -> []
    | _ -> [ { le = infinity; count = 0; cumulative = h.n } ]
  in
  List.rev_append !acc tail

(* --- Snapshots and rendering --- *)

type sample =
  | Count of int
  | Value of float
  | Distribution of {
      n : int;
      sum : float;
      min : float;
      max : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

let sample_of = function
  | Counter c -> Count c.count
  | Gauge g -> Value g.value
  | Histogram h ->
      Distribution
        { n = h.n; sum = h.sum; min = h.minv; max = h.maxv;
          p50 = quantile h 0.5; p95 = quantile h 0.95; p99 = quantile h 0.99 }

let snapshot t =
  List.rev_map
    (fun name -> (name, sample_of (Hashtbl.find t.tbl name)))
    t.rev_order

let find t name = Option.map sample_of (Hashtbl.find_opt t.tbl name)

(* Raw views, for renderers (OpenMetrics) that need the underlying
   histogram rather than the quantile summary. *)
type view = Vcounter of int | Vgauge of float | Vhistogram of histogram

let views t =
  List.rev_map
    (fun name ->
      ( name,
        match Hashtbl.find t.tbl name with
        | Counter c -> Vcounter c.count
        | Gauge g -> Vgauge g.value
        | Histogram h -> Vhistogram h ))
    t.rev_order

let pp_sample ppf = function
  | Count n -> Format.fprintf ppf "%d" n
  | Value v -> Format.fprintf ppf "%.3f" v
  | Distribution d ->
      Format.fprintf ppf
        "n=%d sum=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f" d.n d.sum
        d.min d.p50 d.p95 d.p99 d.max

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-32s %a" name pp_sample s)
    (snapshot t);
  Format.fprintf ppf "@]"

let to_csv t =
  let b = Buffer.create 512 in
  Buffer.add_string b "name,kind,count,value,sum,min,p50,p95,p99,max\n";
  List.iter
    (fun (name, s) ->
      match s with
      | Count n -> Buffer.add_string b (Printf.sprintf "%s,counter,%d,,,,,,,\n" name n)
      | Value v ->
          Buffer.add_string b (Printf.sprintf "%s,gauge,,%.6f,,,,,,\n" name v)
      | Distribution d ->
          Buffer.add_string b
            (Printf.sprintf "%s,histogram,%d,,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n"
               name d.n d.sum d.min d.p50 d.p95 d.p99 d.max))
    (snapshot t);
  Buffer.contents b
