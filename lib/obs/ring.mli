(** A bounded buffer with drop accounting.

    Pushes beyond [capacity] are always counted; whether they are stored
    depends on the policy. Retained elements are returned oldest first. *)

type policy =
  | Drop_newest  (** keep the first [capacity] elements, drop later ones *)
  | Overwrite_oldest  (** a true ring: new elements evict the oldest *)

type 'a t

val create : ?policy:policy -> capacity:int -> unit -> 'a t
(** Default policy is [Drop_newest]. Raises [Invalid_argument] if
    [capacity < 1]. *)

val push : 'a t -> 'a -> unit
val length : 'a t -> int
(** Elements currently retained. *)

val pushed : 'a t -> int
(** Total elements ever pushed, including dropped ones. *)

val dropped : 'a t -> int
(** [pushed t - length t]. *)

val capacity : 'a t -> int
val to_list : 'a t -> 'a list
(** Oldest first. *)

val iter : 'a t -> ('a -> unit) -> unit

val clear : 'a t -> unit
(** Full reset: elements and the pushed/dropped accounting. *)
