(** A completed interval of work on one rank, stamped in the producer's
    clock domain (wall time for real runs, simulated time for the
    event-level simulator). *)

type arg = Int of int | Float of float | Str of string

type t = {
  name : string;
  cat : string;
  rank : int;
  t_start : float;  (** us *)
  dur : float;  (** us *)
  args : (string * arg) list;
}

val v :
  ?cat:string ->
  ?args:(string * arg) list ->
  rank:int ->
  start:float ->
  dur:float ->
  string ->
  t
(** A negative duration (a stepped clock) is clamped to zero and flagged:
    the raw value is kept under the [clamped_neg_dur] arg and {!clamped}
    answers true for the span. *)

val clamped : t -> bool
(** The span was built with a negative duration (see {!v}). *)

val end_time : t -> float
val compare_start : t -> t -> int
(** Orders by start time, then rank. *)

val arg_int : t -> string -> int option
val arg_float : t -> string -> float option
(** Integer args are coerced. *)

val pp : Format.formatter -> t -> unit
