(* Idle-wave front detection over a rank x wave timeline.

   An injected stall shows up twice in the Timeline decomposition: the
   source rank's cell gains *busy* time (the injected delay is spent
   working or spinning — compute, or the "other" bucket for link-side
   injections), while every downstream rank the wave reaches gains *stall*
   time (blocking wait inside the receive, or uncovered idle). The
   detector therefore:

   1. forms per-cell excess-busy and excess-stall signals, preferably
      against a control timeline of the same run without the perturbation
      (differential mode — exact on deterministic substrates), falling
      back to each rank's own median across waves;
   2. locates the origin as the cell with maximal excess busy (the rank
      that *spent* the delay), requiring at least [min_delta] us to call
      anything a wave at all;
   3. finds, per rank, the leading and trailing waves whose excess stall
      crosses a threshold relative to the measured amplitude — the
      idle-wave front;
   4. fits, separately for ranks above and below the origin (the two
      directions the wave can travel, including the reflected wave that
      re-enters from the far edge when the next sweep reverses), the
      wall-clock onset time against hop distance (least squares — the
      propagation speed) and log-amplitude against hop distance (the
      exponential decay rate).

   On a silent (noiseless) system the onsets of a pinned pulse are spaced
   exactly one LogGP hop cost apart and the amplitudes do not decay, so
   the fitted speed matches Perturb.Idle_model to float precision — the
   reconciliation the idlewave report and its tests pin down. *)

type front = {
  rank : int;
  lead_wave : int;  (* first wave whose excess stall crosses the threshold *)
  trail_wave : int;  (* last such wave *)
  onset : float;  (* t_start of the leading cell, us *)
  amplitude : float;  (* max excess stall across the crossing cells, us *)
}

type fit = {
  points : int;
  hop_latency : float;  (* us of wall-clock per rank hop (LSQ slope) *)
  speed : float;  (* ranks per us; 1 / hop_latency *)
  ranks_per_wave : float;  (* wave_period / hop_latency *)
  decay : float;  (* per-hop exponential decay rate of the amplitude *)
}

type t = {
  origin : (int * int) option;  (* (rank, wave) of the delay source *)
  delta : float;  (* measured amplitude at the origin, us *)
  wave_period : float;  (* median steady-state cell width, us *)
  threshold : float;  (* absolute front threshold used, us *)
  fronts : front list;  (* ascending rank; the origin rank is excluded *)
  forward : fit option;  (* ranks above the origin *)
  backward : fit option;  (* ranks below the origin *)
}

let none ~wave_period ~threshold =
  {
    origin = None;
    delta = 0.0;
    wave_period;
    threshold;
    fronts = [];
    forward = None;
    backward = None;
  }

(* Stall = what the wave deposits on a reached rank; busy = what the
   source spends. The two are complementary within a cell, but keeping
   them separate signals is what lets one detector find both ends. *)
let stall_of (c : Timeline.cell) = c.wait +. c.idle

let busy_of (c : Timeline.cell) =
  c.compute +. c.send +. c.recv +. c.other

(* Median of a float array; sorts its argument in place. *)
let median a =
  match Array.length a with
  | 0 -> 0.0
  | n ->
      Array.sort Float.compare a;
      if n mod 2 = 1 then a.(n / 2)
      else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* Least-squares slope of ys against xs (n >= 2, xs not all equal). *)
let slope xs ys =
  let n = float_of_int (Array.length xs) in
  let mean a = Array.fold_left ( +. ) 0.0 a /. n in
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i x ->
      num := !num +. ((x -. mx) *. (ys.(i) -. my));
      den := !den +. ((x -. mx) *. (x -. mx)))
    xs;
  if !den = 0.0 then None else Some (!num /. !den)

let fit_of ~wave_period points =
  (* points: (hop distance, onset us, amplitude us), distance >= 1 *)
  if List.length points < 2 then None
  else begin
    let xs = Array.of_list (List.map (fun (d, _, _) -> float_of_int d) points) in
    let onsets = Array.of_list (List.map (fun (_, o, _) -> o) points) in
    match slope xs onsets with
    | None -> None
    | Some hop_latency ->
        let speed = if hop_latency > 0.0 then 1.0 /. hop_latency else 0.0 in
        let ranks_per_wave =
          if hop_latency > 0.0 then wave_period /. hop_latency else 0.0
        in
        (* Exponential decay: log-linear regression of the amplitudes.
           Equal amplitudes give slope 0 — no decay on a silent system. *)
        let pos = List.filter (fun (_, _, a) -> a > 0.0) points in
        let decay =
          if List.length pos < 2 then 0.0
          else
            let xs =
              Array.of_list (List.map (fun (d, _, _) -> float_of_int d) pos)
            in
            let ls =
              Array.of_list (List.map (fun (_, _, a) -> Float.log a) pos)
            in
            match slope xs ls with None -> 0.0 | Some s -> Float.max 0.0 (-.s)
        in
        Some
          { points = List.length points; hop_latency; speed; ranks_per_wave;
            decay }
  end

let detect ?baseline ?distance ?(rel_threshold = 0.5) ?(min_delta = 0.5)
    (tl : Timeline.t) =
  (* Hop distance between ranks. Ranks are grid points: on a chain the
     wave crosses one rank per hop, so the default is the rank
     difference; on a 2-D grid the caller supplies the signed wavefront
     (diagonal) distance instead. *)
  let distance =
    match distance with
    | Some f -> f
    | None -> fun ~src ~dst -> dst - src
  in
  let ranks = tl.ranks and waves = tl.waves in
  let period_of (t : Timeline.t) =
    let widths = Array.make (max 1 (t.ranks * t.waves)) 0.0 in
    let n = ref 0 in
    for r = 0 to t.ranks - 1 do
      for w = 0 to t.waves - 1 do
        let width = Timeline.cell_width t.cells.(r).(w) in
        if width > 0.0 then begin
          widths.(!n) <- width;
          incr n
        end
      done
    done;
    median (Array.sub widths 0 !n)
  in
  if ranks = 0 || waves = 0 then none ~wave_period:0.0 ~threshold:min_delta
  else begin
    (* The reference signal each cell's excess is measured against:
       the matching cell of a control run when one is given (exact),
       otherwise the rank's own median across waves (robust to the
       pipeline's ramp structure as long as most waves are steady). *)
    let against =
      match baseline with
      | Some (b : Timeline.t) when b.ranks = ranks && b.waves = waves ->
          fun signal r w -> signal b.cells.(r).(w)
      | _ ->
          let rank_median signal r =
            median (Array.init waves (fun w -> signal tl.cells.(r).(w)))
          in
          let stall_med = Array.init ranks (rank_median stall_of) in
          let busy_med = Array.init ranks (rank_median busy_of) in
          fun signal r _ ->
            if signal == stall_of then stall_med.(r) else busy_med.(r)
    in
    let excess signal r w =
      Float.max 0.0 (signal tl.cells.(r).(w) -. against signal r w)
    in
    let wave_period =
      period_of (match baseline with Some b when b.ranks = ranks -> b
                                   | _ -> tl)
    in
    (* Origin: the cell where the delay was spent. *)
    let o_rank = ref (-1) and o_wave = ref (-1) and o_amp = ref 0.0 in
    for r = 0 to ranks - 1 do
      for w = 0 to waves - 1 do
        let e = excess busy_of r w in
        if e > !o_amp then begin
          o_amp := e;
          o_rank := r;
          o_wave := w
        end
      done
    done;
    if !o_amp < min_delta then
      none ~wave_period ~threshold:min_delta
    else begin
      let delta = !o_amp in
      let threshold = Float.max min_delta (rel_threshold *. delta) in
      let fronts = ref [] in
      for r = ranks - 1 downto 0 do
        if r <> !o_rank then begin
          let lead = ref (-1) and trail = ref (-1) and amp = ref 0.0 in
          for w = 0 to waves - 1 do
            let e = excess stall_of r w in
            if e >= threshold then begin
              if !lead < 0 then lead := w;
              trail := w;
              if e > !amp then amp := e
            end
          done;
          if !lead >= 0 then
            fronts :=
              {
                rank = r;
                lead_wave = !lead;
                trail_wave = !trail;
                onset = tl.cells.(r).(!lead).Timeline.t_start;
                amplitude = !amp;
              }
              :: !fronts
        end
      done;
      let fronts = !fronts in
      (* Boundary ranks carry a front but are excluded from the fits:
         the first and last rank lack a neighbor on one side, so their
         steady-state stagger differs from the interior hop cost (rank 0
         never receives, the last rank never sends) and would skew the
         regression. *)
      let points dir =
        List.filter_map
          (fun f ->
            let d = dir * distance ~src:!o_rank ~dst:f.rank in
            if d > 0 && f.rank <> 0 && f.rank <> ranks - 1 then
              Some (d, f.onset, f.amplitude)
            else None)
          fronts
      in
      {
        origin = Some (!o_rank, !o_wave);
        delta;
        wave_period;
        threshold;
        fronts;
        forward = fit_of ~wave_period (points 1);
        backward = fit_of ~wave_period (points (-1));
      }
    end
  end

(* Overlay for Timeline.render: the origin cell and each front's leading
   edge, kept sparse so the heatmap underneath stays readable. *)
let mark t ~rank ~col =
  match t.origin with
  | Some (r, w) when r = rank && w = col -> Some 'O'
  | _ ->
      if
        List.exists
          (fun f -> f.rank = rank && f.lead_wave = col)
          t.fronts
      then Some '>'
      else None

let pp_fit ppf f =
  Format.fprintf ppf
    "%.4f us/hop (%.4f ranks/wave, decay %.4f/hop, %d point(s))"
    f.hop_latency f.ranks_per_wave f.decay f.points

let pp_fit_opt ppf = function
  | None -> Format.pp_print_string ppf "not reached"
  | Some f -> pp_fit ppf f

let pp ppf t =
  match t.origin with
  | None ->
      Format.fprintf ppf "no idle wave detected (threshold %.2f us)"
        t.threshold
  | Some (r, w) ->
      Format.fprintf ppf
        "@[<v>origin: rank %d, wave %d (amplitude %.2f us)@,\
         wave period: %.2f us; front threshold: %.2f us; %d front(s)@,\
         forward:  %a@,backward: %a@]"
        r w t.delta t.wave_period t.threshold (List.length t.fronts)
        pp_fit_opt t.forward pp_fit_opt t.backward
