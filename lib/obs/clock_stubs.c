/* Monotonic time for the instrumentation layer.

   OCaml 5.1's Unix library exposes no clock_gettime, so this one-liner
   bridges to CLOCK_MONOTONIC directly. The value is microseconds since an
   arbitrary but fixed origin: span math only ever subtracts timestamps, so
   the origin does not matter, and unlike gettimeofday an NTP step can
   never run this clock backwards. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value obs_clock_monotonic_us(value unit)
{
  (void)unit;
  LARGE_INTEGER freq, count;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return caml_copy_double((double)count.QuadPart * 1e6 / (double)freq.QuadPart);
}

#else
#include <time.h>

CAMLprim value obs_clock_monotonic_us(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec * 1e6 + (double)ts.tv_nsec / 1e3);
}

#endif
