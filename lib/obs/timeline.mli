(** Per-rank x per-wave timeline analytics over a span trace.

    A wave is one global tile step of the sweep pipeline
    (wave [= sweep * ntiles + tile]). Substrates tag spans emitted inside
    the tile loop with a [("wave", Int w)] arg (wave [-1] marks the
    non-wavefront epilogue); untagged spans are assigned by a
    program-order heuristic anchored on the tagged spans around them.
    Each rank's run is cut into contiguous windows — one per wave plus an
    epilogue column — and decomposed into compute / send / recv / wait /
    other / idle, which by construction sum exactly to the window width. *)

type cell = {
  t_start : float;
  t_end : float;
  compute : float;
  send : float;  (** pure (uncontended) share of the send spans *)
  recv : float;  (** pure (uncontended) share of the receive spans *)
  wait : float;  (** blocking share of comm spans (their ["wait"] arg) *)
  other : float;  (** collectives, halos, perturbations, span overlap *)
  idle : float;  (** window time covered by no span *)
  spans : int;
}

val cell_width : cell -> float
val cell_busy : cell -> float

val zero_cell : float -> cell
(** The zero-width, all-zero cell anchored at the given instant — what an
    unvisited column decomposes to. *)

type t = {
  ranks : int;
  waves : int;
  cells : cell array array;  (** [ranks] x [waves + 1]; last col epilogue *)
  t0 : float;
  start : float array;  (** per-rank first span start *)
  finish : float array;  (** per-rank last span end *)
  dropped : int;  (** spans the producing tracer lost *)
}

val of_spans : ?dropped:int -> ?waves:int -> Span.t list -> t
(** Reconstruct the timeline. [dropped] is the producing tracer's loss
    count, carried through so reports stay honest about truncated traces;
    [waves] forces at least that many wavefront columns. A trace with no
    operation spans at all (empty, or structural-only) yields the
    {!empty} report — [ranks = 0], no cells — rather than an error, so
    consumers degrade gracefully on unperturbed or partial traces. Spans
    named ["rank"] (whole-program wrappers) are excluded from the
    decomposition. *)

val empty : ?dropped:int -> ?waves:int -> unit -> t
(** The degenerate report of a trace with no operation spans: [ranks = 0],
    [cells = [||]]. Rendering and export handle it without raising. *)

val columns : t -> int
(** [waves + 1]: the wavefront columns plus the epilogue. *)

val epilogue_column : t -> int
val cell : t -> rank:int -> col:int -> cell

val wave_arg : string
(** The arg key producers tag spans with: ["wave"]. *)

val epilogue_wave : int
(** The tag value marking epilogue (non-wavefront) spans: [-1]. *)

val equal : ?tol:float -> t -> t -> bool
(** Same shape and, within [tol] (default 1e-6 us), the same per-cell
    decomposition — the cross-substrate identity the timeline tests
    assert. *)

type metric = Compute | Send | Recv | Wait | Idle | Busy | Total

val metric_name : metric -> string
val metric_of_string : string -> metric option
val metric_value : metric -> cell -> float
val rank_total : t -> metric -> int -> float
val column_total : t -> metric -> int -> float

val render :
  ?metric:metric -> ?max_ranks:int -> ?max_cols:int ->
  ?mark:(rank:int -> col:int -> char option) ->
  Format.formatter -> t -> unit
(** ASCII rank x wave heatmap of one metric; large grids are downsampled
    (bucket means) to at most [max_ranks] rows and [max_cols] columns.
    [mark] overlays a character on any display bucket containing a marked
    source cell (first mark in scan order wins) — how the idle-wave
    report draws detected fronts on top of the heatmap. *)

val schema : string
(** The versioned JSON schema id: ["wavefront-timeline/v1"]. *)

val to_json : ?label:string -> t -> string
val to_csv : t -> string
