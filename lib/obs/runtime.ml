(* Runtime telemetry: thin, dependable wrappers over [Gc.quick_stat],
   [Unix.times] and /proc, plus the calibrated allocation-accounting
   window the zero-alloc gate is built on. *)

type sample = {
  time_s : float;
  cpu_s : float;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
  peak_rss_mb : int;
}

(* Peak resident set (VmHWM), MB; 0 where /proc is unavailable or the
   line is unparsable — "unknown", never a measurement. Promoted here
   from the bench suite so every consumer shares one reader. *)
let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec go () =
        match input_line ic with
        | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" ->
            (try Scanf.sscanf line "VmHWM: %d kB" (fun kb -> kb / 1024)
             with Scanf.Scan_failure _ | Failure _ | End_of_file -> 0)
        | _ -> go ()
        | exception End_of_file -> 0
      in
      let r = go () in
      close_in ic;
      r

let sample () =
  let s = Gc.quick_stat () in
  let tm = Unix.times () in
  {
    time_s = Clock.monotonic () /. 1e6;
    cpu_s = tm.Unix.tms_utime +. tm.Unix.tms_stime;
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
    peak_rss_mb = peak_rss_mb ();
  }

type delta = {
  wall_s : float;
  cpu_s : float;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_delta_words : int;
  top_heap_words : int;
  peak_rss_mb : int;
  domains : int;
}

let delta (a : sample) (b : sample) =
  {
    wall_s = b.time_s -. a.time_s;
    cpu_s = b.cpu_s -. a.cpu_s;
    minor_words = b.minor_words -. a.minor_words;
    promoted_words = b.promoted_words -. a.promoted_words;
    major_words = b.major_words -. a.major_words;
    minor_collections = b.minor_collections - a.minor_collections;
    major_collections = b.major_collections - a.major_collections;
    compactions = b.compactions - a.compactions;
    heap_delta_words = b.heap_words - a.heap_words;
    top_heap_words = b.top_heap_words;
    peak_rss_mb = b.peak_rss_mb;
    domains = Domain.recommended_domain_count ();
  }

let utilization d = if d.wall_s > 0.0 then d.cpu_s /. d.wall_s else nan

let delta_kv ?(prefix = "runtime.") d =
  [
    (prefix ^ "wall_s", d.wall_s);
    (prefix ^ "cpu_s", d.cpu_s);
    (prefix ^ "utilization", utilization d);
    (prefix ^ "minor_words", d.minor_words);
    (prefix ^ "promoted_words", d.promoted_words);
    (prefix ^ "major_words", d.major_words);
    (prefix ^ "minor_collections", float_of_int d.minor_collections);
    (prefix ^ "major_collections", float_of_int d.major_collections);
    (prefix ^ "compactions", float_of_int d.compactions);
    (prefix ^ "heap_delta_words", float_of_int d.heap_delta_words);
    (prefix ^ "top_heap_words", float_of_int d.top_heap_words);
    (prefix ^ "peak_rss_mb", float_of_int d.peak_rss_mb);
    (prefix ^ "domains", float_of_int d.domains);
  ]

let to_metrics ?prefix reg d =
  List.iter
    (fun (k, v) -> Metrics.set (Metrics.gauge reg k) v)
    (delta_kv ?prefix d)

let mwords w = w *. 8.0 /. 1e6 (* words -> MB on 64-bit *)

let pp_delta ppf d =
  Format.fprintf ppf
    "%.3f s wall, %.2f s cpu (%.2fx of %d domains), minor %.2f MB \
     (%d gc), major %.2f MB (%d gc), peak rss %d MB"
    d.wall_s d.cpu_s (utilization d) d.domains (mwords d.minor_words)
    d.minor_collections (mwords d.major_words) d.major_collections
    d.peak_rss_mb

type phases = { mutable rev : (string * delta) list }

let phases () = { rev = [] }

let phase ?tracer ?(rank = 0) ps name f =
  let s0 = sample () in
  let t0 = match tracer with None -> 0.0 | Some tr -> Tracer.clock tr () in
  let finish () =
    let d = delta s0 (sample ()) in
    ps.rev <- (name, d) :: ps.rev;
    match tracer with
    | None -> ()
    | Some tr ->
        let now = Tracer.clock tr () in
        Tracer.record tr ~cat:"runtime" ~rank ~start:t0 ~dur:(now -. t0)
          ~args:
            [
              ("minor_words", Span.Float d.minor_words);
              ("major_words", Span.Float d.major_words);
              ("minor_collections", Span.Int d.minor_collections);
              ("major_collections", Span.Int d.major_collections);
              ("peak_rss_mb", Span.Int d.peak_rss_mb);
            ]
          ("runtime." ^ name)
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let report ps = List.rev ps.rev

let pp_report ppf phases =
  Format.fprintf ppf "@[<v>%-12s %9s %6s %10s %7s %6s %8s" "phase" "wall s"
    "cpu x" "minor MB" "maj gc" "compact" "rss MB";
  List.iter
    (fun (name, d) ->
      Format.fprintf ppf "@,%-12s %9.4f %6.2f %10.3f %7d %6d %8d" name
        d.wall_s (utilization d) (mwords d.minor_words) d.major_collections
        d.compactions d.peak_rss_mb)
    phases;
  Format.fprintf ppf "@]"

let pp_phases ppf ps = pp_report ppf (report ps)

(* --- allocation accounting --- *)

type alloc = {
  iterations : int;
  minor_words_total : float;
  minor_words_per_iter : float;
  promoted_words : float;
  minor_collections : int;
}

(* One measurement window. [Gc.minor_words] reads the counter first and
   boxes its result after, so the box behind [before] lands *inside* the
   window — a fixed overhead the caller calibrates away with [noop]. The
   warm-up call outside the window pays one-time lazy initialization
   (first-use closures, table fills) so it is not charged per-iteration. *)
let window iters f =
  f ();
  let s0 = Gc.quick_stat () in
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  let after = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  ( after -. before,
    s1.Gc.promoted_words -. s0.Gc.promoted_words,
    s1.Gc.minor_collections - s0.Gc.minor_collections )

let noop () = ()

let measure_alloc ?(iterations = 1000) f =
  if iterations < 1 then
    invalid_arg "Runtime.measure_alloc: iterations must be >= 1";
  (* The overhead is deterministic, but take the min of three reads so a
     stray finalizer or signal between the reads cannot inflate it. *)
  let ov () =
    let w, _, _ = window iterations noop in
    w
  in
  let overhead = Float.min (ov ()) (Float.min (ov ()) (ov ())) in
  let raw, promoted, mcoll = window iterations f in
  let total = Float.max 0.0 (raw -. overhead) in
  {
    iterations;
    minor_words_total = total;
    minor_words_per_iter = total /. float_of_int iterations;
    promoted_words = promoted;
    minor_collections = mcoll;
  }

let pp_alloc ppf a =
  Format.fprintf ppf
    "%.3f minor words/iter (%.0f over %d iters, %.0f promoted, %d minor gc)"
    a.minor_words_per_iter a.minor_words_total a.iterations a.promoted_words
    a.minor_collections
