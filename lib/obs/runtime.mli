(** OCaml-runtime telemetry: GC counters, CPU/wall utilization and peak
    RSS sampled at phase boundaries, plus a deterministic
    minor-words-per-iteration allocation harness.

    This is the layer that watches the *process* rather than the modeled
    machine: the serving-service milestone needs the closed-form hot path
    to be allocation-free and GC-quiet, and these samples are how that
    claim is measured, gated and ratcheted. *)

(** {1 Samples and deltas} *)

type sample = {
  time_s : float;  (** monotonic seconds *)
  cpu_s : float;  (** process user + system CPU seconds, all domains *)
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
  peak_rss_mb : int;
}

val sample : unit -> sample
(** A point-in-time snapshot ([Gc.quick_stat], [Unix.times], {!peak_rss_mb}). *)

val peak_rss_mb : unit -> int
(** Peak resident set of this process (Linux [VmHWM]), MB. Returns [0]
    where [/proc/self/status] is absent or unparsable (non-Linux hosts,
    restricted sandboxes) — callers treat 0 as "unknown", never as a
    measured value. *)

type delta = {
  wall_s : float;
  cpu_s : float;  (** CPU seconds burned across all domains in the phase *)
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_delta_words : int;  (** end heap minus start heap (can shrink) *)
  top_heap_words : int;  (** end-of-phase value *)
  peak_rss_mb : int;  (** end-of-phase value; 0 = unknown *)
  domains : int;  (** [Domain.recommended_domain_count] at the end *)
}

val delta : sample -> sample -> delta
(** [delta before after]. *)

val utilization : delta -> float
(** CPU seconds per wall second — 1.0 is one fully busy domain, [domains]
    is every core busy. [nan] for zero-width phases. *)

val delta_kv : ?prefix:string -> delta -> (string * float) list
(** The delta flattened to numeric key/value pairs (keys like
    ["runtime.minor_words"]), the form the run ledger records. *)

val to_metrics : ?prefix:string -> Metrics.t -> delta -> unit
(** Publish the delta as gauges into a registry (same keys as
    {!delta_kv}). *)

val pp_delta : Format.formatter -> delta -> unit

(** {1 Phase collection} *)

type phases
(** An ordered collector of named phase deltas (one report's [runtime]
    section). Not synchronized: drive it from one domain. *)

val phases : unit -> phases

val phase : ?tracer:Tracer.t -> ?rank:int -> phases -> string -> (unit -> 'a) -> 'a
(** [phase ps name f] runs [f], records the runtime delta across it under
    [name] (also on exception), and — when [tracer] is given — emits a
    ["runtime.<name>"] span carrying the headline GC numbers as args, on
    the tracer's own clock. *)

val report : phases -> (string * delta) list
(** In execution order. *)

val pp_report : Format.formatter -> (string * delta) list -> unit
(** The phase table ({!report}'s form — what harness reports store). *)

val pp_phases : Format.formatter -> phases -> unit

(** {1 Allocation accounting} *)

type alloc = {
  iterations : int;
  minor_words_total : float;  (** calibrated: harness overhead removed *)
  minor_words_per_iter : float;
  promoted_words : float;
  minor_collections : int;
}

val measure_alloc : ?iterations:int -> (unit -> unit) -> alloc
(** Minor-heap words allocated per call of the closure, measured over
    [iterations] calls (default 1000) after one warm-up call. The fixed
    cost of the measurement window itself (the boxed [Gc.minor_words]
    read) is calibrated with an empty closure and subtracted, so a truly
    allocation-free closure measures exactly 0.0 — deterministically,
    which is what lets tests pin it with [=] rather than a tolerance.
    Run it from a single domain with no concurrent allocation. *)

val pp_alloc : Format.formatter -> alloc -> unit
