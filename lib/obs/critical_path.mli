(** The critical path through a recorded run: the longest dependency chain
    ending at the last-finishing span, walked backwards through program
    order within a rank and message edges between ranks. *)

type edge = { src : int; dst : int; t_send : float; t_recv : float }
(** "Rank [dst] could not pass [t_recv] before rank [src] reached
    [t_send]." *)

type step = { span : Span.t; via_message : edge option }
(** [via_message] is the edge through which this step gated the next
    (later) step; [None] means program order. *)

val edges_of_spans :
  ?send:string -> ?recv:string -> Span.t list -> edge list
(** Reconstruct message edges by FIFO matching: the k-th span named [send]
    (default ["send"], arg ["dst"]) from rank s to rank d pairs with the
    k-th span named [recv] (default ["recv"], arg ["src"]) on d from s —
    exact for FIFO channels. *)

val walk : spans:Span.t list -> edges:edge list -> step list
(** In chronological order, ending at the last-finishing span. On a
    bounded trace that dropped spans the walk ends where the record
    does. *)

type report = { steps : step list; dropped : int; complete : bool }
(** A walk plus the record's integrity: [complete] is false when the trace
    behind it dropped spans, in which case the path's head may be
    missing. *)

val report : ?dropped:int -> spans:Span.t list -> edges:edge list -> unit -> report
(** {!walk} with drop accounting attached; pass the producing tracer's
    [Tracer.dropped]. *)

val truncation_note : report -> string option
(** The explicit truncation warning to render with the path, [None] when
    the record was complete. *)

type segment = { name : string; count : int; total : float }

val summarize : step list -> segment list
(** Time on the path grouped by span name, largest first. *)

val pp : Format.formatter -> step list -> unit
