(** OpenMetrics / Prometheus text exposition of a {!Metrics} registry —
    the scrape surface a serving deployment consumes.

    Rendering rules:
    - metric and label names are sanitized to [[a-zA-Z0-9_:]] (invalid
      characters become ['_'], a leading digit gains one), so registry
      names like ["sim.per_iteration"] expose as [sim_per_iteration];
    - counters render as [name_total], gauges as [name], histograms as
      cumulative [name_bucket{le="..."}] series (occupied buckets plus
      the mandatory [le="+Inf"]) with [name_sum] and [name_count];
    - label values escape backslash, double quote and newline per the
      spec; [nan]/infinite values render as [NaN]/[+Inf]/[-Inf];
    - the exposition ends with [# EOF]. *)

val render : ?labels:(string * string) list -> Metrics.t -> string
(** [render ~labels reg] is the full exposition, with [labels] attached
    to every sample (e.g. [("subcommand", "simulate")]). *)

val escape_label_value : string -> string
(** The label-value escaping alone (backslash, double quote and newline
    gain a backslash prefix, newline becoming a literal backslash-n);
    exposed for tests. *)

val sanitize_name : string -> string
(** The metric/label name mangling alone; exposed for tests. *)
