(* Time sources for the instrumentation layer. Everything in this library
   is stamped in microseconds, matching the model's unit convention. *)

type t = unit -> float

external monotonic_us : unit -> float = "obs_clock_monotonic_us"

let monotonic () = monotonic_us ()

(* The default span clock. Historically this was gettimeofday, which meant
   an NTP step during a run could stamp a span's end before its start;
   spans only ever subtract timestamps, so the monotonic source keeps the
   same µs convention while making negative durations impossible from the
   clock itself. *)
let wall = monotonic

let realtime () = Unix.gettimeofday () *. 1e6

let manual ?(start = 0.0) () =
  let now = ref start in
  ((fun () -> !now), fun d ->
    if d < 0.0 then invalid_arg "Clock.manual: cannot advance backwards";
    now := !now +. d)
