(* Time sources for the instrumentation layer. Everything in this library
   is stamped in microseconds, matching the model's unit convention. *)

type t = unit -> float

let wall () = Unix.gettimeofday () *. 1e6

let manual ?(start = 0.0) () =
  let now = ref start in
  ((fun () -> !now), fun d ->
    if d < 0.0 then invalid_arg "Clock.manual: cannot advance backwards";
    now := !now +. d)
