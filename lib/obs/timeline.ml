(* Per-rank x per-wave timeline analytics: reconstruct, from a flat span
   trace, where every rank's time went in every wave of the sweep pipeline.

   A "wave" is one global tile step: wave w = sweep * ntiles + tile, the
   granularity at which the paper's (r2)/(r4) recurrences advance. Substrates
   tag the spans they emit inside the tile loop with a ("wave", Int w) arg
   (wave -1 marks the non-wavefront epilogue); spans from layers that cannot
   know the wave (e.g. the shared-memory transport) are assigned by a
   program-order heuristic anchored on the tagged spans around them: a
   receive belongs to the wave of the next tagged span (its own tile's
   compute comes after it), anything else to the wave of the latest tagged
   span started at or before it.

   Each rank's run is then cut into contiguous windows, one per wave plus
   one epilogue column, and each window decomposed into

     compute | send | recv (pure) | wait (blocking) | other | idle

   where wait is the blocking share recorded on comm spans (their "wait"
   arg), idle is the window time covered by no span at all, and other is
   the exact remainder (collectives, halos, perturbation injections, span
   overlap corrections) — so the six buckets always sum to the window width
   and whole-timeline identities hold with no float leakage beyond
   summation order. *)

type cell = {
  t_start : float;
  t_end : float;
  compute : float;
  send : float;
  recv : float;  (** pure (uncontended) share of the receive spans *)
  wait : float;  (** blocking share of the comm spans ("wait" arg) *)
  other : float;  (** collectives, halos, perturbations, overlap *)
  idle : float;  (** window time covered by no span *)
  spans : int;
}

let cell_width c = c.t_end -. c.t_start
let cell_busy c = cell_width c -. c.idle

let zero_cell t =
  { t_start = t; t_end = t; compute = 0.0; send = 0.0; recv = 0.0;
    wait = 0.0; other = 0.0; idle = 0.0; spans = 0 }

type t = {
  ranks : int;
  waves : int;  (** wavefront columns; the epilogue is one extra column *)
  cells : cell array array;  (** [ranks] x [waves + 1]; last col = epilogue *)
  t0 : float;  (** earliest span start across ranks *)
  start : float array;  (** per-rank first span start *)
  finish : float array;  (** per-rank last span end *)
  dropped : int;  (** spans the producing tracer lost *)
}

let columns t = t.waves + 1
let epilogue_column t = t.waves
let cell t ~rank ~col = t.cells.(rank).(col)

let wave_arg = "wave"
let epilogue_wave = -1

(* --- wave assignment --- *)

(* Span kinds that precede their wave's compute in program order (Figure 4:
   pre-compute, then the two receives, then compute): an untagged one is
   pulled forward to the next anchor's wave. Everything else trails its
   wave's compute and takes the previous anchor's wave. *)
let leads_wave (s : Span.t) = s.name = "recv" || s.name = "precompute"

(* Epilogue operations by name, for traces whose producers tag nothing. *)
let epilogue_name (s : Span.t) =
  match s.name with
  | "allreduce" | "barrier" | "halo" | "stencil" -> true
  | _ -> false

(* Assign a wave to every span of one rank (spans in start order):
   explicit tag wins; otherwise interpolate between tagged anchors. *)
let assign_waves (spans : Span.t array) =
  let n = Array.length spans in
  let waves = Array.make n epilogue_wave in
  let anchors = ref [] in
  Array.iteri
    (fun i s ->
      match Span.arg_int s wave_arg with
      | Some w ->
          waves.(i) <- w;
          if w >= 0 then anchors := (s.Span.t_start, w) :: !anchors
      | None -> waves.(i) <- min_int)
    spans;
  let anchors = Array.of_list (List.rev !anchors) in
  let n_anchor = Array.length anchors in
  (* Last anchor index with start <= t (binary search; -1 if none). *)
  let anchor_at t =
    let lo = ref 0 and hi = ref (n_anchor - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if fst anchors.(mid) <= t then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    !best
  in
  Array.iteri
    (fun i s ->
      if waves.(i) = min_int then
        if n_anchor = 0 || epilogue_name s then waves.(i) <- epilogue_wave
        else begin
          let prev = anchor_at s.Span.t_start in
          let next = if prev + 1 < n_anchor then prev + 1 else -1 in
          waves.(i) <-
            (if leads_wave s then
               if next >= 0 then snd anchors.(next)
               else if prev >= 0 then snd anchors.(prev)
               else epilogue_wave
             else if prev >= 0 then snd anchors.(prev)
             else if next >= 0 then snd anchors.(next)
             else epilogue_wave)
        end)
    spans;
  waves

(* --- decomposition --- *)

(* Length of the union of span intervals clipped to [lo, hi]: the busy
   time, with nested/overlapping spans counted once. *)
let covered ~lo ~hi spans =
  let iv =
    List.filter_map
      (fun (s : Span.t) ->
        let a = Float.max lo s.t_start and b = Float.min hi (Span.end_time s) in
        if b > a then Some (a, b) else None)
      spans
    |> List.sort compare
  in
  let rec go acc cur = function
    | [] -> ( match cur with None -> acc | Some (a, b) -> acc +. (b -. a))
    | (a, b) :: rest -> (
        match cur with
        | None -> go acc (Some (a, b)) rest
        | Some (ca, cb) ->
            if a <= cb then go acc (Some (ca, Float.max cb b)) rest
            else go (acc +. (cb -. ca)) (Some (a, b)) rest)
  in
  go 0.0 None iv

let wait_of (s : Span.t) =
  match Span.arg_float s "wait" with
  | Some w -> Float.min s.dur (Float.max 0.0 w)
  | None -> 0.0

let decompose ~lo ~hi spans =
  let compute = ref 0.0 and send = ref 0.0 and recv = ref 0.0 in
  let wait = ref 0.0 in
  List.iter
    (fun (s : Span.t) ->
      if s.cat = "compute" || s.name = "compute" || s.name = "precompute"
      then compute := !compute +. s.dur
      else
        match s.name with
        | "send" ->
            let w = wait_of s in
            send := !send +. (s.dur -. w);
            wait := !wait +. w
        | "recv" ->
            let w = wait_of s in
            recv := !recv +. (s.dur -. w);
            wait := !wait +. w
        | _ -> ())
    spans;
  let width = hi -. lo in
  let idle = Float.max 0.0 (width -. covered ~lo ~hi spans) in
  let other = width -. idle -. !compute -. !send -. !recv -. !wait in
  { t_start = lo; t_end = hi; compute = !compute; send = !send;
    recv = !recv; wait = !wait; other; idle; spans = List.length spans }

(* Spans that describe a whole rank rather than one operation (the real
   runtime wraps each domain's program in a "rank" span). *)
let structural (s : Span.t) = s.name = "rank" || s.cat = "rank"

(* A trace with no operation spans at all (empty, or structural-only)
   degrades to an empty report rather than an error, so the detector and
   `wavefront timeline` handle unperturbed or partial traces gracefully. *)
let empty ?(dropped = 0) ?waves () =
  let waves = match waves with Some w -> max w 0 | None -> 0 in
  { ranks = 0; waves; cells = [||]; t0 = 0.0; start = [||]; finish = [||];
    dropped }

let of_spans ?(dropped = 0) ?waves spans =
  let spans = List.filter (fun s -> not (structural s)) spans in
  let ranks =
    1 + List.fold_left (fun a (s : Span.t) -> max a s.Span.rank) (-1) spans
  in
  if ranks < 1 then empty ~dropped ?waves ()
  else begin
  let by_rank = Array.make ranks [] in
  List.iter
    (fun (s : Span.t) -> by_rank.(s.rank) <- s :: by_rank.(s.rank))
    spans;
  let by_rank =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort Span.compare_start a;
        a)
      by_rank
  in
  let assigned = Array.map assign_waves by_rank in
  let max_wave =
    Array.fold_left
      (fun acc ws -> Array.fold_left max acc ws)
      (-1) assigned
  in
  let waves =
    match waves with Some w -> max w (max_wave + 1) | None -> max_wave + 1
  in
  let start = Array.make ranks 0.0 and finish = Array.make ranks 0.0 in
  let cells =
    Array.init ranks (fun rank ->
        let rs = by_rank.(rank) in
        if Array.length rs = 0 then Array.init (waves + 1) (fun _ -> zero_cell 0.0)
        else begin
          start.(rank) <- rs.(0).Span.t_start;
          finish.(rank) <-
            Array.fold_left
              (fun a s -> Float.max a (Span.end_time s))
              (Span.end_time rs.(0))
              rs;
          (* Bucket the rank's spans by column (epilogue last). *)
          let buckets = Array.make (waves + 1) [] in
          Array.iteri
            (fun i s ->
              let w = assigned.(rank).(i) in
              let col = if w < 0 || w >= waves then waves else w in
              buckets.(col) <- s :: buckets.(col))
            rs;
          (* Contiguous windows: each column starts at its first span (or
             where the previous column ended) and runs to the next
             column's start; the last runs to the rank's finish. *)
          let first_start l =
            List.fold_left
              (fun acc (s : Span.t) ->
                match acc with
                | None -> Some s.Span.t_start
                | Some a -> Some (Float.min a s.Span.t_start))
              None l
          in
          let bounds = Array.make (waves + 2) nan in
          bounds.(0) <- start.(rank);
          for col = 1 to waves do
            bounds.(col) <-
              (match first_start buckets.(col) with
              | Some t -> Float.max t bounds.(col - 1)
              | None -> nan)
          done;
          bounds.(waves + 1) <- finish.(rank);
          (* Fill empty columns: their window collapses at the next known
             boundary, walking backwards. *)
          let next_known = ref finish.(rank) in
          for col = waves + 1 downto 0 do
            if Float.is_nan bounds.(col) then bounds.(col) <- !next_known
            else next_known := bounds.(col)
          done;
          Array.init (waves + 1) (fun col ->
              decompose ~lo:bounds.(col) ~hi:bounds.(col + 1) buckets.(col))
        end)
  in
  let t0 =
    Array.fold_left Float.min
      (if ranks > 0 then start.(0) else 0.0)
      start
  in
  { ranks; waves; cells; t0; start; finish; dropped }
  end

(* --- comparison (for cross-substrate identity tests) --- *)

let cell_equal ~tol a b =
  let f x y = Float.abs (x -. y) <= tol in
  f (cell_width a) (cell_width b)
  && f a.compute b.compute && f a.send b.send && f a.recv b.recv
  && f a.wait b.wait && f a.other b.other && f a.idle b.idle

let equal ?(tol = 1e-6) a b =
  a.ranks = b.ranks && a.waves = b.waves
  && Array.for_all2
       (fun ra rb -> Array.for_all2 (cell_equal ~tol) ra rb)
       a.cells b.cells

(* --- aggregate views --- *)

type metric = Compute | Send | Recv | Wait | Idle | Busy | Total

let metric_name = function
  | Compute -> "compute"
  | Send -> "send"
  | Recv -> "recv"
  | Wait -> "wait"
  | Idle -> "idle"
  | Busy -> "busy"
  | Total -> "total"

let metric_of_string = function
  | "compute" -> Some Compute
  | "send" -> Some Send
  | "recv" -> Some Recv
  | "wait" -> Some Wait
  | "idle" -> Some Idle
  | "busy" -> Some Busy
  | "total" -> Some Total
  | _ -> None

let metric_value m c =
  match m with
  | Compute -> c.compute
  | Send -> c.send
  | Recv -> c.recv
  | Wait -> c.wait
  | Idle -> c.idle
  | Busy -> cell_busy c
  | Total -> cell_width c

let rank_total t m rank =
  Array.fold_left (fun a c -> a +. metric_value m c) 0.0 t.cells.(rank)

let column_total t m col =
  let acc = ref 0.0 in
  for rank = 0 to t.ranks - 1 do
    acc := !acc +. metric_value m t.cells.(rank).(col)
  done;
  !acc

(* --- ASCII heatmap --- *)

let ramp = " .:-=+*#%@"

let shade ~vmax v =
  if vmax <= 0.0 then ramp.[0]
  else
    let i =
      int_of_float (Float.round (v /. vmax *. float_of_int (String.length ramp - 1)))
    in
    ramp.[max 0 (min (String.length ramp - 1) i)]

(* Downsample [n] source indices onto [m] display buckets (mean of the
   aggregated values), so big grids stay readable. *)
let bucketize n m =
  let m = min n m in
  Array.init m (fun b ->
      let lo = b * n / m and hi = ((b + 1) * n / m) - 1 in
      (lo, max lo hi))

let render ?(metric = Wait) ?(max_ranks = 32) ?(max_cols = 72) ?mark ppf t =
  let cols = columns t in
  let rbuckets = bucketize t.ranks max_ranks in
  let cbuckets = bucketize cols max_cols in
  (* Overlay: a marked source cell claims its display bucket's character
     (first mark in scan order wins), so detected features stay visible
     after downsampling. *)
  let mark_of rlo rhi clo chi =
    match mark with
    | None -> None
    | Some f ->
        let res = ref None in
        (try
           for r = rlo to rhi do
             for c = clo to chi do
               match f ~rank:r ~col:c with
               | Some ch ->
                   res := Some ch;
                   raise Exit
               | None -> ()
             done
           done
         with Exit -> ());
        !res
  in
  let value rlo rhi clo chi =
    let acc = ref 0.0 and n = ref 0 in
    for r = rlo to rhi do
      for c = clo to chi do
        acc := !acc +. metric_value metric t.cells.(r).(c);
        incr n
      done
    done;
    if !n = 0 then 0.0 else !acc /. float_of_int !n
  in
  let grid =
    Array.map
      (fun (rlo, rhi) ->
        Array.map (fun (clo, chi) -> value rlo rhi clo chi) cbuckets)
      rbuckets
  in
  let vmax = Array.fold_left (Array.fold_left Float.max) 0.0 grid in
  Format.fprintf ppf
    "@[<v>%s per (rank, wave) cell, us; scale '%s' = 0 .. '%c' = %.2f; \
     last column = epilogue@,"
    (metric_name metric) " " ramp.[String.length ramp - 1] vmax;
  Array.iteri
    (fun bi row ->
      let rlo, rhi = rbuckets.(bi) in
      let label =
        if rlo = rhi then Printf.sprintf "r%-5d" rlo
        else Printf.sprintf "r%d-%d" rlo rhi
      in
      Format.fprintf ppf "%-8s|" label;
      Array.iteri
        (fun ci v ->
          let clo, chi = cbuckets.(ci) in
          match mark_of rlo rhi clo chi with
          | Some ch -> Format.fprintf ppf "%c" ch
          | None -> Format.fprintf ppf "%c" (shade ~vmax v))
        row;
      Format.fprintf ppf "|@,")
    grid;
  Format.fprintf ppf "@]"

(* --- exports --- *)

let schema = "wavefront-timeline/v1"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(label = "") t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"%s\",\"label\":\"%s\",\"ranks\":%d,\"waves\":%d,\
        \"dropped\":%d,\"cells\":[" schema (json_escape label) t.ranks t.waves
       t.dropped);
  let first = ref true in
  for rank = 0 to t.ranks - 1 do
    for col = 0 to t.waves do
      let c = t.cells.(rank).(col) in
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "{\"rank\":%d,\"wave\":%d,\"t_start\":%.6f,\"t_end\":%.6f,\
            \"compute\":%.6f,\"send\":%.6f,\"recv\":%.6f,\"wait\":%.6f,\
            \"other\":%.6f,\"idle\":%.6f,\"spans\":%d}"
           rank
           (if col = t.waves then -1 else col)
           c.t_start c.t_end c.compute c.send c.recv c.wait c.other c.idle
           c.spans)
    done
  done;
  Buffer.add_string b "]}";
  Buffer.contents b

let to_csv t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "rank,wave,t_start,t_end,compute,send,recv,wait,other,idle,spans\n";
  for rank = 0 to t.ranks - 1 do
    for col = 0 to t.waves do
      let c = t.cells.(rank).(col) in
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d\n"
           rank
           (if col = t.waves then -1 else col)
           c.t_start c.t_end c.compute c.send c.recv c.wait c.other c.idle
           c.spans)
    done
  done;
  Buffer.contents b
