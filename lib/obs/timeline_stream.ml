(* Bounded-memory streaming fold of timeline cells.

   The batched engine visits each (rank, column) once per iteration and
   emits the finished cell; at a million ranks the dense
   [Timeline.of_spans] grid is out of reach, so this accumulator folds
   the stream into (a) a rank-bucketized, wave-bucketized heatmap grid
   whose bucket means are exactly what [Timeline.render] would have
   displayed of the dense grid, and (b) exact full-resolution per-column
   totals (the wave axis is short — sums over a bucket's member ranks
   are exact even though its mean cell is a summary). Memory is
   O(rank_buckets * col_buckets + waves), independent of the rank
   count.

   Cells for the same (rank, column) across iterations merge additively
   with window union — the producer's contract. The fold is guarded by
   a mutex so one accumulator can serve a multi-domain run; the batched
   engine only emits a handful of cells per rank per sweep, so the lock
   is not on the simulation's critical path. *)

type t = {
  ranks : int;
  waves : int;
  rank_buckets : int;  (* heatmap rows *)
  wave_buckets : int;  (* heatmap wavefront columns (epilogue extra) *)
  (* bucket grid, flat [rb * (wave_buckets + 1) + cb]: per-metric sums,
     member count, window envelope *)
  g_compute : float array;
  g_send : float array;
  g_recv : float array;
  g_wait : float array;
  g_other : float array;
  g_idle : float array;
  g_spans : int array;
  g_count : int array;
  g_tmin : float array;
  g_tmax : float array;
  (* exact per-column totals, index [col] with [waves] = epilogue *)
  col_compute : float array;
  col_send : float array;
  col_recv : float array;
  col_wait : float array;
  col_other : float array;
  col_idle : float array;
  col_width : float array;
  col_cells : int array;
  (* per-rank-bucket run envelope *)
  b_start : float array;
  b_finish : float array;
  mutable cells : int;
  lock : Mutex.t;
}

let create ?(max_rank_buckets = 512) ?(max_wave_buckets = 256) ~ranks ~waves
    () =
  if ranks < 1 || waves < 1 then invalid_arg "Timeline_stream.create";
  let rank_buckets = min ranks (max 1 max_rank_buckets) in
  let wave_buckets = min waves (max 1 max_wave_buckets) in
  let ncells = rank_buckets * (wave_buckets + 1) in
  {
    ranks;
    waves;
    rank_buckets;
    wave_buckets;
    g_compute = Array.make ncells 0.0;
    g_send = Array.make ncells 0.0;
    g_recv = Array.make ncells 0.0;
    g_wait = Array.make ncells 0.0;
    g_other = Array.make ncells 0.0;
    g_idle = Array.make ncells 0.0;
    g_spans = Array.make ncells 0;
    g_count = Array.make ncells 0;
    g_tmin = Array.make ncells infinity;
    g_tmax = Array.make ncells neg_infinity;
    col_compute = Array.make (waves + 1) 0.0;
    col_send = Array.make (waves + 1) 0.0;
    col_recv = Array.make (waves + 1) 0.0;
    col_wait = Array.make (waves + 1) 0.0;
    col_other = Array.make (waves + 1) 0.0;
    col_idle = Array.make (waves + 1) 0.0;
    col_width = Array.make (waves + 1) 0.0;
    col_cells = Array.make (waves + 1) 0;
    b_start = Array.make rank_buckets infinity;
    b_finish = Array.make rank_buckets neg_infinity;
    cells = 0;
    lock = Mutex.create ();
  }

let rank_bucket t rank = rank * t.rank_buckets / t.ranks

let wave_bucket t col =
  if col >= t.waves then t.wave_buckets else col * t.wave_buckets / t.waves

let rank_bucket_bounds t rb =
  let lo = (rb * t.ranks + t.rank_buckets - 1) / t.rank_buckets in
  (* first rank mapping to rb .. last: inverse of [rank_bucket] *)
  let lo = if rank_bucket t lo = rb then lo else lo + 1 in
  let hi = ((rb + 1) * t.ranks - 1) / t.rank_buckets in
  let hi = if rank_bucket t hi = rb then hi else hi - 1 in
  (lo, hi)

let wave_bucket_bounds t cb =
  if cb >= t.wave_buckets then (t.waves, t.waves)
  else begin
    let lo = cb * t.waves / t.wave_buckets in
    let lo = if wave_bucket t lo = cb then lo else lo + 1 in
    let hi = ((cb + 1) * t.waves - 1) / t.wave_buckets in
    let hi = if wave_bucket t hi = cb then hi else hi - 1 in
    (lo, hi)
  end

let sink t ~rank ~col (c : Timeline.cell) =
  if rank < 0 || rank >= t.ranks || col < 0 || col > t.waves then
    invalid_arg "Timeline_stream.sink: cell out of range";
  let width = c.t_end -. c.t_start in
  Mutex.lock t.lock;
  let rb = rank_bucket t rank in
  let i = (rb * (t.wave_buckets + 1)) + wave_bucket t col in
  t.g_compute.(i) <- t.g_compute.(i) +. c.compute;
  t.g_send.(i) <- t.g_send.(i) +. c.send;
  t.g_recv.(i) <- t.g_recv.(i) +. c.recv;
  t.g_wait.(i) <- t.g_wait.(i) +. c.wait;
  t.g_other.(i) <- t.g_other.(i) +. c.other;
  t.g_idle.(i) <- t.g_idle.(i) +. c.idle;
  t.g_spans.(i) <- t.g_spans.(i) + c.spans;
  t.g_count.(i) <- t.g_count.(i) + 1;
  if c.t_start < t.g_tmin.(i) then t.g_tmin.(i) <- c.t_start;
  if c.t_end > t.g_tmax.(i) then t.g_tmax.(i) <- c.t_end;
  t.col_compute.(col) <- t.col_compute.(col) +. c.compute;
  t.col_send.(col) <- t.col_send.(col) +. c.send;
  t.col_recv.(col) <- t.col_recv.(col) +. c.recv;
  t.col_wait.(col) <- t.col_wait.(col) +. c.wait;
  t.col_other.(col) <- t.col_other.(col) +. c.other;
  t.col_idle.(col) <- t.col_idle.(col) +. c.idle;
  t.col_width.(col) <- t.col_width.(col) +. width;
  t.col_cells.(col) <- t.col_cells.(col) + 1;
  if c.t_start < t.b_start.(rb) then t.b_start.(rb) <- c.t_start;
  if c.t_end > t.b_finish.(rb) then t.b_finish.(rb) <- c.t_end;
  t.cells <- t.cells + 1;
  Mutex.unlock t.lock

let cells t = t.cells
let ranks t = t.ranks
let waves t = t.waves
let rank_buckets t = t.rank_buckets
let wave_buckets t = t.wave_buckets

let column_total t (m : Timeline.metric) col =
  match m with
  | Compute -> t.col_compute.(col)
  | Send -> t.col_send.(col)
  | Recv -> t.col_recv.(col)
  | Wait -> t.col_wait.(col)
  | Idle -> t.col_idle.(col)
  | Busy ->
      t.col_compute.(col) +. t.col_send.(col) +. t.col_recv.(col)
      +. t.col_other.(col)
  | Total -> t.col_width.(col)

let column_cells t col = t.col_cells.(col)

(* The bucket-mean timeline: rows are rank buckets, columns wave
   buckets; each cell is the mean decomposition of the bucket's member
   cells over the union window — what [Timeline.render] displays of the
   dense grid. *)
let to_timeline t : Timeline.t =
  let ncb = t.wave_buckets + 1 in
  let cell_of i =
    let n = t.g_count.(i) in
    if n = 0 then Timeline.zero_cell 0.0
    else
      let fn = float_of_int n in
      {
        Timeline.t_start = t.g_tmin.(i);
        t_end = t.g_tmax.(i);
        compute = t.g_compute.(i) /. fn;
        send = t.g_send.(i) /. fn;
        recv = t.g_recv.(i) /. fn;
        wait = t.g_wait.(i) /. fn;
        other = t.g_other.(i) /. fn;
        idle = t.g_idle.(i) /. fn;
        spans = t.g_spans.(i);
      }
  in
  let cells =
    Array.init t.rank_buckets (fun rb ->
        Array.init ncb (fun cb -> cell_of ((rb * ncb) + cb)))
  in
  let start =
    Array.map (fun s -> if s = infinity then 0.0 else s) t.b_start
  in
  let finish =
    Array.map (fun f -> if f = neg_infinity then 0.0 else f) t.b_finish
  in
  let t0 = Array.fold_left Float.min infinity start in
  {
    Timeline.ranks = t.rank_buckets;
    waves = t.wave_buckets;
    cells;
    t0 = (if t0 = infinity then 0.0 else t0);
    start;
    finish;
    dropped = 0;
  }

(* --- chunked export: bucket rows, sums not means, flushed every few
   rows so a million-cell fold never builds one giant string --- *)

let schema = "wavefront-timeline-stream/v1"

let flush_every = 64

let emit_csv t out =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "rank_lo,rank_hi,wave_lo,wave_hi,cells,t_start,t_end,compute,send,recv,\
     wait,other,idle,spans\n";
  let rows = ref 0 in
  for rb = 0 to t.rank_buckets - 1 do
    for cb = 0 to t.wave_buckets do
      let i = (rb * (t.wave_buckets + 1)) + cb in
      if t.g_count.(i) > 0 then begin
        let rlo, rhi = rank_bucket_bounds t rb in
        let wlo, whi = wave_bucket_bounds t cb in
        Buffer.add_string b
          (Printf.sprintf
             "%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d\n"
             rlo rhi
             (if wlo = t.waves then -1 else wlo)
             (if whi = t.waves then -1 else whi)
             t.g_count.(i) t.g_tmin.(i) t.g_tmax.(i) t.g_compute.(i)
             t.g_send.(i) t.g_recv.(i) t.g_wait.(i) t.g_other.(i)
             t.g_idle.(i) t.g_spans.(i));
        incr rows;
        if !rows mod flush_every = 0 then begin
          out (Buffer.contents b);
          Buffer.clear b
        end
      end
    done
  done;
  if Buffer.length b > 0 then out (Buffer.contents b)

let emit_json ?(label = "") t out =
  let b = Buffer.create 8192 in
  let esc s =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
           | c when Char.code c < 0x20 ->
               Printf.sprintf "\\u%04x" (Char.code c)
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"%s\",\"label\":\"%s\",\"ranks\":%d,\"waves\":%d,\
        \"rank_buckets\":%d,\"wave_buckets\":%d,\"cells\":%d,\"buckets\":["
       schema (esc label) t.ranks t.waves t.rank_buckets t.wave_buckets
       t.cells);
  let first = ref true and rows = ref 0 in
  for rb = 0 to t.rank_buckets - 1 do
    for cb = 0 to t.wave_buckets do
      let i = (rb * (t.wave_buckets + 1)) + cb in
      if t.g_count.(i) > 0 then begin
        let rlo, rhi = rank_bucket_bounds t rb in
        let wlo, whi = wave_bucket_bounds t cb in
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b
          (Printf.sprintf
             "{\"rank_lo\":%d,\"rank_hi\":%d,\"wave_lo\":%d,\"wave_hi\":%d,\
              \"cells\":%d,\"t_start\":%.6f,\"t_end\":%.6f,\
              \"compute\":%.6f,\"send\":%.6f,\"recv\":%.6f,\"wait\":%.6f,\
              \"other\":%.6f,\"idle\":%.6f,\"spans\":%d}"
             rlo rhi
             (if wlo = t.waves then -1 else wlo)
             (if whi = t.waves then -1 else whi)
             t.g_count.(i) t.g_tmin.(i) t.g_tmax.(i) t.g_compute.(i)
             t.g_send.(i) t.g_recv.(i) t.g_wait.(i) t.g_other.(i)
             t.g_idle.(i) t.g_spans.(i));
        incr rows;
        if !rows mod flush_every = 0 then begin
          out (Buffer.contents b);
          Buffer.clear b
        end
      end
    done
  done;
  Buffer.add_string b "],\"columns\":[";
  let first = ref true in
  for col = 0 to t.waves do
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_string b
      (Printf.sprintf
         "{\"wave\":%d,\"cells\":%d,\"compute\":%.6f,\"send\":%.6f,\
          \"recv\":%.6f,\"wait\":%.6f,\"other\":%.6f,\"idle\":%.6f,\
          \"width\":%.6f}"
         (if col = t.waves then -1 else col)
         t.col_cells.(col) t.col_compute.(col) t.col_send.(col)
         t.col_recv.(col) t.col_wait.(col) t.col_other.(col)
         t.col_idle.(col) t.col_width.(col))
  done;
  Buffer.add_string b "]}";
  out (Buffer.contents b)
