(* A span collector: a bounded buffer of completed spans plus a clock for
   the [span] convenience wrapper. One tracer must only ever be written
   from one domain; parallel runtimes create one tracer per rank and merge
   at the end (see {!merge}). *)

type t = { ring : Span.t Ring.t; clock : Clock.t }

let default_capacity = 1 lsl 19

let create ?(capacity = default_capacity) ?(policy = Ring.Drop_newest)
    ?(clock = Clock.wall) () =
  { ring = Ring.create ~policy ~capacity (); clock }

let clock t = t.clock
let add t s = Ring.push t.ring s

let record t ?cat ?args ~rank ~start ~dur name =
  add t (Span.v ?cat ?args ~rank ~start ~dur name)

let span t ?cat ?args ~rank name f =
  let start = t.clock () in
  Fun.protect
    ~finally:(fun () ->
      record t ?cat ?args ~rank ~start ~dur:(t.clock () -. start) name)
    f

let spans t = List.sort Span.compare_start (Ring.to_list t.ring)
let recorded t = Ring.length t.ring
let total t = Ring.pushed t.ring
let dropped t = Ring.dropped t.ring

let merge ts =
  List.sort Span.compare_start
    (Array.fold_left (fun acc t -> List.rev_append (Ring.to_list t.ring) acc)
       [] ts)
