(** Bounded-memory streaming fold of timeline cells.

    The batched engine emits one finished {!Timeline.cell} per
    (rank, column) visit; at large rank counts the dense per-rank grid
    is out of reach, so this accumulator folds the stream into a
    rank- and wave-bucketized heatmap grid (bucket means — what
    {!Timeline.render} would have displayed of the dense grid) plus
    exact full-resolution per-column totals. Memory is
    O(rank_buckets * wave_buckets + waves), independent of the rank
    count. The fold is mutex-guarded, so one accumulator can serve a
    multi-domain run. *)

type t

val create :
  ?max_rank_buckets:int ->
  ?max_wave_buckets:int ->
  ranks:int ->
  waves:int ->
  unit ->
  t
(** An empty accumulator for a [ranks] x [waves]-wavefront-column run
    ([waves] as reported by the engine outcome; the epilogue column is
    implied). Bucket counts are clamped to the actual extents; defaults
    512 rank buckets x 256 wave buckets. *)

val sink : t -> rank:int -> col:int -> Timeline.cell -> unit
(** The engine-facing cell sink ([Batched.cell_sink]-shaped). Column
    [waves] is the epilogue. Repeat visits to one (rank, column) fold
    additively (totals add, windows union) — the producer's
    multi-iteration contract. Raises [Invalid_argument] on an
    out-of-range cell. *)

val cells : t -> int
(** Cells folded so far. *)

val ranks : t -> int
val waves : t -> int
val rank_buckets : t -> int
val wave_buckets : t -> int

val rank_bucket_bounds : t -> int -> int * int
(** Inclusive source-rank range of a heatmap row. *)

val wave_bucket_bounds : t -> int -> int * int
(** Inclusive source-column range of a heatmap column; the epilogue
    bucket reports [(waves, waves)]. *)

val column_total : t -> Timeline.metric -> int -> float
(** Exact (unbucketized) total of a metric over one wave column across
    every rank; index [waves] is the epilogue. *)

val column_cells : t -> int -> int

val to_timeline : t -> Timeline.t
(** The bucket-mean heatmap as a {!Timeline.t} — [ranks] =
    rank buckets, [waves] = wave buckets, each cell the mean
    decomposition of its bucket's members over the union window — so
    {!Timeline.render}, {!Timeline.to_json} and {!Timeline.to_csv}
    apply unchanged. *)

val schema : string
(** The versioned export schema id: ["wavefront-timeline-stream/v1"]. *)

val emit_csv : t -> (string -> unit) -> unit
(** Write the non-empty bucket rows (sums, not means) as CSV through the
    given chunk writer — bounded chunks, never one monolithic string. *)

val emit_json : ?label:string -> t -> (string -> unit) -> unit
(** As {!emit_csv} in JSON, closing with the exact per-column totals. *)
