(** A bounded span collector.

    A tracer must only be written from one domain; parallel runtimes
    create one tracer per rank and {!merge} them after the join. Spans
    beyond the capacity are counted but not stored (or evict the oldest,
    under [Overwrite_oldest]); {!dropped} reports the loss. *)

type t

val default_capacity : int
(** 2{^19} spans. *)

val create :
  ?capacity:int -> ?policy:Ring.policy -> ?clock:Clock.t -> unit -> t
(** The clock (default {!Clock.wall}) is only consulted by {!span};
    {!add}/{!record} take explicit timestamps, so a simulator can stamp
    spans in simulated time. *)

val clock : t -> Clock.t
val add : t -> Span.t -> unit

val record :
  t ->
  ?cat:string ->
  ?args:(string * Span.arg) list ->
  rank:int ->
  start:float ->
  dur:float ->
  string ->
  unit

val span :
  t ->
  ?cat:string ->
  ?args:(string * Span.arg) list ->
  rank:int ->
  string ->
  (unit -> 'a) ->
  'a
(** Time [f] with the tracer's clock and record the span (also when [f]
    raises). *)

val spans : t -> Span.t list
(** Retained spans, sorted by start time. *)

val recorded : t -> int
val total : t -> int
val dropped : t -> int

val merge : t array -> Span.t list
(** All retained spans of the given tracers, sorted by start time. *)
