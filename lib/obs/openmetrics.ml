(* OpenMetrics text exposition (the Prometheus-compatible subset): one
   # TYPE line per family, samples with the caller's base labels on every
   line, cumulative histogram buckets, and a closing # EOF. *)

let sanitize_name name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let b = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      if i = 0 && c >= '0' && c <= '9' then Buffer.add_char b '_';
      Buffer.add_char b (if ok c then c else '_'))
    name;
  if Buffer.length b = 0 then "_" else Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.12g" v

(* The {label="value",...} suffix; empty when there are no labels. [extra]
   appends the per-sample le label after the caller's base labels. *)
let label_str ?extra labels =
  let all = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match all with
  | [] -> ""
  | kvs ->
      let b = Buffer.create 64 in
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (sanitize_name k);
          Buffer.add_string b "=\"";
          Buffer.add_string b (escape_label_value v);
          Buffer.add_char b '"')
        kvs;
      Buffer.add_char b '}';
      Buffer.contents b

let render ?(labels = []) reg =
  let b = Buffer.create 1024 in
  let base = label_str labels in
  let line name suffix lbls v =
    Buffer.add_string b name;
    Buffer.add_string b suffix;
    Buffer.add_string b lbls;
    Buffer.add_char b ' ';
    Buffer.add_string b (fmt_value v);
    Buffer.add_char b '\n'
  in
  List.iter
    (fun (raw_name, view) ->
      let name = sanitize_name raw_name in
      match view with
      | Metrics.Vcounter n ->
          Buffer.add_string b ("# TYPE " ^ name ^ " counter\n");
          line name "_total" base (float_of_int n)
      | Metrics.Vgauge v ->
          Buffer.add_string b ("# TYPE " ^ name ^ " gauge\n");
          line name "" base v
      | Metrics.Vhistogram h ->
          Buffer.add_string b ("# TYPE " ^ name ^ " histogram\n");
          List.iter
            (fun { Metrics.le; cumulative; _ } ->
              let lbls = label_str ~extra:("le", fmt_value le) labels in
              line name "_bucket" lbls (float_of_int cumulative))
            (Metrics.buckets h);
          line name "_sum" base (Metrics.sum h);
          line name "_count" base (float_of_int (Metrics.observations h)))
    (Metrics.views reg);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
