(* A minimal JSON value, printer and recursive-descent parser — just
   enough to round-trip the benchmark report schema without pulling a
   JSON dependency into the repo. The parser accepts standard JSON
   (objects, arrays, strings with escapes, numbers, true/false/null);
   the printer always emits numbers in a float format OCaml re-reads
   exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec print b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" v)
      else Buffer.add_string b (Printf.sprintf "%.17g" v)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          print b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          print b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  print b v;
  Buffer.contents b

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let parse_lit st lit v =
  if
    st.pos + String.length lit <= String.length st.src
    && String.sub st.src st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    v
  end
  else error st ("expected " ^ lit)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char b '"'; st.pos <- st.pos + 1; go ()
        | Some '\\' -> Buffer.add_char b '\\'; st.pos <- st.pos + 1; go ()
        | Some '/' -> Buffer.add_char b '/'; st.pos <- st.pos + 1; go ()
        | Some 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char b '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char b '\012'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
            if st.pos + 5 > String.length st.src then
              error st "truncated \\u escape";
            let hex = String.sub st.src (st.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error st "bad \\u escape"
            in
            (* Only BMP code points below 0x80 matter for our reports;
               others are preserved as UTF-8. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            st.pos <- st.pos + 5;
            go ()
        | _ -> error st "bad escape")
    | Some c ->
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some v -> v
  | None -> error st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_lit st "true" (Bool true)
  | Some 'f' -> parse_lit st "false" (Bool false)
  | Some 'n' -> parse_lit st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing input";
  v

(* Typed accessors; raise [Parse_error] so callers report a schema
   violation rather than a pattern-match failure. *)
let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let get_str name = function
  | Some (Str s) -> s
  | _ -> raise (Parse_error ("missing or non-string field " ^ name))

let get_num name = function
  | Some (Num v) -> v
  | _ -> raise (Parse_error ("missing or non-number field " ^ name))

let get_list name = function
  | Some (List l) -> l
  | _ -> raise (Parse_error ("missing or non-array field " ^ name))
