(* A bounded buffer with drop accounting, the storage under both the span
   tracer and the message trace. Two overflow policies: keep the earliest
   records (the historical Trace semantics, right for "how did the run
   start" questions) or overwrite the oldest (a true ring, right for "what
   happened just before the end" questions). Either way every push is
   counted, so the consumer can report exactly how much was lost. *)

type policy = Drop_newest | Overwrite_oldest

type 'a t = {
  capacity : int;
  policy : policy;
  buf : 'a option array;
  mutable head : int;  (* index of the oldest retained element *)
  mutable len : int;
  mutable pushed : int;  (* total pushes, including dropped *)
}

let create ?(policy = Drop_newest) ~capacity () =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { capacity; policy; buf = Array.make capacity None; head = 0; len = 0;
    pushed = 0 }

let push t x =
  t.pushed <- t.pushed + 1;
  if t.len < t.capacity then begin
    t.buf.((t.head + t.len) mod t.capacity) <- Some x;
    t.len <- t.len + 1
  end
  else
    match t.policy with
    | Drop_newest -> ()
    | Overwrite_oldest ->
        t.buf.(t.head) <- Some x;
        t.head <- (t.head + 1) mod t.capacity

let length t = t.len
let pushed t = t.pushed
let dropped t = t.pushed - t.len
let capacity t = t.capacity

let to_list t =
  List.init t.len (fun i ->
      match t.buf.((t.head + i) mod t.capacity) with
      | Some x -> x
      | None -> assert false)

let iter t f =
  for i = 0 to t.len - 1 do
    match t.buf.((t.head + i) mod t.capacity) with
    | Some x -> f x
    | None -> assert false
  done

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.head <- 0;
  t.len <- 0;
  t.pushed <- 0
