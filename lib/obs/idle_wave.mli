(** Idle-wave front detection, propagation-speed and decay measurement
    over a {!Timeline} report.

    An injected delay (a "pulse") makes its source rank's cell *busier*
    and deposits *stall* time (blocking wait + uncovered idle) on every
    rank the resulting idle wave reaches. {!detect} measures per-cell
    excess of both signals — against a control run of the same
    configuration when one is supplied (exact on the deterministic
    substrates), else against each rank's own median — then locates the
    origin, thresholds the per-rank fronts, and least-squares-fits onset
    time and log-amplitude against hop distance in both travel
    directions. On a silent system the fitted hop latency equals the
    LogGP hop cost of {!Perturb.Idle_model} to float precision. *)

type front = {
  rank : int;
  lead_wave : int;  (** first wave whose excess stall crosses the threshold *)
  trail_wave : int;  (** last such wave *)
  onset : float;  (** [t_start] of the leading cell, us *)
  amplitude : float;  (** max excess stall across the crossing cells, us *)
}

type fit = {
  points : int;  (** fronts the fit used; [None] fit below 2 *)
  hop_latency : float;  (** us of wall-clock per rank hop (LSQ slope) *)
  speed : float;  (** ranks per us: [1 /. hop_latency] ([0.] if degenerate) *)
  ranks_per_wave : float;  (** [wave_period /. hop_latency] *)
  decay : float;  (** per-hop exponential amplitude decay rate, [>= 0.] *)
}

type t = {
  origin : (int * int) option;  (** (rank, wave) of the delay source *)
  delta : float;  (** measured amplitude at the origin, us *)
  wave_period : float;  (** median non-empty cell width, us *)
  threshold : float;  (** absolute front threshold applied, us *)
  fronts : front list;  (** ascending rank; the origin rank is excluded *)
  forward : fit option;
      (** fitted over ranks above the origin; boundary ranks (first and
          last) carry fronts but are excluded from both fits — missing a
          neighbor on one side, their steady-state stagger differs from
          the interior hop cost *)
  backward : fit option;  (** fitted over ranks below the origin *)
}

val detect :
  ?baseline:Timeline.t -> ?distance:(src:int -> dst:int -> int) ->
  ?rel_threshold:float -> ?min_delta:float -> Timeline.t -> t
(** [baseline] is the control run's timeline; it is used cell-for-cell
    when its shape matches, and ignored otherwise. [distance] is the
    signed hop distance between two ranks (default [dst - src], exact on
    a chain; pass the wavefront-diagonal distance for a 2-D grid) — it
    only affects the direction split and the fits, not front detection.
    [rel_threshold]
    (default [0.5]) sets the front threshold as a fraction of the
    measured origin amplitude; [min_delta] (default [0.5] us) is the
    smallest excess-busy maximum accepted as an origin — below it the
    result has [origin = None] and no fronts, which is also what an
    empty ([ranks = 0]) timeline yields. *)

val mark : t -> rank:int -> col:int -> char option
(** Overlay for {!Timeline.render}: ['O'] on the origin cell, ['>'] on
    each front's leading edge. *)

val pp_fit : Format.formatter -> fit -> unit
val pp : Format.formatter -> t -> unit
