(* The critical path through a recorded run: the longest dependency chain
   ending at the last-finishing span, walked backwards through two kinds of
   edges — program order within a rank, and message edges between ranks.

   A message edge says "rank dst could not pass time t_recv before rank src
   reached t_send". Edges come either from a simulator message trace
   (exact: send start and delivery time are recorded) or are reconstructed
   from send/recv spans by FIFO matching ({!edges_of_spans}): the k-th
   "send" span from src to dst pairs with the k-th "recv" span on dst from
   src, which is exact for the FIFO channels both our runtimes use.

   The walk: starting from the span with the latest end time, a span was
   critically delayed by the message arriving during it (the latest such
   arrival), else by its rank's preceding span. Each hop moves strictly
   backwards in time, so the walk terminates; on a bounded trace that
   dropped spans it simply ends where the record does. *)

type edge = { src : int; dst : int; t_send : float; t_recv : float }

type step = { span : Span.t; via_message : edge option }
(** [via_message] is the edge that gated the {e next} (later) step. *)

let eps = 1e-9

(* FIFO-match "send" spans (arg "dst") with "recv" spans (arg "src"). *)
let edges_of_spans ?(send = "send") ?(recv = "recv") spans =
  let pending : (int * int, Span.t Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let queue key =
    match Hashtbl.find_opt pending key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add pending key q;
        q
  in
  (* Spans are processed in start order so each per-(src,dst) queue is in
     FIFO send order. *)
  let sorted = List.sort Span.compare_start spans in
  List.iter
    (fun (s : Span.t) ->
      if s.name = send then
        match Span.arg_int s "dst" with
        | Some dst -> Queue.push s (queue (s.rank, dst))
        | None -> ())
    sorted;
  let edges = ref [] in
  List.iter
    (fun (r : Span.t) ->
      if r.name = recv then
        match Span.arg_int r "src" with
        | Some src -> (
            match Hashtbl.find_opt pending (src, r.rank) with
            | Some q when not (Queue.is_empty q) ->
                let s = Queue.pop q in
                edges :=
                  { src; dst = r.rank; t_send = s.t_start;
                    t_recv = Span.end_time r }
                  :: !edges
            | _ -> ())
        | None -> ())
    sorted;
  List.rev !edges

let walk ~spans ~edges =
  match spans with
  | [] -> []
  | _ ->
      (* Per-rank span lists in start order, for predecessor lookups. *)
      let by_rank : (int, Span.t array) Hashtbl.t = Hashtbl.create 16 in
      let grouped : (int, Span.t list ref) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (s : Span.t) ->
          match Hashtbl.find_opt grouped s.rank with
          | Some l -> l := s :: !l
          | None -> Hashtbl.add grouped s.rank (ref [ s ]))
        spans;
      Hashtbl.iter
        (fun rank l ->
          let a = Array.of_list !l in
          Array.sort Span.compare_start a;
          Hashtbl.add by_rank rank a)
        grouped;
      (* Last span on [rank] starting at or before [t] (and, with
         [strictly_before], starting before [t]). *)
      let span_at ?(strictly_before = false) rank t =
        match Hashtbl.find_opt by_rank rank with
        | None -> None
        | Some a ->
            let ok (s : Span.t) =
              if strictly_before then s.t_start < t -. eps
              else s.t_start <= t +. eps
            in
            let best = ref None in
            (* binary search for the last ok index *)
            let lo = ref 0 and hi = ref (Array.length a - 1) in
            while !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              if ok a.(mid) then begin
                best := Some a.(mid);
                lo := mid + 1
              end
              else hi := mid - 1
            done;
            !best
      in
      let edges = Array.of_list edges in
      let last =
        List.fold_left
          (fun best s ->
            if Span.end_time s > Span.end_time best then s else best)
          (List.hd spans) spans
      in
      (* Timestamps alone do not decrease monotonically along hops (a
         blocked receiver's span starts before the matching send starts),
         so termination comes from never revisiting a span. *)
      let visited : (int * float * string, unit) Hashtbl.t =
        Hashtbl.create 64
      in
      let key (s : Span.t) = (s.rank, s.t_start, s.name) in
      let rec go acc (s : Span.t) =
        (* The latest message arriving into this span: the gating
           dependency if one exists. *)
        let gating = ref None in
        Array.iter
          (fun e ->
            if
              e.dst = s.rank
              && e.t_recv >= s.t_start -. eps
              && e.t_recv <= Span.end_time s +. eps
              && e.t_send < Span.end_time s -. eps
            then
              match !gating with
              | Some g when g.t_recv >= e.t_recv -> ()
              | _ -> gating := Some e)
          edges;
        (* Prefer the message dependency; when its source span was already
           visited (coarse spans covering many messages can gate each other
           mutually), fall back to program order so the walk continues
           instead of ending at the cycle. *)
        let candidates =
          (match !gating with
          | Some e -> (
              match span_at e.src e.t_send with
              | Some up -> [ (up, Some e) ]
              | None -> [])
          | None -> [])
          @
          match span_at ~strictly_before:true s.rank s.t_start with
          | Some prev -> [ (prev, None) ]
          | None -> []
        in
        match
          List.find_opt
            (fun (up, _) -> not (Hashtbl.mem visited (key up)))
            candidates
        with
        | Some (up, via) ->
            Hashtbl.add visited (key up) ();
            go ({ span = up; via_message = via } :: acc) up
        | None -> acc
      in
      Hashtbl.add visited (key last) ();
      go [ { span = last; via_message = None } ] last

(* The walk with its honesty attached: whether the trace it ran on was
   complete. A bounded tracer that dropped spans may have lost the true
   head of the chain, so the path must not be presented as the full story —
   reports render the truncation note, not just the steps. *)
type report = { steps : step list; dropped : int; complete : bool }

let report ?(dropped = 0) ~spans ~edges () =
  { steps = walk ~spans ~edges; dropped; complete = dropped = 0 }

let truncation_note r =
  if r.complete then None
  else
    Some
      (Printf.sprintf
         "TRUNCATED: %d spans were dropped by the bounded tracer; the path \
          ends where the record does and its head may be missing"
         r.dropped)

type segment = { name : string; count : int; total : float }

let summarize steps =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun { span; _ } ->
      let c, t =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl span.Span.name)
      in
      Hashtbl.replace tbl span.Span.name (c + 1, t +. span.Span.dur))
    steps;
  Hashtbl.fold (fun name (count, total) acc -> { name; count; total } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match Float.compare b.total a.total with
         | 0 -> compare a.name b.name
         | c -> c)

let pp ppf steps =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i { span; via_message } ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%s%a"
        (match via_message with
        | Some e -> Printf.sprintf "msg %d->%d  " e.src e.dst
        | None -> "          ")
        Span.pp span)
    steps;
  Format.fprintf ppf "@]"
