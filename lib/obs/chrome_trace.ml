(* Chrome trace_event JSON export: complete ("X") events, one process per
   span source (simulated machine, real runtime), one thread per rank.
   The output loads directly in chrome://tracing and in Perfetto.

   Timestamps: trace_event "ts" is in microseconds, the unit every span in
   this library already uses. Each process is normalized to its own
   earliest span, so a simulated timeline (starting at 0) and a real one
   (stamped with wall-clock epochs) align at t=0 for side-by-side
   reading. *)

type process = { pid : int; name : string; spans : Span.t list }

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_string b s =
  Buffer.add_char b '"';
  add_escaped b s;
  Buffer.add_char b '"'

(* JSON has no NaN/Infinity; clamp pathological values to 0. *)
let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.3f" f)

let add_arg b (key, v) =
  add_string b key;
  Buffer.add_char b ':';
  match (v : Span.arg) with
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | Str s -> add_string b s

let add_meta b ~pid ?tid ~name ~value () =
  Buffer.add_string b "{\"ph\":\"M\",\"pid\":";
  Buffer.add_string b (string_of_int pid);
  (match tid with
  | Some t ->
      Buffer.add_string b ",\"tid\":";
      Buffer.add_string b (string_of_int t)
  | None -> ());
  Buffer.add_string b ",\"name\":";
  add_string b name;
  Buffer.add_string b ",\"args\":{\"name\":";
  add_string b value;
  Buffer.add_string b "}}"

(* Injected-delay and recovery-protocol spans ("perturb.*" / "recover.*")
   get a distinct leading category so Perfetto's category filter isolates
   them in one click; the producer's own category (compute/comm/...) is
   kept behind a comma, the trace_event multi-category convention. *)
let cat_of (s : Span.t) =
  let prefixed p = String.length s.name > String.length p
    && String.sub s.name 0 (String.length p) = p
  in
  let tagged tag =
    if s.cat = "" || s.cat = tag then tag else tag ^ "," ^ s.cat
  in
  if prefixed "perturb." then tagged "perturb"
  else if prefixed "recover." then tagged "recover"
  else s.cat

let add_span b ~pid ~epoch (s : Span.t) =
  Buffer.add_string b "{\"ph\":\"X\",\"pid\":";
  Buffer.add_string b (string_of_int pid);
  Buffer.add_string b ",\"tid\":";
  Buffer.add_string b (string_of_int s.rank);
  Buffer.add_string b ",\"ts\":";
  add_float b (s.t_start -. epoch);
  Buffer.add_string b ",\"dur\":";
  add_float b s.dur;
  Buffer.add_string b ",\"name\":";
  add_string b s.name;
  let cat = cat_of s in
  if cat <> "" then begin
    Buffer.add_string b ",\"cat\":";
    add_string b cat
  end;
  if s.args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_char b ',';
        add_arg b a)
      s.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}'

let ranks_of spans =
  List.sort_uniq compare (List.map (fun (s : Span.t) -> s.rank) spans)

let to_json ?(normalize = true) processes =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit add =
    if !first then first := false else Buffer.add_char b ',';
    add ()
  in
  List.iter
    (fun p ->
      emit (fun () ->
          add_meta b ~pid:p.pid ~name:"process_name" ~value:p.name ());
      List.iter
        (fun rank ->
          emit (fun () ->
              add_meta b ~pid:p.pid ~tid:rank ~name:"thread_name"
                ~value:(Printf.sprintf "rank %d" rank) ()))
        (ranks_of p.spans);
      let epoch =
        if normalize then
          List.fold_left
            (fun acc (s : Span.t) -> Float.min acc s.t_start)
            infinity p.spans
        else 0.0
      in
      let epoch = if Float.is_finite epoch then epoch else 0.0 in
      List.iter
        (fun s -> emit (fun () -> add_span b ~pid:p.pid ~epoch s))
        p.spans)
    processes;
  Buffer.add_string b "]}";
  Buffer.contents b

let spans_csv spans =
  let b = Buffer.create 1024 in
  Buffer.add_string b "rank,name,cat,t_start,dur\n";
  List.iter
    (fun (s : Span.t) ->
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%s,%.4f,%.4f\n" s.rank s.name s.cat s.t_start
           s.dur))
    spans;
  Buffer.contents b
