(** A metrics registry: counters, gauges, and log-scaled histograms with
    p50/p95/p99 quantile estimation.

    Metrics are get-or-create by name and the registry preserves insertion
    order, so rendered summaries are stable. Not synchronized: use from one
    domain, or give each domain its own registry. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create. Raises [Invalid_argument] if [name] exists with a
    different kind. *)

val inc : ?by:int -> counter -> unit
val count : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
(** A fresh gauge reads [nan] until {!set}. *)

val set : gauge -> float -> unit
val value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : ?lo:float -> ?hi:float -> t -> string -> histogram
(** Geometric buckets, eight per doubling, covering [[lo, hi]] (defaults
    [1e-3] to [1e10] us); values at or below [lo] share the first bucket,
    values above [hi] the last. *)

val observe : histogram -> float -> unit
(** [nan] observations are ignored. *)

val observations : histogram -> int
val sum : histogram -> float
val min_value : histogram -> float
val max_value : histogram -> float
val mean : histogram -> float

val quantile : histogram -> float -> float
(** Geometric midpoint of the bucket holding the requested rank, clamped
    to the observed min/max — relative error bounded by the bucket width
    (~9%). [nan] when empty. *)

type bucket = { le : float; count : int; cumulative : int }

val buckets : histogram -> bucket list
(** Occupied buckets in ascending upper-bound order, with cumulative
    counts, terminated by an [le = infinity] entry carrying the full
    observation count — the shape OpenMetrics exposition wants. Empty
    buckets are omitted (cumulative counts stay monotone over any
    upper-bound subset, so the sparse list is still a valid cumulative
    histogram). *)

(** {1 Snapshots} *)

type sample =
  | Count of int
  | Value of float
  | Distribution of {
      n : int;
      sum : float;
      min : float;
      max : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

val snapshot : t -> (string * sample) list
(** In metric insertion order. *)

val find : t -> string -> sample option

type view = Vcounter of int | Vgauge of float | Vhistogram of histogram

(** Raw views in insertion order — what a renderer that needs the live
    histogram (not the quantile summary) consumes. *)
val views : t -> (string * view) list
val pp_sample : Format.formatter -> sample -> unit
val pp : Format.formatter -> t -> unit
val to_csv : t -> string
