(** Time sources for the instrumentation layer, in microseconds.

    A clock is any [unit -> float] function, so spans can be stamped from
    wall time, from a discrete-event engine's simulated time, or from a
    hand-advanced test clock. *)

type t = unit -> float

val wall : t
(** Wall-clock microseconds since the Unix epoch. *)

val manual : ?start:float -> unit -> t * (float -> unit)
(** A deterministic clock for tests: [(now, advance)]. [advance d] moves
    the clock forward by [d] microseconds; raises [Invalid_argument] on a
    negative [d]. *)
