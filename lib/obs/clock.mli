(** Time sources for the instrumentation layer, in microseconds.

    A clock is any [unit -> float] function, so spans can be stamped from
    wall time, from a discrete-event engine's simulated time, or from a
    hand-advanced test clock. *)

type t = unit -> float

val monotonic : t
(** Monotonic microseconds since an arbitrary fixed origin
    (CLOCK_MONOTONIC). Never steps backwards; the origin is meaningless,
    only differences are. *)

val wall : t
(** The default span clock: an alias of {!monotonic}. Wall-of-day time
    (which NTP can step backwards, producing negative span durations) is
    still available as {!realtime} for callers that need an epoch. *)

val realtime : t
(** Wall-clock microseconds since the Unix epoch ([gettimeofday]). Subject
    to NTP steps; do not stamp spans with it. *)

val manual : ?start:float -> unit -> t * (float -> unit)
(** A deterministic clock for tests: [(now, advance)]. [advance d] moves
    the clock forward by [d] microseconds; raises [Invalid_argument] on a
    negative [d]. *)
