(* The append-only run ledger. Writing must never fail a run (read-only
   CWDs return Error, callers warn); reading skips malformed lines so one
   interrupted write cannot poison the history. *)

let schema = "wavefront-ledger/v1"
let default_path = Filename.concat "_wavefront" "ledger.jsonl"

type t = {
  timestamp : float;
  subcommand : string;
  engine : string;
  config_hash : string;
  spec_digest : string;
  git : string;
  duration_s : float;
  metrics : (string * float) list;
  runtime : (string * float) list;
}

let v ?(engine = "") ?(config_hash = "") ?(spec_digest = "") ?(git = "")
    ?(metrics = []) ?(runtime = []) ~timestamp ~duration_s subcommand =
  {
    timestamp;
    subcommand;
    engine;
    config_hash;
    spec_digest;
    git;
    duration_s;
    metrics;
    runtime;
  }

let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception _ -> ""
  | ic -> (
      let line = try input_line ic with End_of_file | Sys_error _ -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> line
      | _ -> ""
      | exception _ -> "")

let to_json r =
  let nums kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs) in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("timestamp", Json.Num r.timestamp);
      ("subcommand", Json.Str r.subcommand);
      ("engine", Json.Str r.engine);
      ("config_hash", Json.Str r.config_hash);
      ("spec_digest", Json.Str r.spec_digest);
      ("git", Json.Str r.git);
      ("duration_s", Json.Num r.duration_s);
      ("metrics", nums r.metrics);
      ("runtime", nums r.runtime);
    ]

let to_json_line r = Json.to_string (to_json r)

let of_json j =
  let str name = Json.get_str name (Json.member name j) in
  let num name = Json.get_num name (Json.member name j) in
  let nums name =
    match Json.member name j with
    | Some (Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match v with
            | Json.Num x -> (k, x)
            | _ -> raise (Json.Parse_error ("non-number metric " ^ k)))
          kvs
    | _ -> raise (Json.Parse_error ("missing or non-object field " ^ name))
  in
  let s = str "schema" in
  if s <> schema then raise (Json.Parse_error ("unknown schema " ^ s));
  {
    timestamp = num "timestamp";
    subcommand = str "subcommand";
    engine = str "engine";
    config_hash = str "config_hash";
    spec_digest = str "spec_digest";
    git = str "git";
    duration_s = num "duration_s";
    metrics = nums "metrics";
    runtime = nums "runtime";
  }

let of_json_line line =
  match of_json (Json.of_string line) with
  | r -> Ok r
  | exception Json.Parse_error m -> Error m

(* One record = one [Unix.write] of the whole line (newline included) on
   an O_APPEND descriptor. POSIX appends each write atomically at the
   current end of file, so concurrent writers (CI jobs sharing a ledger,
   the serve daemon's drain flush racing a slam run's own record) can
   interleave *records* but never bytes within one — no torn lines, and a
   crash mid-append leaves at most one truncated trailing line, which
   [load] skips. Buffered channels gave neither guarantee: their flushes
   split a record at the buffer boundary. *)
let append ?(path = default_path) r =
  let dir = Filename.dirname path in
  match
    if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  with
  | exception (Unix.Unix_error _ | Sys_error _) ->
      Error ("cannot create " ^ dir)
  | () -> (
      match
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
      with
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | fd ->
          let line = Bytes.of_string (to_json_line r ^ "\n") in
          let res =
            match Unix.write fd line 0 (Bytes.length line) with
            | n when n = Bytes.length line -> Ok ()
            | _ -> Error "short ledger write"
            | exception Unix.Unix_error (e, _, _) ->
                Error (Unix.error_message e)
          in
          Unix.close fd;
          res)

let load ?(path = default_path) () =
  if not (Sys.file_exists path) then Ok ([], 0)
  else
    match open_in path with
    | exception Sys_error m -> Error m
    | ic ->
        let recs = ref [] and skipped = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line = "" then ()
             else
               match of_json_line line with
               | Ok r -> recs := r :: !recs
               | Error _ -> incr skipped
           done
         with End_of_file -> ());
        close_in ic;
        Ok (List.rev !recs, !skipped)

(* --- comparison --- *)

type verdict = Regression | Improvement | Unchanged | Only_base | Only_current

type diff = {
  name : string;
  base : float option;
  current : float option;
  delta_pct : float;
  verdict : verdict;
}

(* "completed" (and dotted variants) counts successes: more is better.
   Everything else the ledger records is a time, a count of work done, or
   a resource figure — lower is better. *)
let higher_is_better name =
  let n = String.length name in
  let suffix = "completed" in
  let ns = String.length suffix in
  n >= ns && String.sub name (n - ns) ns = suffix

let judged_metrics r = ("duration_s", r.duration_s) :: r.metrics

let compare_one ~min_delta_pct name base current =
  match (base, current) with
  | None, None -> assert false
  | None, Some _ -> { name; base; current; delta_pct = nan; verdict = Only_current }
  | Some _, None -> { name; base; current; delta_pct = nan; verdict = Only_base }
  | Some b, Some c ->
      let delta_pct =
        if b = c then 0.0
        else if b = 0.0 then (if c > 0.0 then infinity else neg_infinity)
        else (c -. b) /. Float.abs b *. 100.0
      in
      let verdict =
        if Float.is_nan b || Float.is_nan c then Unchanged
        else if Float.abs delta_pct < min_delta_pct then Unchanged
        else
          let worse = if higher_is_better name then c < b else c > b in
          if worse then Regression else Improvement
      in
      { name; base; current; delta_pct; verdict }

let compare_runs ?(min_delta_pct = 5.0) base current =
  let b = judged_metrics base and c = judged_metrics current in
  let names =
    List.map fst b
    @ List.filter (fun n -> not (List.mem_assoc n b)) (List.map fst c)
  in
  List.map
    (fun name ->
      compare_one ~min_delta_pct name (List.assoc_opt name b)
        (List.assoc_opt name c))
    names

let regressions diffs =
  List.filter (fun d -> d.verdict = Regression) diffs

let verdict_name = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Unchanged -> "unchanged"
  | Only_base -> "only in base"
  | Only_current -> "only in current"

let pp_diff ppf d =
  let side = function
    | Some v -> Printf.sprintf "%.6g" v
    | None -> "-"
  in
  Format.fprintf ppf "%-32s %14s %14s %+8.1f%%  %s" d.name (side d.base)
    (side d.current) d.delta_pct (verdict_name d.verdict)
