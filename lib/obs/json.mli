(** A minimal JSON value, printer and parser — just enough to round-trip
    the benchmark report and run-ledger schemas without a JSON dependency.
    Lives in [Obs] so both the ledger and the benchmark layer (which
    depends on [Obs]) share one codec. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

val of_string : string -> t
(** Raises {!Parse_error} on malformed input. *)

val member : string -> t -> t option

val get_str : string -> t option -> string
val get_num : string -> t option -> float
val get_list : string -> t option -> t list
(** Raise {!Parse_error} when absent or of the wrong type; [name] labels
    the error. *)
