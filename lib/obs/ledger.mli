(** The persistent run ledger: one [wavefront-ledger/v1] JSONL record per
    CLI invocation, appended to [_wavefront/ledger.jsonl], so runs can be
    listed and diffed across invocations (the durable cross-run record
    model reconciliation needs).

    Record schema (one JSON object per line):
    {v
    { "schema": "wavefront-ledger/v1",
      "timestamp": <unix seconds>,
      "subcommand": "simulate", "engine": "batched",
      "config_hash": "<12-hex digest of the resolved configuration>",
      "spec_digest": "<md5 of --spec file, or \"\">",
      "git": "<git describe --always --dirty, or \"\">",
      "duration_s": 0.42,
      "metrics": { "outcome.elapsed": ..., ... },
      "runtime": { "runtime.minor_words": ..., ... } }
    v} *)

type t = {
  timestamp : float;  (** unix seconds *)
  subcommand : string;
  engine : string;  (** [""] when the subcommand has no engine *)
  config_hash : string;
  spec_digest : string;  (** [""] when no spec file was given *)
  git : string;  (** [""] when git is unavailable *)
  duration_s : float;
  metrics : (string * float) list;  (** key outcome numbers *)
  runtime : (string * float) list;  (** {!Runtime.delta_kv} of the run *)
}

val schema : string
(** ["wavefront-ledger/v1"]. *)

val default_path : string
(** ["_wavefront/ledger.jsonl"], relative to the working directory. *)

val v :
  ?engine:string ->
  ?config_hash:string ->
  ?spec_digest:string ->
  ?git:string ->
  ?metrics:(string * float) list ->
  ?runtime:(string * float) list ->
  timestamp:float ->
  duration_s:float ->
  string ->
  t

val git_describe : unit -> string
(** [git describe --always --dirty] of the working directory; [""] when
    git is missing, this is not a repository, or the subprocess fails. *)

val to_json_line : t -> string
(** One line, no trailing newline. *)

val of_json_line : string -> (t, string) result

val append : ?path:string -> t -> (unit, string) result
(** Append one record to the ledger (creating the directory and file as
    needed). The record goes out as a single [O_APPEND] write — POSIX
    appends it atomically, so concurrent writers can interleave records
    but never tear one, and a crash mid-append leaves at most one
    truncated trailing line (which {!load} skips). Errors are returned,
    not raised — a read-only working directory must not fail the run
    being recorded. *)

val load : ?path:string -> unit -> (t list * int, string) result
(** All parsable records in file order plus the count of skipped
    (blank or malformed) lines. [Error] only when the file exists but
    cannot be read; a missing ledger is [Ok ([], 0)]. *)

(** {1 Cross-run comparison} *)

type verdict = Regression | Improvement | Unchanged | Only_base | Only_current

type diff = {
  name : string;
  base : float option;
  current : float option;
  delta_pct : float;  (** [nan] when only one side has the metric *)
  verdict : verdict;
}

val compare_runs : ?min_delta_pct:float -> t -> t -> diff list
(** [compare_runs base current]: metric-by-metric diff of [duration_s]
    plus the outcome metrics of two records (runtime deltas are
    informational and not judged). Moves
    under [min_delta_pct] (default 5.0, the bench_stats gate threshold)
    are [Unchanged]. Lower is better for every metric except those named
    [*completed*], where a decrease regresses. *)

val regressions : diff list -> diff list
val pp_diff : Format.formatter -> diff -> unit
