(* The ping-pong microbenchmark of Section 3, run on the simulated machine:
   two ranks exchange a message back and forth; half the steady-state
   round-trip time is the "measured" end-to-end communication time of
   Figure 3, which the LogGP models of Table 1 are fitted to. *)

open Wgrid

let machine_for ?(model_bus = true) (platform : Loggp.Params.t) locality =
  let pgrid = Proc_grid.v ~cols:2 ~rows:1 in
  let cmp =
    match (locality : Loggp.Comm_model.locality) with
    | On_chip -> Cmp.v ~cx:2 ~cy:1 (* both cores on one node *)
    | Off_node -> Cmp.single_core
  in
  Machine.v ~model_bus ~cmp platform pgrid

let half_round_trip ?(rounds = 64) machine ~size =
  if rounds < 1 then invalid_arg "Pingpong.half_round_trip";
  let engine = Engine.create () in
  let mpi = Mpi_sim.create engine machine in
  let finished = ref false in
  Engine.spawn engine (fun () ->
      for _ = 1 to rounds do
        Mpi_sim.send mpi ~src:0 ~dst:1 ~size;
        Mpi_sim.recv mpi ~dst:0 ~src:1 ~size
      done;
      finished := true);
  Engine.spawn engine (fun () ->
      for _ = 1 to rounds do
        Mpi_sim.recv mpi ~dst:1 ~src:0 ~size;
        Mpi_sim.send mpi ~src:1 ~dst:0 ~size
      done);
  let elapsed = Engine.run engine in
  if not !finished then failwith "Pingpong: benchmark deadlocked";
  elapsed /. (2.0 *. float_of_int rounds)

let curve ?rounds ?model_bus platform locality ~sizes =
  let machine = machine_for ?model_bus platform locality in
  List.map (fun size -> (size, half_round_trip ?rounds machine ~size)) sizes

(* The message sizes of Figure 3: 1 byte to 12 KB, denser around the
   1 KB eager/rendezvous boundary. *)
let figure3_sizes =
  [ 1; 16; 64; 128; 256; 384; 512; 640; 768; 896; 1000; 1024; 1025; 1100;
    1280; 1536; 2048; 3072; 4096; 6144; 8192; 10240; 12288 ]

(* The microbenchmark behind the one interface `wavefront fit` drives, so
   the simulated and the real transport feed Loggp.Fit through the same
   signature. *)
let microbench ?model_bus platform locality : (module Wrun.Substrate.MICROBENCH)
    =
  (module struct
    let name =
      Fmt.str "simulated ping-pong (%s)"
        (match (locality : Loggp.Comm_model.locality) with
        | On_chip -> "on-chip"
        | Off_node -> "off-node")

    let curve ?rounds ~sizes () =
      curve ?rounds ?model_bus platform locality ~sizes
  end)
