(** Executable wavefront programs on the simulated machine.

    Each core runs the blocking-MPI program of Figure 4 for every sweep of
    the application's schedule; the precedence behaviour of Figure 2 emerges
    from the blocking communication rather than being programmed. Running
    this against the analytic model reproduces the paper's
    model-versus-measured validation.

    Two effects the closed-form model ignores can be injected for
    robustness studies: integer-block load imbalance ([balanced]) and
    per-tile compute jitter ([noise]).

    A {!Perturb.Spec.t} plugs in via [perturb] for the richer resilience
    studies: seeded per-rank compute noise, per-link injection delay,
    permanent stragglers, and rank kills. Injected time appears as
    [perturb.noise] / [perturb.straggler] / [perturb.link] spans in the
    [obs] trace, so critical-path reports show where delay was absorbed
    versus propagated. A zero spec injects nothing and leaves the event
    stream bitwise-identical to running without one. *)

type noise = { amplitude : float; seed : int }
(** Multiplicative jitter: each tile's compute time is scaled by a value
    uniform in [1 - amplitude, 1 + amplitude], drawn from a deterministic
    per-rank stream. *)

type rank_stats = {
  compute : float;  (** time spent computing, us *)
  comm : float;  (** time inside send/receive calls, incl. blocking waits *)
  wait : float;
      (** the part of [comm] in excess of each operation's uncontended
          cost: blocking on upstream progress, rendezvous stalls, bus
          queueing *)
  finish : float;  (** completion time of the rank's program *)
}

type outcome = {
  elapsed : float;  (** simulated time for the whole run, us *)
  per_iteration : float;
  iterations : int;
  completed : bool;
      (** all ranks finished; [false] indicates deadlock, or — when
          [failed] is non-empty — ranks starved by a killed neighbour *)
  failed : int list;
      (** ranks killed by the perturbation spec, ascending; [[]] without
          one *)
  recovered : int list;
      (** ranks that died but were restored from a checkpoint, ascending;
          [[]] unless a recovery policy is active *)
  checkpoints : int;
      (** snapshots taken across all ranks under the recovery policy *)
  events : int;
  sends : int;
  stats : rank_stats array;  (** indexed by rank *)
}

val compute_total : outcome -> float
(** Summed per-rank computation time. *)

val comm_share : outcome -> float
(** Communication share of the last-finishing rank — the executable
    analogue of the model's critical-path communication component
    (Figure 11). *)

val flow : Wgrid.Proc_grid.t -> Wgrid.Proc_grid.corner -> int * int
(** Downstream (dx, dy) of a sweep originating at the given corner
    (= {!Wrun.Program.flow_xy}). *)

(** The simulated-machine substrate behind {!run}: payloads are byte
    sizes, communication costs what the LogGP-calibrated {!Mpi_sim}
    charges, computes advance the simulated clock. Exposed for driving
    {!Wrun.Program.run_rank} directly — e.g. wrapped in
    {!Wrun.Record.Wrap} to compare message sequences against another
    backend. *)
module Backend : sig
  type t

  val create :
    ?balanced:bool ->
    ?noise:noise ->
    ?perturb:Perturb.Spec.t ->
    ?recover:Perturb.Recover.policy ->
    ?trace:Trace.t ->
    ?obs:Obs.Tracer.t ->
    ?metrics:Obs.Metrics.t ->
    Engine.t ->
    Machine.t ->
    Wavefront_core.App_params.t ->
    t

  module Substrate : Wrun.Substrate.S with type t = t and type payload = int
end

val estimated_events :
  Machine.t -> Wavefront_core.App_params.t -> iterations:int -> int
(** Rough event count of {!run} (~6 events per rank-tile-sweep), for sizing
    a simulation before committing to it. *)

val default_max_ranks : int
(** The rank ceiling {!run} enforces unless overridden: 65536. Past it
    the per-rank fibers and event stream stop failing gracefully. *)

exception
  Rank_ceiling of { ranks : int; max_ranks : int; estimated_events : int }
(** Raised by {!run} — before any simulation state is built — when the
    grid exceeds the configured ceiling, instead of a flat
    [Out_of_memory] minutes into the run. The registered printer points
    at the wave-batched engine ([--engine=batched]), which handles
    million-rank grids. *)

val run :
  ?iterations:int ->
  ?max_ranks:int ->
  ?balanced:bool ->
  ?noise:noise ->
  ?perturb:Perturb.Spec.t ->
  ?recover:Perturb.Recover.policy ->
  ?trace:Trace.t ->
  ?obs:Obs.Tracer.t ->
  ?metrics:Obs.Metrics.t ->
  Machine.t ->
  Wavefront_core.App_params.t ->
  outcome
(** [balanced] derives each rank's tile work from the integer block
    decomposition instead of the model's uniform [Nx/n * Ny/m]. Raises
    [Invalid_argument] on a noise amplitude outside [0, 1).

    [recover] simulates the checkpoint/rollback protocol: on due waves
    the modeled snapshot cost is charged ([recover.checkpoint] spans); a
    spec'd kill is survived — the rank pays the restart cost plus the
    re-execution of the waves since its last snapshot ([recover.restart]
    / [recover.replay] spans) and carries on. A disabled policy
    (interval 0) or its absence leaves the event stream
    bitwise-identical to running without one.

    [obs] collects per-rank spans ([precompute]/[compute]/[recv]/[send],
    plus [allreduce]/[halo] for the non-wavefront section) stamped in
    simulated time — build it over the engine clock-free default; spans
    are recorded with explicit timestamps so any tracer works. [recv] and
    [send] spans carry ["src"]/["dst"] args usable by
    {!Obs.Critical_path.edges_of_spans}, and every comm span carries a
    ["wait"] arg with its blocking share. [metrics] additionally receives
    per-protocol message/byte counters (via {!Mpi_sim.create}), cross-rank
    [sim.rank.*] histograms and [sim.elapsed]/[sim.events]/[sim.sends]
    totals. Both default to off; the disabled paths cost one option check
    per operation. *)

val pp_outcome : outcome Fmt.t
