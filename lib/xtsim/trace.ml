(* Optional message tracing for the simulated machine: a bounded record of
   point-to-point transfers (who, what, when, which protocol), dumpable as
   CSV for offline analysis of a simulated run.

   This is now a compatibility shim over the unified instrumentation layer:
   storage is an [Obs.Ring] with the historical keep-the-earliest
   semantics, and records convert directly to [Obs.Critical_path] message
   edges for the profiler. *)

type protocol = Eager | Rendezvous | Copy | Dma

let protocol_name = function
  | Eager -> "eager"
  | Rendezvous -> "rendezvous"
  | Copy -> "copy"
  | Dma -> "dma"

type record = {
  src : int;
  dst : int;
  size : int;
  protocol : protocol;
  send_start : float;  (** when the sender entered the send *)
  delivered : float;  (** when the payload became receivable *)
}

type t = { ring : record Obs.Ring.t }

let create ?(capacity = 100_000) () =
  if capacity < 1 then invalid_arg "Trace.create";
  { ring = Obs.Ring.create ~policy:Obs.Ring.Drop_newest ~capacity () }

let record t r = Obs.Ring.push t.ring r
let records t = Obs.Ring.to_list t.ring
let recorded t = Obs.Ring.length t.ring
let total t = Obs.Ring.pushed t.ring

(* One hash-table pass; results sorted by protocol name so callers see a
   stable order. *)
let by_protocol t =
  let counts = Hashtbl.create 8 in
  Obs.Ring.iter t.ring (fun r ->
      let k = protocol_name r.protocol in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)));
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let edges t =
  List.map
    (fun r ->
      { Obs.Critical_path.src = r.src; dst = r.dst; t_send = r.send_start;
        t_recv = r.delivered })
    (Obs.Ring.to_list t.ring)

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "src,dst,size,protocol,send_start,delivered\n";
  Obs.Ring.iter t.ring (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%d,%s,%.4f,%.4f\n" r.src r.dst r.size
           (protocol_name r.protocol) r.send_start r.delivered));
  Buffer.contents b
