(** Array-based binary min-heap ordered by [(time, seq)], used as the
    simulator's event queue. Equal-time events pop in insertion (seq)
    order. Storage is structure-of-arrays (timestamps unboxed), grown by
    amortized doubling: {!push}, {!top_time} and {!pop_top} allocate
    nothing beyond the occasional capacity double. *)

type 'a entry = { time : float; seq : int; value : 'a }
type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> time:float -> seq:int -> 'a -> unit

val top_time : 'a t -> float
(** Timestamp of the minimum element. Raises [Invalid_argument] when
    empty. *)

val pop_top : 'a t -> 'a
(** Remove and return the minimum element's value without boxing an
    entry. Raises [Invalid_argument] when empty. *)

val pop : 'a t -> 'a entry option
(** Allocating convenience over {!pop_top} (boxes the entry). *)

val peek : 'a t -> 'a entry option
