(* Simulated blocking MPI point-to-point communication.

   The simulator implements the protocol mechanics one level below the
   closed-form LogGP equations of Table 1:

   - off-node messages <= the eager limit: the sender pays its software
     overhead o and the payload travels L + size*G behind it;
   - off-node messages above the limit: rendezvous — the sender's request
     travels to the receiver, is answered when a matching receive is posted,
     and only then is the payload injected (the source of the h = 2L
     handshake term and of the blocking behaviour that the wavefront
     pipeline schedule depends on);
   - on-chip messages use the copy path below the limit and the DMA path
     above it;
   - every off-node injection/delivery and on-chip DMA transfer reserves the
     node's shared memory bus for o_dma + size*G_dma (Table 6's interference
     quantum I); concurrent transfers on a node queue behind each other,
     which is where multi-core contention emerges.

   An uncontended ping-pong reproduces equations (1)-(8) exactly (see the
   test suite); contended and irregularly-scheduled traffic — the wavefront
   sweeps — does not, which is what makes model-versus-simulator validation
   meaningful. *)

type box = {
  ready : int Queue.t;  (* delivered payload sizes awaiting a receive *)
  mutable recv_resume : (unit -> unit) option;
  reqs : (unit -> unit) Queue.t;  (* rendezvous requests awaiting a receive *)
  mutable posted : int;  (* rendezvous receives awaiting a request *)
}

(* Per-protocol message and byte counters, pre-created at [create] so the
   send path pays one match and two increments when metrics are on and one
   option check when off. *)
type proto_counters = {
  c_msgs : Obs.Metrics.counter;
  c_bytes : Obs.Metrics.counter;
}

type tally = {
  eager : proto_counters;
  rendezvous : proto_counters;
  copy : proto_counters;
  dma : proto_counters;
}

type t = {
  engine : Engine.t;
  machine : Machine.t;
  boxes : (int, box) Hashtbl.t array;  (* per destination, keyed by source *)
  bus_free : float array;  (* per node: time the shared bus frees up *)
  trace : Trace.t option;
  tally : tally option;
  mutable sends : int;
  mutable recvs : int;
}

let tally_of_metrics m =
  let proto p =
    { c_msgs = Obs.Metrics.counter m ("sim.msgs." ^ Trace.protocol_name p);
      c_bytes = Obs.Metrics.counter m ("sim.bytes." ^ Trace.protocol_name p) }
  in
  { eager = proto Trace.Eager; rendezvous = proto Trace.Rendezvous;
    copy = proto Trace.Copy; dma = proto Trace.Dma }

let create ?trace ?metrics engine machine =
  {
    engine;
    machine;
    boxes = Array.init (Machine.cores machine) (fun _ -> Hashtbl.create 8);
    bus_free = Array.make (Machine.node_count machine) 0.0;
    trace;
    tally = Option.map tally_of_metrics metrics;
    sends = 0;
    recvs = 0;
  }

let tallied t ~protocol ~size =
  match t.tally with
  | None -> ()
  | Some tl ->
      let pc =
        match (protocol : Trace.protocol) with
        | Eager -> tl.eager
        | Rendezvous -> tl.rendezvous
        | Copy -> tl.copy
        | Dma -> tl.dma
      in
      Obs.Metrics.inc pc.c_msgs;
      Obs.Metrics.inc ~by:size pc.c_bytes

let traced t ~src ~dst ~size ~protocol ~send_start =
  match t.trace with
  | None -> ()
  | Some tr ->
      Trace.record tr
        { Trace.src; dst; size; protocol; send_start;
          delivered = Engine.now t.engine }

let box t ~dst ~src =
  let table = t.boxes.(dst) in
  match Hashtbl.find_opt table src with
  | Some b -> b
  | None ->
      let b =
        { ready = Queue.create (); recv_resume = None;
          reqs = Queue.create (); posted = 0 }
      in
      Hashtbl.add table src b;
      b

(* Reserve the node's shared bus for [busy] microseconds; returns how long
   the caller must additionally wait for earlier transfers to drain. The
   transfer cost itself is already part of the o/G terms of the message
   timeline, so only the queueing delay is returned. *)
let bus_delay t ~node ~busy =
  if not t.machine.Machine.model_bus then 0.0
  else begin
    let now = Engine.now t.engine in
    let start = Float.max now t.bus_free.(node) in
    t.bus_free.(node) <- start +. busy;
    start -. now
  end

let interference_quantum (p : Loggp.Params.t) size =
  p.onchip.o_dma +. (float_of_int size *. p.onchip.g_dma)

let deliver ?protocol ?send_start t ~dst ~src ~size =
  (match (protocol, send_start) with
  | Some protocol, Some send_start -> traced t ~src ~dst ~size ~protocol ~send_start
  | _ -> ());
  let b = box t ~dst ~src in
  match b.recv_resume with
  | Some resume ->
      b.recv_resume <- None;
      resume ()
  | None -> Queue.push size b.ready

(* Payload arrival at the destination node: the NIC-to-memory transfer
   queues on the receiving node's bus before the message becomes
   receivable. *)
let arrive ?protocol ?send_start t ~dst ~src ~size =
  let d =
    bus_delay t
      ~node:(Machine.node_of_rank t.machine dst)
      ~busy:(interference_quantum t.machine.platform size)
  in
  if d <= 0.0 then deliver ?protocol ?send_start t ~dst ~src ~size
  else
    Engine.schedule_after t.engine ~delay:d (fun () ->
        deliver ?protocol ?send_start t ~dst ~src ~size)

let request_arrival t ~dst ~src ~reply =
  let b = box t ~dst ~src in
  if b.posted > 0 then begin
    b.posted <- b.posted - 1;
    reply ()
  end
  else Queue.push reply b.reqs

let send t ~src ~dst ~size =
  if size < 0 then invalid_arg "Mpi_sim.send: negative size";
  t.sends <- t.sends + 1;
  let p = t.machine.platform in
  let fsize = float_of_int size in
  let send_start = Engine.now t.engine in
  match Machine.locality t.machine ~src ~dst with
  | On_chip ->
      let oc = p.onchip in
      if size <= oc.eager_limit then begin
        (* Copy path (equation 5): the receiver sees the payload after the
           sender's overhead plus the buffer-to-buffer copy. *)
        tallied t ~protocol:Trace.Copy ~size;
        Engine.wait oc.o_copy;
        Engine.schedule_after t.engine ~delay:(fsize *. oc.g_copy) (fun () ->
            deliver ~protocol:Trace.Copy ~send_start t ~dst ~src ~size)
      end
      else begin
        (* DMA path (equation 6): setup plus a bus-occupying transfer. *)
        tallied t ~protocol:Trace.Dma ~size;
        let d =
          bus_delay t
            ~node:(Machine.node_of_rank t.machine src)
            ~busy:(interference_quantum p size)
        in
        Engine.wait (d +. oc.o_copy +. oc.o_dma);
        Engine.schedule_after t.engine ~delay:(fsize *. oc.g_dma) (fun () ->
            deliver ~protocol:Trace.Dma ~send_start t ~dst ~src ~size)
      end
  | Off_node ->
      let off = p.offnode in
      let lat = Machine.latency t.machine ~src ~dst in
      let src_node = Machine.node_of_rank t.machine src in
      if size <= off.eager_limit then begin
        (* Eager (equation 1). *)
        tallied t ~protocol:Trace.Eager ~size;
        let d = bus_delay t ~node:src_node ~busy:(interference_quantum p size) in
        Engine.wait (d +. off.o);
        Engine.schedule_after t.engine ~delay:(lat +. (fsize *. off.g))
          (fun () -> arrive ~protocol:Trace.Eager ~send_start t ~dst ~src ~size)
      end
      else begin
        (* Rendezvous (equation 2): request, wait for the reply that the
           receiver issues when its matching receive is posted, then inject
           the payload. This is what makes large-message MPI_Send block on
           the receiver's progress. *)
        tallied t ~protocol:Trace.Rendezvous ~size;
        Engine.wait off.o;
        Engine.suspend (fun resume ->
            Engine.schedule_after t.engine ~delay:(lat +. off.o_h)
              (fun () ->
                request_arrival t ~dst ~src ~reply:(fun () ->
                    Engine.schedule_after t.engine ~delay:(lat +. off.o_h)
                      resume)));
        let d = bus_delay t ~node:src_node ~busy:(interference_quantum p size) in
        Engine.wait (d +. off.o);
        Engine.schedule_after t.engine ~delay:((fsize *. off.g) +. lat)
          (fun () ->
            arrive ~protocol:Trace.Rendezvous ~send_start t ~dst ~src ~size)
      end

let recv t ~dst ~src ~size =
  if size < 0 then invalid_arg "Mpi_sim.recv: negative size";
  t.recvs <- t.recvs + 1;
  let p = t.machine.platform in
  let locality = Machine.locality t.machine ~src ~dst in
  let b = box t ~dst ~src in
  (match locality with
  | Off_node when size > p.offnode.eager_limit ->
      (* Rendezvous: answer the sender's request, or record that a receive
         is posted so the request is answered on arrival. *)
      if not (Queue.is_empty b.reqs) then (Queue.pop b.reqs) ()
      else b.posted <- b.posted + 1
  | _ -> ());
  if Queue.is_empty b.ready then
    Engine.suspend (fun resume ->
        if b.recv_resume <> None then
          invalid_arg "Mpi_sim.recv: concurrent receives on one channel";
        b.recv_resume <- Some resume)
  else ignore (Queue.pop b.ready);
  let overhead =
    match locality with
    | On_chip -> p.onchip.o_copy
    | Off_node -> p.offnode.o
  in
  Engine.wait overhead

let sendrecv t ~self ~other ~size =
  send t ~src:self ~dst:other ~size;
  recv t ~dst:self ~src:other ~size

let sends t = t.sends
let recvs t = t.recvs
