(** Optional message tracing for the simulated machine: a bounded record of
    point-to-point transfers, dumpable as CSV. Pass a trace to
    {!Mpi_sim.create} to enable recording. *)

type protocol = Eager | Rendezvous | Copy | Dma

val protocol_name : protocol -> string

type record = {
  src : int;
  dst : int;
  size : int;
  protocol : protocol;
  send_start : float;
  delivered : float;
}

type t

val create : ?capacity:int -> unit -> t
(** Records beyond [capacity] (default 100k) are counted but dropped. *)

val record : t -> record -> unit
val records : t -> record list
(** In chronological order. *)

val recorded : t -> int
val total : t -> int

val by_protocol : t -> (string * int) list
(** Message counts per protocol, sorted by protocol name. *)

val edges : t -> Obs.Critical_path.edge list
(** Every recorded transfer as a critical-path message edge
    (send start to delivery). *)

val to_csv : t -> string
