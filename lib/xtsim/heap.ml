(* An array-based binary min-heap used as the simulator's event queue.
   Elements are ordered by (time, seq); the sequence number makes the
   order of simultaneous events deterministic (FIFO).

   Storage is structure-of-arrays: times in an unboxed float array, seqs
   and values alongside. A push writes three slots and a pop swaps three
   — no per-element record (whose mixed float/int fields would also box
   the timestamp) and no option on the hot path; capacity grows by
   amortized doubling. The record-shaped [pop] / [peek] remain as
   allocating conveniences for callers off the hot path. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
}

let create () = { times = [||]; seqs = [||]; values = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) and sq = t.seqs.(i) and v = t.values.(i) in
  t.times.(i) <- t.times.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.values.(i) <- t.values.(j);
  t.times.(j) <- tm;
  t.seqs.(j) <- sq;
  t.values.(j) <- v

let grow t seed =
  let cap = max 16 (2 * Array.length t.values) in
  let times = Array.make cap 0.0 in
  let seqs = Array.make cap 0 in
  let values = Array.make cap seed in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.values 0 values 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.values <- values

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t l !smallest then smallest := l;
  if r < t.size && before t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time ~seq value =
  if t.size = Array.length t.values then grow t value;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- seq;
  t.values.(i) <- value;
  t.size <- i + 1;
  sift_up t i

let top_time t =
  if t.size = 0 then invalid_arg "Heap.top_time: empty";
  t.times.(0)

let pop_top t =
  if t.size = 0 then invalid_arg "Heap.pop_top: empty";
  let v = t.values.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.times.(0) <- t.times.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.values.(0) <- t.values.(t.size);
    sift_down t 0
  end;
  v

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) in
    let value = pop_top t in
    Some { time; seq; value }
  end

let peek t =
  if t.size = 0 then None
  else Some { time = t.times.(0); seq = t.seqs.(0); value = t.values.(0) }
