(** Discrete-event simulation core.

    Simulated processes are plain functions run with {!spawn}; inside them,
    {!wait} advances simulated time and {!suspend} parks the process until
    another event calls the provided resume thunk. Time is in simulated
    microseconds. *)

type t

val create : unit -> t
val now : t -> float

val clock : t -> unit -> float
(** The engine's simulated time as an [Obs.Clock.t], for stamping spans in
    simulated microseconds (e.g. [Obs.Tracer.create ~clock:(clock e) ()]). *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Schedule a plain event (not a process) at an absolute time. Raises
    [Invalid_argument] if [at] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit

val wait : float -> unit
(** Only callable inside a process spawned on some engine. Raises
    [Invalid_argument] on negative durations. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process. [register] receives a
    resume thunk that must be called exactly once (from another event) to
    reschedule the process at the caller's current simulated time; a second
    call raises [Invalid_argument]. *)

val spawn : t -> ?at:float -> (unit -> unit) -> unit
(** Start a process at the given time (default: now). *)

val step : t -> bool
(** Execute the single earliest event, advancing the clock to it; [false]
    iff the queue was empty. The granular form of {!run}, for drivers
    that interleave simulation with other work. *)

val run : t -> float
(** Execute events until the queue drains; returns the final simulated time.
    Suspended processes whose resume is never called are simply abandoned
    (useful to detect deadlock: their completion flags stay unset). *)

val events_executed : t -> int
