(** Simulated blocking MPI point-to-point communication over a
    {!Machine.t}, implementing the protocol mechanics underlying the LogGP
    equations of Table 1: eager and rendezvous off-node paths, copy and DMA
    on-chip paths, and shared-bus queueing inside multi-core nodes
    (Table 6's interference).

    {!send} and {!recv} must be called from processes spawned on the engine
    passed to {!create}; both block (suspend the calling process) according
    to MPI semantics — [send] until the payload is injected (for rendezvous
    messages, until the receiver has posted a matching receive), [recv]
    until the payload has arrived and been processed. *)

type t

val create : ?trace:Trace.t -> ?metrics:Obs.Metrics.t -> Engine.t -> Machine.t -> t
(** Pass a {!Trace.t} to record every point-to-point transfer, and a
    metrics registry to count messages and bytes per protocol
    ([sim.msgs.eager], [sim.bytes.rendezvous], ...). *)

val send : t -> src:int -> dst:int -> size:int -> unit
val recv : t -> dst:int -> src:int -> size:int -> unit

val sendrecv : t -> self:int -> other:int -> size:int -> unit
(** Send then receive, the pairwise-exchange step of recursive doubling.
    Deadlock-free for eager-size messages. *)

val interference_quantum : Loggp.Params.t -> int -> float
(** Table 6's [I = o_dma + size * G_dma], the bus occupancy of one
    transfer. *)

val sends : t -> int
val recvs : t -> int
