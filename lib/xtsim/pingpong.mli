(** The ping-pong microbenchmark of Section 3 on the simulated machine,
    producing the "measured" series of Figure 3. *)

val machine_for :
  ?model_bus:bool ->
  Loggp.Params.t ->
  Loggp.Comm_model.locality ->
  Machine.t
(** A two-core machine with the pair on one node ([On_chip]) or on two
    nodes ([Off_node]). *)

val half_round_trip : ?rounds:int -> Machine.t -> size:int -> float
(** Half the average round-trip time between ranks 0 and 1, us. *)

val curve :
  ?rounds:int ->
  ?model_bus:bool ->
  Loggp.Params.t ->
  Loggp.Comm_model.locality ->
  sizes:int list ->
  (int * float) list

val figure3_sizes : int list
(** The 1B-12KB sweep of Figure 3, denser near the 1KB boundary. *)

val microbench :
  ?model_bus:bool ->
  Loggp.Params.t ->
  Loggp.Comm_model.locality ->
  (module Wrun.Substrate.MICROBENCH)
(** {!curve} behind the one microbenchmark signature `wavefront fit`
    drives, so the simulated and the real transport feed {!Loggp.Fit}
    identically. *)
