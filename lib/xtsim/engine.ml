(* The discrete-event simulation core.

   Simulated processes are ordinary OCaml functions that perform the [Wait]
   and [Suspend] effects; the engine handles them with one-shot continuations
   stored in the event queue. [Wait d] advances the process's local clock by
   [d] simulated microseconds; [Suspend register] parks the process and hands
   [register] a resume thunk that any other event may call exactly once to
   reschedule it at the then-current simulated time. This keeps the simulated
   MPI programs in lib/xtsim and the substrate's blocking semantics in direct
   style, with no hand-written state machines. *)

type t = {
  mutable now : float;
  mutable seq : int;
  events : (unit -> unit) Heap.t;
  mutable executed : int;
}

type _ Effect.t +=
  | Wait : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let create () = { now = 0.0; seq = 0; events = Heap.create (); executed = 0 }
let now t = t.now

(* The engine's simulated time as an [Obs.Clock.t], so tracers built over
   a simulation stamp spans in simulated microseconds. *)
let clock t () = t.now

let schedule t ~at f =
  if at < t.now then invalid_arg "Engine.schedule: cannot schedule in the past";
  t.seq <- t.seq + 1;
  Heap.push t.events ~time:at ~seq:t.seq f

let schedule_after t ~delay f = schedule t ~at:(t.now +. delay) f

let wait d =
  if d < 0.0 then invalid_arg "Engine.wait: negative duration";
  if d > 0.0 then Effect.perform (Wait d)

let suspend register = Effect.perform (Suspend register)

let spawn t ?at f =
  let open Effect.Deep in
  let body () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait d ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    schedule_after t ~delay:d (fun () -> continue k ()))
            | Suspend register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let resumed = ref false in
                    register (fun () ->
                        if !resumed then
                          invalid_arg "Engine: process resumed twice";
                        resumed := true;
                        schedule t ~at:t.now (fun () -> continue k ())))
            | _ -> None);
      }
  in
  match at with
  | None -> schedule t ~at:t.now body
  | Some at -> schedule t ~at body

(* One event: advance the clock to the head of the queue and run it.
   [Heap.top_time] / [Heap.pop_top] box nothing — the drain loop's only
   allocations are the ones the event closures themselves make. *)
let step t =
  if Heap.is_empty t.events then false
  else begin
    t.now <- Heap.top_time t.events;
    t.executed <- t.executed + 1;
    (Heap.pop_top t.events) ();
    true
  end

let run t =
  while step t do
    ()
  done;
  t.now

let events_executed t = t.executed
