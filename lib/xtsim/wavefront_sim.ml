(* Executable wavefront programs on the simulated machine.

   Each core of the machine runs the program of Figure 4 for every sweep of
   the application's schedule, using blocking simulated MPI: receive the
   boundary values from the two upstream neighbours, compute the tile, send
   to the two downstream neighbours, repeat down the stack. The sweep
   precedence behaviour of Figure 2 (Follow/Diagonal/Full gating) is not
   programmed anywhere — it emerges from the blocking communication and the
   per-sweep origins, exactly as it does in the real codes the paper
   models.

   Beyond the model's assumptions, the simulator can inject two effects the
   closed forms ignore, for robustness studies:
   - [balanced]: per-rank work from the integer block decomposition instead
     of the model's uniform real-valued Nx/n * Ny/m (load imbalance on
     non-divisible grids);
   - [noise]: multiplicative per-tile compute jitter from a deterministic
     per-rank RNG (OS noise / cache variability). *)

open Wgrid
open Wavefront_core

type noise = { amplitude : float; seed : int }

type rank_stats = {
  compute : float;  (** time spent computing, us *)
  comm : float;  (** time spent inside send/recv calls (incl. blocking) *)
  wait : float;
      (** the part of [comm] in excess of the uncontended cost of each
          operation: blocking on upstream progress, rendezvous stalls, bus
          queueing *)
  finish : float;  (** completion time of the rank's program *)
}

type outcome = {
  elapsed : float;  (** simulated time for the run, us *)
  per_iteration : float;
  iterations : int;
  completed : bool;  (** all ranks finished (false indicates deadlock) *)
  events : int;
  sends : int;
  stats : rank_stats array;
}

let compute_total o =
  Array.fold_left (fun a s -> a +. s.compute) 0.0 o.stats

(* The communication share of the last-finishing rank: the executable
   analogue of the model's critical-path communication component
   (Figure 11). Waiting inside a blocking receive counts as communication,
   as it does on the model's critical path. *)
let comm_share o =
  let last =
    Array.fold_left
      (fun best s -> if s.finish > best.finish then s else best)
      o.stats.(0) o.stats
  in
  last.comm /. (last.comm +. last.compute)

(* A rough event-count estimate before committing to a big simulation:
   each rank executes ~6 events per tile per sweep (two receives, compute,
   two sends, scheduling). *)
let estimated_events (machine : Machine.t) (app : App_params.t) ~iterations =
  let cores = Proc_grid.cores machine.pgrid in
  let ntiles = Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile in
  let nsweeps = Sweeps.Schedule.nsweeps app.schedule in
  cores * ntiles * nsweeps * 6 * iterations

(* Downstream x/y direction of a sweep, by origin corner: a sweep flows away
   from its origin in both dimensions. *)
let flow (pg : Proc_grid.t) corner =
  let ox, oy = Proc_grid.corner_coords pg corner in
  ((if ox = 1 then 1 else -1), if oy = 1 then 1 else -1)

let run ?(iterations = 1) ?(balanced = false) ?noise ?trace ?obs ?metrics
    (machine : Machine.t) (app : App_params.t) =
  if iterations < 1 then invalid_arg "Wavefront_sim.run: iterations >= 1";
  (match noise with
  | Some n when n.amplitude < 0.0 || n.amplitude >= 1.0 ->
      invalid_arg "Wavefront_sim.run: noise amplitude must be in [0, 1)"
  | _ -> ());
  let pg = machine.pgrid in
  let engine = Engine.create () in
  let mpi = Mpi_sim.create ?trace ?metrics engine machine in
  let coll = Collective.ctx engine machine in
  let msg_ew = App_params.message_size_ew app pg in
  let msg_ns = App_params.message_size_ns app pg in
  let ntiles = Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile in
  let sweeps = Sweeps.Schedule.sweeps app.schedule in
  let cores = Proc_grid.cores pg in
  let done_flags = Array.make cores false in
  let compute = Array.make cores 0.0 in
  let comm = Array.make cores 0.0 in
  let waits = Array.make cores 0.0 in
  let finish = Array.make cores 0.0 in

  (* Per-rank tile work: uniform (the model's view) or from the integer
     block decomposition. *)
  let work_of rank =
    let cells =
      if balanced then begin
        let i, j = Proc_grid.coords pg rank in
        let bx = Decomp.block_of ~cells:app.grid.nx ~parts:pg.cols ~index:(i - 1) in
        let by = Decomp.block_of ~cells:app.grid.ny ~parts:pg.rows ~index:(j - 1) in
        app.htile *. float_of_int (bx * by)
      end
      else Decomp.cells_per_tile app.grid pg ~htile:app.htile
    in
    (app.wg *. cells, app.wg_pre *. cells)
  in

  let jitter_of rank =
    match noise with
    | None -> fun () -> 1.0
    | Some { amplitude; seed } ->
        let state = Random.State.make [| seed; rank |] in
        fun () -> 1.0 +. (amplitude *. ((2.0 *. Random.State.float state 1.0) -. 1.0))
  in

  (* Structured tracing: spans are stamped in simulated time. The [args]
     thunk is only forced when a tracer is attached, so the disabled path
     costs one option check and no allocation. *)
  let emit name cat rank ~start ~args =
    match obs with
    | None -> ()
    | Some tr ->
        Obs.Tracer.record tr ~cat ~args:(args ()) ~rank ~start
          ~dur:(Engine.now engine -. start) name
  in
  let no_args () = [] in

  (* [pure] is the uncontended model cost of the operation; anything beyond
     it is blocking/queueing wait. Operations with no closed-form cost
     (collectives, halo rounds) pass no [pure] and count fully as comm. *)
  let timed_comm ?pure ?(name = "comm") ?(args = no_args) rank f =
    let t0 = Engine.now engine in
    f ();
    let d = Engine.now engine -. t0 in
    comm.(rank) <- comm.(rank) +. d;
    (match pure with
    | Some p -> waits.(rank) <- waits.(rank) +. Float.max 0.0 (d -. p)
    | None -> ());
    match obs with
    | None -> ()
    | Some tr ->
        let wait =
          match pure with Some p -> Float.max 0.0 (d -. p) | None -> d
        in
        Obs.Tracer.record tr ~cat:"comm"
          ~args:(("wait", Obs.Span.Float wait) :: args ())
          ~rank ~start:t0 ~dur:d name
  in
  let locality_for rank other =
    Machine.locality machine ~src:rank ~dst:other
  in
  let pure_send rank dst size =
    Loggp.Comm_model.send machine.platform (locality_for rank dst) size
  in
  let pure_recv rank src size =
    Loggp.Comm_model.receive machine.platform (locality_for rank src) size
  in
  let timed_compute ?(name = "compute") rank d =
    if d > 0.0 then begin
      let t0 = Engine.now engine in
      Engine.wait d;
      compute.(rank) <- compute.(rank) +. d;
      emit name "compute" rank ~start:t0 ~args:no_args
    end
  in

  let nonwavefront rank =
    match app.nonwavefront with
    | App_params.No_op -> ()
    | Fixed t -> timed_compute rank t
    | Allreduce { count; msg_size } ->
        timed_comm ~name:"allreduce" rank (fun () ->
            for _ = 1 to count do
              Collective.allreduce coll mpi ~rank ~msg_size
            done)
    | Stencil { wg_stencil; halo_bytes_per_cell } ->
        let i, j = Proc_grid.coords pg rank in
        let cells_x = Decomp.cells_x app.grid pg in
        let cells_y = Decomp.cells_y app.grid pg in
        let nz = float_of_int app.grid.nz in
        timed_compute rank (wg_stencil *. cells_x *. cells_y *. nz);
        (* Halo exchange, one direction at a time to stay deadlock-free:
           everyone sends east and receives from the west, then the reverse,
           then the same for north/south. *)
        let face extent =
          Decomp.message_size ~bytes_per_cell:halo_bytes_per_cell ~htile:nz
            ~extent
        in
        let ew = face cells_y and ns = face cells_x in
        let exchange dir size =
          let di, dj =
            match dir with
            | `E -> (1, 0) | `W -> (-1, 0) | `S -> (0, 1) | `N -> (0, -1)
          in
          let dst = (i + di, j + dj) and src = (i - di, j - dj) in
          timed_comm ~name:"halo" rank (fun () ->
              if Proc_grid.contains pg dst then
                Mpi_sim.send mpi ~src:rank ~dst:(Proc_grid.rank pg dst) ~size;
              if Proc_grid.contains pg src then
                Mpi_sim.recv mpi ~dst:rank ~src:(Proc_grid.rank pg src) ~size)
        in
        exchange `E ew; exchange `W ew; exchange `S ns; exchange `N ns
  in

  let program rank () =
    let i, j = Proc_grid.coords pg rank in
    let w, w_pre = work_of rank in
    let jitter = jitter_of rank in
    for _iter = 1 to iterations do
      List.iter
        (fun (s : Sweeps.Schedule.sweep) ->
          let dx, dy = flow pg s.origin in
          let up_x = (i - dx, j) and up_y = (i, j - dy) in
          let down_x = (i + dx, j) and down_y = (i, j + dy) in
          let has p = Proc_grid.contains pg p in
          for _tile = 1 to ntiles do
            (* Figure 4: LU pre-computes part of the domain before the
               receives; Sweep3D and Chimaera have Wg_pre = 0. *)
            timed_compute ~name:"precompute" rank (w_pre *. jitter ());
            if has up_x then begin
              let src = Proc_grid.rank pg up_x in
              timed_comm ~pure:(pure_recv rank src msg_ew) ~name:"recv"
                ~args:(fun () ->
                  [ ("src", Obs.Span.Int src); ("size", Int msg_ew);
                    ("dir", Str "W") ])
                rank
                (fun () -> Mpi_sim.recv mpi ~dst:rank ~src ~size:msg_ew)
            end;
            if has up_y then begin
              let src = Proc_grid.rank pg up_y in
              timed_comm ~pure:(pure_recv rank src msg_ns) ~name:"recv"
                ~args:(fun () ->
                  [ ("src", Obs.Span.Int src); ("size", Int msg_ns);
                    ("dir", Str "N") ])
                rank
                (fun () -> Mpi_sim.recv mpi ~dst:rank ~src ~size:msg_ns)
            end;
            timed_compute rank (w *. jitter ());
            if has down_x then begin
              let dst = Proc_grid.rank pg down_x in
              timed_comm ~pure:(pure_send rank dst msg_ew) ~name:"send"
                ~args:(fun () ->
                  [ ("dst", Obs.Span.Int dst); ("size", Int msg_ew);
                    ("dir", Str "E") ])
                rank
                (fun () -> Mpi_sim.send mpi ~src:rank ~dst ~size:msg_ew)
            end;
            if has down_y then begin
              let dst = Proc_grid.rank pg down_y in
              timed_comm ~pure:(pure_send rank dst msg_ns) ~name:"send"
                ~args:(fun () ->
                  [ ("dst", Obs.Span.Int dst); ("size", Int msg_ns);
                    ("dir", Str "S") ])
                rank
                (fun () -> Mpi_sim.send mpi ~src:rank ~dst ~size:msg_ns)
            end
          done)
        sweeps;
      nonwavefront rank
    done;
    done_flags.(rank) <- true;
    finish.(rank) <- Engine.now engine
  in
  for rank = 0 to cores - 1 do
    Engine.spawn engine (program rank)
  done;
  let elapsed = Engine.run engine in
  (* Cross-rank distributions of where time went, plus run totals, for the
     profiling report. *)
  (match metrics with
  | None -> ()
  | Some m ->
      let h name arr =
        let hist = Obs.Metrics.histogram m name in
        Array.iter (Obs.Metrics.observe hist) arr
      in
      h "sim.rank.compute" compute;
      h "sim.rank.comm" comm;
      h "sim.rank.wait" waits;
      Obs.Metrics.set (Obs.Metrics.gauge m "sim.elapsed") elapsed;
      Obs.Metrics.inc ~by:(Engine.events_executed engine)
        (Obs.Metrics.counter m "sim.events");
      Obs.Metrics.inc ~by:(Mpi_sim.sends mpi)
        (Obs.Metrics.counter m "sim.sends"));
  {
    elapsed;
    per_iteration = elapsed /. float_of_int iterations;
    iterations;
    completed = Array.for_all Fun.id done_flags;
    events = Engine.events_executed engine;
    sends = Mpi_sim.sends mpi;
    stats =
      Array.init cores (fun r ->
          { compute = compute.(r); comm = comm.(r); wait = waits.(r);
            finish = finish.(r) });
  }

let pp_outcome ppf o =
  Fmt.pf ppf "elapsed %a (%d iteration(s), %s), %d events, %d sends"
    Units.pp_time o.elapsed o.iterations
    (if o.completed then "completed" else "DEADLOCKED")
    o.events o.sends
