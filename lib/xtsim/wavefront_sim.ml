(* The simulated-machine substrate and the classic entry point around it.

   The Figure-4 rank program itself lives in Wrun.Program — written once,
   against the substrate interface — and this module supplies what varies
   on the simulated machine: payloads are byte sizes, sends and receives
   cost what the LogGP-calibrated Mpi_sim charges, computes advance the
   simulated clock by the model's Wg work, and every step is attributed to
   per-rank compute/comm/wait totals and (optionally) tracer spans stamped
   in simulated time. The sweep precedence behaviour of Figure 2
   (Follow/Diagonal/Full gating) is not programmed anywhere — it emerges
   from the blocking communication and the per-sweep origins, exactly as
   it does in the real codes the paper models.

   Beyond the model's assumptions, the simulator can inject effects the
   closed forms ignore, for robustness studies:
   - [balanced]: per-rank work from the integer block decomposition instead
     of the model's uniform real-valued Nx/n * Ny/m (load imbalance on
     non-divisible grids);
   - [noise]: multiplicative per-tile compute jitter from a deterministic
     per-rank RNG (OS noise / cache variability);
   - [perturb]: a full Perturb.Spec — one-sided seeded compute noise, link
     injection delays, permanent stragglers and rank failures — the same
     spec the real runtime and the dataflow backend accept (including the
     wave-indexed idle-wave scenarios: pulse, periodic, collective noise).
     Injected delays advance the simulated clock as dedicated events and
     are tagged as "perturb.noise" / "perturb.straggler" / "perturb.link" /
     "perturb.pulse" / "perturb.periodic" / "perturb.collnoise" spans, so
     critical-path reports show where delay was absorbed vs propagated. A
     killed rank's fiber stops (its sends never happen); downstream ranks
     block forever and the run completes with [completed = false] and the
     dead ranks in [failed] — the simulated analogue of the real runtime's
     Rank_failure degradation. *)

open Wgrid
open Wavefront_core

type noise = { amplitude : float; seed : int }

type rank_stats = {
  compute : float;  (** time spent computing, us *)
  comm : float;  (** time spent inside send/recv calls (incl. blocking) *)
  wait : float;
      (** the part of [comm] in excess of the uncontended cost of each
          operation: blocking on upstream progress, rendezvous stalls, bus
          queueing *)
  finish : float;  (** completion time of the rank's program *)
}

type outcome = {
  elapsed : float;  (** simulated time for the run, us *)
  per_iteration : float;
  iterations : int;
  completed : bool;  (** all ranks finished (false indicates deadlock) *)
  failed : int list;  (** ranks killed by the perturbation spec, ascending *)
  recovered : int list;
      (** ranks that died but were restored from a checkpoint, ascending
          (empty unless a recovery policy is active) *)
  checkpoints : int;  (** snapshots taken across all ranks *)
  events : int;
  sends : int;
  stats : rank_stats array;
}

let compute_total o =
  Array.fold_left (fun a s -> a +. s.compute) 0.0 o.stats

(* The communication share of the last-finishing rank: the executable
   analogue of the model's critical-path communication component
   (Figure 11). Waiting inside a blocking receive counts as communication,
   as it does on the model's critical path. *)
let comm_share o =
  let last =
    Array.fold_left
      (fun best s -> if s.finish > best.finish then s else best)
      o.stats.(0) o.stats
  in
  last.comm /. (last.comm +. last.compute)

(* A rough event-count estimate before committing to a big simulation:
   each rank executes ~6 events per tile per sweep (two receives, compute,
   two sends, scheduling). *)
let estimated_events (machine : Machine.t) (app : App_params.t) ~iterations =
  let cores = Proc_grid.cores machine.pgrid in
  let ntiles = Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile in
  let nsweeps = Sweeps.Schedule.nsweeps app.schedule in
  cores * ntiles * nsweeps * 6 * iterations

let flow = Wrun.Program.flow_xy

(* The event-driven engine materializes a fiber and a continuous stream
   of heap events per rank; past a few tens of thousands of ranks that
   stops failing gracefully (minutes of wall clock, then the allocator).
   Refuse structurally instead of dying with a flat [Out_of_memory]
   mid-run — the batched engine covers those sizes. *)
let default_max_ranks = 65536

exception
  Rank_ceiling of { ranks : int; max_ranks : int; estimated_events : int }

let () =
  Printexc.register_printer (function
    | Rank_ceiling { ranks; max_ranks; estimated_events } ->
        Some
          (Printf.sprintf
             "Wavefront_sim.Rank_ceiling: %d ranks exceeds the \
              event-driven engine's ceiling of %d (~%d events); use the \
              wave-batched engine (--engine=batched) for this size, or \
              raise the ceiling explicitly (--max-ranks / ~max_ranks)"
             ranks max_ranks estimated_events)
    | _ -> None)

(* Recovery bookkeeping, the simulated counterpart of the real
   supervisor: [last_ckpt]/[cur_wave] are global wave indices (from
   tile_begin), so the rollback depth at a kill is their difference. *)
type recovery = {
  policy : Perturb.Recover.policy;
  last_ckpt : int array;
  cur_wave : int array;
  revived : bool array;
  mutable ckpts : int;
}

module Backend = struct
  type t = {
    engine : Engine.t;
    mpi : Mpi_sim.t;
    coll : Collective.ctx;
    machine : Machine.t;
    grid : Data_grid.t;
    msg_ew : int;
    msg_ns : int;
    work : (float * float) array;  (* per-rank (w, w_pre) *)
    jitter : (unit -> float) array;
    ntiles : int;
    sweep : int array;  (* per-rank current sweep, for wave tagging *)
    perturb : Perturb.Model.t option;
    recover : recovery option;
    compute : float array;
    comm : float array;
    waits : float array;
    finish : float array;
    done_flags : bool array;
    failed_flags : bool array;
    obs : Obs.Tracer.t option;
  }

  let create ?(balanced = false) ?noise ?perturb ?recover ?trace ?obs
      ?metrics engine (machine : Machine.t) (app : App_params.t) =
    let pg = machine.pgrid in
    let cores = Proc_grid.cores pg in
    (* Per-rank tile work: uniform (the model's view) or from the integer
       block decomposition. *)
    let work_of rank =
      let cells =
        if balanced then begin
          let i, j = Proc_grid.coords pg rank in
          let bx =
            Decomp.block_of ~cells:app.grid.nx ~parts:pg.cols ~index:(i - 1)
          in
          let by =
            Decomp.block_of ~cells:app.grid.ny ~parts:pg.rows ~index:(j - 1)
          in
          app.htile *. float_of_int (bx * by)
        end
        else Decomp.cells_per_tile app.grid pg ~htile:app.htile
      in
      (app.wg *. cells, app.wg_pre *. cells)
    in
    let jitter_of rank =
      match noise with
      | None -> fun () -> 1.0
      | Some { amplitude; seed } ->
          let state = Random.State.make [| seed; rank |] in
          fun () ->
            1.0 +. (amplitude *. ((2.0 *. Random.State.float state 1.0) -. 1.0))
    in
    {
      engine;
      mpi = Mpi_sim.create ?trace ?metrics engine machine;
      coll = Collective.ctx engine machine;
      machine;
      grid = app.grid;
      msg_ew = App_params.message_size_ew app pg;
      msg_ns = App_params.message_size_ns app pg;
      work = Array.init cores work_of;
      jitter = Array.init cores jitter_of;
      ntiles = Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile;
      sweep = Array.make cores 0;
      perturb = Option.map (Perturb.Model.create ~ranks:cores) perturb;
      recover =
        (match recover with
        | Some p when Perturb.Recover.enabled p ->
            Some
              {
                policy = p;
                last_ckpt = Array.make cores 0;
                cur_wave = Array.make cores 0;
                revived = Array.make cores false;
                ckpts = 0;
              }
        | _ -> None);
      compute = Array.make cores 0.0;
      comm = Array.make cores 0.0;
      waits = Array.make cores 0.0;
      finish = Array.make cores 0.0;
      done_flags = Array.make cores false;
      failed_flags = Array.make cores false;
      obs;
    }

  (* Structured tracing: spans are stamped in simulated time. The [args]
     thunk is only forced when a tracer is attached, so the disabled path
     costs one option check and no allocation. *)
  let emit t name cat rank ~start ~args =
    match t.obs with
    | None -> ()
    | Some tr ->
        Obs.Tracer.record tr ~cat ~args:(args ()) ~rank ~start
          ~dur:(Engine.now t.engine -. start)
          name

  let no_args () = []

  (* [pure] is the uncontended model cost of the operation; anything beyond
     it is blocking/queueing wait. Operations with no closed-form cost
     (collectives, halo rounds) pass no [pure] and count fully as comm. *)
  let timed_comm ?pure ?(name = "comm") ?(args = no_args) t rank f =
    let t0 = Engine.now t.engine in
    f ();
    let d = Engine.now t.engine -. t0 in
    t.comm.(rank) <- t.comm.(rank) +. d;
    (match pure with
    | Some p -> t.waits.(rank) <- t.waits.(rank) +. Float.max 0.0 (d -. p)
    | None -> ());
    match t.obs with
    | None -> ()
    | Some tr ->
        let wait =
          match pure with Some p -> Float.max 0.0 (d -. p) | None -> d
        in
        Obs.Tracer.record tr ~cat:"comm"
          ~args:(("wait", Obs.Span.Float wait) :: args ())
          ~rank ~start:t0 ~dur:d name

  let locality_for t rank other =
    Machine.locality t.machine ~src:rank ~dst:other

  let pure_send t rank dst size =
    Loggp.Comm_model.send t.machine.platform (locality_for t rank dst) size

  let pure_recv t rank src size =
    Loggp.Comm_model.receive t.machine.platform (locality_for t rank src) size

  let timed_compute ?(name = "compute") ?(args = no_args) t rank d =
    if d > 0.0 then begin
      let t0 = Engine.now t.engine in
      Engine.wait d;
      t.compute.(rank) <- t.compute.(rank) +. d;
      emit t name "compute" rank ~start:t0 ~args
    end

  (* Recovery-protocol time (checkpointing, restart, replayed waves):
     advances the simulated clock and is tagged as a [recover.*] span,
     but belongs to neither the compute nor the comm attribution — it is
     the overhead the closed-form recovery term predicts. *)
  let timed_recover ?(args = no_args) t rank name d =
    if d > 0.0 then begin
      let t0 = Engine.now t.engine in
      Engine.wait d;
      emit t name "recover" rank ~start:t0 ~args
    end

  (* Wave tagging for the timeline: spans inside the tile loop carry
     [wave = sweep * ntiles + tile]; everything outside it (collectives,
     halos, fixed work) is tagged epilogue. *)
  let wave_of t rank tile =
    (Obs.Timeline.wave_arg, Obs.Span.Int ((t.sweep.(rank) * t.ntiles) + tile))

  let epilogue_tag =
    (Obs.Timeline.wave_arg, Obs.Span.Int Obs.Timeline.epilogue_wave)

  let epilogue_args () = [ epilogue_tag ]

  (* The substrate: payloads are byte sizes, the messages' contents being
     the model's business rather than the simulator's. The per-tile [recv]
     and [send] span directions are fixed compass labels per axis ("W"/"N"
     upstream, "E"/"S" downstream), as the historical program emitted. *)
  module Substrate = struct
    type nonrec t = t
    type payload = int

    let boundary _ ~rank:_ ~axis:_ ~h:_ = 0

    let recv t ~rank ~src ~axis ~tile ~h:_ ~bytes =
      timed_comm
        ~pure:(pure_recv t rank src bytes)
        ~name:"recv"
        ~args:(fun () ->
          [ ("src", Obs.Span.Int src); ("size", Int bytes);
            ("dir", Str (match axis with Wrun.Substrate.X -> "W" | Y -> "N"));
            wave_of t rank tile;
          ])
        t rank
        (fun () -> Mpi_sim.recv t.mpi ~dst:rank ~src ~size:bytes);
      bytes

    (* The spec's link contention: a seeded injection delay spent before
       the send enters the network, so downstream receivers see the
       message later — tagged as its own comm span. *)
    let inject_link_delay t rank ~tile =
      match t.perturb with
      | None -> ()
      | Some m ->
          let extra = Perturb.Model.link_extra m ~src:rank in
          if extra > 0.0 then
            timed_comm ~name:"perturb.link"
              ~args:(fun () -> [ wave_of t rank tile ])
              t rank
              (fun () -> Engine.wait extra)

    let send t ~rank ~dst ~axis ~tile bytes =
      inject_link_delay t rank ~tile;
      timed_comm
        ~pure:(pure_send t rank dst bytes)
        ~name:"send"
        ~args:(fun () ->
          [ ("dst", Obs.Span.Int dst); ("size", Int bytes);
            ("dir", Str (match axis with Wrun.Substrate.X -> "E" | Y -> "S"));
            wave_of t rank tile;
          ])
        t rank
        (fun () -> Mpi_sim.send t.mpi ~src:rank ~dst ~size:bytes)

    (* Figure 4: LU pre-computes part of the domain before the receives;
       Sweep3D and Chimaera have Wg_pre = 0 (the jitter stream is still
       consumed so noise draws stay aligned per tile). *)
    let precompute t ~rank ~tile =
      let _, w_pre = t.work.(rank) in
      timed_compute ~name:"precompute"
        ~args:(fun () -> [ wave_of t rank tile ])
        t rank
        (w_pre *. t.jitter.(rank) ())

    let compute t ~rank ~dir:_ ~tile ~h:_ ~x:_ ~y:_ =
      (match t.perturb with
      | Some m when Perturb.Model.fails_now m ~rank -> (
          (* Under a recovery policy the kill is survived: the rank is
             restored from its last snapshot and re-executes the lost
             waves, all charged in simulated time, then carries on with
             this very tile — fail-stop with replacement, so it never
             dies again. *)
          match t.recover with
          | Some r ->
              Perturb.Model.revive m ~rank;
              r.revived.(rank) <- true;
              let args () = [ wave_of t rank tile ] in
              timed_recover ~args t rank "recover.restart"
                r.policy.restart_cost;
              let w, w_pre = t.work.(rank) in
              let lost = r.cur_wave.(rank) - r.last_ckpt.(rank) in
              timed_recover ~args t rank "recover.replay"
                (float_of_int lost *. (w +. w_pre))
          | None -> raise (Perturb.Model.Killed { rank; tile }))
      | _ -> ());
      let args () = [ wave_of t rank tile ] in
      let w, _ = t.work.(rank) in
      timed_compute ~args t rank (w *. t.jitter.(rank) ());
      (match t.perturb with
      | None -> ()
      | Some m ->
          let extra = Perturb.Model.noise_extra m ~rank ~work:w in
          if extra > 0.0 then
            timed_compute ~name:"perturb.noise" ~args t rank extra;
          let d = Perturb.Model.straggler_delay m ~rank in
          if d > 0.0 then
            timed_compute ~name:"perturb.straggler" ~args t rank d;
          let p = Perturb.Model.pulse_extra m ~rank in
          if p > 0.0 then timed_compute ~name:"perturb.pulse" ~args t rank p;
          let pd = Perturb.Model.periodic_extra m ~rank in
          if pd > 0.0 then
            timed_compute ~name:"perturb.periodic" ~args t rank pd);
      (t.msg_ew, t.msg_ns)

    let sweep_begin t ~rank ~sweep ~dir:_ = t.sweep.(rank) <- sweep

    (* The checkpoint anchor: on due waves, charge the modeled snapshot
       cost before the tile's work. A strict no-op without a policy, so
       the zero config stays bitwise invisible. *)
    let tile_begin t ~rank ~pos ~wave =
      match t.recover with
      | None -> ()
      | Some r ->
          r.cur_wave.(rank) <- wave;
          if Perturb.Recover.due ~interval:r.policy.interval ~wave then begin
            r.ckpts <- r.ckpts + 1;
            r.last_ckpt.(rank) <- wave;
            timed_recover
              ~args:(fun () -> [ wave_of t rank pos.Wrun.Substrate.tile ])
              t rank "recover.checkpoint" r.policy.ckpt_cost
          end

    let fixed_work t ~rank d = timed_compute ~args:epilogue_args t rank d

    let stencil_compute t ~rank ~wg_stencil =
      let pg = t.machine.pgrid in
      let cells_x = Decomp.cells_x t.grid pg in
      let cells_y = Decomp.cells_y t.grid pg in
      let nz = float_of_int t.grid.nz in
      timed_compute ~args:epilogue_args t rank
        (wg_stencil *. cells_x *. cells_y *. nz)

    let halo t ~rank ~dst ~src ~bytes =
      timed_comm ~name:"halo" ~args:epilogue_args t rank (fun () ->
          (match dst with
          | Some d -> Mpi_sim.send t.mpi ~src:rank ~dst:d ~size:bytes
          | None -> ());
          match src with
          | Some s -> Mpi_sim.recv t.mpi ~dst:rank ~src:s ~size:bytes
          | None -> ())

    (* Collective noise: a seeded stall before the rank enters the
       all-reduce, the classic desynchronization source of the idle-wave
       literature. One draw per allreduce substrate call, on every rank. *)
    let inject_coll_delay t rank =
      match t.perturb with
      | None -> ()
      | Some m ->
          let extra = Perturb.Model.coll_extra m ~rank in
          if extra > 0.0 then
            timed_comm ~name:"perturb.collnoise" ~args:epilogue_args t rank
              (fun () -> Engine.wait extra)

    let allreduce t ~rank ~count ~msg_size =
      inject_coll_delay t rank;
      timed_comm ~name:"allreduce" ~args:epilogue_args t rank (fun () ->
          for _ = 1 to count do
            Collective.allreduce t.coll t.mpi ~rank ~msg_size
          done)

    (* The simulated machine has no dedicated barrier network; synchronize
       with a minimal all-reduce, as the real codes do. *)
    let barrier t ~rank =
      timed_comm ~name:"barrier" ~args:epilogue_args t rank (fun () ->
          Collective.allreduce t.coll t.mpi ~rank ~msg_size:8)

    let finish t ~rank =
      t.done_flags.(rank) <- true;
      t.finish.(rank) <- Engine.now t.engine
  end
end

let run ?(iterations = 1) ?(max_ranks = default_max_ranks) ?(balanced = false)
    ?noise ?perturb ?recover ?trace ?obs ?metrics (machine : Machine.t)
    (app : App_params.t) =
  if iterations < 1 then invalid_arg "Wavefront_sim.run: iterations >= 1";
  (match noise with
  | Some n when n.amplitude < 0.0 || n.amplitude >= 1.0 ->
      invalid_arg "Wavefront_sim.run: noise amplitude must be in [0, 1)"
  | _ -> ());
  let ranks = Proc_grid.cores machine.pgrid in
  if ranks > max_ranks then
    raise
      (Rank_ceiling
         {
           ranks;
           max_ranks;
           estimated_events = estimated_events machine app ~iterations;
         });
  let pg = machine.pgrid in
  let engine = Engine.create () in
  let b =
    Backend.create ~balanced ?noise ?perturb ?recover ?trace ?obs ?metrics
      engine machine app
  in
  let cfg = Wrun.Program.of_app ~iterations pg app in
  let cores = Proc_grid.cores pg in
  for rank = 0 to cores - 1 do
    (* A spec-killed rank ends its fiber quietly: its remaining sends never
       happen, so downstream ranks stay suspended and are abandoned when
       the event queue drains — exactly a crashed node as its neighbours
       see it. *)
    Engine.spawn engine (fun () ->
        try Wrun.Program.run_rank (module Backend.Substrate) b cfg rank
        with Perturb.Model.Killed { rank; _ } -> b.failed_flags.(rank) <- true)
  done;
  let elapsed = Engine.run engine in
  (* Cross-rank distributions of where time went, plus run totals, for the
     profiling report. *)
  (match metrics with
  | None -> ()
  | Some m ->
      let h name arr =
        let hist = Obs.Metrics.histogram m name in
        Array.iter (Obs.Metrics.observe hist) arr
      in
      h "sim.rank.compute" b.compute;
      h "sim.rank.comm" b.comm;
      h "sim.rank.wait" b.waits;
      Obs.Metrics.set (Obs.Metrics.gauge m "sim.elapsed") elapsed;
      Obs.Metrics.inc ~by:(Engine.events_executed engine)
        (Obs.Metrics.counter m "sim.events");
      Obs.Metrics.inc ~by:(Mpi_sim.sends b.mpi)
        (Obs.Metrics.counter m "sim.sends"));
  {
    elapsed;
    per_iteration = elapsed /. float_of_int iterations;
    iterations;
    completed = Array.for_all Fun.id b.done_flags;
    failed =
      Array.to_list
        (Array.mapi (fun r f -> if f then Some r else None) b.failed_flags)
      |> List.filter_map Fun.id;
    recovered =
      (match b.recover with
      | None -> []
      | Some rc ->
          Array.to_list
            (Array.mapi (fun r f -> if f then Some r else None) rc.revived)
          |> List.filter_map Fun.id);
    checkpoints = (match b.recover with None -> 0 | Some rc -> rc.ckpts);
    events = Engine.events_executed engine;
    sends = Mpi_sim.sends b.mpi;
    stats =
      Array.init cores (fun r ->
          { compute = b.compute.(r); comm = b.comm.(r); wait = b.waits.(r);
            finish = b.finish.(r) });
  }

let pp_outcome ppf o =
  Fmt.pf ppf "elapsed %a (%d iteration(s), %s), %d events, %d sends"
    Units.pp_time o.elapsed o.iterations
    (match (o.completed, o.failed) with
    | true, _ ->
        if o.recovered = [] then "completed"
        else
          Fmt.str "completed, rank(s) %s recovered"
            (String.concat ", " (List.map string_of_int o.recovered))
    | false, [] -> "DEADLOCKED"
    | false, failed ->
        Fmt.str "DEGRADED: rank(s) %s killed"
          (String.concat ", " (List.map string_of_int failed)))
    o.events o.sends
