(** A real discrete-ordinates-style transport kernel: the per-cell,
    per-angle upwind computation performed along each wavefront sweep, used
    to measure the model's Wg input on this machine, as the computation of
    the distributed {!Sweep_exec}, and as the sequential reference the
    distributed result is checked against. *)

type config = {
  angles : int;
  sigma : float;
  source : float;
  boundary : float;
}

val default : config
(** 6 angles, the Sweep3D default. *)

val v :
  ?sigma:float -> ?source:float -> ?boundary:float -> angles:int -> unit ->
  config

val mu : config -> int -> float
val eta : config -> int -> float
val xi : config -> int -> float
val weight : config -> int -> float
val order : len:int -> dir:int -> int -> int

type sweep_state
(** In-progress octant sweep over a local block: per-angle coefficients,
    the z-face carried from tile to tile, and the plane cursor. *)

val sweep_start :
  config ->
  nx:int ->
  ny:int ->
  nz:int ->
  dir:int * int * int ->
  phi:float array ->
  sweep_state
(** Begin a sweep over a local [nx*ny*nz] block, accumulating weighted
    scalar flux into [phi] (cell [(x,y,z)] at [(z*ny + y)*nx + x]). *)

val sweep_tile :
  sweep_state -> h:int -> xface:float array -> yface:float array ->
  float array * float array
(** Compute the next [h] z-planes from the tile's upstream faces (x-face
    layout [(a*ny + y)*h + zz], length [angles*ny*h]; y-face
    [(a*nx + x)*h + zz]); returns the outgoing [(out_x, out_y)] downstream
    faces in the same layouts. Planes are visited in processing order (a
    [dz < 0] sweep starts at the top plane). The substrate-agnostic
    program core drives this as the compute step of the paper's Figure 4. *)

val sweep :
  config ->
  nx:int ->
  ny:int ->
  nz:int ->
  dir:int * int * int ->
  htile:int ->
  recv_x:(tile:int -> h:int -> float array) ->
  recv_y:(tile:int -> h:int -> float array) ->
  send_x:(tile:int -> float array -> unit) ->
  send_y:(tile:int -> float array -> unit) ->
  phi:float array ->
  unit
(** The whole sweep as a tile loop over {!sweep_start}/{!sweep_tile}:
    tiles are [htile] z-planes (short last tile); [recv_x]/[recv_y] supply
    the upstream faces of each tile and [send_x]/[send_y] emit the
    downstream ones — the communication pattern of the paper's Figure 4 in
    one call. *)

type sweep_mark
(** The tile-to-tile state of a sweep (carried z-face and plane cursor),
    captured at a tile boundary — everything a checkpoint needs beyond
    [phi] to resume the sweep mid-stack. *)

val sweep_capture : sweep_state -> sweep_mark
(** Snapshot the sweep's carried state (the z-face is copied). *)

val sweep_restore : sweep_state -> sweep_mark -> unit
(** Rewind the sweep to a captured mark. Raises [Invalid_argument] if
    the mark comes from a sweep of a different shape. *)

val mark_zbuf : sweep_mark -> float array
val mark_pos : sweep_mark -> int

val mark_of : zbuf:float array -> pos:int -> sweep_mark
(** Rebuild a mark from serialized checkpoint fields (the z-face is
    copied). *)

val boundary_x : config -> ny:int -> h:int -> float array
val boundary_y : config -> nx:int -> h:int -> float array

val sweep_sequential :
  config ->
  nx:int ->
  ny:int ->
  nz:int ->
  dir:int * int * int ->
  htile:int ->
  phi:float array ->
  unit
(** The same sweep over a whole (undecomposed) grid with boundary upstream
    faces: the reference for testing the distributed execution. *)
