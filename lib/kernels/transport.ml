(* A real discrete-ordinates-style transport kernel: the per-cell
   computation that Sweep3D and Chimaera perform along each sweep. For each
   of [angles] discrete directions, the cell's angular flux is computed from
   the upwind fluxes entering through its three upstream faces, and the
   outgoing fluxes become the upwind values of the three downstream
   neighbours — the data dependence that forces the wavefront order.

   The kernel is used three ways: to measure Wg (the paper's measured model
   input) on this machine, as the computation of the real distributed sweep
   in Sweep_exec, and as the sequential reference that the distributed
   result is checked against (they must agree bitwise, since each cell sees
   identical inputs in an identical operation order). *)

type config = {
  angles : int;
  sigma : float;  (** total cross-section *)
  source : float;  (** uniform external source *)
  boundary : float;  (** incoming boundary flux *)
}

let default = { angles = 6; sigma = 0.5; source = 1.0; boundary = 0.1 }

let v ?(sigma = default.sigma) ?(source = default.source)
    ?(boundary = default.boundary) ~angles () =
  if angles < 1 then invalid_arg "Transport.v: angles must be >= 1";
  { angles; sigma; source; boundary }

(* Deterministic per-angle direction cosines and quadrature weights. *)
let mu c a = 0.30 +. (0.35 *. float_of_int a /. float_of_int c.angles)
let eta c a = 0.25 +. (0.30 *. float_of_int (a + 1) /. float_of_int c.angles)
let xi c a = 0.20 +. (0.25 *. float_of_int (a + 2) /. float_of_int c.angles)
let weight c _a = 1.0 /. float_of_int c.angles

(* Iteration order along one dimension: cells visited upstream-to-downstream. *)
let order ~len ~dir k = if dir > 0 then k else len - 1 - k

(* State of one octant sweep over a local [nx * ny * nz] block: the
   precomputed per-angle coefficients, the incoming z-face carried from
   tile to tile down the stack, the per-plane scratch buffers, and a cursor
   of how many planes have been processed. The weighted scalar flux
   accumulates into [phi] (length nx*ny*nz, cell (x,y,z) at
   [(z*ny + y)*nx + x]). *)
type sweep_state = {
  sc : config;
  s_nx : int;
  s_ny : int;
  s_nz : int;
  s_dx : int;
  s_dy : int;
  s_dz : int;
  denom : float array;
  mus : float array;
  etas : float array;
  xis : float array;
  ws : float array;
  zbuf : float array;  (* incoming z-face, persists across tiles *)
  ybuf : float array;
  xrow : float array;
  s_phi : float array;
  mutable pos : int;  (* planes processed so far *)
}

let sweep_start c ~nx ~ny ~nz ~dir:(dx, dy, dz) ~phi =
  if Array.length phi <> nx * ny * nz then
    invalid_arg "Transport.sweep_start: phi has the wrong size";
  let a_n = c.angles in
  {
    sc = c;
    s_nx = nx;
    s_ny = ny;
    s_nz = nz;
    s_dx = dx;
    s_dy = dy;
    s_dz = dz;
    denom =
      Array.init a_n (fun a -> 1.0 +. c.sigma +. mu c a +. eta c a +. xi c a);
    mus = Array.init a_n (mu c);
    etas = Array.init a_n (eta c);
    xis = Array.init a_n (xi c);
    ws = Array.init a_n (weight c);
    (* Incoming z-face at the sweep's entry plane. *)
    zbuf = Array.make (a_n * nx * ny) c.boundary;
    ybuf = Array.make (a_n * nx) 0.0;
    xrow = Array.make a_n 0.0;
    s_phi = phi;
    pos = 0;
  }

(* Compute the next [h] z-planes of the sweep from the tile's two upstream
   faces (x-face layout [(a*ny + y)*h + zz], length angles*ny*h; y-face
   [(a*nx + x)*h + zz]); returns the outgoing downstream faces in the same
   layouts. Planes are visited in processing order; a descending sweep
   (dz < 0) starts at the top plane. *)
let sweep_tile st ~h ~xface ~yface =
  let c = st.sc in
  let nx = st.s_nx and ny = st.s_ny and nz = st.s_nz in
  let a_n = c.angles in
  if h < 1 || st.pos + h > nz then
    invalid_arg "Transport.sweep_tile: bad tile height";
  if Array.length xface <> a_n * ny * h then
    invalid_arg "Transport.sweep_tile: bad x-face size";
  if Array.length yface <> a_n * nx * h then
    invalid_arg "Transport.sweep_tile: bad y-face size";
  let { zbuf; ybuf; xrow; denom; mus; etas; xis; ws; s_phi = phi; _ } = st in
  let pos0 = st.pos in
  let out_x = Array.make (a_n * ny * h) 0.0 in
  let out_y = Array.make (a_n * nx * h) 0.0 in
  for zz = 0 to h - 1 do
    let pos = pos0 + zz in
    let z = if st.s_dz > 0 then pos else nz - 1 - pos in
    (* Initialize the per-plane y buffer from the tile's y-face. *)
    for a = 0 to a_n - 1 do
      for x = 0 to nx - 1 do
        ybuf.((a * nx) + x) <- yface.((((a * nx) + x) * h) + zz)
      done
    done;
    for yy = 0 to ny - 1 do
      let y = order ~len:ny ~dir:st.s_dy yy in
      for a = 0 to a_n - 1 do
        xrow.(a) <- xface.((((a * ny) + y) * h) + zz)
      done;
      for xx = 0 to nx - 1 do
        let x = order ~len:nx ~dir:st.s_dx xx in
        let cell = ((z * ny) + y) * nx + x in
        let acc = ref 0.0 in
        for a = 0 to a_n - 1 do
          let zidx = (((a * nx) + x) * ny) + y in
          let psi =
            (c.source +. (mus.(a) *. xrow.(a))
            +. (etas.(a) *. ybuf.((a * nx) + x))
            +. (xis.(a) *. zbuf.(zidx)))
            /. denom.(a)
          in
          xrow.(a) <- psi;
          ybuf.((a * nx) + x) <- psi;
          zbuf.(zidx) <- psi;
          acc := !acc +. (ws.(a) *. psi)
        done;
        phi.(cell) <- phi.(cell) +. !acc
      done;
      (* xrow now holds the outgoing x fluxes of row y, plane zz. *)
      for a = 0 to a_n - 1 do
        out_x.((((a * ny) + y) * h) + zz) <- xrow.(a)
      done
    done;
    for a = 0 to a_n - 1 do
      for x = 0 to nx - 1 do
        out_y.((((a * nx) + x) * h) + zz) <- ybuf.((a * nx) + x)
      done
    done
  done;
  st.pos <- pos0 + h;
  (out_x, out_y)

(* The whole sweep as a tile loop over [sweep_start]/[sweep_tile] — the
   communication pattern of Figure 4, with the caller supplying the
   incoming upstream faces of each tile and consuming the outgoing ones.
   The distributed execution drives [sweep_tile] from the shared program
   core (Wrun.Program) instead; this driver remains for the sequential
   reference and callers that want the loop in one call. *)
let sweep c ~nx ~ny ~nz ~dir ~htile ~recv_x ~recv_y ~send_x ~send_y ~phi =
  if htile < 1 then invalid_arg "Transport.sweep: htile must be >= 1";
  if Array.length phi <> nx * ny * nz then
    invalid_arg "Transport.sweep: phi has the wrong size";
  let st = sweep_start c ~nx ~ny ~nz ~dir ~phi in
  let ntiles = (nz + htile - 1) / htile in
  for tile = 0 to ntiles - 1 do
    let h = min htile (nz - (tile * htile)) in
    let xface = recv_x ~tile ~h in
    let yface = recv_y ~tile ~h in
    let out_x, out_y = sweep_tile st ~h ~xface ~yface in
    send_x ~tile out_x;
    send_y ~tile out_y
  done

(* Checkpoint support: the only sweep state that travels tile to tile is
   the incoming z-face and the plane cursor ([ybuf]/[xrow] are per-plane
   scratch, dead between tiles), so capturing and restoring those around a
   rollback makes [sweep_tile] resumable at any tile boundary. *)
type sweep_mark = { m_zbuf : float array; m_pos : int }

let sweep_capture st = { m_zbuf = Array.copy st.zbuf; m_pos = st.pos }

let sweep_restore st m =
  if Array.length m.m_zbuf <> Array.length st.zbuf then
    invalid_arg "Transport.sweep_restore: mark from a different sweep shape";
  Array.blit m.m_zbuf 0 st.zbuf 0 (Array.length st.zbuf);
  st.pos <- m.m_pos

let mark_zbuf m = m.m_zbuf
let mark_pos m = m.m_pos

let mark_of ~zbuf ~pos = { m_zbuf = Array.copy zbuf; m_pos = pos }

(* Boundary faces for sweeps entering at the domain edge. *)
let boundary_x c ~ny ~h = Array.make (c.angles * ny * h) c.boundary
let boundary_y c ~nx ~h = Array.make (c.angles * nx * h) c.boundary

(* A full sequential sweep over a global grid: upstream faces are boundary,
   outgoing faces are discarded. The reference implementation for the
   distributed execution. *)
let sweep_sequential c ~nx ~ny ~nz ~dir ~htile ~phi =
  sweep c ~nx ~ny ~nz ~dir ~htile
    ~recv_x:(fun ~tile:_ ~h -> boundary_x c ~ny ~h)
    ~recv_y:(fun ~tile:_ ~h -> boundary_y c ~nx ~h)
    ~send_x:(fun ~tile:_ _ -> ())
    ~send_y:(fun ~tile:_ _ -> ())
    ~phi
