(* Real distributed wavefront sweeps: the transport kernel running over a
   2-D decomposition on the shared-memory message-passing runtime. The
   per-tile receive/compute/send loop itself is the one substrate-agnostic
   program of Wrun.Program (paper Figure 4); this module is the substrate
   that makes its payloads real — boundary faces computed by
   Transport.sweep_tile, carried between domains by Shmpi.Comm. The
   distributed result must equal the sequential reference bitwise — each
   cell sees the same inputs in the same operation order — which the test
   suite checks. *)

open Wgrid
open Wavefront_core

type plan = {
  grid : Data_grid.t;
  pg : Proc_grid.t;
  config : Transport.config;
  htile : int;
  schedule : Sweeps.Schedule.t;
  nonwavefront : App_params.nonwavefront;
  iterations : int;
  perturb : Perturb.Spec.t option;
}

(* The default non-wavefront section is the end-of-iteration reduction the
   transport benchmarks perform: one all-reduce of each rank's scalar-flux
   sum. *)
let plan ?(config = Transport.default) ?(htile = 1) ?(iterations = 1)
    ?(schedule = Sweeps.Schedule.sweep3d)
    ?(nonwavefront = App_params.Allreduce { count = 1; msg_size = 8 }) ?perturb
    grid pg =
  if htile < 1 then invalid_arg "Sweep_exec.plan: htile must be >= 1";
  if iterations < 1 then invalid_arg "Sweep_exec.plan: iterations must be >= 1";
  { grid; pg; config; htile; schedule; nonwavefront; iterations; perturb }

(* Block extents and offsets of processor (i, j) (1-based). *)
let block_x plan i =
  Decomp.block_of ~cells:plan.grid.nx ~parts:plan.pg.cols ~index:(i - 1)

let block_y plan j =
  Decomp.block_of ~cells:plan.grid.ny ~parts:plan.pg.rows ~index:(j - 1)

let offset_x plan i =
  Decomp.offset_of ~cells:plan.grid.nx ~parts:plan.pg.cols ~index:(i - 1)

let offset_y plan j =
  Decomp.offset_of ~cells:plan.grid.ny ~parts:plan.pg.rows ~index:(j - 1)

let flow = Wrun.Program.flow

(* The program configuration handed to the shared core: kernel tiling (h =
   min htile (nz - t*htile)) and the honest byte sizes of the faces the
   backend actually ships (8-byte floats, angles values per boundary
   cell). *)
let program_config plan =
  let angles = plan.config.Transport.angles in
  let face extent =
    Decomp.message_size
      ~bytes_per_cell:(8.0 *. float_of_int angles)
      ~htile:(float_of_int plan.htile) ~extent
  in
  Wrun.Program.v ~iterations:plan.iterations
    ~tiling:(Wrun.Program.tiling_int ~nz:plan.grid.nz ~htile:plan.htile)
    ~pg:plan.pg ~grid:plan.grid ~schedule:plan.schedule
    ~nonwavefront:plan.nonwavefront
    ~msg_ew:(face (Decomp.cells_y plan.grid plan.pg))
    ~msg_ns:(face (Decomp.cells_x plan.grid plan.pg))
    ~htile:(float_of_int plan.htile) ()

(* Genuine elapsed work for the model-time non-wavefront costs (Fixed,
   Stencil compute): this substrate is the real machine, so a cost in
   microseconds is spent, not accounted. *)
let busy_wait us =
  if us > 0.0 then begin
    let stop = Unix.gettimeofday () +. (us *. 1e-6) in
    while Unix.gettimeofday () < stop do
      ()
    done
  end

module Backend = struct
  (* This rank's view of the recovery protocol. [version] numbers its
     snapshots; [pending] is a restored tile-to-tile sweep mark the next
     [sweep_begin] must re-apply (the resumed sweep's carried z-face);
     [wave]/[last_wave] track the current and last-checkpointed global
     wave, so the retry loop can report the rollback depth. *)
  type recovering = {
    policy : Perturb.Recover.policy;
    store : Wrun.Checkpoint.store;
    mutable version : int;
    mutable pending : Transport.sweep_mark option;
    mutable wave : int;
    mutable last_wave : int;
  }

  type t = {
    plan : plan;
    comm : Shmpi.Comm.t;
    nx : int;  (* local block extents of this rank *)
    ny : int;
    phi : float array;
    mutable st : Transport.sweep_state option;
    (* Full-height receive buffers, reused every tile; a short last tile
       falls back to the channel's own buffer (Channel.recv_into). *)
    buf_x : float array;
    buf_y : float array;
    (* Perturbation state: one model shared by all ranks (each rank only
       touches its own streams), this rank's tracer for tagging injected
       delay, and a shared tiles-completed counter array for the frontier
       a degraded run reports. *)
    model : Perturb.Model.t option;
    tracer : Obs.Tracer.t option;
    progress : int array option;
    recover : recovering option;
    (* Wave tagging for the timeline: the tile loop's compute spans carry
       [wave = sweep * ntiles + tile]; the untagged Comm spans around them
       are assigned by Obs.Timeline's anchor heuristic. *)
    ntiles : int;
    mutable sweep : int;
  }

  let create ?model ?tracer ?progress ?recover plan comm rank =
    let i, j = Proc_grid.coords plan.pg rank in
    let nx = block_x plan i and ny = block_y plan j in
    let a_n = plan.config.Transport.angles in
    {
      plan;
      comm;
      nx;
      ny;
      phi = Array.make (nx * ny * plan.grid.nz) 0.0;
      st = None;
      buf_x = Array.make (a_n * ny * plan.htile) 0.0;
      buf_y = Array.make (a_n * nx * plan.htile) 0.0;
      model;
      tracer;
      progress;
      recover =
        Option.map
          (fun (policy, store) ->
            {
              policy;
              store;
              version = 0;
              pending = None;
              wave = 0;
              last_wave = 0;
            })
          recover;
      ntiles = (plan.grid.nz + plan.htile - 1) / plan.htile;
      sweep = 0;
    }

  let phi t = t.phi

  (* Spend an injected delay for real — a perturbed rank is genuinely
     occupied, like [fixed_work] — and tag it so critical-path reports can
     tell absorbed delay from propagated. *)
  let inject t ~rank ~name us =
    if us > 0.0 then
      match t.tracer with
      | None -> busy_wait us
      | Some tr ->
          Obs.Tracer.span tr ~cat:"perturb" ~rank name (fun () ->
              busy_wait us)

  module Substrate = struct
    type nonrec t = t
    type payload = float array

    let boundary t ~rank:_ ~axis ~h =
      match axis with
      | Wrun.Substrate.X -> Transport.boundary_x t.plan.config ~ny:t.ny ~h
      | Y -> Transport.boundary_y t.plan.config ~nx:t.nx ~h

    let recv t ~rank ~src ~axis ~tile:_ ~h:_ ~bytes:_ =
      let buf =
        match axis with Wrun.Substrate.X -> t.buf_x | Y -> t.buf_y
      in
      Shmpi.Comm.recv_into t.comm ~dst:rank ~src buf

    let send t ~rank ~dst ~axis:_ ~tile:_ face =
      (match t.model with
      | None -> ()
      | Some m ->
          inject t ~rank ~name:"perturb.link"
            (Perturb.Model.link_extra m ~src:rank));
      Shmpi.Comm.send t.comm ~src:rank ~dst face

    let sweep_begin t ~rank:_ ~sweep ~dir =
      t.sweep <- sweep;
      let st =
        Transport.sweep_start t.plan.config ~nx:t.nx ~ny:t.ny
          ~nz:t.plan.grid.nz ~dir ~phi:t.phi
      in
      t.st <- Some st;
      (* A rank resuming from a checkpoint re-enters mid-sweep: the fresh
         sweep state starts from the inflow boundary, so re-apply the
         snapshot's carried z-face before any tile runs. Only the first
         sweep_begin after a restore has a pending mark. *)
      match t.recover with
      | Some ({ pending = Some mark; _ } as rc) ->
          Transport.sweep_restore st mark;
          rc.pending <- None
      | _ -> ()

    (* The checkpoint anchor. When the policy says wave [wave] is due,
       snapshot everything the tile loop carries — accumulated phi, the
       sweep's tile-to-tile state (z-face + plane cursor), and the channel
       marks — then release the senders' logs the snapshot covers. *)
    let tile_begin t ~rank ~pos ~wave =
      match t.recover with
      | None -> ()
      | Some rc ->
          rc.wave <- wave;
          if Perturb.Recover.due ~interval:rc.policy.interval ~wave then begin
            let save () =
              let mark =
                match t.st with
                | Some st -> Transport.sweep_capture st
                | None -> assert false (* sweep_begin precedes tile_begin *)
              in
              let m = Shmpi.Supervisor.marks t.comm ~rank in
              rc.version <- rc.version + 1;
              rc.last_wave <- wave;
              Wrun.Checkpoint.save rc.store
                {
                  rank;
                  version = rc.version;
                  wave;
                  position = pos;
                  phi = Array.copy t.phi;
                  zbuf = Transport.mark_zbuf mark;
                  zpos = Transport.mark_pos mark;
                  sent = m.Shmpi.Supervisor.sent;
                  recvd = m.Shmpi.Supervisor.recvd;
                };
              Shmpi.Supervisor.release t.comm ~rank m
            in
            match t.tracer with
            | None -> save ()
            | Some tr ->
                Obs.Tracer.span tr ~cat:"recover"
                  ~args:[ (Obs.Timeline.wave_arg, Obs.Span.Int wave) ]
                  ~rank "recover.checkpoint" save
          end

    let precompute _ ~rank:_ ~tile:_ = ()

    (* The kernel call itself, as a wave-tagged compute span (injected
       perturbation delays stay outside it, under their own names). *)
    let tile_kernel t ~rank ~tile st ~h ~x ~y =
      match t.tracer with
      | None -> Transport.sweep_tile st ~h ~xface:x ~yface:y
      | Some tr ->
          Obs.Tracer.span tr ~cat:"compute"
            ~args:
              [
                ( Obs.Timeline.wave_arg,
                  Obs.Span.Int ((t.sweep * t.ntiles) + tile) );
              ]
            ~rank "compute"
            (fun () -> Transport.sweep_tile st ~h ~xface:x ~yface:y)

    let compute t ~rank ~dir:_ ~tile ~h ~x ~y =
      (match t.model with
      | Some m when Perturb.Model.fails_now m ~rank ->
          raise (Perturb.Model.Killed { rank; tile })
      | _ -> ());
      let faces =
        match (t.st, t.model) with
        | None, _ -> assert false (* sweep_begin precedes every tile *)
        | Some st, None -> tile_kernel t ~rank ~tile st ~h ~x ~y
        | Some st, Some m ->
            (* Noise scales with the tile's measured duration — the real
               analogue of the simulator scaling the model's tile work.
               The draws line up one per tile either way. *)
            let t0 = Unix.gettimeofday () in
            let faces = tile_kernel t ~rank ~tile st ~h ~x ~y in
            let dt = (Unix.gettimeofday () -. t0) *. 1e6 in
            inject t ~rank ~name:"perturb.noise"
              (Perturb.Model.noise_extra m ~rank ~work:dt);
            inject t ~rank ~name:"perturb.straggler"
              (Perturb.Model.straggler_delay m ~rank);
            inject t ~rank ~name:"perturb.pulse"
              (Perturb.Model.pulse_extra m ~rank);
            inject t ~rank ~name:"perturb.periodic"
              (Perturb.Model.periodic_extra m ~rank);
            faces
      in
      (match t.progress with
      | Some p -> p.(rank) <- p.(rank) + 1
      | None -> ());
      faces

    let fixed_work _ ~rank:_ us = busy_wait us

    let stencil_compute t ~rank:_ ~wg_stencil =
      busy_wait
        (wg_stencil
        *. Decomp.cells_x t.plan.grid t.plan.pg
        *. Decomp.cells_y t.plan.grid t.plan.pg
        *. float_of_int t.plan.grid.nz)

    (* One direction of a halo round: the faces carry no physics here, so
       ship a zero payload of the model's byte size and discard the
       incoming one. *)
    let halo t ~rank ~dst ~src ~bytes =
      (match dst with
      | Some d ->
          Shmpi.Comm.send t.comm ~src:rank ~dst:d
            (Array.make (max 1 ((bytes + 7) / 8)) 0.0)
      | None -> ());
      match src with
      | Some s -> ignore (Shmpi.Comm.recv t.comm ~dst:rank ~src:s)
      | None -> ()

    (* A genuine global reduction of the rank's scalar-flux sum (the
       payload real runtimes reduce between iterations); [msg_size] is the
       model's input, not this substrate's. *)
    let allreduce t ~rank ~count ~msg_size:_ =
      (* Collective noise: a real stall before the rank enters the
         reduction — one draw per allreduce substrate call, as the
         simulator and the timed dataflow backend consume it. *)
      (match t.model with
      | None -> ()
      | Some m ->
          inject t ~rank ~name:"perturb.collnoise"
            (Perturb.Model.coll_extra m ~rank));
      for _ = 1 to count do
        ignore
          (Shmpi.Comm.allreduce t.comm ~rank ~op:( +. )
             (Array.fold_left ( +. ) 0.0 t.phi))
      done

    let barrier t ~rank = Shmpi.Comm.barrier_r t.comm ~rank
    let finish _ ~rank:_ = ()
  end
end

(* The program of one rank: the shared Figure-4 core over this substrate. *)
let rank_program ?model ?obs ?progress plan =
  let cfg = program_config plan in
  fun comm rank ->
    let tracer = Option.map (fun trs -> trs.(rank)) obs in
    let b = Backend.create ?model ?tracer ?progress plan comm rank in
    Wrun.Program.run_rank (module Backend.Substrate) b cfg rank;
    b.Backend.phi

type outcome = {
  blocks : float array array;  (** per-rank phi blocks *)
  wall_time : float;  (** us *)
}

let model_of plan ~ranks =
  Option.map (Perturb.Model.create ~ranks) plan.perturb

let run ?obs ?timeout_us plan =
  let ranks = Proc_grid.cores plan.pg in
  let r =
    Shmpi.Runtime.run ?obs ?timeout_us ~ranks
      (rank_program ?model:(model_of plan ~ranks) ?obs plan)
  in
  { blocks = r.values; wall_time = r.wall_time }

type resilient_outcome =
  | Completed of outcome
  | Degraded of {
      failed : int list;
      reason : exn;
      frontier : int array;
      wall_time : float;
    }

let run_resilient ?obs ?(timeout_us = 1e6) plan =
  let ranks = Proc_grid.cores plan.pg in
  let progress = Array.make ranks 0 in
  let start = Shmpi.Runtime.now_us () in
  match
    Shmpi.Runtime.run ?obs ~timeout_us ~ranks
      (rank_program ?model:(model_of plan ~ranks) ?obs ~progress plan)
  with
  | r -> Completed { blocks = r.values; wall_time = r.wall_time }
  | exception Shmpi.Runtime.Rank_failure { failed; exn; _ } ->
      Degraded
        {
          failed;
          reason = exn;
          frontier = progress;
          wall_time = Shmpi.Runtime.now_us () -. start;
        }

type recovery_stats = {
  restarts : int;
  checkpoints : int;
  replayed_waves : int;
}

type recoverable_outcome =
  | Recovered of outcome * recovery_stats
  | Unrecovered of {
      failed : int list;
      reason : exn;
      frontier : int array;
      wall_time : float;
    }

(* Restarts per rank are capped so a model that keeps killing a rank (or a
   bug in the rollback) surfaces as Unrecovered rather than looping. One
   restart per originally-failing rank suffices in practice: [revive]
   lifts the fail-stop sentence on respawn. *)
let max_restarts = 4

(* One rank's program under supervision: run the shared core; on a
   fail-stop, revive the rank, rewind its channels to its last
   checkpoint's marks (redelivering consumed-but-uncovered messages from
   the senders' logs), restore its snapshot, and resume from the
   snapshot's position. Only this rank rolls back — see Shmpi.Supervisor.
   [restarts]/[replayed] are shared per-rank counters, each slot written
   only by its owner. *)
let recoverable_rank_program ?model ?obs ?progress ~policy ~store ~restarts
    ~replayed plan =
  let cfg = program_config plan in
  fun comm rank ->
    let tracer = Option.map (fun trs -> trs.(rank)) obs in
    let b =
      Backend.create ?model ?tracer ?progress ~recover:(policy, store) plan
        comm rank
    in
    let rc =
      match b.Backend.recover with Some rc -> rc | None -> assert false
    in
    let rec attempt from =
      match
        Wrun.Program.run_rank ?from (module Backend.Substrate) b cfg rank
      with
      | () -> b.Backend.phi
      | exception Perturb.Model.Killed _ when restarts.(rank) < max_restarts
        ->
          restarts.(rank) <- restarts.(rank) + 1;
          (match model with
          | Some m -> Perturb.Model.revive m ~rank
          | None -> ());
          let restore () =
            match Wrun.Checkpoint.latest store ~rank with
            | Some (snap : Wrun.Checkpoint.snapshot) ->
                Array.blit snap.phi 0 b.Backend.phi 0
                  (Array.length b.Backend.phi);
                rc.Backend.pending <-
                  Some (Transport.mark_of ~zbuf:snap.zbuf ~pos:snap.zpos);
                Shmpi.Supervisor.rollback comm ~rank
                  { Shmpi.Supervisor.sent = snap.sent; recvd = snap.recvd };
                replayed.(rank) <-
                  replayed.(rank) + (rc.Backend.wave - snap.wave);
                Some snap.position
            | None ->
                (* Died before its first checkpoint: respawn from scratch.
                   This rank never released anything, so the full logs
                   replay from message zero. *)
                Array.fill b.Backend.phi 0 (Array.length b.Backend.phi) 0.0;
                rc.Backend.pending <- None;
                Shmpi.Supervisor.rollback comm ~rank
                  {
                    Shmpi.Supervisor.sent =
                      Array.make (Shmpi.Comm.ranks comm) 0;
                    recvd = Array.make (Shmpi.Comm.ranks comm) 0;
                  };
                replayed.(rank) <- replayed.(rank) + rc.Backend.wave;
                None
          in
          let from =
            match tracer with
            | None -> restore ()
            | Some tr ->
                Obs.Tracer.span tr ~cat:"recover" ~rank "recover.restart"
                  restore
          in
          attempt from
    in
    attempt None

let run_recoverable ?obs ?(timeout_us = 1e6) ?store ~policy plan =
  if not (Perturb.Recover.enabled policy) then
    (* A disabled policy is bitwise invisible: the plain resilient path,
       no message logging, no hooks armed. *)
    match run_resilient ?obs ~timeout_us plan with
    | Completed o ->
        Recovered (o, { restarts = 0; checkpoints = 0; replayed_waves = 0 })
    | Degraded { failed; reason; frontier; wall_time } ->
        Unrecovered { failed; reason; frontier; wall_time }
  else begin
    let ranks = Proc_grid.cores plan.pg in
    let store =
      match store with Some s -> s | None -> Wrun.Checkpoint.memory_store ()
    in
    let progress = Array.make ranks 0 in
    let restarts = Array.make ranks 0 in
    let replayed = Array.make ranks 0 in
    let start = Shmpi.Runtime.now_us () in
    match
      Shmpi.Runtime.run ?obs ~log:true ~timeout_us ~ranks
        (recoverable_rank_program
           ?model:(model_of plan ~ranks)
           ?obs ~progress ~policy ~store ~restarts ~replayed plan)
    with
    | r ->
        Recovered
          ( { blocks = r.values; wall_time = r.wall_time },
            {
              restarts = Array.fold_left ( + ) 0 restarts;
              checkpoints = Wrun.Checkpoint.saves store;
              replayed_waves = Array.fold_left ( + ) 0 replayed;
            } )
    | exception Shmpi.Runtime.Rank_failure { failed; exn; _ } ->
        Unrecovered
          {
            failed;
            reason = exn;
            frontier = progress;
            wall_time = Shmpi.Runtime.now_us () -. start;
          }
  end

(* Assemble per-rank blocks into a global grid for comparison. *)
let gather plan blocks =
  let { Data_grid.nx; ny; nz } = plan.grid in
  let global = Array.make (nx * ny * nz) 0.0 in
  Array.iteri
    (fun rank block ->
      let i, j = Proc_grid.coords plan.pg rank in
      let bx = block_x plan i and by = block_y plan j in
      let ox = offset_x plan i and oy = offset_y plan j in
      for z = 0 to nz - 1 do
        for y = 0 to by - 1 do
          for x = 0 to bx - 1 do
            global.(((z * ny) + (oy + y)) * nx + (ox + x)) <-
              block.(((z * by) + y) * bx + x)
          done
        done
      done)
    blocks;
  global

let run_sequential plan =
  let { Data_grid.nx; ny; nz } = plan.grid in
  let phi = Array.make (nx * ny * nz) 0.0 in
  for _iter = 1 to plan.iterations do
    List.iter
      (fun sweep ->
        let dir = flow plan.pg sweep in
        Transport.sweep_sequential plan.config ~nx ~ny ~nz ~dir
          ~htile:plan.htile ~phi)
      (Sweeps.Schedule.sweeps plan.schedule)
  done;
  phi
