(* Real distributed wavefront sweeps: the transport kernel running over a
   2-D decomposition on the shared-memory message-passing runtime, with the
   blocking per-tile receive/compute/send loop of Figure 4. The distributed
   result must equal the sequential reference bitwise — each cell sees the
   same inputs in the same operation order — which the test suite checks. *)

open Wgrid

type plan = {
  grid : Data_grid.t;
  pg : Proc_grid.t;
  config : Transport.config;
  htile : int;
  schedule : Sweeps.Schedule.t;
  iterations : int;
}

let plan ?(config = Transport.default) ?(htile = 1) ?(iterations = 1)
    ?(schedule = Sweeps.Schedule.sweep3d) grid pg =
  if htile < 1 then invalid_arg "Sweep_exec.plan: htile must be >= 1";
  if iterations < 1 then invalid_arg "Sweep_exec.plan: iterations must be >= 1";
  { grid; pg; config; htile; schedule; iterations }

(* Block extents and offsets of processor (i, j) (1-based). *)
let block_x plan i =
  Decomp.block_of ~cells:plan.grid.nx ~parts:plan.pg.cols ~index:(i - 1)

let block_y plan j =
  Decomp.block_of ~cells:plan.grid.ny ~parts:plan.pg.rows ~index:(j - 1)

let offset ~cells ~parts ~index =
  let rec go acc k =
    if k >= index then acc
    else go (acc + Decomp.block_of ~cells ~parts ~index:k) (k + 1)
  in
  go 0 0

let offset_x plan i = offset ~cells:plan.grid.nx ~parts:plan.pg.cols ~index:(i - 1)
let offset_y plan j = offset ~cells:plan.grid.ny ~parts:plan.pg.rows ~index:(j - 1)

(* Downstream direction of a sweep, as in the simulator. *)
let flow pg (s : Sweeps.Schedule.sweep) =
  let ox, oy = Proc_grid.corner_coords pg s.origin in
  let dx = if ox = 1 then 1 else -1 in
  let dy = if oy = 1 then 1 else -1 in
  let dz = match s.zdir with `Up -> 1 | `Down -> -1 in
  (dx, dy, dz)

(* The program of one rank: every sweep of every iteration, with blocking
   receives from the upstream neighbours and sends to the downstream ones. *)
let rank_program plan comm rank =
  let pg = plan.pg in
  let i, j = Proc_grid.coords pg rank in
  let nx = block_x plan i and ny = block_y plan j in
  let nz = plan.grid.nz in
  let phi = Array.make (nx * ny * nz) 0.0 in
  for _iter = 1 to plan.iterations do
    List.iter
      (fun sweep ->
        let dx, dy, dz = flow pg sweep in
        let up_x = (i - dx, j) and down_x = (i + dx, j) in
        let up_y = (i, j - dy) and down_y = (i, j + dy) in
        let recv_x ~tile:_ ~h =
          if Proc_grid.contains pg up_x then
            Shmpi.Comm.recv comm ~dst:rank ~src:(Proc_grid.rank pg up_x)
          else Transport.boundary_x plan.config ~ny ~h
        in
        let recv_y ~tile:_ ~h =
          if Proc_grid.contains pg up_y then
            Shmpi.Comm.recv comm ~dst:rank ~src:(Proc_grid.rank pg up_y)
          else Transport.boundary_y plan.config ~nx ~h
        in
        let send_x ~tile:_ face =
          if Proc_grid.contains pg down_x then
            Shmpi.Comm.send comm ~src:rank ~dst:(Proc_grid.rank pg down_x) face
        in
        let send_y ~tile:_ face =
          if Proc_grid.contains pg down_y then
            Shmpi.Comm.send comm ~src:rank ~dst:(Proc_grid.rank pg down_y) face
        in
        Transport.sweep plan.config ~nx ~ny ~nz ~dir:(dx, dy, dz)
          ~htile:plan.htile ~recv_x ~recv_y ~send_x ~send_y ~phi)
      (Sweeps.Schedule.sweeps plan.schedule);
    (* The end-of-iteration reduction the transport benchmarks perform. *)
    ignore
      (Shmpi.Comm.allreduce comm ~rank ~op:( +. )
         (Array.fold_left ( +. ) 0.0 phi))
  done;
  phi

type outcome = {
  blocks : float array array;  (** per-rank phi blocks *)
  wall_time : float;  (** us *)
}

let run ?obs plan =
  let r =
    Shmpi.Runtime.run ?obs ~ranks:(Proc_grid.cores plan.pg)
      (rank_program plan)
  in
  { blocks = r.values; wall_time = r.wall_time }

(* Assemble per-rank blocks into a global grid for comparison. *)
let gather plan blocks =
  let { Data_grid.nx; ny; nz } = plan.grid in
  let global = Array.make (nx * ny * nz) 0.0 in
  Array.iteri
    (fun rank block ->
      let i, j = Proc_grid.coords plan.pg rank in
      let bx = block_x plan i and by = block_y plan j in
      let ox = offset_x plan i and oy = offset_y plan j in
      for z = 0 to nz - 1 do
        for y = 0 to by - 1 do
          for x = 0 to bx - 1 do
            global.(((z * ny) + (oy + y)) * nx + (ox + x)) <-
              block.(((z * by) + y) * bx + x)
          done
        done
      done)
    blocks;
  global

let run_sequential plan =
  let { Data_grid.nx; ny; nz } = plan.grid in
  let phi = Array.make (nx * ny * nz) 0.0 in
  for _iter = 1 to plan.iterations do
    List.iter
      (fun sweep ->
        let dir = flow plan.pg sweep in
        Transport.sweep_sequential plan.config ~nx ~ny ~nz ~dir
          ~htile:plan.htile ~phi)
      (Sweeps.Schedule.sweeps plan.schedule)
  done;
  phi
