(** Real distributed wavefront sweeps: the transport kernel over a 2-D
    decomposition on the shared-memory runtime. The blocking per-tile
    receive/compute/send loop is the shared {!Wrun.Program} core; this
    module is its real-payload substrate. *)

open Wgrid

type plan = {
  grid : Data_grid.t;
  pg : Proc_grid.t;
  config : Transport.config;
  htile : int;
  schedule : Sweeps.Schedule.t;
  nonwavefront : Wavefront_core.App_params.nonwavefront;
  iterations : int;
  perturb : Perturb.Spec.t option;
}

val plan :
  ?config:Transport.config ->
  ?htile:int ->
  ?iterations:int ->
  ?schedule:Sweeps.Schedule.t ->
  ?nonwavefront:Wavefront_core.App_params.nonwavefront ->
  ?perturb:Perturb.Spec.t ->
  Data_grid.t ->
  Proc_grid.t ->
  plan
(** Defaults: 6-angle transport, Htile 1, one iteration, the Sweep3D
    schedule, and [Allreduce {count = 1; msg_size = 8}] as the
    non-wavefront section (the end-of-iteration reduction the transport
    benchmarks perform).

    [perturb] injects the spec's delays into the real execution: noise and
    straggler time is genuinely spent (busy-waited) after each tile's
    compute, link injection before each wavefront send, and a spec'd
    failure raises {!Perturb.Model.Killed} at the rank's chosen tile. The
    injected delays never touch the payloads, so the gathered result stays
    bitwise-equal to {!run_sequential} whenever the run completes. *)

val block_x : plan -> int -> int
(** Local x extent of column [i] (1-based). *)

val block_y : plan -> int -> int
val flow : Proc_grid.t -> Sweeps.Schedule.sweep -> int * int * int

val program_config : plan -> Wrun.Program.config
(** The plan as the shared core's program: kernel tiling and the honest
    byte sizes of the faces this substrate ships. *)

(** The real-payload substrate: payloads are the boundary faces computed
    by {!Transport.sweep_tile}, carried between domains by {!Shmpi.Comm}
    (receives into reused buffers). Exposed for driving
    {!Wrun.Program.run_rank} directly. *)
module Backend : sig
  type t

  val create :
    ?model:Perturb.Model.t ->
    ?tracer:Obs.Tracer.t ->
    ?progress:int array ->
    ?recover:Perturb.Recover.policy * Wrun.Checkpoint.store ->
    plan ->
    Shmpi.Comm.t ->
    int ->
    t
  (** Per-rank state: the rank's scalar-flux block and its receive
      buffers. [model] is the (shared) instantiated perturbation spec;
      [tracer] tags injected delay as [perturb.*] spans; [progress] is a
      shared per-rank tiles-completed array (slot [rank] is only written
      by this rank). [recover] arms the checkpoint hook: at every wave the
      policy's interval selects, the substrate snapshots the rank's state
      (phi, the sweep's carried z-face, channel marks) into the store and
      releases the covered message logs — see {!run_recoverable}. *)

  val phi : t -> float array

  module Substrate :
    Wrun.Substrate.S with type t = t and type payload = float array
end

type outcome = { blocks : float array array; wall_time : float }

val run : ?obs:Obs.Tracer.t array -> ?timeout_us:float -> plan -> outcome
(** Execute on one domain per processor; returns each rank's scalar-flux
    block and the wall-clock time in us. [obs] (one tracer per rank)
    records per-rank spans for every send/receive/allreduce and a ["rank"]
    span per program — see {!Shmpi.Runtime.run}. [timeout_us] bounds every
    blocking wait ({!Shmpi.Comm.Timeout} instead of a hang). A plan whose
    spec kills a rank raises {!Shmpi.Runtime.Rank_failure}; use
    {!run_resilient} to degrade gracefully instead. *)

type resilient_outcome =
  | Completed of outcome
  | Degraded of {
      failed : int list;
          (** every rank that raised, ascending: spec-killed ranks plus
              peers that timed out starved of their messages *)
      reason : exn;  (** the lowest-numbered failing rank's exception *)
      frontier : int array;
          (** tiles completed per rank when the run stopped — how far the
              wavefront got *)
      wall_time : float;  (** us *)
    }

val run_resilient :
  ?obs:Obs.Tracer.t array -> ?timeout_us:float -> plan -> resilient_outcome
(** As {!run}, but a failing rank degrades instead of raising: every
    blocking wait carries a deadline ([timeout_us], default 1 s) so ranks
    starved by a dead neighbour time out rather than hang the join, and
    the outcome reports who failed and the partial wavefront frontier. *)

type recovery_stats = {
  restarts : int;  (** rank respawns performed *)
  checkpoints : int;  (** snapshots saved, all ranks *)
  replayed_waves : int;  (** waves re-executed after rollbacks *)
}

type recoverable_outcome =
  | Recovered of outcome * recovery_stats
      (** completed — possibly after rolling failed ranks back *)
  | Unrecovered of {
      failed : int list;
      reason : exn;
      frontier : int array;
      wall_time : float;
    }  (** a rank exhausted its restarts or failed outside the protocol *)

val run_recoverable :
  ?obs:Obs.Tracer.t array ->
  ?timeout_us:float ->
  ?store:Wrun.Checkpoint.store ->
  policy:Perturb.Recover.policy ->
  plan ->
  recoverable_outcome
(** As {!run_resilient}, but with checkpoint/rollback recovery: every
    [policy.interval] waves each rank snapshots its state into [store]
    (default an in-memory store; pass [Wrun.Checkpoint.file_store] to
    survive the process), and a spec-killed rank is revived in place —
    its channels rewound to the last checkpoint's marks, in-flight
    messages replayed from the senders' bounded logs, and the shared core
    resumed from the checkpoint's position. Only the failed rank rolls
    back (uncoordinated rollback with message logging; the wavefront DAG
    rules out any domino effect). A recovered run's gathered grid is
    bitwise-equal to the unfailed run's. A disabled policy
    ([interval = 0]) takes the plain {!run_resilient} path — no logging,
    no hooks, bitwise invisible. *)

val gather : plan -> float array array -> float array
(** Assemble per-rank blocks into a global [nx*ny*nz] grid. *)

val run_sequential : plan -> float array
(** The undecomposed reference computation; must equal
    [gather plan (run plan).blocks] bitwise. *)
