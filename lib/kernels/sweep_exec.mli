(** Real distributed wavefront sweeps: the transport kernel over a 2-D
    decomposition on the shared-memory runtime, following the blocking
    receive/compute/send tile loop of Figure 4. *)

open Wgrid

type plan = {
  grid : Data_grid.t;
  pg : Proc_grid.t;
  config : Transport.config;
  htile : int;
  schedule : Sweeps.Schedule.t;
  iterations : int;
}

val plan :
  ?config:Transport.config ->
  ?htile:int ->
  ?iterations:int ->
  ?schedule:Sweeps.Schedule.t ->
  Data_grid.t ->
  Proc_grid.t ->
  plan
(** Defaults: 6-angle transport, Htile 1, one iteration, the Sweep3D
    schedule. *)

val block_x : plan -> int -> int
(** Local x extent of column [i] (1-based). *)

val block_y : plan -> int -> int
val flow : Proc_grid.t -> Sweeps.Schedule.sweep -> int * int * int

type outcome = { blocks : float array array; wall_time : float }

val run : ?obs:Obs.Tracer.t array -> plan -> outcome
(** Execute on one domain per processor; returns each rank's scalar-flux
    block and the wall-clock time in us. [obs] (one tracer per rank)
    records per-rank spans for every send/receive/allreduce and a ["rank"]
    span per program — see {!Shmpi.Runtime.run}. *)

val gather : plan -> float array array -> float array
(** Assemble per-rank blocks into a global [nx*ny*nz] grid. *)

val run_sequential : plan -> float array
(** The undecomposed reference computation; must equal
    [gather plan (run plan).blocks] bitwise. *)
