(* The codec moved to [Obs.Json] so the run ledger (which lives below this
   library in the dependency order) can share it; this alias keeps every
   existing [Bench_stats.Json] caller source-compatible. *)

include Obs.Json
