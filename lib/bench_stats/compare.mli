(** Baseline comparison with a statistical gate: a case is a regression
    only when the two runs' confidence intervals are disjoint and the
    median moved by at least [min_delta_pct] percent. *)

type verdict =
  | Regression
  | Improvement
  | Unchanged
  | Added  (** in the current run only *)
  | Removed  (** in the baseline only *)

type entry = {
  name : string;
  verdict : verdict;
  baseline : Runner.summary option;
  current : Runner.summary option;
  delta_pct : float;
      (** median move, percent of baseline; [nan] if either side absent *)
}

type t = { min_delta_pct : float; entries : entry list }

val default_min_delta_pct : float
(** 5%. *)

val compare :
  ?min_delta_pct:float -> baseline:Report.t -> current:Report.t -> unit -> t

val regressions : t -> entry list
val verdict_name : verdict -> string
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
