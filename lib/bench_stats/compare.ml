(* Baseline comparison with a statistical gate: a case only counts as a
   regression (or improvement) when the two runs' confidence intervals
   are disjoint AND the median moved by more than a noise threshold —
   overlapping CIs are exactly the "could be the same distribution"
   verdict the bootstrap buys us, and the percentage floor keeps
   micro-jitter on sub-microsecond cases from tripping gates. *)

type verdict =
  | Regression
  | Improvement
  | Unchanged
  | Added  (** in the current run only *)
  | Removed  (** in the baseline only *)

type entry = {
  name : string;
  verdict : verdict;
  baseline : Runner.summary option;
  current : Runner.summary option;
  delta_pct : float;  (** (current - baseline) / baseline; nan if either absent *)
}

type t = { min_delta_pct : float; entries : entry list }

let default_min_delta_pct = 5.0

let judge ~min_delta_pct (b : Runner.summary) (c : Runner.summary) =
  let delta_pct =
    if b.median > 0.0 then (c.median -. b.median) /. b.median *. 100.0
    else nan
  in
  let disjoint = c.ci_low > b.ci_high || c.ci_high < b.ci_low in
  let verdict =
    if not disjoint then Unchanged
    else if Float.is_nan delta_pct || Float.abs delta_pct < min_delta_pct then
      Unchanged
    else if delta_pct > 0.0 then Regression
    else Improvement
  in
  (verdict, delta_pct)

let compare ?(min_delta_pct = default_min_delta_pct) ~baseline ~current () =
  let base_results = baseline.Report.results in
  let cur_results = current.Report.results in
  let find name l =
    List.find_opt (fun (s : Runner.summary) -> s.name = name) l
  in
  let of_current (c : Runner.summary) =
    match find c.name base_results with
    | None ->
        {
          name = c.name;
          verdict = Added;
          baseline = None;
          current = Some c;
          delta_pct = nan;
        }
    | Some b ->
        let verdict, delta_pct = judge ~min_delta_pct b c in
        { name = c.name; verdict; baseline = Some b; current = Some c;
          delta_pct }
  in
  let removed =
    List.filter_map
      (fun (b : Runner.summary) ->
        match find b.name cur_results with
        | Some _ -> None
        | None ->
            Some
              {
                name = b.name;
                verdict = Removed;
                baseline = Some b;
                current = None;
                delta_pct = nan;
              })
      base_results
  in
  { min_delta_pct; entries = List.map of_current cur_results @ removed }

let regressions t =
  List.filter (fun e -> e.verdict = Regression) t.entries

let verdict_name = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Unchanged -> "unchanged"
  | Added -> "added"
  | Removed -> "removed"

let pp_entry ppf e =
  let med = function
    | Some (s : Runner.summary) -> Printf.sprintf "%.3f" s.median
    | None -> "-"
  in
  Format.fprintf ppf "%-32s %-11s %10s -> %10s us%s" e.name
    (verdict_name e.verdict) (med e.baseline) (med e.current)
    (if Float.is_nan e.delta_pct then ""
     else Printf.sprintf "  (%+.1f%%)" e.delta_pct)

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) t.entries;
  let n = List.length (regressions t) in
  if n > 0 then
    Format.fprintf ppf
      "%d regression(s): CI-disjoint and |median delta| >= %.1f%%@." n
      t.min_delta_pct
  else
    Format.fprintf ppf "no regressions (gate: CI-disjoint and >= %.1f%%)@."
      t.min_delta_pct
