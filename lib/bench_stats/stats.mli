(** Robust summary statistics for benchmark samples.

    Median / MAD summaries and seeded percentile-bootstrap confidence
    intervals; everything is deterministic for a given seed. All
    functions raise [Invalid_argument] on an empty array. *)

val sorted : float array -> float array
(** A sorted copy. *)

val quantile : float array -> float -> float
(** Linear-interpolation quantile, [q] in [[0, 1]]. *)

val median : float array -> float
val mean : float array -> float

val mad : float array -> float
(** Median absolute deviation. *)

val bootstrap_ci :
  ?seed:int ->
  ?resamples:int ->
  ?confidence:float ->
  ?estimator:(float array -> float) ->
  float array ->
  float * float
(** [(lo, hi)] percentile-bootstrap confidence interval (default 95%,
    1000 resamples) of [estimator] (default {!median}). *)
