(* The machine-readable benchmark document: a versioned schema wrapping
   the runner's summaries, so CI can diff two runs mechanically and a
   schema bump is an explicit, detectable event rather than silent field
   drift. *)

let schema = "wavefront-bench/v1"

type t = {
  label : string;  (** e.g. a git ref or "local" *)
  created_at : float;  (** unix epoch seconds *)
  meta : (string * string) list;  (** free-form provenance *)
  results : Runner.summary list;
}

let v ?(label = "local") ?(meta = []) ?created_at results =
  let created_at =
    match created_at with
    | Some t -> t
    | None -> Obs.Clock.realtime () /. 1e6
  in
  { label; created_at; meta; results }

let summary_to_json (s : Runner.summary) =
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("n", Json.Num (float_of_int s.n));
      ("batch", Json.Num (float_of_int s.batch));
      ("median_us", Json.Num s.median);
      ("mad_us", Json.Num s.mad);
      ("mean_us", Json.Num s.mean);
      ("ci_low_us", Json.Num s.ci_low);
      ("ci_high_us", Json.Num s.ci_high);
    ]

let summary_of_json j =
  let f name = Json.get_num name (Json.member name j) in
  {
    Runner.name = Json.get_str "name" (Json.member "name" j);
    n = int_of_float (f "n");
    batch = int_of_float (f "batch");
    median = f "median_us";
    mad = f "mad_us";
    mean = f "mean_us";
    ci_low = f "ci_low_us";
    ci_high = f "ci_high_us";
  }

let to_json t =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str schema);
         ("label", Json.Str t.label);
         ("created_at", Json.Num t.created_at);
         ( "meta",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.meta) );
         ("results", Json.List (List.map summary_to_json t.results));
       ])

let of_json s =
  let j = Json.of_string s in
  let got = Json.get_str "schema" (Json.member "schema" j) in
  if got <> schema then
    raise
      (Json.Parse_error
         (Printf.sprintf "schema mismatch: expected %s, got %s" schema got));
  {
    label = Json.get_str "label" (Json.member "label" j);
    created_at = Json.get_num "created_at" (Json.member "created_at" j);
    meta =
      (match Json.member "meta" j with
      | Some (Json.Obj kvs) ->
          List.map
            (fun (k, v) -> (k, Json.get_str k (Some v)))
            kvs
      | _ -> []);
    results =
      List.map summary_of_json (Json.get_list "results" (Json.member "results" j));
  }

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (really_input_string ic (in_channel_length ic)))

let pp ppf t =
  Format.fprintf ppf "%s (%s, %d result(s))@." schema t.label
    (List.length t.results);
  List.iter (fun s -> Format.fprintf ppf "  %a@." Runner.pp s) t.results
