(* A statistically honest micro-benchmark runner: warmup runs first (JIT
   the allocator / caches into steady state), then N timed repetitions of
   an auto-calibrated batch (so one sample is long enough for the clock
   to resolve), summarized as median / MAD / bootstrap CI of the per-call
   time. Timing uses the monotonic Obs.Clock.wall, in microseconds. *)

type summary = {
  name : string;
  n : int;  (** timed repetitions *)
  batch : int;  (** calls per repetition *)
  median : float;  (** us per call *)
  mad : float;
  mean : float;
  ci_low : float;  (** bootstrap CI of the median, us per call *)
  ci_high : float;
}

let now = Obs.Clock.wall

let time_batch f batch =
  let t0 = now () in
  for _ = 1 to batch do
    f ()
  done;
  (now () -. t0) /. float_of_int batch

(* Grow the batch until one repetition spans at least [min_batch_us], so
   the sample is well above clock resolution; a single call that already
   does is its own batch. *)
let calibrate f ~min_batch_us =
  let rec go batch =
    let t0 = now () in
    for _ = 1 to batch do
      f ()
    done;
    let d = now () -. t0 in
    if d >= min_batch_us || batch >= 1 lsl 20 then batch else go (batch * 2)
  in
  go 1

let measure ?(warmup = 3) ?(repeats = 20) ?(min_batch_us = 500.0)
    ?(confidence = 0.95) ~name f =
  if repeats < 3 then invalid_arg "Runner.measure: repeats >= 3";
  for _ = 1 to warmup do
    f ()
  done;
  let batch = calibrate f ~min_batch_us in
  let samples = Array.init repeats (fun _ -> time_batch f batch) in
  let ci_low, ci_high = Stats.bootstrap_ci ~confidence samples in
  {
    name;
    n = repeats;
    batch;
    median = Stats.median samples;
    mad = Stats.mad samples;
    mean = Stats.mean samples;
    ci_low;
    ci_high;
  }

let pp ppf s =
  Format.fprintf ppf
    "%-32s %10.3f us  (CI95 [%.3f, %.3f], MAD %.3f, n=%d x %d)" s.name
    s.median s.ci_low s.ci_high s.mad s.n s.batch
