(* Robust summary statistics for benchmark samples: median / MAD rather
   than mean / stddev (timing distributions are skewed and spiky), and
   bootstrap percentile confidence intervals so comparisons across runs
   can ask "do the intervals overlap?" instead of eyeballing noise. The
   resampling RNG is a local splitmix64 — seeded, so reports are
   reproducible bit-for-bit. *)

let sorted xs =
  let a = Array.copy xs in
  Array.sort compare a;
  a

(* Linear-interpolation quantile of an already-sorted array. *)
let quantile_sorted a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q in [0, 1]";
  if n = 1 then a.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let quantile xs q = quantile_sorted (sorted xs) q
let median xs = quantile xs 0.5

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

(* Median absolute deviation — the robust spread companion of the
   median. *)
let mad xs =
  let m = median xs in
  median (Array.map (fun x -> Float.abs (x -. m)) xs)

(* splitmix64, kept local so the library needs no RNG dependency and the
   bootstrap stream is stable across OCaml versions. *)
type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int seed }

let next_int64 r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound), bound <= 2^30 (sample counts are small). *)
let next_int r ~bound =
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 r) 2)
                  (Int64.of_int bound))

(* Percentile-bootstrap confidence interval of [estimator] (default the
   median): resample with replacement, estimate each resample, take the
   (alpha/2, 1 - alpha/2) quantiles of the estimates. *)
let bootstrap_ci ?(seed = 0x5EED) ?(resamples = 1000) ?(confidence = 0.95)
    ?(estimator = median) xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.bootstrap_ci: empty";
  if resamples < 1 then invalid_arg "Stats.bootstrap_ci: resamples >= 1";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Stats.bootstrap_ci: confidence in (0, 1)";
  let r = rng seed in
  let resample = Array.make n 0.0 in
  let estimates =
    Array.init resamples (fun _ ->
        for i = 0 to n - 1 do
          resample.(i) <- xs.(next_int r ~bound:n)
        done;
        estimator resample)
  in
  let s = sorted estimates in
  let alpha = 1.0 -. confidence in
  (quantile_sorted s (alpha /. 2.0), quantile_sorted s (1.0 -. (alpha /. 2.0)))
