(** The machine-readable benchmark document (schema
    ["wavefront-bench/v1"]). *)

val schema : string

type t = {
  label : string;  (** e.g. a git ref or ["local"] *)
  created_at : float;  (** unix epoch seconds *)
  meta : (string * string) list;  (** free-form provenance *)
  results : Runner.summary list;
}

val v :
  ?label:string ->
  ?meta:(string * string) list ->
  ?created_at:float ->
  Runner.summary list ->
  t

val to_json : t -> string

val of_json : string -> t
(** Raises {!Json.Parse_error} on malformed input or a schema mismatch. *)

val write : string -> t -> unit
val read : string -> t

val pp : Format.formatter -> t -> unit
