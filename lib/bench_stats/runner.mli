(** A statistically honest micro-benchmark runner: warmup, auto-calibrated
    batches, N repetitions, median / MAD / bootstrap-CI summary. Times are
    microseconds per call, from the monotonic {!Obs.Clock.wall}. *)

type summary = {
  name : string;
  n : int;  (** timed repetitions *)
  batch : int;  (** calls per repetition *)
  median : float;  (** us per call *)
  mad : float;
  mean : float;
  ci_low : float;  (** bootstrap CI of the median, us per call *)
  ci_high : float;
}

val measure :
  ?warmup:int ->
  ?repeats:int ->
  ?min_batch_us:float ->
  ?confidence:float ->
  name:string ->
  (unit -> unit) ->
  summary
(** Defaults: 3 warmup runs, 20 repetitions, batches grown until one
    repetition spans 500 us, 95% CI. *)

val pp : Format.formatter -> summary -> unit
