(** The one wavefront program (paper Figure 4), written against the
    {!Substrate} interface and shared by every backend: the event-level
    simulator, the shared-memory runtime with real payloads, and the
    reference dataflow scheduler. It owns the per-tile
    receive/compute/send loop, the sweep flow directions, the Htile
    stacking and every [App_params.nonwavefront] variant — exactly once. *)

open Wgrid

val flow_xy : Proc_grid.t -> Proc_grid.corner -> int * int
(** Downstream (dx, dy) of a sweep originating at the given corner. *)

val flow : Proc_grid.t -> Sweeps.Schedule.sweep -> int * int * int
(** As {!flow_xy} plus dz from the sweep's z direction. *)

type tiling = { ntiles : int; h_of : int -> int }
(** How a rank's Nz-plane stack is cut: [ntiles] tiles, tile [t] holding
    [h_of t] planes. *)

val tiling : nz:int -> htile:float -> tiling
(** The model's convention: [ceil (nz / htile)] tiles with cumulative
    real-valued boundaries (Table 3's Htile may be fractional). *)

val tiling_int : nz:int -> htile:int -> tiling
(** The executable kernels' convention: [htile] whole planes per tile,
    short last tile — {!Kernels.Transport}'s layout. Equal to {!tiling}
    when [htile] is integral. *)

type config = {
  pg : Proc_grid.t;
  grid : Data_grid.t;
  schedule : Sweeps.Schedule.t;
  nonwavefront : Wavefront_core.App_params.nonwavefront;
  msg_ew : int;  (** east/west face size in bytes (Table 3) *)
  msg_ns : int;
  tiling : tiling;
  iterations : int;
}

val v :
  ?iterations:int ->
  ?tiling:tiling ->
  pg:Proc_grid.t ->
  grid:Data_grid.t ->
  schedule:Sweeps.Schedule.t ->
  nonwavefront:Wavefront_core.App_params.nonwavefront ->
  msg_ew:int ->
  msg_ns:int ->
  htile:float ->
  unit ->
  config
(** [htile] only determines the default {!tiling}. *)

val of_app :
  ?iterations:int ->
  ?tiling:tiling ->
  Proc_grid.t ->
  Wavefront_core.App_params.t ->
  config
(** The program of a Table 3 application: message sizes and default tiling
    derived from the app's parameters. [iterations] defaults to 1 (one
    wavefront iteration), matching the simulator's historical default, not
    the app's [iterations] field. *)

val wave_of : config -> Substrate.position -> int
(** Global wave index of a tile step:
    [((iteration - 1) * nsweeps + sweep) * ntiles + tile] — one wave per
    tile compute, the clock the checkpoint interval ticks on. *)

val waves : config -> int
(** Total tile steps per rank over the whole run
    ([iterations * nsweeps * ntiles]); wave indices range over
    [0 .. waves - 1]. *)

val position_lt : Substrate.position -> Substrate.position -> bool
(** Strict lexicographic order on (iteration, sweep, tile) — the program
    order of tile steps. The epilogue (non-wavefront section) of iteration
    [i] sits at the virtual position [(i, nsweeps, 0)], so an [until] of
    exactly that position excludes it while [(i + 1, 0, 0)] includes it. *)

val epilogue : ('t, 'p) Substrate.s -> 't -> config -> int -> unit
(** Run only the non-wavefront section of one iteration for one rank — the
    [App_params.nonwavefront] variant: fixed work, allreduce, or the
    staged stencil halo exchange. Drivers that advance ranks in a custom
    order (e.g. the batched engine's deferred epilogue stage) call this
    directly; {!run_rank} invokes the same code at each iteration end. *)

val run_rank :
  ?from:Substrate.position ->
  ?until:Substrate.position ->
  ('t, 'p) Substrate.s ->
  't ->
  config ->
  int ->
  unit
(** Execute one rank's program on the given substrate. The caller provides
    the concurrency (simulator processes, domains, or dataflow fibers);
    this function only performs the rank's own blocking sequence.

    [from] (default {!Substrate.start_position}) resumes the program at a
    later tile step after a rollback: earlier iterations, sweeps and tiles
    are skipped outright — the substrate must already hold the state a
    checkpoint restored (accumulated block, carried z-face, rewound
    channels). [sweep_begin] still fires for the resumed sweep. Raises
    [Invalid_argument] if the position is out of range.

    [until] (exclusive, in {!position_lt} order) stops the program before
    the given tile step, letting a driver execute a rank's program in
    segments — e.g. one sweep at a time: [~from:(i, s, 0)
    ~until:(i, s + 1, 0)]. An iteration's epilogue runs iff its virtual
    position [(i, nsweeps, 0)] is before [until]; [finish] fires only on
    an unbounded run ([until = None]) — segmented drivers signal
    completion themselves. *)
