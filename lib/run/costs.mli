(** LogGP operation costs for the timed dataflow backend: the analytic
    model's per-operation terms (uniform tile work W / Wg_pre, the
    uncontended protocol mechanics of eager / rendezvous / copy / DMA
    transfers, the eq-9 all-reduce), packaged so {!Dataflow} can advance
    per-rank virtual clocks and emit a wave-resolved analytic term
    schedule. With single-core nodes, eager-sized messages and bus
    contention off this arithmetic is the event-level simulator's exactly;
    the rendezvous charge assumes a pre-posted receive. *)

open Wgrid
open Wavefront_core

type t = {
  platform : Loggp.Params.t;
  cmp : Cmp.t;
  pg : Proc_grid.t;
  w : float;  (** tile compute W, us *)
  w_pre : float;  (** tile pre-compute, us *)
  cells_x : float;
  cells_y : float;
  nz : float;
  bus_ew : float;  (** Table-6 interference per E/W op, us (0 = bus off) *)
  bus_ns : float;  (** Table-6 interference per N/S op, us (0 = bus off) *)
}

val loggp :
  ?model_bus:bool ->
  cmp:Cmp.t ->
  Loggp.Params.t ->
  Proc_grid.t ->
  App_params.t ->
  t
(** The model's uniform view of [app] on [pg]: W = Wg * cells-per-tile.

    [model_bus] (default [false]) enables the multi-core shared-bus
    layer of paper Section 4.3: every E/W (resp. N/S) send and receive
    of the tile loop is additionally charged [bus_ew] (resp. [bus_ns]) =
    {!Wavefront_core.Plugplay.contention_coeffs}[ cmp] times the Table-6
    interference quantum [I = o_dma + size * G_dma]
    ({!Loggp.Comm_model.contention_i}). With single-core nodes the
    coefficients are zero, so enabling the bus changes nothing. The term
    is a per-rank closed form — the steady anti-diagonal front's
    per-node arrival counts, not simulated queueing — so evaluations
    stay order-independent (domain-sharding determinism) and diverge
    from the event simulator's queued bus only within the tolerance the
    batched-vs-event differential suite pins. *)

val bus_ew : t -> float
val bus_ns : t -> float

val model_bus : t -> bool
(** Whether any bus interference term is non-zero. *)

val locality : t -> src:int -> dst:int -> Loggp.Comm_model.locality

val send_busy : t -> src:int -> dst:int -> int -> float
(** Time the sender's clock advances inside a send of this many bytes. *)

val in_flight : t -> src:int -> dst:int -> int -> float
(** How far behind the sender's return the payload is delivered. *)

val recv_overhead : t -> src:int -> dst:int -> float
(** The receiver's software cost after delivery. *)

val send_busy_at : t -> Loggp.Comm_model.locality -> int -> float
val in_flight_at : t -> Loggp.Comm_model.locality -> int -> float

val recv_overhead_at : t -> Loggp.Comm_model.locality -> float
(** The [_at] variants of the three message charges take the link
    locality explicitly — for callers that cache {!locality} per link
    (the batched engine) instead of re-deriving it per message. *)

val compute : t -> float
val precompute : t -> float

val hop_latency : t -> src:int -> dst:int -> int -> float
(** Wall-clock cost of one rank hop of an idle-wave front along a
    [src]->[dst] link carrying messages of this many bytes:
    [send_busy + in_flight + recv_overhead + w_pre + w]. The analytic
    [hop_cost] input of [Perturb.Idle_model]. *)

val steady_period : t -> src:int -> dst:int -> int -> float
(** Per-wave period of the tied pipeline on the same link:
    [hop_latency - in_flight] (the flight is paid once per hop, not per
    wave). The analytic [wave_period] input of [Perturb.Idle_model]. *)

val stencil : t -> wg_stencil:float -> float
val allreduce : t -> count:int -> msg_size:int -> float
val barrier : t -> float
