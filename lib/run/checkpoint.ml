(* Versioned per-rank snapshots of wavefront state, the passive half of
   the recovery layer (the active half — detection, rollback, replay —
   lives with each substrate: [Shmpi] supervision for the real runtime,
   event-time charging in the simulators).

   A snapshot is everything a rank needs to re-enter [Program.run_rank]
   at a tile boundary: the resumable {!Substrate.position}, the
   accumulated solution block [phi], the transport kernel's carried
   z-face [zbuf]/[zpos] (intra-sweep state that flows tile to tile), and
   per-peer message-sequence marks [sent]/[recvd] that tell the channel
   log how far to rewind and what it may release.

   Snapshots are taken at {!Substrate.S.tile_begin} when {!due} says the
   wave is a checkpoint wave. The interval [K = 0] means checkpointing
   is disabled — [due] is then never true, so a zero policy is invisible
   by construction. *)

type snapshot = {
  rank : int;
  version : int;  (** Monotonic per rank; higher is newer. *)
  wave : int;  (** Global wave index of the checkpointed position. *)
  position : Substrate.position;  (** Next tile step to execute. *)
  phi : float array;  (** The rank's accumulated solution block. *)
  zbuf : float array;  (** Transport z-face carried between tiles. *)
  zpos : int;  (** Plane frontier within the current sweep. *)
  sent : int array;  (** Per-destination-rank send sequence marks. *)
  recvd : int array;  (** Per-source-rank receive sequence marks. *)
}

(* The interval arithmetic is owned by the model ([Perturb.Recover]) and
   only delegated to here, so the closed-form overhead term and the
   substrates' snapshot schedule can never disagree. *)
let due = Perturb.Recover.due
let count ~interval ~waves = Perturb.Recover.checkpoints ~interval ~waves

(* A store hides where snapshots live. Ranks save concurrently from
   their own domains; implementations synchronise internally. *)
type store = {
  save : snapshot -> unit;
  latest : rank:int -> snapshot option;
  saves : unit -> int;
}

let save t s = t.save s
let latest t ~rank = t.latest ~rank
let saves t = t.saves ()

module Memory = struct
  let create () =
    let mutex = Mutex.create () in
    let table : (int, snapshot) Hashtbl.t = Hashtbl.create 16 in
    let count = ref 0 in
    let locked f =
      Mutex.lock mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
    in
    {
      save =
        (fun s ->
          locked (fun () ->
              incr count;
              Hashtbl.replace table s.rank s));
      latest = (fun ~rank -> locked (fun () -> Hashtbl.find_opt table rank));
      saves = (fun () -> locked (fun () -> !count));
    }
end

(* File-backed store: one file per rank, atomically replaced on save
   (write to a dot-temporary, then rename). The format is explicit
   little-endian binary under a magic/version header so a stale or
   foreign file is rejected rather than misread. *)
module File = struct
  let magic = "WFCKPT01"

  let encode (s : snapshot) =
    let b = Buffer.create (64 + (8 * (Array.length s.phi + Array.length s.zbuf)))
    in
    Buffer.add_string b magic;
    let int i = Buffer.add_int64_le b (Int64.of_int i) in
    let floats a =
      int (Array.length a);
      Array.iter (fun f -> Buffer.add_int64_le b (Int64.bits_of_float f)) a
    in
    let ints a =
      int (Array.length a);
      Array.iter int a
    in
    int s.rank;
    int s.version;
    int s.wave;
    int s.position.iteration;
    int s.position.sweep;
    int s.position.tile;
    int s.zpos;
    floats s.phi;
    floats s.zbuf;
    ints s.sent;
    ints s.recvd;
    Buffer.contents b

  let decode data =
    let pos = ref 0 in
    let need n =
      if !pos + n > String.length data then failwith "checkpoint: truncated"
    in
    need (String.length magic);
    if String.sub data 0 (String.length magic) <> magic then
      failwith "checkpoint: bad magic";
    pos := String.length magic;
    let int () =
      need 8;
      let v = Int64.to_int (String.get_int64_le data !pos) in
      pos := !pos + 8;
      v
    in
    let floats () =
      let n = int () in
      if n < 0 then failwith "checkpoint: bad length";
      Array.init n (fun _ ->
          need 8;
          let v = Int64.float_of_bits (String.get_int64_le data !pos) in
          pos := !pos + 8;
          v)
    in
    let ints () =
      let n = int () in
      if n < 0 then failwith "checkpoint: bad length";
      Array.init n (fun _ -> int ())
    in
    let rank = int () in
    let version = int () in
    let wave = int () in
    let iteration = int () in
    let sweep = int () in
    let tile = int () in
    let zpos = int () in
    let phi = floats () in
    let zbuf = floats () in
    let sent = ints () in
    let recvd = ints () in
    {
      rank;
      version;
      wave;
      position = { iteration; sweep; tile };
      phi;
      zbuf;
      zpos;
      sent;
      recvd;
    }

  let path dir rank = Filename.concat dir (Fmt.str "rank-%04d.ckpt" rank)

  let create ~dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let mutex = Mutex.create () in
    let count = ref 0 in
    let locked f =
      Mutex.lock mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
    in
    let save s =
      locked (fun () ->
          incr count;
          let final = path dir s.rank in
          let tmp = final ^ ".tmp" in
          let oc = open_out_bin tmp in
          output_string oc (encode s);
          close_out oc;
          Sys.rename tmp final)
    in
    let latest ~rank =
      locked (fun () ->
          let file = path dir rank in
          if not (Sys.file_exists file) then None
          else
            let ic = open_in_bin file in
            let len = in_channel_length ic in
            let data = really_input_string ic len in
            close_in ic;
            Some (decode data))
    in
    { save; latest; saves = (fun () -> locked (fun () -> !count)) }
end

let memory_store = Memory.create
let file_store ~dir = File.create ~dir
