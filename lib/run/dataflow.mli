(** The reference dataflow backend: deterministic execution of the
    program's blocking-communication precedence graph, with no event
    simulation and no domains.

    Every rank is an effect-based fiber; a receive on an empty channel
    suspends it, a send wakes the waiting receiver, and a single FIFO run
    queue makes the interleaving deterministic. There is no clock — the
    backend answers only whether the schedule's communication order is
    consistent, which makes it a fast deadlock validator and a
    message-sequence oracle at 100K+ ranks.

    A {!Perturb.Spec.t} maps onto the clockless scheduler logically: a
    straggler's tasks only run when every other rank is blocked or done
    (the most adversarial legal ordering — completing under it proves the
    precedence graph tolerates that rank always arriving last), and a
    spec'd failure ends the rank's fiber at its chosen tile, after which
    the outcome reports the starved ranks and the orphaned in-flight
    messages. *)

open Wgrid

type msg = { axis : Substrate.axis; tile : int; bytes : int }
(** What travels on an edge of the precedence graph: a face description
    rather than data. *)

type outcome = {
  ranks : int;
  completed : bool;
  blocked : (int * string) list;
      (** stuck ranks and what each was waiting on (empty iff completed) *)
  failed : int list;  (** ranks killed by the perturbation spec, ascending *)
  recovered : int list;
      (** ranks that died but were revived by the checkpoint policy,
          ascending (empty unless a recovery policy is active) *)
  messages : int;
  orphaned : int;
      (** sent messages never received — non-zero flags a sender whose
          receiver died or a program leaking sends *)
  mismatches : string list;
      (** face-description disagreements between sender and receiver
          (capped at 16) *)
}

val pp_outcome : outcome Fmt.t

(** The raw deterministic scheduler, for custom programs (e.g. testing
    that a deliberately broken communication order is reported as
    deadlock). {!send}/{!recv}/{!barrier} may only be called from inside a
    program run by {!exec}. *)
module Raw : sig
  type sched

  val create : ranks:int -> sched

  val set_straggler : sched -> int -> unit
  (** Route the rank's tasks to the deferred queue, which only drains when
      no non-straggler can run. Call before {!exec}. *)

  val send : sched -> src:int -> dst:int -> msg -> unit
  val recv : sched -> rank:int -> src:int -> msg
  val barrier : sched -> rank:int -> unit

  val exec : sched -> (int -> unit) -> unit
  (** Run every rank's program to completion or deadlock. One-shot. *)

  val outcome : sched -> outcome
end

type t

val create :
  ?perturb:Perturb.Spec.t ->
  ?recover:Perturb.Recover.policy ->
  ?costs:Costs.t ->
  ?obs:Obs.Tracer.t ->
  ?ntiles:int ->
  ranks:int ->
  msg_ew:int ->
  msg_ns:int ->
  unit ->
  t
(** [perturb] marks the spec's stragglers for deferred scheduling and arms
    its failures; the spec's timed clauses (noise, link delay) are no-ops
    on this clockless backend.

    [recover] simulates the checkpoint/rollback protocol: snapshot
    bookkeeping on due waves, and a spec'd failure revives the rank in
    place instead of ending its fiber (the wavefront DAG makes rollback
    local, so the precedence graph is unchanged). In timed mode the
    checkpoint, restart and replayed-wave costs are charged on the
    virtual clocks and tagged as [recover.*] spans. A disabled policy
    (interval 0) or its absence is bitwise invisible.

    [costs] switches on timed mode: each rank carries a virtual clock
    advanced by the analytic model's per-operation costs, every message a
    modeled delivery time, and collectives synchronize the clocks — the
    scheduler's interleaving stays the clockless one; time is an
    annotation on the precedence graph. [obs] (requires [costs]) records a
    wave-tagged span per operation, stamped in virtual time, from which
    {!Obs.Timeline.of_spans} reconstructs the analytic per-rank x per-wave
    term schedule. [ntiles] (default 1) is the tiles-per-sweep factor of
    the wave numbering [wave = sweep * ntiles + tile]. *)

val of_app :
  ?perturb:Perturb.Spec.t ->
  ?recover:Perturb.Recover.policy ->
  ?costs:Costs.t ->
  ?obs:Obs.Tracer.t ->
  Proc_grid.t ->
  Wavefront_core.App_params.t ->
  t
(** [ntiles] is derived from the app's default tiling. *)

val finish_times : t -> float array option
(** Timed mode only: each rank's virtual clock at its {!Substrate.finish},
    after {!exec}. *)

val elapsed : t -> float option
(** Timed mode only: the modeled makespan [max_r finish_times.(r)]. *)

module Substrate : Substrate.S with type t = t and type payload = msg

val exec : t -> (int -> unit) -> unit
(** Run rank programs (typically
    [fun rank -> Program.run_rank (module Substrate) t cfg rank], possibly
    wrapped in {!Record.Wrap}) under the deterministic scheduler. *)

val outcome : t -> outcome

val checkpoints : t -> int
(** Snapshots taken across all ranks under the recovery policy (0 when
    recovery is off). *)

val run :
  ?iterations:int ->
  ?tiling:Program.tiling ->
  ?perturb:Perturb.Spec.t ->
  ?recover:Perturb.Recover.policy ->
  ?costs:Costs.t ->
  ?obs:Obs.Tracer.t ->
  Proc_grid.t ->
  Wavefront_core.App_params.t ->
  outcome
(** Validate a Table 3 application end to end: build the program with
    {!Program.of_app} and execute it on this backend. *)
