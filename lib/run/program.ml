(* The one wavefront program (paper Figure 4), written against the
   substrate interface.

   Every rank runs, for each sweep of the schedule and each tile of its
   stack: pre-compute, blocking receive of the two upstream faces, compute
   the tile, send the two downstream faces — then the application's
   non-wavefront operations at the end of each iteration. The sweep
   precedence behaviour of Figure 2 (Follow/Diagonal/Full gating) is not
   programmed anywhere: it emerges from the blocking receives and the
   per-sweep origin corners, exactly as in the real codes the paper models.

   Which machine this runs on — event-level simulation, OCaml domains with
   real payloads, or the reference dataflow scheduler — is entirely the
   substrate's business. *)

open Wgrid

(* Downstream x/y direction of a sweep, by origin corner: a sweep flows
   away from its origin in both dimensions. *)
let flow_xy (pg : Proc_grid.t) corner =
  let ox, oy = Proc_grid.corner_coords pg corner in
  ((if ox = 1 then 1 else -1), if oy = 1 then 1 else -1)

let flow pg (s : Sweeps.Schedule.sweep) =
  let dx, dy = flow_xy pg s.origin in
  let dz = match s.zdir with `Up -> 1 | `Down -> -1 in
  (dx, dy, dz)

(* How a rank's Nz-plane stack is cut into tiles. The model's Htile is
   real-valued (Sweep3D's mk*mmi/mmo need not be integral), so the plane
   count of tile [t] comes from the cumulative boundaries: tile t covers
   planes [ceil(t*htile), ceil((t+1)*htile)). For integral Htile this is
   exactly the familiar "htile planes per tile, short last tile". *)
type tiling = { ntiles : int; h_of : int -> int }

let tiling ~nz ~htile =
  if htile <= 0.0 then invalid_arg "Program.tiling: htile must be > 0";
  let ntiles = Tile.ntiles_int ~nz ~htile in
  let bound t = min nz (int_of_float (Float.ceil (htile *. float_of_int t))) in
  { ntiles; h_of = (fun t -> bound (t + 1) - bound t) }

let tiling_int ~nz ~htile =
  if htile < 1 then invalid_arg "Program.tiling_int: htile must be >= 1";
  {
    ntiles = (nz + htile - 1) / htile;
    h_of = (fun t -> min htile (nz - (t * htile)));
  }

type config = {
  pg : Proc_grid.t;
  grid : Data_grid.t;
  schedule : Sweeps.Schedule.t;
  nonwavefront : Wavefront_core.App_params.nonwavefront;
  msg_ew : int;
  msg_ns : int;
  tiling : tiling;
  iterations : int;
}

let v ?(iterations = 1) ?tiling:tl ~pg ~grid ~schedule ~nonwavefront ~msg_ew
    ~msg_ns ~htile () =
  if iterations < 1 then invalid_arg "Program.v: iterations must be >= 1";
  let tiling =
    match tl with Some t -> t | None -> tiling ~nz:grid.Data_grid.nz ~htile
  in
  { pg; grid; schedule; nonwavefront; msg_ew; msg_ns; tiling; iterations }

let of_app ?iterations ?tiling pg (app : Wavefront_core.App_params.t) =
  v ?iterations ?tiling ~pg ~grid:app.grid ~schedule:app.schedule
    ~nonwavefront:app.nonwavefront
    ~msg_ew:(Wavefront_core.App_params.message_size_ew app pg)
    ~msg_ns:(Wavefront_core.App_params.message_size_ns app pg)
    ~htile:app.htile ()

(* The non-wavefront section. The halo exchange proceeds one direction at a
   time — everyone sends east and receives from the west, then the reverse,
   then the same for north/south — to stay deadlock-free on blocking
   substrates. *)
let epilogue_at (type st p) ((module S) : (st, p) Substrate.s) (s : st) cfg
    rank (i, j) =
  match cfg.nonwavefront with
  | Wavefront_core.App_params.No_op -> ()
  | Fixed t -> S.fixed_work s ~rank t
  | Allreduce { count; msg_size } -> S.allreduce s ~rank ~count ~msg_size
  | Stencil { wg_stencil; halo_bytes_per_cell } ->
      let pg = cfg.pg in
      let nz = float_of_int cfg.grid.Data_grid.nz in
      S.stencil_compute s ~rank ~wg_stencil;
      let face extent =
        Decomp.message_size ~bytes_per_cell:halo_bytes_per_cell ~htile:nz
          ~extent
      in
      let ew = face (Decomp.cells_y cfg.grid pg) in
      let ns = face (Decomp.cells_x cfg.grid pg) in
      let exchange (di, dj) bytes =
        let neighbour p =
          if Proc_grid.contains pg p then Some (Proc_grid.rank pg p) else None
        in
        S.halo s ~rank
          ~dst:(neighbour (i + di, j + dj))
          ~src:(neighbour (i - di, j - dj))
          ~bytes
      in
      exchange (1, 0) ew;
      exchange (-1, 0) ew;
      exchange (0, 1) ns;
      exchange (0, -1) ns

(* Global wave index of a tile step: one wave per tile compute, counted
   across sweeps and iterations — the clock the checkpoint interval ticks
   on, and the per-rank counter [Perturb.Model.fails_now] advances. *)
let epilogue (type st p) ((module S) : (st, p) Substrate.s) (s : st) cfg rank
    =
  epilogue_at (module S) s cfg rank (Proc_grid.coords cfg.pg rank)

(* Exclusive lexicographic order on tile-step positions; the epilogue of
   iteration [i] sits at the virtual position [(i, nsweeps, 0)]. *)
let position_lt (a : Substrate.position) (b : Substrate.position) =
  a.iteration < b.iteration
  || (a.iteration = b.iteration
     && (a.sweep < b.sweep || (a.sweep = b.sweep && a.tile < b.tile)))

let wave_of cfg (p : Substrate.position) =
  let nsweeps = List.length (Sweeps.Schedule.sweeps cfg.schedule) in
  ((((p.iteration - 1) * nsweeps) + p.sweep) * cfg.tiling.ntiles) + p.tile

let waves cfg =
  cfg.iterations
  * List.length (Sweeps.Schedule.sweeps cfg.schedule)
  * cfg.tiling.ntiles

let run_rank (type st p) ?(from = Substrate.start_position) ?until
    ((module S) : (st, p) Substrate.s) (s : st) cfg rank =
  let pg = cfg.pg in
  let i, j = Proc_grid.coords pg rank in
  let has p = Proc_grid.contains pg p in
  let sweeps = Sweeps.Schedule.sweeps cfg.schedule in
  let nsweeps = List.length sweeps in
  if
    from.iteration < 1
    || from.sweep < 0
    || from.sweep >= nsweeps
    || from.tile < 0
    || from.tile >= cfg.tiling.ntiles
  then invalid_arg "Program.run_rank: resume position out of range";
  let runs p = match until with None -> true | Some u -> position_lt p u in
  for iter = from.iteration to cfg.iterations do
    List.iteri
      (fun sweep_idx sw ->
        let tile0 =
          if iter = from.iteration && sweep_idx = from.sweep then from.tile
          else 0
        in
        if
          (iter > from.iteration || sweep_idx >= from.sweep)
          && runs { iteration = iter; sweep = sweep_idx; tile = tile0 }
        then begin
        let (dx, dy, _) as dir = flow pg sw in
        let up_x = (i - dx, j) and up_y = (i, j - dy) in
        let down_x = (i + dx, j) and down_y = (i, j + dy) in
        let wave_base =
          (((iter - 1) * nsweeps) + sweep_idx) * cfg.tiling.ntiles
        in
        S.sweep_begin s ~rank ~sweep:sweep_idx ~dir;
        for tile = tile0 to cfg.tiling.ntiles - 1 do
          let h = cfg.tiling.h_of tile in
          let pos : Substrate.position =
            { iteration = iter; sweep = sweep_idx; tile }
          in
          if runs pos then begin
          S.tile_begin s ~rank ~pos ~wave:(wave_base + tile);
          (* Figure 4: LU pre-computes part of the domain before the
             receives; Sweep3D and Chimaera have Wg_pre = 0. *)
          S.precompute s ~rank ~tile;
          let x =
            if has up_x then
              S.recv s ~rank ~src:(Proc_grid.rank pg up_x) ~axis:X ~tile ~h
                ~bytes:cfg.msg_ew
            else S.boundary s ~rank ~axis:X ~h
          in
          let y =
            if has up_y then
              S.recv s ~rank ~src:(Proc_grid.rank pg up_y) ~axis:Y ~tile ~h
                ~bytes:cfg.msg_ns
            else S.boundary s ~rank ~axis:Y ~h
          in
          let out_x, out_y = S.compute s ~rank ~dir ~tile ~h ~x ~y in
          if has down_x then
            S.send s ~rank ~dst:(Proc_grid.rank pg down_x) ~axis:X ~tile out_x;
          if has down_y then
            S.send s ~rank ~dst:(Proc_grid.rank pg down_y) ~axis:Y ~tile out_y
          end
        done
        end)
      sweeps;
    if runs { iteration = iter; sweep = nsweeps; tile = 0 } then
      epilogue_at (module S) s cfg rank (i, j)
  done;
  if until = None then S.finish s ~rank
