(* Message-sequence recording: wrap any substrate so each rank's sequence
   of communication steps is captured in program order. Two backends
   executing the same program must produce identical per-rank sequences —
   the cross-substrate oracle the differential tests check.

   Each rank appends only to its own slot, so the wrapper is safe on both
   single-threaded substrates (simulator, dataflow) and one-domain-per-rank
   runtimes. *)

type event =
  | Send of { peer : int; axis : Substrate.axis; tile : int }
  | Recv of { peer : int; axis : Substrate.axis; tile : int; bytes : int }
  | Boundary of { axis : Substrate.axis }
  | Allreduce of { count : int; msg_size : int }
  | Halo of { dst : int option; src : int option; bytes : int }
  | Barrier
  | Finish

type t = event list ref array

let create ~ranks : t = Array.init ranks (fun _ -> ref [])
let events (t : t) rank = List.rev !(t.(rank))
let push (t : t) rank e = t.(rank) := e :: !(t.(rank))

let pp_event ppf = function
  | Send { peer; axis; tile } ->
      Fmt.pf ppf "send[%s] tile %d -> %d" (Substrate.axis_name axis) tile peer
  | Recv { peer; axis; tile; bytes } ->
      Fmt.pf ppf "recv[%s] tile %d <- %d (%dB)" (Substrate.axis_name axis)
        tile peer bytes
  | Boundary { axis } -> Fmt.pf ppf "boundary[%s]" (Substrate.axis_name axis)
  | Allreduce { count; msg_size } ->
      Fmt.pf ppf "allreduce x%d (%dB)" count msg_size
  | Halo { dst; src; bytes } ->
      let pp_o ppf = function
        | Some r -> Fmt.pf ppf "%d" r
        | None -> Fmt.pf ppf "-"
      in
      Fmt.pf ppf "halo ->%a <-%a (%dB)" pp_o dst pp_o src bytes
  | Barrier -> Fmt.pf ppf "barrier"
  | Finish -> Fmt.pf ppf "finish"

module Wrap (S : Substrate.S) = struct
  type nonrec t = t * S.t
  type payload = S.payload

  let boundary (r, s) ~rank ~axis ~h =
    push r rank (Boundary { axis });
    S.boundary s ~rank ~axis ~h

  let recv (r, s) ~rank ~src ~axis ~tile ~h ~bytes =
    push r rank (Recv { peer = src; axis; tile; bytes });
    S.recv s ~rank ~src ~axis ~tile ~h ~bytes

  let send (r, s) ~rank ~dst ~axis ~tile payload =
    push r rank (Send { peer = dst; axis; tile });
    S.send s ~rank ~dst ~axis ~tile payload

  let precompute (_, s) ~rank ~tile = S.precompute s ~rank ~tile

  let compute (_, s) ~rank ~dir ~tile ~h ~x ~y =
    S.compute s ~rank ~dir ~tile ~h ~x ~y

  let sweep_begin (_, s) ~rank ~sweep ~dir = S.sweep_begin s ~rank ~sweep ~dir

  (* Not recorded: checkpointing is a substrate-local concern and must not
     perturb the cross-backend sequence oracle. *)
  let tile_begin (_, s) ~rank ~pos ~wave = S.tile_begin s ~rank ~pos ~wave
  let fixed_work (_, s) ~rank t = S.fixed_work s ~rank t

  let stencil_compute (_, s) ~rank ~wg_stencil =
    S.stencil_compute s ~rank ~wg_stencil

  let halo (r, s) ~rank ~dst ~src ~bytes =
    push r rank (Halo { dst; src; bytes });
    S.halo s ~rank ~dst ~src ~bytes

  let allreduce (r, s) ~rank ~count ~msg_size =
    push r rank (Allreduce { count; msg_size });
    S.allreduce s ~rank ~count ~msg_size

  let barrier (r, s) ~rank =
    push r rank Barrier;
    S.barrier s ~rank

  let finish (r, s) ~rank =
    push r rank Finish;
    S.finish s ~rank
end
