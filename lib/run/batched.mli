(** The wave-batched engine: the Figure-4 program evaluated with the
    same LogGP cost arithmetic as the timed dataflow replay, but without
    fibers, effects or per-event heap records — whole anti-diagonals of
    the processor grid advance per step over flat preallocated
    structure-of-arrays (per-rank virtual clocks, per-slot delivery
    timestamps), optionally sharded across OCaml 5 domains by contiguous
    row bands of the torus with synchronization only at diagonal and
    epilogue-stage boundaries.

    At small sizes a traced run reconstructs (via
    [Obs.Timeline.of_spans]) into the identical [Obs.Timeline.t] the
    dataflow substrate produces, perturbations and recovery included —
    the differential identity the batched test suite pins. At large
    sizes the engine runs untraced in O(ranks) memory and streams
    per-cell analytics into a {!cell_sink} instead; a million-rank sweep
    completes in tens of seconds where the fiber substrates exhaust
    memory or time. *)

open Wgrid

type cell_sink = rank:int -> col:int -> Obs.Timeline.cell -> unit
(** Receives one finished timeline cell per (rank, column) visit, in
    each rank's program order (columns of one rank arrive in increasing
    time, ranks interleave). Column [waves] is the epilogue. A column
    visited by more than one iteration produces one cell per visit:
    totals are additive and windows union — [Obs.Timeline_stream] folds
    them accordingly. With [domains > 1] the sink must be thread-safe
    for calls on distinct ranks (per-rank state needs no locking: one
    rank is only ever touched by its owning domain). *)

type status = Alive | Done | Failed | Blocked_recv of int | Blocked_coll

type outcome = {
  ranks : int;
  completed : bool;
  elapsed : float;  (** max finish clock over completed ranks, us *)
  iterations : int;
  per_iteration : float;
  waves : int;  (** timeline wave columns ([nsweeps * ntiles]) *)
  blocked : (int * string) list;
  failed : int list;
  recovered : int list;
  checkpoints : int;
  messages : int;
  orphaned : int;  (** messages sent but never received *)
  bus_wait : float;
      (** total Table-6 bus interference charged across all ranks, us
          (0 when the costs were built without [model_bus]) *)
  finish : float array;  (** per-rank finish clock (0 if unfinished) *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?iterations:int ->
  ?tiling:Program.tiling ->
  ?perturb:Perturb.Spec.t ->
  ?recover:Perturb.Recover.policy ->
  ?obs:Obs.Tracer.t ->
  ?cells:cell_sink ->
  ?domains:int ->
  costs:Costs.t ->
  Proc_grid.t ->
  Wavefront_core.App_params.t ->
  outcome
(** Evaluate the program on every rank. [domains] (default 1) shards
    ranks across that many OCaml 5 domains by row bands (clamped to the
    grid's row count); results are bitwise identical for every domain
    count — collective release points are associative float maxima and
    each rank's perturbation stream is its own. [obs] attaches a span
    tracer (requires [domains = 1]: the tracer is not thread-safe;
    raises [Invalid_argument] otherwise); [cells] streams timeline
    cells. Raises [Invalid_argument] for [domains < 1].

    When [costs] carries the multi-core bus layer
    ({!Costs.loggp}[ ~model_bus:true] on a multi-core {!Wgrid.Cmp.t}),
    every tile-loop send and receive is additionally charged the
    per-axis Table-6 interference term folded into the per-link cost
    cache — a per-rank closed form, so domain determinism is unchanged;
    with the bus off (or single-core nodes) the fold is skipped and
    results are bitwise-identical to the contention-free engine. The
    epilogue halo/collective stages are outside the Table-6 wavefront
    section and are never bus-charged. *)

(** The steady-state telemetry probe: an interior rank of a live engine
    state stepped through the exact per-tile backend op sequence of the
    wavefront section (precompute, two receives, compute, two sends),
    unobserved and unperturbed, with its delivery slots re-primed before
    each step. One [step] is the engine's repeatable steady-state unit
    of work; the telemetry gate measures it at 0 minor words. *)
module Steady : sig
  type probe

  val probe :
    costs:Costs.t -> Proc_grid.t -> Wavefront_core.App_params.t -> probe
  (** Raises [Invalid_argument] unless the grid is at least 3x3 (the
      probe rank must have all four neighbours). *)

  val step : probe -> unit

  val clock : probe -> float
  (** The probe rank's virtual clock — strictly increasing across
      steps, which is how tests see the step really ran. *)

  val messages : probe -> int
  (** Messages the probe rank has sent plus received. *)
end

val run_timeline :
  ?iterations:int ->
  ?tiling:Program.tiling ->
  ?perturb:Perturb.Spec.t ->
  ?recover:Perturb.Recover.policy ->
  ?domains:int ->
  costs:Costs.t ->
  Proc_grid.t ->
  Wavefront_core.App_params.t ->
  outcome * Obs.Timeline.t
(** {!run} with a dense in-memory cell sink, assembled into the exact
    [Obs.Timeline.t] a traced run reconstructs. Materializes
    O(ranks * waves) cells — convenient below ~10^5 ranks; stream into
    [Obs.Timeline_stream] via [~cells] beyond that. *)
