(* The wave-batched backend: the same Figure-4 program and LogGP cost
   arithmetic as the timed dataflow replay, executed without fibers,
   effects or a heap of events.

   The wavefront schedule is regular enough that the precedence graph
   never has to be discovered at run time: within one sweep, a rank
   depends only on its two upstream neighbours, so the ranks of one
   anti-diagonal of the processor grid are mutually independent and the
   whole sweep is a sequence of bulk steps — advance every rank of
   diagonal d, then every rank of diagonal d+1. All state lives in flat
   preallocated structure-of-arrays: per-rank virtual clocks, per-rank
   timeline accumulators, and one LogGP delivery timestamp per
   (receiver, tile, axis) slot — a send writes the slot, the receiver
   reads it one diagonal later, and a NaN sentinel marks a message that
   was never sent (the batched reading of a dataflow fiber blocking
   forever).

   Ranks are sharded across OCaml 5 domains by contiguous row bands of
   the torus; domains synchronize only at diagonal boundaries (and at
   the staged epilogue passes). Every rank's floats depend only on its
   own perturbation streams and upstream slot values, and collective
   release points are float maxima (associative, order-independent), so
   a run is bitwise identical across domain counts.

   The epilogue (non-wavefront section) has cross-rank operations with
   no static rank order, so it is staged: each rank's epilogue is first
   executed against a recording substrate that queues its halo /
   collective calls (charging purely local work immediately), and the
   queued op lists — congruent across ranks by construction of
   [Program.epilogue] — are then resolved in lockstep, one op at a
   time: a halo is an all-sends pass then an all-receives pass; an
   allreduce releases every arrival at the maximum entry clock.

   Time arithmetic, span naming and perturbation draw order replicate
   [Dataflow]'s timed mode operation for operation, so at small sizes a
   traced batched run reconstructs into the identical
   [Obs.Timeline.t]. *)

open Wgrid

type cell_sink = rank:int -> col:int -> Obs.Timeline.cell -> unit

(* Raised internally when a rank reads a delivery slot that was never
   written: its upstream died (or got stuck) before sending. *)
exception Stuck_on of { rank : int; src : int }

type status = Alive | Done | Failed | Blocked_recv of int | Blocked_coll

type recovery = {
  policy : Perturb.Recover.policy;
  last_ckpt : int array;
  cur_wave : int array;
  revived : bool array;
  ckpts : int array;  (* per-rank, summed into the outcome *)
}

(* A queued epilogue operation (congruent across ranks). *)
type eop =
  | Ehalo of { dst : int option; src : int option; bytes : int }
  | Eallreduce of { count : int; msg_size : int }
  | Ebarrier

type bucket = Bcompute | Bsend | Brecv | Bother

type t = {
  costs : Costs.t;
  ranks : int;
  ntiles : int;
  cols : int;  (* timeline wave columns: nsweeps * ntiles *)
  msg_ew : int;
  msg_ns : int;
  faces : int * int;
      (* (msg_ew, msg_ns), preallocated: [Backend.compute] returns it
         instead of building a fresh tuple per tile, keeping the
         steady-state step allocation-free *)
  model : Perturb.Model.t option;
  recover : recovery option;
  tracer : Obs.Tracer.t option;
  sink : cell_sink option;
  (* --- SoA core --- *)
  clock : float array;  (* per-rank virtual now, us *)
  sweep : int array;  (* per-rank current sweep index *)
  finish : float array;  (* set at successful completion only *)
  status : status array;
  sent : int array;  (* per-rank messages sent / received *)
  rcvd : int array;
  (* Per-sweep delivery timestamps, indexed [dst * ntiles + tile]; NaN =
     never sent. Each slot has exactly one writer (the unique upstream
     neighbour) and one reader, a diagonal apart. *)
  dlv_x : float array;
  dlv_y : float array;
  (* --- hot-path LogGP cache --- *)
  (* The tile loop only ever messages grid neighbours with the axis'
     fixed face size, so the three per-message charges take two values
     per axis (link on-chip or off-node). [loc_bits] holds the on-chip
     bit of each (rank, dir) link, dir = axis2 + (0 if peer > rank else
     1) with axis2: X = 0, Y = 2; the tables are indexed
     [axis2 + onchip]. *)
  loc_bits : Bytes.t;
  c_send : float array;
  c_flight : float array;
  c_rovh : float array;
  (* Table-6 shared-bus interference per op (us), already folded into
     [c_send]/[c_rovh]; kept separately so the outcome can report the
     total interference charged. Zero when the costs table has the bus
     off — the caches are then bitwise-identical to the bus-free ones. *)
  bi_ew : float;
  bi_ns : float;
  bus_acc : float array;  (* per-rank accumulated bus interference *)
  (* --- streaming cell accumulators (active iff [sink] is set) --- *)
  cur_col : int array;  (* column being accumulated; -1 = none *)
  hi_col : int array;  (* highest column ever opened; -1 = none *)
  span_end : float array;  (* end of the rank's last span *)
  col_start : float array;
  acc_compute : float array;
  acc_send : float array;
  acc_recv : float array;
  acc_wait : float array;
  acc_spans : int array;
  (* --- staged epilogue --- *)
  mutable recording : bool;  (* halo/collective hooks queue instead *)
  eops : eop list array;  (* reversed op queue, per rank *)
  eop_t0 : float array;  (* clock at the current op's start *)
  halo_dlv : float array;  (* per-receiver delivery slot for one halo op *)
}

(* --- spans and cells --- *)

let wave t ~rank ~tile = (t.sweep.(rank) * t.ntiles) + tile

let emit t ~rank ~name ~cat ~start args =
  match t.tracer with
  | None -> ()
  | Some tr ->
      Obs.Tracer.record tr ~cat ~args ~rank ~start
        ~dur:(t.clock.(rank) -. start) name

(* The streaming counterpart of [Obs.Timeline.of_spans] for the
   contiguous traces this backend produces: per-rank spans partition
   [start, finish] with no gaps or overlaps, so a column's window runs
   from its first span's start to the next column's first span start,
   idle is zero, and [other] is the exact remainder. One cell is emitted
   per (rank, column) visit, on the transition to the next column. *)
let close_cell t ~rank ~t_end =
  let col = t.cur_col.(rank) in
  if col >= 0 then begin
    match t.sink with
    | None -> ()
    | Some sink ->
        let t_start = t.col_start.(rank) in
        let compute = t.acc_compute.(rank)
        and send = t.acc_send.(rank)
        and recv = t.acc_recv.(rank)
        and wait = t.acc_wait.(rank) in
        let other = t_end -. t_start -. compute -. send -. recv -. wait in
        sink ~rank ~col
          {
            Obs.Timeline.t_start;
            t_end;
            compute;
            send;
            recv;
            wait;
            other;
            idle = 0.0;
            spans = t.acc_spans.(rank);
          };
        t.cur_col.(rank) <- -1;
        t.acc_compute.(rank) <- 0.0;
        t.acc_send.(rank) <- 0.0;
        t.acc_recv.(rank) <- 0.0;
        t.acc_wait.(rank) <- 0.0;
        t.acc_spans.(rank) <- 0
  end

let cell_note t ~rank ~col ~t0 ~dur ~bucket ~wait =
  match t.sink with
  | None -> ()
  | Some _ ->
      if t.cur_col.(rank) <> col then begin
        close_cell t ~rank ~t_end:t0;
        t.cur_col.(rank) <- col;
        t.hi_col.(rank) <- max t.hi_col.(rank) col;
        t.col_start.(rank) <- t0
      end;
      (match bucket with
      | Bcompute -> t.acc_compute.(rank) <- t.acc_compute.(rank) +. dur
      | Bsend ->
          t.acc_send.(rank) <- t.acc_send.(rank) +. (dur -. wait);
          t.acc_wait.(rank) <- t.acc_wait.(rank) +. wait
      | Brecv ->
          t.acc_recv.(rank) <- t.acc_recv.(rank) +. (dur -. wait);
          t.acc_wait.(rank) <- t.acc_wait.(rank) +. wait
      | Bother -> ());
      t.acc_spans.(rank) <- t.acc_spans.(rank) + 1;
      t.span_end.(rank) <- t0 +. dur

(* Close the open cell and pad every never-visited column with the
   zero-width cell [of_spans] backfills at the rank's finish — the end
   of its last span, which for a rank stuck inside a staged halo is
   earlier than its clock (the uncovered send time a blocked fiber also
   never surfaces as a span). *)
let finish_cells t ~rank =
  match t.sink with
  | None -> ()
  | Some sink ->
      let now = t.span_end.(rank) in
      close_cell t ~rank ~t_end:now;
      for col = t.hi_col.(rank) + 1 to t.cols do
        sink ~rank ~col (Obs.Timeline.zero_cell now)
      done

(* A clock advance plus its span and cell bookkeeping. *)
let charge t ~rank ~name ~cat ~col ~bucket ?(wait = 0.0) ~args d =
  let t0 = t.clock.(rank) in
  t.clock.(rank) <- t0 +. d;
  emit t ~rank ~name ~cat ~start:t0 args;
  cell_note t ~rank ~col ~t0 ~dur:d ~bucket ~wait

let wave_args w = [ (Obs.Timeline.wave_arg, Obs.Span.Int w) ]

let epilogue_args =
  [ (Obs.Timeline.wave_arg, Obs.Span.Int Obs.Timeline.epilogue_wave) ]

(* --- the substrate --- *)

module Backend = struct
  type nonrec t = t
  type payload = int  (* the face's modeled byte size *)

  let boundary _ ~rank:_ ~axis:_ ~h:_ = 0

  (* The span arg lists (and the cell float boxing behind them) are only
     built when a tracer or cell sink is attached; the bare simulation
     path is clock arithmetic on flat arrays alone. *)
  let observed t = t.tracer != None || t.sink != None

  let link_onchip t ~rank ~peer ~axis2 =
    Char.code
      (Bytes.unsafe_get t.loc_bits
         ((rank * 4) + axis2 + if peer > rank then 0 else 1))

  let recv t ~rank ~src ~axis ~tile ~h:_ ~bytes =
    let t0 = t.clock.(rank) in
    let axis2 = match axis with Substrate.X -> 0 | Y -> 2 in
    let dlv = if axis2 = 0 then t.dlv_x else t.dlv_y in
    let delivered = dlv.((rank * t.ntiles) + tile) in
    (* open-coded nan test and max: [Float.is_nan]/[Float.max] are calls
       that box their float arguments under classic ocamlopt, and this is
       the per-message hot path the zero-alloc gate measures *)
    if delivered <> delivered then raise (Stuck_on { rank; src });
    let wait = delivered -. t0 in
    let wait = if wait > 0.0 then wait else 0.0 in
    t.clock.(rank) <-
      t0 +. wait +. t.c_rovh.(axis2 + link_onchip t ~rank ~peer:src ~axis2);
    t.rcvd.(rank) <- t.rcvd.(rank) + 1;
    t.bus_acc.(rank) <-
      t.bus_acc.(rank) +. (if axis2 = 0 then t.bi_ew else t.bi_ns);
    if observed t then begin
      let w = wave t ~rank ~tile in
      emit t ~rank ~name:"recv" ~cat:"comm" ~start:t0
        [
          ("src", Obs.Span.Int src);
          ("size", Obs.Span.Int bytes);
          ("wait", Obs.Span.Float wait);
          (Obs.Timeline.wave_arg, Obs.Span.Int w);
        ];
      cell_note t ~rank ~col:w ~t0 ~dur:(t.clock.(rank) -. t0) ~bucket:Brecv
        ~wait
    end;
    bytes

  let send t ~rank ~dst ~axis ~tile bytes =
    (match t.model with
    | None -> ()
    | Some m ->
        let d = Perturb.Model.link_extra m ~src:rank in
        if d > 0.0 then begin
          let w = wave t ~rank ~tile in
          charge t ~rank ~name:"perturb.link" ~cat:"comm" ~col:w
            ~bucket:Bother
            ~args:(("wait", Obs.Span.Float d) :: wave_args w)
            d
        end);
    let t0 = t.clock.(rank) in
    let axis2 = match axis with Substrate.X -> 0 | Y -> 2 in
    let onchip = link_onchip t ~rank ~peer:dst ~axis2 in
    t.clock.(rank) <- t0 +. t.c_send.(axis2 + onchip);
    let delivered = t.clock.(rank) +. t.c_flight.(axis2 + onchip) in
    let dlv = if axis2 = 0 then t.dlv_x else t.dlv_y in
    dlv.((dst * t.ntiles) + tile) <- delivered;
    t.sent.(rank) <- t.sent.(rank) + 1;
    t.bus_acc.(rank) <-
      t.bus_acc.(rank) +. (if axis2 = 0 then t.bi_ew else t.bi_ns);
    if observed t then begin
      let w = wave t ~rank ~tile in
      emit t ~rank ~name:"send" ~cat:"comm" ~start:t0
        [
          ("dst", Obs.Span.Int dst);
          ("size", Obs.Span.Int bytes);
          ("wait", Obs.Span.Float 0.0);
          (Obs.Timeline.wave_arg, Obs.Span.Int w);
        ];
      cell_note t ~rank ~col:w ~t0 ~dur:(t.clock.(rank) -. t0) ~bucket:Bsend
        ~wait:0.0
    end

  let recover_in_place t ~rank ~tile r =
    (match t.model with
    | Some m -> Perturb.Model.revive m ~rank
    | None -> ());
    r.revived.(rank) <- true;
    let w = wave t ~rank ~tile in
    let args = wave_args w in
    let lost = r.cur_wave.(rank) - r.last_ckpt.(rank) in
    let ch name d =
      if d > 0.0 then
        charge t ~rank ~name ~cat:"recover" ~col:w ~bucket:Bother ~args d
    in
    ch "recover.restart" r.policy.restart_cost;
    ch "recover.replay"
      (float_of_int lost
      *. (Costs.compute t.costs +. Costs.precompute t.costs))

  let compute t ~rank ~dir:_ ~tile ~h:_ ~x:_ ~y:_ =
    (match t.model with
    | Some m when Perturb.Model.fails_now m ~rank -> (
        match t.recover with
        | Some r -> recover_in_place t ~rank ~tile r
        | None -> raise (Perturb.Model.Killed { rank; tile }))
    | _ -> ());
    let work = Costs.compute t.costs in
    let t0 = t.clock.(rank) in
    t.clock.(rank) <- t0 +. work;
    if observed t then begin
      let w = wave t ~rank ~tile in
      emit t ~rank ~name:"compute" ~cat:"compute" ~start:t0 (wave_args w);
      cell_note t ~rank ~col:w ~t0 ~dur:work ~bucket:Bcompute ~wait:0.0
    end;
    (match t.model with
    | None -> ()
    | Some m ->
        let w = wave t ~rank ~tile in
        let args = if t.tracer != None then wave_args w else [] in
        let ch name d =
          if d > 0.0 then
            charge t ~rank ~name ~cat:"compute" ~col:w ~bucket:Bcompute ~args
              d
        in
        ch "perturb.noise" (Perturb.Model.noise_extra m ~rank ~work);
        ch "perturb.straggler" (Perturb.Model.straggler_delay m ~rank);
        ch "perturb.pulse" (Perturb.Model.pulse_extra m ~rank);
        ch "perturb.periodic" (Perturb.Model.periodic_extra m ~rank));
    t.faces

  let precompute t ~rank ~tile =
    let d = Costs.precompute t.costs in
    if d > 0.0 then begin
      let t0 = t.clock.(rank) in
      t.clock.(rank) <- t0 +. d;
      if observed t then begin
        let w = wave t ~rank ~tile in
        emit t ~rank ~name:"precompute" ~cat:"compute" ~start:t0
          (wave_args w);
        cell_note t ~rank ~col:w ~t0 ~dur:d ~bucket:Bcompute ~wait:0.0
      end
    end

  let sweep_begin t ~rank ~sweep ~dir:_ = t.sweep.(rank) <- sweep

  let tile_begin t ~rank ~pos ~wave:gwave =
    match t.recover with
    | None -> ()
    | Some r ->
        r.cur_wave.(rank) <- gwave;
        if Perturb.Recover.due ~interval:r.policy.interval ~wave:gwave
        then begin
          r.ckpts.(rank) <- r.ckpts.(rank) + 1;
          r.last_ckpt.(rank) <- gwave;
          let d = r.policy.ckpt_cost in
          if d > 0.0 then begin
            let w = wave t ~rank ~tile:pos.Substrate.tile in
            charge t ~rank ~name:"recover.checkpoint" ~cat:"recover" ~col:w
              ~bucket:Bother ~args:(wave_args w) d
          end
        end

  let fixed_work t ~rank d =
    if d > 0.0 then
      charge t ~rank ~name:"compute" ~cat:"compute" ~col:t.cols
        ~bucket:Bcompute ~args:epilogue_args d

  let stencil_compute t ~rank ~wg_stencil =
    let d = Costs.stencil t.costs ~wg_stencil in
    if d > 0.0 then
      charge t ~rank ~name:"compute" ~cat:"compute" ~col:t.cols
        ~bucket:Bcompute ~args:epilogue_args d

  (* The cross-rank epilogue operations are queued during the recording
     pass and resolved by the staged driver below; [Program.epilogue]
     guarantees every rank queues a congruent sequence. *)
  let halo t ~rank ~dst ~src ~bytes =
    assert t.recording;
    t.eops.(rank) <- Ehalo { dst; src; bytes } :: t.eops.(rank)

  let allreduce t ~rank ~count ~msg_size =
    assert t.recording;
    t.eops.(rank) <- Eallreduce { count; msg_size } :: t.eops.(rank)

  let barrier t ~rank =
    assert t.recording;
    t.eops.(rank) <- Ebarrier :: t.eops.(rank)

  let finish t ~rank = t.finish.(rank) <- t.clock.(rank)
end

(* --- the domain pool --- *)

(* A persistent spinning worker pool: stages are short (one diagonal,
   one epilogue pass), so parked-thread wakeups would dominate; workers
   spin on an epoch counter with [Domain.cpu_relax] instead. Publication
   of the job closure happens before the epoch store, so the atomic
   acquire on the worker side orders the plain read after it. *)
module Pool = struct
  type pool = {
    n : int;
    job : (int -> unit) ref;
    epoch : int Atomic.t;
    finished : int Atomic.t;
    stop : bool Atomic.t;
    error : exn option Atomic.t;
    mutable workers : unit Domain.t list;
  }

  let worker p idx =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      while Atomic.get p.epoch = !seen && not (Atomic.get p.stop) do
        Domain.cpu_relax ()
      done;
      if Atomic.get p.stop then running := false
      else begin
        seen := Atomic.get p.epoch;
        (try !(p.job) idx
         with e ->
           ignore (Atomic.compare_and_set p.error None (Some e)));
        Atomic.incr p.finished
      end
    done

  let create n =
    let p =
      {
        n;
        job = ref (fun _ -> ());
        epoch = Atomic.make 0;
        finished = Atomic.make 0;
        stop = Atomic.make false;
        error = Atomic.make None;
        workers = [];
      }
    in
    if n > 1 then
      p.workers <-
        List.init (n - 1) (fun i -> Domain.spawn (fun () -> worker p (i + 1)));
    p

  let run p f =
    if p.n = 1 then f 0
    else begin
      p.job := f;
      Atomic.set p.finished 0;
      Atomic.incr p.epoch;
      (try f 0
       with e -> ignore (Atomic.compare_and_set p.error None (Some e)));
      while Atomic.get p.finished < p.n - 1 do
        Domain.cpu_relax ()
      done;
      match Atomic.get p.error with
      | Some e ->
          Atomic.set p.error None;
          raise e
      | None -> ()
    end

  let shutdown p =
    Atomic.set p.stop true;
    List.iter Domain.join p.workers;
    p.workers <- []
end

(* --- diagonal schedules --- *)

(* For one sweep flow (dx, dy) and one domain's row band: the band's
   ranks permuted into anti-diagonal order with per-diagonal offsets.
   Diagonal d of flow (dx, dy) holds the ranks at distance d from the
   origin corner; ranks within one diagonal are mutually independent. *)
let diag_schedule pg ~dx ~dy ~row_lo ~row_hi =
  let cols = pg.Proc_grid.cols and rows = pg.Proc_grid.rows in
  let ndiag = cols + rows - 1 in
  let diag_of rank =
    let i, j = Proc_grid.coords pg rank in
    (if dx > 0 then i - 1 else cols - i)
    + if dy > 0 then j - 1 else rows - j
  in
  let lo = row_lo * cols and hi = row_hi * cols in
  let count = Array.make (ndiag + 1) 0 in
  for rank = lo to hi - 1 do
    let d = diag_of rank in
    count.(d + 1) <- count.(d + 1) + 1
  done;
  for d = 1 to ndiag do
    count.(d) <- count.(d) + count.(d - 1)
  done;
  let offsets = Array.copy count in
  let perm = Array.make (max 1 (hi - lo)) 0 in
  let fill = Array.copy count in
  for rank = lo to hi - 1 do
    let d = diag_of rank in
    perm.(fill.(d)) <- rank;
    fill.(d) <- fill.(d) + 1
  done;
  (ndiag, perm, offsets)

(* --- outcome --- *)

type outcome = {
  ranks : int;
  completed : bool;
  elapsed : float;  (** max finish clock over completed ranks, us *)
  iterations : int;
  per_iteration : float;
  waves : int;  (** timeline wave columns ([nsweeps * ntiles]) *)
  blocked : (int * string) list;
  failed : int list;
  recovered : int list;
  checkpoints : int;
  messages : int;
  orphaned : int;
  bus_wait : float;
      (** total Table-6 bus interference charged across all ranks, us
          (0 when [Costs.model_bus costs] is false) *)
  finish : float array;
}

let pp_outcome ppf (o : outcome) =
  if o.completed then
    Fmt.pf ppf "%d ranks completed in %.1f us, %d messages%s" o.ranks
      o.elapsed o.messages
      (if o.recovered = [] then ""
       else Fmt.str ", %d recovered" (List.length o.recovered))
  else if o.failed <> [] then
    Fmt.pf ppf
      "DEGRADED: rank(s) %s killed, %d of %d stuck, %d orphaned message(s)"
      (String.concat ", " (List.map string_of_int o.failed))
      (List.length o.blocked) o.ranks o.orphaned
  else
    Fmt.pf ppf "DEADLOCK: %d of %d ranks stuck" (List.length o.blocked)
      o.ranks

(* --- the driver --- *)

let substrate : (t, int) Substrate.s = (module Backend)

(* Build the flat engine state for one program configuration; shared by
   [run] and the [Steady] telemetry probe so both exercise the identical
   hot-path caches. *)
let make_state ~perturb ~recover ~obs ~cells ~costs pg
    (cfg : Program.config) =
  let ranks = Proc_grid.cores pg in
  let rows = pg.Proc_grid.rows and cols = pg.Proc_grid.cols in
  let ntiles = cfg.Program.tiling.Program.ntiles in
  let nsweeps = List.length (Sweeps.Schedule.sweeps cfg.Program.schedule) in
  (* One locality probe per grid link at setup; the tile loop then never
     touches the node-rectangle arithmetic. *)
  let loc_bits = Bytes.make (ranks * 4) '\000' in
  for rank = 0 to ranks - 1 do
    let i, j = Proc_grid.coords pg rank in
    let set d peer =
      match Costs.locality costs ~src:rank ~dst:peer with
      | Loggp.Comm_model.On_chip ->
          Bytes.set loc_bits ((rank * 4) + d) '\001'
      | Off_node -> ()
    in
    if i < cols then set 0 (rank + 1);
    if i > 1 then set 1 (rank - 1);
    if j < rows then set 2 (rank + cols);
    if j > 1 then set 3 (rank - cols)
  done;
  let per_link f =
    [|
      f Loggp.Comm_model.Off_node cfg.Program.msg_ew;
      f Loggp.Comm_model.On_chip cfg.Program.msg_ew;
      f Loggp.Comm_model.Off_node cfg.Program.msg_ns;
      f Loggp.Comm_model.On_chip cfg.Program.msg_ns;
    |]
  in
  (* Fold the Table-6 interference into the per-(axis, locality) charge
     caches — the hot path then pays the bus model nothing. The paper's
     closed form charges the coefficient regardless of the link's own
     locality (its (r4) stance: the contenders are the node's *other*
     cores' DMA transfers), so both columns of an axis get the same
     term. Gated so the bus-off caches stay bitwise-identical. *)
  let bi_ew = Costs.bus_ew costs and bi_ns = Costs.bus_ns costs in
  let add_bus a =
    if Costs.model_bus costs then
      [| a.(0) +. bi_ew; a.(1) +. bi_ew; a.(2) +. bi_ns; a.(3) +. bi_ns |]
    else a
  in
  {
    costs;
    ranks;
    ntiles;
    cols = nsweeps * ntiles;
    msg_ew = cfg.Program.msg_ew;
    msg_ns = cfg.Program.msg_ns;
    faces = (cfg.Program.msg_ew, cfg.Program.msg_ns);
    model = Option.map (Perturb.Model.create ~ranks) perturb;
    recover =
      (match recover with
      | Some p when Perturb.Recover.enabled p ->
          Some
            {
              policy = p;
              last_ckpt = Array.make ranks 0;
              cur_wave = Array.make ranks 0;
              revived = Array.make ranks false;
              ckpts = Array.make ranks 0;
            }
      | _ -> None);
    tracer = obs;
    sink = cells;
    clock = Array.make ranks 0.0;
    sweep = Array.make ranks 0;
    finish = Array.make ranks 0.0;
    status = Array.make ranks Alive;
    sent = Array.make ranks 0;
    rcvd = Array.make ranks 0;
    dlv_x = Array.make (ranks * ntiles) nan;
    dlv_y = Array.make (ranks * ntiles) nan;
    loc_bits;
    c_send = add_bus (per_link (Costs.send_busy_at costs));
    c_flight = per_link (Costs.in_flight_at costs);
    c_rovh = add_bus (per_link (fun loc _ -> Costs.recv_overhead_at costs loc));
    bi_ew;
    bi_ns;
    bus_acc = Array.make ranks 0.0;
    cur_col = Array.make ranks (-1);
    hi_col = Array.make ranks (-1);
    span_end = Array.make ranks 0.0;
    col_start = Array.make ranks 0.0;
    acc_compute = Array.make ranks 0.0;
    acc_send = Array.make ranks 0.0;
    acc_recv = Array.make ranks 0.0;
    acc_wait = Array.make ranks 0.0;
    acc_spans = Array.make ranks 0;
    recording = false;
    eops = Array.make ranks [];
    eop_t0 = Array.make ranks 0.0;
    halo_dlv = Array.make ranks nan;
  }

let run ?(iterations = 1) ?tiling ?perturb ?recover ?obs ?cells
    ?(domains = 1) ~costs pg (app : Wavefront_core.App_params.t) =
  if domains < 1 then invalid_arg "Batched.run: domains must be >= 1";
  if domains > 1 && obs <> None then
    invalid_arg "Batched.run: span tracing requires domains = 1";
  let cfg = Program.of_app ~iterations ?tiling pg app in
  let ranks = Proc_grid.cores pg in
  let rows = pg.Proc_grid.rows and cols = pg.Proc_grid.cols in
  let domains = min domains rows in
  let ntiles = cfg.Program.tiling.Program.ntiles in
  let sweeps = Sweeps.Schedule.sweeps cfg.Program.schedule in
  let t = make_state ~perturb ~recover ~obs ~cells ~costs pg cfg in
  (* Row bands: domain k owns 0-based rows [k*rows/domains,
     (k+1)*rows/domains), i.e. the contiguous rank range [band k]. *)
  let band k = (k * rows / domains * cols, (k + 1) * rows / domains * cols) in
  (* Per-(flow, domain) diagonal schedules, built lazily on the main
     domain (at most 4 distinct flows per schedule). *)
  let schedules = Hashtbl.create 4 in
  let schedule_for (dx, dy) =
    let key = ((if dx > 0 then 0 else 1) * 2) + if dy > 0 then 0 else 1 in
    match Hashtbl.find_opt schedules key with
    | Some s -> s
    | None ->
        let s =
          Array.init domains (fun k ->
              let lo, hi = band k in
              diag_schedule pg ~dx ~dy ~row_lo:(lo / cols)
                ~row_hi:(hi / cols))
        in
        Hashtbl.add schedules key s;
        s
  in
  let pool = Pool.create domains in
  let alive rank = match t.status.(rank) with Alive -> true | _ -> false in
  (* One rank, one sweep segment: the whole tile loop of sweep [s],
     epilogue and finish excluded. *)
  let run_segment ~iter ~s rank =
    try
      Program.run_rank
        ~from:{ Substrate.iteration = iter; sweep = s; tile = 0 }
        ~until:{ Substrate.iteration = iter; sweep = s + 1; tile = 0 }
        substrate t cfg rank
    with
    | Stuck_on { rank; src } -> t.status.(rank) <- Blocked_recv src
    | Perturb.Model.Killed { rank; _ } -> t.status.(rank) <- Failed
  in
  let each_banded f =
    Pool.run pool (fun k ->
        let lo, hi = band k in
        for rank = lo to hi - 1 do
          f rank
        done)
  in
  (* --- staged epilogue resolution --- *)
  let all_present () =
    let ok = ref true in
    for rank = 0 to ranks - 1 do
      if not (alive rank) then ok := false
    done;
    !ok
  in
  let resolve_halo ~dst ~bytes_of ~src_of =
    (* Pass 1: every live rank stamps its op start and performs its send
       (delivery computed from the sender's clock alone). *)
    each_banded (fun rank -> t.halo_dlv.(rank) <- nan);
    each_banded (fun rank ->
        if alive rank then begin
          t.eop_t0.(rank) <- t.clock.(rank);
          match dst rank with
          | Some d ->
              let bytes = bytes_of rank in
              let t0 = t.clock.(rank) in
              t.clock.(rank) <-
                t0 +. Costs.send_busy t.costs ~src:rank ~dst:d bytes;
              t.halo_dlv.(d) <-
                t.clock.(rank)
                +. Costs.in_flight t.costs ~src:rank ~dst:d bytes;
              t.sent.(rank) <- t.sent.(rank) + 1
          | None -> ()
        end);
    (* Pass 2: every live rank receives (or gets stuck on a missing
       delivery) and emits the whole op's span. *)
    each_banded (fun rank ->
        if alive rank then begin
          let stuck = ref false in
          (match src_of rank with
          | Some s ->
              let t0 = t.clock.(rank) in
              let delivered = t.halo_dlv.(rank) in
              if Float.is_nan delivered then begin
                t.status.(rank) <- Blocked_recv s;
                stuck := true
              end
              else begin
                let wait = Float.max 0.0 (delivered -. t0) in
                t.clock.(rank) <-
                  t0 +. wait +. Costs.recv_overhead t.costs ~src:s ~dst:rank;
                t.rcvd.(rank) <- t.rcvd.(rank) + 1
              end
          | None -> ());
          if (not !stuck) && (dst rank <> None || src_of rank <> None)
          then begin
            let t0 = t.eop_t0.(rank) in
            emit t ~rank ~name:"halo" ~cat:"comm" ~start:t0
              (("wait", Obs.Span.Float (t.clock.(rank) -. t0))
              :: epilogue_args);
            cell_note t ~rank ~col:t.cols ~t0 ~dur:(t.clock.(rank) -. t0)
              ~bucket:Bother ~wait:0.0
          end
        end)
  in
  let resolve_collective ~name ~collnoise ~count ~cost =
    (* Entry: charge the collective-noise stall (one draw per call, as
       in the fiber substrates) and record the entry clock. *)
    each_banded (fun rank ->
        if alive rank then begin
          (match (collnoise, t.model) with
          | true, Some m ->
              let d = Perturb.Model.coll_extra m ~rank in
              if d > 0.0 then
                charge t ~rank ~name:"perturb.collnoise" ~cat:"comm"
                  ~col:t.cols ~bucket:Bother
                  ~args:(("wait", Obs.Span.Float d) :: epilogue_args)
                  d
          | _ -> ());
          t.eop_t0.(rank) <- t.clock.(rank)
        end);
    if not (all_present ()) then
      (* A dead or stuck rank never arrives, so the rendezvous never
         releases: every arrival parks forever, clock frozen at entry. *)
      each_banded (fun rank ->
          if alive rank then t.status.(rank) <- Blocked_coll)
    else begin
      (* Release at the maximum entry clock; [count] back-to-back
         rounds release in lockstep after the first. The max is an
         associative, commutative float fold, so the per-domain partial
         maxima combine identically for every domain count. *)
      let partial = Array.make domains neg_infinity in
      Pool.run pool (fun k ->
          let lo, hi = band k in
          let m = ref neg_infinity in
          for rank = lo to hi - 1 do
            m := Float.max !m t.eop_t0.(rank)
          done;
          partial.(k) <- !m);
      let release = Array.fold_left Float.max neg_infinity partial in
      each_banded (fun rank ->
          if alive rank then begin
            let t0 = t.eop_t0.(rank) in
            t.clock.(rank) <- release +. (float_of_int count *. cost);
            emit t ~rank ~name ~cat:"comm" ~start:t0
              (("wait", Obs.Span.Float (t.clock.(rank) -. t0))
              :: epilogue_args);
            cell_note t ~rank ~col:t.cols ~t0 ~dur:(t.clock.(rank) -. t0)
              ~bucket:Bother ~wait:0.0
          end)
    end
  in
  let run_epilogue ~iter:_ =
    match cfg.Program.nonwavefront with
    | Wavefront_core.App_params.No_op -> ()
    | _ ->
        t.recording <- true;
        each_banded (fun rank ->
            if alive rank then begin
              t.eops.(rank) <- [];
              Program.epilogue substrate t cfg rank
            end);
        t.recording <- false;
        (* The op sequences are congruent across ranks; read the shape
           from any live rank and resolve op by op. *)
        let shape = ref [] in
        (try
           for rank = 0 to ranks - 1 do
             if alive rank then begin
               shape := List.rev t.eops.(rank);
               raise Exit
             end
           done
         with Exit -> ());
        List.iteri
          (fun k op ->
            let op_of rank = List.nth (List.rev t.eops.(rank)) k in
            match op with
            | Ehalo _ ->
                resolve_halo
                  ~dst:(fun rank ->
                    match op_of rank with
                    | Ehalo { dst; _ } -> dst
                    | _ -> None)
                  ~bytes_of:(fun rank ->
                    match op_of rank with
                    | Ehalo { bytes; _ } -> bytes
                    | _ -> 0)
                  ~src_of:(fun rank ->
                    match op_of rank with
                    | Ehalo { src; _ } -> src
                    | _ -> None)
            | Eallreduce { count; msg_size } ->
                resolve_collective ~name:"allreduce" ~collnoise:true ~count
                  ~cost:(Costs.allreduce t.costs ~count:1 ~msg_size)
            | Ebarrier ->
                resolve_collective ~name:"barrier" ~collnoise:false ~count:1
                  ~cost:(Costs.barrier t.costs))
          !shape
  in
  (* --- main loop: sweeps in schedule order, diagonals in flow order --- *)
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for iter = 1 to iterations do
        List.iteri
          (fun s sw ->
            (* Reset the sweep's delivery slots before any send. *)
            Pool.run pool (fun k ->
                let lo, hi = band k in
                Array.fill t.dlv_x (lo * ntiles) ((hi - lo) * ntiles) nan;
                Array.fill t.dlv_y (lo * ntiles) ((hi - lo) * ntiles) nan);
            let dx, dy = Program.flow_xy pg sw.Sweeps.Schedule.origin in
            let sched = schedule_for (dx, dy) in
            let ndiag, _, _ = sched.(0) in
            for d = 0 to ndiag - 1 do
              Pool.run pool (fun k ->
                  let _, perm, offsets = sched.(k) in
                  for idx = offsets.(d) to offsets.(d + 1) - 1 do
                    let rank = perm.(idx) in
                    if alive rank then run_segment ~iter ~s rank
                  done)
            done)
          sweeps;
        run_epilogue ~iter
      done;
      (* Completion: finish clocks for ranks that ran the whole program,
         cell flush for everyone. *)
      each_banded (fun rank ->
          (match t.status.(rank) with
          | Alive ->
              Backend.finish t ~rank;
              t.status.(rank) <- Done
          | _ -> ());
          finish_cells t ~rank));
  (* --- outcome --- *)
  let blocked = ref [] and failed = ref [] and recovered = ref [] in
  for rank = ranks - 1 downto 0 do
    (match t.status.(rank) with
    | Blocked_recv src ->
        blocked :=
          (rank, Fmt.str "blocked receiving from rank %d" src) :: !blocked
    | Blocked_coll -> blocked := (rank, "blocked in a collective") :: !blocked
    | Failed -> failed := rank :: !failed
    | Alive | Done -> ());
    match t.recover with
    | Some r when r.revived.(rank) -> recovered := rank :: !recovered
    | _ -> ()
  done;
  let completed = !blocked = [] && !failed = [] in
  let elapsed = Array.fold_left Float.max 0.0 t.finish in
  let sum a = Array.fold_left ( + ) 0 a in
  {
    ranks;
    completed;
    elapsed;
    iterations;
    per_iteration = elapsed /. float_of_int iterations;
    waves = t.cols;
    blocked = !blocked;
    failed = !failed;
    recovered = !recovered;
    checkpoints =
      (match t.recover with None -> 0 | Some r -> sum r.ckpts);
    messages = sum t.sent;
    orphaned = sum t.sent - sum t.rcvd;
    bus_wait = Array.fold_left ( +. ) 0.0 t.bus_acc;
    finish = t.finish;
  }

(* A small-scale convenience: run with a dense cell sink and assemble
   the exact [Obs.Timeline.t] the traced substrates reconstruct via
   [of_spans]. Materializes O(ranks * waves) cells — for analytics at
   scale, stream into [Obs.Timeline_stream] via [~cells] instead. *)
let run_timeline ?iterations ?tiling ?perturb ?recover ?domains ~costs pg app
    =
  let ranks = Proc_grid.cores pg in
  let cells_acc = ref [||] in
  let cells ~rank ~col (c : Obs.Timeline.cell) =
    let rows = !cells_acc in
    let prev = rows.(rank).(col) in
    (* Merge repeat visits (iterations > 1): totals add, the window
       spans the union — the streaming contract. *)
    rows.(rank).(col) <-
      (if prev.Obs.Timeline.spans = 0 && Obs.Timeline.cell_width prev = 0.0
       then c
       else
         {
           Obs.Timeline.t_start = Float.min prev.t_start c.t_start;
           t_end = Float.max prev.t_end c.t_end;
           compute = prev.compute +. c.compute;
           send = prev.send +. c.send;
           recv = prev.recv +. c.recv;
           wait = prev.wait +. c.wait;
           other = prev.other +. c.other;
           idle = prev.idle +. c.idle;
           spans = prev.spans + c.spans;
         })
  in
  (* Column count depends on the app's tiling; compute it the same way
     [run] does. *)
  let cfg = Program.of_app ?iterations ?tiling pg app in
  let cols =
    List.length (Sweeps.Schedule.sweeps cfg.Program.schedule)
    * cfg.Program.tiling.Program.ntiles
  in
  cells_acc :=
    Array.init ranks (fun _ ->
        Array.make (cols + 1) (Obs.Timeline.zero_cell 0.0));
  let o =
    run ?iterations ?tiling ?perturb ?recover ~cells ?domains ~costs pg app
  in
  let start = Array.map (fun row -> row.(0).Obs.Timeline.t_start) !cells_acc in
  let finish =
    Array.map
      (fun row ->
        Array.fold_left
          (fun a (c : Obs.Timeline.cell) -> Float.max a c.t_end)
          0.0 row)
      !cells_acc
  in
  let tl =
    {
      Obs.Timeline.ranks;
      waves = cols;
      cells = !cells_acc;
      t0 = Array.fold_left Float.min (if ranks > 0 then start.(0) else 0.0)
          start;
      start;
      finish;
      dropped = 0;
    }
  in
  (o, tl)

(* --- the steady-state telemetry probe --- *)

(* An interior rank of a live engine state, stepped through the exact
   per-tile backend op sequence of the wavefront section — precompute,
   the two upstream receives, compute, the two downstream sends — over
   and over, with its delivery slots re-primed before each step. This is
   the repeatable form of the engine's steady-state work the zero-alloc
   gate measures: unobserved (no tracer, no sink, no perturbation), one
   step advances only the rank's clock and flat-array slots. *)
module Steady = struct
  type nonrec probe = {
    state : t;
    rank : int;
    west : int;
    north : int;
    east : int;
    south : int;
  }

  (* Static so a step passes an existing tuple, not a fresh one. *)
  let flow = (1, 1, 1)

  let probe ~costs pg (app : Wavefront_core.App_params.t) =
    let cols = pg.Proc_grid.cols and rows = pg.Proc_grid.rows in
    if cols < 3 || rows < 3 then
      invalid_arg "Batched.Steady.probe: the grid must be at least 3x3";
    let cfg = Program.of_app pg app in
    let state =
      make_state ~perturb:None ~recover:None ~obs:None ~cells:None ~costs
        pg cfg
    in
    let rank = Proc_grid.rank pg ((cols / 2) + 1, (rows / 2) + 1) in
    {
      state;
      rank;
      west = rank - 1;
      north = rank - cols;
      east = rank + 1;
      south = rank + cols;
    }

  let step p =
    let t = p.state in
    let rank = p.rank in
    let slot = rank * t.ntiles in
    (* Re-prime tile 0's delivery slots as if both upstream neighbours
       had just sent: zero wait, same arithmetic as a mid-sweep rank. *)
    let now = t.clock.(rank) in
    t.dlv_x.(slot) <- now;
    t.dlv_y.(slot) <- now;
    Backend.tile_begin t ~rank ~pos:Substrate.start_position ~wave:0;
    Backend.precompute t ~rank ~tile:0;
    let x =
      Backend.recv t ~rank ~src:p.west ~axis:Substrate.X ~tile:0 ~h:0
        ~bytes:t.msg_ew
    in
    let y =
      Backend.recv t ~rank ~src:p.north ~axis:Substrate.Y ~tile:0 ~h:0
        ~bytes:t.msg_ns
    in
    let fx, fy = Backend.compute t ~rank ~dir:flow ~tile:0 ~h:0 ~x ~y in
    Backend.send t ~rank ~dst:p.east ~axis:Substrate.X ~tile:0 fx;
    Backend.send t ~rank ~dst:p.south ~axis:Substrate.Y ~tile:0 fy

  let clock p = p.state.clock.(p.rank)
  let messages p = p.state.sent.(p.rank) + p.state.rcvd.(p.rank)
end
