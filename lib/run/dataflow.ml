(* The reference dataflow backend: execute the schedule's precedence graph
   deterministically, with no event simulation and no domains.

   Every rank is an effect-based fiber (OCaml 5 one-shot continuations); a
   blocking receive on an empty channel suspends the fiber, a send wakes
   the waiting receiver, and a single FIFO run queue makes the interleaving
   deterministic. There is no clock: the only thing this backend computes
   is whether the program's blocking communication order is consistent —
   which makes it a fast deadlock/schedule validator and a message-sequence
   oracle at rank counts (100K+) where even the event-level simulator is
   expensive. When the run queue drains with unfinished ranks, the program
   has deadlocked and each stuck rank reports what it was blocked on.

   Perturbation (a Perturb.Spec.t) maps onto the clockless scheduler
   logically: a straggler rank's tasks go to a deferred queue that only
   drains when every other rank is blocked or done — the most adversarial
   legal ordering, so a completed run proves the precedence graph tolerates
   that rank always arriving last — and a spec'd failure ends the rank's
   fiber at its chosen tile, after which the outcome reports who starved
   and which sent messages were orphaned in flight. *)

open Wgrid

type msg = { axis : Substrate.axis; tile : int; bytes : int }

type outcome = {
  ranks : int;
  completed : bool;
  blocked : (int * string) list;
      (** stuck ranks and what each was waiting on (empty iff completed) *)
  failed : int list;  (** ranks killed by the perturbation spec, ascending *)
  recovered : int list;
      (** ranks that died but were revived by the checkpoint policy,
          ascending (empty unless a recovery policy is active) *)
  messages : int;
  orphaned : int;
      (** sent messages never received — non-zero flags a sender whose
          receiver died or a program leaking sends *)
  mismatches : string list;  (** face-description disagreements (capped) *)
}

let pp_outcome ppf o =
  if o.completed then
    Fmt.pf ppf "%d ranks completed, %d messages%s%s%s" o.ranks o.messages
      (if o.recovered = [] then ""
       else Fmt.str ", %d recovered" (List.length o.recovered))
      (if o.orphaned = 0 then "" else Fmt.str ", %d ORPHANED" o.orphaned)
      (match o.mismatches with
      | [] -> ""
      | l -> Fmt.str ", %d MISMATCHES" (List.length l))
  else if o.failed <> [] then
    Fmt.pf ppf
      "DEGRADED: rank(s) %s killed, %d of %d stuck, %d orphaned message(s)"
      (String.concat ", " (List.map string_of_int o.failed))
      (List.length o.blocked) o.ranks o.orphaned
  else
    Fmt.pf ppf "DEADLOCK: %d of %d ranks stuck (first: %s)"
      (List.length o.blocked) o.ranks
      (match o.blocked with
      | (r, why) :: _ -> Fmt.str "rank %d %s" r why
      | [] -> "?")

module Raw = struct
  type status =
    | Idle
    | Running
    | Blocked_recv of int  (* waiting on a message from this rank *)
    | Blocked_coll
    | Finished
    | Failed  (* killed by the perturbation spec *)

  (* Tasks carry the rank they run so the scheduler can route a
     straggler's work to the deferred queue at wake time. *)
  type task =
    | Start of int
    | Resume of int * (unit, unit) Effect.Deep.continuation

  type sched = {
    ranks : int;
    chans : (int, msg Queue.t) Hashtbl.t;  (* src * ranks + dst *)
    waiting : (int, (unit, unit) Effect.Deep.continuation) Hashtbl.t;
    runnable : task Queue.t;
    (* Straggler tasks; drained one at a time, only when [runnable] is
       empty — the most adversarial legal ordering. *)
    deferred : task Queue.t;
    straggler : bool array;
    failed : bool array;
    coll_parked : (int * (unit, unit) Effect.Deep.continuation) Queue.t;
    mutable coll_count : int;
    status : status array;
    mutable finished : int;
    mutable messages : int;
    mutable received : int;
    mutable program : int -> unit;
    mutable executed : bool;
  }

  type _ Effect.t +=
    | Block_recv : int -> unit Effect.t
    | Block_coll : unit Effect.t

  let create ~ranks =
    if ranks < 1 then invalid_arg "Dataflow.Raw.create: ranks must be >= 1";
    {
      ranks;
      chans = Hashtbl.create (4 * ranks);
      waiting = Hashtbl.create 64;
      runnable = Queue.create ();
      deferred = Queue.create ();
      straggler = Array.make ranks false;
      failed = Array.make ranks false;
      coll_parked = Queue.create ();
      coll_count = 0;
      status = Array.make ranks Idle;
      finished = 0;
      messages = 0;
      received = 0;
      program = ignore;
      executed = false;
    }

  let set_straggler t rank =
    if rank < 0 || rank >= t.ranks then
      invalid_arg "Dataflow.set_straggler: bad rank";
    t.straggler.(rank) <- true

  let enqueue t rank task =
    if t.straggler.(rank) then Queue.push task t.deferred
    else Queue.push task t.runnable

  let key t ~src ~dst = (src * t.ranks) + dst

  let chan t key =
    match Hashtbl.find_opt t.chans key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add t.chans key q;
        q

  let check_rank t r name =
    if r < 0 || r >= t.ranks then
      invalid_arg ("Dataflow." ^ name ^ ": bad rank")

  (* Buffered (eager) send: never blocks, matching the runtimes the
     program targets. A receiver waiting on this channel becomes runnable
     again (FIFO, so the wake order is deterministic). *)
  let send t ~src ~dst m =
    check_rank t src "send";
    check_rank t dst "send";
    let key = key t ~src ~dst in
    Queue.push m (chan t key);
    t.messages <- t.messages + 1;
    match Hashtbl.find_opt t.waiting key with
    | Some k ->
        Hashtbl.remove t.waiting key;
        enqueue t dst (Resume (dst, k))
    | None -> ()

  (* Blocking receive: suspend the fiber until the channel is non-empty.
     Only callable from inside a fiber run by [exec]. *)
  let recv t ~rank ~src =
    check_rank t rank "recv";
    check_rank t src "recv";
    let q = chan t (key t ~src ~dst:rank) in
    if Queue.is_empty q then begin
      t.status.(rank) <- Blocked_recv src;
      Effect.perform (Block_recv (key t ~src ~dst:rank));
      t.status.(rank) <- Running
    end;
    t.received <- t.received + 1;
    Queue.pop q

  (* Full synchronization: park until every rank has arrived, then release
     all arrivals in order. Every rank must call the same number of
     times. *)
  let barrier t ~rank =
    check_rank t rank "barrier";
    t.status.(rank) <- Blocked_coll;
    Effect.perform Block_coll;
    t.status.(rank) <- Running

  let start_fiber t rank =
    let open Effect.Deep in
    t.status.(rank) <- Running;
    match_with
      (fun () ->
        (* The try frame lives on the fiber's own stack, so it still
           catches a kill raised after the fiber was suspended and
           resumed. *)
        try t.program rank
        with Perturb.Model.Killed { rank; _ } -> t.failed.(rank) <- true)
      ()
      {
        retc =
          (fun () ->
            if t.failed.(rank) then t.status.(rank) <- Failed
            else begin
              t.status.(rank) <- Finished;
              t.finished <- t.finished + 1
            end);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Block_recv key ->
                Some
                  (fun (k : (a, _) continuation) ->
                    Hashtbl.replace t.waiting key k)
            | Block_coll ->
                Some
                  (fun (k : (a, _) continuation) ->
                    Queue.push (rank, k) t.coll_parked;
                    t.coll_count <- t.coll_count + 1;
                    if t.coll_count = t.ranks then begin
                      t.coll_count <- 0;
                      Queue.iter
                        (fun (r, k) -> enqueue t r (Resume (r, k)))
                        t.coll_parked;
                      Queue.clear t.coll_parked
                    end)
            | _ -> None);
      }

  let exec t program =
    if t.executed then invalid_arg "Dataflow.exec: already executed";
    t.executed <- true;
    t.program <- program;
    for rank = 0 to t.ranks - 1 do
      enqueue t rank (Start rank)
    done;
    while not (Queue.is_empty t.runnable && Queue.is_empty t.deferred) do
      let task =
        if Queue.is_empty t.runnable then Queue.pop t.deferred
        else Queue.pop t.runnable
      in
      match task with
      | Start rank -> start_fiber t rank
      | Resume (_, k) -> Effect.Deep.continue k ()
    done

  let blocked t =
    let acc = ref [] in
    for rank = t.ranks - 1 downto 0 do
      match t.status.(rank) with
      | Blocked_recv src ->
          acc := (rank, Fmt.str "blocked receiving from rank %d" src) :: !acc
      | Blocked_coll ->
          acc := (rank, "blocked in a collective") :: !acc
      | Idle -> acc := (rank, "never ran") :: !acc
      | Running | Finished | Failed -> ()
    done;
    !acc

  let failed_ranks t =
    let acc = ref [] in
    for rank = t.ranks - 1 downto 0 do
      if t.failed.(rank) then acc := rank :: !acc
    done;
    !acc

  let outcome t =
    {
      ranks = t.ranks;
      completed = t.finished = t.ranks;
      blocked = blocked t;
      failed = failed_ranks t;
      recovered = [];
      messages = t.messages;
      orphaned = t.messages - t.received;
      mismatches = [];
    }
end

(* --- The substrate over the raw scheduler --- *)

(* The timed extension: per-rank virtual clocks advanced by the analytic
   model's operation costs (Costs), with each message carrying its
   modeled delivery time on a FIFO side-channel aligned with the raw
   scheduler's channels. The scheduler's interleaving stays exactly the
   clockless one — time is an annotation on the precedence graph, not a
   driver of execution order — so a timed run is the (r1a)-(r5) term
   schedule evaluated at wave resolution, and its spans reconstruct into
   the analytic per-rank x per-wave timeline that Obs.Timeline aligns
   against observed runs. *)
type timed = {
  costs : Costs.t;
  tracer : Obs.Tracer.t option;
  ntiles : int;  (* tiles per sweep, for wave = sweep * ntiles + tile *)
  clock : float array;  (* per-rank virtual now, us *)
  delivery : (int, float Queue.t) Hashtbl.t;  (* src * ranks + dst *)
  sweep : int array;  (* per-rank current sweep index *)
  finish : float array;
  (* Collective clock synchronization: the last arriver publishes the max
     entry clock before any parked fiber resumes, so every rank leaves the
     barrier at release + cost. *)
  mutable coll_high : float;
  mutable coll_arrivals : int;
  mutable coll_release : float;
}

(* Recovery bookkeeping: the simulated counterpart of the real
   supervisor. [last_ckpt] holds each rank's last snapshot wave (global
   index, via tile_begin); [cur_wave] the wave currently computing, so
   the rollback depth at a kill is [cur_wave - last_ckpt]. *)
type recovery = {
  policy : Perturb.Recover.policy;
  last_ckpt : int array;
  cur_wave : int array;
  revived : bool array;
  mutable ckpts : int;  (* snapshots taken, all ranks *)
}

type t = {
  sched : Raw.sched;
  msg_ew : int;
  msg_ns : int;
  model : Perturb.Model.t option;
  recover : recovery option;
  timed : timed option;
  mutable mismatches : string list;  (* reversed; capped *)
  mutable n_mismatch : int;
}

let mismatch_cap = 16

let create ?perturb ?recover ?costs ?obs ?(ntiles = 1) ~ranks ~msg_ew ~msg_ns
    () =
  let sched = Raw.create ~ranks in
  let model = Option.map (Perturb.Model.create ~ranks) perturb in
  let recover =
    match recover with
    | Some p when Perturb.Recover.enabled p ->
        Some
          {
            policy = p;
            last_ckpt = Array.make ranks 0;
            cur_wave = Array.make ranks 0;
            revived = Array.make ranks false;
            ckpts = 0;
          }
    | _ -> None
  in
  (match model with
  | None -> ()
  | Some m ->
      for rank = 0 to ranks - 1 do
        if Perturb.Model.is_straggler m ~rank then
          Raw.set_straggler sched rank
      done);
  let timed =
    Option.map
      (fun costs ->
        {
          costs;
          tracer = obs;
          ntiles;
          clock = Array.make ranks 0.0;
          delivery = Hashtbl.create (4 * ranks);
          sweep = Array.make ranks 0;
          finish = Array.make ranks 0.0;
          coll_high = neg_infinity;
          coll_arrivals = 0;
          coll_release = 0.0;
        })
      costs
  in
  {
    sched;
    msg_ew;
    msg_ns;
    model;
    recover;
    timed;
    mismatches = [];
    n_mismatch = 0;
  }

let of_app ?perturb ?recover ?costs ?obs pg app =
  create ?perturb ?recover ?costs ?obs
    ~ntiles:
      (Tile.ntiles_int ~nz:app.Wavefront_core.App_params.grid.Data_grid.nz
         ~htile:app.Wavefront_core.App_params.htile)
    ~ranks:(Proc_grid.cores pg)
    ~msg_ew:(Wavefront_core.App_params.message_size_ew app pg)
    ~msg_ns:(Wavefront_core.App_params.message_size_ns app pg)
    ()

let finish_times t = Option.map (fun tm -> Array.copy tm.finish) t.timed

let elapsed t =
  Option.map (fun tm -> Array.fold_left Float.max 0.0 tm.finish) t.timed

let record_mismatch t fmt =
  Fmt.kstr
    (fun m ->
      t.n_mismatch <- t.n_mismatch + 1;
      if t.n_mismatch <= mismatch_cap then t.mismatches <- m :: t.mismatches)
    fmt

(* --- Timed-mode helpers --- *)

let wave tm ~rank ~tile = (tm.sweep.(rank) * tm.ntiles) + tile

let emit tm ~rank ~name ~cat ~start args =
  match tm.tracer with
  | None -> ()
  | Some tr ->
      Obs.Tracer.record tr ~cat ~args ~rank ~start
        ~dur:(tm.clock.(rank) -. start) name

let delivery_q tm key =
  match Hashtbl.find_opt tm.delivery key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add tm.delivery key q;
      q

(* The delivery FIFO is pushed/popped in lockstep with the raw channel's
   message queue, so timestamps pair with payloads positionally. *)
let timed_send t tm ~rank ~dst bytes =
  let t0 = tm.clock.(rank) in
  tm.clock.(rank) <- t0 +. Costs.send_busy tm.costs ~src:rank ~dst bytes;
  let delivered =
    tm.clock.(rank) +. Costs.in_flight tm.costs ~src:rank ~dst bytes
  in
  Queue.push delivered (delivery_q tm (Raw.key t.sched ~src:rank ~dst));
  t0

(* Call after [Raw.recv] returned: the payload (and so its timestamp) is
   guaranteed present. Receiver clock = arrival-or-now + overhead; the
   blocking share is surfaced as the span's ["wait"] arg. *)
let timed_recv t tm ~rank ~src =
  let t0 = tm.clock.(rank) in
  let delivered = Queue.pop (delivery_q tm (Raw.key t.sched ~src ~dst:rank)) in
  let wait = Float.max 0.0 (delivered -. t0) in
  tm.clock.(rank) <- t0 +. wait +. Costs.recv_overhead tm.costs ~src ~dst:rank;
  (t0, wait)

(* One synchronization round: arrivals accumulate the high-water entry
   clock; the last arriver publishes it as the release point before it
   parks, and every resumed rank (all resumes happen strictly after) exits
   at release + cost. *)
let timed_collective t tm ~rank ~cost =
  let t0 = tm.clock.(rank) in
  tm.coll_arrivals <- tm.coll_arrivals + 1;
  tm.coll_high <- Float.max tm.coll_high t0;
  if tm.coll_arrivals = t.sched.Raw.ranks then begin
    tm.coll_release <- tm.coll_high;
    tm.coll_arrivals <- 0;
    tm.coll_high <- neg_infinity
  end;
  Raw.barrier t.sched ~rank;
  tm.clock.(rank) <- tm.coll_release +. cost;
  t0

module Substrate = struct
  type nonrec t = t
  type payload = msg

  let boundary _ ~rank:_ ~axis ~h:_ = { axis; tile = -1; bytes = 0 }

  (* Receive and check the face description against what the program
     expects: a mismatch means two ranks disagree about which message
     travels on an edge of the precedence graph. *)
  let recv t ~rank ~src ~axis ~tile ~h:_ ~bytes =
    let m = Raw.recv t.sched ~rank ~src in
    if m.axis <> axis || m.tile <> tile || m.bytes <> bytes then
      record_mismatch t
        "rank %d <- %d: expected %s face of tile %d (%dB), got %s tile %d \
         (%dB)"
        rank src (Substrate.axis_name axis) tile bytes
        (Substrate.axis_name m.axis) m.tile m.bytes;
    (match t.timed with
    | None -> ()
    | Some tm ->
        let t0, wait = timed_recv t tm ~rank ~src in
        emit tm ~rank ~name:"recv" ~cat:"comm" ~start:t0
          [
            ("src", Obs.Span.Int src);
            ("size", Obs.Span.Int bytes);
            ("wait", Obs.Span.Float wait);
            (Obs.Timeline.wave_arg, Obs.Span.Int (wave tm ~rank ~tile));
          ]);
    m

  (* The spec's link contention in timed mode: the injection delay spends
     virtual time on the sender before the send enters the network —
     exactly the event the simulator schedules, span for span. One draw
     per send when a link clause is present. *)
  let inject_link_delay t tm ~rank ~tile =
    match t.model with
    | None -> ()
    | Some m ->
        let d = Perturb.Model.link_extra m ~src:rank in
        if d > 0.0 then begin
          let t0 = tm.clock.(rank) in
          tm.clock.(rank) <- t0 +. d;
          emit tm ~rank ~name:"perturb.link" ~cat:"comm" ~start:t0
            [
              ("wait", Obs.Span.Float d);
              (Obs.Timeline.wave_arg, Obs.Span.Int (wave tm ~rank ~tile));
            ]
        end

  let send t ~rank ~dst ~axis:_ ~tile m =
    (match t.timed with
    | None -> ()
    | Some tm ->
        inject_link_delay t tm ~rank ~tile;
        let t0 = timed_send t tm ~rank ~dst m.bytes in
        emit tm ~rank ~name:"send" ~cat:"comm" ~start:t0
          [
            ("dst", Obs.Span.Int dst);
            ("size", Obs.Span.Int m.bytes);
            ("wait", Obs.Span.Float 0.0);
            (Obs.Timeline.wave_arg, Obs.Span.Int (wave tm ~rank ~tile));
          ]);
    Raw.send t.sched ~src:rank ~dst m

  (* A revived rank re-executes its lost waves from the snapshot before
     rejoining the schedule. The precedence graph is untouched (the
     wavefront DAG makes rollback local by construction), so in the
     clockless reading recovery is pure bookkeeping; timed mode charges
     restart plus the replayed compute. *)
  let recover_in_place t ~rank ~tile r =
    (match t.model with
    | Some m -> Perturb.Model.revive m ~rank
    | None -> ());
    r.revived.(rank) <- true;
    match t.timed with
    | None -> ()
    | Some tm ->
        let args =
          [ (Obs.Timeline.wave_arg, Obs.Span.Int (wave tm ~rank ~tile)) ]
        in
        let charge name d =
          if d > 0.0 then begin
            let t0 = tm.clock.(rank) in
            tm.clock.(rank) <- t0 +. d;
            emit tm ~rank ~name ~cat:"recover" ~start:t0 args
          end
        in
        let lost = r.cur_wave.(rank) - r.last_ckpt.(rank) in
        charge "recover.restart" r.policy.restart_cost;
        charge "recover.replay"
          (float_of_int lost
          *. (Costs.compute tm.costs +. Costs.precompute tm.costs))

  let compute t ~rank ~dir:_ ~tile ~h:_ ~x:_ ~y:_ =
    (match t.model with
    | Some m when Perturb.Model.fails_now m ~rank -> (
        match t.recover with
        | Some r -> recover_in_place t ~rank ~tile r
        | None -> raise (Perturb.Model.Killed { rank; tile }))
    | _ -> ());
    (match t.timed with
    | None -> ()
    | Some tm ->
        let args =
          [ (Obs.Timeline.wave_arg, Obs.Span.Int (wave tm ~rank ~tile)) ]
        in
        let t0 = tm.clock.(rank) in
        tm.clock.(rank) <- t0 +. Costs.compute tm.costs;
        emit tm ~rank ~name:"compute" ~cat:"compute" ~start:t0 args;
        (* The spec's compute-side perturbations, charged to the virtual
           clock with the simulator's span names and order so the two
           substrates stay identical cell for cell. Draws align: one noise
           draw per tile either way. *)
        match t.model with
        | None -> ()
        | Some m ->
            let charge name d =
              if d > 0.0 then begin
                let t0 = tm.clock.(rank) in
                tm.clock.(rank) <- t0 +. d;
                emit tm ~rank ~name ~cat:"compute" ~start:t0 args
              end
            in
            charge "perturb.noise"
              (Perturb.Model.noise_extra m ~rank ~work:(Costs.compute tm.costs));
            charge "perturb.straggler" (Perturb.Model.straggler_delay m ~rank);
            charge "perturb.pulse" (Perturb.Model.pulse_extra m ~rank);
            charge "perturb.periodic" (Perturb.Model.periodic_extra m ~rank));
    ( { axis = Substrate.X; tile; bytes = t.msg_ew },
      { axis = Substrate.Y; tile; bytes = t.msg_ns } )

  let precompute t ~rank ~tile =
    match t.timed with
    | None -> ()
    | Some tm ->
        let d = Costs.precompute tm.costs in
        if d > 0.0 then begin
          let t0 = tm.clock.(rank) in
          tm.clock.(rank) <- t0 +. d;
          emit tm ~rank ~name:"precompute" ~cat:"compute" ~start:t0
            [ (Obs.Timeline.wave_arg, Obs.Span.Int (wave tm ~rank ~tile)) ]
        end

  let sweep_begin t ~rank ~sweep ~dir:_ =
    match t.timed with
    | None -> ()
    | Some tm -> tm.sweep.(rank) <- sweep

  (* The checkpoint anchor: snapshot bookkeeping on due waves, charged
     at the modeled per-checkpoint cost in timed mode. Without a policy
     this is a strict no-op, so the zero config is invisible. *)
  let tile_begin t ~rank ~pos ~wave:gwave =
    match t.recover with
    | None -> ()
    | Some r ->
        r.cur_wave.(rank) <- gwave;
        if Perturb.Recover.due ~interval:r.policy.interval ~wave:gwave then begin
          r.ckpts <- r.ckpts + 1;
          r.last_ckpt.(rank) <- gwave;
          match t.timed with
          | None -> ()
          | Some tm ->
              let d = r.policy.ckpt_cost in
              if d > 0.0 then begin
                let t0 = tm.clock.(rank) in
                tm.clock.(rank) <- t0 +. d;
                emit tm ~rank ~name:"recover.checkpoint" ~cat:"recover"
                  ~start:t0
                  [
                    ( Obs.Timeline.wave_arg,
                      Obs.Span.Int (wave tm ~rank ~tile:pos.Substrate.tile) );
                  ]
              end
        end

  let epilogue_args =
    [ (Obs.Timeline.wave_arg, Obs.Span.Int Obs.Timeline.epilogue_wave) ]

  let fixed_work t ~rank d =
    match t.timed with
    | None -> ()
    | Some tm ->
        if d > 0.0 then begin
          let t0 = tm.clock.(rank) in
          tm.clock.(rank) <- t0 +. d;
          emit tm ~rank ~name:"compute" ~cat:"compute" ~start:t0 epilogue_args
        end

  let stencil_compute t ~rank ~wg_stencil =
    match t.timed with
    | None -> ()
    | Some tm ->
        let d = Costs.stencil tm.costs ~wg_stencil in
        if d > 0.0 then begin
          let t0 = tm.clock.(rank) in
          tm.clock.(rank) <- t0 +. d;
          emit tm ~rank ~name:"compute" ~cat:"compute" ~start:t0 epilogue_args
        end

  let halo t ~rank ~dst ~src ~bytes =
    let t0 =
      match t.timed with Some tm -> tm.clock.(rank) | None -> 0.0
    in
    (match (t.timed, dst) with
    | Some tm, Some d -> ignore (timed_send t tm ~rank ~dst:d bytes)
    | _ -> ());
    (match dst with
    | Some d ->
        Raw.send t.sched ~src:rank ~dst:d
          { axis = Substrate.X; tile = -1; bytes }
    | None -> ());
    (match src with
    | Some s -> (
        ignore (Raw.recv t.sched ~rank ~src:s);
        match t.timed with
        | Some tm -> ignore (timed_recv t tm ~rank ~src:s)
        | None -> ())
    | None -> ());
    match t.timed with
    | None -> ()
    | Some tm ->
        if dst <> None || src <> None then
          emit tm ~rank ~name:"halo" ~cat:"comm" ~start:t0
            (("wait", Obs.Span.Float (tm.clock.(rank) -. t0)) :: epilogue_args)

  (* All-reduces synchronize every rank; their internal message pattern is
     a backend choice, so here each one is simply a full barrier of the
     precedence graph (timed mode charges the eq-9 cost per round). *)
  let allreduce t ~rank ~count ~msg_size =
    match t.timed with
    | None ->
        for _ = 1 to count do
          Raw.barrier t.sched ~rank
        done
    | Some tm ->
        (* Collective noise: a seeded stall before the rank enters the
           reduction; one draw per allreduce substrate call, aligned with
           the other substrates. *)
        (match t.model with
        | None -> ()
        | Some m ->
            let d = Perturb.Model.coll_extra m ~rank in
            if d > 0.0 then begin
              let t0 = tm.clock.(rank) in
              tm.clock.(rank) <- t0 +. d;
              emit tm ~rank ~name:"perturb.collnoise" ~cat:"comm" ~start:t0
                (("wait", Obs.Span.Float d) :: epilogue_args)
            end);
        let cost = Costs.allreduce tm.costs ~count:1 ~msg_size in
        let first = ref nan in
        for _ = 1 to count do
          let t0 = timed_collective t tm ~rank ~cost in
          if Float.is_nan !first then first := t0
        done;
        if count > 0 then
          emit tm ~rank ~name:"allreduce" ~cat:"comm" ~start:!first
            (("wait", Obs.Span.Float (tm.clock.(rank) -. !first))
            :: epilogue_args)

  let barrier t ~rank =
    match t.timed with
    | None -> Raw.barrier t.sched ~rank
    | Some tm ->
        let t0 = timed_collective t tm ~rank ~cost:(Costs.barrier tm.costs) in
        emit tm ~rank ~name:"barrier" ~cat:"comm" ~start:t0
          (("wait", Obs.Span.Float (tm.clock.(rank) -. t0)) :: epilogue_args)

  let finish t ~rank =
    match t.timed with
    | None -> ()
    | Some tm -> tm.finish.(rank) <- tm.clock.(rank)
end

let exec t program = Raw.exec t.sched program

let checkpoints t = match t.recover with None -> 0 | Some r -> r.ckpts

let outcome t =
  let recovered =
    match t.recover with
    | None -> []
    | Some r ->
        let acc = ref [] in
        for rank = Array.length r.revived - 1 downto 0 do
          if r.revived.(rank) then acc := rank :: !acc
        done;
        !acc
  in
  { (Raw.outcome t.sched) with mismatches = List.rev t.mismatches; recovered }

let run ?iterations ?tiling ?perturb ?recover ?costs ?obs pg app =
  let cfg = Program.of_app ?iterations ?tiling pg app in
  let t =
    create ?perturb ?recover ?costs ?obs
      ~ntiles:cfg.Program.tiling.Program.ntiles ~ranks:(Proc_grid.cores pg)
      ~msg_ew:(Wavefront_core.App_params.message_size_ew app pg)
      ~msg_ns:(Wavefront_core.App_params.message_size_ns app pg)
      ()
  in
  exec t (fun rank -> Program.run_rank (module Substrate) t cfg rank);
  outcome t
