(* The reference dataflow backend: execute the schedule's precedence graph
   deterministically, with no event simulation and no domains.

   Every rank is an effect-based fiber (OCaml 5 one-shot continuations); a
   blocking receive on an empty channel suspends the fiber, a send wakes
   the waiting receiver, and a single FIFO run queue makes the interleaving
   deterministic. There is no clock: the only thing this backend computes
   is whether the program's blocking communication order is consistent —
   which makes it a fast deadlock/schedule validator and a message-sequence
   oracle at rank counts (100K+) where even the event-level simulator is
   expensive. When the run queue drains with unfinished ranks, the program
   has deadlocked and each stuck rank reports what it was blocked on. *)

open Wgrid

type msg = { axis : Substrate.axis; tile : int; bytes : int }

type outcome = {
  ranks : int;
  completed : bool;
  blocked : (int * string) list;
      (** stuck ranks and what each was waiting on (empty iff completed) *)
  messages : int;
  mismatches : string list;  (** face-description disagreements (capped) *)
}

let pp_outcome ppf o =
  if o.completed then
    Fmt.pf ppf "%d ranks completed, %d messages%s" o.ranks o.messages
      (match o.mismatches with
      | [] -> ""
      | l -> Fmt.str ", %d MISMATCHES" (List.length l))
  else
    Fmt.pf ppf "DEADLOCK: %d of %d ranks stuck (first: %s)"
      (List.length o.blocked) o.ranks
      (match o.blocked with
      | (r, why) :: _ -> Fmt.str "rank %d %s" r why
      | [] -> "?")

module Raw = struct
  type status =
    | Idle
    | Running
    | Blocked_recv of int  (* waiting on a message from this rank *)
    | Blocked_coll
    | Finished

  type task =
    | Start of int
    | Resume of (unit, unit) Effect.Deep.continuation

  type sched = {
    ranks : int;
    chans : (int, msg Queue.t) Hashtbl.t;  (* src * ranks + dst *)
    waiting : (int, (unit, unit) Effect.Deep.continuation) Hashtbl.t;
    runnable : task Queue.t;
    coll_parked : (unit, unit) Effect.Deep.continuation Queue.t;
    mutable coll_count : int;
    status : status array;
    mutable finished : int;
    mutable messages : int;
    mutable program : int -> unit;
    mutable executed : bool;
  }

  type _ Effect.t +=
    | Block_recv : int -> unit Effect.t
    | Block_coll : unit Effect.t

  let create ~ranks =
    if ranks < 1 then invalid_arg "Dataflow.Raw.create: ranks must be >= 1";
    {
      ranks;
      chans = Hashtbl.create (4 * ranks);
      waiting = Hashtbl.create 64;
      runnable = Queue.create ();
      coll_parked = Queue.create ();
      coll_count = 0;
      status = Array.make ranks Idle;
      finished = 0;
      messages = 0;
      program = ignore;
      executed = false;
    }

  let key t ~src ~dst = (src * t.ranks) + dst

  let chan t key =
    match Hashtbl.find_opt t.chans key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add t.chans key q;
        q

  let check_rank t r name =
    if r < 0 || r >= t.ranks then
      invalid_arg ("Dataflow." ^ name ^ ": bad rank")

  (* Buffered (eager) send: never blocks, matching the runtimes the
     program targets. A receiver waiting on this channel becomes runnable
     again (FIFO, so the wake order is deterministic). *)
  let send t ~src ~dst m =
    check_rank t src "send";
    check_rank t dst "send";
    let key = key t ~src ~dst in
    Queue.push m (chan t key);
    t.messages <- t.messages + 1;
    match Hashtbl.find_opt t.waiting key with
    | Some k ->
        Hashtbl.remove t.waiting key;
        Queue.push (Resume k) t.runnable
    | None -> ()

  (* Blocking receive: suspend the fiber until the channel is non-empty.
     Only callable from inside a fiber run by [exec]. *)
  let recv t ~rank ~src =
    check_rank t rank "recv";
    check_rank t src "recv";
    let q = chan t (key t ~src ~dst:rank) in
    if Queue.is_empty q then begin
      t.status.(rank) <- Blocked_recv src;
      Effect.perform (Block_recv (key t ~src ~dst:rank));
      t.status.(rank) <- Running
    end;
    Queue.pop q

  (* Full synchronization: park until every rank has arrived, then release
     all arrivals in order. Every rank must call the same number of
     times. *)
  let barrier t ~rank =
    check_rank t rank "barrier";
    t.status.(rank) <- Blocked_coll;
    Effect.perform Block_coll;
    t.status.(rank) <- Running

  let start_fiber t rank =
    let open Effect.Deep in
    t.status.(rank) <- Running;
    match_with
      (fun () -> t.program rank)
      ()
      {
        retc =
          (fun () ->
            t.status.(rank) <- Finished;
            t.finished <- t.finished + 1);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Block_recv key ->
                Some
                  (fun (k : (a, _) continuation) ->
                    Hashtbl.replace t.waiting key k)
            | Block_coll ->
                Some
                  (fun (k : (a, _) continuation) ->
                    Queue.push k t.coll_parked;
                    t.coll_count <- t.coll_count + 1;
                    if t.coll_count = t.ranks then begin
                      t.coll_count <- 0;
                      Queue.iter
                        (fun k -> Queue.push (Resume k) t.runnable)
                        t.coll_parked;
                      Queue.clear t.coll_parked
                    end)
            | _ -> None);
      }

  let exec t program =
    if t.executed then invalid_arg "Dataflow.exec: already executed";
    t.executed <- true;
    t.program <- program;
    for rank = 0 to t.ranks - 1 do
      Queue.push (Start rank) t.runnable
    done;
    while not (Queue.is_empty t.runnable) do
      match Queue.pop t.runnable with
      | Start rank -> start_fiber t rank
      | Resume k -> Effect.Deep.continue k ()
    done

  let blocked t =
    let acc = ref [] in
    for rank = t.ranks - 1 downto 0 do
      match t.status.(rank) with
      | Blocked_recv src ->
          acc := (rank, Fmt.str "blocked receiving from rank %d" src) :: !acc
      | Blocked_coll ->
          acc := (rank, "blocked in a collective") :: !acc
      | Idle -> acc := (rank, "never ran") :: !acc
      | Running | Finished -> ()
    done;
    !acc

  let outcome t =
    {
      ranks = t.ranks;
      completed = t.finished = t.ranks;
      blocked = blocked t;
      messages = t.messages;
      mismatches = [];
    }
end

(* --- The substrate over the raw scheduler --- *)

type t = {
  sched : Raw.sched;
  msg_ew : int;
  msg_ns : int;
  mutable mismatches : string list;  (* reversed; capped *)
  mutable n_mismatch : int;
}

let mismatch_cap = 16

let create ~ranks ~msg_ew ~msg_ns =
  {
    sched = Raw.create ~ranks;
    msg_ew;
    msg_ns;
    mismatches = [];
    n_mismatch = 0;
  }

let of_app pg app =
  create
    ~ranks:(Proc_grid.cores pg)
    ~msg_ew:(Wavefront_core.App_params.message_size_ew app pg)
    ~msg_ns:(Wavefront_core.App_params.message_size_ns app pg)

let record_mismatch t fmt =
  Fmt.kstr
    (fun m ->
      t.n_mismatch <- t.n_mismatch + 1;
      if t.n_mismatch <= mismatch_cap then t.mismatches <- m :: t.mismatches)
    fmt

module Substrate = struct
  type nonrec t = t
  type payload = msg

  let boundary _ ~rank:_ ~axis ~h:_ = { axis; tile = -1; bytes = 0 }

  (* Receive and check the face description against what the program
     expects: a mismatch means two ranks disagree about which message
     travels on an edge of the precedence graph. *)
  let recv t ~rank ~src ~axis ~tile ~h:_ ~bytes =
    let m = Raw.recv t.sched ~rank ~src in
    if m.axis <> axis || m.tile <> tile || m.bytes <> bytes then
      record_mismatch t
        "rank %d <- %d: expected %s face of tile %d (%dB), got %s tile %d \
         (%dB)"
        rank src (Substrate.axis_name axis) tile bytes
        (Substrate.axis_name m.axis) m.tile m.bytes;
    m

  let send t ~rank ~dst ~axis:_ ~tile:_ m = Raw.send t.sched ~src:rank ~dst m

  let compute t ~rank:_ ~dir:_ ~tile ~h:_ ~x:_ ~y:_ =
    ( { axis = Substrate.X; tile; bytes = t.msg_ew },
      { axis = Substrate.Y; tile; bytes = t.msg_ns } )

  let precompute _ ~rank:_ ~tile:_ = ()
  let sweep_begin _ ~rank:_ ~sweep:_ ~dir:_ = ()
  let fixed_work _ ~rank:_ _ = ()
  let stencil_compute _ ~rank:_ ~wg_stencil:_ = ()

  let halo t ~rank ~dst ~src ~bytes =
    (match dst with
    | Some d ->
        Raw.send t.sched ~src:rank ~dst:d
          { axis = Substrate.X; tile = -1; bytes }
    | None -> ());
    match src with
    | Some s -> ignore (Raw.recv t.sched ~rank ~src:s)
    | None -> ()

  (* All-reduces synchronize every rank; their internal message pattern is
     a backend choice, so here each one is simply a full barrier of the
     precedence graph. *)
  let allreduce t ~rank ~count ~msg_size:_ =
    for _ = 1 to count do
      Raw.barrier t.sched ~rank
    done

  let barrier t ~rank = Raw.barrier t.sched ~rank
  let finish _ ~rank:_ = ()
end

let exec t program = Raw.exec t.sched program

let outcome t =
  { (Raw.outcome t.sched) with mismatches = List.rev t.mismatches }

let run ?iterations ?tiling pg app =
  let cfg = Program.of_app ?iterations ?tiling pg app in
  let t = of_app pg app in
  exec t (fun rank -> Program.run_rank (module Substrate) t cfg rank);
  outcome t
