(* LogGP operation costs for the timed dataflow backend.

   The dataflow scheduler executes the program's precedence graph with no
   machine at all; giving each rank a virtual clock advanced by these costs
   turns a run into the analytic (r1a)-(r5) term schedule evaluated at wave
   resolution: every tile-step is charged exactly the model's W / Wg_pre
   work and the protocol-mechanics communication terms the closed forms are
   built from (eager: sender busy o, payload in flight L + size*G behind
   it, receiver overhead o; on-chip copy: o_copy / size*g_copy / o_copy;
   and the rendezvous/DMA analogues). With single-core nodes, eager-sized
   messages and bus contention off, the event-level simulator follows the
   identical arithmetic, so the two substrates produce the same per-rank x
   per-wave timeline to float precision — the cross-substrate identity the
   timeline tests assert. The rendezvous charge assumes the receive is
   pre-posted (the handshake reply is immediate), which is the model's own
   (r4) assumption; the simulator can stall longer, and that difference is
   precisely the wait the divergence report attributes. *)

open Wgrid
open Wavefront_core

type t = {
  platform : Loggp.Params.t;
  cmp : Cmp.t;
  pg : Proc_grid.t;
  w : float;  (** tile compute W = Wg * cells-per-tile, us *)
  w_pre : float;  (** tile pre-compute, us *)
  cells_x : float;
  cells_y : float;
  nz : float;
  bus_ew : float;  (** Table-6 interference per E/W op, us (0 = bus off) *)
  bus_ns : float;  (** Table-6 interference per N/S op, us (0 = bus off) *)
}

(* The multi-core shared-bus layer (paper Section 4.3, Table 6): on a
   Cx x Cy node, the DMA engines of co-located cores contend for the
   memory bus, and the model charges each send and each receive of the
   tile loop an interference term coeff * I, with
   I = o_dma + size * G_dma (Loggp.Comm_model.contention_i) and the
   per-axis coefficients of Plugplay.contention_coeffs (1x2 -> I on the
   N/S operations; 2x2 -> I on every operation; 2x4 -> 2I; ...). This is
   the model's own closed form — per-node arrival counts in the steady
   anti-diagonal front, not a queueing simulation — so it is computable
   per rank with no shared state, which is what keeps the batched
   engine's domain sharding bitwise-deterministic with the bus on. *)
let loggp ?(model_bus = false) ~cmp (platform : Loggp.Params.t) pg
    (app : App_params.t) =
  let cells = Decomp.cells_per_tile app.grid pg ~htile:app.htile in
  let bus_ew, bus_ns =
    if not model_bus then (0.0, 0.0)
    else
      let coeff_ew, coeff_ns = Plugplay.contention_coeffs cmp in
      ( coeff_ew
        *. Loggp.Comm_model.contention_i platform.onchip
             (App_params.message_size_ew app pg),
        coeff_ns
        *. Loggp.Comm_model.contention_i platform.onchip
             (App_params.message_size_ns app pg) )
  in
  {
    platform;
    cmp;
    pg;
    w = app.wg *. cells;
    w_pre = app.wg_pre *. cells;
    cells_x = Decomp.cells_x app.grid pg;
    cells_y = Decomp.cells_y app.grid pg;
    nz = float_of_int app.grid.Data_grid.nz;
    bus_ew;
    bus_ns;
  }

let bus_ew t = t.bus_ew
let bus_ns t = t.bus_ns
let model_bus t = t.bus_ew > 0.0 || t.bus_ns > 0.0

(* Same node iff same Cmp rectangle — the mapping Machine uses. *)
let locality t ~src ~dst : Loggp.Comm_model.locality =
  let node r = Cmp.node_of t.cmp (Proc_grid.coords t.pg r) in
  if node src = node dst then On_chip else Off_node

(* Mirror of Mpi_sim's uncontended protocol mechanics (bus off):
   [send_busy] is how long the sender's clock advances inside the send,
   [in_flight] how far behind the sender's return the payload is
   delivered, [recv_overhead] the receiver's software cost after
   delivery. *)
(* The [_at] variants take the link locality explicitly, so a caller that
   already knows it (e.g. the batched engine's per-link cache) skips the
   node-rectangle arithmetic on every message. *)
let send_busy_at t (loc : Loggp.Comm_model.locality) size =
  match loc with
  | On_chip ->
      let oc = t.platform.onchip in
      if size <= oc.eager_limit then oc.o_copy else oc.o_copy +. oc.o_dma
  | Off_node ->
      let off = t.platform.offnode in
      if size <= off.eager_limit then off.o
      else (* request + (pre-posted) handshake reply + injection *)
        off.o +. (2.0 *. (off.l +. off.o_h)) +. off.o

let send_busy t ~src ~dst size = send_busy_at t (locality t ~src ~dst) size

let in_flight_at t (loc : Loggp.Comm_model.locality) size =
  let fsize = float_of_int size in
  match loc with
  | On_chip ->
      let oc = t.platform.onchip in
      if size <= oc.eager_limit then fsize *. oc.g_copy else fsize *. oc.g_dma
  | Off_node ->
      let off = t.platform.offnode in
      off.l +. (fsize *. off.g)

let in_flight t ~src ~dst size = in_flight_at t (locality t ~src ~dst) size

let recv_overhead_at t (loc : Loggp.Comm_model.locality) =
  match loc with
  | On_chip -> t.platform.onchip.o_copy
  | Off_node -> t.platform.offnode.o

let recv_overhead t ~src ~dst = recv_overhead_at t (locality t ~src ~dst)

let compute t = t.w
let precompute t = t.w_pre

(* The idle-wave time constants of the tied pipeline (Perturb.Idle_model):
   a front crosses one rank hop per [hop_latency] us — the full link cost
   plus one tile step — while the pipeline advances one wave every
   [steady_period] us, the same terms minus the flight time (the payload
   of wave w+1 travels while the receiver still computes wave w, so the
   wave-axis recurrence never pays it). Their difference being exactly
   [in_flight] is what makes the interior ranks tie with zero slack. *)
let hop_latency t ~src ~dst size =
  send_busy t ~src ~dst size
  +. in_flight t ~src ~dst size
  +. recv_overhead t ~src ~dst +. t.w_pre +. t.w

let steady_period t ~src ~dst size =
  send_busy t ~src ~dst size +. recv_overhead t ~src ~dst +. t.w_pre +. t.w
let stencil t ~wg_stencil = wg_stencil *. t.cells_x *. t.cells_y *. t.nz

let allreduce t ~count ~msg_size =
  float_of_int count
  *. Loggp.Allreduce.time ~msg_size t.platform ~cores:(Proc_grid.cores t.pg)

let barrier t = Loggp.Allreduce.time ~msg_size:8 t.platform ~cores:(Proc_grid.cores t.pg)
