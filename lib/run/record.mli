(** Message-sequence recording: the cross-substrate differential oracle.

    {!Wrap} layers over any {!Substrate.S} and captures each rank's
    communication steps in program order, leaving the wrapped substrate's
    behaviour untouched. Two backends executing the same
    {!Program.config} must produce identical per-rank event sequences;
    the differential tests check exactly that, including under
    perturbation — injected delays and adversarial scheduling may move
    events in time but never reorder a rank's own sequence.

    Each rank appends only to its own slot, so recording is safe on
    single-threaded substrates (simulator, dataflow) and on
    one-domain-per-rank runtimes alike. *)

type event =
  | Send of { peer : int; axis : Substrate.axis; tile : int }
  | Recv of { peer : int; axis : Substrate.axis; tile : int; bytes : int }
  | Boundary of { axis : Substrate.axis }
  | Allreduce of { count : int; msg_size : int }
  | Halo of { dst : int option; src : int option; bytes : int }
  | Barrier
  | Finish

type t

val create : ranks:int -> t

val events : t -> int -> event list
(** The rank's recorded events, oldest first. *)

val pp_event : event Fmt.t

module Wrap (S : Substrate.S) :
  Substrate.S with type t = t * S.t and type payload = S.payload
(** The recording substrate: pass [(recorder, backend)] where the
    original program passed [backend]. Communication hooks (send, recv,
    boundary, halo, allreduce, barrier, finish) are recorded; compute
    and per-tile bookkeeping hooks pass straight through. *)
