(* The substrate interface: everything a backend must provide for the
   substrate-agnostic wavefront program ({!Program}) to execute on it.

   The program of the paper's Figure 4 is written once, against this
   interface; what varies per substrate is the meaning of a payload and of
   time. The event-level simulator's payloads are byte sizes and its clock
   is simulated; the shared-memory runtime's payloads are real boundary
   faces computed by the transport kernel; the reference dataflow backend's
   payloads are message descriptors and it has no clock at all, only the
   precedence order.

   Hooks are deliberately fine-grained (one per Figure-4 step and one per
   non-wavefront operation) so each backend can attribute time, spans and
   validation exactly where today's hand-written programs do. All hooks
   take the calling [rank]: a substrate value may be shared by every rank
   (the simulator) or private to one (the shared-memory runtime).

   The fine grain also carries the perturbation layer's draw-alignment
   contract: a backend honouring a [Perturb.Spec] makes exactly one noise
   draw per [compute] and one link draw per wavefront [send], in program
   order, so the same seeded spec injects the same delay sequence into
   every substrate. *)

(* Which of the two downstream dimensions a boundary face crosses. The
   direction of travel along the axis is the sweep's business ([Program]
   resolves neighbours); substrates only need the axis to pick layouts and
   trace labels. *)
type axis = X | Y

let axis_name = function X -> "x" | Y -> "y"

(* A resumable point in the program: the next tile step to execute.
   [Program.run_rank ~from] restarts a rank here after a rollback, and
   [Checkpoint] snapshots carry one. [iteration] is 1-based, matching the
   program's iteration loop; [sweep] and [tile] are 0-based. *)
type position = { iteration : int; sweep : int; tile : int }

let start_position = { iteration = 1; sweep = 0; tile = 0 }

let pp_position ppf p =
  Fmt.pf ppf "iteration %d, sweep %d, tile %d" p.iteration p.sweep p.tile

module type S = sig
  type t
  type payload
  (** A boundary face travelling between neighbouring ranks. *)

  val boundary : t -> rank:int -> axis:axis -> h:int -> payload
  (** The incoming face of a tile of height [h] at the domain edge, where
      there is no upstream neighbour. *)

  val recv : t -> rank:int -> src:int -> axis:axis -> tile:int -> h:int ->
    bytes:int -> payload
  (** Blocking receive of tile [tile]'s upstream face from neighbour
      [src]. [bytes] is the model's message size for the face (Table 3);
      substrates carrying real data may ignore it. *)

  val send : t -> rank:int -> dst:int -> axis:axis -> tile:int ->
    payload -> unit
  (** Buffered (eager) send of a downstream face to neighbour [dst]. *)

  val precompute : t -> rank:int -> tile:int -> unit
  (** The pre-boundary computation of Figure 4 (LU's Wg_pre; zero-cost for
      Sweep3D and Chimaera, but still invoked so substrates with per-tile
      bookkeeping see every step). *)

  val compute : t -> rank:int -> dir:int * int * int -> tile:int -> h:int ->
    x:payload -> y:payload -> payload * payload
  (** Compute one tile of height [h] from its two upstream faces; returns
      the outgoing (x, y) downstream faces. *)

  val sweep_begin : t -> rank:int -> sweep:int -> dir:int * int * int -> unit
  (** Called once per sweep before its first tile, with the sweep's index
      in the schedule and its (dx, dy, dz) flow direction. *)

  val tile_begin : t -> rank:int -> pos:position -> wave:int -> unit
  (** Called at the start of every tile step, before [precompute], with the
      step's resumable position and its global wave index
      [wave = ((iteration - 1) * nsweeps + sweep) * ntiles + tile]. This is
      the checkpoint layer's anchor: a substrate honouring a checkpoint
      policy snapshots its state here when the wave is due (Checkpoint.due),
      and a simulated substrate charges the modeled checkpoint cost.
      Substrates without recovery bookkeeping do nothing. *)

  (* Non-wavefront operations between iterations (Table 3's
     Tnonwavefront). *)

  val fixed_work : t -> rank:int -> float -> unit
  (** A fixed per-iteration cost in microseconds. *)

  val stencil_compute : t -> rank:int -> wg_stencil:float -> unit
  (** The per-cell stencil computation over the rank's whole block. *)

  val halo : t -> rank:int -> dst:int option -> src:int option ->
    bytes:int -> unit
  (** One direction of a halo exchange: send [bytes] to [dst] (if any),
      then receive from [src] (if any). [Program] orders the four calls so
      the exchange is deadlock-free on blocking substrates. *)

  val allreduce : t -> rank:int -> count:int -> msg_size:int -> unit
  (** [count] back-to-back all-reduces of [msg_size] bytes; every rank
      calls. *)

  val barrier : t -> rank:int -> unit
  (** Full synchronization; every rank calls. *)

  val finish : t -> rank:int -> unit
  (** The rank's program is complete. *)
end

type ('t, 'p) s = (module S with type t = 't and type payload = 'p)
(** A substrate as a first-class module, the form {!Program.run_rank}
    takes. *)

(* One signature for the ping-pong microbenchmarks that feed
   {!Loggp.Fit}, so `wavefront fit` drives the simulated and the real
   transport through the same interface. *)
module type MICROBENCH = sig
  val name : string

  val curve : ?rounds:int -> sizes:int list -> unit -> (int * float) list
  (** Half-round-trip time in microseconds per message size in bytes, in
      the shape {!Loggp.Fit} consumes. *)
end
