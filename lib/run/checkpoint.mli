(** Versioned per-rank snapshots of wavefront state.

    The passive half of the recovery layer: a snapshot captures
    everything a rank needs to re-enter {!Program.run_rank} at a tile
    boundary — the resumable {!Substrate.position}, the accumulated
    solution block, the transport kernel's carried z-face, and per-peer
    message-sequence marks for the channel log. Substrates take
    snapshots at {!Substrate.S.tile_begin} when {!due} holds; interval
    [K = 0] disables checkpointing entirely. *)

type snapshot = {
  rank : int;
  version : int;  (** Monotonic per rank; higher is newer. *)
  wave : int;  (** Global wave index of the checkpointed position. *)
  position : Substrate.position;  (** Next tile step to execute. *)
  phi : float array;  (** The rank's accumulated solution block. *)
  zbuf : float array;  (** Transport z-face carried between tiles. *)
  zpos : int;  (** Plane frontier within the current sweep. *)
  sent : int array;  (** Per-destination-rank send sequence marks. *)
  recvd : int array;  (** Per-source-rank receive sequence marks. *)
}

val due : interval:int -> wave:int -> bool
(** Whether wave [wave] is a checkpoint wave under interval [interval]:
    [interval > 0 && wave > 0 && wave mod interval = 0]. Never true for
    [interval <= 0], so a zero policy is invisible by construction. *)

val count : interval:int -> waves:int -> int
(** How many of the [waves] tile steps (waves [0 .. waves-1]) are
    checkpoint waves under [interval] — the multiplier for the
    closed-form checkpoint-overhead term. *)

type store
(** Where snapshots live. Ranks save concurrently from their own
    domains; stores synchronise internally and keep only the latest
    snapshot per rank. *)

val save : store -> snapshot -> unit
val latest : store -> rank:int -> snapshot option

val saves : store -> int
(** Total snapshots saved over the store's lifetime (across ranks). *)

val memory_store : unit -> store
(** An in-process store, the default for supervised runs. *)

val file_store : dir:string -> store
(** A store of one binary file per rank under [dir] (created if
    missing), atomically replaced on save. Files carry a magic/version
    header and are rejected if stale or foreign. *)
