(** The one backoff policy for every polling wait in the repository.

    OCaml's [Condition] carries no timed wait, so every deadline-bounded
    blocking primitive here polls its condition and sleeps between
    probes. Before this module the 1 us -> 1 ms doubling loop was written
    out independently in [Channel.recv_deadline] and [Comm.barrier]; the
    serving layer's retry paths triple the call sites. This is the single
    definition of the min/max/doubling policy, plus the decorrelated
    jitter variant retries against shared resources should use (jitter
    desynchronizes competing retriers; a plain doubling ladder keeps them
    in lockstep and re-collides them on every rung). *)

type policy = {
  min_s : float;  (** first sleep, seconds *)
  max_s : float;  (** cap; every later sleep is clamped to it *)
}

val poll : policy
(** The channel/barrier poll policy: 1 us doubling to a 1 ms cap — a
    payload already in flight is picked up within microseconds, while a
    dead peer costs at most one wakeup per millisecond until the
    deadline. *)

val v : min_s:float -> max_s:float -> policy
(** Raises [Invalid_argument] unless [0 < min_s <= max_s]. *)

val first : policy -> float
(** The initial sleep ([min_s]). *)

val next : policy -> float -> float
(** [next p sleep] is the sleep after [sleep]: doubled, clamped to
    [max_s]. *)

val jittered : policy -> rand:(float -> float) -> float -> float
(** [jittered p ~rand sleep] is the decorrelated-jitter successor of
    [sleep]: uniform in [[min_s, 3 * sleep)] via [rand] (where [rand hi]
    draws uniformly from [[0, hi)]), clamped to [max_s]. Seed [rand]
    from a {!Perturb.Prng} stream for reproducible retry schedules. *)

val wait_until :
  ?policy:policy -> deadline:float -> (unit -> bool) -> bool
(** [wait_until ~deadline ready] polls [ready] under the policy
    (default {!poll}), sleeping between probes, until [ready ()] is true
    (returning [true]) or [Unix.gettimeofday () >= deadline] (returning
    [false]). [ready] is probed once before any sleep, so an
    already-satisfied wait never blocks. The caller must not hold a
    mutex [ready] needs. *)
