(* A small MPI-like communicator over OCaml 5 domains: ranked blocking
   send/receive on point-to-point channels, a barrier, and an all-reduce.
   This is the "real machine" substrate of the reproduction — message
   passing with genuine payload copies and genuine blocking — in contrast to
   the discrete-event xtsim substrate that scales to thousands of cores. *)

type t = {
  ranks : int;
  channels : Channel.t array;  (* dst * ranks + src *)
  obs : Obs.Tracer.t array;  (* one tracer per rank, or [||] when off *)
  timeout_us : float option;  (* deadline on every blocking wait *)
  barrier_mutex : Mutex.t;
  barrier_cond : Condition.t;
  mutable barrier_count : int;
  mutable barrier_epoch : int;
}

exception Timeout of { rank : int; src : int; op : string; waited_us : float }

let () =
  Printexc.register_printer (function
    | Timeout { rank; src; op; waited_us } ->
        Some
          (Printf.sprintf
             "Shmpi.Comm.Timeout (rank %d, %s%s, waited %.0f us)" rank op
             (if src >= 0 then Printf.sprintf " from rank %d" src else "")
             waited_us)
    | _ -> None)

let create ?obs ?(log = false) ?timeout_us ranks =
  if ranks < 1 then invalid_arg "Comm.create: ranks must be >= 1";
  (match timeout_us with
  | Some u when u <= 0.0 -> invalid_arg "Comm.create: timeout must be > 0"
  | _ -> ());
  let obs =
    match obs with
    | None -> [||]
    | Some a ->
        if Array.length a <> ranks then
          invalid_arg "Comm.create: need one tracer per rank";
        a
  in
  let channels =
    Array.init (ranks * ranks) (fun _ ->
        let ch = Channel.create () in
        if log then Channel.enable_log ch;
        ch)
  in
  {
    ranks;
    channels;
    obs;
    timeout_us;
    barrier_mutex = Mutex.create ();
    barrier_cond = Condition.create ();
    barrier_count = 0;
    barrier_epoch = 0;
  }

let traced t = Array.length t.obs > 0

let ranks t = t.ranks

let check_rank t r name =
  if r < 0 || r >= t.ranks then invalid_arg ("Comm." ^ name ^ ": bad rank")

let channel t ~src ~dst = t.channels.((dst * t.ranks) + src)

let send t ~src ~dst payload =
  check_rank t src "send";
  check_rank t dst "send";
  let ch = channel t ~src ~dst in
  if not (traced t) then Channel.send ch payload
  else
    Obs.Tracer.span t.obs.(src) ~cat:"comm"
      ~args:
        [ ("dst", Obs.Span.Int dst); ("size", Int (Array.length payload)) ]
      ~rank:src "send"
      (fun () -> Channel.send ch payload)

(* A [recv] / [recv_into] against a dead upstream must surface as a
   [Timeout] rather than a hang: with a deadline configured, both go
   through the channel's polling deadline wait. *)
let recv_wait_deadline t ~dst ~src ch =
  match t.timeout_us with
  | None -> Channel.recv_wait ch
  | Some timeout_us -> (
      match Channel.recv_deadline ch ~timeout_us with
      | Some payload, wait -> (payload, wait)
      | None, waited_us ->
          raise (Timeout { rank = dst; src; op = "recv"; waited_us }))

let recv_into_deadline t ~dst ~src ch buf =
  match t.timeout_us with
  | None -> Channel.recv_into ch buf
  | Some timeout_us -> (
      match Channel.recv_into_deadline ch buf ~timeout_us with
      | Some payload, wait -> (payload, wait)
      | None, waited_us ->
          raise (Timeout { rank = dst; src; op = "recv_into"; waited_us }))

let recv t ~dst ~src =
  check_rank t src "recv";
  check_rank t dst "recv";
  let ch = channel t ~src ~dst in
  if not (traced t) then fst (recv_wait_deadline t ~dst ~src ch)
  else begin
    let tr = t.obs.(dst) in
    let clock = Obs.Tracer.clock tr in
    let t0 = clock () in
    let payload, wait = recv_wait_deadline t ~dst ~src ch in
    Obs.Tracer.record tr ~cat:"comm"
      ~args:
        [ ("src", Obs.Span.Int src); ("size", Int (Array.length payload));
          ("wait", Float wait) ]
      ~rank:dst ~start:t0
      ~dur:(clock () -. t0)
      "recv";
    payload
  end

let recv_into t ~dst ~src buf =
  check_rank t src "recv_into";
  check_rank t dst "recv_into";
  let ch = channel t ~src ~dst in
  if not (traced t) then fst (recv_into_deadline t ~dst ~src ch buf)
  else begin
    let tr = t.obs.(dst) in
    let clock = Obs.Tracer.clock tr in
    let t0 = clock () in
    let payload, wait = recv_into_deadline t ~dst ~src ch buf in
    Obs.Tracer.record tr ~cat:"comm"
      ~args:
        [ ("src", Obs.Span.Int src); ("size", Int (Array.length payload));
          ("wait", Float wait) ]
      ~rank:dst ~start:t0
      ~dur:(clock () -. t0)
      "recv";
    payload
  end

let barrier_impl ?(rank = -1) t =
  Mutex.lock t.barrier_mutex;
  let epoch = t.barrier_epoch in
  t.barrier_count <- t.barrier_count + 1;
  if t.barrier_count = t.ranks then begin
    t.barrier_count <- 0;
    t.barrier_epoch <- t.barrier_epoch + 1;
    Condition.broadcast t.barrier_cond
  end
  else begin
    match t.timeout_us with
    | None ->
        while t.barrier_epoch = epoch do
          Condition.wait t.barrier_cond t.barrier_mutex
        done
    | Some timeout_us ->
        (* No timed [Condition.wait] in the stdlib, so the deadline path
           polls the epoch with the shared {!Backoff.poll} policy, the
           same one the channels use. A rank that gives up retracts its
           arrival so the barrier's count stays consistent for whoever
           inspects the wreckage. *)
        let t0 = Unix.gettimeofday () in
        let deadline = t0 +. (timeout_us *. 1e-6) in
        Mutex.unlock t.barrier_mutex;
        ignore
          (Backoff.wait_until ~deadline (fun () ->
               Mutex.lock t.barrier_mutex;
               let arrived = t.barrier_epoch <> epoch in
               Mutex.unlock t.barrier_mutex;
               arrived));
        Mutex.lock t.barrier_mutex;
        if t.barrier_epoch = epoch then begin
          t.barrier_count <- t.barrier_count - 1;
          Mutex.unlock t.barrier_mutex;
          raise
            (Timeout
               {
                 rank;
                 src = -1;
                 op = "barrier";
                 waited_us = (Unix.gettimeofday () -. t0) *. 1e6;
               })
        end
  end;
  Mutex.unlock t.barrier_mutex

(* The barrier has no caller rank in its signature; [rank] is only needed
   for the span, so tracing callers use [barrier_r]. *)
let barrier_r t ~rank =
  if not (traced t) then barrier_impl ~rank t
  else
    Obs.Tracer.span t.obs.(rank) ~cat:"sync" ~rank "barrier" (fun () ->
        barrier_impl ~rank t)

let barrier t = barrier_impl t

(* Binomial-tree broadcast from [root]: in step k (counting down), ranks
   within 2^k of the root relay to rank + 2^k. All ranks must call. *)
let broadcast t ~rank ~root payload =
  check_rank t root "broadcast";
  let p = t.ranks in
  let rel = (rank - root + p) mod p in
  let steps =
    let rec go acc v = if v >= p then acc else go (acc + 1) (v * 2) in
    go 0 1
  in
  let payload = ref payload in
  for k = steps - 1 downto 0 do
    let bit = 1 lsl k in
    (* A rank participates at step k once its low bits are settled: senders
       have rel = 0 mod 2^(k+1), receivers rel = 2^k mod 2^(k+1). *)
    if rel mod (2 * bit) = 0 then begin
      if rel + bit < p then
        send t ~src:rank ~dst:((root + rel + bit) mod p) !payload
    end
    else if rel mod (2 * bit) = bit then
      payload := recv t ~dst:rank ~src:((root + rel - bit) mod p)
  done;
  !payload

(* Binomial-tree reduction to [root] with a per-element operator. *)
let reduce t ~rank ~root ~op payload =
  check_rank t root "reduce";
  let p = t.ranks in
  let rel = (rank - root + p) mod p in
  let steps =
    let rec go acc v = if v >= p then acc else go (acc + 1) (v * 2) in
    go 0 1
  in
  let acc = ref (Array.copy payload) in
  let live = ref true in
  for k = 0 to steps - 1 do
    let bit = 1 lsl k in
    if !live then
      if rel land bit <> 0 then begin
        send t ~src:rank ~dst:((root + (rel - bit)) mod p) !acc;
        live := false
      end
      else if rel + bit < p then begin
        let other = recv t ~dst:rank ~src:((root + rel + bit) mod p) in
        acc := Array.map2 op !acc other
      end
  done;
  if rank = root then Some !acc else None

(* Gather every rank's payload at [root], in rank order. *)
let gather t ~rank ~root payload =
  check_rank t root "gather";
  if rank = root then begin
    let parts =
      Array.init t.ranks (fun src ->
          if src = rank then Array.copy payload
          else recv t ~dst:rank ~src)
    in
    Some parts
  end
  else begin
    send t ~src:rank ~dst:root payload;
    None
  end

(* All-reduce by recursive doubling (the same structure the simulator and
   equation 9 use). Non-power-of-two rank counts fold the excess ranks onto
   the power-of-two prefix first and broadcast back at the end. *)
let allreduce_impl t ~rank ~op value =
  let p = t.ranks in
  let pow2 =
    let rec go v = if v * 2 > p then v else go (v * 2) in
    go 1
  in
  let value = ref value in
  let exchange partner v =
    send t ~src:rank ~dst:partner [| v |];
    (recv t ~dst:rank ~src:partner).(0)
  in
  if rank >= pow2 then begin
    (* Fold onto the partner in the prefix, then wait for the result. *)
    send t ~src:rank ~dst:(rank - pow2) [| !value |];
    value := (recv t ~dst:rank ~src:(rank - pow2)).(0)
  end
  else begin
    if rank + pow2 < p then
      value := op !value (recv t ~dst:rank ~src:(rank + pow2)).(0);
    let k = ref 1 in
    while !k < pow2 do
      let partner = rank lxor !k in
      value := op !value (exchange partner !value);
      k := !k * 2
    done;
    if rank + pow2 < p then send t ~src:rank ~dst:(rank + pow2) [| !value |]
  end;
  !value

let allreduce t ~rank ~op value =
  if not (traced t) then allreduce_impl t ~rank ~op value
  else
    Obs.Tracer.span t.obs.(rank) ~cat:"comm" ~rank "allreduce" (fun () ->
        allreduce_impl t ~rank ~op value)
