(* A blocking FIFO channel between two domains, the transport under the
   real (shared-memory) message-passing runtime. Payloads are float arrays;
   the sender copies on enqueue so the receiver owns what it dequeues. *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : float array Queue.t;
}

let create () =
  { mutex = Mutex.create (); nonempty = Condition.create (); queue = Queue.create () }

let send t payload =
  let copy = Array.copy payload in
  Mutex.lock t.mutex;
  Queue.push copy t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let recv t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue do
    Condition.wait t.nonempty t.mutex
  done;
  let payload = Queue.pop t.queue in
  Mutex.unlock t.mutex;
  payload

(* As [recv], also reporting how long the caller was blocked on an empty
   queue (wall-clock us; 0 when a payload was already waiting). The clock
   is only read on the blocking path, so the fast path costs nothing. *)
let recv_wait t =
  Mutex.lock t.mutex;
  let wait =
    if Queue.is_empty t.queue then begin
      let t0 = Unix.gettimeofday () in
      while Queue.is_empty t.queue do
        Condition.wait t.nonempty t.mutex
      done;
      (Unix.gettimeofday () -. t0) *. 1e6
    end
    else 0.0
  in
  let payload = Queue.pop t.queue in
  Mutex.unlock t.mutex;
  (payload, wait)

let try_recv t =
  Mutex.lock t.mutex;
  let payload = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  payload
