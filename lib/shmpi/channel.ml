(* A blocking FIFO channel between two domains, the transport under the
   real (shared-memory) message-passing runtime. Payloads are float arrays;
   the sender copies on enqueue so the receiver owns what it dequeues.

   A receiver using [recv_into] hands its dequeued buffers back to a small
   pool, and [send] draws its enqueue copy from the pool when a buffer of
   the right length is waiting — so a steady-state tile loop (fixed face
   sizes between a fixed pair of ranks) allocates nothing per message.

   Recovery support is a sender-side message log ([enable_log]): every
   enqueued payload is also retained, under monotone sequence numbers, until
   the receiver's checkpoint covers it ([release]). After a rollback the
   receiver rewinds its cursor and the logged tail is redelivered in order
   ([rewind_recv]); the respawned sender rewinds its own counter and its
   replayed sends are suppressed while they duplicate logged ones
   ([rewind_send]). Logged payloads alias the queued (and then
   receiver-held) arrays, so a logging channel never recycles buffers into
   the pool — pooling a logged array would let a later send blit over the
   log (and over data a receiver still holds). *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : float array Queue.t;
  pool : float array Queue.t;  (* recycled enqueue buffers *)
  mutable log : float array Queue.t option;  (* oldest entry has seq [base] *)
  mutable base : int;  (* seq of the log's oldest retained payload *)
  mutable sent : int;  (* seq the next send call will carry *)
  mutable high : int;  (* seqs below this are already logged/enqueued *)
  mutable recvd : int;  (* payloads the receiver has consumed *)
}

(* More than the queue ever holds in a steady-state tile loop; bounding it
   keeps a burst from pinning memory. *)
let pool_cap = 4

let create () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    pool = Queue.create ();
    log = None;
    base = 0;
    sent = 0;
    high = 0;
    recvd = 0;
  }

let enable_log t =
  Mutex.lock t.mutex;
  if t.log = None then t.log <- Some (Queue.create ());
  Mutex.unlock t.mutex

let logging t =
  Mutex.lock t.mutex;
  let on = t.log <> None in
  Mutex.unlock t.mutex;
  on

(* Pop a pooled buffer of exactly [len] floats, if any (the pool can hold
   mixed lengths when tile heights vary; it is at most [pool_cap] long, so
   the scan is trivial). Caller holds the mutex. *)
let take_pooled t len =
  let n = Queue.length t.pool in
  let found = ref None in
  for _ = 1 to n do
    let b = Queue.pop t.pool in
    if !found = None && Array.length b = len then found := Some b
    else Queue.push b t.pool
  done;
  !found

(* Caller holds the mutex. The receive cursor advances on every dequeue so
   the counter is right whether or not logging is on. *)
let pop_locked t =
  let payload = Queue.pop t.queue in
  t.recvd <- t.recvd + 1;
  payload

(* Whether a dequeued internal buffer may enter the pool: never on a
   logging channel, where the log (and possibly a receiver) still aliases
   it and a pooled-buffer blit would corrupt both. Caller holds the
   mutex. *)
let may_pool t = t.log = None && Queue.length t.pool < pool_cap

let send t payload =
  let len = Array.length payload in
  Mutex.lock t.mutex;
  match t.log with
  | Some log ->
      (* Logging sends copy under the mutex: the counters, queue and log
         must move together, and pooled buffers are never used. A replayed
         send (seq < high after a sender rewind) duplicates a logged
         payload the receiver already has or will get from the log — it is
         suppressed. *)
      let seq = t.sent in
      t.sent <- seq + 1;
      if seq >= t.high then begin
        let copy = Array.copy payload in
        Queue.push copy t.queue;
        Queue.push copy log;
        t.high <- t.sent;
        Condition.signal t.nonempty
      end;
      Mutex.unlock t.mutex
  | None ->
      let pooled = take_pooled t len in
      Mutex.unlock t.mutex;
      let copy =
        match pooled with
        | Some b ->
            Array.blit payload 0 b 0 len;
            b
        | None -> Array.copy payload
      in
      Mutex.lock t.mutex;
      t.sent <- t.sent + 1;
      t.high <- t.sent;
      Queue.push copy t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.mutex

let recv t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue do
    Condition.wait t.nonempty t.mutex
  done;
  let payload = pop_locked t in
  Mutex.unlock t.mutex;
  payload

(* As [recv], also reporting how long the caller was blocked on an empty
   queue (wall-clock us; 0 when a payload was already waiting). The clock
   is only read on the blocking path, so the fast path costs nothing. *)
let recv_wait t =
  Mutex.lock t.mutex;
  let wait =
    if Queue.is_empty t.queue then begin
      let t0 = Unix.gettimeofday () in
      while Queue.is_empty t.queue do
        Condition.wait t.nonempty t.mutex
      done;
      (Unix.gettimeofday () -. t0) *. 1e6
    end
    else 0.0
  in
  let payload = pop_locked t in
  Mutex.unlock t.mutex;
  (payload, wait)

(* As [recv_wait], but when the payload's length matches [dst]'s, its
   contents are blitted into [dst], the internal buffer is recycled for
   future sends (non-logging channels only), and [dst] is returned; on a
   length mismatch the payload itself is returned (the caller keeps the
   data either way). The buffer is recycled only after the blit — the
   sender may reuse it the moment it enters the pool. *)
let recv_into t dst =
  Mutex.lock t.mutex;
  let wait =
    if Queue.is_empty t.queue then begin
      let t0 = Unix.gettimeofday () in
      while Queue.is_empty t.queue do
        Condition.wait t.nonempty t.mutex
      done;
      (Unix.gettimeofday () -. t0) *. 1e6
    end
    else 0.0
  in
  let payload = pop_locked t in
  Mutex.unlock t.mutex;
  let len = Array.length payload in
  if len = Array.length dst then begin
    Array.blit payload 0 dst 0 len;
    Mutex.lock t.mutex;
    if may_pool t then Queue.push payload t.pool;
    Mutex.unlock t.mutex;
    (dst, wait)
  end
  else (payload, wait)

(* OCaml's [Condition] carries no timed wait, so a deadline receive polls
   the queue under the mutex and sleeps between probes with the shared
   {!Backoff.poll} policy (1 us doubling to a 1 ms cap): a payload
   already in flight is picked up within microseconds, while a dead
   sender costs at most one wakeup per millisecond until the deadline. A
   timed-out call pops nothing and pools nothing — the channel is left
   exactly as found, so it remains usable (and its counters consistent)
   after the timeout. *)

let recv_deadline t ~timeout_us =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. (timeout_us *. 1e-6) in
  let got = ref None in
  let ready () =
    Mutex.lock t.mutex;
    if not (Queue.is_empty t.queue) then begin
      got := Some (pop_locked t);
      Mutex.unlock t.mutex;
      true
    end
    else begin
      Mutex.unlock t.mutex;
      false
    end
  in
  ignore (Backoff.wait_until ~deadline ready);
  (!got, (Unix.gettimeofday () -. t0) *. 1e6)

let recv_into_deadline t dst ~timeout_us =
  match recv_deadline t ~timeout_us with
  | None, wait -> (None, wait)
  | Some payload, wait ->
      let len = Array.length payload in
      if len = Array.length dst then begin
        Array.blit payload 0 dst 0 len;
        Mutex.lock t.mutex;
        if may_pool t then Queue.push payload t.pool;
        Mutex.unlock t.mutex;
        (Some dst, wait)
      end
      else (Some payload, wait)

let try_recv t =
  Mutex.lock t.mutex;
  let payload =
    if Queue.is_empty t.queue then None else Some (pop_locked t)
  in
  Mutex.unlock t.mutex;
  payload

(* --- Recovery bookkeeping (logging channels) --- *)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let sent_mark t = locked t (fun () -> t.sent)
let recvd_mark t = locked t (fun () -> t.recvd)

(* Drop logged payloads below [upto]: the receiver's latest checkpoint
   covers them, so no rollback can ever ask for them again. The arrays are
   not recycled — a receiver may still hold them. *)
let release t ~upto =
  locked t (fun () ->
      match t.log with
      | None -> ()
      | Some log ->
          while t.base < upto && not (Queue.is_empty log) do
            ignore (Queue.pop log);
            t.base <- t.base + 1
          done)

(* Rewind the receive side to a checkpoint mark: everything the receiver
   consumed after [to_] is redelivered from the log, in order, ahead of
   whatever was still queued (which the log also holds — the queue is
   simply rebuilt as the logged suffix from [to_]). *)
let rewind_recv t ~to_ =
  let err =
    locked t (fun () ->
        match t.log with
        | None -> Some "Channel.rewind_recv: logging not enabled"
        | Some log ->
            if to_ < t.base then
              Some
                (Fmt.str
                   "Channel.rewind_recv: mark %d already released (base %d)"
                   to_ t.base)
            else begin
              Queue.clear t.queue;
              let skip = to_ - t.base in
              let i = ref 0 in
              Queue.iter
                (fun p ->
                  if !i >= skip then Queue.push p t.queue;
                  incr i)
                log;
              t.recvd <- to_;
              if not (Queue.is_empty t.queue) then Condition.signal t.nonempty;
              None
            end)
  in
  Option.iter invalid_arg err

(* Rewind the send side to a checkpoint mark: the respawned sender will
   re-issue sends from [to_], and [send] suppresses them while they
   duplicate logged payloads (seq < high). *)
let rewind_send t ~to_ =
  let err =
    locked t (fun () ->
        if t.log = None then Some "Channel.rewind_send: logging not enabled"
        else if to_ < 0 || to_ > t.high then
          Some (Fmt.str "Channel.rewind_send: mark %d out of range" to_)
        else begin
          t.sent <- to_;
          None
        end)
  in
  Option.iter invalid_arg err
