(* A blocking FIFO channel between two domains, the transport under the
   real (shared-memory) message-passing runtime. Payloads are float arrays;
   the sender copies on enqueue so the receiver owns what it dequeues.

   A receiver using [recv_into] hands its dequeued buffers back to a small
   pool, and [send] draws its enqueue copy from the pool when a buffer of
   the right length is waiting — so a steady-state tile loop (fixed face
   sizes between a fixed pair of ranks) allocates nothing per message. *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : float array Queue.t;
  pool : float array Queue.t;  (* recycled enqueue buffers *)
}

(* More than the queue ever holds in a steady-state tile loop; bounding it
   keeps a burst from pinning memory. *)
let pool_cap = 4

let create () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    pool = Queue.create ();
  }

(* Pop a pooled buffer of exactly [len] floats, if any (the pool can hold
   mixed lengths when tile heights vary; it is at most [pool_cap] long, so
   the scan is trivial). Caller holds the mutex. *)
let take_pooled t len =
  let n = Queue.length t.pool in
  let found = ref None in
  for _ = 1 to n do
    let b = Queue.pop t.pool in
    if !found = None && Array.length b = len then found := Some b
    else Queue.push b t.pool
  done;
  !found

let send t payload =
  let len = Array.length payload in
  Mutex.lock t.mutex;
  let pooled = take_pooled t len in
  Mutex.unlock t.mutex;
  let copy =
    match pooled with
    | Some b ->
        Array.blit payload 0 b 0 len;
        b
    | None -> Array.copy payload
  in
  Mutex.lock t.mutex;
  Queue.push copy t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let recv t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue do
    Condition.wait t.nonempty t.mutex
  done;
  let payload = Queue.pop t.queue in
  Mutex.unlock t.mutex;
  payload

(* As [recv], also reporting how long the caller was blocked on an empty
   queue (wall-clock us; 0 when a payload was already waiting). The clock
   is only read on the blocking path, so the fast path costs nothing. *)
let recv_wait t =
  Mutex.lock t.mutex;
  let wait =
    if Queue.is_empty t.queue then begin
      let t0 = Unix.gettimeofday () in
      while Queue.is_empty t.queue do
        Condition.wait t.nonempty t.mutex
      done;
      (Unix.gettimeofday () -. t0) *. 1e6
    end
    else 0.0
  in
  let payload = Queue.pop t.queue in
  Mutex.unlock t.mutex;
  (payload, wait)

(* As [recv_wait], but when the payload's length matches [dst]'s, its
   contents are blitted into [dst], the internal buffer is recycled for
   future sends, and [dst] is returned; on a length mismatch the payload
   itself is returned (the caller keeps the data either way). The buffer
   is recycled only after the blit — the sender may reuse it the moment it
   enters the pool. *)
let recv_into t dst =
  Mutex.lock t.mutex;
  let wait =
    if Queue.is_empty t.queue then begin
      let t0 = Unix.gettimeofday () in
      while Queue.is_empty t.queue do
        Condition.wait t.nonempty t.mutex
      done;
      (Unix.gettimeofday () -. t0) *. 1e6
    end
    else 0.0
  in
  let payload = Queue.pop t.queue in
  Mutex.unlock t.mutex;
  let len = Array.length payload in
  if len = Array.length dst then begin
    Array.blit payload 0 dst 0 len;
    Mutex.lock t.mutex;
    if Queue.length t.pool < pool_cap then Queue.push payload t.pool;
    Mutex.unlock t.mutex;
    (dst, wait)
  end
  else (payload, wait)

(* OCaml's [Condition] carries no timed wait, so a deadline receive polls
   the queue under the mutex and sleeps between probes with exponential
   backoff (1 us doubling to a 1 ms cap): a payload already in flight is
   picked up within microseconds, while a dead sender costs at most one
   wakeup per millisecond until the deadline. *)
let backoff_min = 1e-6
let backoff_max = 1e-3

let recv_deadline t ~timeout_us =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. (timeout_us *. 1e-6) in
  let rec poll sleep =
    Mutex.lock t.mutex;
    if not (Queue.is_empty t.queue) then begin
      let payload = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      Some payload
    end
    else begin
      Mutex.unlock t.mutex;
      if Unix.gettimeofday () >= deadline then None
      else begin
        Unix.sleepf sleep;
        poll (Float.min (sleep *. 2.0) backoff_max)
      end
    end
  in
  let payload = poll backoff_min in
  (payload, (Unix.gettimeofday () -. t0) *. 1e6)

let recv_into_deadline t dst ~timeout_us =
  match recv_deadline t ~timeout_us with
  | None, wait -> (None, wait)
  | Some payload, wait ->
      let len = Array.length payload in
      if len = Array.length dst then begin
        Array.blit payload 0 dst 0 len;
        Mutex.lock t.mutex;
        if Queue.length t.pool < pool_cap then Queue.push payload t.pool;
        Mutex.unlock t.mutex;
        (Some dst, wait)
      end
      else (Some payload, wait)

let try_recv t =
  Mutex.lock t.mutex;
  let payload = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  payload
