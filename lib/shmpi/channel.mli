(** A blocking FIFO channel between two domains. The payload is copied on
    [send], so sender and receiver never share the array. *)

type t

val create : unit -> t
val send : t -> float array -> unit

val recv : t -> float array
(** Blocks until a payload is available. *)

val recv_wait : t -> float array * float
(** As {!recv}, also returning how long the call was blocked on an empty
    queue, in wall-clock microseconds ([0.] if a payload was already
    there). *)

val try_recv : t -> float array option
