(** A blocking FIFO channel between two domains. The payload is copied on
    [send], so sender and receiver never share the array. *)

type t

val create : unit -> t
val send : t -> float array -> unit

val recv : t -> float array
(** Blocks until a payload is available. *)

val recv_wait : t -> float array * float
(** As {!recv}, also returning how long the call was blocked on an empty
    queue, in wall-clock microseconds ([0.] if a payload was already
    there). *)

val recv_into : t -> float array -> float array * float
(** As {!recv_wait}, receiving into a caller-owned buffer: when the next
    payload's length equals the buffer's, the data is blitted in, the
    channel's internal buffer is recycled for future {!send}s, and the
    caller's buffer is returned — a steady-state loop reusing one buffer
    per face allocates nothing per message. On a length mismatch (e.g. a
    short last tile) the payload is returned unchanged instead. *)

val recv_deadline : t -> timeout_us:float -> float array option * float
(** As {!recv_wait}, but gives up after [timeout_us] microseconds of
    waiting, returning [None] and the time actually waited. [Condition]
    carries no timed wait, so the blocking path polls with exponential
    backoff (1 us doubling to a 1 ms cap) — cheap for payloads already in
    flight, bounded wakeups while waiting out a dead sender. *)

val recv_into_deadline :
  t -> float array -> timeout_us:float -> float array option * float
(** {!recv_into} with the deadline semantics of {!recv_deadline}. A
    timed-out call pops nothing and pools nothing: the channel is left
    exactly as found and stays usable afterwards. *)

val try_recv : t -> float array option

(** {1 Message logging (recovery support)}

    With logging enabled, every enqueued payload is retained under
    monotone sequence numbers until the receiver's checkpoint covers it;
    after a rollback the logged tail is redelivered and a respawned
    sender's replayed sends are suppressed. Logged payloads alias the
    delivered arrays, so a logging channel never recycles buffers into
    its send pool. *)

val enable_log : t -> unit
(** Switch the channel into logging mode (idempotent). Call before any
    traffic. *)

val logging : t -> bool

val sent_mark : t -> int
(** Sequence number the next {!send} will carry — the sender-side
    checkpoint mark. *)

val recvd_mark : t -> int
(** Payloads the receiver has consumed — the receiver-side checkpoint
    mark. *)

val release : t -> upto:int -> unit
(** Drop logged payloads with sequence below [upto]: the receiver's
    latest checkpoint covers them, so no rollback can ask for them
    again. No-op on a non-logging channel. *)

val rewind_recv : t -> to_:int -> unit
(** Rewind the receive side to checkpoint mark [to_]: payloads consumed
    after it are redelivered from the log, in order. Raises
    [Invalid_argument] if logging is off or the mark was released. *)

val rewind_send : t -> to_:int -> unit
(** Rewind the send side to checkpoint mark [to_]: the respawned
    sender's replayed sends are suppressed while they duplicate logged
    payloads. Raises [Invalid_argument] if logging is off or the mark is
    out of range. *)
