(** A blocking FIFO channel between two domains. The payload is copied on
    [send], so sender and receiver never share the array. *)

type t

val create : unit -> t
val send : t -> float array -> unit

val recv : t -> float array
(** Blocks until a payload is available. *)

val recv_wait : t -> float array * float
(** As {!recv}, also returning how long the call was blocked on an empty
    queue, in wall-clock microseconds ([0.] if a payload was already
    there). *)

val recv_into : t -> float array -> float array * float
(** As {!recv_wait}, receiving into a caller-owned buffer: when the next
    payload's length equals the buffer's, the data is blitted in, the
    channel's internal buffer is recycled for future {!send}s, and the
    caller's buffer is returned — a steady-state loop reusing one buffer
    per face allocates nothing per message. On a length mismatch (e.g. a
    short last tile) the payload is returned unchanged instead. *)

val recv_deadline : t -> timeout_us:float -> float array option * float
(** As {!recv_wait}, but gives up after [timeout_us] microseconds of
    waiting, returning [None] and the time actually waited. [Condition]
    carries no timed wait, so the blocking path polls with exponential
    backoff (1 us doubling to a 1 ms cap) — cheap for payloads already in
    flight, bounded wakeups while waiting out a dead sender. *)

val recv_into_deadline :
  t -> float array -> timeout_us:float -> float array option * float
(** {!recv_into} with the deadline semantics of {!recv_deadline}. *)

val try_recv : t -> float array option
