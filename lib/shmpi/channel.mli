(** A blocking FIFO channel between two domains. The payload is copied on
    [send], so sender and receiver never share the array. *)

type t

val create : unit -> t
val send : t -> float array -> unit

val recv : t -> float array
(** Blocks until a payload is available. *)

val recv_wait : t -> float array * float
(** As {!recv}, also returning how long the call was blocked on an empty
    queue, in wall-clock microseconds ([0.] if a payload was already
    there). *)

val recv_into : t -> float array -> float array * float
(** As {!recv_wait}, receiving into a caller-owned buffer: when the next
    payload's length equals the buffer's, the data is blitted in, the
    channel's internal buffer is recycled for future {!send}s, and the
    caller's buffer is returned — a steady-state loop reusing one buffer
    per face allocates nothing per message. On a length mismatch (e.g. a
    short last tile) the payload is returned unchanged instead. *)

val try_recv : t -> float array option
