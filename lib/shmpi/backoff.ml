(* The single definition of the repository's polling backoff: 1 us
   doubling to a 1 ms cap (see backoff.mli for why it exists). *)

type policy = { min_s : float; max_s : float }

let v ~min_s ~max_s =
  if not (min_s > 0.0 && min_s <= max_s) then
    invalid_arg "Backoff.v: need 0 < min_s <= max_s";
  { min_s; max_s }

let poll = { min_s = 1e-6; max_s = 1e-3 }
let first p = p.min_s
let next p sleep = Float.min (sleep *. 2.0) p.max_s

(* Decorrelated jitter (Brooker): uniform in [min, 3 * prev), capped.
   The draw keeps retriers spread out instead of re-colliding on the
   doubling ladder's rungs. *)
let jittered p ~rand sleep =
  let hi = 3.0 *. sleep in
  let drawn = if hi <= p.min_s then p.min_s else p.min_s +. rand (hi -. p.min_s) in
  Float.min drawn p.max_s

let wait_until ?(policy = poll) ~deadline ready =
  let rec go sleep =
    if ready () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf sleep;
      go (next policy sleep)
    end
  in
  go (first policy)
