(* The ping-pong microbenchmark of paper Section 3, measured for real on the
   shared-memory substrate: two domains exchange a payload back and forth
   and we record half the average round-trip time per message size. Fitting
   the LogGP sub-models to this curve (with Loggp.Fit) instantiates the
   plug-and-play workflow on the machine this library is running on. *)

let floats_for_bytes bytes = max 1 ((bytes + 7) / 8)

let half_round_trip ?(rounds = 200) ?(batches = 5) ~size_bytes () =
  let payload = Array.make (floats_for_bytes size_bytes) 1.0 in
  let result =
    Runtime.run ~ranks:2 (fun comm rank ->
        let exchange () =
          if rank = 0 then begin
            Comm.send comm ~src:0 ~dst:1 payload;
            ignore (Comm.recv comm ~dst:0 ~src:1)
          end
          else begin
            ignore (Comm.recv comm ~dst:1 ~src:0);
            Comm.send comm ~src:1 ~dst:0 payload
          end
        in
        (* Warm up channel and scheduler. *)
        for _ = 1 to 10 do exchange () done;
        (* Best of [batches] timed batches, to suppress scheduler noise on
           oversubscribed machines. *)
        let best = ref infinity in
        for _ = 1 to batches do
          Comm.barrier comm;
          let start = Runtime.now_us () in
          for _ = 1 to rounds do exchange () done;
          best := Float.min !best (Runtime.now_us () -. start)
        done;
        !best)
  in
  let elapsed = Float.max result.values.(0) result.values.(1) in
  elapsed /. (2.0 *. float_of_int rounds)

let curve ?rounds ~sizes () =
  List.map (fun s -> (s, half_round_trip ?rounds ~size_bytes:s ())) sizes

(* Fit a LogGP model to a measured curve and package it as a platform usable
   directly with the plug-and-play model (all links on-chip).

   Real shared-memory transports are piecewise, like the paper's XT4 curves
   — here the knee is where payload copies outgrow the cache rather than an
   eager/rendezvous switch — so we first try the two-segment on-chip fit
   with a detected break, and fall back to a single relative-error-weighted
   segment when the curve has no usable break (fewer than two points per
   side, or a non-physical slope). *)
let fit_single points =
  let fpoints =
    List.map (fun (s, t) -> (float_of_int s, t, 1.0 /. (t *. t))) points
  in
  let g, intercept = Loggp.Fit.linreg_weighted fpoints in
  if g < 0.0 || intercept < 0.0 then
    invalid_arg "Pingpong.fit_platform: non-physical fit (negative G or o)";
  let o = Float.max 0.0 (intercept /. 2.0) in
  ({ g_copy = g; g_dma = g; o_copy = o; o_dma = 0.0; eager_limit = max_int }
    : Loggp.Params.onchip)

let fit_platform ?(name = "OCaml shared-memory") points =
  let onchip =
    match Loggp.Fit.fit_onchip points with
    | fitted, _
      when fitted.g_copy > 0.0 && fitted.g_dma > 0.0 && fitted.o_copy >= 0.0
           && fitted.o_dma >= 0.0 ->
        fitted
    | _ | (exception Invalid_argument _) -> fit_single points
  in
  let offnode : Loggp.Params.offnode =
    {
      g = onchip.g_dma;
      l = 0.0;
      o = onchip.o_copy +. (onchip.o_dma /. 2.0);
      o_h = 0.0;
      eager_limit = max_int;
    }
  in
  { Loggp.Params.name; offnode; onchip; cores_per_node = 1 }

(* The same microbenchmark signature the simulated transport exposes, so
   `wavefront fit` drives either through one interface. *)
let microbench () : (module Wrun.Substrate.MICROBENCH) =
  (module struct
    let name = "shared-memory ping-pong"
    let curve = curve
  end)
