(** A small MPI-like communicator over OCaml 5 domains: ranked blocking
    point-to-point messages, a barrier, and an all-reduce. *)

type t

exception Timeout of { rank : int; src : int; op : string; waited_us : float }
(** A blocking wait exceeded the communicator's deadline: [rank] is the
    waiting rank, [src] the awaited sender ([-1] for the barrier, which
    waits on everyone), [op] the operation ("recv", "recv_into",
    "barrier"). Only raised when {!create} was given [timeout_us]. *)

val create :
  ?obs:Obs.Tracer.t array -> ?log:bool -> ?timeout_us:float -> int -> t
(** [obs] attaches one tracer per rank (the array must have one entry per
    rank): {!send}, {!recv}, {!barrier_r} and {!allreduce} then record
    spans on the calling rank's tracer, each written only from that rank's
    domain. [recv] spans carry a ["wait"] arg with the time blocked on an
    empty channel, and ["src"]/["dst"] args make the spans usable with
    [Obs.Critical_path.edges_of_spans]. Without [obs] every operation
    costs a single length check.

    [log] (default false) enables message logging on every channel
    ({!Channel.enable_log}) — required by the recovery supervisor, which
    rewinds and replays channels from their logs. Logging disables the
    channels' buffer pooling (logged payloads alias delivered arrays).

    [timeout_us] bounds every blocking wait — {!recv}, {!recv_into}, the
    barrier, and the collectives built on them — raising {!Timeout}
    instead of hanging when a peer has died. Sends are buffered and never
    block, so with a deadline set no operation can wait forever. The
    deadline path polls with exponential backoff (1 us to a 1 ms cap), so
    it only changes costs when a wait is already long. *)

val ranks : t -> int

val channel : t -> src:int -> dst:int -> Channel.t
(** The directed channel carrying [src]'s messages to [dst], for the
    recovery supervisor's mark/release/rewind bookkeeping. *)

val send : t -> src:int -> dst:int -> float array -> unit
(** Buffered (eager) send: copies the payload and returns. *)

val recv : t -> dst:int -> src:int -> float array
(** Blocks until a message from [src] arrives. Messages between a given
    pair are delivered in order. *)

val recv_into : t -> dst:int -> src:int -> float array -> float array
(** As {!recv}, receiving into a caller-owned buffer ({!Channel.recv_into}):
    returns the buffer filled with the message when lengths match — with
    the channel's internal buffer recycled, so a steady-state tile loop
    allocates nothing per message — and the message itself otherwise. *)

val barrier : t -> unit
(** All ranks must call; reusable. *)

val barrier_r : t -> rank:int -> unit
(** As {!barrier}, identifying the caller so the wait is recorded as a
    span when tracing is on. *)

val allreduce : t -> rank:int -> op:(float -> float -> float) -> float -> float
(** Recursive-doubling all-reduce; all ranks must call with their value and
    receive the reduction. Works for any rank count. *)

val broadcast : t -> rank:int -> root:int -> float array -> float array
(** Binomial-tree broadcast; all ranks call, all receive root's payload
    (the root gets its own back). *)

val reduce :
  t ->
  rank:int ->
  root:int ->
  op:(float -> float -> float) ->
  float array ->
  float array option
(** Binomial-tree element-wise reduction; [Some result] at the root, [None]
    elsewhere. All payloads must have equal length. *)

val gather : t -> rank:int -> root:int -> float array -> float array array option
(** Gather every rank's payload at the root, indexed by rank. *)
