(** Channel-level supervision for uncoordinated rollback with message
    logging. The communicator must have been created with [log:true].

    At each checkpoint a rank records its {!marks} and {!release}s the
    senders' logs its checkpoint covers (bounding every log to O(K)
    messages); when it is respawned, {!rollback} rewinds its channels to
    the checkpoint's marks — consumed-but-uncovered messages are
    redelivered from the logs and replayed sends are suppressed. Only
    the failed rank rolls back: the wavefront DAG gives each message a
    single consumer downstream of its send, so there is no domino
    effect, by construction. *)

type marks = { sent : int array; recvd : int array }
(** Indexed by peer rank [p]: [sent.(p)] is the mark on channel
    rank->[p], [recvd.(p)] on channel [p]->rank (0 for self and
    non-neighbours). *)

val marks : Comm.t -> rank:int -> marks
(** The rank's current channel marks, to store in its checkpoint. *)

val release : Comm.t -> rank:int -> marks -> unit
(** Tell every sender its log is covered up to the checkpoint's receive
    marks. Call right after taking the checkpoint. *)

val rollback : Comm.t -> rank:int -> marks -> unit
(** Rewind the failed rank's channels to its checkpoint's marks, before
    re-running its program from the checkpoint's position. Raises
    [Invalid_argument] if a mark was already released (the store and the
    release schedule disagree). *)
