(* Channel-level supervision for uncoordinated rollback with message
   logging (the communicator must have been created with [log:true]).

   The protocol, per rank R:
   - at every checkpoint, R records its [marks]: how many messages it has
     sent on each outgoing channel and consumed on each incoming one, and
     tells the senders their logs are covered up to those receive marks
     ([release]) — which bounds every log to O(K) messages;
   - when R dies and is respawned from its last checkpoint, [rollback]
     rewinds R's channels to the checkpoint's marks: consumed-but-
     uncovered messages are redelivered from the senders' logs, and R's
     own replayed sends are suppressed while they duplicate logged ones.

   No other rank rolls back: the wavefront DAG gives messages a single
   consumer downstream of their send, so a sender's state never depends
   on the restored rank's lost progress — uncoordinated rollback with no
   domino effect, by construction. *)

type marks = { sent : int array; recvd : int array }
(* Indexed by peer rank: [sent.(p)] on channel rank->p, [recvd.(p)] on
   channel p->rank. Self and non-neighbour entries just hold 0. *)

let marks comm ~rank =
  let ranks = Comm.ranks comm in
  {
    sent =
      Array.init ranks (fun p ->
          if p = rank then 0
          else Channel.sent_mark (Comm.channel comm ~src:rank ~dst:p));
    recvd =
      Array.init ranks (fun p ->
          if p = rank then 0
          else Channel.recvd_mark (Comm.channel comm ~src:p ~dst:rank));
  }

let release comm ~rank (m : marks) =
  let ranks = Comm.ranks comm in
  for p = 0 to ranks - 1 do
    if p <> rank then
      Channel.release (Comm.channel comm ~src:p ~dst:rank) ~upto:m.recvd.(p)
  done

let rollback comm ~rank (m : marks) =
  let ranks = Comm.ranks comm in
  for p = 0 to ranks - 1 do
    if p <> rank then begin
      Channel.rewind_send (Comm.channel comm ~src:rank ~dst:p) ~to_:m.sent.(p);
      Channel.rewind_recv
        (Comm.channel comm ~src:p ~dst:rank)
        ~to_:m.recvd.(p)
    end
  done
