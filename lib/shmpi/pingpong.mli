(** The ping-pong microbenchmark of Section 3, measured for real on the
    shared-memory substrate. *)

val half_round_trip :
  ?rounds:int -> ?batches:int -> size_bytes:int -> unit -> float
(** Half the average round-trip time (us) between two domains; best of
    [batches] timed batches of [rounds] exchanges, to suppress scheduler
    noise on oversubscribed machines. *)

val curve : ?rounds:int -> sizes:int list -> unit -> (int * float) list

val fit_platform : ?name:string -> (int * float) list -> Loggp.Params.t
(** Fit a LogGP model to a measured curve and package it as a platform
    usable with the plug-and-play model (all links on-chip). Tries the
    two-segment on-chip fit first — real shared-memory curves are piecewise,
    with a cache knee instead of the XT4's protocol knee — and falls back to
    a single relative-error-weighted segment. Raises [Invalid_argument] if
    even the fallback is non-physical. *)

val microbench : unit -> (module Wrun.Substrate.MICROBENCH)
(** {!curve} behind the one microbenchmark signature `wavefront fit`
    drives, so the real and the simulated transport feed {!Loggp.Fit}
    identically. *)
