(** Spawning ranked programs on OCaml 5 domains. Rank 0 runs on the calling
    domain. Times are in microseconds (wall clock). *)

type 'a result = { values : 'a array; wall_time : float }

exception
  Rank_failure of {
    rank : int;  (** lowest-numbered failing rank, whose exception this is *)
    failed : int list;  (** every rank that raised, ascending *)
    exn : exn;
    backtrace : string;
  }
(** Raised by {!run} after all domains have been joined when any rank's
    program raised. The original exception is preserved in [exn]; a
    printer is registered so the failure reads with its rank context. *)

val run :
  ?obs:Obs.Tracer.t array ->
  ?log:bool ->
  ?timeout_us:float ->
  ranks:int ->
  (Comm.t -> int -> 'a) ->
  'a result
(** Run [f comm rank] on [ranks] domains. [log] enables channel message
    logging on the communicator ({!Comm.create}), as the recovery
    supervisor requires. Every domain is joined before
    returning — a raising rank does not leak the others — and any failure
    is re-raised as {!Rank_failure}. Note that a raising rank can leave
    peers blocked in [Comm.recv] forever; structure programs so failures
    are either collective or upstream of every receive — or pass
    [timeout_us], which bounds every blocking {!Comm} wait so starved
    peers raise {!Comm.Timeout} (collected into the same {!Rank_failure})
    instead of hanging the join.

    [obs] (one tracer per rank) records a ["rank"] span covering each
    rank's whole program and turns on per-operation spans in {!Comm};
    each tracer is written only from its own domain, so plain wall-clock
    tracers need no synchronization. Merge them after {!run} returns with
    [Obs.Tracer.merge]. *)

val time : (unit -> 'a) -> 'a * float
val now_us : unit -> float
