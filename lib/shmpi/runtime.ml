(* Spawning ranked programs on OCaml 5 domains and timing them. *)

type 'a result = {
  values : 'a array;  (** per-rank return values *)
  wall_time : float;  (** elapsed wall-clock time, us *)
}

exception
  Rank_failure of {
    rank : int;
    failed : int list;
    exn : exn;
    backtrace : string;
  }

let () =
  Printexc.register_printer (function
    | Rank_failure { rank; failed; exn; backtrace } ->
        Some
          (Printf.sprintf "Rank_failure: rank %d raised %s (failed ranks: %s)%s"
             rank (Printexc.to_string exn)
             (String.concat ", " (List.map string_of_int failed))
             (if backtrace = "" then "" else "\n" ^ backtrace))
    | _ -> None)

let now_us () = Unix.gettimeofday () *. 1e6

let run ?obs ?log ?timeout_us ~ranks f =
  if ranks < 1 then invalid_arg "Runtime.run: ranks must be >= 1";
  (match obs with
  | Some a when Array.length a <> ranks ->
      invalid_arg "Runtime.run: need one tracer per rank"
  | _ -> ());
  let comm = Comm.create ?obs ?log ?timeout_us ranks in
  let body rank () =
    let wrapped () =
      match f comm rank with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_backtrace ())
    in
    match obs with
    | None -> wrapped ()
    | Some trs -> Obs.Tracer.span trs.(rank) ~cat:"rank" ~rank "rank" wrapped
  in
  let start = now_us () in
  (* Every domain is joined even when some rank raises, so no domain is
     leaked and every failure is collected rather than only the first. *)
  let domains = Array.init (ranks - 1) (fun k -> Domain.spawn (body (k + 1))) in
  let r0 = body 0 () in
  let results = Array.append [| r0 |] (Array.map Domain.join domains) in
  let wall_time = now_us () -. start in
  let failed =
    Array.to_list results
    |> List.mapi (fun rank r ->
           match r with Error _ -> Some rank | Ok _ -> None)
    |> List.filter_map Fun.id
  in
  match failed with
  | [] ->
      let values =
        Array.map (function Ok v -> v | Error _ -> assert false) results
      in
      { values; wall_time }
  | rank :: _ ->
      let exn, backtrace =
        match results.(rank) with
        | Error (exn, bt) -> (exn, bt)
        | Ok _ -> assert false
      in
      raise (Rank_failure { rank; failed; exn; backtrace })

let time f =
  let start = now_us () in
  let v = f () in
  (v, now_us () -. start)
