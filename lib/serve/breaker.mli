(** A circuit breaker guarding an expensive, failure-prone dependency —
    here the batched-engine validation path behind [/v1/predict].

    Classic three-state machine:

    - [Closed]: calls flow; outcomes land in a sliding window of the
      last [window] results. Once at least [min_calls] outcomes are in
      the window and the failure fraction reaches [failure_threshold],
      the breaker opens.
    - [Open]: calls are rejected without touching the dependency until
      [cooldown_s] has elapsed, then the breaker moves to half-open.
    - [Half_open]: exactly one probe call is admitted ([`Probe]); its
      success closes the breaker (window reset), its failure re-opens it
      (cooldown restarts). Concurrent callers during the probe are
      rejected.

    Every operation takes [~now] explicitly — the state machine is
    driven by the caller's clock, so tests exercise open/cool-down/probe
    transitions with a fake clock and QCheck pins the contracts
    (opens after threshold, single probe, monotone reconciling
    counters). All operations are thread-safe. *)

type t

type state = Closed | Open | Half_open

val create :
  ?window:int ->
  ?min_calls:int ->
  ?failure_threshold:float ->
  ?cooldown_s:float ->
  unit ->
  t
(** Defaults: [window = 16], [min_calls = 4], [failure_threshold = 0.5],
    [cooldown_s = 2.0]. Raises [Invalid_argument] on a non-positive
    window/min_calls/cooldown or a threshold outside (0, 1]. *)

val state : now:float -> t -> state
(** Observing the state applies any due [Open] → [Half_open] transition. *)

val acquire : now:float -> t -> [ `Run | `Probe | `Reject ]
(** Ask to call the dependency. [`Run] (closed), [`Probe] (the single
    half-open trial — caller must {!record} its outcome), or [`Reject]
    (open, or half-open with the probe already out). Every [`Run] or
    [`Probe] must be followed by exactly one {!record}. *)

val record : now:float -> ok:bool -> t -> unit
(** Report the outcome of an admitted call. *)

(** {1 Monotone counters}

    [admitted = successes + failures] once every admitted call has been
    recorded; [admitted + rejected] is the total number of {!acquire}
    calls. *)

val admitted : t -> int
val rejected : t -> int
val successes : t -> int
val failures : t -> int

val opens : t -> int
(** Closed/half-open → open transitions. *)

val closes : t -> int
(** Half-open → closed transitions (successful probes). *)
