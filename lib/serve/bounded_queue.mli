(** The admission queue: a capacity-bounded MPMC queue that sheds instead
    of growing.

    The server's accept loop [try_push]es connections and immediately
    answers 429 when the queue is full — load shedding happens at
    admission, before any request bytes are read, so an overloaded
    server's refusal costs microseconds instead of a worker. Contracts
    (pinned by QCheck in [test/suite_serve.ml]):

    - [length] never exceeds [capacity];
    - [try_push] returns [`Full] exactly when [length = capacity] at the
      call (shed ⇔ full);
    - after [close], pushes return [`Closed] and [pop] drains the
      remaining items then returns [None] — the graceful-drain
      handshake. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val try_push : 'a t -> 'a -> [ `Queued | `Full | `Closed ]
(** Never blocks. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available or the queue is closed and empty
    ([None]). Closing wakes every blocked popper. *)

val close : 'a t -> unit
(** Idempotent. Queued items remain poppable (drain); new pushes are
    refused. *)

val closed : 'a t -> bool

val pushed : 'a t -> int
(** Items ever accepted ([`Queued]); monotone. *)

val shed : 'a t -> int
(** Pushes refused with [`Full]; monotone. *)
