(** The serve daemon's JSON API: request parsing, model evaluation and
    response serialization for [/v1/predict] and [/v1/sweep].

    Malformed input is an [Error] carrying a client-facing message (the
    server turns it into a 400); nothing here raises on hostile bodies.
    Responses are serialized into a caller-owned [Buffer.t] so the
    per-request hot path ({!predict_into}: parse → {!Plugplay.Eval.run}
    → serialize) reuses one buffer per worker — the [serve-predict]
    telemetry target pins that pipeline's minor-heap allocation.

    [/v1/predict] request shape:
    {v
    { "app": { "name": "lu" | "sweep3d" | "chimaera",
               "nx": int, "ny": int, "nz": int,
               "wg"?: number, "htile"?: number, "iterations"?: int },
      "machine": { "platform": "xt4" | "sp2" | "bluegene_l" | "red_storm",
                   "cores": int, "cores_per_node": int },
      "validate"?: bool }
    v}

    [/v1/sweep] replaces ["machine".cores] with explicit design-space
    axes and adds the resilience-policy axis:
    {v
    { "app": ..., "machine": { "platform": ..., "cores_per_node": int },
      "htile": [number, ...],
      "grids": [[cols, rows], ...],
      "k": [int, ...],
      "ckpt_cost"?: number, "restart_cost"?: number, "failures"?: int }
    v} *)

type predict = {
  app : Wavefront_core.App_params.t;
  platform : Loggp.Params.t;  (** already specialized to [cpn] *)
  cfg : Wavefront_core.Plugplay.config;
  cores : int;
  cpn : int;
  validate : bool;  (** caller asked for batched-engine cross-validation *)
}

val parse_predict : string -> (predict, string) result

(** Outcome of the breaker-guarded batched-engine validation. *)
type validation =
  | Not_requested
  | Validated of {
      cores : int;  (** validation grid size (clamped) *)
      engine : float;  (** batched-engine per-iteration time, us *)
      model : float;  (** model [t_iteration] on the same clamped grid *)
      error_pct : float;
    }
  | Degraded of string
      (** validation requested but unavailable (breaker open or the
          dependency failed); the prediction is still served, flagged
          ["degraded": true] *)

val validate_run : ?max_cores:int -> predict -> validation
(** Run the wave-batched engine on the request's configuration, the
    processor grid clamped to [max_cores] (default 64) so a million-core
    prediction costs a bounded validation. Always returns [Validated];
    exceptions escape to the caller (the breaker records them). *)

val eval_predict_into : Buffer.t -> predict -> validation:validation -> unit
(** Clear the buffer and serialize the [wavefront-predict/v1] response:
    the {!Plugplay.Eval} breakdown plus the validation verdict. *)

val predict_into : Buffer.t -> string -> (unit, string) result
(** [parse_predict] + [eval_predict_into ~validation:Not_requested] in
    one call — the pipeline the [serve-predict] telemetry target
    measures. *)

(** {1 Sweep} *)

val max_sweep_points : int
(** 4096 — requests describing more points are refused (400), the
    admission-control twin of the body-size cap. *)

val max_point_cores : int
(** 1_048_576 — per-point grid-size ceiling. *)

type sweep

val parse_sweep : string -> (sweep, string) result
val sweep_points : sweep -> int
(** [|htile| * |grids| * |k|], validated [<= max_sweep_points]. *)

type point = {
  htile : float;
  cols : int;
  rows : int;
  k : int;  (** checkpoint interval, waves; 0 = recovery off *)
  cores : int;
  t_iter : float;  (** model (r5) per-iteration time, us *)
  overhead : float;  (** expected per-iteration resilience overhead, us *)
  total : float;  (** [t_iter + overhead] *)
}

val run_sweep :
  ?check_every:int ->
  deadline:Deadline.t ->
  sweep ->
  [ `Done of point list | `Expired of int ]
(** Evaluate every point, checking the deadline every [check_every]
    points (default 16) — the cooperative-cancellation checkpoint, so a
    sweep overruns its deadline by at most one checkpoint interval.
    [`Expired n] reports how many points were evaluated before giving
    up (the server answers 504). *)

val pareto : point list -> point list
(** The (cores, total) Pareto frontier: cheapest total at each core
    count, keeping only points no larger configuration beats. Sorted by
    increasing [cores]. *)

val render_sweep_into : Buffer.t -> sweep -> point list -> unit
(** Clear the buffer and serialize the [wavefront-sweep/v1] response:
    all points plus the {!pareto} frontier. *)
