type t = float

let none = infinity

let of_budget_ms ~now ms =
  if Float.is_nan ms || ms <= 0.0 then now
  else if ms = infinity then none
  else now +. (ms /. 1000.0)

let expired ~now t = now >= t
let remaining_s ~now t = if t = none then infinity else Float.max 0.0 (t -. now)
