(** Request deadlines as absolute wall-clock instants.

    A deadline is set once at admission (from the [X-Deadline-Ms] header
    or the server default) and propagated down the call chain as a plain
    float — every layer compares against the same instant, so queueing
    delay, parse time and evaluation all draw from one budget instead of
    each layer granting itself a fresh timeout.

    All operations take [~now] explicitly so tests can drive a fake
    clock. Contracts pinned by QCheck in [test/suite_serve.ml]:
    [of_budget_ms] + [expired] never cut a budget short, and cooperative
    checkpoint loops overrun a deadline by at most one checkpoint
    interval. *)

type t = float
(** Absolute unix seconds; {!none} means no deadline. *)

val none : t
(** [infinity] — never expires. *)

val of_budget_ms : now:float -> float -> t
(** [of_budget_ms ~now ms] is the instant [ms] milliseconds after [now].
    Non-positive or non-finite budgets yield an already-expired deadline
    ([now]). *)

val expired : now:float -> t -> bool

val remaining_s : now:float -> t -> float
(** Seconds left; never negative; [infinity] for {!none}. *)
