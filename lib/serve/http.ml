let max_header_bytes = 16 * 1024

type request = {
  meth : string;
  path : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type read_error =
  | Bad_request of string
  | Too_large
  | Timeout
  | Closed

let header r name =
  List.assoc_opt (String.lowercase_ascii name) r.headers

(* Wait until [fd] is readable or the deadline passes. *)
let wait_readable fd ~deadline =
  let remaining = Deadline.remaining_s ~now:(Unix.gettimeofday ()) deadline in
  if remaining <= 0.0 then `Timeout
  else
    (* select's timeout must be finite; 1h chunks are fine for an
       effectively unbounded deadline. *)
    let tmo = Float.min remaining 3600.0 in
    match Unix.select [ fd ] [] [] tmo with
    | [], _, _ -> if remaining <= tmo then `Timeout else `Again
    | _ -> `Ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again

(* Read up to [len] more bytes into [buf] at [pos], deadline-gated. *)
let rec read_some fd buf pos len ~deadline =
  match wait_readable fd ~deadline with
  | `Timeout -> `Timeout
  | `Again -> read_some fd buf pos len ~deadline
  | `Ready -> (
      match Unix.read fd buf pos len with
      | 0 -> `Closed
      | n -> `Read n
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          read_some fd buf pos len ~deadline
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
        ->
          `Closed)

(* Accumulate until the header terminator CRLFCRLF (or bare LFLF) shows
   up, never keeping more than [max_header_bytes]. Returns the raw
   header block and any body bytes that arrived with it. *)
let read_header_block fd ~deadline =
  let buf = Bytes.create max_header_bytes in
  let filled = ref 0 in
  let find_terminator () =
    (* Search for \r\n\r\n or \n\n in [0, filled). Returns end-of-header
       offset (index one past the terminator) or -1. *)
    let n = !filled in
    let rec go i =
      if i >= n then -1
      else if
        i + 3 < n
        && Bytes.get buf i = '\r'
        && Bytes.get buf (i + 1) = '\n'
        && Bytes.get buf (i + 2) = '\r'
        && Bytes.get buf (i + 3) = '\n'
      then i + 4
      else if i + 1 < n && Bytes.get buf i = '\n' && Bytes.get buf (i + 1) = '\n'
      then i + 2
      else go (i + 1)
    in
    go 0
  in
  let rec loop () =
    match find_terminator () with
    | stop ->
        if stop >= 0 then
          Ok
            ( Bytes.sub_string buf 0 stop,
              Bytes.sub_string buf stop (!filled - stop) )
        else if !filled >= max_header_bytes then Error Too_large
        else
          (match
             read_some fd buf !filled (max_header_bytes - !filled) ~deadline
           with
          | `Timeout -> Error Timeout
          | `Closed -> Error Closed
          | `Read n ->
              filled := !filled + n;
              loop ())
  in
  loop ()

let parse_headers lines =
  let parse acc line =
    match acc with
    | Error _ as e -> e
    | Ok hs -> (
        match String.index_opt line ':' with
        | None -> Error (Bad_request "header line without ':'")
        | Some i ->
            let name = String.lowercase_ascii (String.sub line 0 i) in
            let value =
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            in
            if name = "" then Error (Bad_request "empty header name")
            else Ok ((name, value) :: hs))
  in
  Result.map List.rev (List.fold_left parse (Ok []) lines)

let split_lines block =
  (* Split on \n, dropping a trailing \r from each line. *)
  String.split_on_char '\n' block
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
  |> List.filter (fun l -> l <> "")

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; path; version ] when meth <> "" && path <> "" ->
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        Error (Bad_request ("unsupported version " ^ version))
      else Ok (String.uppercase_ascii meth, path, version)
  | _ -> Error (Bad_request "malformed request line")

let read_request ?(max_body = 1024 * 1024) ~deadline fd =
  match read_header_block fd ~deadline with
  | Error _ as e -> e
  | Ok (block, prefix) -> (
      match split_lines block with
      | [] -> Error (Bad_request "empty request")
      | req_line :: header_lines -> (
          match parse_request_line req_line with
          | Error _ as e -> e
          | Ok (meth, path, version) -> (
              match parse_headers header_lines with
              | Error _ as e -> e
              | Ok headers -> (
                  let content_length =
                    match List.assoc_opt "content-length" headers with
                    | None -> Ok 0
                    | Some v -> (
                        match int_of_string_opt (String.trim v) with
                        | Some n when n >= 0 -> Ok n
                        | _ -> Error (Bad_request "bad Content-Length"))
                  in
                  match content_length with
                  | Error _ as e -> e
                  | Ok len ->
                      if
                        (meth = "POST" || meth = "PUT")
                        && not (List.mem_assoc "content-length" headers)
                      then Error (Bad_request "missing Content-Length")
                      else if len > max_body then
                        (* Refuse before reading: the advertised size alone
                           condemns the request. *)
                        Error Too_large
                      else if String.length prefix > len then
                        Error (Bad_request "body longer than Content-Length")
                      else begin
                        let body = Bytes.create len in
                        Bytes.blit_string prefix 0 body 0 (String.length prefix);
                        let filled = ref (String.length prefix) in
                        let rec fill () =
                          if !filled >= len then
                            Ok
                              {
                                meth;
                                path;
                                version;
                                headers;
                                body = Bytes.to_string body;
                              }
                          else
                            match
                              read_some fd body !filled (len - !filled)
                                ~deadline
                            with
                            | `Timeout -> Error Timeout
                            | `Closed -> Error Closed
                            | `Read n ->
                                filled := !filled + n;
                                fill ()
                        in
                        fill ()
                      end))))

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let write_response ?(headers = []) ?(body = "") fd status =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\nConnection: close\r\n\r\n"
       (String.length body));
  Buffer.add_string b body;
  let s = Buffer.contents b in
  let bytes = Bytes.of_string s in
  let total = Bytes.length bytes in
  let rec write_all pos =
    if pos >= total then true
    else
      match Unix.write fd bytes pos (total - pos) with
      | n -> write_all (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all pos
      | exception Unix.Unix_error _ -> false
  in
  write_all 0

let discard_close fd =
  (* Closing with unread bytes in the receive buffer makes the kernel
     answer with RST, which can destroy the response we just wrote
     before the client reads it (shed 429s, refused 413s). Drain
     whatever has already arrived — without waiting for more — so the
     close degrades to an ordinary FIN. *)
  (try
     Unix.set_nonblock fd;
     let junk = Bytes.create 4096 in
     let rec drain budget =
       if budget > 0 then
         match Unix.read fd junk 0 (Bytes.length junk) with
         | 0 -> ()
         | n -> drain (budget - n)
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain budget
         | exception Unix.Unix_error _ -> ()
     in
     drain (256 * 1024)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()
