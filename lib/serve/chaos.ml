type spec = {
  fail_burst : int;
  fail_rate : float;
  slow_rate : float;
  slow_ms : float;
}

let none = { fail_burst = 0; fail_rate = 0.0; slow_rate = 0.0; slow_ms = 0.0 }

let v ?(fail_burst = 0) ?(fail_rate = 0.0) ?(slow_rate = 0.0) ?(slow_ms = 0.0)
    () =
  if fail_burst < 0 then invalid_arg "Chaos.v: fail_burst must be >= 0";
  let rate name r =
    if not (r >= 0.0 && r <= 1.0) then
      invalid_arg ("Chaos.v: " ^ name ^ " must be in [0, 1]")
  in
  rate "fail_rate" fail_rate;
  rate "slow_rate" slow_rate;
  if slow_ms < 0.0 then invalid_arg "Chaos.v: slow_ms must be >= 0";
  { fail_burst; fail_rate; slow_rate; slow_ms }

let enabled s =
  s.fail_burst > 0 || s.fail_rate > 0.0 || s.slow_rate > 0.0

type t = {
  spec : spec;
  burst_left : int Atomic.t;
  streams : Perturb.Prng.t array;  (* one per worker: deterministic per seed *)
  fails : int Atomic.t;
  slows : int Atomic.t;
}

let create ~seed ~workers spec =
  if workers < 1 then invalid_arg "Chaos.create: workers must be >= 1";
  {
    spec;
    burst_left = Atomic.make spec.fail_burst;
    streams =
      Array.init workers (fun w -> Perturb.Prng.create ~seed ~stream:w);
    fails = Atomic.make 0;
    slows = Atomic.make 0;
  }

let take_burst t =
  let rec go () =
    let n = Atomic.get t.burst_left in
    if n <= 0 then false
    else if Atomic.compare_and_set t.burst_left n (n - 1) then true
    else go ()
  in
  go ()

let decide t ~worker =
  if take_burst t then begin
    Atomic.incr t.fails;
    `Fail
  end
  else
    let prng = t.streams.(worker) in
    let s = t.spec in
    if s.fail_rate > 0.0 && Perturb.Prng.bernoulli prng s.fail_rate then begin
      Atomic.incr t.fails;
      `Fail
    end
    else if s.slow_rate > 0.0 && Perturb.Prng.bernoulli prng s.slow_rate
    then begin
      Atomic.incr t.slows;
      `Slow (s.slow_ms /. 1000.0)
    end
    else `Ok

let injected_failures t = Atomic.get t.fails
let injected_slowdowns t = Atomic.get t.slows
