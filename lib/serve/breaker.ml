type state = Closed | Open | Half_open

type t = {
  mutex : Mutex.t;
  window : int;
  min_calls : int;
  failure_threshold : float;
  cooldown_s : float;
  (* Sliding outcome window: ring of the last [window] results. *)
  ring : bool array;  (* true = failure *)
  mutable ring_len : int;
  mutable ring_pos : int;
  mutable st : state;
  mutable opened_at : float;  (* valid when st = Open *)
  mutable probe_out : bool;  (* valid when st = Half_open *)
  mutable admitted : int;
  mutable rejected : int;
  mutable successes : int;
  mutable failures : int;
  mutable opens : int;
  mutable closes : int;
}

let create ?(window = 16) ?(min_calls = 4) ?(failure_threshold = 0.5)
    ?(cooldown_s = 2.0) () =
  if window < 1 then invalid_arg "Breaker.create: window must be >= 1";
  if min_calls < 1 then invalid_arg "Breaker.create: min_calls must be >= 1";
  if not (failure_threshold > 0.0 && failure_threshold <= 1.0) then
    invalid_arg "Breaker.create: failure_threshold must be in (0, 1]";
  if not (cooldown_s > 0.0) then
    invalid_arg "Breaker.create: cooldown_s must be > 0";
  {
    mutex = Mutex.create ();
    window;
    min_calls;
    failure_threshold;
    cooldown_s;
    ring = Array.make window false;
    ring_len = 0;
    ring_pos = 0;
    st = Closed;
    opened_at = neg_infinity;
    probe_out = false;
    admitted = 0;
    rejected = 0;
    successes = 0;
    failures = 0;
    opens = 0;
    closes = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let reset_window t =
  t.ring_len <- 0;
  t.ring_pos <- 0

let push_outcome t ~failed =
  t.ring.(t.ring_pos) <- failed;
  t.ring_pos <- (t.ring_pos + 1) mod t.window;
  if t.ring_len < t.window then t.ring_len <- t.ring_len + 1

let failure_fraction t =
  let fails = ref 0 in
  for i = 0 to t.ring_len - 1 do
    if t.ring.(i) then incr fails
  done;
  float_of_int !fails /. float_of_int t.ring_len

(* Apply the time-driven Open -> Half_open transition. Call with the
   mutex held. *)
let tick ~now t =
  if t.st = Open && now -. t.opened_at >= t.cooldown_s then begin
    t.st <- Half_open;
    t.probe_out <- false
  end

let state ~now t =
  locked t (fun () ->
      tick ~now t;
      t.st)

let trip ~now t =
  t.st <- Open;
  t.opened_at <- now;
  t.opens <- t.opens + 1;
  reset_window t

let acquire ~now t =
  locked t (fun () ->
      tick ~now t;
      match t.st with
      | Closed ->
          t.admitted <- t.admitted + 1;
          `Run
      | Open ->
          t.rejected <- t.rejected + 1;
          `Reject
      | Half_open ->
          if t.probe_out then begin
            t.rejected <- t.rejected + 1;
            `Reject
          end
          else begin
            t.probe_out <- true;
            t.admitted <- t.admitted + 1;
            `Probe
          end)

let record ~now ~ok t =
  locked t (fun () ->
      if ok then t.successes <- t.successes + 1
      else t.failures <- t.failures + 1;
      match t.st with
      | Closed ->
          push_outcome t ~failed:(not ok);
          if
            t.ring_len >= t.min_calls
            && failure_fraction t >= t.failure_threshold
          then trip ~now t
      | Half_open ->
          if ok then begin
            t.st <- Closed;
            t.closes <- t.closes + 1;
            reset_window t
          end
          else trip ~now t
      | Open ->
          (* A straggler admitted before the trip reporting late: the
             window was reset at the trip, nothing more to decide. *)
          ())

let admitted t = locked t (fun () -> t.admitted)
let rejected t = locked t (fun () -> t.rejected)
let successes t = locked t (fun () -> t.successes)
let failures t = locked t (fun () -> t.failures)
let opens t = locked t (fun () -> t.opens)
let closes t = locked t (fun () -> t.closes)
