(* JSON in via Obs.Json (hostile input -> Error, never an exception);
   JSON out via Printf.bprintf into a caller-owned buffer ([%.17g] so
   predictions round-trip bit-exactly). *)

module Json = Obs.Json
module App_params = Wavefront_core.App_params
module Plugplay = Wavefront_core.Plugplay

(* --- parsing helpers ------------------------------------------------ *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let obj_member name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let get_obj name j =
  match obj_member name j with
  | Json.Obj _ as o -> o
  | _ -> fail "field %S must be an object" name

let get_num name j =
  match obj_member name j with
  | Json.Num x when Float.is_finite x -> x
  | _ -> fail "field %S must be a finite number" name

let get_int name j =
  let x = get_num name j in
  if Float.is_integer x then int_of_float x
  else fail "field %S must be an integer" name

let get_str name j =
  match obj_member name j with
  | Json.Str s -> s
  | _ -> fail "field %S must be a string" name

let opt_member name j f = match Json.member name j with
  | None | Some Json.Null -> None
  | Some _ -> Some (f name j)

let get_bool_opt name j =
  match Json.member name j with
  | None | Some Json.Null -> false
  | Some (Json.Bool b) -> b
  | Some _ -> fail "field %S must be a boolean" name

let get_list name j =
  match obj_member name j with
  | Json.List l when l <> [] -> l
  | Json.List [] -> fail "field %S must be a non-empty list" name
  | _ -> fail "field %S must be a list" name

let num_item name = function
  | Json.Num x when Float.is_finite x -> x
  | _ -> fail "elements of %S must be finite numbers" name

let int_item name v =
  let x = num_item name v in
  if Float.is_integer x then int_of_float x
  else fail "elements of %S must be integers" name

(* --- /v1/predict ---------------------------------------------------- *)

type predict = {
  app : App_params.t;
  platform : Loggp.Params.t;
  cfg : Plugplay.config;
  cores : int;
  cpn : int;
  validate : bool;
}

let platform_of_key = function
  | "xt4" -> Loggp.Params.xt4
  | "sp2" -> Loggp.Params.sp2
  | "bluegene_l" -> Loggp.Params.bluegene_l
  | "red_storm" -> Loggp.Params.red_storm
  | k -> fail "unknown platform %S (try xt4, sp2, bluegene_l, red_storm)" k

let parse_app j =
  let app_j = get_obj "app" j in
  let name = get_str "name" app_j in
  let dim d =
    let v = get_int d app_j in
    if v < 1 || v > 1_000_000 then fail "field %S out of range" d;
    v
  in
  let grid = Wgrid.Data_grid.v ~nx:(dim "nx") ~ny:(dim "ny") ~nz:(dim "nz") in
  let wg = opt_member "wg" app_j get_num in
  let htile = opt_member "htile" app_j get_num in
  let iterations = opt_member "iterations" app_j get_int in
  let app =
    match name with
    | "lu" -> Apps.Lu.params ?wg ?iterations grid
    | "sweep3d" -> Apps.Sweep3d.params ?wg ?iterations grid
    | "chimaera" -> Apps.Chimaera.params ?wg ?iterations grid
    | n -> fail "unknown app %S (try lu, sweep3d, chimaera)" n
  in
  match htile with Some h -> App_params.with_htile app h | None -> app

let parse_machine ?(need_cores = true) j =
  let m = get_obj "machine" j in
  let platform = platform_of_key (get_str "platform" m) in
  let cpn = get_int "cores_per_node" m in
  if cpn < 1 || cpn > 64 then fail "cores_per_node out of range [1, 64]";
  let cores =
    if not need_cores then 0
    else begin
      let c = get_int "cores" m in
      if c < 1 || c > 16_777_216 then fail "cores out of range [1, 2^24]";
      c
    end
  in
  (Loggp.Params.with_cores_per_node platform cpn, cpn, cores)

(* App_params/Plugplay constructors validate their domains with
   [Invalid_argument]; on this path that is client error, not server
   bug. *)
let guarding f =
  match f () with
  | v -> Ok v
  | exception Bad m -> Error m
  | exception Json.Parse_error m -> Error ("malformed JSON: " ^ m)
  | exception Invalid_argument m -> Error m
  | exception Failure m -> Error m

let parse_predict body =
  guarding (fun () ->
      let j = Json.of_string body in
      let app = parse_app j in
      let platform, cpn, cores = parse_machine j in
      let cfg =
        Plugplay.config ~cmp:(Wgrid.Cmp.of_cores_per_node cpn) platform ~cores
      in
      let validate = get_bool_opt "validate" j in
      { app; platform; cfg; cores; cpn; validate })

type validation =
  | Not_requested
  | Validated of {
      cores : int;
      engine : float;
      model : float;
      error_pct : float;
    }
  | Degraded of string

let validate_run ?(max_cores = 64) p =
  let cores = min p.cores max_cores in
  let pg = Wgrid.Proc_grid.of_cores cores in
  let cmp = Wgrid.Cmp.of_cores_per_node p.cpn in
  let costs = Wrun.Costs.loggp ~model_bus:true ~cmp p.platform pg p.app in
  let o = Wrun.Batched.run ~costs pg p.app in
  let cfg = Plugplay.config ~cmp ~pgrid:pg p.platform ~cores in
  let model = Plugplay.time_per_iteration p.app cfg in
  let engine = o.Wrun.Batched.per_iteration in
  let error_pct =
    if model = 0.0 then nan else (engine -. model) /. model *. 100.0
  in
  Validated { cores; engine; model; error_pct }

(* --- response serialization ----------------------------------------- *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let eval_predict_into b p ~validation =
  Buffer.clear b;
  let ev = Plugplay.Eval.create p.app p.cfg in
  Plugplay.Eval.run ev;
  let r = Plugplay.Eval.result ev in
  Buffer.add_string b {|{"schema":"wavefront-predict/v1","app":|};
  add_json_string b p.app.App_params.name;
  Buffer.add_string b {|,"platform":|};
  add_json_string b p.platform.Loggp.Params.name;
  Printf.bprintf b
    {|,"cores":%d,"cores_per_node":%d,"t_iteration":%.17g,"t_diagfill":%.17g,"t_fullfill":%.17g,"t_stack":%.17g,"t_nonwavefront":%.17g,"w":%.17g,"w_pre":%.17g,"msg_ew":%d,"msg_ns":%d,"time_per_time_step":%.17g|}
    p.cores p.cpn r.Plugplay.t_iteration r.t_diagfill r.t_fullfill r.t_stack
    r.t_nonwavefront r.w r.w_pre r.msg_ew r.msg_ns
    (float_of_int p.app.App_params.iterations *. r.t_iteration);
  (match validation with
  | Not_requested -> Buffer.add_string b {|,"degraded":false,"validation":null|}
  | Degraded reason ->
      Buffer.add_string b {|,"degraded":true,"validation":null,"reason":|};
      add_json_string b reason
  | Validated { cores; engine; model; error_pct } ->
      Printf.bprintf b
        {|,"degraded":false,"validation":{"cores":%d,"engine":%.17g,"model":%.17g,"error_pct":%.17g}|}
        cores engine model error_pct);
  Buffer.add_char b '}'

let predict_into b body =
  match parse_predict body with
  | Error _ as e -> e
  | Ok p ->
      eval_predict_into b p ~validation:Not_requested;
      Ok ()

(* --- /v1/sweep ------------------------------------------------------ *)

let max_sweep_points = 4096
let max_point_cores = 1_048_576

type sweep = {
  base : App_params.t;
  s_platform : Loggp.Params.t;
  s_cpn : int;
  htiles : float list;
  grids : (int * int) list;
  ks : int list;
  ckpt_cost : float;
  restart_cost : float;
  failures : int;
}

let parse_sweep body =
  guarding (fun () ->
      let j = Json.of_string body in
      let base = parse_app j in
      let s_platform, s_cpn, _ = parse_machine ~need_cores:false j in
      let htiles =
        List.map
          (fun v ->
            let h = num_item "htile" v in
            if h <= 0.0 then fail "htile values must be > 0";
            h)
          (get_list "htile" j)
      in
      let grids =
        List.map
          (function
            | Json.List [ c; r ] ->
                let cols = int_item "grids" c and rows = int_item "grids" r in
                if cols < 1 || rows < 1 then fail "grid sides must be >= 1";
                if cols * rows > max_point_cores then
                  fail "grid %dx%d exceeds %d cores" cols rows max_point_cores;
                (cols, rows)
            | _ -> fail "elements of \"grids\" must be [cols, rows] pairs")
          (get_list "grids" j)
      in
      let ks =
        List.map
          (fun v ->
            let k = int_item "k" v in
            if k < 0 then fail "checkpoint intervals must be >= 0";
            k)
          (get_list "k" j)
      in
      let opt_cost name =
        match opt_member name j get_num with
        | None -> 0.0
        | Some c ->
            if c < 0.0 then fail "field %S must be >= 0" name;
            c
      in
      let ckpt_cost = opt_cost "ckpt_cost" in
      let restart_cost = opt_cost "restart_cost" in
      let failures =
        match opt_member "failures" j get_int with
        | None -> 0
        | Some f ->
            if f < 0 then fail "field \"failures\" must be >= 0";
            f
      in
      let points = List.length htiles * List.length grids * List.length ks in
      if points > max_sweep_points then
        fail "sweep describes %d points; the limit is %d" points
          max_sweep_points;
      {
        base;
        s_platform;
        s_cpn;
        htiles;
        grids;
        ks;
        ckpt_cost;
        restart_cost;
        failures;
      })

let sweep_points s =
  List.length s.htiles * List.length s.grids * List.length s.ks

type point = {
  htile : float;
  cols : int;
  rows : int;
  k : int;
  cores : int;
  t_iter : float;
  overhead : float;
  total : float;
}

let eval_point s ~htile ~cols ~rows ~k =
  let app = App_params.with_htile s.base htile in
  let cores = cols * rows in
  let pg = Wgrid.Proc_grid.v ~cols ~rows in
  let cfg =
    Plugplay.config
      ~cmp:(Wgrid.Cmp.of_cores_per_node s.s_cpn)
      ~pgrid:pg s.s_platform ~cores
  in
  let r = Plugplay.iteration app cfg in
  (* Per-iteration resilience overhead over one iteration's waves, the
     same accounting as the resilience subcommand. *)
  let waves =
    Sweeps.Schedule.nsweeps app.App_params.schedule
    * Wgrid.Tile.ntiles_int ~nz:app.App_params.grid.Wgrid.Data_grid.nz
        ~htile:app.App_params.htile
  in
  let policy = Perturb.Recover.v ~ckpt_cost:s.ckpt_cost
      ~restart_cost:s.restart_cost k
  in
  let term =
    Perturb.Recover.expected_term policy ~waves
      ~wave_cost:(r.Plugplay.w +. r.Plugplay.w_pre)
      ~failures:s.failures
  in
  let overhead = term.Perturb.Recover.total in
  {
    htile;
    cols;
    rows;
    k;
    cores;
    t_iter = r.Plugplay.t_iteration;
    overhead;
    total = r.Plugplay.t_iteration +. overhead;
  }

let run_sweep ?(check_every = 16) ~deadline s =
  if check_every < 1 then invalid_arg "Api.run_sweep: check_every must be >= 1";
  let acc = ref [] in
  let evaluated = ref 0 in
  let expired = ref false in
  (try
     List.iter
       (fun htile ->
         List.iter
           (fun (cols, rows) ->
             List.iter
               (fun k ->
                 if
                   !evaluated mod check_every = 0
                   && Deadline.expired ~now:(Unix.gettimeofday ()) deadline
                 then begin
                   expired := true;
                   raise Exit
                 end;
                 acc := eval_point s ~htile ~cols ~rows ~k :: !acc;
                 incr evaluated)
               s.ks)
           s.grids)
       s.htiles
   with Exit -> ());
  if !expired then `Expired !evaluated else `Done (List.rev !acc)

let pareto points =
  (* Sort by (cores, total); a point survives if no cheaper-or-equal
     core count achieved a total <= its own. *)
  let sorted =
    List.sort
      (fun a b ->
        match compare a.cores b.cores with
        | 0 -> compare a.total b.total
        | c -> c)
      points
  in
  let rec scan best acc = function
    | [] -> List.rev acc
    | p :: rest ->
        if p.total < best then scan p.total (p :: acc) rest
        else scan best acc rest
  in
  scan infinity [] sorted

let add_point b p =
  Printf.bprintf b
    {|{"htile":%.17g,"cols":%d,"rows":%d,"k":%d,"cores":%d,"t_iteration":%.17g,"overhead":%.17g,"total":%.17g}|}
    p.htile p.cols p.rows p.k p.cores p.t_iter p.overhead p.total

let add_points b points =
  Buffer.add_char b '[';
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      add_point b p)
    points;
  Buffer.add_char b ']'

let render_sweep_into b s points =
  Buffer.clear b;
  Buffer.add_string b {|{"schema":"wavefront-sweep/v1","app":|};
  add_json_string b s.base.App_params.name;
  Buffer.add_string b {|,"platform":|};
  add_json_string b s.s_platform.Loggp.Params.name;
  Printf.bprintf b {|,"cores_per_node":%d,"points":%d,"evaluated":|} s.s_cpn
    (sweep_points s);
  add_points b points;
  Buffer.add_string b {|,"frontier":|};
  add_points b (pareto points);
  Buffer.add_char b '}'
