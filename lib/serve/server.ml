(* The daemon. Concurrency layout: one accept domain feeding a
   Bounded_queue of connections, [workers] worker domains popping it.
   The Obs.Metrics registry is not thread-safe, so one mutex guards
   every metric update and the scrape; everything per-request lives on
   the worker's stack (one reusable response buffer per worker). *)

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  max_body : int;
  header_timeout_ms : float;
  default_deadline_ms : float;
  chaos : Chaos.spec;
  seed : int;
  breaker_window : int;
  breaker_min_calls : int;
  breaker_threshold : float;
  breaker_cooldown_s : float;
  quiet : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    workers = 4;
    queue_capacity = 64;
    max_body = 1024 * 1024;
    header_timeout_ms = 2000.0;
    default_deadline_ms = 10_000.0;
    chaos = Chaos.none;
    seed = 42;
    breaker_window = 16;
    breaker_min_calls = 4;
    breaker_threshold = 0.5;
    breaker_cooldown_s = 2.0;
    quiet = false;
  }

(* Where a finished connection lands in the accounting. Exactly one
   outcome per accepted connection — the slam client's reconciliation
   invariant. *)
type outcome =
  | Ok_
  | Degraded
  | Shed
  | Timeout
  | Client_error
  | Server_error
  | Aborted

type stats = {
  mutex : Mutex.t;  (* guards the registry and all counters below *)
  reg : Obs.Metrics.t;
  requests : Obs.Metrics.counter;
  ok : Obs.Metrics.counter;
  degraded : Obs.Metrics.counter;
  shed : Obs.Metrics.counter;
  timeout : Obs.Metrics.counter;
  client_error : Obs.Metrics.counter;
  server_error : Obs.Metrics.counter;
  aborted : Obs.Metrics.counter;
  latency : Obs.Metrics.histogram;
  inflight : Obs.Metrics.gauge;
  queue_depth : Obs.Metrics.gauge;
  draining : Obs.Metrics.gauge;
  breaker_state : Obs.Metrics.gauge;
  breaker_opens : Obs.Metrics.gauge;
  breaker_closes : Obs.Metrics.gauge;
  breaker_admitted : Obs.Metrics.gauge;
  breaker_rejected : Obs.Metrics.gauge;
  chaos_failures : Obs.Metrics.gauge;
  mutable live_inflight : int;
}

let make_stats () =
  let reg = Obs.Metrics.create () in
  {
    mutex = Mutex.create ();
    reg;
    requests = Obs.Metrics.counter reg "serve.requests";
    ok = Obs.Metrics.counter reg "serve.ok";
    degraded = Obs.Metrics.counter reg "serve.degraded";
    shed = Obs.Metrics.counter reg "serve.shed";
    timeout = Obs.Metrics.counter reg "serve.timeout";
    client_error = Obs.Metrics.counter reg "serve.client_error";
    server_error = Obs.Metrics.counter reg "serve.server_error";
    aborted = Obs.Metrics.counter reg "serve.aborted";
    latency = Obs.Metrics.histogram reg "serve.latency_us";
    inflight = Obs.Metrics.gauge reg "serve.inflight";
    queue_depth = Obs.Metrics.gauge reg "serve.queue_depth";
    draining = Obs.Metrics.gauge reg "serve.draining";
    breaker_state = Obs.Metrics.gauge reg "serve.breaker.state";
    breaker_opens = Obs.Metrics.gauge reg "serve.breaker.opens";
    breaker_closes = Obs.Metrics.gauge reg "serve.breaker.closes";
    breaker_admitted = Obs.Metrics.gauge reg "serve.breaker.admitted";
    breaker_rejected = Obs.Metrics.gauge reg "serve.breaker.rejected";
    chaos_failures = Obs.Metrics.gauge reg "serve.chaos_failures";
    live_inflight = 0;
  }

let with_stats st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

type conn = { fd : Unix.file_descr; admitted_at : float }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  queue : conn Bounded_queue.t;
  stats : stats;
  breaker : Breaker.t;
  chaos : Chaos.t option;
  stop_flag : bool Atomic.t;
  mutable accept_domain : unit Domain.t option;
  mutable worker_domains : unit Domain.t list;
  stop_mutex : Mutex.t;
  mutable stopped : bool;
}

let record_outcome t ~admitted_at outcome =
  let now = Unix.gettimeofday () in
  with_stats t.stats (fun () ->
      let st = t.stats in
      let c =
        match outcome with
        | Ok_ -> st.ok
        | Degraded -> st.degraded
        | Shed -> st.shed
        | Timeout -> st.timeout
        | Client_error -> st.client_error
        | Server_error -> st.server_error
        | Aborted -> st.aborted
      in
      Obs.Metrics.inc c;
      Obs.Metrics.observe st.latency ((now -. admitted_at) *. 1e6))

(* --- request handling ----------------------------------------------- *)

let json_headers = [ ("Content-Type", "application/json") ]

let respond_error fd status msg =
  ignore
    (Http.write_response ~headers:json_headers
       ~body:(Printf.sprintf {|{"error":%S}|} msg)
       fd status)

let request_deadline t req ~now =
  let budget =
    match Http.header req "x-deadline-ms" with
    | Some v -> (
        match float_of_string_opt (String.trim v) with
        | Some ms -> ms
        | None -> t.cfg.default_deadline_ms)
    | None -> t.cfg.default_deadline_ms
  in
  Deadline.of_budget_ms ~now budget

(* The breaker-guarded, chaos-injected validation dependency. Returns
   the validation verdict for the response; never raises. *)
let guarded_validation t ~worker p =
  let now = Unix.gettimeofday () in
  match Breaker.acquire ~now t.breaker with
  | `Reject -> Api.Degraded "validation circuit open"
  | `Run | `Probe -> (
      let fault =
        match t.chaos with
        | None -> `Ok
        | Some c -> Chaos.decide c ~worker
      in
      match fault with
      | `Fail ->
          Breaker.record ~now:(Unix.gettimeofday ()) ~ok:false t.breaker;
          Api.Degraded "validation dependency failed (injected)"
      | `Ok | `Slow _ -> (
          (match fault with `Slow d -> Unix.sleepf d | _ -> ());
          match Api.validate_run p with
          | v ->
              Breaker.record ~now:(Unix.gettimeofday ()) ~ok:true t.breaker;
              v
          | exception e ->
              Breaker.record ~now:(Unix.gettimeofday ()) ~ok:false t.breaker;
              Api.Degraded (Printexc.to_string e)))

let scrape t =
  with_stats t.stats (fun () ->
      let st = t.stats in
      Obs.Metrics.set st.inflight (float_of_int st.live_inflight);
      Obs.Metrics.set st.queue_depth
        (float_of_int (Bounded_queue.length t.queue));
      Obs.Metrics.set st.draining
        (if Atomic.get t.stop_flag then 1.0 else 0.0);
      let now = Unix.gettimeofday () in
      Obs.Metrics.set st.breaker_state
        (match Breaker.state ~now t.breaker with
        | Breaker.Closed -> 0.0
        | Breaker.Open -> 1.0
        | Breaker.Half_open -> 2.0);
      Obs.Metrics.set st.breaker_opens (float_of_int (Breaker.opens t.breaker));
      Obs.Metrics.set st.breaker_closes
        (float_of_int (Breaker.closes t.breaker));
      Obs.Metrics.set st.breaker_admitted
        (float_of_int (Breaker.admitted t.breaker));
      Obs.Metrics.set st.breaker_rejected
        (float_of_int (Breaker.rejected t.breaker));
      Obs.Metrics.set st.chaos_failures
        (float_of_int
           (match t.chaos with
           | None -> 0
           | Some c -> Chaos.injected_failures c));
      Obs.Openmetrics.render st.reg)

let handle_predict t ~worker ~deadline ~buf fd body =
  match Api.parse_predict body with
  | Error msg ->
      respond_error fd 400 msg;
      Client_error
  | Ok p ->
      if Deadline.expired ~now:(Unix.gettimeofday ()) deadline then begin
        respond_error fd 504 "deadline expired before evaluation";
        Timeout
      end
      else begin
        let validation =
          if p.Api.validate then guarded_validation t ~worker p
          else Api.Not_requested
        in
        Api.eval_predict_into buf p ~validation;
        let ok = Http.write_response ~headers:json_headers
            ~body:(Buffer.contents buf) fd 200
        in
        if not ok then Aborted
        else
          match validation with Api.Degraded _ -> Degraded | _ -> Ok_
      end

let handle_sweep ~deadline ~buf fd body =
  match Api.parse_sweep body with
  | Error msg ->
      respond_error fd 400 msg;
      Client_error
  | Ok s -> (
      match Api.run_sweep ~deadline s with
      | `Expired evaluated ->
          respond_error fd 504
            (Printf.sprintf "deadline expired after %d of %d points" evaluated
               (Api.sweep_points s));
          Timeout
      | `Done points ->
          Api.render_sweep_into buf s points;
          if Http.write_response ~headers:json_headers
               ~body:(Buffer.contents buf) fd 200
          then Ok_
          else Aborted)

let handle_request t ~worker ~buf conn req =
  let fd = conn.fd in
  let now = Unix.gettimeofday () in
  let deadline = request_deadline t req ~now in
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" ->
      if Http.write_response ~headers:json_headers ~body:{|{"status":"ok"}|}
           fd 200
      then Ok_
      else Aborted
  | "GET", "/readyz" ->
      let draining = Atomic.get t.stop_flag in
      let status = if draining then 503 else 200 in
      let body =
        if draining then {|{"status":"draining"}|} else {|{"status":"ready"}|}
      in
      if Http.write_response ~headers:json_headers ~body fd status then Ok_
      else Aborted
  | "GET", "/metrics" ->
      let body = scrape t in
      if
        Http.write_response
          ~headers:
            [
              ( "Content-Type",
                "application/openmetrics-text; version=1.0.0; charset=utf-8" );
            ]
          ~body fd 200
      then Ok_
      else Aborted
  | "POST", "/v1/predict" -> handle_predict t ~worker ~deadline ~buf fd req.body
  | "POST", "/v1/sweep" -> handle_sweep ~deadline ~buf fd req.body
  | _, ("/healthz" | "/readyz" | "/metrics" | "/v1/predict" | "/v1/sweep") ->
      respond_error fd 405 "method not allowed";
      Client_error
  | _ ->
      respond_error fd 404 "no such endpoint";
      Client_error

let handle_conn t ~worker ~buf conn =
  let header_deadline =
    Deadline.of_budget_ms ~now:(Unix.gettimeofday ()) t.cfg.header_timeout_ms
  in
  match
    Http.read_request ~max_body:t.cfg.max_body ~deadline:header_deadline
      conn.fd
  with
  | Ok req -> (
      match handle_request t ~worker ~buf conn req with
      | outcome -> outcome
      | exception _ ->
          respond_error conn.fd 500 "internal error";
          Server_error)
  | Error (Http.Bad_request msg) ->
      respond_error conn.fd 400 msg;
      Client_error
  | Error Http.Too_large ->
      respond_error conn.fd 413 "request too large";
      Client_error
  | Error Http.Timeout ->
      respond_error conn.fd 408 "request incomplete before header deadline";
      Timeout
  | Error Http.Closed -> Aborted

let worker_loop t ~worker =
  let buf = Buffer.create 4096 in
  let rec loop () =
    match Bounded_queue.pop t.queue with
    | None -> ()  (* queue closed and drained: exit *)
    | Some conn ->
        with_stats t.stats (fun () ->
            t.stats.live_inflight <- t.stats.live_inflight + 1);
        let outcome =
          try handle_conn t ~worker ~buf conn with _ -> Server_error
        in
        Http.discard_close conn.fd;
        with_stats t.stats (fun () ->
            t.stats.live_inflight <- t.stats.live_inflight - 1);
        record_outcome t ~admitted_at:conn.admitted_at outcome;
        loop ()
  in
  loop ()

(* --- accept loop ----------------------------------------------------- *)

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
          | exception Unix.Unix_error _ -> ()
          | fd, _ -> (
              let admitted_at = Unix.gettimeofday () in
              with_stats t.stats (fun () ->
                  Obs.Metrics.inc t.stats.requests);
              match Bounded_queue.try_push t.queue { fd; admitted_at } with
              | `Queued -> ()
              | `Full ->
                  (* Shed at admission: one cheap write, no worker. *)
                  ignore
                    (Http.write_response
                       ~headers:(("Retry-After", "1") :: json_headers)
                       ~body:{|{"error":"server overloaded"}|} fd 429);
                  Http.discard_close fd;
                  record_outcome t ~admitted_at Shed
              | `Closed ->
                  ignore
                    (Http.write_response ~headers:json_headers
                       ~body:{|{"error":"draining"}|} fd 503);
                  Http.discard_close fd;
                  record_outcome t ~admitted_at Aborted))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --- lifecycle ------------------------------------------------------- *)

let start cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  (* A worker writing to a peer that already hung up must get EPIPE as a
     result, not die of SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 128
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let t =
    {
      cfg;
      listen_fd;
      bound_port;
      queue = Bounded_queue.create ~capacity:cfg.queue_capacity;
      stats = make_stats ();
      breaker =
        Breaker.create ~window:cfg.breaker_window
          ~min_calls:cfg.breaker_min_calls
          ~failure_threshold:cfg.breaker_threshold
          ~cooldown_s:cfg.breaker_cooldown_s ();
      chaos =
        (if Chaos.enabled cfg.chaos then
           Some (Chaos.create ~seed:cfg.seed ~workers:cfg.workers cfg.chaos)
         else None);
      stop_flag = Atomic.make false;
      accept_domain = None;
      worker_domains = [];
      stop_mutex = Mutex.create ();
      stopped = false;
    }
  in
  t.worker_domains <-
    List.init cfg.workers (fun worker ->
        Domain.spawn (fun () -> worker_loop t ~worker));
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  if not cfg.quiet then
    Printf.printf "serving on %s:%d (%d workers, queue %d)\n%!" cfg.host
      bound_port cfg.workers cfg.queue_capacity;
  t

let port t = t.bound_port
let stopping t = Atomic.get t.stop_flag

let stop t =
  Mutex.lock t.stop_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.stop_mutex)
    (fun () ->
      if not t.stopped then begin
        t.stopped <- true;
        Atomic.set t.stop_flag true;
        (match t.accept_domain with
        | Some d ->
            Domain.join d;
            t.accept_domain <- None
        | None -> ());
        (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
        (* Workers drain whatever was admitted, then see the closed
           queue and exit — every accepted connection is answered. *)
        Bounded_queue.close t.queue;
        List.iter Domain.join t.worker_domains;
        t.worker_domains <- [];
        if not t.cfg.quiet then
          Printf.printf "drained: every admitted connection answered\n%!"
      end)

let run cfg =
  let signalled = Atomic.make false in
  let on_signal _ = Atomic.set signalled true in
  let install s =
    try Some (Sys.signal s (Sys.Signal_handle on_signal))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let prev_term = install Sys.sigterm in
  let prev_int = install Sys.sigint in
  let t = start cfg in
  (* Signals interrupt the sleep; the backoff ladder (capped at 100 ms
     by the policy below) only bounds the exit latency when they don't. *)
  let wait_policy = Shmpi.Backoff.v ~min_s:0.001 ~max_s:0.1 in
  ignore
    (Shmpi.Backoff.wait_until ~policy:wait_policy ~deadline:infinity
       (fun () -> Atomic.get signalled));
  if not cfg.quiet then
    Printf.printf "signal received, draining...\n%!";
  stop t;
  (match prev_term with
  | Some b -> ignore (Sys.signal Sys.sigterm b)
  | None -> ());
  (match prev_int with
  | Some b -> ignore (Sys.signal Sys.sigint b)
  | None -> ());
  0
