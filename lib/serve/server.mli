(** The [wavefront serve] daemon: the plug-and-play model as a service.

    A minimal HTTP/1.1 JSON server over an OCaml 5 domain worker pool —
    no web framework, just [Unix] sockets — whose robustness machinery
    is the point:

    - {b load shedding}: the accept loop admits connections into a
      {!Bounded_queue}; when it is full the connection is answered
      [429 Too Many Requests] (with [Retry-After]) in microseconds
      instead of queueing without bound;
    - {b deadline propagation}: each request carries one absolute
      deadline (from [X-Deadline-Ms], default [default_deadline_ms])
      that gates body reads and is checked cooperatively inside sweep
      evaluation — an expired request is answered [504], a slow-loris
      client [408] after [header_timeout_ms];
    - {b circuit breaking}: the expensive batched-engine validation
      behind [/v1/predict] is guarded by a {!Breaker}; while it is open
      predictions are still served, flagged ["degraded": true];
    - {b graceful drain}: SIGTERM/SIGINT stop the accept loop, close
      the queue, let workers finish the backlog, then return — every
      admitted connection gets a response.

    Endpoints: [GET /healthz], [GET /readyz] (503 while draining),
    [GET /metrics] (OpenMetrics), [POST /v1/predict], [POST /v1/sweep].

    Accounting invariant (scraped by [wavefront slam]): [serve.requests]
    equals the sum of the outcome counters ([serve.ok], [serve.degraded],
    [serve.shed], [serve.timeout], [serve.client_error],
    [serve.server_error], [serve.aborted]) plus the in-flight and queued
    gauges at any scrape instant. *)

type config = {
  host : string;
  port : int;  (** 0 binds an ephemeral port; see {!port} *)
  workers : int;
  queue_capacity : int;
  max_body : int;
  header_timeout_ms : float;  (** budget for the full request to arrive *)
  default_deadline_ms : float;  (** when [X-Deadline-Ms] is absent *)
  chaos : Chaos.spec;
  seed : int;  (** chaos PRNG seed *)
  breaker_window : int;
  breaker_min_calls : int;
  breaker_threshold : float;
  breaker_cooldown_s : float;
  quiet : bool;
}

val default_config : config
(** 127.0.0.1:8080, 4 workers, queue 64, 1 MiB bodies, 2 s header
    budget, 10 s default deadline, chaos off, breaker 16/4/0.5/2 s. *)

type t

val start : config -> t
(** Bind, listen, spawn the accept domain and the worker pool. Raises
    [Unix.Unix_error] when the address cannot be bound. *)

val port : t -> int
(** The actually-bound port (the ephemeral one when [config.port = 0]). *)

val stop : t -> unit
(** Initiate graceful drain and block until every admitted connection is
    answered and all domains have joined. Idempotent. *)

val stopping : t -> bool

val run : config -> int
(** The CLI entry: install SIGTERM/SIGINT handlers, {!start}, block
    until a signal arrives, drain, return 0. *)
