(** Seeded fault injection for the serve daemon's validation path.

    [--chaos] turns the daemon's expensive dependency (the batched-engine
    validation behind [/v1/predict]) into a deterministic fault source so
    the slam client can assert the breaker's full life-cycle: a
    [fail_burst] of [n] makes the first [n] validation calls fail — the
    breaker provably opens — after which injected failures stop and the
    half-open probe provably succeeds, closing it again. [fail_rate]
    adds steady-state noise on top; [slow_rate]/[slow_ms] stretch a
    fraction of calls to exercise deadline expiry under load.

    Decisions draw from {!Perturb.Prng} streams keyed by worker id, so a
    given [--seed] produces the same fault schedule on every run. *)

type spec = {
  fail_burst : int;  (** first N validation calls fail deterministically *)
  fail_rate : float;  (** steady-state failure probability, [0, 1] *)
  slow_rate : float;  (** probability of an injected stall, [0, 1] *)
  slow_ms : float;  (** stall duration when injected *)
}

val none : spec
(** All zero — no injection. *)

val v :
  ?fail_burst:int -> ?fail_rate:float -> ?slow_rate:float -> ?slow_ms:float ->
  unit -> spec
(** Raises [Invalid_argument] on negative fields or rates outside
    [0, 1]. *)

val enabled : spec -> bool

type t
(** Shared injection state: the burst countdown is global (an atomic), the
    random streams are per-worker. *)

val create : seed:int -> workers:int -> spec -> t

val decide : t -> worker:int -> [ `Ok | `Fail | `Slow of float ]
(** The fault (if any) to inject into this validation call. [`Slow d]
    asks the caller to stall [d] seconds and then proceed normally.
    Burst failures take priority over everything; they burn down the
    global countdown. *)

val injected_failures : t -> int
val injected_slowdowns : t -> int
