(** The [wavefront slam] chaos/soak client: hammer a running serve
    daemon with a seeded mix of valid, malformed, oversized, slow-loris,
    early-close and deadline-doomed requests from concurrent client
    domains, then assert the daemon's robustness invariants:

    + the process survived (a final [/healthz] answers 200);
    + every connection that awaited a response got a well-formed HTTP
      status line — never a hang, never garbage;
    + the daemon's own accounting reconciles: on the final [/metrics]
      scrape, [serve_requests_total] equals the sum of the outcome
      counters plus the in-flight and queued gauges;
    + deterministic classes got their contracted status (400 for
      malformed, 413 for oversized, 504 for zero-deadline sweeps —
      shedding 429s excepted, which are always legitimate);
    + with [expect_breaker] (the daemon was started with
      [--chaos-fail-burst]): the breaker opened at least once {e and}
      closed again — degradation was entered and exited;
    + the fast-path p99 latency stays under [latency_budget_ms] even
      while the breaker and the shedder are exercised.

    The request schedule is a pure function of [(seed, requests,
    clients)] — {!plan} — so a failing run is replayed exactly. Results
    go into a [wavefront-slam/v1] JSON report. *)

type cls =
  | Predict_plain
  | Predict_validate  (** exercises the breaker-guarded validation *)
  | Sweep_small
  | Healthz
  | Malformed  (** unparseable or invalid-field bodies: expect 400 *)
  | Oversized  (** Content-Length beyond the body cap: expect 413 *)
  | Slow_loris  (** partial header, then silence: expect 408 *)
  | Early_close  (** connect, dribble, hang up: no response expected *)
  | Expired_sweep  (** [X-Deadline-Ms: 0]: expect 504 *)

val class_name : cls -> string
val all_classes : cls list

val plan : seed:int -> requests:int -> clients:int -> cls array array
(** The full request schedule, one array per client domain; deterministic
    in its arguments ({!Perturb.Prng} streams, one per client). *)

type config = {
  host : string;
  port : int;
  requests : int;  (** total across all clients *)
  clients : int;  (** concurrent client domains *)
  seed : int;
  client_timeout_s : float;  (** per-connection give-up budget *)
  latency_budget_ms : float;  (** fast-path p99 bound *)
  expect_breaker : bool;
  fail_on_invariant : bool;  (** exit 1 on any failed invariant *)
  report_path : string option;
  quiet : bool;
}

val default_config : config
(** 127.0.0.1:8080, 1000 requests, 4 clients, seed 42, 10 s timeout,
    2000 ms budget, no breaker expectation, report unwritten. *)

type invariant = { name : string; pass : bool; detail : string }

type report = {
  seed : int;
  requests : int;
  clients : int;
  duration_s : float;
  class_counts : (string * int) list;
  status_counts : (int * int) list;  (** HTTP status -> connections *)
  no_response : int;  (** connections that closed without a status line *)
  malformed_responses : int;  (** bytes received but no valid status line *)
  fast_p50_ms : float;  (** latency quantiles of the fast classes *)
  fast_p95_ms : float;
  fast_p99_ms : float;
  server_metrics : (string * float) list;  (** final scrape, plain samples *)
  invariants : invariant list;
}

val passed : report -> bool
val report_to_json : report -> string
(** The [wavefront-slam/v1] document. *)

val execute : config -> (report, string) result
(** Run the slam. [Error] only when the daemon is unreachable at the
    start — everything after that is a report, not an error. *)

val run : config -> int
(** CLI entry: {!execute}, print the verdict, write the report when
    [report_path] is set. Exit 0 on success, 1 when an invariant failed
    and [fail_on_invariant] is set, 2 when the daemon was unreachable. *)
