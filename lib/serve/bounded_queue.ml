(* See bounded_queue.mli for the shed-on-full and drain-on-close
   contracts. One mutex, one condition: pushes never block, so only
   poppers ever wait. *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;  (* also signalled by [close] to wake poppers *)
  items : 'a Queue.t;
  cap : int;
  mutable is_closed : bool;
  mutable pushed : int;
  mutable shed : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    cap = capacity;
    is_closed = false;
    pushed = 0;
    shed = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let capacity t = t.cap
let length t = locked t (fun () -> Queue.length t.items)
let closed t = locked t (fun () -> t.is_closed)
let pushed t = locked t (fun () -> t.pushed)
let shed t = locked t (fun () -> t.shed)

let try_push t x =
  locked t (fun () ->
      if t.is_closed then `Closed
      else if Queue.length t.items >= t.cap then begin
        t.shed <- t.shed + 1;
        `Full
      end
      else begin
        Queue.push x t.items;
        t.pushed <- t.pushed + 1;
        Condition.signal t.nonempty;
        `Queued
      end)

let pop t =
  locked t (fun () ->
      while Queue.is_empty t.items && not t.is_closed do
        Condition.wait t.nonempty t.mutex
      done;
      if Queue.is_empty t.items then None else Some (Queue.pop t.items))

let close t =
  locked t (fun () ->
      if not t.is_closed then begin
        t.is_closed <- true;
        Condition.broadcast t.nonempty
      end)
