(* The chaos client. Each client domain executes its slice of the seeded
   plan with one connection per request (Connection: close), records
   (class, status, latency) triples, and the main domain folds them into
   the invariant verdicts. *)

type cls =
  | Predict_plain
  | Predict_validate
  | Sweep_small
  | Healthz
  | Malformed
  | Oversized
  | Slow_loris
  | Early_close
  | Expired_sweep

let class_name = function
  | Predict_plain -> "predict"
  | Predict_validate -> "predict-validate"
  | Sweep_small -> "sweep"
  | Healthz -> "healthz"
  | Malformed -> "malformed"
  | Oversized -> "oversized"
  | Slow_loris -> "slow-loris"
  | Early_close -> "early-close"
  | Expired_sweep -> "expired-sweep"

let all_classes =
  [
    Predict_plain;
    Predict_validate;
    Sweep_small;
    Healthz;
    Malformed;
    Oversized;
    Slow_loris;
    Early_close;
    Expired_sweep;
  ]

(* Weights out of 100; heavy on the valid traffic, enough hostile share
   to keep every defense warm. *)
let weights =
  [
    (Predict_plain, 25);
    (Predict_validate, 20);
    (Sweep_small, 10);
    (Healthz, 5);
    (Malformed, 12);
    (Oversized, 8);
    (Slow_loris, 3);
    (Early_close, 5);
    (Expired_sweep, 12);
  ]

let draw_class prng =
  let roll = int_of_float (Perturb.Prng.uniform prng 100.0) in
  let rec pick acc = function
    | [] -> Predict_plain
    | (c, w) :: rest -> if roll < acc + w then c else pick (acc + w) rest
  in
  pick 0 weights

let plan ~seed ~requests ~clients =
  if requests < 0 then invalid_arg "Slam.plan: requests must be >= 0";
  if clients < 1 then invalid_arg "Slam.plan: clients must be >= 1";
  Array.init clients (fun client ->
      let n = (requests / clients) + if client < requests mod clients then 1 else 0 in
      let prng = Perturb.Prng.create ~seed ~stream:client in
      Array.init n (fun _ -> draw_class prng))

(* --- request corpus -------------------------------------------------- *)

let predict_body ~validate =
  Printf.sprintf
    {|{"app":{"name":"sweep3d","nx":256,"ny":256,"nz":256},"machine":{"platform":"xt4","cores":1024,"cores_per_node":2},"validate":%b}|}
    validate

let sweep_body =
  {|{"app":{"name":"sweep3d","nx":128,"ny":128,"nz":128},"machine":{"platform":"xt4","cores_per_node":2},"htile":[1,2],"grids":[[8,8],[16,8],[16,16]],"k":[0,8]}|}

let big_sweep_body =
  {|{"app":{"name":"lu","nx":512,"ny":512,"nz":512},"machine":{"platform":"sp2","cores_per_node":1},"htile":[1,2,4,8],"grids":[[32,32],[64,32],[64,64],[128,64]],"k":[0,4,16,64]}|}

let malformed_bodies =
  [|
    "{not json at all";
    {|{"app":{"name":"sweep3d"}}|};
    {|{"app":{"name":"hpl","nx":64,"ny":64,"nz":64},"machine":{"platform":"xt4","cores":16,"cores_per_node":2}}|};
    {|{"app":{"name":"lu","nx":-4,"ny":64,"nz":64},"machine":{"platform":"xt4","cores":16,"cores_per_node":2}}|};
    {|{"app":{"name":"lu","nx":64,"ny":64,"nz":64},"machine":{"platform":"mars","cores":16,"cores_per_node":2}}|};
    "[]";
  |]

let post path ?(headers = []) body =
  let b = Buffer.create (256 + String.length body) in
  Printf.bprintf b "POST %s HTTP/1.1\r\nHost: slam\r\n" path;
  List.iter (fun (k, v) -> Printf.bprintf b "%s: %s\r\n" k v) headers;
  Printf.bprintf b "Content-Type: application/json\r\nContent-Length: %d\r\n\r\n%s"
    (String.length body) body;
  Buffer.contents b

let get path = Printf.sprintf "GET %s HTTP/1.1\r\nHost: slam\r\n\r\n" path

(* --- a tiny blocking HTTP client ------------------------------------- *)

type response = Status of int * string | No_response | Garbage

let send_all fd s =
  let b = Bytes.of_string s in
  let total = Bytes.length b in
  let rec go pos =
    if pos >= total then true
    else
      match Unix.write fd b pos (total - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error _ -> false
  in
  go 0

(* Read until EOF or deadline; the daemon closes after each response. *)
let read_all fd ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then `Timeout (Buffer.contents buf)
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> `Timeout (Buffer.contents buf)
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> `Eof (Buffer.contents buf)
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error _ -> `Eof (Buffer.contents buf))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let parse_status raw =
  if String.length raw = 0 then No_response
  else
    let line =
      match String.index_opt raw '\n' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    match String.split_on_char ' ' (String.trim line) with
    | version :: code :: _
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
        match int_of_string_opt code with
        | Some c when c >= 100 && c < 600 -> Status (c, raw)
        | _ -> Garbage)
    | _ -> Garbage

let connect ~host ~port ~timeout_s =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    Unix.set_nonblock fd;
    (try Unix.connect fd addr
     with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> ());
    (match Unix.select [] [ fd ] [] timeout_s with
    | _, [], _ -> failwith "connect timeout"
    | _ -> ());
    (match Unix.getsockopt_error fd with
    | None -> ()
    | Some e -> raise (Unix.Unix_error (e, "connect", "")));
    Unix.clear_nonblock fd
  with
  | () -> Some fd
  | exception _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

(* One request of class [c]; [k] is the request's index in its client's
   slice, used to pick deterministically among the malformed bodies.
   Returns (awaited response, result, latency_s). *)
let fire ~host ~port ~timeout_s ~k c =
  let t0 = Unix.gettimeofday () in
  match connect ~host ~port ~timeout_s with
  | None -> (true, No_response, Unix.gettimeofday () -. t0)
  | Some fd ->
      let finish awaited resp =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (awaited, resp, Unix.gettimeofday () -. t0)
      in
      let roundtrip payload =
        if not (send_all fd payload) then finish true No_response
        else
          match read_all fd ~timeout_s with
          | `Eof raw -> finish true (parse_status raw)
          | `Timeout raw ->
              (* A timeout with a parseable status is still an answered
                 connection (we may have raced the close); with nothing,
                 it is a hang — the worst invariant breach. *)
              finish true (parse_status raw)
      in
      (match c with
      | Predict_plain -> roundtrip (post "/v1/predict" (predict_body ~validate:false))
      | Predict_validate ->
          roundtrip (post "/v1/predict" (predict_body ~validate:true))
      | Sweep_small -> roundtrip (post "/v1/sweep" sweep_body)
      | Healthz -> roundtrip (get "/healthz")
      | Malformed ->
          roundtrip
            (post "/v1/predict"
               malformed_bodies.(k mod Array.length malformed_bodies))
      | Oversized ->
          (* Advertise 64 MiB; send only a sliver. The daemon must refuse
             on the advertisement alone. *)
          let payload =
            "POST /v1/predict HTTP/1.1\r\nHost: slam\r\n\
             Content-Length: 67108864\r\n\r\n{\"app\":"
          in
          roundtrip payload
      | Slow_loris ->
          (* Half a header, then silence: the daemon owes us a 408 once
             its header budget expires. *)
          let partial = "POST /v1/predict HTTP/1.1\r\nHost: sl" in
          if not (send_all fd partial) then finish true No_response
          else (
            match read_all fd ~timeout_s with
            | `Eof raw -> finish true (parse_status raw)
            | `Timeout raw -> finish true (parse_status raw))
      | Early_close ->
          ignore (send_all fd "POST /v1/pre");
          finish false No_response
      | Expired_sweep ->
          roundtrip
            (post "/v1/sweep" ~headers:[ ("X-Deadline-Ms", "0") ] big_sweep_body))

(* --- /metrics parsing ------------------------------------------------ *)

(* Plain "name value" exposition lines only (no labels, no comments) —
   exactly what the daemon's scrape emits for counters and gauges. *)
(* [raw] is a whole HTTP response: the exposition starts after the first
   blank line — drop the header block so "Content-Length: 134" is not
   mistaken for a sample. *)
let response_body raw =
  let n = String.length raw in
  let rec find i =
    if i + 3 >= n then None
    else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.sub raw i (n - i)
  | None -> raw

let parse_metrics raw =
  String.split_on_char '\n' (response_body raw)
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' || String.contains line '{' then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some i -> (
               let name = String.sub line 0 i in
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               match float_of_string_opt (String.trim v) with
               | Some f -> Some (name, f)
               | None -> None))

let metric m name = Option.value ~default:nan (List.assoc_opt name m)

let fetch ~host ~port ~timeout_s path =
  match connect ~host ~port ~timeout_s with
  | None -> None
  | Some fd ->
      let r =
        if send_all fd (get path) then
          match read_all fd ~timeout_s with
          | `Eof raw | `Timeout raw -> Some raw
        else None
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r

(* --- configuration and report ---------------------------------------- *)

type config = {
  host : string;
  port : int;
  requests : int;
  clients : int;
  seed : int;
  client_timeout_s : float;
  latency_budget_ms : float;
  expect_breaker : bool;
  fail_on_invariant : bool;
  report_path : string option;
  quiet : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    requests = 1000;
    clients = 4;
    seed = 42;
    client_timeout_s = 10.0;
    latency_budget_ms = 2000.0;
    expect_breaker = false;
    fail_on_invariant = false;
    report_path = None;
    quiet = false;
  }

type invariant = { name : string; pass : bool; detail : string }

type report = {
  seed : int;
  requests : int;
  clients : int;
  duration_s : float;
  class_counts : (string * int) list;
  status_counts : (int * int) list;
  no_response : int;
  malformed_responses : int;
  fast_p50_ms : float;
  fast_p95_ms : float;
  fast_p99_ms : float;
  server_metrics : (string * float) list;
  invariants : invariant list;
}

let passed r = List.for_all (fun i -> i.pass) r.invariants

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* --- the run ---------------------------------------------------------- *)

type shot = { cls : cls; awaited : bool; resp : response; latency_s : float }

let execute cfg =
  match fetch ~host:cfg.host ~port:cfg.port ~timeout_s:cfg.client_timeout_s
          "/healthz"
  with
  | None -> Error "daemon unreachable: initial /healthz connect failed"
  | Some _ ->
      let t0 = Unix.gettimeofday () in
      let schedule = plan ~seed:cfg.seed ~requests:cfg.requests ~clients:cfg.clients in
      let domains =
        Array.map
          (fun slice ->
            Domain.spawn (fun () ->
                Array.mapi
                  (fun k cls ->
                    let awaited, resp, latency_s =
                      fire ~host:cfg.host ~port:cfg.port
                        ~timeout_s:cfg.client_timeout_s ~k cls
                    in
                    { cls; awaited; resp; latency_s })
                  slice))
          schedule
      in
      let shots =
        Array.to_list domains
        |> List.concat_map (fun d -> Array.to_list (Domain.join d))
      in
      let duration_s = Unix.gettimeofday () -. t0 in
      (* With a breaker expectation, drive recovery: the storm may end
         inside the open-state cooldown, so keep offering validation
         traffic until the half-open probe has run and closed the
         breaker (or a generous budget expires — that is the failing
         case the invariant reports). *)
      if cfg.expect_breaker then begin
        let give_up = Unix.gettimeofday () +. 15.0 in
        let closed () =
          match
            fetch ~host:cfg.host ~port:cfg.port
              ~timeout_s:cfg.client_timeout_s "/metrics"
          with
          | None -> false
          | Some raw -> metric (parse_metrics raw) "serve_breaker_closes" >= 1.0
        in
        let rec drive () =
          if Unix.gettimeofday () < give_up && not (closed ()) then begin
            ignore
              (fire ~host:cfg.host ~port:cfg.port
                 ~timeout_s:cfg.client_timeout_s ~k:0 Predict_validate);
            Unix.sleepf 0.2;
            drive ()
          end
        in
        drive ()
      end;
      (* The daemon's counters settle once our last connection is torn
         down; re-scrape on the shared backoff ladder until they do. *)
      let last_scrape = ref [] in
      let settled () =
        let m =
          match
            fetch ~host:cfg.host ~port:cfg.port
              ~timeout_s:cfg.client_timeout_s "/metrics"
          with
          | None -> []
          | Some raw -> parse_metrics raw
        in
        last_scrape := m;
        Float.is_finite (metric m "serve_requests_total")
        && metric m "serve_queue_depth" = 0.0
        && metric m "serve_inflight" = 1.0 (* the scrape itself *)
      in
      ignore
        (Shmpi.Backoff.wait_until
           ~policy:(Shmpi.Backoff.v ~min_s:0.01 ~max_s:0.2)
           ~deadline:(Unix.gettimeofday () +. 2.0)
           settled);
      let m = !last_scrape in
      let alive =
        match
          fetch ~host:cfg.host ~port:cfg.port ~timeout_s:cfg.client_timeout_s
            "/healthz"
        with
        | Some raw -> (
            match parse_status raw with Status (200, _) -> true | _ -> false)
        | None -> false
      in
      (* fold the shots *)
      let class_counts =
        List.map
          (fun c ->
            ( class_name c,
              List.length (List.filter (fun s -> s.cls = c) shots) ))
          all_classes
      in
      let status_counts =
        List.fold_left
          (fun acc s ->
            match s.resp with
            | Status (code, _) ->
                let n = Option.value ~default:0 (List.assoc_opt code acc) in
                (code, n + 1) :: List.remove_assoc code acc
            | _ -> acc)
          [] shots
        |> List.sort compare
      in
      let no_response =
        List.length
          (List.filter (fun s -> s.awaited && s.resp = No_response) shots)
      in
      let malformed_responses =
        List.length (List.filter (fun s -> s.resp = Garbage) shots)
      in
      let fast =
        List.filter
          (fun s ->
            (s.cls = Predict_plain || s.cls = Healthz)
            && match s.resp with Status (200, _) -> true | _ -> false)
          shots
      in
      let fast_lat =
        let a =
          Array.of_list (List.map (fun s -> s.latency_s *. 1000.0) fast)
        in
        Array.sort compare a;
        a
      in
      let fast_p50_ms = quantile fast_lat 0.50 in
      let fast_p95_ms = quantile fast_lat 0.95 in
      let fast_p99_ms = quantile fast_lat 0.99 in
      (* targeted status contracts; shedding (429) and drain (503) are
         always legitimate alternatives *)
      let contract cls ok_codes =
        List.for_all
          (fun s ->
            s.cls <> cls
            ||
            match s.resp with
            | Status (code, _) ->
                List.mem code ok_codes || code = 429 || code = 503
            | No_response -> not s.awaited
            | Garbage -> false)
          shots
      in
      let sum_outcomes =
        metric m "serve_ok_total" +. metric m "serve_degraded_total"
        +. metric m "serve_shed_total" +. metric m "serve_timeout_total"
        +. metric m "serve_client_error_total"
        +. metric m "serve_server_error_total"
        +. metric m "serve_aborted_total"
      in
      let accounted =
        sum_outcomes +. metric m "serve_inflight"
        +. metric m "serve_queue_depth"
      in
      let total = metric m "serve_requests_total" in
      let inv name pass detail = { name; pass; detail } in
      let invariants =
        [
          inv "daemon-alive" alive
            "final /healthz answers 200 after the storm";
          inv "all-connections-answered" (no_response = 0)
            (Printf.sprintf "%d awaited connections got no response"
               no_response);
          inv "responses-well-formed" (malformed_responses = 0)
            (Printf.sprintf "%d responses had no parseable status line"
               malformed_responses);
          inv "accounting-reconciles"
            (Float.is_finite total && Float.abs (total -. accounted) <= 0.5)
            (Printf.sprintf
               "requests_total %.0f vs outcomes+inflight+queued %.0f" total
               accounted);
          inv "malformed-rejected" (contract Malformed [ 400 ])
            "malformed bodies answered with 400";
          inv "oversized-rejected" (contract Oversized [ 413 ])
            "oversized advertisements answered with 413";
          inv "slow-loris-timed-out" (contract Slow_loris [ 408 ])
            "held-open headers answered with 408";
          inv "expired-deadline-honored" (contract Expired_sweep [ 504 ])
            "zero-deadline sweeps answered with 504";
          inv "fast-path-p99-bounded"
            (fast = [] || fast_p99_ms <= cfg.latency_budget_ms)
            (Printf.sprintf "p99 %.1f ms against budget %.1f ms" fast_p99_ms
               cfg.latency_budget_ms);
        ]
        @
        if cfg.expect_breaker then
          [
            inv "breaker-opened"
              (metric m "serve_breaker_opens" >= 1.0)
              (Printf.sprintf "opens=%.0f" (metric m "serve_breaker_opens"));
            inv "breaker-recovered"
              (metric m "serve_breaker_closes" >= 1.0)
              (Printf.sprintf "closes=%.0f" (metric m "serve_breaker_closes"));
          ]
        else []
      in
      Ok
        {
          seed = cfg.seed;
          requests = cfg.requests;
          clients = cfg.clients;
          duration_s;
          class_counts;
          status_counts;
          no_response;
          malformed_responses;
          fast_p50_ms;
          fast_p95_ms;
          fast_p99_ms;
          server_metrics = m;
          invariants;
        }

(* --- report serialization -------------------------------------------- *)

let report_to_json r =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    {|{"schema":"wavefront-slam/v1","seed":%d,"requests":%d,"clients":%d,"duration_s":%.3f|}
    r.seed r.requests r.clients r.duration_s;
  Buffer.add_string b ",\"classes\":{";
  List.iteri
    (fun i (name, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%S:%d" name n)
    r.class_counts;
  Buffer.add_string b "},\"statuses\":{";
  List.iteri
    (fun i (code, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%d\":%d" code n)
    r.status_counts;
  Printf.bprintf b
    {|},"no_response":%d,"malformed_responses":%d,"fast_p50_ms":%.3f,"fast_p95_ms":%.3f,"fast_p99_ms":%.3f|}
    r.no_response r.malformed_responses r.fast_p50_ms r.fast_p95_ms
    r.fast_p99_ms;
  Buffer.add_string b ",\"server_metrics\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      if Float.is_finite v then Printf.bprintf b "%S:%.17g" name v
      else Printf.bprintf b "%S:null" name)
    r.server_metrics;
  Buffer.add_string b "},\"invariants\":[";
  List.iteri
    (fun i inv ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b {|{"name":%S,"pass":%b,"detail":%S}|} inv.name inv.pass
        inv.detail)
    r.invariants;
  Printf.bprintf b {|],"passed":%b}|} (passed r);
  Buffer.contents b

let run cfg =
  match execute cfg with
  | Error msg ->
      Printf.eprintf "slam: %s\n%!" msg;
      2
  | Ok r ->
      (match cfg.report_path with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc (report_to_json r);
          output_char oc '\n';
          close_out oc);
      if not cfg.quiet then begin
        Printf.printf
          "slam: %d requests over %d clients in %.1f s (fast p50/p95/p99 = \
           %.1f/%.1f/%.1f ms)\n"
          r.requests r.clients r.duration_s r.fast_p50_ms r.fast_p95_ms
          r.fast_p99_ms;
        List.iter
          (fun i ->
            Printf.printf "  %-28s %s  %s\n" i.name
              (if i.pass then "PASS" else "FAIL")
              (if i.pass then "" else i.detail))
          r.invariants;
        Printf.printf "slam: %s\n%!"
          (if passed r then "all invariants held" else "INVARIANT FAILED")
      end;
      if (not (passed r)) && cfg.fail_on_invariant then 1 else 0
