(** A deliberately small HTTP/1.1 reader/writer over raw [Unix] file
    descriptors — just enough protocol for the serve daemon, with the
    hostile-input defenses built into the reader rather than bolted on:

    - every [read] is gated by [Unix.select] against the request's
      header deadline, so a slow-loris client ties up a worker for at
      most that budget (408);
    - the header block is capped at {!max_header_bytes} (400) and bodies
      at the caller's [max_body] ([`Too_large] → 413) {e before} the
      body is read, so an oversized [Content-Length] never costs its
      advertised bytes;
    - connections are single-request ([Connection: close]): no pipelining
      state to poison.

    Failures are values, not exceptions — the server turns each into one
    well-formed status line, which is the invariant the slam client
    checks on every connection. *)

val max_header_bytes : int
(** 16 KiB cap on request line + headers. *)

type request = {
  meth : string;  (** uppercase, e.g. ["GET"] *)
  path : string;  (** request target, query string included *)
  version : string;  (** ["HTTP/1.1"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type read_error =
  | Bad_request of string  (** malformed request line, header or length *)
  | Too_large  (** headers over {!max_header_bytes} or body over [max_body] *)
  | Timeout  (** header/body not complete by the deadline (slow-loris) *)
  | Closed  (** peer closed or reset before a full request arrived *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val read_request :
  ?max_body:int ->
  deadline:float ->
  Unix.file_descr ->
  (request, read_error) result
(** Read one request. [max_body] defaults to 1 MiB. [deadline] is the
    absolute instant ({!Deadline.t}) by which the full request must have
    arrived. A [POST]/[PUT] without [Content-Length] is a
    [Bad_request] (chunked encoding is not supported). *)

val status_text : int -> string
(** Reason phrase for the status codes the daemon emits; ["Unknown"]
    otherwise. *)

val write_response :
  ?headers:(string * string) list ->
  ?body:string ->
  Unix.file_descr ->
  int ->
  bool
(** Write a complete response ([Connection: close],
    [Content-Length] computed). Returns [false] when the peer is gone
    ([EPIPE]/reset) — the caller records the outcome either way and never
    raises. *)

val discard_close : Unix.file_descr -> unit
(** Drain any request bytes that already arrived (never waiting for
    more), then close. Closing with unread input pending would make the
    kernel send RST instead of FIN, destroying an in-flight response —
    exactly the shed-429 and refused-413 paths where the server answers
    without reading the request. Never raises. *)
