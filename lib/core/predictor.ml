(* Whole-run predictions on top of the per-iteration model: a production
   particle-transport run solves [time_steps] time steps, each requiring
   [iterations] wavefront iterations per energy group for [energy_groups]
   groups (paper Section 5.2: 30 energy groups imply a 30-fold increase over
   a single group). *)

type run = { energy_groups : int; time_steps : int }

let run ?(energy_groups = 1) ~time_steps () =
  if energy_groups < 1 || time_steps < 1 then
    invalid_arg "Predictor.run: counts must be >= 1";
  { energy_groups; time_steps }

let time_step_time app cfg = Plugplay.time_per_time_step app cfg

(* Publish the model's per-term breakdown — the Table 5 vocabulary — into a
   metrics registry, so the profiling report reads model, simulator and
   real-run numbers from one place. *)
let record_breakdown m app cfg =
  let r = Plugplay.iteration app cfg in
  let c = Plugplay.components app cfg in
  let g name v = Obs.Metrics.set (Obs.Metrics.gauge m ("model." ^ name)) v in
  g "w" r.w;
  g "w_pre" r.w_pre;
  g "t_diagfill" r.t_diagfill;
  g "t_fullfill" r.t_fullfill;
  g "t_stack" r.t_stack;
  g "t_nonwavefront" r.t_nonwavefront;
  g "t_iteration" r.t_iteration;
  g "t_compute" c.computation;
  g "t_comm" c.communication;
  r

let total_time ~run:r app cfg =
  float_of_int r.energy_groups *. float_of_int r.time_steps
  *. time_step_time app cfg

(* Throughput metrics for the partitioning studies of Section 5.2: R is the
   time to complete one simulation; running [jobs] simulations in parallel on
   equal partitions of [avail] cores completes [jobs] simulations every R, so
   X = jobs / R. The paper's two optimization criteria are R/X and R^2/X. *)
type partition_metrics = {
  jobs : int;
  cores_per_job : int;
  r : float;  (** time to complete one simulation, us *)
  x : float;  (** simulations completed per us *)
  r_over_x : float;
  r2_over_x : float;
  steps_per_month : float;  (** time steps solved per problem per month *)
}

let partition ~run:r ~platform ?cmp ?contention ~avail ~jobs app =
  if jobs < 1 then invalid_arg "Predictor.partition: jobs must be >= 1";
  if avail mod jobs <> 0 then
    invalid_arg "Predictor.partition: jobs must divide the available cores";
  let cores_per_job = avail / jobs in
  let cfg = Plugplay.config ?cmp ?contention platform ~cores:cores_per_job in
  let rt = total_time ~run:r app cfg in
  let x = float_of_int jobs /. rt in
  let steps_per_month =
    float_of_int r.time_steps *. Units.month /. rt
  in
  {
    jobs;
    cores_per_job;
    r = rt;
    x;
    r_over_x = rt /. x;
    r2_over_x = rt *. rt /. x;
    steps_per_month;
  }

let best_partition ~run:r ~platform ?cmp ?contention ~avail ~candidates
    ~criterion app =
  let metric m =
    match criterion with
    | `R_over_x -> m.r_over_x
    | `R2_over_x -> m.r2_over_x
  in
  let ms =
    List.filter_map
      (fun jobs ->
        if jobs >= 1 && avail mod jobs = 0 then
          Some (partition ~run:r ~platform ?cmp ?contention ~avail ~jobs app)
        else None)
      candidates
  in
  match ms with
  | [] -> invalid_arg "Predictor.best_partition: no feasible job counts"
  | first :: rest ->
      List.fold_left (fun b m -> if metric m < metric b then m else b) first rest
