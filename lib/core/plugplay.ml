(* The plug-and-play re-usable LogGP model (paper Section 4, Tables 5 and 6).

   Equations implemented here, with their paper labels:

     Wpre = Wg_pre * Htile * Nx/n * Ny/m                               (r1a)
     W    = Wg     * Htile * Nx/n * Ny/m                               (r1b)
     StartP(1,1) = Wpre                                                (r2a)
     StartP(i,j) = max(StartP(i-1,j) + W + Total_commE + ReceiveN,
                       StartP(i,j-1) + W + SendE + Total_commS)        (r2b)
     Tdiagfill = StartP(1,m)                                           (r3a)
     Tfullfill = StartP(n,m)                                           (r3b)
     Tstack = (ReceiveW + ReceiveN + W + SendE + SendS + Wpre)
              * Nz/Htile - Wpre                                        (r4)
     Titer  = ndiag*Tdiagfill + nfull*Tfullfill
              + nsweeps*Tstack + Tnonwavefront                         (r5)

   For multi-core nodes, each communication term in (r2b) is classified
   on-chip or off-node by the position of the cores involved inside the
   Cx x Cy node rectangle (Table 6), all communication in (r4) is off-node
   (the stack proceeds at the rate of the slowest direction), and the
   shared-bus interference term I = o_dma + size * G_dma is added to the
   sends and receives of (r4). *)

open Wgrid
module Comm = Loggp.Comm_model

type config = {
  platform : Loggp.Params.t;
  cmp : Cmp.t;
  pgrid : Proc_grid.t;
  contention : bool;
  sync_terms : bool;
}

let config ?cmp ?pgrid ?(contention = true) ?(sync_terms = false) platform
    ~cores =
  if cores < 1 then invalid_arg "Plugplay.config: cores must be >= 1";
  let cmp =
    match cmp with
    | Some c -> c
    | None -> Cmp.of_cores_per_node platform.Loggp.Params.cores_per_node
  in
  let pgrid =
    match pgrid with Some g -> g | None -> Proc_grid.of_cores cores
  in
  if Proc_grid.cores pgrid <> cores then
    invalid_arg "Plugplay.config: pgrid does not match the core count";
  { platform; cmp; pgrid; contention; sync_terms }

type result = {
  w : float;
  w_pre : float;
  msg_ew : int;
  msg_ns : int;
  t_diagfill : float;
  t_fullfill : float;
  t_stack : float;
  t_nonwavefront : float;
  t_iteration : float;
}

(* Shared-bus interference coefficients for the sends and receives of (r4),
   generalizing the three cases of Table 6 (1x2 -> I on the N/S operations;
   2x2 -> I on every operation; 2x4 -> 2I on every operation): cores sharing
   a bus interfere in proportion to Cx*Cy/4 when the rectangle spans both
   dimensions, and only the spanned dimension suffers when the rectangle is a
   single row or column of cores. *)
let contention_coeffs (cmp : Cmp.t) =
  let cpn = float_of_int (Cmp.cores_per_node cmp) in
  if cmp.cx = 1 && cmp.cy = 1 then (0.0, 0.0)
  else if cmp.cx = 1 then (0.0, cpn /. 2.0)
  else if cmp.cy = 1 then (cpn /. 2.0, 0.0)
  else (cpn /. 4.0, cpn /. 4.0)

(* The pipeline-fill recurrence (r2a)/(r2b). Returns the StartP array
   (row-major, core (i,j) at index (j-1)*cols + (i-1)). *)
let start_times (app : App_params.t) cfg ~w ~w_pre ~msg_ew ~msg_ns =
  ignore app;
  let { Proc_grid.cols; rows } = cfg.pgrid in
  let start = Array.make (cols * rows) 0.0 in
  let idx i j = ((j - 1) * cols) + (i - 1) in
  let locality src dir = Cmp.link_locality cfg.cmp ~src dir in
  for j = 1 to rows do
    for i = 1 to cols do
      if i = 1 && j = 1 then start.(idx 1 1) <- w_pre (* r2a *)
      else begin
        let from_west =
          if i = 1 then neg_infinity
          else
            let arrive =
              Comm.total cfg.platform (locality (i - 1, j) E) msg_ew
            in
            let recv_north =
              if j = 1 then 0.0
              else Comm.receive cfg.platform (locality (i, j - 1) S) msg_ns
            in
            start.(idx (i - 1) j) +. w +. arrive +. recv_north
        in
        let from_north =
          if j = 1 then neg_infinity
          else
            let send_east =
              if i = cols then 0.0
              else Comm.send cfg.platform (locality (i, j - 1) E) msg_ew
            in
            let arrive =
              Comm.total cfg.platform (locality (i, j - 1) S) msg_ns
            in
            start.(idx i (j - 1)) +. w +. send_east +. arrive
        in
        start.(idx i j) <- Float.max from_west from_north
      end
    done
  done;
  start

(* The non-wavefront (between-iteration) cost. *)
let nonwavefront_time (app : App_params.t) cfg =
  match app.nonwavefront with
  | No_op -> 0.0
  | Fixed t -> t
  | Allreduce { count; msg_size } ->
      let cores = Proc_grid.cores cfg.pgrid in
      float_of_int count *. Loggp.Allreduce.time ~msg_size cfg.platform ~cores
  | Stencil { wg_stencil; halo_bytes_per_cell } ->
      let cells_x = Decomp.cells_x app.grid cfg.pgrid in
      let cells_y = Decomp.cells_y app.grid cfg.pgrid in
      let nz = float_of_int app.grid.nz in
      let compute = wg_stencil *. cells_x *. cells_y *. nz in
      let face extent =
        Decomp.message_size ~bytes_per_cell:halo_bytes_per_cell ~htile:nz
          ~extent
      in
      let halo =
        (2.0 *. Comm.total_offnode cfg.platform.offnode (face cells_y))
        +. (2.0 *. Comm.total_offnode cfg.platform.offnode (face cells_x))
      in
      compute +. halo

let iteration (app : App_params.t) cfg =
  let pg = cfg.pgrid in
  let cells_tile = Decomp.cells_per_tile app.grid pg ~htile:app.htile in
  let w = app.wg *. cells_tile (* r1b *) in
  let w_pre = app.wg_pre *. cells_tile (* r1a *) in
  let msg_ew = App_params.message_size_ew app pg in
  let msg_ns = App_params.message_size_ns app pg in
  let start = start_times app cfg ~w ~w_pre ~msg_ew ~msg_ns in
  let at i j = start.(((j - 1) * pg.cols) + (i - 1)) in
  let t_diagfill = at 1 pg.rows (* r3a *) in
  let t_fullfill = at pg.cols pg.rows (* r3b *) in
  (* (r4): all communication off-node; bus interference added per Table 6. *)
  let off = cfg.platform.offnode in
  let coeff_ew, coeff_ns =
    if cfg.contention then contention_coeffs cfg.cmp else (0.0, 0.0)
  in
  let i_ew = coeff_ew *. Comm.contention_i cfg.platform.onchip msg_ew in
  let i_ns = coeff_ns *. Comm.contention_i cfg.platform.onchip msg_ns in
  (* Optional handshake back-propagation terms of the Table 4 model
     ((m-1)L and (n-2)L per tile): significant on high-latency platforms
     like the SP/2, negligible on the XT4 (paper Section 4.2). *)
  let sync =
    if cfg.sync_terms then
      float_of_int (pg.rows - 1 + max 0 (pg.cols - 2)) *. off.l
    else 0.0
  in
  let per_tile =
    Comm.receive_offnode off msg_ew +. i_ew (* ReceiveW *)
    +. Comm.receive_offnode off msg_ns +. i_ns (* ReceiveN *)
    +. w
    +. Comm.send_offnode off msg_ew +. i_ew (* SendE *)
    +. Comm.send_offnode off msg_ns +. i_ns (* SendS *)
    +. w_pre +. sync
  in
  let ntiles = Tile.ntiles ~nz:app.grid.nz ~htile:app.htile in
  let t_stack = (per_tile *. ntiles) -. w_pre in
  let t_nonwavefront = nonwavefront_time app cfg in
  let c = App_params.counts app in
  let t_iteration =
    (float_of_int c.ndiag *. t_diagfill)
    +. (float_of_int c.nfull *. t_fullfill)
    +. (float_of_int c.nsweeps *. t_stack)
    +. t_nonwavefront
  in
  {
    w; w_pre; msg_ew; msg_ns; t_diagfill; t_fullfill; t_stack;
    t_nonwavefront; t_iteration;
  }

let time_per_iteration app cfg = (iteration app cfg).t_iteration

(* Per-sweep critical-path contributions implied by the (r5) accounting:
   a Follow-gated sweep adds one stack time, a Diagonal-gated sweep adds a
   diagonal fill on top, a Full-gated sweep a full fill. The contributions
   sum to the iteration time minus the non-wavefront term. *)
let sweep_times app cfg =
  let r = iteration app cfg in
  List.map
    (fun (g : Sweeps.Schedule.gate) ->
      let t =
        match g with
        | Follow -> r.t_stack
        | Diagonal -> r.t_diagfill +. r.t_stack
        | Full -> r.t_fullfill +. r.t_stack
      in
      (g, t))
    (Sweeps.Schedule.gates app.App_params.schedule)

let time_per_time_step app cfg =
  float_of_int app.App_params.iterations *. time_per_iteration app cfg

(* --- Computation/communication decomposition (for Figure 11) --- *)

type components = {
  total : float;
  computation : float;
  communication : float;
}

(* A platform with all communication costs zeroed: evaluating the model on
   it yields the pure-computation component of the critical path. *)
let zero_comm_platform (p : Loggp.Params.t) : Loggp.Params.t =
  {
    p with
    offnode = { g = 0.0; l = 0.0; o = 0.0; o_h = 0.0; eager_limit = max_int };
    onchip =
      { g_copy = 0.0; g_dma = 0.0; o_copy = 0.0; o_dma = 0.0;
        eager_limit = max_int };
  }

let components app cfg =
  let total = time_per_iteration app cfg in
  let comp_cfg =
    { cfg with platform = zero_comm_platform cfg.platform; contention = false }
  in
  let computation = time_per_iteration app comp_cfg in
  { total; computation; communication = total -. computation }

(* --- The allocation-free evaluator --- *)

(* The serving path: the same (r1a)-(r5) arithmetic as [iteration], with
   everything a repeated evaluation would re-derive hoisted into [create]
   and every intermediate kept in preallocated unboxed storage, so [run]
   allocates zero minor words per call (pinned by the telemetry gate; the
   compiler here is classic ocamlopt, so any record, closure or boxed
   cross-module float return in the loop would show up immediately).

   The hoist that makes the recurrence loop pure float-array arithmetic:
   [Cmp.link_locality] of an E link depends only on the source column and
   of an S link only on the source row (the node rectangle tiles the
   grid), so the four (r2b) communication terms collapse into per-column
   and per-row tables probed once at build time. *)
module Eval = struct
  type out = {
    mutable t_diagfill : float;
    mutable t_fullfill : float;
    mutable t_iteration : float;
  }

  type nonrec t = {
    cols : int;
    rows : int;
    w : float;
    w_pre : float;
    (* (r2b) terms per link: E-link out of column i, S-link out of row j. *)
    ew_total : float array;  (* .(i), i in 1..cols-1 *)
    ew_send : float array;
    ns_total : float array;  (* .(j), j in 1..rows-1 *)
    ns_recv : float array;
    start : float array;  (* the StartP scratch, reused every run *)
    ndiag : float;
    nfull : float;
    stack_term : float;  (* nsweeps * t_stack, constant per config *)
    t_nonwavefront : float;
    out : out;
    base : result;  (* constant result fields for [result] *)
  }

  let create (app : App_params.t) cfg =
    let r = iteration app cfg in
    let pg = cfg.pgrid in
    let cols = pg.Proc_grid.cols and rows = pg.Proc_grid.rows in
    let locality src dir = Cmp.link_locality cfg.cmp ~src dir in
    let ew_total = Array.make (max 1 cols) 0.0 in
    let ew_send = Array.make (max 1 cols) 0.0 in
    for i = 1 to cols - 1 do
      let loc = locality (i, 1) Cmp.E in
      ew_total.(i) <- Comm.total cfg.platform loc r.msg_ew;
      ew_send.(i) <- Comm.send cfg.platform loc r.msg_ew
    done;
    let ns_total = Array.make (max 1 rows) 0.0 in
    let ns_recv = Array.make (max 1 rows) 0.0 in
    for j = 1 to rows - 1 do
      let loc = locality (1, j) Cmp.S in
      ns_total.(j) <- Comm.total cfg.platform loc r.msg_ns;
      ns_recv.(j) <- Comm.receive cfg.platform loc r.msg_ns
    done;
    let c = App_params.counts app in
    {
      cols;
      rows;
      w = r.w;
      w_pre = r.w_pre;
      ew_total;
      ew_send;
      ns_total;
      ns_recv;
      start = Array.make (cols * rows) 0.0;
      ndiag = float_of_int c.ndiag;
      nfull = float_of_int c.nfull;
      stack_term = float_of_int c.nsweeps *. r.t_stack;
      t_nonwavefront = r.t_nonwavefront;
      out = { t_diagfill = 0.0; t_fullfill = 0.0; t_iteration = 0.0 };
      base = r;
    }

  let run e =
    let cols = e.cols and rows = e.rows in
    let start = e.start in
    let ewt = e.ew_total and ews = e.ew_send in
    let nst = e.ns_total and nsr = e.ns_recv in
    let w = e.w in
    for j = 1 to rows do
      let base = (j - 1) * cols in
      for i = 1 to cols do
        if i = 1 && j = 1 then start.(0) <- e.w_pre (* r2a *)
        else begin
          let fw =
            if i = 1 then neg_infinity
            else
              start.(base + i - 2) +. w +. ewt.(i - 1)
              +. (if j = 1 then 0.0 else nsr.(j - 1))
          in
          let fn =
            if j = 1 then neg_infinity
            else
              start.(base - cols + i - 1)
              +. w
              +. (if i = cols then 0.0 else ews.(i))
              +. nst.(j - 1)
          in
          (* plain compare, not [Float.max]: neither side is ever nan or
             -0., and the call would box its float arguments *)
          start.(base + i - 1) <- (if fw >= fn then fw else fn)
        end
      done
    done;
    let o = e.out in
    o.t_diagfill <- start.((rows - 1) * cols);
    o.t_fullfill <- start.((rows * cols) - 1);
    o.t_iteration <-
      (e.ndiag *. o.t_diagfill)
      +. (e.nfull *. o.t_fullfill)
      +. e.stack_term +. e.t_nonwavefront

  let t_iteration e = e.out.t_iteration
  let t_diagfill e = e.out.t_diagfill
  let t_fullfill e = e.out.t_fullfill

  let result e =
    {
      e.base with
      t_diagfill = e.out.t_diagfill;
      t_fullfill = e.out.t_fullfill;
      t_iteration = e.out.t_iteration;
    }
end

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>W=%a Wpre=%a msgs EW=%dB NS=%dB@,Tdiagfill=%a Tfullfill=%a \
     Tstack=%a Tnonwf=%a@,T_iteration=%a@]"
    Units.pp_time r.w Units.pp_time r.w_pre r.msg_ew r.msg_ns Units.pp_time
    r.t_diagfill Units.pp_time r.t_fullfill Units.pp_time r.t_stack
    Units.pp_time r.t_nonwavefront Units.pp_time r.t_iteration
