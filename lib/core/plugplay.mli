(** The plug-and-play re-usable LogGP model of wavefront computations
    (paper Section 4, Tables 5 and 6).

    Given the application parameters of {!App_params} and a platform
    configuration, [iteration] evaluates equations (r1a)-(r5) — with the
    Table 6 multi-core locality and shared-bus contention extensions — and
    returns the per-iteration critical-path time and its pieces. All times
    are in microseconds. *)

open Wgrid

type config = {
  platform : Loggp.Params.t;
  cmp : Cmp.t;  (** node core rectangle (Table 6) *)
  pgrid : Proc_grid.t;  (** the m x n grid of cores *)
  contention : bool;  (** apply the shared-bus interference terms *)
  sync_terms : bool;
      (** include the Table-4-style handshake back-propagation terms
          ((m-1)L, (n-2)L per tile); needed on high-latency platforms like
          the SP/2, negligible on the XT4 (paper Section 4.2) *)
}

val config :
  ?cmp:Cmp.t ->
  ?pgrid:Proc_grid.t ->
  ?contention:bool ->
  ?sync_terms:bool ->
  Loggp.Params.t ->
  cores:int ->
  config
(** [config platform ~cores] builds a configuration with a near-square
    processor grid over [cores] cores and the platform's natural core
    rectangle. Raises [Invalid_argument] if an explicit [pgrid] disagrees
    with [cores]. *)

type result = {
  w : float;  (** (r1b): work per tile after the receives *)
  w_pre : float;  (** (r1a): work per tile before the receives *)
  msg_ew : int;  (** east/west boundary message, bytes *)
  msg_ns : int;
  t_diagfill : float;  (** (r3a): fill time to the main-diagonal corner *)
  t_fullfill : float;  (** (r3b): fill time to the opposite corner *)
  t_stack : float;  (** (r4): time to process a stack of tiles *)
  t_nonwavefront : float;
  t_iteration : float;  (** (r5) *)
}

val iteration : App_params.t -> config -> result

val time_per_iteration : App_params.t -> config -> float
(** Just the (r5) total of {!iteration}. *)

val sweep_times : App_params.t -> config -> (Sweeps.Schedule.gate * float) list
(** Per-sweep critical-path contributions implied by (r5); they sum to
    [t_iteration - t_nonwavefront]. *)

val time_per_time_step : App_params.t -> config -> float
(** [iterations * t_iteration]. *)

val contention_coeffs : Cmp.t -> float * float
(** [(coeff_ew, coeff_ns)]: how many interference terms [I] are added to each
    east/west and north/south operation of (r4). Generalizes Table 6's
    1x2 / 2x2 / 2x4 rows; exposed for tests and ablations. *)

val nonwavefront_time : App_params.t -> config -> float

type components = {
  total : float;
  computation : float;
  communication : float;
}

val components : App_params.t -> config -> components
(** Critical-path breakdown used for the bottleneck study (Figure 11):
    [computation] is the model evaluated with all communication costs zeroed,
    [communication] the remainder. *)

val zero_comm_platform : Loggp.Params.t -> Loggp.Params.t
val pp_result : result Fmt.t

(** The allocation-free evaluator for the serving path: [create] hoists
    every configuration-dependent term ((r1) work, the per-column /
    per-row (r2b) communication tables, the constant (r4)/(r5) pieces)
    and preallocates the StartP scratch; [run] then re-executes the full
    pipeline-fill recurrence with zero minor-heap allocation per call
    (the telemetry gate pins it at exactly 0 words). [run] agrees with
    {!iteration} to the last bit; results are read through the
    accessors after a [run]. Not synchronized: one evaluator per
    domain. *)
module Eval : sig
  type t

  val create : App_params.t -> config -> t
  val run : t -> unit

  val t_iteration : t -> float
  val t_diagfill : t -> float
  val t_fullfill : t -> float

  val result : t -> result
  (** The full {!result} of the last [run] (allocates; call it outside
      any measured window). *)
end
