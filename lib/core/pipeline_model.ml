(* A sweep-level dataflow evaluation of the whole iteration — a
   first-principles cross-check of the (r5) accounting.

   Where equation (r5) folds the schedule into ndiag/nfull counts, this
   evaluator tracks the actual per-processor finish time of every sweep:
   processor p may start sweep k+1 when it has finished its own stack of
   sweep-k tiles (in-order execution) and when the first boundary values of
   sweep k+1 arrive from upstream. This resolves exactly the cases (r5)
   abstracts — e.g. a Follow-gated sweep whose downstream processors are
   still draining the previous sweep — at the cost of O(nsweeps * P) work
   instead of O(P).

   Agreement between this evaluator, the closed form, and the event-level
   simulator is tested in the suite; the EXT-PIPE experiment tabulates all
   three. *)

open Wgrid
module Comm = Loggp.Comm_model

(* Per-sweep evaluation: given each processor's ready time [finish] from the
   previous sweep, produce the finish times of this sweep. *)
let sweep_finish_times (cfg : Plugplay.config) ~(origin : Proc_grid.corner)
    ~w ~w_pre ~t_stack ~msg_ew ~msg_ns finish =
  let pg = cfg.pgrid in
  let { Proc_grid.cols; rows } = pg in
  let ox, oy = Proc_grid.corner_coords pg origin in
  let dx = if ox = 1 then 1 else -1 in
  let dy = if oy = 1 then 1 else -1 in
  (* Canonical coordinates (ci, cj) count from the sweep origin; actual
     grid coordinates determine ranks and link localities. *)
  let actual ci cj =
    ((if dx > 0 then ci else cols + 1 - ci),
     if dy > 0 then cj else rows + 1 - cj)
  in
  let start = Array.make (cols * rows) 0.0 in
  let idx i j = ((j - 1) * cols) + (i - 1) in
  let locality src dir = Cmp.link_locality cfg.cmp ~src dir in
  let dir_to_me_x = if dx > 0 then Cmp.E else Cmp.W in
  let dir_to_me_y = if dy > 0 then Cmp.S else Cmp.N in
  for cj = 1 to rows do
    for ci = 1 to cols do
      let i, j = actual ci cj in
      let ready = finish.(idx i j) +. w_pre in
      let s =
        if ci = 1 && cj = 1 then ready
        else begin
          let from_x =
            if ci = 1 then neg_infinity
            else begin
              let ui, uj = actual (ci - 1) cj in
              let arrive =
                Comm.total cfg.platform
                  (locality (ui, uj) dir_to_me_x)
                  msg_ew
              in
              let recv_y =
                if cj = 1 then 0.0
                else
                  let pi, pj = actual ci (cj - 1) in
                  Comm.receive cfg.platform (locality (pi, pj) dir_to_me_y) msg_ns
              in
              start.(idx ui uj) +. w +. arrive +. recv_y
            end
          in
          let from_y =
            if cj = 1 then neg_infinity
            else begin
              let ui, uj = actual ci (cj - 1) in
              let send_x =
                if ci = cols then 0.0
                else Comm.send cfg.platform (locality (ui, uj) dir_to_me_x) msg_ew
              in
              let arrive =
                Comm.total cfg.platform (locality (ui, uj) dir_to_me_y) msg_ns
              in
              start.(idx ui uj) +. w +. send_x +. arrive
            end
          in
          Float.max ready (Float.max from_x from_y)
        end
      in
      start.(idx i j) <- s
    done
  done;
  Array.init (cols * rows) (fun k -> start.(k) +. t_stack)

let iteration (app : App_params.t) (cfg : Plugplay.config) =
  let pg = cfg.pgrid in
  let r = Plugplay.iteration app cfg in
  let w = r.w and w_pre = r.w_pre in
  let finish = ref (Array.make (Proc_grid.cores pg) 0.0) in
  List.iter
    (fun (s : Sweeps.Schedule.sweep) ->
      finish :=
        sweep_finish_times cfg ~origin:s.origin ~w ~w_pre ~t_stack:r.t_stack
          ~msg_ew:r.msg_ew ~msg_ns:r.msg_ns !finish)
    (Sweeps.Schedule.sweeps app.schedule);
  let sweeps_end = Array.fold_left Float.max 0.0 !finish in
  sweeps_end +. r.t_nonwavefront

let time_per_iteration = iteration

let record_iteration m app cfg =
  let t = iteration app cfg in
  Obs.Metrics.set (Obs.Metrics.gauge m "pipeline.t_iteration") t;
  t
