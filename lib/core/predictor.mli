(** Whole-run predictions and the procurement metrics of Section 5.2.

    A production run solves [time_steps] time steps; each time step performs
    the application's [iterations] wavefront iterations once per energy
    group. Times in microseconds. *)

type run = { energy_groups : int; time_steps : int }

val run : ?energy_groups:int -> time_steps:int -> unit -> run

val time_step_time : App_params.t -> Plugplay.config -> float
(** Time for one time step of one energy group
    ([iterations * t_iteration]). *)

val record_breakdown :
  Obs.Metrics.t -> App_params.t -> Plugplay.config -> Plugplay.result
(** Evaluate the model and publish its per-term breakdown as [model.*]
    gauges — [w], [w_pre], [t_diagfill], [t_fullfill], [t_stack],
    [t_nonwavefront], [t_iteration], plus the Figure 11 decomposition as
    [t_compute]/[t_comm]. Returns the evaluated result. *)

val total_time : run:run -> App_params.t -> Plugplay.config -> float

type partition_metrics = {
  jobs : int;  (** simulations run in parallel *)
  cores_per_job : int;
  r : float;  (** time to complete one simulation, us *)
  x : float;  (** simulations completed per us *)
  r_over_x : float;  (** the paper's R/X criterion (Figure 8) *)
  r2_over_x : float;  (** the paper's R^2/X criterion *)
  steps_per_month : float;  (** time steps solved per problem per month
                                (Figure 7) *)
}

val partition :
  run:run ->
  platform:Loggp.Params.t ->
  ?cmp:Wgrid.Cmp.t ->
  ?contention:bool ->
  avail:int ->
  jobs:int ->
  App_params.t ->
  partition_metrics
(** Metrics when [avail] cores are split into [jobs] equal partitions, one
    simulation per partition. Raises [Invalid_argument] if [jobs] does not
    divide [avail]. *)

val best_partition :
  run:run ->
  platform:Loggp.Params.t ->
  ?cmp:Wgrid.Cmp.t ->
  ?contention:bool ->
  avail:int ->
  candidates:int list ->
  criterion:[ `R_over_x | `R2_over_x ] ->
  App_params.t ->
  partition_metrics
(** The candidate job count minimizing the chosen criterion (Figure 9). *)
