(** A sweep-level dataflow evaluation of the whole iteration: tracks the
    actual per-processor finish time of every sweep instead of folding the
    schedule into the ndiag/nfull counts of equation (r5). A
    first-principles cross-check of the closed form, and a tighter bound
    when a Follow-gated sweep's downstream is still draining. *)

open Wgrid

val sweep_finish_times :
  Plugplay.config ->
  origin:Proc_grid.corner ->
  w:float ->
  w_pre:float ->
  t_stack:float ->
  msg_ew:int ->
  msg_ns:int ->
  float array ->
  float array
(** [sweep_finish_times cfg ~origin ... finish] maps each processor's ready
    time (its previous-sweep finish) to its finish time of a sweep from
    [origin]. Arrays are row-major over [cfg.pgrid]. *)

val iteration : App_params.t -> Plugplay.config -> float
(** Iteration time including the non-wavefront epilogue. *)

val time_per_iteration : App_params.t -> Plugplay.config -> float
(** Alias of {!iteration}. *)

val record_iteration :
  Obs.Metrics.t -> App_params.t -> Plugplay.config -> float
(** As {!iteration}, also publishing the result as the
    [pipeline.t_iteration] gauge. *)
