(** The closed-form idle-wave term: what an injected stall of [delta] us
    does to a tied wavefront pipeline (Afzal, Hager & Wellein,
    arXiv:2103.03175).

    The model is parameterized by the pipeline's two silent-system time
    constants — the wall-clock cost of one rank hop ([hop_cost], the LogGP
    link cost plus a tile compute; see [Wrun.Costs.hop_latency]) and the
    per-wave period ([wave_period], the same terms minus the message
    flight time) — plus the expected background lateness per wave
    ([noise_mean], us), which damps the wave. On a silent system the wave
    propagates undamped at one hop per [hop_cost] us; with background
    noise the amplitude decays exponentially at [noise_mean / delta] per
    hop to first order. *)

type t

val v :
  ?noise_mean:float ->
  delta:float ->
  origin_rank:int ->
  origin_wave:int ->
  hop_cost:float ->
  wave_period:float ->
  unit ->
  t
(** Raises [Invalid_argument] on a negative delta, rank, wave or noise
    mean, or a non-positive hop cost or wave period. *)

val of_spec :
  ?work:float -> Spec.t -> hop_cost:float -> wave_period:float -> t option
(** The model for the first [pulse] clause of the spec, or [None] when the
    spec has no idle-wave source. [work] is the unperturbed tile compute
    time in us, used to turn the spec's fractional compute-noise clause
    into the absolute [noise_mean] (plus the periodic clause's per-wave
    mean). *)

val delta : t -> float
val origin : t -> int * int  (** (rank, wave) of the injected stall *)

val hop_cost : t -> float
val wave_period : t -> float

val speed : t -> float
(** Silent-system propagation speed, ranks per us: [1 / hop_cost]. *)

val ranks_per_wave : t -> float
(** The classical idle-wave speed in pipeline units:
    [wave_period / hop_cost]. *)

val decay : t -> float
(** First-order exponential decay rate per hop, [noise_mean / delta];
    0 on a silent system or for a zero-amplitude pulse. *)

val amplitude_at : t -> hops:int -> float
(** Predicted wave amplitude [hops] ranks downstream of the origin:
    [delta * exp (-decay * hops)]. *)

val arrival : t -> hops:int -> float
(** Wall-clock delay after injection before the front reaches a rank
    [hops] away: [hops * hop_cost]. *)

val pp : t Fmt.t
