(** The recovery-aware runtime model: checkpoint interval, rollback
    depth and restart cost as plug-in parameters.

    A {!policy} describes when snapshots are taken (every [interval]
    waves, at cost [ckpt_cost] each) and what a respawn costs
    ([restart_cost]). The closed-form {!term} predicts the overhead a
    recovered run adds over a clean one; {!optimal_interval} is the
    Daly-style balance point. The arithmetic here ([due],
    [checkpoints], [lost_waves]) is the single source of truth that
    [Wrun.Checkpoint] and the simulators delegate to, so model,
    simulator and real runtime cannot disagree by construction. *)

type policy = {
  interval : int;  (** K: waves between checkpoints; 0 disables. *)
  ckpt_cost : float;  (** C: microseconds per checkpoint. *)
  restart_cost : float;  (** R: microseconds to respawn from a snapshot. *)
}

val v : ?ckpt_cost:float -> ?restart_cost:float -> int -> policy
(** [v k] is the policy with interval [k]; costs default to 0. Raises
    [Invalid_argument] on negative interval or costs. *)

val disabled : policy
(** Interval 0: recovery off, bitwise invisible everywhere. *)

val enabled : policy -> bool
val pp : policy Fmt.t

val due : interval:int -> wave:int -> bool
(** Whether wave [wave] is a checkpoint wave:
    [interval > 0 && wave > 0 && wave mod interval = 0]. The snapshot is
    taken before the wave's compute, so a failure at a checkpoint wave
    loses nothing. *)

val checkpoints : interval:int -> waves:int -> int
(** Checkpoint waves among waves [0 .. waves-1]: [(waves - 1) / K]. *)

val lost_waves : policy -> fail_wave:int -> int
(** Waves re-executed when a rank dies at global wave [fail_wave]:
    [fail_wave mod K], or all of them if recovery is disabled. *)

type term = {
  checkpoint : float;  (** Total checkpoint overhead over the run. *)
  restart : float;  (** Total respawn cost. *)
  rework : float;  (** Lost waves re-executed. *)
  total : float;
}

val zero_term : term

val deterministic_term :
  policy -> waves:int -> wave_cost:float -> fail_waves:int list -> term
(** Overhead of a concrete failure schedule — one entry in [fail_waves]
    per failure, holding the global wave at which it strikes. This is
    what the simulators reproduce wave-for-wave. [wave_cost] is the
    compute cost of one wave (the model's [w + w_pre]). *)

val expected_term :
  policy -> waves:int -> wave_cost:float -> failures:int -> term
(** The expectation when only a failure count is known: each failure
    loses [K/2] waves on average. *)

val optimal_interval :
  waves:int -> wave_cost:float -> failures:int -> ckpt_cost:float -> int
(** Daly-style optimum [K* = sqrt (2 * waves * C / (f * T_wave))],
    clamped to [1, waves]. Free checkpoints give 1; zero failures (or
    free waves) give [waves]. *)

val pp_term : term Fmt.t
