(** A {!Spec.t} instantiated for a run of a known rank count: per-rank draw
    streams, straggler delays and failure counters.

    Draw alignment is the load-bearing contract: every substrate consumes
    one {!noise_extra} draw per tile compute and one {!link_extra} draw per
    wavefront send, in program order, so the same spec injects the same
    delays into the simulator, the real runtime and the dataflow backend.
    Each rank only touches its own streams, so a single model is safe to
    share across one-domain-per-rank runtimes. *)

exception Killed of { rank : int; tile : int }
(** Raised by a substrate when {!fails_now} says the rank dies; carries the
    rank context every failure report preserves. *)

type t

val create : Spec.t -> ranks:int -> t
(** Raises [Invalid_argument] when the spec names a rank outside
    [0 .. ranks-1]. *)

val spec : t -> Spec.t
val ranks : t -> int

val noise_extra : t -> rank:int -> work:float -> float
(** Extra compute time (us) for one tile of unperturbed duration [work] us.
    Consumes one draw iff the spec has a noise clause with non-zero
    amplitude. *)

val straggler_delay : t -> rank:int -> float
(** Constant extra us this rank loses per tile (0 for non-stragglers). *)

val link_extra : t -> src:int -> float
(** Injection delay (us) for one message sent by [src]; consumes one draw
    iff the spec has a non-zero link clause. *)

val fails_now : t -> rank:int -> bool
(** Advance the rank's tile counter; true when the spec kills the rank at
    this tile. Call exactly once at the start of every tile compute. *)

val pulse_extra : t -> rank:int -> float
(** One-shot stall (us) the spec injects into the rank's current wave — the
    idle-wave source. The current wave is read from the tile counter, so
    call this after {!fails_now} within the same tile step. Draw-free. *)

val periodic_extra : t -> rank:int -> float
(** Stall (us) of the periodic scenario at the rank's current wave (every
    [period]-th wave on every rank). Same calling contract as
    {!pulse_extra}; draw-free. *)

val coll_extra : t -> rank:int -> float
(** Extra stall (us) before one allreduce operation on [rank]; consumes one
    draw from the rank's collective stream per allreduce substrate call iff
    the spec has a non-zero [collnoise] clause. *)

val revive : t -> rank:int -> unit
(** Lift the rank's death sentence after a recovery respawn: failures
    are fail-stop with replacement, so a revived rank never dies again.
    Draw streams and the tile counter are untouched. *)

val tiles_started : t -> rank:int -> int
val fails : t -> rank:int -> bool
val is_straggler : t -> rank:int -> bool
