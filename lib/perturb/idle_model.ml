(* The closed-form idle-wave term (Afzal, Hager & Wellein,
   arXiv:2103.03175), specialized to the tied wavefront pipeline.

   In the steady state of the Figure-4 pipeline every interior rank is
   exactly tied: the face from upstream arrives at the instant the rank
   finishes its previous wave, so slack is zero and an injected stall of
   [delta] us propagates downstream undamped on a silent system. The
   front crosses one rank hop per

     hop_cost = send_busy + in_flight + recv_overhead + w_pre + w

   us of wall-clock time (the LogGP link cost plus one tile compute; see
   [Wrun.Costs.hop_latency]), while the pipeline advances one wave every

     wave_period = send_busy + recv_overhead + w_pre + w

   us ([Wrun.Costs.steady_period] — the same terms minus the flight time,
   which both rank- and wave-axis constraints share). The classical
   "ranks per wave" propagation speed is therefore wave_period /
   hop_cost, and the silent-system speed in wall-clock terms is 1 /
   hop_cost ranks per us.

   Background noise gives downstream ranks their own lateness, which
   absorbs part of the arriving wave: to first order an expected
   [noise_mean] us of extra work per wave eats noise_mean off the
   amplitude at every hop, i.e. an exponential decay with rate

     lambda = noise_mean / delta   (per hop)

   — larger pulses survive longer, noisier systems damp faster, and a
   silent system (noise_mean = 0) never decays, which is exactly the
   regime the cell-for-cell substrate identity pins down. *)

type t = {
  delta : float;
  origin_rank : int;
  origin_wave : int;
  hop_cost : float;
  wave_period : float;
  noise_mean : float;
}

let invalid fmt = Fmt.kstr invalid_arg fmt

let v ?(noise_mean = 0.0) ~delta ~origin_rank ~origin_wave ~hop_cost
    ~wave_period () =
  if delta < 0.0 || not (Float.is_finite delta) then
    invalid "Perturb.Idle_model.v: delta %g must be finite and >= 0" delta;
  if hop_cost <= 0.0 then
    invalid "Perturb.Idle_model.v: hop cost %g must be > 0" hop_cost;
  if wave_period <= 0.0 then
    invalid "Perturb.Idle_model.v: wave period %g must be > 0" wave_period;
  if noise_mean < 0.0 then
    invalid "Perturb.Idle_model.v: noise mean %g must be >= 0" noise_mean;
  if origin_rank < 0 then
    invalid "Perturb.Idle_model.v: negative origin rank";
  if origin_wave < 0 then
    invalid "Perturb.Idle_model.v: negative origin wave";
  { delta; origin_rank; origin_wave; hop_cost; wave_period; noise_mean }

(* A model instance for the first pulse of a spec; None when the spec has
   no idle-wave source. The background noise level combines the compute
   noise clause (expected fraction of a [work]-us tile) with the periodic
   clause's per-wave mean. *)
let of_spec ?(work = 0.0) (spec : Spec.t) ~hop_cost ~wave_period =
  match spec.pulses with
  | [] -> None
  | p :: _ ->
      let noise_mean =
        (Spec.mean_noise_frac spec *. work)
        +. Spec.periodic_mean_per_wave spec
      in
      Some
        (v ~noise_mean ~delta:p.delay ~origin_rank:p.rank ~origin_wave:p.wave
           ~hop_cost ~wave_period ())

let delta t = t.delta
let origin t = (t.origin_rank, t.origin_wave)
let hop_cost t = t.hop_cost
let wave_period t = t.wave_period

let speed t = 1.0 /. t.hop_cost
let ranks_per_wave t = t.wave_period /. t.hop_cost
let decay t = if t.delta <= 0.0 then 0.0 else t.noise_mean /. t.delta

let amplitude_at t ~hops =
  if hops < 0 then invalid "Perturb.Idle_model.amplitude_at: negative hops";
  t.delta *. Float.exp (-.decay t *. float_of_int hops)

let arrival t ~hops =
  if hops < 0 then invalid "Perturb.Idle_model.arrival: negative hops";
  t.hop_cost *. float_of_int hops

let pp ppf t =
  Fmt.pf ppf
    "@[<v>injected delay:   %12.2f us at rank %d, wave %d@,\
     hop latency:      %12.2f us/hop@,\
     wave period:      %12.2f us@,\
     speed:            %12.4f ranks/wave (%.4g ranks/us)@,\
     decay:            %12.4f /hop@]"
    t.delta t.origin_rank t.origin_wave t.hop_cost t.wave_period
    (ranks_per_wave t) (speed t) (decay t)
