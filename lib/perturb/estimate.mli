(** The noise-adjusted (r5)-style bound: what the analytic model predicts
    for an iteration under a perturbation spec.

    Delays on a pipelined wavefront's critical path propagate downstream
    as non-decaying idle waves, so the estimate charges the expected noise
    and contention delays on the path at full weight, and a permanent
    straggler at its whole per-iteration tile count (slowest straggler
    only — concurrent idle waves merge). Every term is non-decreasing in
    its amplitude. Failures have no finite predicted time and are ignored;
    the executable substrates report those as degraded outcomes. *)

open Wavefront_core

type breakdown = {
  base : float;  (** the unperturbed (r5) iteration time, us *)
  noise : float;
  link : float;
  straggler : float;
  scenario : float;
      (** pulse delays at full idle-wave weight, the periodic clause's
          per-wave mean on every path tile, and the expected collective
          stall per allreduce *)
  total : float;
}

val iteration : App_params.t -> Plugplay.config -> Spec.t -> breakdown
val time_per_iteration : App_params.t -> Plugplay.config -> Spec.t -> float
val pp_breakdown : breakdown Fmt.t
