(* SplitMix64: the perturbation layer's own pseudo-random stream.

   Perturbations must be reproducible bit-for-bit across runs, substrates
   and compiler versions — a noise draw made by the simulator and the same
   draw made by the real runtime have to agree, and the determinism
   property tests pin them down. [Stdlib.Random]'s algorithm is an
   implementation detail of the compiler release, so the layer carries its
   own: SplitMix64 (Steele, Lea & Flood, OOPSLA'14), two multiplies and
   three xor-shifts per draw, with a trivially seedable state that lets
   every (seed, stream) pair — one stream per rank, one per link source —
   start decorrelated without sharing state across domains. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L (* 2^64 / phi, the Weyl increment *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Distinct streams from one seed: bury both the seed and the stream index
   through the output mixer so low-entropy inputs (seed 0, 1, 2...) still
   produce unrelated sequences. *)
let create ~seed ~stream =
  {
    state =
      mix64
        (Int64.add
           (Int64.mul (Int64.of_int seed) gamma)
           (mix64 (Int64.mul (Int64.of_int (stream + 1)) 0xD6E8FEB86659FD93L)));
  }

let next t =
  t.state <- Int64.add t.state gamma;
  mix64 t.state

(* Uniform in [0, 1), from the top 53 bits. *)
let float t = Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

let uniform t hi = hi *. float t

(* Exponential with the given mean, by inversion; [1 - float t] keeps the
   argument of [log] strictly positive. *)
let exponential t mean = -.mean *. log (1.0 -. float t)

let bernoulli t p = float t < p
