(* A perturbation spec instantiated for a run: per-rank draw streams and
   failure counters.

   The contract that makes one spec drive three substrates identically is
   draw alignment: every substrate consumes exactly one noise draw per tile
   compute (from the rank's stream) and one link draw per wavefront send
   (from the sender's stream), in program order. Each rank touches only its
   own streams and counters, so one model value can be shared by every rank
   of a domains-based runtime without synchronization. Zero-amplitude specs
   draw nothing and inject nothing, so a zero spec is bitwise
   indistinguishable from no spec at all. *)

exception Killed of { rank : int; tile : int }

let () =
  Printexc.register_printer (function
    | Killed { rank; tile } ->
        Some
          (Printf.sprintf
             "Perturb.Model.Killed: rank %d killed by the perturbation spec \
              before tile %d"
             rank tile)
    | _ -> None)

type t = {
  spec : Spec.t;
  noise : Prng.t array;  (* one compute-noise stream per rank *)
  links : Prng.t array;  (* one link-delay stream per sending rank *)
  colls : Prng.t array;  (* one collective-noise stream per rank *)
  straggle : float array;  (* per-rank per-tile extra, us *)
  fail_after : int array;  (* tile at which the rank dies; max_int = never *)
  tiles : int array;  (* tiles started per rank (failure counter) *)
  pulses : (int * float) list array;  (* per-rank (wave, delay) stalls *)
}

let create spec ~ranks =
  if ranks < 1 then invalid_arg "Perturb.Model.create: ranks must be >= 1";
  let top = Spec.max_rank spec in
  if top >= ranks then
    Fmt.invalid_arg
      "Perturb.Model.create: spec names rank %d but the run has only %d \
       ranks"
      top ranks;
  let straggle = Array.make ranks 0.0 in
  List.iter
    (fun (s : Spec.straggler) ->
      straggle.(s.rank) <- straggle.(s.rank) +. s.delay)
    spec.stragglers;
  let fail_after = Array.make ranks max_int in
  List.iter
    (fun (f : Spec.failure) ->
      fail_after.(f.rank) <- min fail_after.(f.rank) f.after_tiles)
    spec.failures;
  let pulses = Array.make ranks [] in
  List.iter
    (fun (p : Spec.pulse) ->
      pulses.(p.rank) <- pulses.(p.rank) @ [ (p.wave, p.delay) ])
    spec.pulses;
  {
    spec;
    noise = Array.init ranks (fun r -> Prng.create ~seed:spec.seed ~stream:r);
    links =
      Array.init ranks (fun r ->
          Prng.create ~seed:spec.seed ~stream:(ranks + r));
    colls =
      Array.init ranks (fun r ->
          Prng.create ~seed:spec.seed ~stream:((2 * ranks) + r));
    straggle;
    fail_after;
    tiles = Array.make ranks 0;
    pulses;
  }

let spec t = t.spec
let ranks t = Array.length t.noise

(* Extra compute time for one tile whose unperturbed work is [work] us.
   Consumes one draw from the rank's stream iff the spec has noise, so the
   draw sequence is identical whether the substrate measures [work] (real
   runtime) or models it (simulator). *)
let noise_extra t ~rank ~work =
  match t.spec.noise with
  | Spec.No_noise -> 0.0
  | Uniform a -> if a = 0.0 then 0.0 else Prng.uniform t.noise.(rank) a *. work
  | Exponential m ->
      if m = 0.0 then 0.0 else Prng.exponential t.noise.(rank) m *. work

let straggler_delay t ~rank = t.straggle.(rank)

(* Extra injection delay for one message sent by [src]; one draw per send
   when a link clause is present. *)
let link_extra t ~src =
  match t.spec.link with
  | None -> 0.0
  | Some { prob; delay } ->
      if prob = 0.0 || delay = 0.0 then 0.0
      else if Prng.bernoulli t.links.(src) prob then delay
      else 0.0

(* Called once at the start of every tile compute; true when the spec kills
   the rank here (the tile is not computed, no faces are sent). *)
let fails_now t ~rank =
  let n = t.tiles.(rank) in
  t.tiles.(rank) <- n + 1;
  n >= t.fail_after.(rank)

(* Recovery's replacement semantics: the spec's failure is fail-stop, so
   a respawned rank never dies again. The tile counter keeps advancing
   (draw alignment is untouched); only the death sentence is lifted. *)
let revive t ~rank = t.fail_after.(rank) <- max_int

(* The deterministic wave-indexed scenarios. The current global wave of a
   rank is its tile counter minus one: [fails_now] advances the counter at
   the start of every tile compute, so these are defined after [fails_now]
   (and injected alongside [noise_extra] / [straggler_delay]) in the same
   tile step. Draw-free, so they leave stream alignment untouched. *)
let current_wave t ~rank = t.tiles.(rank) - 1

let pulse_extra t ~rank =
  match t.pulses.(rank) with
  | [] -> 0.0
  | ps ->
      let w = current_wave t ~rank in
      List.fold_left
        (fun acc (wave, delay) -> if wave = w then acc +. delay else acc)
        0.0 ps

let periodic_extra t ~rank =
  match t.spec.periodic with
  | None -> 0.0
  | Some { period; amplitude } ->
      if amplitude = 0.0 then 0.0
      else begin
        let w = current_wave t ~rank in
        if w >= 0 && w mod period = period - 1 then amplitude else 0.0
      end

(* Extra stall before one allreduce operation on [rank]; one draw per
   allreduce substrate call (not per fan-in round) when the spec has a
   collective-noise clause. *)
let coll_extra t ~rank =
  let a = t.spec.coll_noise in
  if a = 0.0 then 0.0 else Prng.uniform t.colls.(rank) a

let tiles_started t ~rank = t.tiles.(rank)
let fails t ~rank = t.fail_after.(rank) < max_int
let is_straggler t ~rank = t.straggle.(rank) > 0.0
