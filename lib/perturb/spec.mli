(** Perturbation specifications: seeded noise, link contention, stragglers
    and rank failures, as one deterministic description that all three
    substrates (simulator, real shared-memory runtime, dataflow reference)
    interpret identically. See the implementation header for the textual
    clause syntax ([seed=42 noise=uniform:0.15 link=0.02:5 straggler=3:250
    fail=5:40 pulse=3:40:500 periodic=16:120 collnoise=80]).

    All perturbations are one-sided — they only ever add time — so model
    and simulated runtimes are monotone in every amplitude. *)

type noise =
  | No_noise
  | Uniform of float
      (** per-tile extra compute fraction, uniform in [0, amplitude) *)
  | Exponential of float  (** per-tile extra compute fraction, this mean *)

type link = {
  prob : float;  (** probability each message is delayed *)
  delay : float;  (** the injected delay, us *)
}

type straggler = {
  rank : int;
  delay : float;  (** extra us this rank loses on every tile *)
}

type failure = {
  rank : int;
  after_tiles : int;  (** the rank dies before computing tile [after_tiles] *)
}

type pulse = {
  rank : int;
  wave : int;  (** global wave index, see [Wrun.Program.wave_of] *)
  delay : float;  (** the one-shot injected stall, us *)
}
(** A single injected delay — the idle-wave source scenario of
    Afzal/Hager/Wellein. *)

type periodic = {
  period : int;  (** every [period]-th wave, on every rank *)
  amplitude : float;  (** the injected stall, us *)
}

type t = {
  seed : int;
  noise : noise;
  link : link option;
  stragglers : straggler list;
  failures : failure list;
  pulses : pulse list;
  periodic : periodic option;
  coll_noise : float;
      (** extra us per allreduce call per rank, uniform in [0, coll_noise) *)
}

val zero : t
(** No perturbation at all; running any substrate under [zero] must be
    bitwise identical to not perturbing it. *)

val is_zero : t -> bool

val v :
  ?seed:int ->
  ?noise:noise ->
  ?link:link ->
  ?stragglers:straggler list ->
  ?failures:failure list ->
  ?pulses:pulse list ->
  ?periodic:periodic ->
  ?coll_noise:float ->
  unit ->
  t
(** Validating constructor; raises [Invalid_argument] on negative
    amplitudes, delays, ranks or waves, a link probability outside [0, 1],
    or a periodic period < 1. *)

val mean_noise_frac : t -> float
(** Expected extra compute fraction per tile, used by the analytic
    estimate. *)

val periodic_mean_per_wave : t -> float
(** Expected extra us per wave per rank from the periodic clause
    (amplitude / period); 0 when absent. Pulses are localized events and
    do not contribute. *)

val max_rank : t -> int
(** Highest rank named by a straggler, failure or pulse clause; [-1] if
    none. *)

type parse_error = {
  clause : string;  (** the offending clause, verbatim *)
  position : int;  (** byte offset of the clause in the input *)
  reason : string;  (** what is wrong with it *)
}

val pp_parse_error : parse_error Fmt.t

val of_string_loc : string -> (t, parse_error) result
(** As {!of_string}, but a failure carries the offending clause, its
    position in the input and the reason, for callers that want to point
    at the user's text. *)

val of_string : string -> (t, [ `Msg of string ]) result
(** Errors render {!parse_error} via {!pp_parse_error}. *)

val to_string : t -> string
val pp : t Fmt.t
