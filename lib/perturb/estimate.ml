(* The analytic side of the perturbation layer: a noise-adjusted (r5)-style
   bound on the perturbed iteration time.

   The plug-and-play model's critical path is a chain of tile computes and
   boundary messages; a perturbed machine stretches exactly those links.
   Because a pipelined wavefront is tightly coupled, a delay hitting a
   rank on the critical path propagates downstream as an "idle wave"
   without decaying (Afzal, Hager & Wellein, arXiv:2103.03175) — so the
   estimate charges delays on the path at full weight rather than
   averaging them over ranks:

   - noise: every tile compute on the path is inflated by the expected
     extra fraction, i.e. the model's computation component scales by
     (1 + E[frac]);
   - link contention: each of the ~2 messages per path tile pays the
     expected injection delay, prob * delay;
   - stragglers: a permanent straggler inflates every tile it contributes
     to the path; the bound assumes the worst case (the whole stack of one
     iteration routes through it) and, since concurrent idle waves merge
     rather than add (ibid.), charges the slowest straggler only.

   Every term is non-decreasing in its amplitude, which the monotonicity
   regression tests rely on. Failures have no finite predicted runtime and
   are ignored here; the executable substrates report them as degraded
   outcomes instead. *)

open Wavefront_core

type breakdown = {
  base : float;  (** the unperturbed (r5) iteration time, us *)
  noise : float;  (** expected compute inflation on the critical path *)
  link : float;  (** expected injection delay on the critical path *)
  straggler : float;  (** idle-wave bound for the slowest straggler *)
  scenario : float;  (** pulse/periodic/collective scenario charges *)
  total : float;
}

let iteration (app : App_params.t) (cfg : Plugplay.config) (spec : Spec.t) =
  let r = Plugplay.iteration app cfg in
  let c = Plugplay.components app cfg in
  let noise = c.computation *. Spec.mean_noise_frac spec in
  (* Tiles on the critical path, recovered from the model's own
     computation component; each contributes one receive and one send. *)
  let per_tile = r.w +. r.w_pre in
  let path_tiles = if per_tile > 0.0 then c.computation /. per_tile else 0.0 in
  let link =
    match spec.link with
    | None -> 0.0
    | Some { prob; delay } -> 2.0 *. path_tiles *. prob *. delay
  in
  let straggler =
    let tiles_per_iter =
      Wgrid.Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile
      * Sweeps.Schedule.nsweeps app.schedule
    in
    List.fold_left
      (fun worst (s : Spec.straggler) ->
        Float.max worst (s.delay *. float_of_int tiles_per_iter))
      0.0 spec.stragglers
  in
  let base = r.t_iteration in
  (* The wave-indexed scenarios: a pulse on the path is a non-decaying
     idle wave, charged once at full weight; periodic noise charges its
     per-wave mean on every path tile; collective noise pays its expected
     stall per allreduce operation. *)
  let scenario =
    let pulses =
      List.fold_left (fun acc (p : Spec.pulse) -> acc +. p.delay) 0.0
        spec.pulses
    in
    let periodic = path_tiles *. Spec.periodic_mean_per_wave spec in
    let coll =
      match app.nonwavefront with
      | App_params.Allreduce { count; _ } ->
          float_of_int count *. spec.coll_noise /. 2.0
      | _ -> 0.0
    in
    pulses +. periodic +. coll
  in
  {
    base;
    noise;
    link;
    straggler;
    scenario;
    total = base +. noise +. link +. straggler +. scenario;
  }

let time_per_iteration app cfg spec = (iteration app cfg spec).total

let pp_breakdown ppf b =
  Fmt.pf ppf
    "@[<v>base (r5):        %12.2f us@,noise inflation:  %12.2f us@,\
     link contention:  %12.2f us@,straggler bound:  %12.2f us@,\
     scenario stalls:  %12.2f us@,\
     perturbed total:  %12.2f us (%+.2f%%)@]"
    b.base b.noise b.link b.straggler b.scenario b.total
    (100.0 *. (b.total -. b.base) /. b.base)
