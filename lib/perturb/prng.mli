(** SplitMix64 pseudo-random streams for the perturbation layer.

    Deterministic by construction — the sequence depends only on
    [(seed, stream)], never on the compiler's [Random] implementation — so
    the same perturbation spec draws the same delays in the simulator, the
    real runtime and the dataflow backend, on any OCaml version. *)

type t

val create : seed:int -> stream:int -> t
(** An independent stream; perturbation models use one per rank. *)

val next : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> float -> float
(** [uniform t hi] is uniform in [0, hi). *)

val exponential : t -> float -> float
(** Exponential with the given mean (inversion method). *)

val bernoulli : t -> float -> bool
