(* The recovery-aware runtime model: checkpoint/rollback as plug-in
   parameters, layered on the perturbed (r5)-style bound the same way
   noise and stragglers are.

   A policy is the pair the classic checkpointing literature studies —
   the interval [K] (waves between checkpoints) and the per-checkpoint
   cost [C] — plus a restart cost [R] for respawning a rank from its
   snapshot. The run-time overhead decomposes into three closed-form
   terms:

   - checkpointing:  [n_ckpt(K) * C]   with [n_ckpt(K) = (waves-1)/K],
   - restart:        [R] per failure,
   - rework:         the waves lost between the failing rank's last
                     checkpoint and its death, re-executed at [T_wave]
                     each — [fail_wave mod K] when the failure wave is
                     known, [K/2] in expectation when only a failure
                     count is.

   Balancing expected rework [f * K * T_wave / 2] against checkpoint
   overhead [waves/K * C] gives the Daly-style optimum
   [K* = sqrt (2 * waves * C / (f * T_wave))].

   All three substrates and the model must agree on this arithmetic:
   [due]/[checkpoints]/[lost_waves] here are the single source of truth
   that [Wrun.Checkpoint] and the simulators' event-time charging
   delegate to. *)

type policy = {
  interval : int;  (* K: waves between checkpoints; 0 disables recovery *)
  ckpt_cost : float;  (* C: microseconds per checkpoint *)
  restart_cost : float;  (* R: microseconds to respawn from a snapshot *)
}

let v ?(ckpt_cost = 0.0) ?(restart_cost = 0.0) interval =
  if interval < 0 then invalid_arg "Recover.v: interval must be >= 0";
  if ckpt_cost < 0.0 || restart_cost < 0.0 then
    invalid_arg "Recover.v: costs must be >= 0";
  { interval; ckpt_cost; restart_cost }

let disabled = { interval = 0; ckpt_cost = 0.0; restart_cost = 0.0 }
let enabled p = p.interval > 0

let pp ppf p =
  if not (enabled p) then Fmt.string ppf "disabled"
  else
    Fmt.pf ppf "K=%d C=%.4gus R=%.4gus" p.interval p.ckpt_cost p.restart_cost

(* Wave [w] is a checkpoint wave iff [K > 0 && w > 0 && w mod K = 0]:
   the snapshot is taken at the wave's tile_begin, before its compute,
   so a failure *at* a checkpoint wave loses nothing. *)
let due ~interval ~wave = interval > 0 && wave > 0 && wave mod interval = 0

(* Checkpoint waves among [0 .. waves-1]: wave 0 is never due, so the
   count is [(waves - 1) / K]. *)
let checkpoints ~interval ~waves =
  if interval <= 0 || waves <= 0 then 0 else (waves - 1) / interval

(* Waves re-executed when a rank dies at [fail_wave]: the distance back
   to its last checkpoint. With recovery disabled everything from wave 0
   is lost (the degenerate "restart the run" reading). *)
let lost_waves p ~fail_wave =
  if fail_wave <= 0 then 0
  else if p.interval <= 0 then fail_wave
  else fail_wave mod p.interval

type term = {
  checkpoint : float;  (* total checkpoint overhead over the run *)
  restart : float;  (* total respawn cost *)
  rework : float;  (* lost waves re-executed *)
  total : float;
}

let zero_term = { checkpoint = 0.0; restart = 0.0; rework = 0.0; total = 0.0 }

let make_term ~checkpoint ~restart ~rework =
  { checkpoint; restart; rework; total = checkpoint +. restart +. rework }

(* The overhead of a concrete failure schedule: [fail_waves] holds the
   global wave index at which each failure strikes (one entry per
   failure; the wavefront's fail-stop-with-replacement reading). This is
   what the simulators reproduce wave-for-wave, so the recover report
   compares against it rather than the expectation. *)
let deterministic_term p ~waves ~wave_cost ~fail_waves =
  if not (enabled p) then zero_term
  else
    let checkpoint =
      float_of_int (checkpoints ~interval:p.interval ~waves) *. p.ckpt_cost
    in
    let restart =
      float_of_int (List.length fail_waves) *. p.restart_cost
    in
    let rework =
      List.fold_left
        (fun acc w ->
          acc +. (float_of_int (lost_waves p ~fail_wave:w) *. wave_cost))
        0.0 fail_waves
    in
    make_term ~checkpoint ~restart ~rework

(* The expectation when only a failure count is known: each failure
   lands uniformly within its interval, losing K/2 waves on average. *)
let expected_term p ~waves ~wave_cost ~failures =
  if not (enabled p) then zero_term
  else
    let f = float_of_int failures in
    let checkpoint =
      float_of_int (checkpoints ~interval:p.interval ~waves) *. p.ckpt_cost
    in
    let restart = f *. p.restart_cost in
    let rework =
      f *. float_of_int p.interval /. 2.0 *. wave_cost
    in
    make_term ~checkpoint ~restart ~rework

(* Daly's first-order optimum, in waves: minimise
   [waves/K * C + f * K * T_wave / 2] over K, giving
   [K* = sqrt (2 * waves * C / (f * T_wave))], clamped to [1, waves].
   Degenerate corners keep the right monotonic reading: free
   checkpoints -> every wave; nothing failing (or free waves) ->
   checkpoint as rarely as possible. *)
let optimal_interval ~waves ~wave_cost ~failures ~ckpt_cost =
  if waves <= 1 then 1
  else if failures <= 0 || wave_cost <= 0.0 then waves
  else if ckpt_cost <= 0.0 then 1
  else
    let k =
      sqrt
        (2.0 *. float_of_int waves *. ckpt_cost
        /. (float_of_int failures *. wave_cost))
    in
    let k = int_of_float (Float.round k) in
    max 1 (min waves k)

let pp_term ppf t =
  Fmt.pf ppf "checkpoint %.4f + restart %.4f + rework %.4f = %.4f us"
    t.checkpoint t.restart t.rework t.total
