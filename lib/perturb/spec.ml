(* A perturbation specification: everything that may push an execution off
   the ideal path the plug-and-play model assumes, as one seeded, fully
   deterministic description shared by all three substrates.

   The textual form is a whitespace-separated list of clauses, usable on a
   `wavefront perturb --perturb "..."` command line or as the value of a
   spec file's `perturb = ...` stanza:

     seed=42                  # stream seed (default 0)
     noise=uniform:0.15       # per-tile extra compute, frac of the tile's
                              # work drawn uniform in [0, 0.15)
     noise=exp:0.05           # or exponential with mean fraction 0.05
     link=0.02:5.0            # each message delayed 5 us with prob 0.02
     straggler=3:250          # rank 3 loses 250 us on every tile (repeatable)
     fail=5:40                # rank 5 dies before its 41st tile (repeatable)
     pulse=3:40:500           # rank 3 stalls 500 us in wave 40 (repeatable):
                              # the idle-wave source scenario
     periodic=16:120          # every rank stalls 120 us every 16th wave
     collnoise=80             # extra us per allreduce, uniform in [0, 80)

   Noise and delays are one-sided: OS noise, contention and stragglers only
   ever steal time, never refund it, which is what makes predicted and
   simulated runtimes monotone in every amplitude (the regression tests pin
   this down). *)

type noise =
  | No_noise
  | Uniform of float  (* extra fraction drawn uniform in [0, amplitude) *)
  | Exponential of float  (* extra fraction, exponential with this mean *)

type link = { prob : float; delay : float }
type straggler = { rank : int; delay : float }
type failure = { rank : int; after_tiles : int }
type pulse = { rank : int; wave : int; delay : float }
type periodic = { period : int; amplitude : float }

type t = {
  seed : int;
  noise : noise;
  link : link option;
  stragglers : straggler list;
  failures : failure list;
  pulses : pulse list;
  periodic : periodic option;
  coll_noise : float;
}

let zero =
  {
    seed = 0;
    noise = No_noise;
    link = None;
    stragglers = [];
    failures = [];
    pulses = [];
    periodic = None;
    coll_noise = 0.0;
  }

let is_zero t =
  (match t.noise with
  | No_noise -> true
  | Uniform a | Exponential a -> a = 0.0)
  && (match t.link with
     | None -> true
     | Some { prob; delay } -> prob = 0.0 || delay = 0.0)
  && List.for_all (fun (s : straggler) -> s.delay = 0.0) t.stragglers
  && t.failures = []
  && List.for_all (fun (p : pulse) -> p.delay = 0.0) t.pulses
  && (match t.periodic with
     | None -> true
     | Some { amplitude; _ } -> amplitude = 0.0)
  && t.coll_noise = 0.0

let invalid fmt = Fmt.kstr invalid_arg fmt

let v ?(seed = 0) ?(noise = No_noise) ?link ?(stragglers = [])
    ?(failures = []) ?(pulses = []) ?periodic ?(coll_noise = 0.0) () =
  (match noise with
  | No_noise -> ()
  | Uniform a | Exponential a ->
      if a < 0.0 || not (Float.is_finite a) then
        invalid "Perturb.Spec.v: noise amplitude %g must be finite and >= 0" a);
  (match link with
  | None -> ()
  | Some { prob; delay } ->
      if prob < 0.0 || prob > 1.0 then
        invalid "Perturb.Spec.v: link probability %g outside [0, 1]" prob;
      if delay < 0.0 then invalid "Perturb.Spec.v: negative link delay");
  List.iter
    (fun ({ rank; delay } : straggler) ->
      if rank < 0 then invalid "Perturb.Spec.v: negative straggler rank";
      if delay < 0.0 then invalid "Perturb.Spec.v: negative straggler delay")
    stragglers;
  List.iter
    (fun { rank; after_tiles } ->
      if rank < 0 then invalid "Perturb.Spec.v: negative failure rank";
      if after_tiles < 0 then
        invalid "Perturb.Spec.v: negative failure tile count")
    failures;
  List.iter
    (fun { rank; wave; delay } ->
      if rank < 0 then invalid "Perturb.Spec.v: negative pulse rank";
      if wave < 0 then invalid "Perturb.Spec.v: negative pulse wave";
      if delay < 0.0 || not (Float.is_finite delay) then
        invalid "Perturb.Spec.v: pulse delay %g must be finite and >= 0" delay)
    pulses;
  (match periodic with
  | None -> ()
  | Some { period; amplitude } ->
      if period < 1 then
        invalid "Perturb.Spec.v: periodic period %d must be >= 1" period;
      if amplitude < 0.0 || not (Float.is_finite amplitude) then
        invalid "Perturb.Spec.v: periodic amplitude %g must be finite and >= 0"
          amplitude);
  if coll_noise < 0.0 || not (Float.is_finite coll_noise) then
    invalid "Perturb.Spec.v: collective noise %g must be finite and >= 0"
      coll_noise;
  { seed; noise; link; stragglers; failures; pulses; periodic; coll_noise }

(* The expected extra compute fraction per tile, the analytic side's view
   of the noise distribution. *)
let mean_noise_frac t =
  match t.noise with
  | No_noise -> 0.0
  | Uniform a -> a /. 2.0
  | Exponential m -> m

let max_rank t =
  List.fold_left
    (fun acc r -> max acc r)
    (-1)
    (List.map (fun (s : straggler) -> s.rank) t.stragglers
    @ List.map (fun (f : failure) -> f.rank) t.failures
    @ List.map (fun (p : pulse) -> p.rank) t.pulses)

(* Expected extra us per wave, per rank, from the deterministic scenario
   clauses alone (pulses are localized and excluded): the idle-wave model's
   background-noise level when the compute-noise clause is absent. *)
let periodic_mean_per_wave t =
  match t.periodic with
  | None -> 0.0
  | Some { period; amplitude } -> amplitude /. float_of_int period

(* --- Parsing --- *)

type parse_error = { clause : string; position : int; reason : string }

let pp_parse_error ppf e =
  Fmt.pf ppf "perturb: bad clause %S at offset %d: %s" e.clause e.position
    e.reason

(* Clause-local parsing reports only a reason; of_string attaches the
   clause text and its byte offset in the input. *)
let err fmt = Fmt.kstr (fun m -> Error m) fmt

let parse_clause spec clause =
  let float_of s = float_of_string_opt s in
  let int_of s = int_of_string_opt s in
  let two v of_a of_b ~shape k =
    match String.split_on_char ':' v with
    | [ a; b ] -> (
        match (of_a a, of_b b) with
        | Some a, Some b -> k a b
        | _ -> err "expected %s" shape)
    | _ -> err "expected %s" shape
  in
  let three v of_a of_b of_c ~shape k =
    match String.split_on_char ':' v with
    | [ a; b; c ] -> (
        match (of_a a, of_b b, of_c c) with
        | Some a, Some b, Some c -> k a b c
        | _ -> err "expected %s" shape)
    | _ -> err "expected %s" shape
  in
  match String.index_opt clause '=' with
  | None -> err "expected KEY=VALUE"
  | Some i -> (
      let key = String.sub clause 0 i in
      let v = String.sub clause (i + 1) (String.length clause - i - 1) in
      match key with
      | "seed" -> (
          match int_of v with
          | Some seed -> Ok { spec with seed }
          | None -> err "seed wants an integer, got %S" v)
      | "noise" -> (
          match String.split_on_char ':' v with
          | [ "uniform"; a ] | [ a ] -> (
              match float_of a with
              | Some a when a >= 0.0 -> Ok { spec with noise = Uniform a }
              | _ -> err "noise amplitude must be a float >= 0, got %S" a)
          | [ "exp"; m ] -> (
              match float_of m with
              | Some m when m >= 0.0 -> Ok { spec with noise = Exponential m }
              | _ -> err "noise mean must be a float >= 0, got %S" m)
          | _ -> err "expected noise=uniform:FRAC, noise=exp:FRAC or \
                      noise=FRAC")
      | "link" ->
          two v float_of float_of ~shape:"link=PROB:DELAY_US"
            (fun prob delay ->
              if prob < 0.0 || prob > 1.0 then
                err "link probability must be in [0, 1], got %g" prob
              else if delay < 0.0 then
                err "link delay must be >= 0, got %g" delay
              else Ok { spec with link = Some { prob; delay } })
      | "straggler" ->
          two v int_of float_of ~shape:"straggler=RANK:DELAY_US"
            (fun rank delay ->
              if rank < 0 then err "straggler rank must be >= 0, got %d" rank
              else if delay < 0.0 then
                err "straggler delay must be >= 0, got %g" delay
              else
                Ok
                  {
                    spec with
                    stragglers = spec.stragglers @ [ { rank; delay } ];
                  })
      | "fail" ->
          two v int_of int_of ~shape:"fail=RANK:AFTER_TILES"
            (fun rank after_tiles ->
              if rank < 0 then err "fail rank must be >= 0, got %d" rank
              else if after_tiles < 0 then
                err "fail tile count must be >= 0, got %d" after_tiles
              else
                Ok
                  {
                    spec with
                    failures = spec.failures @ [ { rank; after_tiles } ];
                  })
      | "pulse" ->
          three v int_of int_of float_of ~shape:"pulse=RANK:WAVE:DELAY_US"
            (fun rank wave delay ->
              if rank < 0 then err "pulse rank must be >= 0, got %d" rank
              else if wave < 0 then err "pulse wave must be >= 0, got %d" wave
              else if delay < 0.0 then
                err "pulse delay must be >= 0, got %g" delay
              else
                Ok { spec with pulses = spec.pulses @ [ { rank; wave; delay } ] })
      | "periodic" ->
          two v int_of float_of ~shape:"periodic=PERIOD_WAVES:AMPLITUDE_US"
            (fun period amplitude ->
              if period < 1 then
                err "periodic period must be >= 1, got %d" period
              else if amplitude < 0.0 then
                err "periodic amplitude must be >= 0, got %g" amplitude
              else Ok { spec with periodic = Some { period; amplitude } })
      | "collnoise" -> (
          match float_of v with
          | Some a when a >= 0.0 -> Ok { spec with coll_noise = a }
          | _ -> err "collnoise amplitude must be a float >= 0, got %S" v)
      | _ ->
          err
            "unknown clause %S (known: seed, noise, link, straggler, fail, \
             pulse, periodic, collnoise)"
            key)

(* Clauses with the byte offset each starts at, so errors can point into
   the user's input. Separators: space, tab, semicolon. *)
let tokenize text =
  let n = String.length text in
  let sep c = c = ' ' || c = '\t' || c = ';' in
  let rec go i acc =
    if i >= n then List.rev acc
    else if sep text.[i] then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && not (sep text.[!j]) do
        incr j
      done;
      go !j ((String.sub text i (!j - i), i) :: acc)
    end
  in
  go 0 []

let of_string_loc text =
  List.fold_left
    (fun acc (clause, position) ->
      Result.bind acc (fun spec ->
          match parse_clause spec clause with
          | Ok spec -> Ok spec
          | Error reason -> Error { clause; position; reason }))
    (Ok zero) (tokenize text)

let of_string text =
  Result.map_error
    (fun e -> `Msg (Fmt.str "%a" pp_parse_error e))
    (of_string_loc text)

let pp_noise ppf = function
  | No_noise -> ()
  | Uniform a -> Fmt.pf ppf " noise=uniform:%g" a
  | Exponential m -> Fmt.pf ppf " noise=exp:%g" m

let pp ppf t =
  Fmt.pf ppf "seed=%d%a" t.seed pp_noise t.noise;
  (match t.link with
  | None -> ()
  | Some { prob; delay } -> Fmt.pf ppf " link=%g:%g" prob delay);
  List.iter
    (fun ({ rank; delay } : straggler) ->
      Fmt.pf ppf " straggler=%d:%g" rank delay)
    t.stragglers;
  List.iter
    (fun { rank; after_tiles } -> Fmt.pf ppf " fail=%d:%d" rank after_tiles)
    t.failures;
  List.iter
    (fun { rank; wave; delay } -> Fmt.pf ppf " pulse=%d:%d:%g" rank wave delay)
    t.pulses;
  (match t.periodic with
  | None -> ()
  | Some { period; amplitude } ->
      Fmt.pf ppf " periodic=%d:%g" period amplitude);
  if t.coll_noise > 0.0 then Fmt.pf ppf " collnoise=%g" t.coll_noise

let to_string t = Fmt.str "%a" pp t
