(* A perturbation specification: everything that may push an execution off
   the ideal path the plug-and-play model assumes, as one seeded, fully
   deterministic description shared by all three substrates.

   The textual form is a whitespace-separated list of clauses, usable on a
   `wavefront perturb --perturb "..."` command line or as the value of a
   spec file's `perturb = ...` stanza:

     seed=42                  # stream seed (default 0)
     noise=uniform:0.15       # per-tile extra compute, frac of the tile's
                              # work drawn uniform in [0, 0.15)
     noise=exp:0.05           # or exponential with mean fraction 0.05
     link=0.02:5.0            # each message delayed 5 us with prob 0.02
     straggler=3:250          # rank 3 loses 250 us on every tile (repeatable)
     fail=5:40                # rank 5 dies before its 41st tile (repeatable)

   Noise and delays are one-sided: OS noise, contention and stragglers only
   ever steal time, never refund it, which is what makes predicted and
   simulated runtimes monotone in every amplitude (the regression tests pin
   this down). *)

type noise =
  | No_noise
  | Uniform of float  (* extra fraction drawn uniform in [0, amplitude) *)
  | Exponential of float  (* extra fraction, exponential with this mean *)

type link = { prob : float; delay : float }
type straggler = { rank : int; delay : float }
type failure = { rank : int; after_tiles : int }

type t = {
  seed : int;
  noise : noise;
  link : link option;
  stragglers : straggler list;
  failures : failure list;
}

let zero =
  { seed = 0; noise = No_noise; link = None; stragglers = []; failures = [] }

let is_zero t =
  (match t.noise with
  | No_noise -> true
  | Uniform a | Exponential a -> a = 0.0)
  && (match t.link with
     | None -> true
     | Some { prob; delay } -> prob = 0.0 || delay = 0.0)
  && List.for_all (fun s -> s.delay = 0.0) t.stragglers
  && t.failures = []

let invalid fmt = Fmt.kstr invalid_arg fmt

let v ?(seed = 0) ?(noise = No_noise) ?link ?(stragglers = [])
    ?(failures = []) () =
  (match noise with
  | No_noise -> ()
  | Uniform a | Exponential a ->
      if a < 0.0 || not (Float.is_finite a) then
        invalid "Perturb.Spec.v: noise amplitude %g must be finite and >= 0" a);
  (match link with
  | None -> ()
  | Some { prob; delay } ->
      if prob < 0.0 || prob > 1.0 then
        invalid "Perturb.Spec.v: link probability %g outside [0, 1]" prob;
      if delay < 0.0 then invalid "Perturb.Spec.v: negative link delay");
  List.iter
    (fun { rank; delay } ->
      if rank < 0 then invalid "Perturb.Spec.v: negative straggler rank";
      if delay < 0.0 then invalid "Perturb.Spec.v: negative straggler delay")
    stragglers;
  List.iter
    (fun { rank; after_tiles } ->
      if rank < 0 then invalid "Perturb.Spec.v: negative failure rank";
      if after_tiles < 0 then
        invalid "Perturb.Spec.v: negative failure tile count")
    failures;
  { seed; noise; link; stragglers; failures }

(* The expected extra compute fraction per tile, the analytic side's view
   of the noise distribution. *)
let mean_noise_frac t =
  match t.noise with
  | No_noise -> 0.0
  | Uniform a -> a /. 2.0
  | Exponential m -> m

let max_rank t =
  List.fold_left
    (fun acc r -> max acc r)
    (-1)
    (List.map (fun (s : straggler) -> s.rank) t.stragglers
    @ List.map (fun (f : failure) -> f.rank) t.failures)

(* --- Parsing --- *)

let err fmt = Fmt.kstr (fun m -> Error (`Msg m)) fmt

let parse_clause spec clause =
  let fail () = err "perturb: bad clause %S" clause in
  let float_of s = float_of_string_opt s in
  let int_of s = int_of_string_opt s in
  let two v of_a of_b k =
    match String.split_on_char ':' v with
    | [ a; b ] -> (
        match (of_a a, of_b b) with
        | Some a, Some b -> k a b
        | _ -> fail ())
    | _ -> fail ()
  in
  match String.index_opt clause '=' with
  | None -> fail ()
  | Some i -> (
      let key = String.sub clause 0 i in
      let v = String.sub clause (i + 1) (String.length clause - i - 1) in
      match key with
      | "seed" -> (
          match int_of v with
          | Some seed -> Ok { spec with seed }
          | None -> fail ())
      | "noise" -> (
          match String.split_on_char ':' v with
          | [ "uniform"; a ] | [ a ] -> (
              match float_of a with
              | Some a when a >= 0.0 -> Ok { spec with noise = Uniform a }
              | _ -> fail ())
          | [ "exp"; m ] -> (
              match float_of m with
              | Some m when m >= 0.0 -> Ok { spec with noise = Exponential m }
              | _ -> fail ())
          | _ -> fail ())
      | "link" ->
          two v float_of float_of (fun prob delay ->
              if prob < 0.0 || prob > 1.0 || delay < 0.0 then fail ()
              else Ok { spec with link = Some { prob; delay } })
      | "straggler" ->
          two v int_of float_of (fun rank delay ->
              if rank < 0 || delay < 0.0 then fail ()
              else
                Ok
                  {
                    spec with
                    stragglers = spec.stragglers @ [ { rank; delay } ];
                  })
      | "fail" ->
          two v int_of int_of (fun rank after_tiles ->
              if rank < 0 || after_tiles < 0 then fail ()
              else
                Ok
                  {
                    spec with
                    failures = spec.failures @ [ { rank; after_tiles } ];
                  })
      | _ ->
          err
            "perturb: unknown clause %S (known: seed, noise, link, \
             straggler, fail)"
            key)

let of_string text =
  let clauses =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\t')
    |> List.concat_map (String.split_on_char ';')
    |> List.filter (( <> ) "")
  in
  List.fold_left
    (fun acc clause -> Result.bind acc (fun spec -> parse_clause spec clause))
    (Ok zero) clauses

let pp_noise ppf = function
  | No_noise -> ()
  | Uniform a -> Fmt.pf ppf " noise=uniform:%g" a
  | Exponential m -> Fmt.pf ppf " noise=exp:%g" m

let pp ppf t =
  Fmt.pf ppf "seed=%d%a" t.seed pp_noise t.noise;
  (match t.link with
  | None -> ()
  | Some { prob; delay } -> Fmt.pf ppf " link=%g:%g" prob delay);
  List.iter (fun { rank; delay } -> Fmt.pf ppf " straggler=%d:%g" rank delay)
    t.stragglers;
  List.iter
    (fun { rank; after_tiles } -> Fmt.pf ppf " fail=%d:%d" rank after_tiles)
    t.failures

let to_string t = Fmt.str "%a" pp t
