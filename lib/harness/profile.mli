(** The profiling workflow behind [wavefront profile]: the closed-form
    model, the dataflow evaluator, a fully instrumented simulator run and
    (optionally) a real shared-memory run of one configuration, reconciled
    into breakdown / message-mix / critical-path tables and a Chrome
    trace. *)

open Wavefront_core

type t = {
  metrics : Obs.Metrics.t;
      (** everything the layers recorded: [model.*] terms,
          [pipeline.t_iteration], [sim.*] counters and distributions,
          [real.wall_time] *)
  breakdown : Table.t;  (** model vs simulated vs real, per Table 5 term *)
  protocols : Table.t;  (** simulated message mix by protocol *)
  path : Table.t;  (** the simulated run's critical path, by span kind *)
  processes : Obs.Chrome_trace.process list;
      (** pid 0 = simulated timeline; pid 1 = real timeline when present *)
  sim : Xtsim.Wavefront_sim.outcome;
  sim_dropped : int;  (** spans lost to the bounded tracer, 0 when none *)
  real_dropped : int;
  timeline : Obs.Timeline.t;
      (** per-rank x per-wave decomposition of the simulated run *)
  divergence : Divergence.t;
      (** the model's error attributed wave-by-wave against the analytic
          term schedule *)
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report (GC, CPU, RSS) per
          stage: model / simulate / real / analyze *)
}

val run : ?real:bool -> ?capacity:int -> Plugplay.config -> App_params.t -> t
(** Profile one configuration. [real] (default off) also executes the
    transport kernel on one OCaml domain per rank of [cfg]'s processor
    grid — use small core counts; the real kernel computes with its own
    Wg, so its absolute time is only model-comparable when the model was
    given a measured Wg. [capacity] bounds each tracer
    ({!Obs.Tracer.default_capacity} spans by default); drops are
    reported, not silent. *)

val trace_json : t -> string
(** The Chrome [trace_event] JSON of {!field-processes}, loadable in
    Perfetto / [chrome://tracing]. *)

val pp : Format.formatter -> t -> unit
(** The tables, the wait heatmap and the divergence attribution, followed
    by the metrics summary. *)
