(* The workflow behind `wavefront timeline`: run one iteration of the same
   configuration on the event-level simulator (spans stamped in simulated
   time) and on the timed dataflow backend (the analytic term schedule),
   reconstruct both as per-rank x per-wave timelines, optionally execute
   the real shared-memory kernel and reconstruct its timeline too, and
   attribute the closed form's error wave by wave with Divergence. *)

open Wavefront_core
open Wgrid

type t = {
  observed : Obs.Timeline.t;  (** event-level simulator *)
  model : Obs.Timeline.t;  (** timed dataflow: the analytic term schedule *)
  real : Obs.Timeline.t option;  (** shared-memory Domains run *)
  divergence : Divergence.t;
  sim : Xtsim.Wavefront_sim.outcome;
  t_iteration : float;
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report, per phase *)
}

let waves_of (app : App_params.t) =
  Sweeps.Schedule.nsweeps app.schedule
  * Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile

let run ?(real = false) ?(model_bus = true) ?(engine = Engine.Event)
    ?(capacity = Obs.Tracer.default_capacity) (cfg : Plugplay.config)
    (app : App_params.t) =
  let waves = waves_of app in
  (* Host-side runtime cost per stage (no tracer attach: runtime spans
     are wall-clock nondeterministic, the timelines are simulated time). *)
  let phases = Obs.Runtime.phases () in
  (* Observed side: the selected engine with wave-tagged spans. *)
  let obs = Obs.Tracer.create ~capacity () in
  let sim =
    Obs.Runtime.phase phases "simulate" (fun () ->
        Engine.observed_run ~model_bus ~obs engine cfg app)
  in
  (* Model side: the same program on the timed dataflow backend, clocks
     advanced by the analytic per-operation costs. *)
  let costs = Wrun.Costs.loggp ~cmp:cfg.cmp cfg.platform cfg.pgrid app in
  let model_tr = Obs.Tracer.create ~capacity () in
  Obs.Runtime.phase phases "model" (fun () ->
      ignore (Wrun.Dataflow.run ~costs ~obs:model_tr cfg.pgrid app));
  (* Optional real run, one domain per rank; reconstruction happens in
     the analyze phase with the rest. *)
  let real_raw =
    if not real then None
    else
      Obs.Runtime.phase phases "real" (fun () ->
          let htile = max 1 (int_of_float app.htile) in
          let plan =
            Kernels.Sweep_exec.plan ~htile ~schedule:app.schedule
              ~nonwavefront:app.nonwavefront app.grid cfg.pgrid
          in
          let trs =
            Array.init (Proc_grid.cores cfg.pgrid) (fun _ ->
                Obs.Tracer.create ~capacity ())
          in
          ignore (Kernels.Sweep_exec.run ~obs:trs plan);
          let dropped =
            Array.fold_left (fun a tr -> a + Obs.Tracer.dropped tr) 0 trs
          in
          Some (trs, dropped))
  in
  let report =
    Obs.Runtime.phase phases "analyze" @@ fun () ->
    let observed =
      Obs.Timeline.of_spans ~dropped:(Obs.Tracer.dropped obs) ~waves
        (Obs.Tracer.spans obs)
    in
    let model =
      Obs.Timeline.of_spans ~dropped:(Obs.Tracer.dropped model_tr) ~waves
        (Obs.Tracer.spans model_tr)
    in
    let real_tl =
      Option.map
        (fun (trs, dropped) ->
          Obs.Timeline.of_spans ~dropped ~waves (Obs.Tracer.merge trs))
        real_raw
    in
    let t_iteration = Plugplay.time_per_iteration app cfg in
    let divergence =
      Divergence.analyze ~model ~observed ~t_iteration ~elapsed:sim.elapsed
    in
    {
      observed;
      model;
      real = real_tl;
      divergence;
      sim;
      t_iteration;
      runtime = [];
    }
  in
  { report with runtime = Obs.Runtime.report phases }

let pp ?(metric = Obs.Timeline.Wait) ppf t =
  let heat title tl =
    Format.fprintf ppf "%s@." title;
    Obs.Timeline.render ~metric ppf tl;
    Format.pp_print_newline ppf ()
  in
  heat "observed (event-level simulator)" t.observed;
  heat "model (analytic term schedule)" t.model;
  (match t.real with
  | Some tl -> heat "real (shared-memory domains)" tl
  | None -> ());
  Divergence.pp ppf t.divergence;
  Format.fprintf ppf "@.runtime:@.%a@." Obs.Runtime.pp_report t.runtime

(* One machine-readable document bundling the timelines and the
   attribution; the timelines embed their own schema ids. *)
let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"wavefront-timeline-report/v1\",";
  Buffer.add_string b
    (Printf.sprintf "\"t_iteration\":%.6f,\"elapsed\":%.6f,\"gap\":%.6f,"
       t.t_iteration t.sim.elapsed t.divergence.gap);
  Buffer.add_string b
    (Printf.sprintf "\"attributed\":%.6f,\"rank\":%d,"
       t.divergence.attributed t.divergence.rank);
  Buffer.add_string b "\"terms\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%.6f" name v))
    (("folding", t.divergence.folding)
    :: ("ramp", t.divergence.ramp)
    :: ("tail", t.divergence.tail)
    :: t.divergence.terms);
  Buffer.add_string b "},\"observed\":";
  Buffer.add_string b (Obs.Timeline.to_json ~label:"observed" t.observed);
  Buffer.add_string b ",\"model\":";
  Buffer.add_string b (Obs.Timeline.to_json ~label:"model" t.model);
  (match t.real with
  | Some tl ->
      Buffer.add_string b ",\"real\":";
      Buffer.add_string b (Obs.Timeline.to_json ~label:"real" tl)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let to_csv t =
  let section label tl =
    "# " ^ label ^ "\n" ^ Obs.Timeline.to_csv tl
  in
  String.concat ""
    ([ section "observed" t.observed; section "model" t.model ]
    @ match t.real with Some tl -> [ section "real" tl ] | None -> [])
