(* The workflow behind `wavefront perturb`: drive one perturbation spec
   through every layer that understands it — the noise-adjusted analytic
   estimate, an unperturbed and a perturbed simulator run, the dataflow
   validator under adversarial straggler ordering, and (optionally) the
   real shared-memory kernel — and reconcile them in one report.

   Beyond the model-vs-sim-vs-real comparison, the report answers where
   the injected delay went: the perturbed simulator run tags every
   injected interval as a perturb.* span, so the difference between the
   total injected and the elapsed-time growth is the share absorbed in
   pipeline slack rather than propagated to the critical path. *)

open Wavefront_core

type t = {
  estimate : Perturb.Estimate.breakdown;
  compare : Table.t;
  injection : Table.t;
  sim_base : Xtsim.Wavefront_sim.outcome;
  sim : Xtsim.Wavefront_sim.outcome;
  dataflow : Wrun.Dataflow.outcome;
  real : (Kernels.Sweep_exec.outcome * Kernels.Sweep_exec.resilient_outcome) option;
  timeline_base : Obs.Timeline.t;
  timeline : Obs.Timeline.t;
      (** perturbed run; compared against [timeline_base] the heatmaps show
          where injected delay was absorbed vs propagated *)
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report, per phase *)
}

(* Count and total duration of the spans with this name. *)
let span_total spans name =
  List.fold_left
    (fun (n, tot) (s : Obs.Span.t) ->
      if s.name = name then (n + 1, tot +. s.dur) else (n, tot))
    (0, 0.0) spans

let dash = "-"

let run ?(real = false) ?(model_bus = true) ?(engine = Engine.Event)
    ?(capacity = Obs.Tracer.default_capacity) (cfg : Plugplay.config)
    (app : App_params.t) (spec : Perturb.Spec.t) =
  (* Host-side runtime cost per stage (no tracer attach: runtime spans
     are wall-clock nondeterministic, the timelines are simulated time). *)
  let phases = Obs.Runtime.phases () in
  let estimate =
    Obs.Runtime.phase phases "estimate" (fun () ->
        Perturb.Estimate.iteration app cfg spec)
  in
  let obs_base = Obs.Tracer.create ~capacity () in
  let obs = Obs.Tracer.create ~capacity () in
  let sim_base, sim =
    Obs.Runtime.phase phases "simulate" (fun () ->
        let sim_base =
          Engine.observed_run ~model_bus ~obs:obs_base engine cfg app
        in
        let sim =
          Engine.observed_run ~model_bus ~perturb:spec ~obs engine cfg app
        in
        (sim_base, sim))
  in
  let spans = Obs.Tracer.spans obs in
  let waves =
    Sweeps.Schedule.nsweeps app.schedule
    * Wgrid.Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile
  in
  let timeline_of tr sp =
    Obs.Timeline.of_spans ~dropped:(Obs.Tracer.dropped tr) ~waves sp
  in
  let dataflow =
    Obs.Runtime.phase phases "dataflow" (fun () ->
        Wrun.Dataflow.run ~perturb:spec cfg.pgrid app)
  in
  let real_result =
    if not real then None
    else
      Obs.Runtime.phase phases "real" (fun () ->
          let htile = max 1 (int_of_float app.htile) in
          let base_plan =
            Kernels.Sweep_exec.plan ~htile ~schedule:app.schedule
              ~nonwavefront:app.nonwavefront app.grid cfg.pgrid
          in
          let base = Kernels.Sweep_exec.run base_plan in
          let perturbed =
            Kernels.Sweep_exec.run_resilient
              { base_plan with perturb = Some spec }
          in
          Some (base, perturbed))
  in
  (* The rest is analysis of the collected data; the record is patched
     with the runtime section once the phase has closed. *)
  let report =
    Obs.Runtime.phase phases "analyze" @@ fun () ->
  let timeline_base = timeline_of obs_base (Obs.Tracer.spans obs_base) in
  let timeline = timeline_of obs spans in
  let real_base_t =
    Option.map (fun ((b : Kernels.Sweep_exec.outcome), _) -> b.wall_time)
      real_result
  in
  let real_perturbed_t =
    match real_result with
    | Some (_, Kernels.Sweep_exec.Completed o) -> Some o.wall_time
    | Some (_, Degraded _) | None -> None
  in
  let opt = function None -> dash | Some v -> Table.fcell v in
  let compare =
    let slowdown base t =
      match (base, t) with
      | Some b, Some t when b > 0.0 -> Table.pct ((t -. b) /. b)
      | _ -> dash
    in
    Table.v ~id:"PERTURB-COMPARE"
      ~title:
        "Perturbed iteration time: model estimate vs simulated vs real (us)"
      ~notes:
        ([ Fmt.str "spec: %a" Perturb.Spec.pp spec;
           Fmt.str "dataflow (stragglers always last): %a"
             Wrun.Dataflow.pp_outcome dataflow ]
        @ (match sim.failed with
          | [] -> []
          | l ->
              [ Fmt.str "simulated run degraded: rank(s) %s killed"
                  (String.concat ", " (List.map string_of_int l)) ])
        @ (match real_result with
          | Some (_, Degraded { failed; reason; frontier; wall_time }) ->
              [ Fmt.str
                  "real run degraded after %.0f us: rank(s) %s failed (%s); \
                   frontier %s tiles"
                  wall_time
                  (String.concat ", " (List.map string_of_int failed))
                  (Printexc.to_string reason)
                  (String.concat "/"
                     (Array.to_list (Array.map string_of_int frontier))) ]
          | _ -> [])
        @
        if spec.failures = [] then []
        else
          [ "hint: `wavefront recover` evaluates this spec under \
             checkpoint/rollback recovery" ])
      ~headers:[ "quantity"; "model"; "simulated"; "real" ]
      [
        [ "unperturbed T_iter"; Table.fcell estimate.base;
          Table.fcell sim_base.per_iteration; opt real_base_t ];
        [ "perturbed T_iter"; Table.fcell estimate.total;
          Table.fcell sim.per_iteration; opt real_perturbed_t ];
        [ "slowdown";
          slowdown (Some estimate.base) (Some estimate.total);
          slowdown (Some sim_base.per_iteration) (Some sim.per_iteration);
          slowdown real_base_t real_perturbed_t ];
      ]
  in
  let injection =
    let n_noise, t_noise = span_total spans "perturb.noise" in
    let n_strag, t_strag = span_total spans "perturb.straggler" in
    let n_link, t_link = span_total spans "perturb.link" in
    let injected = t_noise +. t_strag +. t_link in
    let propagated = sim.elapsed -. sim_base.elapsed in
    let source name n t model =
      [ name; Table.icell n; Table.fcell t; Table.fcell model ]
    in
    Table.v ~id:"PERTURB-INJECTION"
      ~title:"Injected delay: absorbed in pipeline slack vs propagated"
      ~notes:
        [ "model column: the estimate's critical-path charge for the term";
          "absorbed = injected - elapsed growth; negative means the \
           perturbation cost more than the injected time (lost overlap)" ]
      ~headers:[ "source"; "spans"; "injected (us)"; "model (us)" ]
      [
        source "perturb.noise" n_noise t_noise estimate.noise;
        source "perturb.straggler" n_strag t_strag estimate.straggler;
        source "perturb.link" n_link t_link estimate.link;
        [ "injected total"; dash; Table.fcell injected;
          Table.fcell (estimate.total -. estimate.base) ];
        [ "elapsed growth (propagated)"; dash; Table.fcell propagated; dash ];
        [ "absorbed in slack"; dash; Table.fcell (injected -. propagated);
          dash ];
      ]
  in
  {
    estimate;
    compare;
    injection;
    sim_base;
    sim;
    dataflow;
    real = real_result;
    timeline_base;
    timeline;
    runtime = [];
  }
  in
  { report with runtime = Obs.Runtime.report phases }

(* Exit discipline shared with `wavefront recover`: 0 clean, 3 degraded
   (completed, but mismatching or leaking messages), 4 when ranks died —
   this command has no recovery, so every spec'd failure is unrecovered. *)
let exit_status t =
  let real_failed =
    match t.real with
    | Some (_, Kernels.Sweep_exec.Degraded _) -> true
    | _ -> false
  in
  if t.sim.failed <> [] || t.dataflow.failed <> [] || real_failed then 4
  else if
    (not t.dataflow.completed)
    || t.dataflow.mismatches <> []
    || t.dataflow.orphaned > 0
  then 3
  else 0

let pp ppf t =
  Table.render ppf t.compare;
  Format.pp_print_newline ppf ();
  Table.render ppf t.injection;
  Format.pp_print_newline ppf ();
  (* Side-by-side wait heatmaps: columns that darken only on the perturbed
     side show where injected delay propagated down the pipeline; columns
     that stay unchanged absorbed it in slack. *)
  Format.fprintf ppf "unperturbed wait by rank x wave:@.";
  Obs.Timeline.render ~metric:Obs.Timeline.Wait ppf t.timeline_base;
  Format.fprintf ppf "@.perturbed wait by rank x wave:@.";
  Obs.Timeline.render ~metric:Obs.Timeline.Wait ppf t.timeline;
  Format.fprintf ppf "@.runtime:@.%a@." Obs.Runtime.pp_report t.runtime
