(* The workflow behind `wavefront idlewave`: inject the spec's idle-wave
   sources into a control/perturbed pair of runs on the event-level
   simulator and on the timed dataflow backend (optionally on the real
   shared-memory kernel too), run the differential front detector on each
   pair, and reconcile the measured propagation speed and decay with the
   closed-form Perturb.Idle_model prediction built from the same LogGP
   platform numbers.

   On a silent system with single-core nodes and the bus model off, the
   simulator and the timed dataflow backend produce identical timelines
   cell for cell, so their detectors agree exactly and both match the
   analytic hop cost to float precision; the real kernel lands within a
   busy-wait tolerance. *)

open Wavefront_core
open Wgrid

type t = {
  spec : Perturb.Spec.t;
  model : Perturb.Idle_model.t option;  (** the closed-form prediction *)
  sim : Obs.Idle_wave.t;  (** detector on the event-level simulator pair *)
  dataflow : Obs.Idle_wave.t;  (** detector on the timed dataflow pair *)
  real : Obs.Idle_wave.t option;  (** detector on the real kernel pair *)
  timeline_base : Obs.Timeline.t;  (** control simulator run *)
  timeline : Obs.Timeline.t;  (** perturbed simulator run *)
  identity : bool;  (** perturbed sim and dataflow timelines identical *)
  reconcile : Table.t;
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report, per phase *)
}

let waves_of (app : App_params.t) =
  Sweeps.Schedule.nsweeps app.schedule
  * Wgrid.Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile

let dash = "-"

(* The fit in the direction the wave actually travelled; the sweep
   direction decides which one has enough fronts. *)
let main_fit (d : Obs.Idle_wave.t) =
  match d.forward with Some f -> Some f | None -> d.backward

let run ?(real = false) ?(model_bus = true) ?(engine = Engine.Event)
    ?(capacity = Obs.Tracer.default_capacity) (cfg : Plugplay.config)
    (app : App_params.t) (spec : Perturb.Spec.t) =
  let waves = waves_of app in
  (* Host-side runtime cost per stage (no tracer attach: runtime spans
     are wall-clock nondeterministic, the timelines are simulated time). *)
  let phases = Obs.Runtime.phases () in
  let timeline_of tr =
    Obs.Timeline.of_spans ~dropped:(Obs.Tracer.dropped tr) ~waves
      (Obs.Tracer.spans tr)
  in
  (* Simulator pair: same engine and configuration, with and without the
     spec. *)
  let sim_pair perturb =
    let tr = Obs.Tracer.create ~capacity () in
    ignore (Engine.observed_run ~model_bus ?perturb ~obs:tr engine cfg app);
    timeline_of tr
  in
  let timeline_base, timeline =
    Obs.Runtime.phase phases "simulate" (fun () ->
        let base = sim_pair None in
        (base, sim_pair (Some spec)))
  in
  (* Timed dataflow pair: the analytic term schedule under the same spec. *)
  let costs = Wrun.Costs.loggp ~cmp:cfg.cmp cfg.platform cfg.pgrid app in
  let df_pair perturb =
    let tr = Obs.Tracer.create ~capacity () in
    ignore (Wrun.Dataflow.run ?perturb ~costs ~obs:tr cfg.pgrid app);
    timeline_of tr
  in
  let df_base, df =
    Obs.Runtime.phase phases "dataflow" (fun () ->
        let base = df_pair None in
        (base, df_pair (Some spec)))
  in
  (* Hop distance between ranks: the wavefront-diagonal difference, which
     on a chain is just the rank difference. *)
  let diag r =
    let i, j = Proc_grid.coords cfg.pgrid r in
    i + j
  in
  let distance ~src ~dst = diag dst - diag src in
  (* Optional real pair, one domain per rank. *)
  let real_detect =
    if not real then None
    else
      Obs.Runtime.phase phases "real" (fun () ->
          let htile = max 1 (int_of_float app.htile) in
          let plan perturb =
            Kernels.Sweep_exec.plan ?perturb ~htile ~schedule:app.schedule
              ~nonwavefront:app.nonwavefront app.grid cfg.pgrid
          in
          let run_pair perturb =
            let trs =
              Array.init (Proc_grid.cores cfg.pgrid) (fun _ ->
                  Obs.Tracer.create ~capacity ())
            in
            ignore (Kernels.Sweep_exec.run ~obs:trs (plan perturb));
            let dropped =
              Array.fold_left (fun a tr -> a + Obs.Tracer.dropped tr) 0 trs
            in
            Obs.Timeline.of_spans ~dropped ~waves (Obs.Tracer.merge trs)
          in
          let base = run_pair None in
          let perturbed = run_pair (Some spec) in
          Some (Obs.Idle_wave.detect ~baseline:base ~distance perturbed))
  in
  (* Detection and reconciliation are one analyze phase; the record is
     patched with the runtime section once the phase has closed. *)
  let report =
    Obs.Runtime.phase phases "analyze" @@ fun () ->
  let sim_detect =
    Obs.Idle_wave.detect ~baseline:timeline_base ~distance timeline
  in
  let df_detect = Obs.Idle_wave.detect ~baseline:df_base ~distance df in
  let identity = Obs.Timeline.equal timeline df in
  (* Analytic side: the idle-wave term on the link the wave rides — the
     x-neighbor link when the grid has columns, else the y-neighbor one.
     Rank 0's downstream neighbor is rank 1 either way (row-major). *)
  let msg =
    if cfg.pgrid.cols > 1 then App_params.message_size_ew app cfg.pgrid
    else App_params.message_size_ns app cfg.pgrid
  in
  let hop_cost = Wrun.Costs.hop_latency costs ~src:0 ~dst:1 msg in
  let wave_period = Wrun.Costs.steady_period costs ~src:0 ~dst:1 msg in
  let model =
    Perturb.Idle_model.of_spec ~work:(Wrun.Costs.compute costs) spec ~hop_cost
      ~wave_period
  in
  let reconcile =
    let origin_cell = function
      | None -> dash
      | Some (r, w) -> Printf.sprintf "r%d w%d" r w
    in
    let m f = match model with None -> dash | Some im -> f im in
    let fitted f d =
      match main_fit d with None -> dash | Some fit -> Table.fcell (f fit)
    in
    let detected f d =
      if (d : Obs.Idle_wave.t).origin = None then dash else f d
    in
    let opt f = function None -> dash | Some d -> f d in
    let row name analytic f =
      [ name; analytic; f sim_detect; f df_detect; opt f real_detect ]
    in
    Table.v ~id:"IDLEWAVE-RECONCILE"
      ~title:
        "Idle-wave propagation: analytic model vs detected (sim / dataflow \
         / real)"
      ~notes:
        ([ Fmt.str "spec: %a" Perturb.Spec.pp spec;
           Fmt.str "analytic link: hop cost %.4f us, wave period %.4f us"
             hop_cost wave_period;
           Fmt.str "sim and timed-dataflow timelines identical: %s"
             (if identity then "yes" else "NO") ]
        @
        if model = None then
          [ "spec has no pulse clause: nothing for the analytic model to \
             predict" ]
        else [])
      ~headers:[ "quantity"; "analytic"; "simulated"; "dataflow"; "real" ]
      [
        row "origin (rank, wave)"
          (m (fun im -> origin_cell (Some (Perturb.Idle_model.origin im))))
          (fun d -> origin_cell d.Obs.Idle_wave.origin);
        row "amplitude delta (us)"
          (m (fun im -> Table.fcell (Perturb.Idle_model.delta im)))
          (detected (fun d -> Table.fcell d.Obs.Idle_wave.delta));
        row "hop latency (us/hop)"
          (m (fun im -> Table.fcell (Perturb.Idle_model.hop_cost im)))
          (fitted (fun f -> f.Obs.Idle_wave.hop_latency));
        row "speed (ranks/us)"
          (m (fun im -> Table.fcell ~prec:4 (Perturb.Idle_model.speed im)))
          (fun d ->
            match main_fit d with
            | None -> dash
            | Some f -> Table.fcell ~prec:4 f.Obs.Idle_wave.speed);
        row "ranks per wave"
          (m (fun im ->
               Table.fcell (Perturb.Idle_model.ranks_per_wave im)))
          (fitted (fun f -> f.Obs.Idle_wave.ranks_per_wave));
        row "decay (/hop)"
          (m (fun im -> Table.fcell ~prec:4 (Perturb.Idle_model.decay im)))
          (fitted (fun f -> f.Obs.Idle_wave.decay));
        row "fronts detected" dash (fun d ->
            Table.icell (List.length d.Obs.Idle_wave.fronts));
      ]
  in
  {
    spec;
    model;
    sim = sim_detect;
    dataflow = df_detect;
    real = real_detect;
    timeline_base;
    timeline;
    identity;
    reconcile;
    runtime = [];
  }
  in
  { report with runtime = Obs.Runtime.report phases }

(* Relative disagreement between the analytic hop cost and the fitted
   one on the simulator, when both exist. *)
let speed_error t =
  match (t.model, main_fit t.sim) with
  | Some im, Some f ->
      let a = Perturb.Idle_model.hop_cost im in
      if a > 0.0 then Some (Float.abs (f.Obs.Idle_wave.hop_latency -. a) /. a)
      else None
  | _ -> None

let mismatch_tolerance = 0.05

let exit_status ?(fail_on_mismatch = false) t =
  let has_pulse = t.spec.Perturb.Spec.pulses <> [] in
  if has_pulse && t.sim.Obs.Idle_wave.origin = None then 3
  else if
    fail_on_mismatch
    && ((not t.identity)
       || match speed_error t with
          | Some e -> e > mismatch_tolerance
          | None -> false)
  then 3
  else 0

let pp ppf t =
  Table.render ppf t.reconcile;
  Format.pp_print_newline ppf ();
  let section title d =
    Format.fprintf ppf "%s: %a@.@." title Obs.Idle_wave.pp d
  in
  section "simulated" t.sim;
  section "dataflow" t.dataflow;
  (match t.real with Some d -> section "real" d | None -> ());
  (* The wait heatmap of the perturbed run with the detected wave drawn
     on top: O marks the origin cell, > each front's leading edge. *)
  Format.fprintf ppf
    "perturbed wait by rank x wave (O origin, > front leading edge):@.";
  Obs.Timeline.render ~metric:Obs.Timeline.Wait
    ~mark:(fun ~rank ~col -> Obs.Idle_wave.mark t.sim ~rank ~col)
    ppf t.timeline;
  Format.fprintf ppf "@.runtime:@.%a@." Obs.Runtime.pp_report t.runtime

let detect_json (d : Obs.Idle_wave.t) =
  let b = Buffer.create 256 in
  (match d.origin with
  | None -> Buffer.add_string b "{\"origin\":null"
  | Some (r, w) ->
      Buffer.add_string b
        (Printf.sprintf "{\"origin\":{\"rank\":%d,\"wave\":%d}" r w));
  Buffer.add_string b
    (Printf.sprintf ",\"delta\":%.6f,\"wave_period\":%.6f,\"fronts\":%d"
       d.delta d.wave_period (List.length d.fronts));
  (match main_fit d with
  | None -> ()
  | Some f ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"hop_latency\":%.6f,\"speed\":%.6f,\"ranks_per_wave\":%.6f,\
            \"decay\":%.6f,\"points\":%d"
           f.hop_latency f.speed f.ranks_per_wave f.decay f.points));
  Buffer.add_char b '}';
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"wavefront-idlewave/v1\",";
  Buffer.add_string b
    (Printf.sprintf "\"spec\":\"%s\"," (Fmt.str "%a" Perturb.Spec.pp t.spec));
  Buffer.add_string b
    (Printf.sprintf "\"identity\":%b," t.identity);
  (match t.model with
  | None -> Buffer.add_string b "\"analytic\":null,"
  | Some im ->
      let r, w = Perturb.Idle_model.origin im in
      Buffer.add_string b
        (Printf.sprintf
           "\"analytic\":{\"origin\":{\"rank\":%d,\"wave\":%d},\
            \"delta\":%.6f,\"hop_cost\":%.6f,\"wave_period\":%.6f,\
            \"speed\":%.6f,\"ranks_per_wave\":%.6f,\"decay\":%.6f},"
           r w
           (Perturb.Idle_model.delta im)
           (Perturb.Idle_model.hop_cost im)
           (Perturb.Idle_model.wave_period im)
           (Perturb.Idle_model.speed im)
           (Perturb.Idle_model.ranks_per_wave im)
           (Perturb.Idle_model.decay im)));
  Buffer.add_string b "\"simulated\":";
  Buffer.add_string b (detect_json t.sim);
  Buffer.add_string b ",\"dataflow\":";
  Buffer.add_string b (detect_json t.dataflow);
  (match t.real with
  | Some d ->
      Buffer.add_string b ",\"real\":";
      Buffer.add_string b (detect_json d)
  | None -> ());
  Buffer.add_string b ",\"timeline\":";
  Buffer.add_string b (Obs.Timeline.to_json ~label:"perturbed" t.timeline);
  Buffer.add_char b '}';
  Buffer.contents b

let to_csv t = Table.to_csv t.reconcile
