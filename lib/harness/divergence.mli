(** Wave-by-wave model-error attribution.

    Aligns the analytic term schedule (a timed-dataflow timeline) against
    an observed run's timeline on the observed last-finishing rank and
    decomposes the closed form's total error
    [gap = T_iteration - elapsed] into folding + ramp + per-bucket deltas
    + tail. The decomposition is exact by construction: [attributed]
    equals [gap] to float precision. *)

type t = {
  rank : int;  (** the observed last finisher everything is measured on *)
  t_iteration : float;
  elapsed : float;
  gap : float;  (** [t_iteration - elapsed], the model's total error *)
  folding : float;
      (** closed form vs the term schedule's makespan for [rank] *)
  ramp : float;  (** first-span start skew, model - observed *)
  tail : float;  (** observed finish of [rank] vs the run's elapsed *)
  terms : (string * float) list;
      (** compute / send / recv / wait / other / idle deltas
          (model - observed), summed over every wave column *)
  per_wave : float array;  (** per-column window-width delta *)
  attributed : float;  (** sum of all parts; equals [gap] *)
}

val analyze :
  model:Obs.Timeline.t ->
  observed:Obs.Timeline.t ->
  t_iteration:float ->
  elapsed:float ->
  t

val table : t -> Table.t
val render_waves : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
