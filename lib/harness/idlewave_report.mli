(** The workflow behind [wavefront idlewave]: a control/perturbed run
    pair on the event-level simulator and on the timed dataflow backend
    (optionally on the real shared-memory kernel), the differential
    idle-wave front detector ({!Obs.Idle_wave}) on each pair, and a
    reconciliation of the measured propagation speed and decay against
    the closed-form {!Perturb.Idle_model} built from the same LogGP
    numbers. With single-core nodes and the bus model off the simulator
    and dataflow timelines are identical cell for cell, so their
    detectors — and the analytic hop cost — agree to float precision. *)

open Wavefront_core

type t = {
  spec : Perturb.Spec.t;
  model : Perturb.Idle_model.t option;
      (** the closed-form prediction; [None] when the spec has no pulse *)
  sim : Obs.Idle_wave.t;  (** detector on the simulator pair *)
  dataflow : Obs.Idle_wave.t;  (** detector on the timed dataflow pair *)
  real : Obs.Idle_wave.t option;  (** detector on the real kernel pair *)
  timeline_base : Obs.Timeline.t;  (** control simulator run *)
  timeline : Obs.Timeline.t;  (** perturbed simulator run *)
  identity : bool;
      (** perturbed simulator and dataflow timelines equal within 1e-6 *)
  reconcile : Table.t;
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report (GC, CPU, RSS) per
          stage: simulate / dataflow / real / analyze *)
}

val run :
  ?real:bool ->
  ?model_bus:bool ->
  ?engine:Engine.t ->
  ?capacity:int ->
  Plugplay.config ->
  App_params.t ->
  Perturb.Spec.t ->
  t
(** Evaluate one (configuration, application, spec) triple. [real]
    (default off) also executes the shared-memory kernel pair on one
    domain per rank — use small core counts. [model_bus] (default on)
    keeps the simulator's bus contention; switch it off (with single-core
    nodes) for the exact sim/dataflow identity. [engine] (default
    {!Engine.Event}) selects the observed substrate; {!Engine.Batched}
    shares the dataflow's cost arithmetic, so the identity holds
    regardless of [model_bus]. *)

val main_fit : Obs.Idle_wave.t -> Obs.Idle_wave.fit option
(** The fit in the direction the wave travelled (forward when present,
    else backward). *)

val speed_error : t -> float option
(** Relative disagreement between the analytic hop cost and the
    simulator's fitted hop latency, when both exist. *)

val exit_status : ?fail_on_mismatch:bool -> t -> int
(** 0 clean; 3 when the spec has a pulse but the detector found no
    origin, or — with [fail_on_mismatch] — when the sim/dataflow identity
    broke or {!speed_error} exceeds 5%. *)

val pp : Format.formatter -> t -> unit
(** The reconciliation table, each detector's summary, and the perturbed
    wait heatmap with the detected wave overlaid ([O] origin, [>] front
    leading edges). *)

val to_json : t -> string
val to_csv : t -> string
