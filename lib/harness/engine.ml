(* Engine selection for the observed side of the report workflows: the
   event-level simulator or the wave-batched flat-array engine, behind
   one run function returning the simulator's outcome shape. *)

type t = Event | Batched

let to_string = function Event -> "event" | Batched -> "batched"

let of_string = function
  | "event" -> Some Event
  | "batched" -> Some Batched
  | _ -> None

let all = [ ("event", Event); ("batched", Batched) ]
let pp ppf t = Format.pp_print_string ppf (to_string t)

(* The batched outcome in the simulator's shape. The event-only fields
   have no batched equivalent: events stays 0, sends counts messages,
   and stats carries only the per-rank finish clocks. *)
let of_batched (o : Wrun.Batched.outcome) : Xtsim.Wavefront_sim.outcome =
  {
    elapsed = o.elapsed;
    per_iteration = o.per_iteration;
    iterations = o.iterations;
    completed = o.completed;
    failed = o.failed;
    recovered = o.recovered;
    checkpoints = o.checkpoints;
    events = 0;
    sends = o.messages;
    stats =
      Array.map
        (fun finish ->
          { Xtsim.Wavefront_sim.compute = 0.0; comm = 0.0; wait = 0.0; finish })
        o.finish;
  }

let observed_run ?(model_bus = true) ?perturb ?recover ?obs ?max_ranks engine
    (cfg : Wavefront_core.Plugplay.config) (app : Wavefront_core.App_params.t) =
  match engine with
  | Event ->
      let machine =
        Xtsim.Machine.v ~model_bus ~cmp:cfg.cmp cfg.platform cfg.pgrid
      in
      Xtsim.Wavefront_sim.run ?perturb ?recover ?obs ?max_ranks machine app
  | Batched ->
      let costs =
        Wrun.Costs.loggp ~model_bus ~cmp:cfg.cmp cfg.platform cfg.pgrid app
      in
      of_batched (Wrun.Batched.run ?perturb ?recover ?obs ~costs cfg.pgrid app)
