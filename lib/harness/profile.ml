(* The profiling workflow behind `wavefront profile`: evaluate the
   closed-form model and the dataflow evaluator, execute the same
   configuration on the event-level simulator with full instrumentation,
   optionally execute the real shared-memory kernel with per-rank tracers,
   and reconcile everything in one report: a model-vs-simulated-vs-real
   breakdown, the simulated message mix, the critical path through the
   simulated run, and a Chrome trace of both timelines. *)

open Wavefront_core
open Wgrid

type t = {
  metrics : Obs.Metrics.t;
  breakdown : Table.t;
  protocols : Table.t;
  path : Table.t;
  processes : Obs.Chrome_trace.process list;
  sim : Xtsim.Wavefront_sim.outcome;
  sim_dropped : int;
  real_dropped : int;
  timeline : Obs.Timeline.t;  (** of the simulated run *)
  divergence : Divergence.t;
      (** model error attributed wave-by-wave against the analytic term
          schedule *)
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report, per phase *)
}

let count m name =
  match Obs.Metrics.find m name with Some (Obs.Metrics.Count n) -> n | _ -> 0

(* Total time covered by the union of a span list's intervals: nested spans
   (sends inside an all-reduce) are not double-counted. *)
let covered spans =
  let iv =
    List.sort compare
      (List.map (fun (s : Obs.Span.t) -> (s.t_start, Obs.Span.end_time s)) spans)
  in
  let rec go acc cur = function
    | [] -> ( match cur with None -> acc | Some (lo, hi) -> acc +. (hi -. lo))
    | (lo, hi) :: rest -> (
        match cur with
        | None -> go acc (Some (lo, hi)) rest
        | Some (clo, chi) ->
            if lo <= chi then go acc (Some (clo, Float.max chi hi)) rest
            else go (acc +. (chi -. clo)) (Some (lo, hi)) rest)
  in
  go 0.0 None iv

(* Communication share of the last-finishing rank of a real traced run:
   the rank whose ["rank"] span ends last, its comm/sync span coverage over
   its program span. *)
let real_comm_share spans =
  let ranks = List.filter (fun (s : Obs.Span.t) -> s.name = "rank") spans in
  match ranks with
  | [] -> nan
  | first :: rest ->
      let last =
        List.fold_left
          (fun (b : Obs.Span.t) (s : Obs.Span.t) ->
            if Obs.Span.end_time s > Obs.Span.end_time b then s else b)
          first rest
      in
      let comm =
        List.filter
          (fun (s : Obs.Span.t) ->
            s.rank = last.rank && (s.cat = "comm" || s.cat = "sync"))
          spans
      in
      if last.dur <= 0.0 then nan else covered comm /. last.dur

let dash = "-"
let share v = Printf.sprintf "%.1f%%" (100.0 *. v)

let run ?(real = false) ?(capacity = Obs.Tracer.default_capacity)
    (cfg : Plugplay.config) (app : App_params.t) =
  (* Host-side runtime cost of each stage, for the report's runtime
     section. No tracer is attached: runtime spans are wall-clock
     nondeterministic and would pollute the simulated-time timelines. *)
  let phases = Obs.Runtime.phases () in
  let metrics = Obs.Metrics.create () in
  (* Model side: closed form (r5) plus the dataflow evaluator. *)
  let r, c, t_dataflow =
    Obs.Runtime.phase phases "model" (fun () ->
        let r = Predictor.record_breakdown metrics app cfg in
        let c = Plugplay.components app cfg in
        let t_dataflow = Pipeline_model.record_iteration metrics app cfg in
        (r, c, t_dataflow))
  in
  (* Simulator side, with spans stamped in simulated time and the message
     trace kept for exact dependency edges. *)
  let machine = Xtsim.Machine.v ~cmp:cfg.cmp cfg.platform cfg.pgrid in
  let obs = Obs.Tracer.create ~capacity () in
  let trace = Xtsim.Trace.create ~capacity () in
  let sim =
    Obs.Runtime.phase phases "simulate" (fun () ->
        Xtsim.Wavefront_sim.run ~trace ~obs ~metrics machine app)
  in
  let sim_spans = Obs.Tracer.spans obs in
  (* Optional real run on one domain per rank. *)
  let real_result =
    if not real then None
    else
      Obs.Runtime.phase phases "real" (fun () ->
          let htile = max 1 (int_of_float app.htile) in
          let plan =
            Kernels.Sweep_exec.plan ~htile ~schedule:app.schedule
              ~nonwavefront:app.nonwavefront app.grid cfg.pgrid
          in
          let trs =
            Array.init (Proc_grid.cores cfg.pgrid) (fun _ ->
                Obs.Tracer.create ~capacity ())
          in
          let out = Kernels.Sweep_exec.run ~obs:trs plan in
          Obs.Metrics.set
            (Obs.Metrics.gauge metrics "real.wall_time")
            out.wall_time;
          let spans = Obs.Tracer.merge trs in
          let dropped =
            Array.fold_left (fun a tr -> a + Obs.Tracer.dropped tr) 0 trs
          in
          Some (out, spans, dropped))
  in
  let real_dropped =
    match real_result with Some (_, _, d) -> d | None -> 0
  in
  (* Everything below is pure analysis of the collected data — one
     phase; the record is assembled inside it with an empty runtime
     section and patched once the phase has closed. *)
  let report =
    Obs.Runtime.phase phases "analyze" @@ fun () ->
  (* Model vs simulated vs real. The real kernel computes with its own Wg,
     so its wall time is only comparable when the model was given a
     measured Wg (wavefront measure-wg); the share row compares shape
     regardless. *)
  let err m s = Table.pct ((m -. s) /. s) in
  let breakdown =
    let model_sim_real quantity m s rl =
      [ quantity; Table.fcell m;
        (match s with None -> dash | Some s -> Table.fcell s);
        (match rl with None -> dash | Some v -> Table.fcell v);
        (match s with None -> dash | Some s -> err m s) ]
    in
    let share_row =
      let model = c.communication /. c.total in
      let sim_share = Xtsim.Wavefront_sim.comm_share sim in
      let real_share =
        match real_result with
        | Some (_, spans, _) ->
            let v = real_comm_share spans in
            if Float.is_nan v then dash else share v
        | None -> dash
      in
      [ "comm share of critical path"; share model; share sim_share;
        real_share; Table.pct ((model -. sim_share) /. sim_share) ]
    in
    Table.v ~id:"PROFILE-BREAKDOWN"
      ~title:"Model terms vs instrumented runs (per iteration, us)"
      ~headers:[ "quantity"; "model"; "simulated"; "real"; "model err" ]
      ~notes:
        ([ Printf.sprintf
             "dataflow evaluator: %.2f us/iteration; simulated run: %d \
              events, %d sends"
             t_dataflow sim.events sim.sends ]
        @
        match real_result with
        | Some (out, _, _) ->
            [ Printf.sprintf
                "real run: %d domains, wall %.2f us; comparable to the \
                 model only with a measured Wg (see measure-wg)"
                (Proc_grid.cores cfg.pgrid) out.wall_time ]
        | None -> [])
      [
        model_sim_real "T_iteration" r.t_iteration (Some sim.per_iteration)
          (match real_result with
          | Some (out, _, _) -> Some out.wall_time
          | None -> None);
        model_sim_real "T_diagfill" r.t_diagfill None None;
        model_sim_real "T_fullfill" r.t_fullfill None None;
        model_sim_real "T_stack" r.t_stack None None;
        model_sim_real "T_nonwavefront" r.t_nonwavefront None None;
        model_sim_real "W (tile compute)" r.w None None;
        model_sim_real "W_pre" r.w_pre None None;
        share_row;
      ]
  in
  (* Message mix, from the per-protocol counters the simulator kept. *)
  let protocols =
    let row name =
      let msgs = count metrics ("sim.msgs." ^ name) in
      let bytes = count metrics ("sim.bytes." ^ name) in
      [ name; Table.icell msgs; Table.icell bytes ]
    in
    Table.v ~id:"PROFILE-PROTOCOLS"
      ~title:"Simulated message mix by protocol"
      ~headers:[ "protocol"; "messages"; "bytes" ]
      (List.map row [ "eager"; "rendezvous"; "copy"; "dma" ])
  in
  (* Critical path through the simulated run: exact message edges from the
     simulator's transfer trace, program order within each rank. The
     report form carries the tracer's loss count, so a partial path is
     flagged instead of presented as complete. *)
  let path =
    let report =
      Obs.Critical_path.report
        ~dropped:(Obs.Tracer.dropped obs)
        ~spans:sim_spans
        ~edges:(Xtsim.Trace.edges trace)
        ()
    in
    let segs = Obs.Critical_path.summarize report.steps in
    let total = List.fold_left (fun a (s : Obs.Critical_path.segment) -> a +. s.total) 0.0 segs in
    let notes =
      Printf.sprintf "%d steps on the path; span capacity %d"
        (List.length report.steps) capacity
      ::
      (match Obs.Critical_path.truncation_note report with
      | Some note -> [ note ]
      | None -> [])
    in
    Table.v ~id:"PROFILE-PATH"
      ~title:"Critical path of the simulated run, by span kind"
      ~headers:[ "segment"; "count"; "total (us)"; "share" ] ~notes
      (List.map
         (fun (s : Obs.Critical_path.segment) ->
           [ s.name; Table.icell s.count; Table.fcell s.total;
             (if total > 0.0 then share (s.total /. total) else dash) ])
         segs)
  in
  (* Wave-resolved view of the same run, and the model's error attributed
     against the analytic term schedule (the timed dataflow backend). *)
  let waves =
    Sweeps.Schedule.nsweeps app.schedule
    * Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile
  in
  let timeline =
    Obs.Timeline.of_spans ~dropped:(Obs.Tracer.dropped obs) ~waves sim_spans
  in
  let divergence =
    let costs = Wrun.Costs.loggp ~cmp:cfg.cmp cfg.platform cfg.pgrid app in
    let model_tr = Obs.Tracer.create ~capacity () in
    ignore (Wrun.Dataflow.run ~costs ~obs:model_tr cfg.pgrid app);
    let model =
      Obs.Timeline.of_spans ~dropped:(Obs.Tracer.dropped model_tr) ~waves
        (Obs.Tracer.spans model_tr)
    in
    Divergence.analyze ~model ~observed:timeline ~t_iteration:r.t_iteration
      ~elapsed:sim.elapsed
  in
  let processes =
    { Obs.Chrome_trace.pid = 0; name = "simulated"; spans = sim_spans }
    ::
    (match real_result with
    | Some (_, spans, _) ->
        [ { Obs.Chrome_trace.pid = 1; name = "real (domains)"; spans } ]
    | None -> [])
  in
  {
    metrics;
    breakdown;
    protocols;
    path;
    processes;
    sim;
    sim_dropped = Obs.Tracer.dropped obs;
    real_dropped;
    timeline;
    divergence;
    runtime = [];
  }
  in
  { report with runtime = Obs.Runtime.report phases }

let trace_json t = Obs.Chrome_trace.to_json t.processes

let pp ppf t =
  Table.render ppf t.breakdown;
  Format.pp_print_newline ppf ();
  Table.render ppf t.protocols;
  Format.pp_print_newline ppf ();
  Table.render ppf t.path;
  Format.pp_print_newline ppf ();
  Format.fprintf ppf "simulated wait by rank x wave:@.";
  Obs.Timeline.render ~metric:Obs.Timeline.Wait ppf t.timeline;
  Format.pp_print_newline ppf ();
  Divergence.pp ppf t.divergence;
  Format.pp_print_newline ppf ();
  Format.fprintf ppf "runtime:@.%a@." Obs.Runtime.pp_report t.runtime;
  Format.pp_print_newline ppf ();
  Format.fprintf ppf "metrics:@.%a" Obs.Metrics.pp t.metrics
