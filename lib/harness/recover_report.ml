(* The workflow behind `wavefront recover`: one (application, perturbation,
   checkpoint policy) triple driven through every layer that understands
   it — the closed-form recovery term, the simulator with the protocol
   armed (recovery cost shows up in simulated time as recover.* spans),
   the dataflow reference (protocol completion and who was revived), and
   optionally the real shared-memory kernel under genuine checkpoint/
   rollback — reconciled in one report.

   The comparison hinges on the three layers sharing their arithmetic:
   Perturb.Recover owns the checkpoint schedule and rollback depth, so
   the model's term and the substrates' behaviour can only diverge in
   how overhead overlaps with pipeline slack, which is exactly what the
   elapsed-growth row surfaces. *)

open Wavefront_core

type real_result = {
  outcome : Kernels.Sweep_exec.recoverable_outcome;
  matches : bool option;
      (* gathered grid bitwise-equals the sequential reference; None when
         the run did not complete *)
}

type t = {
  policy : Perturb.Recover.policy;
  optimal : int;
  waves : int;
  wave_cost : float;
  predicted : Perturb.Recover.term;
  simulated : Perturb.Recover.term;
  tolerance : float;
  within_tolerance : bool;
  compare : Table.t;
  intervals : Table.t;
  sim_base : Xtsim.Wavefront_sim.outcome;
  sim : Xtsim.Wavefront_sim.outcome;
  dataflow : Wrun.Dataflow.outcome;
  real : real_result option;
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report, per phase *)
}

(* Summed duration of the spans with this name, globally and as the
   per-rank maximum. The model's checkpoint term is per rank (every rank
   pauses at the same waves, so the critical path pays the schedule once),
   while restart and rework are charged only where failures struck. *)
let sum_spans spans name =
  List.fold_left
    (fun tot (s : Obs.Span.t) -> if s.name = name then tot +. s.dur else tot)
    0.0 spans

let max_rank_spans spans name =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Span.t) ->
      if s.name = name then
        Hashtbl.replace tbl s.rank
          ((try Hashtbl.find tbl s.rank with Not_found -> 0.0) +. s.dur))
    spans;
  Hashtbl.fold (fun _ v acc -> Float.max v acc) tbl 0.0

let close ~tolerance a b =
  Float.abs (a -. b) <= Float.max 1e-6 (tolerance *. Float.max a b)

let dash = "-"

(* Candidate intervals around the Daly optimum (and the chosen policy),
   each priced with the expected closed-form term. *)
let interval_table ~policy ~optimal ~waves ~wave_cost ~failures =
  let candidates =
    [ optimal / 4; optimal / 2; optimal; optimal * 2; optimal * 4;
      policy.Perturb.Recover.interval ]
    |> List.map (fun k -> max 1 (min waves k))
    |> List.sort_uniq compare
  in
  let rows =
    List.map
      (fun k ->
        let p = { policy with Perturb.Recover.interval = k } in
        let term = Perturb.Recover.expected_term p ~waves ~wave_cost ~failures in
        let mark =
          (if k = policy.Perturb.Recover.interval then [ "policy" ] else [])
          @ if k = optimal then [ "optimal" ] else []
        in
        [ Table.icell k;
          Table.icell (Perturb.Recover.checkpoints ~interval:k ~waves);
          Table.fcell term.checkpoint; Table.fcell term.rework;
          Table.fcell term.total;
          (match mark with [] -> "" | l -> "<- " ^ String.concat ", " l) ])
      candidates
  in
  Table.v ~id:"RECOVER-INTERVALS"
    ~title:"Expected recovery overhead by checkpoint interval (us)"
    ~notes:
      [ Fmt.str
          "Daly-style optimum K* = sqrt(2 * waves * C / (f * T_wave)) = %d"
          optimal;
        "expected rework: each failure loses K/2 waves on average" ]
    ~headers:[ "K"; "ckpts"; "checkpoint"; "rework"; "expected total"; "" ]
    rows

let run ?(real = false) ?(model_bus = true) ?(engine = Engine.Event)
    ?(tolerance = 0.05) ?(capacity = Obs.Tracer.default_capacity) ~policy
    (cfg : Plugplay.config) (app : App_params.t) (spec : Perturb.Spec.t) =
  (* Host-side runtime cost per stage, for the report's runtime section. *)
  let phases = Obs.Runtime.phases () in
  let r = Plugplay.iteration app cfg in
  let wave_cost = r.w +. r.w_pre in
  let ntiles = Wgrid.Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile in
  let waves = Sweeps.Schedule.nsweeps app.schedule * ntiles in
  (* One global wave per tile step of a rank, so a rank killed before its
     n-th tile dies at global wave n; clauses past the end never fire. *)
  let fail_waves =
    List.filter_map
      (fun (f : Perturb.Spec.failure) ->
        if f.after_tiles < waves then Some f.after_tiles else None)
      spec.failures
  in
  let predicted, optimal =
    Obs.Runtime.phase phases "model" (fun () ->
        ( Perturb.Recover.deterministic_term policy ~waves ~wave_cost
            ~fail_waves,
          Perturb.Recover.optimal_interval ~waves ~wave_cost
            ~failures:(List.length fail_waves) ~ckpt_cost:policy.ckpt_cost ))
  in
  let obs = Obs.Tracer.create ~capacity () in
  let sim_base, sim =
    Obs.Runtime.phase phases "simulate" (fun () ->
        let sim_base = Engine.observed_run ~model_bus engine cfg app in
        let sim =
          Engine.observed_run ~model_bus ~perturb:spec ~recover:policy ~obs
            engine cfg app
        in
        (sim_base, sim))
  in
  let spans = Obs.Tracer.spans obs in
  let simulated =
    let checkpoint = max_rank_spans spans "recover.checkpoint" in
    let restart = sum_spans spans "recover.restart" in
    let rework = sum_spans spans "recover.replay" in
    { Perturb.Recover.checkpoint; restart; rework;
      total = checkpoint +. restart +. rework }
  in
  let within_tolerance = close ~tolerance predicted.total simulated.total in
  let dataflow =
    Obs.Runtime.phase phases "dataflow" (fun () ->
        Wrun.Dataflow.run ~perturb:spec ~recover:policy cfg.pgrid app)
  in
  let real_result =
    if not real then None
    else
      Obs.Runtime.phase phases "real" (fun () ->
          let htile = max 1 (int_of_float app.htile) in
          let plan =
            Kernels.Sweep_exec.plan ~htile ~schedule:app.schedule
              ~nonwavefront:app.nonwavefront ~perturb:spec app.grid cfg.pgrid
          in
          let outcome = Kernels.Sweep_exec.run_recoverable ~policy plan in
          let matches =
            match outcome with
            | Kernels.Sweep_exec.Recovered (o, _) ->
                Some
                  (Kernels.Sweep_exec.gather plan o.blocks
                  = Kernels.Sweep_exec.run_sequential plan)
            | Unrecovered _ -> None
          in
          Some { outcome; matches })
  in
  (* The rest is analysis of the collected data; the record is patched
     with the runtime section once the phase has closed. *)
  let report =
    Obs.Runtime.phase phases "analyze" @@ fun () ->
  let ranks = Wgrid.Proc_grid.cores cfg.pgrid in
  let per_rank_ckpts =
    Perturb.Recover.checkpoints ~interval:policy.interval ~waves
  in
  let real_stats =
    match real_result with
    | Some { outcome = Kernels.Sweep_exec.Recovered (_, s); _ } -> Some s
    | _ -> None
  in
  let opt_int = function None -> dash | Some v -> Table.icell v in
  let compare =
    Table.v ~id:"RECOVER-COMPARE"
      ~title:"Recovery overhead: closed-form model vs simulated vs real"
      ~notes:
        ([ Fmt.str "policy: %a; Daly optimum K* = %d" Perturb.Recover.pp
             policy optimal;
           Fmt.str "spec: %a" Perturb.Spec.pp spec;
           Fmt.str "dataflow: %a" Wrun.Dataflow.pp_outcome dataflow;
           (if within_tolerance then
              Fmt.str
                "simulated overhead within %.0f%% of the closed form"
                (100.0 *. tolerance)
            else
              Fmt.str
                "MISMATCH: simulated overhead %.4f us vs predicted %.4f us \
                 (tolerance %.0f%%)"
                simulated.total predicted.total (100.0 *. tolerance)) ]
        @
        match real_result with
        | None -> []
        | Some { outcome = Kernels.Sweep_exec.Recovered (o, s); matches } ->
            [ Fmt.str
                "real run recovered in %.0f us: %d restart(s), %d \
                 checkpoint(s), %d wave(s) replayed; grid %s"
                o.wall_time s.restarts s.checkpoints s.replayed_waves
                (match matches with
                | Some true -> "bitwise-equal to the unfailed reference"
                | Some false -> "MISMATCHES the unfailed reference"
                | None -> "not checked") ]
        | Some { outcome = Unrecovered { failed; reason; wall_time; _ }; _ }
          ->
            [ Fmt.str "real run UNRECOVERED after %.0f us: rank(s) %s (%s)"
                wall_time
                (String.concat ", " (List.map string_of_int failed))
                (Printexc.to_string reason) ])
      ~headers:[ "quantity"; "model"; "simulated"; "real" ]
      [
        [ "checkpoints (all ranks)"; Table.icell (per_rank_ckpts * ranks);
          Table.icell sim.checkpoints;
          opt_int
            (Option.map
               (fun (s : Kernels.Sweep_exec.recovery_stats) -> s.checkpoints)
               real_stats) ];
        [ "ranks recovered"; Table.icell (List.length fail_waves);
          Table.icell (List.length sim.recovered);
          opt_int
            (Option.map
               (fun (s : Kernels.Sweep_exec.recovery_stats) -> s.restarts)
               real_stats) ];
        [ "waves replayed";
          Table.icell
            (List.fold_left
               (fun acc w ->
                 acc + Perturb.Recover.lost_waves policy ~fail_wave:w)
               0 fail_waves);
          Table.icell
            (int_of_float
               (Float.round (simulated.rework /. Float.max wave_cost 1e-9)));
          opt_int
            (Option.map
               (fun (s : Kernels.Sweep_exec.recovery_stats) ->
                 s.replayed_waves)
               real_stats) ];
        [ "checkpoint overhead (us/rank)"; Table.fcell predicted.checkpoint;
          Table.fcell simulated.checkpoint; dash ];
        [ "restart cost (us)"; Table.fcell predicted.restart;
          Table.fcell simulated.restart; dash ];
        [ "rework (us)"; Table.fcell predicted.rework;
          Table.fcell simulated.rework; dash ];
        [ "recovery overhead (us)"; Table.fcell predicted.total;
          Table.fcell simulated.total; dash ];
        [ "elapsed growth (us)"; dash;
          Table.fcell (sim.elapsed -. sim_base.elapsed); dash ];
      ]
  in
  let intervals =
    interval_table ~policy ~optimal ~waves ~wave_cost
      ~failures:(List.length fail_waves)
  in
  {
    policy;
    optimal;
    waves;
    wave_cost;
    predicted;
    simulated;
    tolerance;
    within_tolerance;
    compare;
    intervals;
    sim_base;
    sim;
    dataflow;
    real = real_result;
    runtime = [];
  }
  in
  { report with runtime = Obs.Runtime.report phases }

(* Exit discipline shared with `wavefront perturb`: 0 clean, 3 degraded
   (completed, but out of tolerance / mismatched / leaking messages), 4
   when a failure went unrecovered. *)
let exit_status t =
  let sim_unrecovered =
    List.exists (fun r -> not (List.mem r t.sim.recovered)) t.sim.failed
    || not t.sim.completed
  in
  let real_unrecovered =
    match t.real with
    | Some { outcome = Kernels.Sweep_exec.Unrecovered _; _ } -> true
    | _ -> false
  in
  let real_mismatch =
    match t.real with Some { matches = Some false; _ } -> true | _ -> false
  in
  if sim_unrecovered || real_unrecovered || not t.dataflow.completed then 4
  else if
    (not t.within_tolerance)
    || t.dataflow.mismatches <> []
    || t.dataflow.orphaned > 0
    || real_mismatch
  then 3
  else 0

let pp ppf t =
  Table.render ppf t.compare;
  Format.pp_print_newline ppf ();
  Table.render ppf t.intervals;
  Format.fprintf ppf "@.runtime:@.%a@." Obs.Runtime.pp_report t.runtime
