(* Wave-by-wave model-error attribution: align the analytic term schedule
   (the timed dataflow timeline) against an observed run's timeline and
   decompose the closed form's total error into named parts.

   Everything is measured on one rank — the observed run's last finisher,
   whose program is the critical path the model's T_iteration folds — and
   the decomposition is exact by construction:

     T_iteration - elapsed
       = folding            (closed form vs the term schedule's makespan
                             for that rank: what (r5)'s min/max folding
                             and real-valued tile counts absorb)
       + ramp               (difference in when the rank's first span
                             starts: pipeline-fill skew)
       + sum of bucket deltas (model - observed, per compute / send /
                             recv / wait / other / idle, summed over
                             every wave column; each column's buckets sum
                             to its window width, so these add up to the
                             difference of the two ranks' span extents)
       + tail               (observed finish vs the run's elapsed: time
                             after the rank's last span, e.g. other ranks
                             draining)

   so [attributed] equals [gap] to float precision — the acceptance
   identity the test suite asserts. *)

type t = {
  rank : int;  (** the observed last finisher everything is measured on *)
  t_iteration : float;
  elapsed : float;
  gap : float;  (** [t_iteration - elapsed], the model's total error *)
  folding : float;
  ramp : float;
  tail : float;
  terms : (string * float) list;  (** per-bucket deltas, model - observed *)
  per_wave : float array;  (** per-column window-width delta, model - obs *)
  attributed : float;  (** sum of all parts; equals [gap] *)
}

let zero_cell : Obs.Timeline.cell =
  {
    t_start = 0.0;
    t_end = 0.0;
    compute = 0.0;
    send = 0.0;
    recv = 0.0;
    wait = 0.0;
    other = 0.0;
    idle = 0.0;
    spans = 0;
  }

let cell_at (tl : Obs.Timeline.t) ~rank ~col =
  if rank < tl.ranks && col < Obs.Timeline.columns tl then
    Obs.Timeline.cell tl ~rank ~col
  else zero_cell

let buckets =
  [
    ("compute", fun (c : Obs.Timeline.cell) -> c.compute);
    ("send", fun c -> c.send);
    ("recv", fun c -> c.recv);
    ("wait", fun c -> c.wait);
    ("other", fun c -> c.other);
    ("idle", fun c -> c.idle);
  ]

let analyze ~(model : Obs.Timeline.t) ~(observed : Obs.Timeline.t)
    ~t_iteration ~elapsed =
  let rank =
    let best = ref 0 in
    Array.iteri
      (fun i f -> if f > observed.finish.(!best) then best := i)
      observed.finish;
    !best
  in
  let cols =
    max (Obs.Timeline.columns model) (Obs.Timeline.columns observed)
  in
  let delta f =
    let acc = ref 0.0 in
    for col = 0 to cols - 1 do
      acc :=
        !acc
        +. f (cell_at model ~rank ~col)
        -. f (cell_at observed ~rank ~col)
    done;
    !acc
  in
  let terms = List.map (fun (name, f) -> (name, delta f)) buckets in
  let per_wave =
    Array.init cols (fun col ->
        Obs.Timeline.cell_width (cell_at model ~rank ~col)
        -. Obs.Timeline.cell_width (cell_at observed ~rank ~col))
  in
  let m_start = if rank < model.ranks then model.start.(rank) else 0.0 in
  let m_finish = if rank < model.ranks then model.finish.(rank) else 0.0 in
  let folding = t_iteration -. m_finish in
  let ramp = m_start -. observed.start.(rank) in
  let tail = observed.finish.(rank) -. elapsed in
  let attributed =
    folding +. ramp +. tail
    +. List.fold_left (fun a (_, d) -> a +. d) 0.0 terms
  in
  {
    rank;
    t_iteration;
    elapsed;
    gap = t_iteration -. elapsed;
    folding;
    ramp;
    tail;
    terms;
    per_wave;
    attributed;
  }

let table t =
  let row name v note = [ name; Table.fcell v; note ] in
  Table.v ~id:"DIVERGENCE"
    ~title:
      (Printf.sprintf
         "Model-error attribution on rank %d (model - observed, us)" t.rank)
    ~headers:[ "term"; "delta (us)"; "meaning" ]
    ~notes:
      [
        Printf.sprintf
          "gap = T_iteration - elapsed = %.4f us; attributed parts sum to \
           %.4f us"
          t.gap t.attributed;
      ]
    ([
       row "folding" t.folding "closed form vs term-schedule makespan";
       row "ramp" t.ramp "first-span start skew";
     ]
    @ List.map
        (fun (name, d) ->
          row name d
            (match name with
            | "compute" -> "modeled W vs executed compute"
            | "send" | "recv" -> "uncontended protocol cost delta"
            | "wait" -> "blocking the model does not charge"
            | "other" -> "collectives / halos / overlap"
            | "idle" -> "uncovered window time"
            | _ -> ""))
        t.terms
    @ [ row "tail" t.tail "after the rank's last span" ])

(* Signed per-wave heatmap: one character per (downsampled) wave column,
   upper-case ramp where the model over-predicts, lower-case where it
   under-predicts. *)
let render_waves ppf t =
  let n = Array.length t.per_wave in
  if n = 0 then Format.fprintf ppf "(no waves)@."
  else begin
    let max_cols = 72 in
    let m = min n max_cols in
    let bucket i =
      let lo = i * n / m and hi = max ((i + 1) * n / m) ((i * n / m) + 1) in
      let acc = ref 0.0 in
      for j = lo to hi - 1 do
        acc := !acc +. t.per_wave.(j)
      done;
      !acc /. float_of_int (hi - lo)
    in
    let vals = Array.init m bucket in
    let amax =
      Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 vals
    in
    let over = "+*#@" and under = "-=%&" in
    let glyph v =
      if amax <= 0.0 || Float.abs v < 1e-12 *. amax then '.'
      else
        let lvl =
          min 3 (int_of_float (Float.abs v /. amax *. 4.0))
        in
        (if v > 0.0 then over else under).[lvl]
    in
    Format.fprintf ppf
      "model error by wave on rank %d (+ over-predicts, - under; peak \
       |delta| %.3f us)@."
      t.rank amax;
    Format.fprintf ppf "  ";
    Array.iter (fun v -> Format.fprintf ppf "%c" (glyph v)) vals;
    Format.fprintf ppf "  (last column = epilogue)@."
  end

let pp ppf t =
  Table.render ppf (table t);
  render_waves ppf t
