(** The workflow behind [wavefront timeline]: reconstruct per-rank x
    per-wave timelines of the same configuration from the event-level
    simulator, the timed dataflow backend (the analytic term schedule) and
    optionally the real shared-memory kernel, and attribute the closed
    form's error wave by wave. *)

open Wavefront_core

type t = {
  observed : Obs.Timeline.t;  (** event-level simulator *)
  model : Obs.Timeline.t;  (** timed dataflow: the analytic term schedule *)
  real : Obs.Timeline.t option;  (** shared-memory Domains run *)
  divergence : Divergence.t;
  sim : Xtsim.Wavefront_sim.outcome;
  t_iteration : float;
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report (GC, CPU, RSS) per
          stage: simulate / model / real / analyze *)
}

val run :
  ?real:bool ->
  ?model_bus:bool ->
  ?engine:Engine.t ->
  ?capacity:int ->
  Plugplay.config ->
  App_params.t ->
  t
(** One iteration. [model_bus] (default [true]) keeps the simulator's
    shared-bus contention on; switch it off (with single-core nodes and an
    eager-sized configuration) and the observed and model timelines
    coincide to float precision — the cross-substrate identity the tests
    assert. [engine] (default {!Engine.Event}) selects the observed
    substrate; with {!Engine.Batched} the observed side shares the
    dataflow's cost arithmetic, so the two timelines coincide regardless
    of [model_bus]. *)

val pp : ?metric:Obs.Timeline.metric -> Format.formatter -> t -> unit

val to_json : t -> string
(** Schema ["wavefront-timeline-report/v1"], embedding the timelines'
    own documents. *)

val to_csv : t -> string
