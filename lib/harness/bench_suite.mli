(** The shared continuous-benchmarking suite: named thunks covering the
    model, simulator, dataflow validator, kernels and observability
    layers. Case names are stable identifiers the baseline comparison
    matches on. *)

type case = {
  name : string;
  quick : bool;  (** part of the fast CI subset *)
  repeats : int option;
      (** override the runner's repetition count — the multi-second
          batched/dataflow scale cases run few repetitions *)
  f : unit -> unit;
}

val all : unit -> case list

val cases : ?quick:bool -> unit -> case list
(** [quick] (default false) keeps only the fast CI subset. *)

val peak_rss_mb : unit -> int
(** Peak resident set (VmHWM) of this process in MB, 0 where /proc is
    unavailable — recorded in the report metadata so the scale cases pin
    a memory envelope next to their wall-clock. *)

val scale_domains : int
(** Domains the sharded scale case runs with on this host
    ([Domain.recommended_domain_count]) — recorded in the report
    metadata so cross-host baseline comparisons know the parallelism
    behind run/batched-bus-64k-sharded. *)
