(** The shared continuous-benchmarking suite: named thunks covering the
    model, simulator, dataflow validator, kernels and observability
    layers. Case names are stable identifiers the baseline comparison
    matches on. *)

type case = {
  name : string;
  quick : bool;  (** part of the fast CI subset *)
  f : unit -> unit;
}

val all : unit -> case list

val cases : ?quick:bool -> unit -> case list
(** [quick] (default false) keeps only the fast CI subset. *)
