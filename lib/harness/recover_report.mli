(** The workflow behind [wavefront recover]: one (application,
    perturbation, checkpoint policy) triple driven through the
    closed-form recovery term ({!Perturb.Recover}), the simulator with
    the checkpoint/rollback protocol armed, the dataflow reference, and
    (optionally) the real shared-memory kernel — reconciled into a
    model-vs-simulated-vs-real table plus a Daly-interval sweep. *)

open Wavefront_core

type real_result = {
  outcome : Kernels.Sweep_exec.recoverable_outcome;
  matches : bool option;
      (** gathered grid bitwise-equals the sequential reference; [None]
          when the run did not complete *)
}

type t = {
  policy : Perturb.Recover.policy;
  optimal : int;  (** Daly-style optimal interval for this run *)
  waves : int;
  wave_cost : float;  (** the model's [w + w_pre], us per wave *)
  predicted : Perturb.Recover.term;  (** closed form for the spec's schedule *)
  simulated : Perturb.Recover.term;
      (** measured from the simulator's [recover.*] spans: checkpoint is
          the per-rank maximum, restart and rework are totals *)
  tolerance : float;
  within_tolerance : bool;
      (** simulated total within [tolerance] (relative) of the closed form *)
  compare : Table.t;
  intervals : Table.t;  (** expected overhead across candidate intervals *)
  sim_base : Xtsim.Wavefront_sim.outcome;  (** unperturbed *)
  sim : Xtsim.Wavefront_sim.outcome;  (** perturbed, recovery armed *)
  dataflow : Wrun.Dataflow.outcome;
  real : real_result option;
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report (GC, CPU, RSS) per
          stage: model / simulate / dataflow / real / analyze *)
}

val run :
  ?real:bool ->
  ?model_bus:bool ->
  ?engine:Engine.t ->
  ?tolerance:float ->
  ?capacity:int ->
  policy:Perturb.Recover.policy ->
  Plugplay.config ->
  App_params.t ->
  Perturb.Spec.t ->
  t
(** Evaluate one triple. [model_bus] (default on) is passed to
    {!Engine.observed_run} for both runs — on multi-core configs it
    enables the shared-bus contention layer on either engine.
    [real] (default off) also executes the transport
    kernel under genuine checkpoint/rollback
    ({!Kernels.Sweep_exec.run_recoverable}) and checks the recovered grid
    bitwise against the sequential reference; use small core counts.
    [engine] (default {!Engine.Event}) selects the observed substrate;
    the simulated recovery term reads the same [recover.*] spans either
    way. [tolerance] (default 0.05) bounds the accepted relative gap
    between the simulated and closed-form overhead totals. *)

val exit_status : t -> int
(** 0 clean; 3 degraded (out of tolerance, dataflow mismatches or
    orphans, or a real-run grid mismatch); 4 when any failure went
    unrecovered on any substrate. *)

val pp : Format.formatter -> t -> unit
