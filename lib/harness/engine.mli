(** Engine selection for the observed (simulated) side of the report
    workflows.

    Every report pairs an observed simulation against the timed dataflow
    reference. [Event] is the event-level simulator (fibers, per-event
    heap, bus contention); [Batched] is the wave-batched flat-array
    engine, which shares the dataflow replay's LogGP cost arithmetic and
    scales to million-rank grids. Reports accept the choice as
    [?engine] and otherwise run unchanged. *)

type t = Event | Batched

val to_string : t -> string
val of_string : string -> t option
val all : (string * t) list
(** Name/value pairs for a [Cmdliner.Arg.enum]. *)

val pp : Format.formatter -> t -> unit

val observed_run :
  ?model_bus:bool ->
  ?perturb:Perturb.Spec.t ->
  ?recover:Perturb.Recover.policy ->
  ?obs:Obs.Tracer.t ->
  ?max_ranks:int ->
  t ->
  Wavefront_core.Plugplay.config ->
  Wavefront_core.App_params.t ->
  Xtsim.Wavefront_sim.outcome
(** One observed run of the configuration on the selected engine,
    returning the event simulator's outcome shape either way so report
    records need no engine-specific cases.

    [Event] builds the machine from the config and delegates to
    {!Xtsim.Wavefront_sim.run}; [max_ranks] and [model_bus] apply, and
    {!Xtsim.Wavefront_sim.Rank_ceiling} escapes to the caller past the
    ceiling. [Batched] prices the same program with
    {!Wrun.Costs.loggp}[ ~model_bus] and runs {!Wrun.Batched.run}:
    [model_bus] (default [true]) enables the closed-form Table-6 bus
    layer on multi-core configs — the batched engine charges the
    per-axis interference term per tile-loop operation where the event
    simulator queues a per-node bus clock, so on multi-core nodes the
    two agree only within the tolerance the differential suite pins
    (bitwise with the bus off or single-core nodes). [max_ranks] does
    not apply (the batched engine has no rank ceiling). A batched
    outcome carries real
    elapsed/per-iteration/failure/recovery figures, but synthesizes the
    event-only fields: [events] is 0, [sends] counts messages, and
    [stats] holds only each rank's finish clock (compute/comm/wait
    zero) — do not feed it to {!Xtsim.Wavefront_sim.comm_share}. *)
