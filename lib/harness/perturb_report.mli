(** The workflow behind [wavefront perturb]: one perturbation spec driven
    through the analytic estimate ({!Perturb.Estimate}), an unperturbed
    and a perturbed simulator run, the dataflow validator under
    adversarial straggler ordering, and (optionally) the real
    shared-memory kernel — reconciled into a model-vs-sim-vs-real table
    and an absorbed-vs-propagated account of the injected delay. *)

open Wavefront_core

type t = {
  estimate : Perturb.Estimate.breakdown;
  compare : Table.t;  (** perturbed iteration time, model vs sim vs real *)
  injection : Table.t;
      (** per-source injected delay against the estimate's charge, and how
          much of it the pipeline absorbed *)
  sim_base : Xtsim.Wavefront_sim.outcome;
  sim : Xtsim.Wavefront_sim.outcome;
  dataflow : Wrun.Dataflow.outcome;
  real :
    (Kernels.Sweep_exec.outcome * Kernels.Sweep_exec.resilient_outcome) option;
      (** baseline and perturbed real runs, when requested *)
  timeline_base : Obs.Timeline.t;  (** unperturbed simulator run *)
  timeline : Obs.Timeline.t;
      (** perturbed run; against [timeline_base] the wait heatmaps show
          where injected delay was absorbed vs propagated *)
  runtime : (string * Obs.Runtime.delta) list;
      (** host-side cost of producing this report (GC, CPU, RSS) per
          stage: estimate / simulate / dataflow / real / analyze *)
}

val run :
  ?real:bool ->
  ?model_bus:bool ->
  ?engine:Engine.t ->
  ?capacity:int ->
  Plugplay.config ->
  App_params.t ->
  Perturb.Spec.t ->
  t
(** Evaluate one (configuration, application, perturbation) triple.
    [model_bus] (default on) is passed to {!Engine.observed_run} for
    both the baseline and the perturbed run — on multi-core configs it
    enables the shared-bus contention layer on either engine.
    [real] (default off) also executes the transport kernel twice —
    unperturbed, then perturbed via {!Kernels.Sweep_exec.run_resilient} —
    on one domain per rank; use small core counts. With [real] off the
    report is fully deterministic (simulated time only). [engine]
    (default {!Engine.Event}) selects the observed substrate; the
    injected-delay accounting reads the same [perturb.*] spans either
    way. *)

val exit_status : t -> int
(** 0 clean; 3 degraded (dataflow incomplete, mismatching or leaking
    messages); 4 when ranks were killed — this workflow has no recovery,
    so every spec'd failure counts as unrecovered. See
    {!Recover_report.exit_status} for the recovering counterpart. *)

val pp : Format.formatter -> t -> unit
