(* The shared continuous-benchmarking suite: one list of named thunks
   covering every layer (closed-form model, simulator, dataflow
   validator, real kernels, observability), consumed both by `wavefront
   bench` and by bench/main.exe so the committed baseline and local runs
   measure the same work. Case names are stable identifiers — the
   baseline comparison matches on them — so renaming one is a deliberate
   baseline-breaking change. *)

open Wavefront_core

type case = {
  name : string;
  quick : bool;  (** part of the fast CI subset *)
  repeats : int option;  (** override the runner's repetition count *)
  f : unit -> unit;
}

(* Peak resident set of this process (VmHWM), MB; 0 where /proc is
   unavailable. The big-run cases dominate it, so recording it next to
   their wall-clock pins the batched engine's memory envelope too. The
   reader itself now lives in [Obs.Runtime] (every telemetry consumer
   shares it); this alias keeps the bench suite's surface unchanged. *)
let peak_rss_mb = Obs.Runtime.peak_rss_mb

(* How many domains the sharded scale case uses on this host — recorded
   in the report metadata so a baseline from a 1-core CI runner is not
   read as a multi-core regression. *)
let scale_domains = Domain.recommended_domain_count ()

let xt4 = Loggp.Params.xt4

let all () =
  let chimaera = Apps.Chimaera.p240 () in
  let sweep_app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 32) in
  let sim_machine = Xtsim.Machine.v xt4 (Wgrid.Proc_grid.of_cores 64) in
  (* The large-grid cases share one Sweep3D problem; the costs tables are
     built once outside the timed region. *)
  let pg_64k = Wgrid.Proc_grid.of_cores 65536 in
  let costs_64k =
    Wrun.Costs.loggp ~cmp:Wgrid.Cmp.single_core xt4 pg_64k sweep_app
  in
  let costs_64k_bus =
    Wrun.Costs.loggp ~model_bus:true
      ~cmp:(Wgrid.Cmp.of_cores_per_node 2)
      (Loggp.Params.with_cores_per_node xt4 2)
      pg_64k sweep_app
  in
  let pg_1m = Wgrid.Proc_grid.of_cores 1048576 in
  let costs_1m =
    Wrun.Costs.loggp ~cmp:Wgrid.Cmp.single_core xt4 pg_1m sweep_app
  in
  let phi = Array.make (16 * 16 * 16) 0.0 in
  let lu = Kernels.Lu_kernel.init_block ~nx:16 ~ny:16 ~nz:16 in
  (* A realistic trace to reconstruct: the analytic term schedule of a
     small Sweep3D, produced once outside the timed region. *)
  let timeline_spans =
    let pg = Wgrid.Proc_grid.of_cores 16 in
    let app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 16) in
    let costs = Wrun.Costs.loggp ~cmp:Wgrid.Cmp.single_core xt4 pg app in
    let tr = Obs.Tracer.create () in
    ignore (Wrun.Dataflow.run ~costs ~obs:tr pg app);
    Obs.Tracer.spans tr
  in
  let record_tr = Obs.Tracer.create ~capacity:1024 () in
  (* A synthetic 8192-rank idle-wave trace: a tied pipeline with one pulse
     mid-run and a decaying stall front on every downstream rank — large
     enough that the detector's cell scans, front thresholding and fits
     dominate, built once outside the timed region. *)
  let idlewave_tl =
    let ranks = 8192 and waves = 32 in
    let period = 10.0 and hop = 12.0 in
    let o_rank = ranks / 2 and o_wave = waves / 2 in
    let cell r w : Obs.Timeline.cell =
      let t_start =
        (float_of_int r *. hop) +. (float_of_int w *. period)
      in
      let hit = w = o_wave && r > o_rank in
      let wait =
        if hit then 400.0 *. Float.exp (-0.0005 *. float_of_int (r - o_rank))
        else 1.0
      in
      let compute = if r = o_rank && w = o_wave then 508.0 else 8.0 in
      {
        Obs.Timeline.t_start;
        t_end = t_start +. compute +. wait +. 2.0;
        compute;
        send = 1.0;
        recv = 1.0;
        wait;
        other = 0.0;
        idle = 0.0;
        spans = 4;
      }
    in
    {
      Obs.Timeline.ranks;
      waves;
      cells = Array.init ranks (fun r -> Array.init (waves + 1) (cell r));
      t0 = 0.0;
      start = Array.init ranks (fun r -> float_of_int r *. hop);
      finish =
        Array.init ranks (fun r ->
            (float_of_int r *. hop) +. (float_of_int (waves + 1) *. period));
      dropped = 0;
    }
  in
  [
    {
      name = "model/iteration-P1024";
      quick = true;
      repeats = None;
      f =
        (let cfg = Plugplay.config xt4 ~cores:1024 in
         fun () -> ignore (Plugplay.iteration chimaera cfg));
    };
    {
      name = "model/iteration-P16384";
      quick = false;
      repeats = None;
      f =
        (let cfg = Plugplay.config xt4 ~cores:16384 in
         fun () -> ignore (Plugplay.iteration chimaera cfg));
    };
    {
      name = "model/allreduce-eq9";
      quick = true;
      repeats = None;
      f = (fun () -> ignore (Loggp.Allreduce.time xt4 ~cores:8192));
    };
    {
      name = "sim/wavefront-64c-32^3";
      quick = true;
      repeats = None;
      f = (fun () -> ignore (Xtsim.Wavefront_sim.run sim_machine sweep_app));
    };
    {
      name = "dataflow/validate-P1024";
      quick = true;
      repeats = None;
      f =
        (let pg = Wgrid.Proc_grid.of_cores 1024 in
         fun () ->
           let o = Wrun.Dataflow.run pg sweep_app in
           assert o.completed);
    };
    {
      name = "kernels/transport-16^3";
      quick = true;
      repeats = None;
      f =
        (fun () ->
          Array.fill phi 0 (Array.length phi) 0.0;
          Kernels.Transport.sweep_sequential Kernels.Transport.default
            ~nx:16 ~ny:16 ~nz:16 ~dir:(1, 1, 1) ~htile:4 ~phi);
    };
    {
      name = "kernels/lu-16^3";
      quick = false;
      repeats = None;
      f = (fun () -> Kernels.Lu_kernel.sweep_block lu ~nx:16 ~ny:16 ~nz:16);
    };
    {
      name = "obs/timeline-reconstruct";
      quick = true;
      repeats = None;
      f = (fun () -> ignore (Obs.Timeline.of_spans timeline_spans));
    };
    {
      name = "obs/idlewave-detect-8192r";
      quick = true;
      repeats = None;
      f =
        (fun () ->
          let d = Obs.Idle_wave.detect idlewave_tl in
          assert (d.origin <> None));
    };
    {
      name = "obs/tracer-record";
      quick = true;
      repeats = None;
      f =
        (fun () ->
          Obs.Tracer.record record_tr ~rank:0 ~start:0.0 ~dur:1.0 "x");
    };
    (* The wave-batched engine at scale, against the timed dataflow replay
       of the same costs: the baseline pins the batched engine's >= 10x
       advantage at 64k ranks and its million-rank wall-clock. Few
       repetitions — each call is seconds, and the medians move little. *)
    {
      name = "run/batched-64k";
      quick = true;
      repeats = Some 3;
      f =
        (fun () ->
          let o = Wrun.Batched.run ~costs:costs_64k pg_64k sweep_app in
          assert o.completed);
    };
    (* The same 64k sweep with the Table-6 bus layer on (2 cores/node):
       the gap against run/batched-64k is the closed-form contention
       arithmetic's own cost. *)
    {
      name = "run/batched-bus-64k";
      quick = true;
      repeats = Some 3;
      f =
        (fun () ->
          let o = Wrun.Batched.run ~costs:costs_64k_bus pg_64k sweep_app in
          assert o.completed;
          assert (o.bus_wait > 0.0));
    };
    (* Row-band domain sharding of the identical run: on a multi-core
       host this should beat run/batched-bus-64k wall-clock while staying
       bitwise-identical (the determinism tests pin that part). *)
    {
      name = "run/batched-bus-64k-sharded";
      quick = true;
      repeats = Some 3;
      f =
        (fun () ->
          let o =
            Wrun.Batched.run ~domains:scale_domains ~costs:costs_64k_bus
              pg_64k sweep_app
          in
          assert o.completed);
    };
    {
      name = "run/dataflow-64k";
      quick = false;
      repeats = Some 3;
      f =
        (fun () ->
          let o = Wrun.Dataflow.run ~costs:costs_64k pg_64k sweep_app in
          assert o.completed);
    };
    {
      name = "run/batched-1m";
      quick = false;
      repeats = Some 3;
      f =
        (fun () ->
          let o = Wrun.Batched.run ~costs:costs_1m pg_1m sweep_app in
          assert o.completed);
    };
  ]

let cases ?(quick = false) () =
  List.filter (fun c -> (not quick) || c.quick) (all ())
