(* The shared continuous-benchmarking suite: one list of named thunks
   covering every layer (closed-form model, simulator, dataflow
   validator, real kernels, observability), consumed both by `wavefront
   bench` and by bench/main.exe so the committed baseline and local runs
   measure the same work. Case names are stable identifiers — the
   baseline comparison matches on them — so renaming one is a deliberate
   baseline-breaking change. *)

open Wavefront_core

type case = {
  name : string;
  quick : bool;  (** part of the fast CI subset *)
  f : unit -> unit;
}

let xt4 = Loggp.Params.xt4

let all () =
  let chimaera = Apps.Chimaera.p240 () in
  let sweep_app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 32) in
  let sim_machine = Xtsim.Machine.v xt4 (Wgrid.Proc_grid.of_cores 64) in
  let phi = Array.make (16 * 16 * 16) 0.0 in
  let lu = Kernels.Lu_kernel.init_block ~nx:16 ~ny:16 ~nz:16 in
  (* A realistic trace to reconstruct: the analytic term schedule of a
     small Sweep3D, produced once outside the timed region. *)
  let timeline_spans =
    let pg = Wgrid.Proc_grid.of_cores 16 in
    let app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 16) in
    let costs = Wrun.Costs.loggp ~cmp:Wgrid.Cmp.single_core xt4 pg app in
    let tr = Obs.Tracer.create () in
    ignore (Wrun.Dataflow.run ~costs ~obs:tr pg app);
    Obs.Tracer.spans tr
  in
  let record_tr = Obs.Tracer.create ~capacity:1024 () in
  (* A synthetic 8192-rank idle-wave trace: a tied pipeline with one pulse
     mid-run and a decaying stall front on every downstream rank — large
     enough that the detector's cell scans, front thresholding and fits
     dominate, built once outside the timed region. *)
  let idlewave_tl =
    let ranks = 8192 and waves = 32 in
    let period = 10.0 and hop = 12.0 in
    let o_rank = ranks / 2 and o_wave = waves / 2 in
    let cell r w : Obs.Timeline.cell =
      let t_start =
        (float_of_int r *. hop) +. (float_of_int w *. period)
      in
      let hit = w = o_wave && r > o_rank in
      let wait =
        if hit then 400.0 *. Float.exp (-0.0005 *. float_of_int (r - o_rank))
        else 1.0
      in
      let compute = if r = o_rank && w = o_wave then 508.0 else 8.0 in
      {
        Obs.Timeline.t_start;
        t_end = t_start +. compute +. wait +. 2.0;
        compute;
        send = 1.0;
        recv = 1.0;
        wait;
        other = 0.0;
        idle = 0.0;
        spans = 4;
      }
    in
    {
      Obs.Timeline.ranks;
      waves;
      cells = Array.init ranks (fun r -> Array.init (waves + 1) (cell r));
      t0 = 0.0;
      start = Array.init ranks (fun r -> float_of_int r *. hop);
      finish =
        Array.init ranks (fun r ->
            (float_of_int r *. hop) +. (float_of_int (waves + 1) *. period));
      dropped = 0;
    }
  in
  [
    {
      name = "model/iteration-P1024";
      quick = true;
      f =
        (let cfg = Plugplay.config xt4 ~cores:1024 in
         fun () -> ignore (Plugplay.iteration chimaera cfg));
    };
    {
      name = "model/iteration-P16384";
      quick = false;
      f =
        (let cfg = Plugplay.config xt4 ~cores:16384 in
         fun () -> ignore (Plugplay.iteration chimaera cfg));
    };
    {
      name = "model/allreduce-eq9";
      quick = true;
      f = (fun () -> ignore (Loggp.Allreduce.time xt4 ~cores:8192));
    };
    {
      name = "sim/wavefront-64c-32^3";
      quick = true;
      f = (fun () -> ignore (Xtsim.Wavefront_sim.run sim_machine sweep_app));
    };
    {
      name = "dataflow/validate-P1024";
      quick = true;
      f =
        (let pg = Wgrid.Proc_grid.of_cores 1024 in
         fun () ->
           let o = Wrun.Dataflow.run pg sweep_app in
           assert o.completed);
    };
    {
      name = "kernels/transport-16^3";
      quick = true;
      f =
        (fun () ->
          Array.fill phi 0 (Array.length phi) 0.0;
          Kernels.Transport.sweep_sequential Kernels.Transport.default
            ~nx:16 ~ny:16 ~nz:16 ~dir:(1, 1, 1) ~htile:4 ~phi);
    };
    {
      name = "kernels/lu-16^3";
      quick = false;
      f = (fun () -> Kernels.Lu_kernel.sweep_block lu ~nx:16 ~ny:16 ~nz:16);
    };
    {
      name = "obs/timeline-reconstruct";
      quick = true;
      f = (fun () -> ignore (Obs.Timeline.of_spans timeline_spans));
    };
    {
      name = "obs/idlewave-detect-8192r";
      quick = true;
      f =
        (fun () ->
          let d = Obs.Idle_wave.detect idlewave_tl in
          assert (d.origin <> None));
    };
    {
      name = "obs/tracer-record";
      quick = true;
      f =
        (fun () ->
          Obs.Tracer.record record_tr ~rank:0 ~start:0.0 ~dur:1.0 "x");
    };
  ]

let cases ?(quick = false) () =
  List.filter (fun c -> (not quick) || c.quick) (all ())
