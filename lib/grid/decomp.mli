(** Partitioning the 3-D data grid over the 2-D processor grid
    (Figure 1(a)). *)

val cells_x : Data_grid.t -> Proc_grid.t -> float
(** [cells_x g p] is the model's real-valued per-processor extent [Nx/n]. *)

val cells_y : Data_grid.t -> Proc_grid.t -> float
(** [Ny/m]. *)

val cells_per_tile : Data_grid.t -> Proc_grid.t -> htile:float -> float
(** Cells computed per tile per processor, [Htile * Nx/n * Ny/m]. *)

val blocks : cells:int -> parts:int -> int list
(** Balanced integer partition of [cells] into [parts] blocks, largest
    first. *)

val block_of : cells:int -> parts:int -> index:int -> int
(** The size of block [index] (0-based) of {!blocks}. *)

val offset_of : cells:int -> parts:int -> index:int -> int
(** The starting cell of block [index]: the closed-form sum of the sizes of
    blocks [0 .. index-1] (so [offset_of ~index:parts] = [cells]). *)

val message_size : bytes_per_cell:float -> htile:float -> extent:float -> int
(** Boundary message size in bytes for a face of [extent] cells at tile
    height [htile], with [bytes_per_cell] bytes exchanged per boundary cell
    (Table 3's MessageSize rows). *)

val pp_split : (Data_grid.t * Proc_grid.t) Fmt.t
