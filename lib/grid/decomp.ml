(* Partitioning the 3-D data grid over the 2-D processor grid (Figure 1(a)).

   The model works with real-valued per-processor extents Nx/n and Ny/m; the
   executable substrates need balanced integer partitions, which [blocks]
   provides (the first [nx mod n] processors get one extra cell). *)

let cells_x (g : Data_grid.t) (p : Proc_grid.t) = float_of_int g.nx /. float_of_int p.cols
let cells_y (g : Data_grid.t) (p : Proc_grid.t) = float_of_int g.ny /. float_of_int p.rows

let cells_per_tile g p ~htile =
  if htile <= 0.0 then invalid_arg "Decomp.cells_per_tile: htile must be > 0";
  htile *. cells_x g p *. cells_y g p

let blocks ~cells ~parts =
  if parts < 1 || cells < 1 then invalid_arg "Decomp.blocks";
  let base = cells / parts and extra = cells mod parts in
  List.init parts (fun k -> if k < extra then base + 1 else base)

let block_of ~cells ~parts ~index =
  if index < 0 || index >= parts then invalid_arg "Decomp.block_of: bad index";
  let base = cells / parts and extra = cells mod parts in
  if index < extra then base + 1 else base

(* Closed form for the sum of the first [index] block sizes: the [min index
   extra] leading blocks carry one extra cell each. *)
let offset_of ~cells ~parts ~index =
  if index < 0 || index > parts then invalid_arg "Decomp.offset_of: bad index";
  let base = cells / parts and extra = cells mod parts in
  (index * base) + min index extra

(* Per-direction boundary message sizes (Table 3). A processor sends its
   east/west boundary face of one tile: [bytes_per_cell_column] bytes for each
   of the Ny/m rows it owns (scaled by tile height and per-cell payload), and
   symmetrically north/south. Sizes are rounded up to whole bytes. *)
let message_size ~bytes_per_cell ~htile ~extent =
  if bytes_per_cell <= 0.0 then invalid_arg "Decomp.message_size";
  int_of_float (Float.ceil (bytes_per_cell *. htile *. extent))

let pp_split ppf (g, p) =
  Fmt.pf ppf "%a over %a: %.2f x %.2f x %d cells/proc" Data_grid.pp g
    Proc_grid.pp p (cells_x g p) (cells_y g p) g.nz
