(** Textual application specifications (KEY = VALUE lines, ['#'] comments):
    the plug-and-play workflow without recompiling. See the implementation
    header for the format; required keys are [nx], [ny], [nz] and [wg]. *)

type error = [ `Msg of string ]

type full = {
  app : Wavefront_core.App_params.t;
  perturb : Perturb.Spec.t option;
      (** the spec's [perturb = ...] stanza ({!Perturb.Spec.of_string}
          clause syntax), if present *)
}

val full_of_string : string -> (full, error) result
val full_of_file : string -> (full, error) result

val of_string : string -> (Wavefront_core.App_params.t, error) result
(** {!full_of_string} keeping only the application (a [perturb] stanza
    still parses — and still fails loudly when malformed — but is
    dropped). *)

val of_file : string -> (Wavefront_core.App_params.t, error) result
