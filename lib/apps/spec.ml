(* Textual application specifications: the plug-and-play workflow without
   recompiling. A spec is a list of KEY = VALUE lines ('#' starts a
   comment); unknown keys are an error, so typos fail loudly.

     # hydra.spec
     name = hydra
     nx = 480    ny and nz likewise
     wg = 1.4                  # us per cell, measured
     wg_pre = 0.15             # optional, default 0
     htile = 2                 # optional, default 1
     nsweeps = 4               # optional, default 2
     nfull = 2                 # optional, default min 2 nsweeps
     ndiag = 1                 # optional, default 0
     schedule = sweep3d        # optional: sweep3d | lu | chimaera; a named
                               # preset instead of nsweeps/nfull/ndiag
     bytes_per_cell = 96       # boundary payload per cell
     iterations = 200          # optional, default 1
     nonwavefront = allreduce 2      # or: allreduce N BYTES (default 8-byte
                                     # messages) | stencil WG HALO |
                                     # fixed US | none
     perturb = seed=42 noise=uniform:0.2 straggler=3:50   # optional; the
                                     # clause syntax of Perturb.Spec.of_string
*)

type error = [ `Msg of string ]

let err fmt = Fmt.kstr (fun m -> Error (`Msg m)) fmt

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then Ok None
  else
    match String.index_opt line '=' with
    | None -> err "line %d: expected KEY = VALUE, got %S" lineno line
    | Some i ->
        let key = String.trim (String.sub line 0 i) in
        let value =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        if key = "" || value = "" then
          err "line %d: empty key or value" lineno
        else Ok (Some (String.lowercase_ascii key, value))

(* Bindings keep the line each came from, so value errors can point at
   the offending line rather than just naming the key. *)
let parse_bindings text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Error e -> Error e
        | Ok None -> go acc (lineno + 1) rest
        | Ok (Some (k, v)) -> go ((k, (v, lineno)) :: acc) (lineno + 1) rest)
  in
  go [] 1 lines

let known_keys =
  [ "name"; "nx"; "ny"; "nz"; "wg"; "wg_pre"; "htile"; "nsweeps"; "nfull";
    "ndiag"; "schedule"; "bytes_per_cell"; "iterations"; "nonwavefront";
    "perturb" ]

type full = {
  app : Wavefront_core.App_params.t;
  perturb : Perturb.Spec.t option;
}

let full_of_string text =
  match parse_bindings text with
  | Error e -> Error e
  | Ok bindings -> (
      match
        List.find_opt (fun (k, _) -> not (List.mem k known_keys)) bindings
      with
      | Some (k, (_, lineno)) ->
          err "line %d: unknown key %S (known: %s)" lineno k
            (String.concat ", " known_keys)
      | None -> (
          let get_loc k = List.assoc_opt k bindings in
          let get k = Option.map fst (get_loc k) in
          let get_int k =
            match get_loc k with
            | None -> Ok None
            | Some (v, lineno) -> (
                match int_of_string_opt v with
                | Some i -> Ok (Some i)
                | None ->
                    err "line %d: %s: expected an integer, got %S" lineno k v)
          in
          let get_float k =
            match get_loc k with
            | None -> Ok None
            | Some (v, lineno) -> (
                match float_of_string_opt v with
                | Some f -> Ok (Some f)
                | None ->
                    err "line %d: %s: expected a number, got %S" lineno k v)
          in
          let ( let* ) = Result.bind in
          let require k = function
            | Some v -> Ok v
            | None -> err "missing required key %S" k
          in
          let* nx = get_int "nx" in
          let* nx = require "nx" nx in
          let* ny = get_int "ny" in
          let* ny = require "ny" ny in
          let* nz = get_int "nz" in
          let* nz = require "nz" nz in
          let* wg = get_float "wg" in
          let* wg = require "wg" wg in
          let* wg_pre = get_float "wg_pre" in
          let* htile = get_float "htile" in
          let* nsweeps = get_int "nsweeps" in
          let* nfull = get_int "nfull" in
          let* ndiag = get_int "ndiag" in
          let* bytes_per_cell = get_float "bytes_per_cell" in
          let* iterations = get_int "iterations" in
          let* schedule =
            match get "schedule" with
            | None -> Ok None
            | Some "sweep3d" -> Ok (Some Sweeps.Schedule.sweep3d)
            | Some "lu" -> Ok (Some Sweeps.Schedule.lu)
            | Some "chimaera" -> Ok (Some Sweeps.Schedule.chimaera)
            | Some v ->
                err "schedule: expected sweep3d, lu or chimaera, got %S" v
          in
          let* () =
            if
              schedule <> None
              && (nsweeps <> None || nfull <> None || ndiag <> None)
            then
              err
                "schedule conflicts with nsweeps/nfull/ndiag: use one or the \
                 other"
            else Ok ()
          in
          let* nonwavefront =
            match get "nonwavefront" with
            | None | Some "none" -> Ok None
            | Some v -> (
                match String.split_on_char ' ' v |> List.filter (( <> ) "") with
                | [ "allreduce"; n ] -> (
                    match int_of_string_opt n with
                    | Some count ->
                        Ok
                          (Some
                             (Wavefront_core.App_params.Allreduce
                                { count; msg_size = 8 }))
                    | None -> err "nonwavefront: bad all-reduce count %S" n)
                | [ "allreduce"; n; bytes ] -> (
                    match (int_of_string_opt n, int_of_string_opt bytes) with
                    | Some count, Some msg_size when msg_size > 0 ->
                        Ok
                          (Some
                             (Wavefront_core.App_params.Allreduce
                                { count; msg_size }))
                    | _ ->
                        err "nonwavefront: bad all-reduce %S (want N [BYTES])"
                          v)
                | [ "stencil"; wg_s; halo ] -> (
                    match
                      (float_of_string_opt wg_s, float_of_string_opt halo)
                    with
                    | Some wg_stencil, Some halo_bytes_per_cell ->
                        Ok
                          (Some
                             (Stencil { wg_stencil; halo_bytes_per_cell }))
                    | _ -> err "nonwavefront: bad stencil %S" v)
                | [ "fixed"; us ] -> (
                    match float_of_string_opt us with
                    | Some t -> Ok (Some (Fixed t))
                    | None -> err "nonwavefront: bad fixed cost %S" v)
                | _ ->
                    err
                      "nonwavefront: expected 'allreduce N [BYTES]', \
                       'stencil WG HALO', 'fixed US' or 'none', got %S"
                      v)
          in
          let* perturb =
            match get_loc "perturb" with
            | None -> Ok None
            | Some (v, lineno) -> (
                (* Keep the structured clause/offset context so the error
                   points into the stanza's value, with the line it sits
                   on. *)
                match Perturb.Spec.of_string_loc v with
                | Ok p -> Ok (Some p)
                | Error e ->
                    err
                      "line %d: perturb: bad clause %S at offset %d of the \
                       stanza: %s"
                      lineno e.Perturb.Spec.clause e.position e.reason)
          in
          try
            Ok
              {
                app =
                  Custom.params
                    ?name:(get "name")
                    ?schedule ?nsweeps ?nfull
                    ?ndiag:(Option.map Fun.id ndiag)
                    ?wg_pre ?htile ?bytes_per_cell ?nonwavefront ?iterations
                    ~wg
                    (Wgrid.Data_grid.v ~nx ~ny ~nz);
                perturb;
              }
          with Invalid_argument m -> err "%s" m))

let of_string text = Result.map (fun f -> f.app) (full_of_string text)

let full_of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> full_of_string text
  | exception Sys_error m -> Error (`Msg m)

let of_file path = Result.map (fun f -> f.app) (full_of_file path)
