(* Tests for the real shared-memory message-passing runtime. *)

let test_channel_fifo () =
  let c = Shmpi.Channel.create () in
  Shmpi.Channel.send c [| 1.0 |];
  Shmpi.Channel.send c [| 2.0 |];
  Alcotest.(check (float 0.0)) "first" 1.0 (Shmpi.Channel.recv c).(0);
  Alcotest.(check (float 0.0)) "second" 2.0 (Shmpi.Channel.recv c).(0);
  Alcotest.(check bool) "empty" true (Shmpi.Channel.try_recv c = None)

let test_channel_copies () =
  let c = Shmpi.Channel.create () in
  let payload = [| 7.0 |] in
  Shmpi.Channel.send c payload;
  payload.(0) <- 9.0;
  Alcotest.(check (float 0.0)) "copied on send" 7.0 (Shmpi.Channel.recv c).(0)

let test_ring_pass () =
  (* Each rank forwards an accumulating token around a ring. *)
  let ranks = 4 in
  let r =
    Shmpi.Runtime.run ~ranks (fun comm rank ->
        if rank = 0 then begin
          Shmpi.Comm.send comm ~src:0 ~dst:1 [| 1.0 |];
          (Shmpi.Comm.recv comm ~dst:0 ~src:(ranks - 1)).(0)
        end
        else begin
          let v = (Shmpi.Comm.recv comm ~dst:rank ~src:(rank - 1)).(0) in
          Shmpi.Comm.send comm ~src:rank ~dst:((rank + 1) mod ranks)
            [| v +. 1.0 |];
          v
        end)
  in
  Alcotest.(check (float 0.0)) "token back at 0" 4.0 r.values.(0);
  Alcotest.(check (float 0.0)) "rank 3 saw 3" 3.0 r.values.(3)

let test_barrier () =
  (* After a barrier, every rank must observe every other rank's pre-barrier
     write. *)
  let ranks = 4 in
  let flags = Array.make ranks 0 in
  let r =
    Shmpi.Runtime.run ~ranks (fun comm rank ->
        flags.(rank) <- 1;
        Shmpi.Comm.barrier comm;
        Array.fold_left ( + ) 0 flags)
  in
  Array.iter (fun v -> Alcotest.(check int) "saw all" ranks v) r.values

let test_allreduce_sum () =
  List.iter
    (fun ranks ->
      let r =
        Shmpi.Runtime.run ~ranks (fun comm rank ->
            Shmpi.Comm.allreduce comm ~rank ~op:( +. )
              (float_of_int (rank + 1)))
      in
      let expected = float_of_int (ranks * (ranks + 1) / 2) in
      Array.iteri
        (fun rank v ->
          Alcotest.(check (float 1e-9))
            (Fmt.str "P=%d rank %d" ranks rank)
            expected v)
        r.values)
    [ 1; 2; 3; 4; 5; 7; 8 ]

let test_allreduce_max () =
  let ranks = 6 in
  let r =
    Shmpi.Runtime.run ~ranks (fun comm rank ->
        Shmpi.Comm.allreduce comm ~rank ~op:Float.max
          (float_of_int ((rank * 7) mod 5)))
  in
  Array.iter (fun v -> Alcotest.(check (float 0.0)) "max" 4.0 v) r.values

let test_rank_failure () =
  (* A raising rank must not leak the other domains: they all run to
     completion and the failure resurfaces with its rank attached. *)
  let finished = Array.make 4 false in
  match
    Shmpi.Runtime.run ~ranks:4 (fun _ rank ->
        if rank = 2 then failwith "boom";
        finished.(rank) <- true)
  with
  | _ -> Alcotest.fail "expected Rank_failure"
  | exception Shmpi.Runtime.Rank_failure { rank; failed; exn; _ } ->
      Alcotest.(check int) "failing rank" 2 rank;
      Alcotest.(check (list int)) "all failures collected" [ 2 ] failed;
      (match exn with
      | Failure m -> Alcotest.(check string) "original exception" "boom" m
      | e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e));
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Fmt.str "rank %d joined" r)
            true finished.(r))
        [ 0; 1; 3 ]

let test_rank_failure_multiple () =
  match
    Shmpi.Runtime.run ~ranks:3 (fun _ rank ->
        if rank <> 1 then failwith (string_of_int rank))
  with
  | _ -> Alcotest.fail "expected Rank_failure"
  | exception Shmpi.Runtime.Rank_failure { rank; failed; _ } ->
      Alcotest.(check int) "lowest failing rank" 0 rank;
      Alcotest.(check (list int)) "every failure" [ 0; 2 ] failed

let test_recv_timeout () =
  (* A receive starved by a dead sender must raise Timeout with routing
     context, not deadlock the join. *)
  match
    Shmpi.Runtime.run ~ranks:2 ~timeout_us:20_000.0 (fun comm rank ->
        if rank = 0 then ignore (Shmpi.Comm.recv comm ~dst:0 ~src:1))
  with
  | _ -> Alcotest.fail "expected Rank_failure"
  | exception Shmpi.Runtime.Rank_failure { rank; failed; exn; _ } ->
      Alcotest.(check int) "starved rank" 0 rank;
      Alcotest.(check (list int)) "only the starved rank" [ 0 ] failed;
      (match exn with
      | Shmpi.Comm.Timeout { rank; src; op; waited_us } ->
          Alcotest.(check int) "timeout rank" 0 rank;
          Alcotest.(check int) "awaited source" 1 src;
          Alcotest.(check string) "operation" "recv" op;
          Alcotest.(check bool) "waited at least the deadline" true
            (waited_us >= 20_000.0)
      | e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e))

let test_barrier_timeout () =
  (* A rank that never reaches the barrier must not strand the others. *)
  match
    Shmpi.Runtime.run ~ranks:3 ~timeout_us:20_000.0 (fun comm rank ->
        if rank <> 2 then Shmpi.Comm.barrier_r comm ~rank)
  with
  | _ -> Alcotest.fail "expected Rank_failure"
  | exception Shmpi.Runtime.Rank_failure { failed; exn; _ } ->
      Alcotest.(check (list int)) "both waiters time out" [ 0; 1 ] failed;
      (match exn with
      | Shmpi.Comm.Timeout { op; src; _ } ->
          Alcotest.(check string) "operation" "barrier" op;
          Alcotest.(check int) "barrier has no source" (-1) src
      | e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e))

let epilogues : (string * Wavefront_core.App_params.nonwavefront) list =
  [
    ("no_op", No_op);
    ("fixed", Fixed 3.0);
    ("allreduce", Allreduce { count = 2; msg_size = 16 });
    ("stencil", Stencil { wg_stencil = 0.01; halo_bytes_per_cell = 24.0 });
  ]

let killed_plan nonwavefront =
  let grid = Wgrid.Data_grid.v ~nx:6 ~ny:4 ~nz:4 in
  let pg = Wgrid.Proc_grid.v ~cols:2 ~rows:2 in
  let spec = Perturb.Spec.v ~failures:[ { rank = 1; after_tiles = 2 } ] () in
  Kernels.Sweep_exec.plan ~htile:2 ~nonwavefront ~perturb:spec grid pg

let test_killed_rank_raises () =
  (* Through the plain entry point, a spec-killed rank surfaces as a
     Rank_failure naming it, whatever the epilogue; the peers it starves
     time out instead of hanging. *)
  List.iter
    (fun (name, nwf) ->
      match Kernels.Sweep_exec.run ~timeout_us:50_000.0 (killed_plan nwf) with
      | _ -> Alcotest.failf "%s: expected Rank_failure" name
      | exception Shmpi.Runtime.Rank_failure { failed; _ } ->
          Alcotest.(check bool)
            (Fmt.str "%s: killed rank reported" name)
            true (List.mem 1 failed))
    epilogues

let test_killed_rank_degrades () =
  (* Through run_resilient the same failure degrades gracefully: the
     outcome names the killed rank and reports the partial frontier — the
     victim completed exactly after_tiles tiles, some peer got further. *)
  List.iter
    (fun (name, nwf) ->
      match
        Kernels.Sweep_exec.run_resilient ~timeout_us:50_000.0 (killed_plan nwf)
      with
      | Completed _ -> Alcotest.failf "%s: expected Degraded" name
      | Degraded { failed; frontier; _ } ->
          Alcotest.(check bool)
            (Fmt.str "%s: killed rank reported" name)
            true (List.mem 1 failed);
          Alcotest.(check int)
            (Fmt.str "%s: victim frontier" name)
            2 frontier.(1);
          Alcotest.(check bool)
            (Fmt.str "%s: a peer got further" name)
            true
            (frontier.(0) > 2 || frontier.(2) > 2 || frontier.(3) > 2))
    epilogues

let test_span_collection () =
  (* Per-rank tracers on a real run: a program span per rank, send/recv
     spans with routing args, and message edges recoverable from them. *)
  let ranks = 3 in
  let trs = Array.init ranks (fun _ -> Obs.Tracer.create ()) in
  let r =
    Shmpi.Runtime.run ~obs:trs ~ranks (fun comm rank ->
        if rank = 0 then Shmpi.Comm.send comm ~src:0 ~dst:1 [| 1.0; 2.0 |]
        else if rank = 1 then
          ignore (Shmpi.Comm.recv comm ~dst:1 ~src:0);
        Shmpi.Comm.barrier_r comm ~rank;
        Shmpi.Comm.allreduce comm ~rank ~op:( +. ) 1.0)
  in
  Array.iter
    (fun v -> Alcotest.(check (float 1e-9)) "allreduce result" 3.0 v)
    r.values;
  let spans = Obs.Tracer.merge trs in
  let named n =
    List.filter (fun (s : Obs.Span.t) -> s.name = n) spans
  in
  Alcotest.(check int) "one program span per rank" ranks
    (List.length (named "rank"));
  Alcotest.(check int) "one barrier span per rank" ranks
    (List.length (named "barrier"));
  Alcotest.(check int) "allreduce spans" ranks (List.length (named "allreduce"));
  let boundary_send =
    List.find
      (fun (s : Obs.Span.t) ->
        s.rank = 0 && Obs.Span.arg_int s "dst" = Some 1)
      (named "send")
  in
  Alcotest.(check (option int)) "send size arg" (Some 2)
    (Obs.Span.arg_int boundary_send "size");
  let boundary_recv =
    List.find
      (fun (s : Obs.Span.t) ->
        s.rank = 1 && Obs.Span.arg_int s "src" = Some 0)
      (named "recv")
  in
  (match Obs.Span.arg_float boundary_recv "wait" with
  | Some w -> Alcotest.(check bool) "wait is non-negative" true (w >= 0.0)
  | None -> Alcotest.fail "recv span has no wait arg");
  let edges = Obs.Critical_path.edges_of_spans spans in
  Alcotest.(check bool) "0->1 message edge reconstructed" true
    (List.exists
       (fun (e : Obs.Critical_path.edge) -> e.src = 0 && e.dst = 1)
       edges)

let test_pingpong_measures () =
  let t = Shmpi.Pingpong.half_round_trip ~rounds:50 ~size_bytes:256 () in
  Alcotest.(check bool) "positive and sane" true (t > 0.0 && t < 1e6)

let test_fit_platform_sane () =
  (* Fitting on synthetic noiseless data must recover it; fitting on real
     measurements must produce physical (positive) parameters. *)
  let synth = List.map (fun s -> (s, 4.0 +. (0.002 *. float_of_int s)))
      [ 64; 256; 1024; 4096; 16384 ]
  in
  let p = Shmpi.Pingpong.fit_platform synth in
  Alcotest.(check (float 1e-9)) "G" 0.002 p.offnode.g;
  Alcotest.(check (float 1e-9)) "o" 2.0 p.offnode.o

let suite =
  [
    ( "shmpi.channel",
      [
        Alcotest.test_case "FIFO" `Quick test_channel_fifo;
        Alcotest.test_case "payload copied" `Quick test_channel_copies;
      ] );
    ( "shmpi.comm",
      [
        Alcotest.test_case "ring pass" `Quick test_ring_pass;
        Alcotest.test_case "barrier" `Quick test_barrier;
        Alcotest.test_case "allreduce sum (any P)" `Quick test_allreduce_sum;
        Alcotest.test_case "allreduce max" `Quick test_allreduce_max;
      ] );
    ( "shmpi.runtime",
      [
        Alcotest.test_case "rank failure joins all" `Quick test_rank_failure;
        Alcotest.test_case "multiple failures collected" `Quick
          test_rank_failure_multiple;
        Alcotest.test_case "span collection" `Quick test_span_collection;
      ] );
    ( "shmpi.resilience",
      [
        Alcotest.test_case "recv timeout instead of deadlock" `Quick
          test_recv_timeout;
        Alcotest.test_case "barrier timeout" `Quick test_barrier_timeout;
        Alcotest.test_case "killed rank raises (every epilogue)" `Quick
          test_killed_rank_raises;
        Alcotest.test_case "killed rank degrades (every epilogue)" `Quick
          test_killed_rank_degrades;
      ] );
    ( "shmpi.pingpong",
      [
        Alcotest.test_case "measures" `Quick test_pingpong_measures;
        Alcotest.test_case "fit platform" `Quick test_fit_platform_sane;
      ] );
  ]
