let () =
  Alcotest.run "wavefront"
    (Suite_loggp.suite @ Suite_grid.suite @ Suite_sweeps.suite
   @ Suite_core.suite @ Suite_xtsim.suite @ Suite_shmpi.suite @ Suite_kernels.suite @ Suite_extensions.suite @ Suite_pipeline.suite @ Suite_golden.suite @ Suite_collectives.suite @ Suite_apps.suite @ Suite_tools.suite @ Suite_invariants.suite @ Suite_obs.suite @ Suite_run.suite @ Suite_perturb.suite
   @ Suite_timeline.suite @ Suite_bench_stats.suite @ Suite_recover.suite
   @ Suite_idlewave.suite @ Suite_batched.suite @ Suite_batched_bus.suite
  @ Suite_telemetry.suite @ Suite_serve.suite)
