(* Tests for the wave-resolved timeline analytics: golden reconstruction
   from hand-built spans (including a truncated trace), the cross-substrate
   identity between the event-level simulator and the timed dataflow
   backend, and the exactness of the wave-by-wave divergence attribution. *)

let span = Obs.Span.v

let wave w = [ (Obs.Timeline.wave_arg, Obs.Span.Int w) ]

(* Two ranks, two waves plus an epilogue, hand-built so every bucket of the
   decomposition is known exactly. *)
let golden_spans =
  [
    (* rank 0: wave 0 = compute 4; wave 1 = send (1 us busy) + compute 3 *)
    span ~cat:"compute" ~rank:0 ~start:0.0 ~dur:4.0 ~args:(wave 0) "compute";
    span ~cat:"comm" ~rank:0 ~start:4.0 ~dur:1.0
      ~args:(("dst", Obs.Span.Int 1) :: wave 1)
      "send";
    span ~cat:"compute" ~rank:0 ~start:5.0 ~dur:3.0 ~args:(wave 1) "compute";
    (* rank 1: wave 0 = recv with 2 us blocked inside a 3 us span;
       wave 1 = compute 4 after 1 us of idle gap; epilogue = 2 us halo *)
    span ~cat:"comm" ~rank:1 ~start:2.0 ~dur:3.0
      ~args:
        (("src", Obs.Span.Int 0) :: ("wait", Obs.Span.Float 2.0) :: wave 0)
      "recv";
    span ~cat:"compute" ~rank:1 ~start:6.0 ~dur:4.0 ~args:(wave 1) "compute";
    span ~cat:"comm" ~rank:1 ~start:10.0 ~dur:2.0
      ~args:(wave Obs.Timeline.epilogue_wave)
      "halo";
  ]

let test_golden_reconstruction () =
  let tl = Obs.Timeline.of_spans golden_spans in
  Alcotest.(check int) "ranks" 2 tl.ranks;
  Alcotest.(check int) "waves" 2 tl.waves;
  Alcotest.(check int) "columns = waves + epilogue" 3 (Obs.Timeline.columns tl);
  Alcotest.(check int) "epilogue column" 2 (Obs.Timeline.epilogue_column tl);
  Alcotest.(check int) "no drops recorded" 0 tl.dropped;
  let c00 = Obs.Timeline.cell tl ~rank:0 ~col:0 in
  Alcotest.(check (float 1e-9)) "r0 w0 compute" 4.0 c00.compute;
  Alcotest.(check (float 1e-9)) "r0 w0 idle" 0.0 c00.idle;
  let c01 = Obs.Timeline.cell tl ~rank:0 ~col:1 in
  Alcotest.(check (float 1e-9)) "r0 w1 send" 1.0 c01.send;
  Alcotest.(check (float 1e-9)) "r0 w1 compute" 3.0 c01.compute;
  let c10 = Obs.Timeline.cell tl ~rank:1 ~col:0 in
  Alcotest.(check (float 1e-9)) "r1 w0 wait" 2.0 c10.wait;
  Alcotest.(check (float 1e-9)) "r1 w0 recv (pure share)" 1.0 c10.recv;
  (* The window runs to the next column's first span, so the 1 us gap
     between the recv and the wave-1 compute is idle time of wave 0. *)
  Alcotest.(check (float 1e-9)) "r1 gap after recv is idle" 1.0 c10.idle;
  let c11 = Obs.Timeline.cell tl ~rank:1 ~col:1 in
  Alcotest.(check (float 1e-9)) "r1 w1 compute" 4.0 c11.compute;
  Alcotest.(check (float 1e-9)) "r1 w1 fully busy" 0.0 c11.idle;
  let ep = Obs.Timeline.cell tl ~rank:1 ~col:2 in
  Alcotest.(check (float 1e-9)) "r1 epilogue halo is other" 2.0 ep.other;
  (* The decomposition is exact: buckets sum to the window width in every
     cell, and the windows tile each rank's span of the run. *)
  for r = 0 to tl.ranks - 1 do
    for col = 0 to Obs.Timeline.columns tl - 1 do
      let c = Obs.Timeline.cell tl ~rank:r ~col in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "r%d c%d buckets tile the window" r col)
        (Obs.Timeline.cell_width c)
        (c.compute +. c.send +. c.recv +. c.wait +. c.other +. c.idle)
    done;
    let width =
      Array.fold_left
        (fun acc c -> acc +. Obs.Timeline.cell_width c)
        0.0 tl.cells.(r)
    in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "rank %d windows cover start..finish" r)
      (tl.finish.(r) -. tl.start.(r))
      width
  done

let test_untagged_anchoring () =
  (* An untagged span between two tagged ones lands in the wave of the
     anchor around it instead of being lost. *)
  let spans =
    [
      span ~cat:"compute" ~rank:0 ~start:0.0 ~dur:2.0 ~args:(wave 0) "compute";
      span ~cat:"comm" ~rank:0 ~start:2.0 ~dur:1.0 "send";
      span ~cat:"compute" ~rank:0 ~start:3.0 ~dur:2.0 ~args:(wave 1) "compute";
    ]
  in
  let tl = Obs.Timeline.of_spans spans in
  let total_send =
    Obs.Timeline.rank_total tl Obs.Timeline.Send 0
  in
  Alcotest.(check (float 1e-9)) "untagged send is still accounted" 1.0
    total_send;
  Alcotest.(check (float 1e-9)) "no idle invented" 0.0
    (Obs.Timeline.rank_total tl Obs.Timeline.Idle 0)

let test_dropped_carried () =
  let tl = Obs.Timeline.of_spans ~dropped:3 ~waves:4 golden_spans in
  Alcotest.(check int) "drop count carried into the timeline" 3 tl.dropped;
  Alcotest.(check int) "forced wave floor" 4 tl.waves;
  let json = Obs.Timeline.to_json tl in
  let has_sub ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "JSON carries the schema id" true
    (has_sub ~sub:Obs.Timeline.schema json);
  Alcotest.(check bool) "JSON carries the drop count" true
    (has_sub ~sub:"\"dropped\":3" json);
  (* CSV: a header plus one row per (rank, column). *)
  let csv = Obs.Timeline.to_csv tl in
  let rows =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' csv)
  in
  Alcotest.(check int) "CSV row count"
    (1 + (tl.ranks * Obs.Timeline.columns tl))
    (List.length rows)

let test_metric_names () =
  List.iter
    (fun m ->
      match Obs.Timeline.(metric_of_string (metric_name m)) with
      | Some m' -> Alcotest.(check bool) "round trips" true (m = m')
      | None -> Alcotest.failf "metric %s" (Obs.Timeline.metric_name m))
    Obs.Timeline.[ Compute; Send; Recv; Wait; Idle; Busy; Total ];
  Alcotest.(check bool) "unknown rejected" true
    (Obs.Timeline.metric_of_string "bogus" = None)

(* --- The cross-substrate identity (the PR's acceptance test) --- *)

let identity_report () =
  let app =
    { (Apps.Sweep3d.params (Wgrid.Data_grid.cube 16)) with
      Wavefront_core.App_params.nonwavefront = Wavefront_core.App_params.No_op
    }
  in
  let cfg =
    Wavefront_core.Plugplay.config ~cmp:Wgrid.Cmp.single_core Loggp.Params.xt4
      ~cores:4
  in
  Harness.Timeline_report.run ~model_bus:false cfg app

let test_substrate_identity () =
  let r = identity_report () in
  (* Same spec, two substrates (event-level simulator vs the timed dataflow
     fibers): identical rank x wave decompositions to float precision. *)
  Alcotest.(check int) "same ranks" r.observed.ranks r.model.ranks;
  Alcotest.(check int) "same waves" r.observed.waves r.model.waves;
  Alcotest.(check bool) "timelines coincide" true
    (Obs.Timeline.equal ~tol:1e-6 r.observed r.model);
  Alcotest.(check int) "no spans dropped (sim)" 0 r.observed.dropped;
  Alcotest.(check int) "no spans dropped (dataflow)" 0 r.model.dropped

let test_divergence_exact () =
  let r = identity_report () in
  let d = r.divergence in
  Alcotest.(check (float 1e-9)) "gap = t_iteration - elapsed"
    (d.t_iteration -. d.elapsed) d.gap;
  (* The attribution is exact by construction: folding + ramp + per-bucket
     deltas + tail recover the whole model error. *)
  Alcotest.(check (float 1e-6)) "attributed parts sum to the gap" d.gap
    d.attributed;
  let parts =
    d.folding +. d.ramp +. d.tail
    +. List.fold_left (fun acc (_, v) -> acc +. v) 0.0 d.terms
  in
  Alcotest.(check (float 1e-6)) "terms re-sum" d.attributed parts;
  (* With bus modelling off the substrates coincide, so every per-bucket
     delta vanishes and the gap is pure pipeline folding. *)
  List.iter
    (fun (name, v) ->
      Alcotest.(check (float 1e-6)) (name ^ " delta vanishes") 0.0 v)
    d.terms;
  Alcotest.(check (float 1e-6)) "ramp vanishes" 0.0 d.ramp;
  Alcotest.(check (float 1e-6)) "tail vanishes" 0.0 d.tail

let test_report_documents () =
  let r = identity_report () in
  let json = Harness.Timeline_report.to_json r in
  let has_sub ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report schema" true
    (has_sub ~sub:"wavefront-timeline-report/v1" json);
  Alcotest.(check bool) "embeds the timeline schema" true
    (has_sub ~sub:Obs.Timeline.schema json);
  let csv = Harness.Timeline_report.to_csv r in
  Alcotest.(check bool) "CSV has observed and model sections" true
    (has_sub ~sub:"# observed" csv && has_sub ~sub:"# model" csv);
  (* Rendering never raises, whatever the metric. *)
  List.iter
    (fun metric ->
      ignore (Fmt.str "%a" (Harness.Timeline_report.pp ~metric) r))
    Obs.Timeline.[ Compute; Send; Recv; Wait; Idle; Busy; Total ]

let suite =
  [
    ( "timeline.reconstruct",
      [
        Alcotest.test_case "golden decomposition" `Quick
          test_golden_reconstruction;
        Alcotest.test_case "untagged spans anchored" `Quick
          test_untagged_anchoring;
        Alcotest.test_case "dropped spans carried" `Quick test_dropped_carried;
        Alcotest.test_case "metric names" `Quick test_metric_names;
      ] );
    ( "timeline.identity",
      [
        Alcotest.test_case "xtsim = timed dataflow" `Quick
          test_substrate_identity;
        Alcotest.test_case "divergence attribution exact" `Quick
          test_divergence_exact;
        Alcotest.test_case "JSON and CSV documents" `Quick
          test_report_documents;
      ] );
  ]
