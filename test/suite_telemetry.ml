(* Tests for the serving-path telemetry: the calibrated allocation
   harness (a truly allocation-free closure measures exactly 0.0, which
   is what lets these tests pin with [=] rather than a tolerance), the
   zero-allocation contract of the closed-form evaluator and the batched
   engine's steady-state step, the Eval/iteration bit-identity, and the
   run ledger's JSONL round trip and cross-run comparison. *)

open Wavefront_core

(* --- Obs.Runtime.measure_alloc --- *)

(* In-place float-array arithmetic is the allocation-free baseline under
   classic ocamlopt: stores unbox, reads of stored fields reuse boxes. *)
let test_alloc_zero_closure () =
  let acc = [| 0.0 |] in
  let a =
    Obs.Runtime.measure_alloc ~iterations:500 (fun () ->
        acc.(0) <- acc.(0) +. 1.0)
  in
  Alcotest.(check (float 0.0)) "calibrated to exactly zero" 0.0
    a.minor_words_per_iter;
  Alcotest.(check int) "iterations recorded" 500 a.iterations

let test_alloc_counts_boxing () =
  let a =
    Obs.Runtime.measure_alloc ~iterations:500 (fun () ->
        ignore (Sys.opaque_identity (ref (Sys.opaque_identity 0))))
  in
  Alcotest.(check bool)
    (Printf.sprintf "allocating closure measured %.1f words/iter"
       a.minor_words_per_iter)
    true
    (a.minor_words_per_iter >= 2.0)

(* --- Plugplay.Eval: the allocation-free closed-form evaluator --- *)

let eval_cases =
  [
    ("sweep3d p256", Apps.Sweep3d.params (Wgrid.Data_grid.cube 64), 256, 2);
    ("lu p64", Apps.Lu.params (Wgrid.Data_grid.cube 48), 64, 4);
    ("chimaera p1024", Apps.Chimaera.params (Wgrid.Data_grid.cube 96), 1024, 2);
  ]

let cfg_of ~cores ~cpn =
  let platform = Loggp.Params.with_cores_per_node Loggp.Params.xt4 cpn in
  Plugplay.config ~cmp:(Wgrid.Cmp.of_cores_per_node cpn) platform ~cores

(* [Eval.run] re-executes the full pipeline-fill recurrence; it must
   agree with the allocating [iteration] to the last bit on every
   field, not approximately. *)
let test_eval_matches_iteration () =
  List.iter
    (fun (name, app, cores, cpn) ->
      let cfg = cfg_of ~cores ~cpn in
      let reference = Plugplay.iteration app cfg in
      let e = Plugplay.Eval.create app cfg in
      Plugplay.Eval.run e;
      Alcotest.(check (float 0.0))
        (name ^ ": t_iteration bit-identical")
        reference.t_iteration
        (Plugplay.Eval.t_iteration e);
      Alcotest.(check (float 0.0))
        (name ^ ": t_diagfill bit-identical")
        reference.t_diagfill
        (Plugplay.Eval.t_diagfill e);
      Alcotest.(check (float 0.0))
        (name ^ ": t_fullfill bit-identical")
        reference.t_fullfill
        (Plugplay.Eval.t_fullfill e);
      let r = Plugplay.Eval.result e in
      Alcotest.(check (float 0.0))
        (name ^ ": full result t_stack")
        reference.t_stack r.t_stack)
    eval_cases

(* Repeated runs of one evaluator stay stable (the scratch really is
   reset, not accumulated into). *)
let test_eval_rerun_stable () =
  let _, app, cores, cpn = List.hd eval_cases in
  let cfg = cfg_of ~cores ~cpn in
  let e = Plugplay.Eval.create app cfg in
  Plugplay.Eval.run e;
  let first = Plugplay.Eval.t_iteration e in
  for _ = 1 to 10 do
    Plugplay.Eval.run e
  done;
  Alcotest.(check (float 0.0)) "10 reruns identical" first
    (Plugplay.Eval.t_iteration e)

(* The serving contract: exactly 0 minor words per evaluation, pinned
   with [=] — the CLI gate (`wavefront telemetry --assert-zero-alloc`)
   enforces the same number, this is its in-tree twin. *)
let test_eval_zero_alloc () =
  List.iter
    (fun (name, app, cores, cpn) ->
      let cfg = cfg_of ~cores ~cpn in
      let e = Plugplay.Eval.create app cfg in
      let a =
        Obs.Runtime.measure_alloc ~iterations:300 (fun () ->
            Plugplay.Eval.run e)
      in
      Alcotest.(check (float 0.0))
        (name ^ ": Eval.run allocates 0 minor words")
        0.0 a.minor_words_per_iter)
    eval_cases

(* --- Batched.Steady: the engine's steady-state unit of work --- *)

let steady_probe () =
  let app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 32) in
  let pg = Wgrid.Proc_grid.of_cores 64 in
  let costs =
    Wrun.Costs.loggp ~model_bus:false ~cmp:Wgrid.Cmp.single_core
      Loggp.Params.xt4 pg app
  in
  Wrun.Batched.Steady.probe ~costs pg app

let test_steady_step_zero_alloc () =
  let p = steady_probe () in
  let a =
    Obs.Runtime.measure_alloc ~iterations:1000 (fun () ->
        Wrun.Batched.Steady.step p)
  in
  Alcotest.(check (float 0.0)) "Steady.step allocates 0 minor words" 0.0
    a.minor_words_per_iter

(* The step is not a no-op: the probe rank's virtual clock strictly
   increases and its message count grows by the four tile-loop
   transfers, every step. *)
let test_steady_step_advances () =
  let p = steady_probe () in
  let before_msgs = Wrun.Batched.Steady.messages p in
  let last = ref (Wrun.Batched.Steady.clock p) in
  for i = 1 to 50 do
    Wrun.Batched.Steady.step p;
    let now = Wrun.Batched.Steady.clock p in
    Alcotest.(check bool)
      (Printf.sprintf "clock strictly increased at step %d" i)
      true (now > !last);
    last := now
  done;
  Alcotest.(check int) "4 messages per step (2 recv + 2 send)"
    (before_msgs + 200)
    (Wrun.Batched.Steady.messages p)

let test_steady_probe_needs_3x3 () =
  let app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 16) in
  let pg = Wgrid.Proc_grid.v ~cols:2 ~rows:2 in
  let costs =
    Wrun.Costs.loggp ~model_bus:false ~cmp:Wgrid.Cmp.single_core
      Loggp.Params.xt4 pg app
  in
  Alcotest.check_raises "2x2 grid rejected"
    (Invalid_argument "Batched.Steady.probe: the grid must be at least 3x3")
    (fun () -> ignore (Wrun.Batched.Steady.probe ~costs pg app))

(* --- Obs.Ledger: JSONL round trip --- *)

let record ?(metrics = [ ("per_iteration", 14175.25); ("completed", 1.0) ])
    ?(duration_s = 0.25) () =
  Obs.Ledger.v ~engine:"batched" ~config_hash:"abcdef012345"
    ~spec_digest:"d41d8cd98f00b204e9800998ecf8427e" ~git:"ef44fa2-dirty"
    ~metrics
    ~runtime:[ ("runtime.minor_words", 1234.0); ("runtime.wall_s", 0.25) ]
    ~timestamp:1754732000.5 ~duration_s "simulate"

let test_ledger_json_roundtrip () =
  let r = record () in
  let line = Obs.Ledger.to_json_line r in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  match Obs.Ledger.of_json_line line with
  | Error m -> Alcotest.fail ("round trip failed: " ^ m)
  | Ok r' ->
      Alcotest.(check string) "subcommand" r.subcommand r'.subcommand;
      Alcotest.(check string) "engine" r.engine r'.engine;
      Alcotest.(check string) "config_hash" r.config_hash r'.config_hash;
      Alcotest.(check string) "spec_digest" r.spec_digest r'.spec_digest;
      Alcotest.(check string) "git" r.git r'.git;
      Alcotest.(check (float 0.0)) "timestamp" r.timestamp r'.timestamp;
      Alcotest.(check (float 0.0)) "duration" r.duration_s r'.duration_s;
      Alcotest.(check (list (pair string (float 0.0)))) "metrics" r.metrics
        r'.metrics;
      Alcotest.(check (list (pair string (float 0.0)))) "runtime" r.runtime
        r'.runtime

let with_temp_ledger f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wavefront-ledger-test-%d.jsonl" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_ledger_append_load () =
  with_temp_ledger @@ fun path ->
  (* A missing ledger reads as empty, not as an error. *)
  (match Obs.Ledger.load ~path () with
  | Ok ([], 0) -> ()
  | Ok _ -> Alcotest.fail "missing ledger not empty"
  | Error m -> Alcotest.fail m);
  (match Obs.Ledger.append ~path (record ()) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Obs.Ledger.append ~path (record ~duration_s:0.5 ()) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* A corrupt line is skipped and counted, never fatal. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "not json at all\n";
  close_out oc;
  match Obs.Ledger.load ~path () with
  | Error m -> Alcotest.fail m
  | Ok (records, skipped) ->
      Alcotest.(check int) "two records survive" 2 (List.length records);
      Alcotest.(check int) "one line skipped" 1 skipped;
      Alcotest.(check (float 0.0)) "order preserved" 0.5
        (List.nth records 1).Obs.Ledger.duration_s

(* --- Obs.Ledger.compare_runs --- *)

let test_compare_identical_clean () =
  let diffs = Obs.Ledger.compare_runs (record ()) (record ()) in
  Alcotest.(check (list string)) "no regressions" []
    (List.map
       (fun (d : Obs.Ledger.diff) -> d.name)
       (Obs.Ledger.regressions diffs));
  List.iter
    (fun (d : Obs.Ledger.diff) ->
      Alcotest.(check bool) (d.name ^ " unchanged") true
        (d.verdict = Obs.Ledger.Unchanged))
    diffs

let test_compare_flags_regression () =
  (* per_iteration up 10% regresses (lower is better); completed down
     regresses (the one higher-is-better family); both beyond the 5%
     default threshold. *)
  let base = record () in
  let slow =
    record ~metrics:[ ("per_iteration", 15592.775); ("completed", 0.0) ] ()
  in
  let diffs = Obs.Ledger.compare_runs base slow in
  let verdict name =
    match List.find_opt (fun (d : Obs.Ledger.diff) -> d.name = name) diffs with
    | Some d -> d.verdict
    | None -> Alcotest.fail (name ^ " missing from diff")
  in
  Alcotest.(check bool) "slower per_iteration regresses" true
    (verdict "per_iteration" = Obs.Ledger.Regression);
  Alcotest.(check bool) "lost completion regresses" true
    (verdict "completed" = Obs.Ledger.Regression);
  Alcotest.(check int) "both flagged" 2
    (List.length (Obs.Ledger.regressions diffs));
  (* The same delta in the other direction is an improvement, and a
     sub-threshold move stays unchanged. *)
  let diffs' = Obs.Ledger.compare_runs slow base in
  Alcotest.(check bool) "faster per_iteration improves" true
    ((List.find (fun (d : Obs.Ledger.diff) -> d.name = "per_iteration") diffs')
       .verdict = Obs.Ledger.Improvement);
  let tiny =
    record ~metrics:[ ("per_iteration", 14316.0); ("completed", 1.0) ] ()
  in
  Alcotest.(check int) "a 1% move is noise" 0
    (List.length (Obs.Ledger.regressions (Obs.Ledger.compare_runs base tiny)))

let test_compare_one_sided_metrics () =
  let base = record ~metrics:[ ("per_iteration", 100.0) ] () in
  let current = record ~metrics:[ ("events", 42.0) ] () in
  let diffs = Obs.Ledger.compare_runs base current in
  let verdict name =
    (List.find (fun (d : Obs.Ledger.diff) -> d.name = name) diffs).verdict
  in
  Alcotest.(check bool) "metric only in base" true
    (verdict "per_iteration" = Obs.Ledger.Only_base);
  Alcotest.(check bool) "metric only in current" true
    (verdict "events" = Obs.Ledger.Only_current);
  Alcotest.(check int) "one-sided metrics are not regressions" 0
    (List.length (Obs.Ledger.regressions diffs))

let suite =
  [
    ( "telemetry.alloc",
      [
        Alcotest.test_case "zero closure measures exactly 0" `Quick
          test_alloc_zero_closure;
        Alcotest.test_case "boxing closure measured" `Quick
          test_alloc_counts_boxing;
      ] );
    ( "telemetry.eval",
      [
        Alcotest.test_case "Eval = iteration, bit for bit" `Quick
          test_eval_matches_iteration;
        Alcotest.test_case "rerun stability" `Quick test_eval_rerun_stable;
        Alcotest.test_case "zero-alloc contract" `Quick test_eval_zero_alloc;
      ] );
    ( "telemetry.steady",
      [
        Alcotest.test_case "step zero-alloc contract" `Quick
          test_steady_step_zero_alloc;
        Alcotest.test_case "clock advances, messages count" `Quick
          test_steady_step_advances;
        Alcotest.test_case "probe needs a 3x3 grid" `Quick
          test_steady_probe_needs_3x3;
      ] );
    ( "telemetry.ledger",
      [
        Alcotest.test_case "JSONL round trip" `Quick
          test_ledger_json_roundtrip;
        Alcotest.test_case "append / load / corrupt line" `Quick
          test_ledger_append_load;
        Alcotest.test_case "identical runs clean" `Quick
          test_compare_identical_clean;
        Alcotest.test_case "synthetic regression flagged" `Quick
          test_compare_flags_regression;
        Alcotest.test_case "one-sided metrics" `Quick
          test_compare_one_sided_metrics;
      ] );
  ]
