(* Tests for the idle-wave analytics: the pinned single-pulse chain
   scenario where the analytic model, the event-level simulator and the
   timed dataflow backend agree exactly (and the real kernel within a
   busy-wait tolerance), QCheck properties for origin recovery and speed
   reconciliation, detector edge cases, and the Chrome-trace category
   tagging of injected spans. *)

open Wavefront_core

(* --- The pinned scenario: a pulse on a chain of ranks --- *)

(* A 1-D pipeline: one Up sweep over a cols x 1 processor grid, one tile
   per wave, uniform work, no epilogue. Interior ranks tie exactly, so an
   injected pulse propagates undamped at exactly one LogGP hop cost per
   rank — the silent-system limit of the idle-wave model. *)
let chain ?(ranks = 8) ?(nz = 16) ?(wg = 1.0) () =
  let schedule =
    Sweeps.Schedule.v [ Sweeps.Schedule.sweep Wgrid.Proc_grid.C11 `Up ]
  in
  let grid = Wgrid.Data_grid.v ~nx:(2 * ranks) ~ny:2 ~nz in
  let app =
    Apps.Custom.params ~name:"chain" ~schedule ~htile:1.0
      ~nonwavefront:App_params.No_op ~wg grid
  in
  let cfg =
    Plugplay.config ~cmp:Wgrid.Cmp.single_core
      ~pgrid:(Wgrid.Proc_grid.v ~cols:ranks ~rows:1)
      Loggp.Params.xt4 ~cores:ranks
  in
  (cfg, app)

let pulse ~rank ~wave delay =
  Perturb.Spec.v
    ~pulses:[ ({ rank; wave; delay } : Perturb.Spec.pulse) ]
    ()

let run_chain ?ranks ?nz ?wg ?real spec =
  let cfg, app = chain ?ranks ?nz ?wg () in
  Harness.Idlewave_report.run ?real ~model_bus:false cfg app spec

let test_pinned_single_pulse () =
  let r = run_chain (pulse ~rank:3 ~wave:8 500.0) in
  (* The two deterministic substrates coincide cell for cell even under
     the pulse, so one detector result speaks for both. *)
  Alcotest.(check bool) "sim = timed dataflow under pulse" true r.identity;
  Alcotest.(check bool) "dataflow detector agrees on origin" true
    (r.sim.origin = r.dataflow.origin);
  (* Origin recovered exactly, amplitude to float precision. *)
  Alcotest.(check (option (pair int int))) "origin (rank, wave)"
    (Some (3, 8)) r.sim.origin;
  Alcotest.(check (float 1e-6)) "origin amplitude = injected delta" 500.0
    r.sim.delta;
  (* Every downstream rank is hit at the injected wave with the full,
     undamped amplitude — no decay on a silent system. *)
  let downstream =
    List.filter (fun (f : Obs.Idle_wave.front) -> f.rank > 3) r.sim.fronts
  in
  Alcotest.(check (list int)) "downstream fronts at ranks 4..7" [ 4; 5; 6; 7 ]
    (List.map (fun (f : Obs.Idle_wave.front) -> f.rank) downstream);
  List.iter
    (fun (f : Obs.Idle_wave.front) ->
      Alcotest.(check int)
        (Printf.sprintf "rank %d front leads at the injected wave" f.rank)
        8 f.lead_wave;
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "rank %d amplitude undamped" f.rank)
        500.0 f.amplitude)
    downstream;
  (* The fitted propagation speed is the analytic LogGP hop cost, on both
     deterministic substrates, to float precision. *)
  let im =
    match r.model with
    | Some im -> im
    | None -> Alcotest.fail "spec has a pulse: analytic model expected"
  in
  Alcotest.(check (pair int int)) "analytic origin" (3, 8)
    (Perturb.Idle_model.origin im);
  let hop = Perturb.Idle_model.hop_cost im in
  let fit d =
    match Harness.Idlewave_report.main_fit d with
    | Some f -> f
    | None -> Alcotest.fail "expected a propagation fit"
  in
  Alcotest.(check int) "fit uses the interior downstream fronts" 3
    (fit r.sim).points;
  Alcotest.(check (float 1e-6)) "sim speed = analytic hop cost" hop
    (fit r.sim).hop_latency;
  Alcotest.(check (float 1e-6)) "dataflow speed = analytic hop cost" hop
    (fit r.dataflow).hop_latency;
  Alcotest.(check (float 1e-9)) "no decay on a silent system" 0.0
    (fit r.sim).decay;
  (match Harness.Idlewave_report.speed_error r with
  | Some e ->
      Alcotest.(check bool) "speed error below float-noise" true (e < 1e-9)
  | None -> Alcotest.fail "speed error expected");
  Alcotest.(check int) "exit clean even when strict" 0
    (Harness.Idlewave_report.exit_status ~fail_on_mismatch:true r)

let test_zero_spec_no_fronts () =
  let r = run_chain Perturb.Spec.zero in
  Alcotest.(check bool) "identity holds on the control pair" true r.identity;
  Alcotest.(check (option (pair int int))) "no origin" None r.sim.origin;
  Alcotest.(check int) "no fronts" 0 (List.length r.sim.fronts);
  Alcotest.(check bool) "no analytic model without a pulse" true
    (r.model = None);
  Alcotest.(check int) "exit clean" 0
    (Harness.Idlewave_report.exit_status ~fail_on_mismatch:true r)

(* Acceptance: a larger injected delta never measures smaller and is
   never detected later. *)
let test_monotone_in_delta () =
  let runs =
    List.map (fun d -> (d, run_chain (pulse ~rank:2 ~wave:8 d)))
      [ 100.0; 300.0; 900.0 ]
  in
  let onset_of r =
    match
      List.find_opt
        (fun (f : Obs.Idle_wave.front) -> f.rank = 3)
        r.Harness.Idlewave_report.sim.fronts
    with
    | Some f -> f.onset
    | None -> Alcotest.fail "front at the neighbor rank expected"
  in
  ignore
    (List.fold_left
       (fun prev (d, r) ->
         Alcotest.(check (float 1e-6))
           (Printf.sprintf "amplitude %.0f measured exactly" d)
           d r.Harness.Idlewave_report.sim.delta;
         (match prev with
         | None -> ()
         | Some (pd, pa, po) ->
             Alcotest.(check bool)
               (Printf.sprintf "amplitude grows %.0f -> %.0f" pd d)
               true
               (r.Harness.Idlewave_report.sim.delta > pa);
             Alcotest.(check bool)
               (Printf.sprintf "detection no later %.0f -> %.0f" pd d)
               true
               (onset_of r <= po +. 1e-6));
         Some (d, r.Harness.Idlewave_report.sim.delta, onset_of r))
       None runs)

(* The real shared-memory kernel: origin recovered exactly, amplitude
   within the busy-wait tolerance of the injected delta. The run puts
   one OCaml domain per rank; when the host has fewer cores than ranks
   the domains timeshare and preemption smears wall-clock waits by more
   than the injected pulse, so the exact assertions only run where they
   are meaningful — on a starved host the test still requires a
   detected wave, just not its precise placement. *)
let test_real_within_tolerance () =
  let ranks = 4 in
  let r =
    run_chain ~ranks ~nz:8 ~wg:20.0 ~real:true (pulse ~rank:1 ~wave:4 500.0)
  in
  let real =
    match r.real with
    | Some d -> d
    | None -> Alcotest.fail "real detector expected"
  in
  let cores = Domain.recommended_domain_count () in
  if cores >= ranks then begin
    Alcotest.(check (option (pair int int))) "real origin exact" (Some (1, 4))
      real.origin;
    Alcotest.(check bool)
      (Printf.sprintf "real amplitude %.1f within tolerance of 500" real.delta)
      true
      (real.delta > 250.0 && real.delta < 1000.0)
  end
  else begin
    Printf.printf
      "suite_idlewave: %d core(s) < %d ranks — domains timeshare, wall \
       clocks are unreliable; checking detection only, not exact origin\n"
      cores ranks;
    Alcotest.(check bool) "real wave detected" true (real.origin <> None);
    Alcotest.(check bool)
      (Printf.sprintf "real amplitude %.1f positive" real.delta)
      true (real.delta > 0.0)
  end

(* --- QCheck properties --- *)

let prop_single_pulse_recovered =
  let gen =
    QCheck.Gen.(
      map
        (fun (((ranks, rank), wave), delay) ->
          (* keep >= 2 interior downstream ranks so the speed fit exists
             (the boundary rank is excluded from the fit) *)
          (ranks, min rank (ranks - 4), wave, delay))
        (pair
           (pair (pair (int_range 5 9) (int_range 1 6)) (int_range 4 8))
           (float_range 100.0 1500.0)))
  in
  let print (ranks, rank, wave, delay) =
    Printf.sprintf "ranks=%d pulse=%d:%d:%.1f" ranks rank wave delay
  in
  QCheck.Test.make ~count:8
    ~name:"single pulse: origin exact, speed matches the analytic model"
    (QCheck.make ~print gen)
    (fun (ranks, rank, wave, delay) ->
      let r = run_chain ~ranks ~nz:12 (pulse ~rank ~wave delay) in
      let im = Option.get r.model in
      let hop = Perturb.Idle_model.hop_cost im in
      r.identity
      && r.sim.origin = Some (rank, wave)
      && Float.abs (r.sim.delta -. delay) < 1e-6
      && (match Harness.Idlewave_report.main_fit r.sim with
         | Some f -> Float.abs (f.hop_latency -. hop) /. hop < 1e-6
         | None -> false))

let prop_zero_spec_silent =
  QCheck.Test.make ~count:6 ~name:"zero spec: no origin, no fronts"
    (QCheck.make
       ~print:(fun (ranks, nz) -> Printf.sprintf "ranks=%d nz=%d" ranks nz)
       QCheck.Gen.(pair (int_range 3 8) (int_range 4 10)))
    (fun (ranks, nz) ->
      let r = run_chain ~ranks ~nz Perturb.Spec.zero in
      r.sim.origin = None && r.sim.fronts = [] && r.dataflow.fronts = [])

(* --- Detector edge cases --- *)

let test_empty_timeline () =
  let tl = Obs.Timeline.of_spans [] in
  Alcotest.(check int) "no ranks" 0 tl.ranks;
  let d = Obs.Idle_wave.detect tl in
  Alcotest.(check (option (pair int int))) "no origin" None d.origin;
  Alcotest.(check int) "no fronts" 0 (List.length d.fronts);
  (* Rendering and export of the degenerate report stay well-defined. *)
  let e = Obs.Timeline.empty ~waves:5 () in
  Alcotest.(check int) "forced waves kept" 5 e.waves;
  ignore (Fmt.str "%a" (fun ppf -> Obs.Timeline.render ppf) tl);
  ignore (Obs.Timeline.to_json tl);
  ignore (Obs.Timeline.to_csv tl)

let test_render_mark_overlay () =
  let r = run_chain (pulse ~rank:3 ~wave:8 500.0) in
  let txt =
    Fmt.str "%a"
      (fun ppf ->
        Obs.Timeline.render ~metric:Obs.Timeline.Wait
          ~mark:(fun ~rank ~col -> Obs.Idle_wave.mark r.sim ~rank ~col)
          ppf)
      r.timeline
  in
  Alcotest.(check bool) "origin marked" true (String.contains txt 'O');
  Alcotest.(check bool) "fronts marked" true (String.contains txt '>')

(* --- Chrome-trace categories for injected spans --- *)

let test_chrome_trace_categories () =
  let span ?(cat = "") name =
    Obs.Span.v ~cat ~rank:0 ~start:0.0 ~dur:1.0 name
  in
  let json spans =
    Obs.Chrome_trace.to_json [ { pid = 1; name = "sim"; spans } ]
  in
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "perturb.* leads with the perturb category" true
    (contains
       (json [ span ~cat:"compute" "perturb.pulse" ])
       {|"cat":"perturb,compute"|});
  Alcotest.(check bool) "recover.* tagged even without a producer cat" true
    (contains (json [ span "recover.checkpoint" ]) {|"cat":"recover"|});
  Alcotest.(check bool) "ordinary spans keep their category" true
    (contains (json [ span ~cat:"compute" "compute" ]) {|"cat":"compute"|})

(* --- The new spec clauses --- *)

let test_spec_clauses () =
  match Perturb.Spec.of_string "pulse=3:40:500 periodic=16:120 collnoise=80"
  with
  | Error (`Msg m) -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check int) "one pulse" 1 (List.length s.pulses);
      let p = List.hd s.pulses in
      Alcotest.(check int) "pulse rank" 3 p.rank;
      Alcotest.(check int) "pulse wave" 40 p.wave;
      Alcotest.(check (float 1e-9)) "pulse delay" 500.0 p.delay;
      (match s.periodic with
      | Some { period; amplitude } ->
          Alcotest.(check int) "periodic period" 16 period;
          Alcotest.(check (float 1e-9)) "periodic amplitude" 120.0 amplitude
      | None -> Alcotest.fail "periodic clause expected");
      Alcotest.(check (float 1e-9)) "collnoise" 80.0 s.coll_noise;
      Alcotest.(check bool) "not the zero spec" false (Perturb.Spec.is_zero s);
      (* Malformed clauses are rejected, not ignored. *)
      List.iter
        (fun bad ->
          match Perturb.Spec.of_string bad with
          | Ok _ -> Alcotest.failf "accepted %S" bad
          | Error _ -> ())
        [ "pulse=3:40"; "pulse=-1:4:10"; "periodic=0:50"; "collnoise=-1" ]

let suite =
  [
    ( "idlewave.pinned",
      [
        Alcotest.test_case "single pulse on a chain: all substrates agree"
          `Quick test_pinned_single_pulse;
        Alcotest.test_case "zero spec detects nothing" `Quick
          test_zero_spec_no_fronts;
        Alcotest.test_case "monotone in the injected delta" `Quick
          test_monotone_in_delta;
        Alcotest.test_case "real kernel within tolerance" `Slow
          test_real_within_tolerance;
      ] );
    ( "idlewave.properties",
      [
        QCheck_alcotest.to_alcotest prop_single_pulse_recovered;
        QCheck_alcotest.to_alcotest prop_zero_spec_silent;
      ] );
    ( "idlewave.detector",
      [
        Alcotest.test_case "empty timeline degrades gracefully" `Quick
          test_empty_timeline;
        Alcotest.test_case "front overlay on the heatmap" `Quick
          test_render_mark_overlay;
      ] );
    ( "idlewave.satellites",
      [
        Alcotest.test_case "chrome trace categories" `Quick
          test_chrome_trace_categories;
        Alcotest.test_case "spec clauses parse and validate" `Quick
          test_spec_clauses;
      ] );
  ]
