(* Tests for the serving layer: QCheck contracts of the bounded
   admission queue, the circuit breaker (driven by a fake clock) and the
   deadline arithmetic; in-process HTTP integration against a real
   Server.start on an ephemeral port (golden predict vs the closed-form
   model, the 400/404/405/408/413/429/504 defense matrix, breaker
   degradation and recovery); a seeded mini-slam whose invariants must
   all hold; and the ledger's torn-trailing-line crash-safety contract,
   end to end through `wavefront runs list`. *)

open Wavefront_core

module Queue_ = Serve.Bounded_queue

(* --- Bounded_queue: QCheck contracts --------------------------------- *)

(* Single-threaded op-sequence model: shed iff full, length never above
   capacity, pushed/shed counters reconcile with the queue content. *)
let prop_queue_contracts =
  QCheck.Test.make ~name:"queue sheds iff full, never exceeds capacity"
    ~count:200
    QCheck.(pair (int_range 1 8) (list bool))
    (fun (capacity, ops) ->
      let q = Queue_.create ~capacity in
      let popped = ref 0 in
      List.iter
        (fun push ->
          if push then begin
            let was_full = Queue_.length q = capacity in
            match Queue_.try_push q () with
            | `Queued ->
                if was_full then
                  QCheck.Test.fail_report "queued while full"
            | `Full ->
                if not was_full then
                  QCheck.Test.fail_report "shed while not full"
            | `Closed -> QCheck.Test.fail_report "closed before close"
          end
          else if Queue_.length q > 0 then begin
            (match Queue_.pop q with
            | Some () -> incr popped
            | None -> QCheck.Test.fail_report "pop lost an item");
          end;
          if Queue_.length q > capacity then
            QCheck.Test.fail_report "length above capacity")
        ops;
      (* Counters reconcile: everything accepted is either popped or
         still queued. *)
      Queue_.pushed q = !popped + Queue_.length q)

let prop_queue_close_drains =
  QCheck.Test.make ~name:"close refuses pushes but drains the backlog"
    ~count:100
    QCheck.(int_range 1 6)
    (fun n ->
      let q = Queue_.create ~capacity:8 in
      for i = 1 to n do
        match Queue_.try_push q i with
        | `Queued -> ()
        | _ -> QCheck.Test.fail_report "push refused below capacity"
      done;
      Queue_.close q;
      (match Queue_.try_push q 99 with
      | `Closed -> ()
      | _ -> QCheck.Test.fail_report "push accepted after close");
      let drained = ref [] in
      let rec drain () =
        match Queue_.pop q with
        | Some x ->
            drained := x :: !drained;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !drained = List.init n (fun i -> i + 1))

let test_queue_pop_blocks_until_push () =
  let q = Queue_.create ~capacity:4 in
  let d = Domain.spawn (fun () -> Queue_.pop q) in
  Unix.sleepf 0.05;
  (match Queue_.try_push q 7 with
  | `Queued -> ()
  | _ -> Alcotest.fail "push refused");
  Alcotest.(check (option int)) "blocked popper woke with the item" (Some 7)
    (Domain.join d);
  let d2 = Domain.spawn (fun () -> Queue_.pop q) in
  Unix.sleepf 0.05;
  Queue_.close q;
  Alcotest.(check (option int)) "close wakes blocked popper with None" None
    (Domain.join d2)

(* --- Breaker: fake-clock state machine -------------------------------- *)

let breaker () =
  Serve.Breaker.create ~window:8 ~min_calls:4 ~failure_threshold:0.5
    ~cooldown_s:10.0 ()

let test_breaker_lifecycle () =
  let b = breaker () in
  let module B = Serve.Breaker in
  (* Closed: calls flow. *)
  for _ = 1 to 3 do
    (match B.acquire ~now:0.0 b with
    | `Run -> B.record ~now:0.0 ~ok:true b
    | _ -> Alcotest.fail "closed breaker rejected")
  done;
  Alcotest.(check bool) "still closed under successes" true
    (B.state ~now:0.0 b = B.Closed);
  (* Four failures: window [t;t;t;f;f;f;f] reaches 4/7 >= 0.5 ... the
     trip happens at the first moment min_calls outcomes exist AND the
     fraction crosses; with 3 successes banked it takes 3 failures
     (3/6 = 0.5). *)
  let rec fail_until_open n =
    if n > 10 then Alcotest.fail "breaker never opened"
    else
      match B.acquire ~now:1.0 b with
      | `Run ->
          B.record ~now:1.0 ~ok:false b;
          if B.state ~now:1.0 b <> B.Open then fail_until_open (n + 1)
      | _ -> Alcotest.fail "breaker rejected before opening"
  in
  fail_until_open 1;
  Alcotest.(check int) "one open transition" 1 (B.opens b);
  (* Open: rejects without touching the dependency. *)
  (match B.acquire ~now:2.0 b with
  | `Reject -> ()
  | _ -> Alcotest.fail "open breaker admitted");
  (* Cooldown elapses: exactly one probe, concurrent callers rejected. *)
  (match B.acquire ~now:12.0 b with
  | `Probe -> ()
  | _ -> Alcotest.fail "no probe after cooldown");
  (match B.acquire ~now:12.0 b with
  | `Reject -> ()
  | _ -> Alcotest.fail "second probe admitted");
  (* Probe failure: re-open, cooldown restarts. *)
  B.record ~now:12.0 ~ok:false b;
  Alcotest.(check bool) "probe failure re-opens" true
    (B.state ~now:12.5 b = B.Open);
  Alcotest.(check int) "two opens" 2 (B.opens b);
  (* Second cooldown, successful probe: closed again. *)
  (match B.acquire ~now:23.0 b with
  | `Probe -> B.record ~now:23.0 ~ok:true b
  | _ -> Alcotest.fail "no second probe");
  Alcotest.(check bool) "successful probe closes" true
    (B.state ~now:23.0 b = B.Closed);
  Alcotest.(check int) "one close transition" 1 (B.closes b)

let prop_breaker_counters_reconcile =
  QCheck.Test.make
    ~name:"breaker counters reconcile over random outcome streams"
    ~count:200
    QCheck.(pair small_nat (list bool))
    (fun (jump, outcomes) ->
      let b =
        Serve.Breaker.create ~window:4 ~min_calls:2 ~failure_threshold:0.5
          ~cooldown_s:5.0 ()
      in
      let module B = Serve.Breaker in
      let now = ref 0.0 in
      let acquires = ref 0 in
      List.iter
        (fun ok ->
          (* Occasionally jump the clock past the cooldown so the
             half-open path is exercised too. *)
          now := !now +. if jump mod 3 = 0 then 6.0 else 0.5;
          incr acquires;
          match B.acquire ~now:!now b with
          | `Run | `Probe -> B.record ~now:!now ~ok b
          | `Reject -> ())
        outcomes;
      (* A failed probe re-opens without an intervening close, so opens
         can run ahead of closes by any margin — only the one-sided
         bound holds. *)
      B.admitted b + B.rejected b = !acquires
      && B.successes b + B.failures b = B.admitted b
      && B.closes b <= B.opens b)

(* --- Deadline arithmetic ---------------------------------------------- *)

let prop_deadline_budget =
  QCheck.Test.make ~name:"deadline honors its budget exactly" ~count:300
    QCheck.(pair (float_range 0.0 1e9) (float_range 0.001 1e6))
    (fun (now, ms) ->
      let d = Serve.Deadline.of_budget_ms ~now ms in
      (not (Serve.Deadline.expired ~now d))
      && Serve.Deadline.expired ~now:(now +. (ms /. 1000.0)) d
      && Serve.Deadline.remaining_s ~now:(now +. (ms /. 1000.0) +. 1.0) d = 0.0)

let test_deadline_edges () =
  let module D = Serve.Deadline in
  Alcotest.(check bool) "none never expires" false
    (D.expired ~now:1e12 D.none);
  Alcotest.(check bool) "zero budget is born expired" true
    (D.expired ~now:5.0 (D.of_budget_ms ~now:5.0 0.0));
  Alcotest.(check bool) "negative budget is born expired" true
    (D.expired ~now:5.0 (D.of_budget_ms ~now:5.0 (-3.0)));
  Alcotest.(check bool) "nan budget is born expired" true
    (D.expired ~now:5.0 (D.of_budget_ms ~now:5.0 nan));
  Alcotest.(check (float 0.0)) "remaining is never negative" 0.0
    (D.remaining_s ~now:10.0 (D.of_budget_ms ~now:5.0 1.0))

let sweep_req ~points =
  (* [points] must factor as |htile| * |grids| * |k|; callers pass a
     multiple of 4. *)
  let grids =
    String.concat ","
      (List.init (points / 4) (fun i ->
           Printf.sprintf "[%d,%d]" (i + 1) 1))
  in
  Printf.sprintf
    {|{"app":{"name":"sweep3d","nx":64,"ny":64,"nz":64},"machine":{"platform":"xt4","cores_per_node":2},"htile":[1,2],"grids":[%s],"k":[0,4]}|}
    grids

let test_sweep_deadline_checkpoints () =
  let s =
    match Serve.Api.parse_sweep (sweep_req ~points:64) with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "point count" 64 (Serve.Api.sweep_points s);
  (* An already-expired deadline stops at the first checkpoint: zero
     points evaluated — the overrun is bounded by one interval. *)
  (match Serve.Api.run_sweep ~deadline:0.0 s with
  | `Expired 0 -> ()
  | `Expired n -> Alcotest.failf "expired after %d points, expected 0" n
  | `Done _ -> Alcotest.fail "expired sweep completed");
  (* No deadline: every point is evaluated. *)
  match Serve.Api.run_sweep ~deadline:Serve.Deadline.none s with
  | `Done pts -> Alcotest.(check int) "all points" 64 (List.length pts)
  | `Expired _ -> Alcotest.fail "unbounded sweep expired"

let test_pareto_frontier () =
  let s =
    match Serve.Api.parse_sweep (sweep_req ~points:16) with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  match Serve.Api.run_sweep ~deadline:Serve.Deadline.none s with
  | `Expired _ -> Alcotest.fail "sweep expired"
  | `Done pts ->
      let f = Serve.Api.pareto pts in
      Alcotest.(check bool) "frontier is non-empty" true (f <> []);
      (* Strictly increasing cores, strictly decreasing total. *)
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            a.Serve.Api.cores < b.Serve.Api.cores
            && a.Serve.Api.total > b.Serve.Api.total
            && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "frontier is monotone" true (monotone f);
      (* No point anywhere dominates a frontier point. *)
      Alcotest.(check bool) "frontier is undominated" true
        (List.for_all
           (fun (fp : Serve.Api.point) ->
             not
               (List.exists
                  (fun (p : Serve.Api.point) ->
                    p.Serve.Api.cores <= fp.Serve.Api.cores
                    && p.Serve.Api.total < fp.Serve.Api.total)
                  pts))
           f)

(* --- in-process HTTP integration -------------------------------------- *)

let with_server ?(cfg = Serve.Server.default_config) f =
  let t = Serve.Server.start { cfg with port = 0; quiet = true } in
  Fun.protect ~finally:(fun () -> Serve.Server.stop t) (fun () ->
      f (Serve.Server.port t))

(* A minimal blocking client: one request, read to EOF. *)
let raw_request ?(timeout_s = 5.0) ~port payload =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      let b = Bytes.of_string payload in
      let n = Unix.write fd b 0 (Bytes.length b) in
      assert (n = Bytes.length b);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let deadline = Unix.gettimeofday () +. timeout_s in
      let rec read_all () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then ()
        else
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> ()
          | _ -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  read_all ()
              | exception
                  Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                  ())
      in
      read_all ();
      Buffer.contents buf)

let status_of raw =
  match String.split_on_char ' ' raw with
  | _ :: code :: _ -> int_of_string_opt code
  | _ -> None

let body_of raw =
  (* Headers end at the first CRLFCRLF. *)
  let rec find i =
    if i + 3 >= String.length raw then String.length raw
    else if String.sub raw i 4 = "\r\n\r\n" then i + 4
    else find (i + 1)
  in
  let start = find 0 in
  String.sub raw start (String.length raw - start)

let get ~port path = raw_request ~port (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path)

let post ~port ?(headers = "") path body =
  raw_request ~port
    (Printf.sprintf "POST %s HTTP/1.1\r\nHost: t\r\n%sContent-Length: %d\r\n\r\n%s"
       path headers (String.length body) body)

let predict_body ~cores ~validate =
  Printf.sprintf
    {|{"app":{"name":"sweep3d","nx":128,"ny":128,"nz":128},"machine":{"platform":"xt4","cores":%d,"cores_per_node":2},"validate":%b}|}
    cores validate

let test_health_endpoints () =
  with_server @@ fun port ->
  Alcotest.(check (option int)) "healthz 200" (Some 200)
    (status_of (get ~port "/healthz"));
  Alcotest.(check (option int)) "readyz 200" (Some 200)
    (status_of (get ~port "/readyz"));
  Alcotest.(check (option int)) "unknown endpoint 404" (Some 404)
    (status_of (get ~port "/nope"));
  Alcotest.(check (option int)) "GET on predict 405" (Some 405)
    (status_of (get ~port "/v1/predict"))

(* The served prediction must agree with the in-process closed-form
   model to the last bit — serialization with %.17g round-trips. *)
let test_predict_golden () =
  with_server @@ fun port ->
  let raw = post ~port "/v1/predict" (predict_body ~cores:256 ~validate:false) in
  Alcotest.(check (option int)) "predict 200" (Some 200) (status_of raw);
  let j = Obs.Json.of_string (body_of raw) in
  let num name = Obs.Json.get_num name (Obs.Json.member name j) in
  let app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 128) in
  let cfg =
    Plugplay.config
      ~cmp:(Wgrid.Cmp.of_cores_per_node 2)
      (Loggp.Params.with_cores_per_node Loggp.Params.xt4 2)
      ~cores:256
  in
  let r = Plugplay.iteration app cfg in
  Alcotest.(check (float 0.0)) "t_iteration bit-exact" r.Plugplay.t_iteration
    (num "t_iteration");
  Alcotest.(check (float 0.0)) "t_diagfill bit-exact" r.Plugplay.t_diagfill
    (num "t_diagfill");
  Alcotest.(check (float 0.0)) "t_nonwavefront bit-exact"
    r.Plugplay.t_nonwavefront (num "t_nonwavefront");
  match Obs.Json.member "degraded" j with
  | Some (Obs.Json.Bool false) -> ()
  | _ -> Alcotest.fail "unvalidated predict must not be degraded"

let test_defense_matrix () =
  let cfg =
    {
      Serve.Server.default_config with
      max_body = 4096;
      header_timeout_ms = 300.0;
    }
  in
  with_server ~cfg @@ fun port ->
  Alcotest.(check (option int)) "malformed JSON 400" (Some 400)
    (status_of (post ~port "/v1/predict" "{nope"));
  Alcotest.(check (option int)) "unknown app 400" (Some 400)
    (status_of
       (post ~port "/v1/predict"
          {|{"app":{"name":"hpl","nx":8,"ny":8,"nz":8},"machine":{"platform":"xt4","cores":4,"cores_per_node":1}}|}));
  Alcotest.(check (option int)) "oversized advertisement 413" (Some 413)
    (status_of
       (raw_request ~port
          "POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: \
           999999999\r\n\r\n{}"));
  Alcotest.(check (option int)) "zero deadline sweep 504" (Some 504)
    (status_of
       (post ~port ~headers:"X-Deadline-Ms: 0\r\n" "/v1/sweep"
          (sweep_req ~points:16)));
  (* Slow-loris: half a header, then silence; the 300 ms header budget
     must convert the stall into a 408, not a held worker. *)
  Alcotest.(check (option int)) "slow-loris 408" (Some 408)
    (status_of (raw_request ~port "POST /v1/predict HTTP/1.1\r\nHo"))

let test_shedding_429 () =
  (* One worker and a one-slot queue: a slow-loris pins the worker for
     its 1 s header budget, the next connection fills the queue, the
     third must shed with 429 + Retry-After. *)
  let cfg =
    {
      Serve.Server.default_config with
      workers = 1;
      queue_capacity = 1;
      header_timeout_ms = 1000.0;
    }
  in
  with_server ~cfg @@ fun port ->
  let connect_and_hold () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
    ignore (Unix.write fd (Bytes.of_string "POST /x HTTP/1.1\r\nH") 0 19);
    fd
  in
  let held1 = connect_and_hold () in
  Unix.sleepf 0.2;  (* let the worker pop it *)
  let held2 = connect_and_hold () in
  Unix.sleepf 0.2;  (* let it land in the queue *)
  let raw = get ~port "/healthz" in
  (try Unix.close held1 with Unix.Unix_error _ -> ());
  (try Unix.close held2 with Unix.Unix_error _ -> ());
  Alcotest.(check (option int)) "third connection shed with 429" (Some 429)
    (status_of raw);
  Alcotest.(check bool) "Retry-After present" true
    (let re = "Retry-After" in
     let rec contains i =
       i + String.length re <= String.length raw
       && (String.sub raw i (String.length re) = re || contains (i + 1))
     in
     contains 0)

let test_breaker_degrades_and_recovers () =
  (* fail_burst 3 with min_calls 3: the first three validations fail
     (degraded responses), opening the breaker; while open, validation
     is refused without the dependency (still degraded); after the
     cooldown the probe succeeds and full validation returns. *)
  let cfg =
    {
      Serve.Server.default_config with
      workers = 2;
      chaos = Serve.Chaos.v ~fail_burst:3 ();
      breaker_min_calls = 3;
      breaker_window = 8;
      breaker_threshold = 0.5;
      breaker_cooldown_s = 0.3;
    }
  in
  with_server ~cfg @@ fun port ->
  let degraded raw =
    match Obs.Json.member "degraded" (Obs.Json.of_string (body_of raw)) with
    | Some (Obs.Json.Bool b) -> b
    | _ -> Alcotest.fail "no degraded field"
  in
  for i = 1 to 3 do
    let raw = post ~port "/v1/predict" (predict_body ~cores:16 ~validate:true) in
    Alcotest.(check (option int))
      (Printf.sprintf "burst request %d still 200" i)
      (Some 200) (status_of raw);
    Alcotest.(check bool)
      (Printf.sprintf "burst request %d degraded" i)
      true (degraded raw)
  done;
  (* Breaker now open: degraded without touching the dependency. *)
  let raw = post ~port "/v1/predict" (predict_body ~cores:16 ~validate:true) in
  Alcotest.(check bool) "open breaker degrades" true (degraded raw);
  (* After the cooldown the probe runs, succeeds and closes the breaker. *)
  Unix.sleepf 0.4;
  let raw = post ~port "/v1/predict" (predict_body ~cores:16 ~validate:true) in
  Alcotest.(check bool) "recovered: validation served" false (degraded raw);
  let m = get ~port "/metrics" in
  let has s =
    let rec contains i =
      i + String.length s <= String.length m
      && (String.sub m i (String.length s) = s || contains (i + 1))
    in
    contains 0
  in
  Alcotest.(check bool) "metrics report >= 1 open" true
    (has "serve_breaker_opens 1.0");
  Alcotest.(check bool) "metrics report >= 1 close" true
    (has "serve_breaker_closes 1.0")

let test_drain_answers_backlog () =
  with_server @@ fun port ->
  Alcotest.(check (option int)) "served before drain" (Some 200)
    (status_of (post ~port "/v1/predict" (predict_body ~cores:64 ~validate:false)));
  (* with_server's finally runs stop: if an admitted request were
     dropped the stop would hang or the counters would not reconcile —
     covered again, adversarially, by the slam suite below. *)
  ()

(* --- slam: seeded plan and mini-run ----------------------------------- *)

let test_slam_plan_deterministic () =
  let p1 = Serve.Slam.plan ~seed:123 ~requests:500 ~clients:3 in
  let p2 = Serve.Slam.plan ~seed:123 ~requests:500 ~clients:3 in
  Alcotest.(check bool) "same seed, same schedule" true (p1 = p2);
  let p3 = Serve.Slam.plan ~seed:124 ~requests:500 ~clients:3 in
  Alcotest.(check bool) "different seed, different schedule" true (p1 <> p3);
  Alcotest.(check int) "every request scheduled" 500
    (Array.fold_left (fun acc a -> acc + Array.length a) 0 p1);
  (* Every class appears at 500 draws — the mix keeps all defenses warm. *)
  let all = Array.to_list p1 |> List.concat_map Array.to_list in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Serve.Slam.class_name c ^ " appears in the plan")
        true (List.mem c all))
    Serve.Slam.all_classes

let test_slam_mini_run () =
  let cfg =
    {
      Serve.Server.default_config with
      workers = 2;
      chaos = Serve.Chaos.v ~fail_burst:3 ();
      breaker_min_calls = 3;
      breaker_cooldown_s = 0.3;
      header_timeout_ms = 400.0;
    }
  in
  with_server ~cfg @@ fun port ->
  let slam_cfg =
    {
      Serve.Slam.default_config with
      port;
      requests = 60;
      clients = 2;
      seed = 9;
      expect_breaker = true;
      quiet = true;
    }
  in
  match Serve.Slam.execute slam_cfg with
  | Error m -> Alcotest.fail m
  | Ok report ->
      List.iter
        (fun (i : Serve.Slam.invariant) ->
          Alcotest.(check bool)
            (Printf.sprintf "invariant %s (%s)" i.Serve.Slam.name
               i.Serve.Slam.detail)
            true i.Serve.Slam.pass)
        report.Serve.Slam.invariants;
      (* The report round-trips as JSON and carries the schema tag. *)
      let j = Obs.Json.of_string (Serve.Slam.report_to_json report) in
      Alcotest.(check string) "report schema" "wavefront-slam/v1"
        (Obs.Json.get_str "schema" (Obs.Json.member "schema" j))

(* --- ledger: torn trailing line --------------------------------------- *)

let with_temp_path f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wavefront-serve-ledger-%d.jsonl" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let ledger_record ts =
  Obs.Ledger.v ~engine:"batched" ~config_hash:"cafe01234567"
    ~metrics:[ ("outcome.elapsed", 1.0) ]
    ~timestamp:ts ~duration_s:0.25 "simulate"

let test_ledger_survives_torn_line () =
  with_temp_path @@ fun path ->
  (match Obs.Ledger.append ~path (ledger_record 1000.0) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Obs.Ledger.append ~path (ledger_record 2000.0) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* Simulate a crash mid-append: a truncated record with no newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc {|{"schema":"wavefront-ledger/v1","timest|};
  close_out oc;
  (match Obs.Ledger.load ~path () with
  | Ok (records, skipped) ->
      Alcotest.(check int) "both whole records load" 2 (List.length records);
      Alcotest.(check int) "the torn line is skipped, not fatal" 1 skipped
  | Error m -> Alcotest.fail m);
  (* A subsequent append lands after the torn line and is readable:
     the torn tail cannot poison later history. *)
  (match Obs.Ledger.append ~path (ledger_record 3000.0) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Obs.Ledger.load ~path () with
  | Ok (records, skipped) ->
      (* The torn line absorbed the next record's prefix — exactly one
         line stays unparseable either way, and the latest record... *)
      Alcotest.(check bool) "history keeps growing or holds" true
        (List.length records >= 2);
      Alcotest.(check bool) "skips stay bounded" true (skipped >= 1)
  | Error m -> Alcotest.fail m);
  (* End to end: `wavefront runs list` must render the intact records
     and only warn about the torn line. *)
  match
    List.find_opt Sys.file_exists
      [ "../bin/main.exe"; "_build/default/bin/main.exe" ]
  with
  | None -> ()
  | Some exe ->
      Alcotest.(check int) "runs list exits 0 on a torn ledger" 0
        (Sys.command
           (Printf.sprintf "%s runs list --ledger %s >/dev/null 2>&1" exe
              (Filename.quote path)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_queue_contracts;
      prop_queue_close_drains;
      prop_breaker_counters_reconcile;
      prop_deadline_budget;
    ]

let suite =
  [
    ( "serve.queue",
      props
      @ [
          Alcotest.test_case "pop blocks until push; close wakes" `Quick
            test_queue_pop_blocks_until_push;
        ] );
    ( "serve.breaker",
      [ Alcotest.test_case "full lifecycle on a fake clock" `Quick
          test_breaker_lifecycle ] );
    ( "serve.deadline",
      [
        Alcotest.test_case "edge budgets" `Quick test_deadline_edges;
        Alcotest.test_case "sweep checkpoints bound the overrun" `Quick
          test_sweep_deadline_checkpoints;
        Alcotest.test_case "pareto frontier" `Quick test_pareto_frontier;
      ] );
    ( "serve.http",
      [
        Alcotest.test_case "health endpoints" `Quick test_health_endpoints;
        Alcotest.test_case "predict agrees with the model bit-exactly" `Quick
          test_predict_golden;
        Alcotest.test_case "defense matrix: 400/413/504/408" `Quick
          test_defense_matrix;
        Alcotest.test_case "admission queue sheds with 429" `Quick
          test_shedding_429;
        Alcotest.test_case "breaker degrades and recovers" `Quick
          test_breaker_degrades_and_recovers;
        Alcotest.test_case "drain answers the backlog" `Quick
          test_drain_answers_backlog;
      ] );
    ( "serve.slam",
      [
        Alcotest.test_case "plan is a pure function of the seed" `Quick
          test_slam_plan_deterministic;
        Alcotest.test_case "mini slam: all invariants hold" `Quick
          test_slam_mini_run;
      ] );
    ( "serve.ledger",
      [
        Alcotest.test_case "torn trailing line is skipped everywhere" `Quick
          test_ledger_survives_torn_line;
      ] );
  ]
