(* Tests for the checkpoint/rollback recovery layer: the closed-form
   model arithmetic (Perturb.Recover), the snapshot stores
   (Wrun.Checkpoint), the simulated protocol (xtsim and dataflow), the
   real runtime's checkpoint/restore/replay path, the channel message
   log, and the CLI exit-status discipline. *)

open Wgrid

(* --- The closed-form model --- *)

let test_due_and_checkpoints () =
  Alcotest.(check bool) "wave 0 never due" false
    (Perturb.Recover.due ~interval:4 ~wave:0);
  Alcotest.(check bool) "multiples due" true
    (Perturb.Recover.due ~interval:4 ~wave:8);
  Alcotest.(check bool) "others not due" false
    (Perturb.Recover.due ~interval:4 ~wave:9);
  Alcotest.(check bool) "disabled never due" false
    (Perturb.Recover.due ~interval:0 ~wave:8);
  (* Checkpoint waves among 0..waves-1 must equal the count the closed
     form charges for. *)
  List.iter
    (fun (interval, waves) ->
      let listed = ref 0 in
      for w = 0 to waves - 1 do
        if Perturb.Recover.due ~interval ~wave:w then incr listed
      done;
      Alcotest.(check int)
        (Fmt.str "count K=%d waves=%d" interval waves)
        !listed
        (Perturb.Recover.checkpoints ~interval ~waves))
    [ (1, 7); (3, 12); (4, 12); (5, 1); (7, 100); (100, 7) ]

let test_lost_waves () =
  let p = Perturb.Recover.v 5 in
  Alcotest.(check int) "at a checkpoint wave" 0
    (Perturb.Recover.lost_waves p ~fail_wave:10);
  Alcotest.(check int) "mid-interval" 3
    (Perturb.Recover.lost_waves p ~fail_wave:13);
  Alcotest.(check int) "before the first checkpoint" 4
    (Perturb.Recover.lost_waves p ~fail_wave:4);
  Alcotest.(check int) "disabled loses everything" 13
    (Perturb.Recover.lost_waves Perturb.Recover.disabled ~fail_wave:13)

let test_optimal_interval () =
  let opt = Perturb.Recover.optimal_interval in
  Alcotest.(check int) "no failures: never checkpoint" 64
    (opt ~waves:64 ~wave_cost:10.0 ~failures:0 ~ckpt_cost:5.0);
  Alcotest.(check int) "free checkpoints: every wave" 1
    (opt ~waves:64 ~wave_cost:10.0 ~failures:1 ~ckpt_cost:0.0);
  let k = opt ~waves:64 ~wave_cost:10.0 ~failures:1 ~ckpt_cost:5.0 in
  Alcotest.(check bool) "in range" true (k >= 1 && k <= 64);
  (* The optimum must actually (weakly) beat its neighbours under the
     expected-overhead objective it minimizes. *)
  let cost k =
    (Perturb.Recover.expected_term
       (Perturb.Recover.v ~ckpt_cost:5.0 k)
       ~waves:64 ~wave_cost:10.0 ~failures:1)
      .total
  in
  if k > 1 then
    Alcotest.(check bool) "beats k-1" true (cost k <= cost (k - 1) +. 1e-9);
  if k < 64 then
    Alcotest.(check bool) "beats k+1" true (cost k <= cost (k + 1) +. 1e-9)

let test_terms () =
  let p = Perturb.Recover.v ~ckpt_cost:50.0 ~restart_cost:500.0 10 in
  let t =
    Perturb.Recover.deterministic_term p ~waves:32 ~wave_cost:64.8
      ~fail_waves:[ 6 ]
  in
  (* 3 checkpoints (waves 10, 20, 30), one restart, 6 lost waves. *)
  Alcotest.(check (float 1e-9)) "checkpoint" 150.0 t.checkpoint;
  Alcotest.(check (float 1e-9)) "restart" 500.0 t.restart;
  Alcotest.(check (float 1e-9)) "rework" (6.0 *. 64.8) t.rework;
  Alcotest.(check (float 1e-9)) "total" (150.0 +. 500.0 +. 388.8) t.total;
  let z =
    Perturb.Recover.deterministic_term Perturb.Recover.disabled ~waves:32
      ~wave_cost:64.8 ~fail_waves:[ 6 ]
  in
  Alcotest.(check (float 0.0)) "disabled is free" 0.0 z.total

(* --- Snapshot stores --- *)

let snapshot ~rank ~version ~wave : Wrun.Checkpoint.snapshot =
  {
    rank;
    version;
    wave;
    position = { iteration = 1; sweep = 1; tile = 2 };
    phi = [| 1.5; -2.25; 3.125 |];
    zbuf = [| 0.5; 0.75 |];
    zpos = 4;
    sent = [| 0; 3; 1 |];
    recvd = [| 0; 2; 2 |];
  }

let test_memory_store () =
  let store = Wrun.Checkpoint.memory_store () in
  Alcotest.(check bool) "empty" true
    (Wrun.Checkpoint.latest store ~rank:0 = None);
  Wrun.Checkpoint.save store (snapshot ~rank:0 ~version:1 ~wave:4);
  Wrun.Checkpoint.save store (snapshot ~rank:0 ~version:2 ~wave:8);
  Wrun.Checkpoint.save store (snapshot ~rank:1 ~version:1 ~wave:4);
  (match Wrun.Checkpoint.latest store ~rank:0 with
  | Some s ->
      Alcotest.(check int) "latest version wins" 2 s.version;
      Alcotest.(check int) "wave" 8 s.wave
  | None -> Alcotest.fail "expected a snapshot");
  Alcotest.(check int) "saves counted" 3 (Wrun.Checkpoint.saves store)

let test_file_store_round_trip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "wavefront-ckpt-test"
  in
  let store = Wrun.Checkpoint.file_store ~dir in
  let snap = snapshot ~rank:3 ~version:7 ~wave:12 in
  Wrun.Checkpoint.save store snap;
  (match Wrun.Checkpoint.latest store ~rank:3 with
  | Some s -> Alcotest.(check bool) "bitwise round trip" true (s = snap)
  | None -> Alcotest.fail "expected a snapshot on disk");
  (* A fresh store over the same directory sees the file — recovery
     survives the process. *)
  let reopened = Wrun.Checkpoint.file_store ~dir in
  Alcotest.(check bool) "visible to a new store" true
    (Wrun.Checkpoint.latest reopened ~rank:3 = Some snap);
  Alcotest.(check bool) "other ranks empty" true
    (Wrun.Checkpoint.latest reopened ~rank:2 = None)

(* --- Simulated recovery: xtsim vs the closed form --- *)

let fixed_app = Apps.Sweep3d.params (Data_grid.v ~nx:24 ~ny:24 ~nz:8)
let fixed_pg = Proc_grid.v ~cols:4 ~rows:4

let fixed_cfg =
  Wavefront_core.Plugplay.config ~cmp:Cmp.single_core Loggp.Params.xt4
    ~cores:16

let machine_of pg = Xtsim.Machine.v ~cmp:Cmp.single_core Loggp.Params.xt4 pg

let test_sim_recovers () =
  let spec = Perturb.Spec.v ~failures:[ { rank = 5; after_tiles = 6 } ] () in
  let policy = Perturb.Recover.v ~ckpt_cost:50.0 ~restart_cost:500.0 10 in
  let killed =
    Xtsim.Wavefront_sim.run ~perturb:spec (machine_of fixed_pg) fixed_app
  in
  Alcotest.(check bool) "without recovery the run degrades" false
    killed.completed;
  let o =
    Xtsim.Wavefront_sim.run ~perturb:spec ~recover:policy
      (machine_of fixed_pg) fixed_app
  in
  Alcotest.(check bool) "completed" true o.completed;
  Alcotest.(check (list int)) "rank revived" [ 5 ] o.recovered;
  let waves =
    Sweeps.Schedule.nsweeps fixed_app.schedule
    * Tile.ntiles_int ~nz:fixed_app.grid.nz ~htile:fixed_app.htile
  in
  Alcotest.(check int) "checkpoints = schedule x ranks"
    (16 * Perturb.Recover.checkpoints ~interval:10 ~waves)
    o.checkpoints

(* The tentpole contract: the simulator's recover.* spans must reproduce
   the closed-form term — checkpoint schedule, restart charge and
   rollback depth agree wave for wave (tolerance 5%, and in fact
   exactly). *)
let test_sim_matches_closed_form () =
  let spec = Perturb.Spec.v ~failures:[ { rank = 5; after_tiles = 6 } ] () in
  let policy = Perturb.Recover.v ~ckpt_cost:50.0 ~restart_cost:500.0 10 in
  let r =
    Harness.Recover_report.run ~policy fixed_cfg fixed_app spec
  in
  Alcotest.(check bool) "within tolerance" true r.within_tolerance;
  Alcotest.(check (float 1e-6)) "checkpoint term exact"
    r.predicted.checkpoint r.simulated.checkpoint;
  Alcotest.(check (float 1e-6)) "restart term exact" r.predicted.restart
    r.simulated.restart;
  Alcotest.(check (float 1e-6)) "rework term exact" r.predicted.rework
    r.simulated.rework;
  Alcotest.(check int) "clean exit" 0 (Harness.Recover_report.exit_status r)

let test_dataflow_recovers () =
  let spec = Perturb.Spec.v ~failures:[ { rank = 2; after_tiles = 3 } ] () in
  let policy = Perturb.Recover.v 4 in
  let base = Wrun.Dataflow.run ~perturb:spec fixed_pg fixed_app in
  Alcotest.(check bool) "without recovery: degraded" false base.completed;
  Alcotest.(check bool) "orphans without recovery" true (base.orphaned > 0);
  let o = Wrun.Dataflow.run ~perturb:spec ~recover:policy fixed_pg fixed_app in
  Alcotest.(check bool) "completed" true o.completed;
  Alcotest.(check (list int)) "revived" [ 2 ] o.recovered;
  Alcotest.(check int) "no orphans once revived" 0 o.orphaned

(* --- Real runtime: pinned bitwise recovery --- *)

(* A failing rank restored from its snapshot must finish with the exact
   grid of the unfailed run: phi, the carried z-face and the replayed
   messages all line up, so the gathered result is bitwise-equal to the
   sequential reference. *)
let test_real_recovery_bitwise () =
  let plan =
    Kernels.Sweep_exec.plan ~htile:2
      ~perturb:(Perturb.Spec.v ~failures:[ { rank = 1; after_tiles = 2 } ] ())
      (Data_grid.v ~nx:6 ~ny:4 ~nz:4)
      (Proc_grid.v ~cols:2 ~rows:2)
  in
  let reference = Kernels.Sweep_exec.run_sequential plan in
  match
    Kernels.Sweep_exec.run_recoverable
      ~policy:(Perturb.Recover.v 2) plan
  with
  | Kernels.Sweep_exec.Recovered (o, stats) ->
      Alcotest.(check bool) "bitwise equal to the unfailed run" true
        (Kernels.Sweep_exec.gather plan o.blocks = reference);
      Alcotest.(check int) "one restart" 1 stats.restarts;
      Alcotest.(check bool) "snapshots were taken" true (stats.checkpoints > 0)
  | Unrecovered { failed; reason; _ } ->
      Alcotest.failf "unrecovered: ranks %a (%s)"
        Fmt.(Dump.list int)
        failed
        (Printexc.to_string reason)

(* A kill before the first checkpoint exercises the from-scratch respawn:
   no snapshot exists, the channels rewind to zero and the full logs
   replay. *)
let test_real_recovery_from_scratch () =
  let plan =
    Kernels.Sweep_exec.plan ~htile:2
      ~perturb:(Perturb.Spec.v ~failures:[ { rank = 3; after_tiles = 0 } ] ())
      (Data_grid.v ~nx:6 ~ny:4 ~nz:4)
      (Proc_grid.v ~cols:2 ~rows:2)
  in
  let reference = Kernels.Sweep_exec.run_sequential plan in
  match
    Kernels.Sweep_exec.run_recoverable
      ~policy:(Perturb.Recover.v 1000) plan
  with
  | Kernels.Sweep_exec.Recovered (o, stats) ->
      Alcotest.(check bool) "bitwise equal" true
        (Kernels.Sweep_exec.gather plan o.blocks = reference);
      Alcotest.(check int) "one restart" 1 stats.restarts
  | Unrecovered _ -> Alcotest.fail "expected recovery from scratch"

(* --- Channel message log + timeout regression --- *)

(* Satellite: a timed-out receive must leave the channel fully usable —
   nothing popped, nothing recycled into the pool — so a later payload
   arrives intact. *)
let test_channel_usable_after_timeout () =
  let c = Shmpi.Channel.create () in
  let buf = Array.make 2 0.0 in
  let v, waited = Shmpi.Channel.recv_into_deadline c buf ~timeout_us:200.0 in
  Alcotest.(check bool) "timed out" true (v = None);
  Alcotest.(check bool) "waited" true (waited > 0.0);
  Shmpi.Channel.send c [| 4.5; -1.25 |];
  (match Shmpi.Channel.recv_into_deadline c buf ~timeout_us:1e6 with
  | Some got, _ ->
      Alcotest.(check bool) "payload intact" true (got = [| 4.5; -1.25 |])
  | None, _ -> Alcotest.fail "payload lost after an earlier timeout");
  (* Same discipline on a logging channel, where pooling is forbidden
     outright (logged payloads alias delivered arrays). *)
  let l = Shmpi.Channel.create () in
  Shmpi.Channel.enable_log l;
  ignore (Shmpi.Channel.recv_into_deadline l buf ~timeout_us:200.0);
  Shmpi.Channel.send l [| 9.0; 8.0 |];
  (match Shmpi.Channel.recv_into_deadline l buf ~timeout_us:1e6 with
  | Some got, _ ->
      Alcotest.(check bool) "logged payload intact" true (got = [| 9.0; 8.0 |])
  | None, _ -> Alcotest.fail "payload lost on the logging channel");
  (* The log still holds the consumed payload: a rollback to mark 0
     redelivers it even though a send into the pool could have clobbered
     it. *)
  Shmpi.Channel.send l [| 1.0; 2.0 |];
  Shmpi.Channel.rewind_recv l ~to_:0;
  Alcotest.(check bool) "log redelivers the first payload" true
    (Shmpi.Channel.recv l = [| 9.0; 8.0 |]);
  Alcotest.(check bool) "then the second" true
    (Shmpi.Channel.recv l = [| 1.0; 2.0 |])

let test_channel_replay_suppression () =
  let c = Shmpi.Channel.create () in
  Shmpi.Channel.enable_log c;
  Shmpi.Channel.send c [| 1.0 |];
  Shmpi.Channel.send c [| 2.0 |];
  Alcotest.(check int) "two sends marked" 2 (Shmpi.Channel.sent_mark c);
  (* Respawned sender replays from mark 0: the duplicates must be
     swallowed, then a genuinely new send delivers. *)
  Shmpi.Channel.rewind_send c ~to_:0;
  Shmpi.Channel.send c [| 1.0 |];
  Shmpi.Channel.send c [| 2.0 |];
  Shmpi.Channel.send c [| 3.0 |];
  Alcotest.(check bool) "first" true (Shmpi.Channel.recv c = [| 1.0 |]);
  Alcotest.(check bool) "second" true (Shmpi.Channel.recv c = [| 2.0 |]);
  Alcotest.(check bool) "new send delivered once" true
    (Shmpi.Channel.recv c = [| 3.0 |]);
  Alcotest.(check bool) "nothing duplicated" true
    (Shmpi.Channel.try_recv c = None);
  (* Released marks refuse to rewind: the store and the release schedule
     disagreeing is a protocol bug worth failing loudly on. *)
  Shmpi.Channel.release c ~upto:2;
  Alcotest.check_raises "released mark"
    (Invalid_argument "Channel.rewind_recv: mark 1 already released (base 2)")
    (fun () -> Shmpi.Channel.rewind_recv c ~to_:1)

(* --- Parse errors carry clause and position --- *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_spec_parse_error_location () =
  (match Perturb.Spec.of_string_loc "seed=42 link=bogus fail=1:3" with
  | Ok _ -> Alcotest.fail "accepted a bad clause"
  | Error e ->
      Alcotest.(check string) "clause" "link=bogus" e.clause;
      Alcotest.(check int) "position" 8 e.position;
      Alcotest.(check bool) "reason names the shape" true
        (contains ~affix:"PROB:DELAY" e.reason));
  match Perturb.Spec.of_string "noise=uniform:0.2 wat=1" with
  | Ok _ -> Alcotest.fail "accepted an unknown clause"
  | Error (`Msg m) ->
      Alcotest.(check bool) "message points at the clause" true
        (contains ~affix:{|"wat=1" at offset 18|} m)

let test_app_spec_error_location () =
  let spec lines = String.concat "\n" lines in
  (match
     Apps.Spec.full_of_string
       (spec
          [ "nx = 8"; "ny = 8"; "nz = 4"; "wg = 1.0";
            "perturb = seed=1 fail=1:oops" ])
   with
  | Ok _ -> Alcotest.fail "accepted a bad perturb stanza"
  | Error (`Msg m) ->
      Alcotest.(check bool) "names the line" true
        (contains ~affix:"line 5" m);
      Alcotest.(check bool) "names the clause" true
        (contains ~affix:{|"fail=1:oops"|} m));
  match
    Apps.Spec.full_of_string
      (spec [ "nx = 8"; "ny = 8"; "nz = four"; "wg = 1.0" ])
  with
  | Ok _ -> Alcotest.fail "accepted a bad integer"
  | Error (`Msg m) ->
      Alcotest.(check bool) "bad value names its line" true
        (contains ~affix:"line 3" m)

(* --- Exit-status discipline (the CLI's 0/3/4 contract) --- *)

let test_exit_status () =
  (* Clean perturbation: 0. *)
  let clean =
    Harness.Perturb_report.run fixed_cfg fixed_app Perturb.Spec.zero
  in
  Alcotest.(check int) "clean perturb" 0
    (Harness.Perturb_report.exit_status clean);
  (* A spec'd kill without recovery is an unrecovered failure: 4. *)
  let killed =
    Harness.Perturb_report.run fixed_cfg fixed_app
      (Perturb.Spec.v ~failures:[ { rank = 5; after_tiles = 6 } ] ())
  in
  Alcotest.(check int) "unrecovered perturb" 4
    (Harness.Perturb_report.exit_status killed);
  (* The same kill under a checkpoint policy recovers: 0. *)
  let recovered =
    Harness.Recover_report.run
      ~policy:(Perturb.Recover.v ~ckpt_cost:50.0 ~restart_cost:500.0 10)
      fixed_cfg fixed_app
      (Perturb.Spec.v ~failures:[ { rank = 5; after_tiles = 6 } ] ())
  in
  Alcotest.(check int) "recovered" 0
    (Harness.Recover_report.exit_status recovered)

(* --- Zero-checkpoint invisibility (QCheck) --- *)

let schedules =
  [ Sweeps.Schedule.sweep3d; Sweeps.Schedule.lu; Sweeps.Schedule.chimaera ]

let small_app_gen =
  QCheck.Gen.(
    map
      (fun (((cols, rows), (nz, htile)), sched) ->
        let grid = Data_grid.v ~nx:(2 * cols) ~ny:(2 * rows) ~nz in
        let app =
          Apps.Custom.params ~name:"qcheck"
            ~schedule:(List.nth schedules sched) ~htile
            ~nonwavefront:Wavefront_core.App_params.No_op ~wg:1.0 grid
        in
        ((cols, rows), app))
      (pair
         (pair
            (pair (int_range 1 3) (int_range 1 3))
            (pair (int_range 1 4) (float_range 0.5 2.5)))
         (int_range 0 2)))

let pp_app_case ((cols, rows), (app : Wavefront_core.App_params.t)) =
  Fmt.str "%dx%d %a htile=%.2f %s" cols rows Data_grid.pp app.grid app.htile
    app.name

(* Mirrors the zero-perturbation-spec contract of PR 3: a disabled policy
   (interval 0) must be bitwise invisible on both simulators — the whole
   outcome records compare equal. *)
let prop_zero_interval_identity =
  QCheck.Test.make ~name:"disabled recovery policy is bitwise invisible"
    ~count:15
    (QCheck.make ~print:pp_app_case small_app_gen)
    (fun ((cols, rows), app) ->
      let pg = Proc_grid.v ~cols ~rows in
      let machine = machine_of pg in
      let base = Xtsim.Wavefront_sim.run machine app in
      let off =
        Xtsim.Wavefront_sim.run ~recover:Perturb.Recover.disabled machine app
      in
      let dbase = Wrun.Dataflow.run pg app in
      let doff =
        Wrun.Dataflow.run ~recover:Perturb.Recover.disabled pg app
      in
      base = off && dbase = doff)

(* --- Orphaned-send oracle (QCheck) --- *)

(* An independent interpreter of the Figure-4 protocol: per-rank op lists
   driven to a fixpoint with plain counters. A kill strikes at the rank's
   [after_tiles]-th compute — after that tile's receives, before its
   sends — exactly Perturb.Model.fails_now's schedule. The dataflow
   backend's orphan count must equal what this fixpoint proves stranded. *)
type oracle_op = Recv of int | Compute | Send of int

let oracle_ops pg (app : Wavefront_core.App_params.t) ~iterations rank =
  let cfg = Wrun.Program.of_app ~iterations pg app in
  let i, j = Proc_grid.coords pg rank in
  let has p = Proc_grid.contains pg p in
  let ops = ref [] in
  for _iter = 1 to iterations do
    List.iter
      (fun sw ->
        let dx, dy, _ = Wrun.Program.flow pg sw in
        let step p = if has p then [ p ] else [] in
        for _tile = 0 to cfg.tiling.ntiles - 1 do
          ops :=
            List.rev_append
              (List.map (fun p -> Recv (Proc_grid.rank pg p))
                 (step (i - dx, j) @ step (i, j - dy))
              @ [ Compute ]
              @ List.map (fun p -> Send (Proc_grid.rank pg p))
                  (step (i + dx, j) @ step (i, j + dy)))
              !ops
        done)
      (Sweeps.Schedule.sweeps cfg.schedule)
  done;
  List.rev !ops

let oracle_orphans pg app ~iterations (spec : Perturb.Spec.t) =
  let cores = Proc_grid.cores pg in
  let kill = Array.make cores max_int in
  List.iter
    (fun (f : Perturb.Spec.failure) ->
      kill.(f.rank) <- min kill.(f.rank) f.after_tiles)
    spec.failures;
  let ops = Array.init cores (fun r -> ref (oracle_ops pg app ~iterations r)) in
  let computes = Array.make cores 0 in
  let alive = Array.make cores true in
  let sent = Hashtbl.create 16 and recvd = Hashtbl.create 16 in
  let get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  let bump tbl k = Hashtbl.replace tbl k (get tbl k + 1) in
  let progress = ref true in
  while !progress do
    progress := false;
    for r = 0 to cores - 1 do
      let running = ref alive.(r) in
      while !running do
        match !(ops.(r)) with
        | [] -> running := false
        | Recv src :: rest ->
            if get sent (src, r) > get recvd (src, r) then begin
              bump recvd (src, r);
              ops.(r) := rest;
              progress := true
            end
            else running := false
        | Compute :: rest ->
            if computes.(r) >= kill.(r) then begin
              alive.(r) <- false;
              running := false
            end
            else begin
              computes.(r) <- computes.(r) + 1;
              ops.(r) := rest;
              progress := true
            end
        | Send dst :: rest ->
            bump sent (r, dst);
            ops.(r) := rest;
            progress := true
      done
    done
  done;
  let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0 in
  total sent - total recvd

let orphan_case_gen =
  QCheck.Gen.(
    small_app_gen >>= fun ((cols, rows), app) ->
    let cores = cols * rows in
    let failure =
      map2
        (fun rank after_tiles : Perturb.Spec.failure -> { rank; after_tiles })
        (int_range 0 (cores - 1))
        (int_range 0 40)
    in
    map2
      (fun iterations failures ->
        (((cols, rows), app), iterations, Perturb.Spec.v ~failures ()))
      (int_range 1 2)
      (list_size (int_range 1 2) failure))

let pp_orphan_case (case, iterations, spec) =
  Fmt.str "%s iters=%d [%a]" (pp_app_case case) iterations Perturb.Spec.pp
    spec

let prop_orphans_match_oracle =
  QCheck.Test.make
    ~name:"dataflow orphan count equals the fixpoint oracle's" ~count:30
    (QCheck.make ~print:pp_orphan_case orphan_case_gen)
    (fun (((cols, rows), app), iterations, spec) ->
      let pg = Proc_grid.v ~cols ~rows in
      let o = Wrun.Dataflow.run ~iterations ~perturb:spec pg app in
      o.orphaned = oracle_orphans pg app ~iterations spec)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_zero_interval_identity; prop_orphans_match_oracle ]

let suite =
  [
    ( "recover.model",
      [
        Alcotest.test_case "due / checkpoint count" `Quick
          test_due_and_checkpoints;
        Alcotest.test_case "lost waves" `Quick test_lost_waves;
        Alcotest.test_case "optimal interval" `Quick test_optimal_interval;
        Alcotest.test_case "closed-form terms" `Quick test_terms;
      ] );
    ( "recover.store",
      [
        Alcotest.test_case "memory store" `Quick test_memory_store;
        Alcotest.test_case "file store round trip" `Quick
          test_file_store_round_trip;
      ] );
    ( "recover.sim",
      [
        Alcotest.test_case "simulator revives a killed rank" `Quick
          test_sim_recovers;
        Alcotest.test_case "recover spans match the closed form" `Quick
          test_sim_matches_closed_form;
        Alcotest.test_case "dataflow revives a killed rank" `Quick
          test_dataflow_recovers;
      ] );
    ( "recover.real",
      [
        Alcotest.test_case "recovered run is bitwise identical" `Quick
          test_real_recovery_bitwise;
        Alcotest.test_case "respawn from scratch" `Quick
          test_real_recovery_from_scratch;
      ] );
    ( "recover.channel",
      [
        Alcotest.test_case "usable after a timeout" `Quick
          test_channel_usable_after_timeout;
        Alcotest.test_case "replay suppression and release" `Quick
          test_channel_replay_suppression;
      ] );
    ( "recover.errors",
      [
        Alcotest.test_case "perturb clause location" `Quick
          test_spec_parse_error_location;
        Alcotest.test_case "app spec line numbers" `Quick
          test_app_spec_error_location;
      ] );
    ("recover.exit", [ Alcotest.test_case "0/3/4 contract" `Quick test_exit_status ]);
    ("recover.properties", props);
  ]
