(* Tests for the substrate-agnostic execution core (Wrun): the one Figure-4
   program against its three backends.

   The load-bearing property is cross-substrate agreement: the event-level
   simulator and the reference dataflow backend, executing the same
   Program.config, must produce identical per-rank message sequences — a
   differential oracle over random grids, schedules and tile heights. The
   dataflow backend additionally serves as a deadlock detector, which a
   deliberately broken communication order must trip. *)

open Wgrid

(* --- Recording harnesses: the same program on two substrates --- *)

module Sim_rec = Wrun.Record.Wrap (Xtsim.Wavefront_sim.Backend.Substrate)
module Df_rec = Wrun.Record.Wrap (Wrun.Dataflow.Substrate)

let sim_events pg app =
  let cores = Proc_grid.cores pg in
  let machine = Xtsim.Machine.v ~cmp:Wgrid.Cmp.single_core Loggp.Params.xt4 pg in
  let engine = Xtsim.Engine.create () in
  let b = Xtsim.Wavefront_sim.Backend.create engine machine app in
  let cfg = Wrun.Program.of_app pg app in
  let recs = Wrun.Record.create ~ranks:cores in
  for rank = 0 to cores - 1 do
    Xtsim.Engine.spawn engine (fun () ->
        Wrun.Program.run_rank (module Sim_rec) (recs, b) cfg rank)
  done;
  ignore (Xtsim.Engine.run engine);
  Array.init cores (Wrun.Record.events recs)

let dataflow_events ?perturb pg app =
  let cores = Proc_grid.cores pg in
  let t = Wrun.Dataflow.of_app ?perturb pg app in
  let cfg = Wrun.Program.of_app pg app in
  let recs = Wrun.Record.create ~ranks:cores in
  Wrun.Dataflow.exec t (fun rank ->
      Wrun.Program.run_rank (module Df_rec) (recs, t) cfg rank);
  let o = Wrun.Dataflow.outcome t in
  if not o.completed then Alcotest.fail "dataflow backend deadlocked";
  if o.mismatches <> [] then
    Alcotest.fail ("dataflow mismatch: " ^ List.hd o.mismatches);
  Array.init cores (Wrun.Record.events recs)

let schedules =
  [ Sweeps.Schedule.sweep3d; Sweeps.Schedule.lu; Sweeps.Schedule.chimaera ]

let nonwavefronts : Wavefront_core.App_params.nonwavefront list =
  [
    No_op;
    Fixed 3.0;
    Allreduce { count = 2; msg_size = 16 };
    Stencil { wg_stencil = 0.01; halo_bytes_per_cell = 24.0 };
  ]

let app_gen =
  QCheck.Gen.(
    map
      (fun (((cols, rows), (nz, htile)), (sched, nwf)) ->
        let grid = Data_grid.v ~nx:(2 * cols) ~ny:(2 * rows) ~nz in
        let app =
          Apps.Custom.params ~name:"qcheck" ~schedule:(List.nth schedules sched)
            ~htile ~nonwavefront:(List.nth nonwavefronts nwf) ~wg:1.0 grid
        in
        ((cols, rows), app))
      (pair
         (pair (pair (int_range 1 4) (int_range 1 4))
            (pair (int_range 1 8) (float_range 0.5 4.0)))
         (pair (int_range 0 2) (int_range 0 3))))

let pp_app_case ((cols, rows), (app : Wavefront_core.App_params.t)) =
  Fmt.str "%dx%d %a htile=%.2f %s" cols rows Data_grid.pp app.grid app.htile
    app.name

let prop_sim_vs_dataflow_sequences =
  QCheck.Test.make ~name:"xtsim and dataflow emit identical message sequences"
    ~count:40
    (QCheck.make ~print:pp_app_case app_gen)
    (fun ((cols, rows), app) ->
      let pg = Proc_grid.v ~cols ~rows in
      sim_events pg app = dataflow_events pg app)

(* Spot-check one sequence shape so the oracle itself is anchored: LU on a
   2x1 grid is a forward sweep (rank 0 sends x-faces east) then a backward
   one (rank 1 sends them west), one message per tile each way. *)
let test_sequence_shape () =
  let grid = Data_grid.v ~nx:4 ~ny:2 ~nz:2 in
  let app =
    Apps.Custom.params ~name:"shape" ~schedule:Sweeps.Schedule.lu ~htile:1.0
      ~nonwavefront:No_op ~wg:1.0 grid
  in
  let pg = Proc_grid.v ~cols:2 ~rows:1 in
  let ev = dataflow_events pg app in
  let is_send = function Wrun.Record.Send _ -> true | _ -> false in
  let is_recv = function Wrun.Record.Recv _ -> true | _ -> false in
  Array.iteri
    (fun rank events ->
      Alcotest.(check int)
        (Fmt.str "rank%d sends" rank)
        2
        (List.length (List.filter is_send events));
      Alcotest.(check int)
        (Fmt.str "rank%d recvs" rank)
        2
        (List.length (List.filter is_recv events)))
    ev

(* --- The dataflow backend as a deadlock detector --- *)

let test_dataflow_validates_app () =
  let pg = Proc_grid.v ~cols:8 ~rows:8 in
  let app = Apps.Sweep3d.params (Data_grid.v ~nx:16 ~ny:16 ~nz:4) in
  let o = Wrun.Dataflow.run ~iterations:2 pg app in
  Alcotest.(check bool) "completed" true o.completed;
  Alcotest.(check (list string)) "no mismatches" [] o.mismatches;
  Alcotest.(check bool) "messages flowed" true (o.messages > 0)

(* A deliberately broken communication order: both ranks receive before
   either sends — the classic head-to-head deadlock the validator exists to
   catch. *)
let test_dataflow_detects_deadlock () =
  let s = Wrun.Dataflow.Raw.create ~ranks:2 in
  let m : Wrun.Dataflow.msg = { axis = X; tile = 0; bytes = 8 } in
  Wrun.Dataflow.Raw.exec s (fun rank ->
      let peer = 1 - rank in
      ignore (Wrun.Dataflow.Raw.recv s ~rank ~src:peer);
      Wrun.Dataflow.Raw.send s ~src:rank ~dst:peer m);
  let o = Wrun.Dataflow.Raw.outcome s in
  Alcotest.(check bool) "not completed" false o.completed;
  Alcotest.(check int) "both ranks stuck" 2 (List.length o.blocked);
  match o.blocked with
  | (0, why) :: _ ->
      Alcotest.(check bool) "says what it waits on" true
        (String.length why > 0)
  | _ -> Alcotest.fail "expected rank 0 first"

(* A schedule whose sweeps disagree across ranks deadlocks rather than
   silently mis-pairing: rank 0 runs sweeps in one order, rank 1 in the
   reverse, so each blocks on a face the other has not produced. *)
let test_dataflow_detects_skewed_schedule () =
  let s = Wrun.Dataflow.Raw.create ~ranks:2 in
  let msg tile : Wrun.Dataflow.msg = { axis = X; tile; bytes = 8 } in
  Wrun.Dataflow.Raw.exec s (fun rank ->
      if rank = 0 then begin
        (* Sweep A flows 0 -> 1, sweep B flows 1 -> 0; rank 1 runs B first. *)
        Wrun.Dataflow.Raw.send s ~src:0 ~dst:1 (msg 0);
        ignore (Wrun.Dataflow.Raw.recv s ~rank:0 ~src:1);
        Wrun.Dataflow.Raw.barrier s ~rank:0
      end
      else begin
        ignore (Wrun.Dataflow.Raw.recv s ~rank:1 ~src:0);
        Wrun.Dataflow.Raw.send s ~src:1 ~dst:0 (msg 1);
        Wrun.Dataflow.Raw.barrier s ~rank:1;
        (* An extra un-matched receive: the broken tail. *)
        ignore (Wrun.Dataflow.Raw.recv s ~rank:1 ~src:0)
      end);
  let o = Wrun.Dataflow.Raw.outcome s in
  Alcotest.(check bool) "not completed" false o.completed;
  Alcotest.(check int) "one rank stuck" 1 (List.length o.blocked)

(* The recv-side oracle: a sender shipping the wrong face description is
   reported, not absorbed. *)
let test_dataflow_reports_mismatch () =
  let t = Wrun.Dataflow.create ~ranks:2 ~msg_ew:8 ~msg_ns:8 () in
  Wrun.Dataflow.exec t (fun rank ->
      if rank = 0 then
        Wrun.Dataflow.Substrate.send t ~rank:0 ~dst:1 ~axis:X ~tile:0
          { axis = X; tile = 5; bytes = 8 }
      else
        ignore
          (Wrun.Dataflow.Substrate.recv t ~rank:1 ~src:0 ~axis:X ~tile:0 ~h:1
             ~bytes:8));
  let o = Wrun.Dataflow.outcome t in
  Alcotest.(check bool) "completed" true o.completed;
  Alcotest.(check int) "one mismatch" 1 (List.length o.mismatches)

(* --- Perturbation on the clockless backend --- *)

(* A spec-killed rank must leave a decodable crime scene: the outcome names
   it, lists who is stuck waiting on it, and counts the messages its peers
   sent that nobody will ever receive. *)
let test_dataflow_flags_orphans () =
  let pg = Proc_grid.v ~cols:2 ~rows:2 in
  let app = Apps.Sweep3d.params (Data_grid.v ~nx:8 ~ny:8 ~nz:4) in
  let spec = Perturb.Spec.v ~failures:[ { rank = 1; after_tiles = 2 } ] () in
  let o = Wrun.Dataflow.run ~perturb:spec pg app in
  Alcotest.(check bool) "not completed" false o.completed;
  Alcotest.(check (list int)) "killed rank reported" [ 1 ] o.failed;
  Alcotest.(check bool) "peers stuck on the dead rank" true (o.blocked <> []);
  Alcotest.(check bool) "orphaned sends flagged" true (o.orphaned > 0)

(* Straggler ordering is a scheduling perturbation, not a semantic one:
   with every straggler's tasks deferred to last, the precedence graph must
   still complete, with no orphans and the exact same per-rank message
   sequences. *)
let test_dataflow_straggler_completes () =
  let pg = Proc_grid.v ~cols:2 ~rows:2 in
  let app = Apps.Sweep3d.params (Data_grid.v ~nx:8 ~ny:8 ~nz:4) in
  let spec =
    Perturb.Spec.v
      ~stragglers:[ { rank = 0; delay = 10.0 }; { rank = 3; delay = 5.0 } ]
      ()
  in
  let o = Wrun.Dataflow.run ~perturb:spec pg app in
  Alcotest.(check bool) "completed" true o.completed;
  Alcotest.(check int) "no orphans" 0 o.orphaned;
  Alcotest.(check bool) "identical sequences" true
    (dataflow_events pg app = dataflow_events ~perturb:spec pg app)

let straggler_spec_of_bits ~cores bits =
  let stragglers =
    List.filteri (fun r _ -> r < cores && (bits lsr r) land 1 = 1)
      (List.init 16 (fun r -> { Perturb.Spec.rank = r; delay = 1.0 }))
  in
  Perturb.Spec.v ~stragglers ()

let prop_dataflow_straggler_sequences =
  QCheck.Test.make
    ~name:"dataflow under straggler ordering emits identical sequences"
    ~count:25
    (QCheck.make
       ~print:(fun (c, bits) -> Fmt.str "%s stragglers=%#x" (pp_app_case c) bits)
       QCheck.Gen.(pair app_gen (int_bound 0xFFFF)))
    (fun (((cols, rows), app), bits) ->
      let pg = Proc_grid.v ~cols ~rows in
      let spec = straggler_spec_of_bits ~cores:(cols * rows) bits in
      dataflow_events pg app = dataflow_events ~perturb:spec pg app)

(* --- Program tiling --- *)

let test_tiling_covers_stack () =
  List.iter
    (fun (nz, htile) ->
      let t = Wrun.Program.tiling ~nz ~htile in
      let total = ref 0 in
      for i = 0 to t.ntiles - 1 do
        let h = t.h_of i in
        (* Fractional Htile can leave a zero-height trailing tile — the
           model counts ceil(nz/htile) tiles — but never a negative one. *)
        Alcotest.(check bool) "tile height sane" true (h >= 0);
        total := !total + h
      done;
      Alcotest.(check int)
        (Fmt.str "nz=%d htile=%g covers" nz htile)
        nz !total)
    [ (1, 1.0); (7, 2.0); (8, 2.5); (960, 53.33); (5, 10.0) ]

let test_tiling_int_matches_integral () =
  List.iter
    (fun (nz, htile) ->
      let a = Wrun.Program.tiling ~nz ~htile:(float_of_int htile) in
      let b = Wrun.Program.tiling_int ~nz ~htile in
      Alcotest.(check int) "ntiles" b.ntiles a.ntiles;
      for i = 0 to a.ntiles - 1 do
        Alcotest.(check int) (Fmt.str "tile %d" i) (b.h_of i) (a.h_of i)
      done)
    [ (1, 1); (7, 2); (8, 4); (9, 4); (100, 7) ]

(* --- The real (shmpi) backend through the core --- *)

(* The bitwise-equals-sequential guarantee must survive every non-wavefront
   epilogue the core can route to the real runtime. *)
let test_real_backend_nonwavefronts () =
  let grid = Data_grid.v ~nx:6 ~ny:5 ~nz:5 in
  let pg = Proc_grid.v ~cols:2 ~rows:2 in
  List.iter
    (fun nwf ->
      let plan =
        Kernels.Sweep_exec.plan ~htile:2 ~iterations:2 ~nonwavefront:nwf grid
          pg
      in
      let out = Kernels.Sweep_exec.run plan in
      Alcotest.(check bool)
        (Fmt.str "bitwise with %s"
           (match (nwf : Wavefront_core.App_params.nonwavefront) with
           | No_op -> "no_op"
           | Fixed _ -> "fixed"
           | Allreduce _ -> "allreduce"
           | Stencil _ -> "stencil"))
        true
        (Kernels.Sweep_exec.gather plan out.blocks
        = Kernels.Sweep_exec.run_sequential plan))
    [
      Wavefront_core.App_params.No_op;
      Fixed 1.0;
      Allreduce { count = 2; msg_size = 64 };
      Stencil { wg_stencil = 0.001; halo_bytes_per_cell = 16.0 };
    ]

let prop_real_backend_random_nonwavefront =
  QCheck.Test.make ~name:"real backend stays bitwise under random plans"
    ~count:12
    QCheck.(
      make
        Gen.(
          pair
            (pair (int_range 1 3) (int_range 1 3))
            (pair (int_range 1 4) (int_range 0 3))))
    (fun ((cols, rows), (htile, nwf)) ->
      let grid = Data_grid.v ~nx:(cols * 2) ~ny:(rows * 2) ~nz:5 in
      let pg = Proc_grid.v ~cols ~rows in
      let plan =
        Kernels.Sweep_exec.plan ~htile
          ~nonwavefront:(List.nth nonwavefronts nwf)
          ~schedule:Sweeps.Schedule.chimaera grid pg
      in
      let out = Kernels.Sweep_exec.run plan in
      Kernels.Sweep_exec.gather plan out.blocks
      = Kernels.Sweep_exec.run_sequential plan)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sim_vs_dataflow_sequences;
      prop_real_backend_random_nonwavefront;
      prop_dataflow_straggler_sequences;
    ]

let suite =
  [
    ( "run.differential",
      [
        Alcotest.test_case "sequence shape on 2x1" `Quick test_sequence_shape;
      ] );
    ( "run.dataflow",
      [
        Alcotest.test_case "validates a Table 3 app" `Quick
          test_dataflow_validates_app;
        Alcotest.test_case "detects head-to-head deadlock" `Quick
          test_dataflow_detects_deadlock;
        Alcotest.test_case "detects a skewed schedule" `Quick
          test_dataflow_detects_skewed_schedule;
        Alcotest.test_case "reports face mismatches" `Quick
          test_dataflow_reports_mismatch;
        Alcotest.test_case "flags orphaned sends on a killed rank" `Quick
          test_dataflow_flags_orphans;
        Alcotest.test_case "completes under straggler ordering" `Quick
          test_dataflow_straggler_completes;
      ] );
    ( "run.program",
      [
        Alcotest.test_case "tiling covers the stack" `Quick
          test_tiling_covers_stack;
        Alcotest.test_case "integer tiling matches integral Htile" `Quick
          test_tiling_int_matches_integral;
      ] );
    ( "run.real",
      [
        Alcotest.test_case "bitwise under every epilogue" `Quick
          test_real_backend_nonwavefronts;
      ] );
    ("run.properties", props);
  ]
