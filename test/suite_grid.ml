(* Tests for the data/processor grid decomposition and the CMP node
   mapping (paper Figure 1, Section 4.3, Table 6). *)

open Wgrid

let feq = Alcotest.float 1e-9

(* --- Data grid --- *)

let test_data_grid () =
  let g = Data_grid.v ~nx:240 ~ny:240 ~nz:960 in
  Alcotest.(check int) "cells" (240 * 240 * 960) (Data_grid.cells g);
  Alcotest.(check int) "cube" (1_000_000_000) Data_grid.(cells (cube 1000))

let test_data_grid_invalid () =
  Alcotest.check_raises "zero dim"
    (Invalid_argument "Data_grid.v: dimensions must be >= 1") (fun () ->
      ignore (Data_grid.v ~nx:0 ~ny:1 ~nz:1))

let test_workload_sizes () =
  Alcotest.(check bool) "20M close" true
    (abs (Data_grid.cells Data_grid.sweep3d_20m - 20_000_000) < 100_000)

(* --- Processor grid --- *)

let test_of_cores_square () =
  let g = Proc_grid.of_cores 4096 in
  Alcotest.(check int) "cols" 64 g.cols;
  Alcotest.(check int) "rows" 64 g.rows

let test_of_cores_pow2 () =
  let g = Proc_grid.of_cores 8192 in
  Alcotest.(check int) "cols" 128 g.cols;
  Alcotest.(check int) "rows" 64 g.rows

let test_corners () =
  let g = Proc_grid.v ~cols:8 ~rows:4 in
  Alcotest.(check (pair int int)) "C11" (1, 1) (Proc_grid.corner_coords g C11);
  Alcotest.(check (pair int int)) "Cnm" (8, 4) (Proc_grid.corner_coords g Cnm);
  Alcotest.(check (pair int int)) "Cn1" (8, 1) (Proc_grid.corner_coords g Cn1);
  Alcotest.(check (pair int int)) "C1m" (1, 4) (Proc_grid.corner_coords g C1m)

let test_corner_relations () =
  Alcotest.(check bool) "opposite of C11" true (Proc_grid.opposite C11 = Cnm);
  Alcotest.(check bool) "diag" true (Proc_grid.is_diagonal_of C11 Cn1);
  Alcotest.(check bool) "diag" true (Proc_grid.is_diagonal_of C11 C1m);
  Alcotest.(check bool) "not diag" false (Proc_grid.is_diagonal_of C11 Cnm);
  List.iter
    (fun c ->
      Alcotest.(check bool) "opposite involutive" true
        (Proc_grid.(opposite (opposite c)) = c))
    Proc_grid.all_corners

let prop_rank_coords_roundtrip =
  QCheck.Test.make ~name:"rank/coords round-trip" ~count:200
    QCheck.(pair (int_range 1 64) (int_range 1 64))
    (fun (cols, rows) ->
      let g = Proc_grid.v ~cols ~rows in
      let ok = ref true in
      for r = 0 to Proc_grid.cores g - 1 do
        if Proc_grid.rank g (Proc_grid.coords g r) <> r then ok := false
      done;
      !ok)

let prop_of_cores_exact =
  QCheck.Test.make ~name:"of_cores produces exactly the core count"
    ~count:200
    QCheck.(int_range 1 200_000)
    (fun p ->
      let g = Proc_grid.of_cores p in
      Proc_grid.cores g = p && g.cols >= g.rows)

(* --- Decomposition --- *)

let test_cells_per_proc () =
  let g = Data_grid.chimaera_240 in
  let p = Proc_grid.of_cores 4096 in
  Alcotest.check feq "Nx/n" (240.0 /. 64.0) (Decomp.cells_x g p);
  Alcotest.check feq "Ny/m" (240.0 /. 64.0) (Decomp.cells_y g p)

let test_blocks_balanced () =
  let bs = Decomp.blocks ~cells:10 ~parts:3 in
  Alcotest.(check (list int)) "blocks" [ 4; 3; 3 ] bs

let prop_blocks_sum =
  QCheck.Test.make ~name:"blocks partition all cells" ~count:200
    QCheck.(pair (int_range 1 10_000) (int_range 1 128))
    (fun (cells, parts) ->
      let bs = Decomp.blocks ~cells ~parts in
      List.fold_left ( + ) 0 bs = cells
      && List.length bs = parts
      && List.for_all (fun b -> b >= cells / parts) bs)

let prop_block_of_matches_blocks =
  QCheck.Test.make ~name:"block_of agrees with blocks" ~count:100
    QCheck.(pair (int_range 1 5_000) (int_range 1 64))
    (fun (cells, parts) ->
      let bs = Decomp.blocks ~cells ~parts in
      List.for_all2
        (fun b i -> b = Decomp.block_of ~cells ~parts ~index:i)
        bs
        (List.init parts Fun.id))

let prop_offset_of_closed_form =
  QCheck.Test.make ~name:"offset_of is the prefix sum of block_of" ~count:100
    QCheck.(pair (int_range 1 5_000) (int_range 1 64))
    (fun (cells, parts) ->
      let prefix = ref 0 in
      let ok = ref (Decomp.offset_of ~cells ~parts ~index:parts = cells) in
      for index = 0 to parts - 1 do
        ok := !ok && Decomp.offset_of ~cells ~parts ~index = !prefix;
        prefix := !prefix + Decomp.block_of ~cells ~parts ~index
      done;
      !ok)

let test_message_size () =
  (* Chimaera on 64x64: 8B * 10 angles * Htile=1 * 240/64 cells = 300B. *)
  let size = Decomp.message_size ~bytes_per_cell:80.0 ~htile:1.0 ~extent:3.75 in
  Alcotest.(check int) "EW message" 300 size

(* --- Tiles --- *)

let test_htile_sweep3d () =
  Alcotest.check feq "mk=10 mmi=3 mmo=6" 5.0
    (Tile.htile_sweep3d ~mk:10 ~mmi:3 ~mmo:6);
  Alcotest.check feq "mk=4 mmi=3 mmo=6" 2.0
    (Tile.htile_sweep3d ~mk:4 ~mmi:3 ~mmo:6)

let test_ntiles () =
  Alcotest.check feq "1000/2" 500.0 (Tile.ntiles ~nz:1000 ~htile:2.0);
  Alcotest.(check int) "ceil" 334 (Tile.ntiles_int ~nz:1000 ~htile:3.0)

let test_kblocks () =
  Alcotest.(check int) "kblocks" 100 (Tile.kblocks ~nz:1000 ~mk:10);
  Alcotest.(check int) "kblocks ceil" 101 (Tile.kblocks ~nz:1001 ~mk:10)

let test_htile_invalid () =
  Alcotest.check_raises "mmi > mmo"
    (Invalid_argument "Tile.htile_sweep3d: mmi must be <= mmo") (fun () ->
      ignore (Tile.htile_sweep3d ~mk:1 ~mmi:7 ~mmo:6))

(* --- CMP node mapping (Table 6) --- *)

let test_same_node_1x2 () =
  let c = Cmp.v ~cx:1 ~cy:2 in
  Alcotest.(check bool) "vertical pair" true (Cmp.same_node c (1, 1) (1, 2));
  Alcotest.(check bool) "next pair" false (Cmp.same_node c (1, 2) (1, 3));
  Alcotest.(check bool) "horizontal" false (Cmp.same_node c (1, 1) (2, 1))

let test_link_locality_2x2 () =
  let c = Cmp.v ~cx:2 ~cy:2 in
  (* Core (1,1): E to (2,1) on-chip, S to (1,2) on-chip. *)
  Alcotest.(check bool) "E on-chip" true
    (Cmp.link_locality c ~src:(1, 1) E = Loggp.Comm_model.On_chip);
  Alcotest.(check bool) "S on-chip" true
    (Cmp.link_locality c ~src:(1, 1) S = Loggp.Comm_model.On_chip);
  (* Core (2,2): E to (3,2) off-node, S to (2,3) off-node. *)
  Alcotest.(check bool) "E off-node" true
    (Cmp.link_locality c ~src:(2, 2) E = Loggp.Comm_model.Off_node);
  Alcotest.(check bool) "S off-node" true
    (Cmp.link_locality c ~src:(2, 2) S = Loggp.Comm_model.Off_node)

(* Table 6's literal rules, checked against link_locality over a grid:
   SendE by core (i,j) is on-chip iff i mod Cx <> 0 (and Cx <> 1), etc. *)
let test_table6_rules () =
  let check_rule cmp =
    let { Cmp.cx; cy } = cmp in
    for i = 1 to 8 do
      for j = 1 to 8 do
        let e = Cmp.link_locality cmp ~src:(i, j) E = Loggp.Comm_model.On_chip in
        let w = Cmp.link_locality cmp ~src:(i, j) W = Loggp.Comm_model.On_chip in
        let s = Cmp.link_locality cmp ~src:(i, j) S = Loggp.Comm_model.On_chip in
        let n = Cmp.link_locality cmp ~src:(i, j) N = Loggp.Comm_model.On_chip in
        Alcotest.(check bool) "E rule" (i mod cx <> 0 && cx <> 1) e;
        Alcotest.(check bool) "W rule" (i mod cx <> 1 && cx <> 1) w;
        Alcotest.(check bool) "S rule" (j mod cy <> 0 && cy <> 1) s;
        Alcotest.(check bool) "N rule" (j mod cy <> 1 && cy <> 1) n
      done
    done
  in
  List.iter check_rule
    [ Cmp.v ~cx:1 ~cy:2; Cmp.v ~cx:2 ~cy:2; Cmp.v ~cx:2 ~cy:4; Cmp.v ~cx:4 ~cy:4 ]

let test_of_cores_per_node () =
  let c = Cmp.of_cores_per_node 8 in
  Alcotest.(check int) "cx" 2 c.cx;
  Alcotest.(check int) "cy" 4 c.cy;
  Alcotest.(check int) "cores" 16 (Cmp.cores_per_node (Cmp.of_cores_per_node 16))

let test_nodes_for () =
  let g = Proc_grid.v ~cols:8 ~rows:8 in
  Alcotest.(check int) "dual-core" 32 (Cmp.nodes_for g (Cmp.v ~cx:1 ~cy:2));
  Alcotest.(check int) "quad-core" 16 (Cmp.nodes_for g (Cmp.v ~cx:2 ~cy:2));
  Alcotest.(check int) "uneven" 6 (Cmp.nodes_for (Proc_grid.v ~cols:3 ~rows:5) (Cmp.v ~cx:2 ~cy:2))

let prop_locality_symmetric =
  QCheck.Test.make ~name:"E/W and N/S localities are symmetric" ~count:200
    QCheck.(
      quad (int_range 1 4) (int_range 1 4) (int_range 1 32) (int_range 1 32))
    (fun (cx, cy, i, j) ->
      let c = Cmp.v ~cx ~cy in
      Cmp.link_locality c ~src:(i, j) E
      = Cmp.link_locality c ~src:(i + 1, j) W
      && Cmp.link_locality c ~src:(i, j) S
         = Cmp.link_locality c ~src:(i, j + 1) N)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_rank_coords_roundtrip;
      prop_of_cores_exact;
      prop_blocks_sum;
      prop_block_of_matches_blocks;
      prop_offset_of_closed_form;
      prop_locality_symmetric;
    ]

let suite =
  [
    ( "grid.data",
      [
        Alcotest.test_case "cells" `Quick test_data_grid;
        Alcotest.test_case "invalid" `Quick test_data_grid_invalid;
        Alcotest.test_case "paper workloads" `Quick test_workload_sizes;
      ] );
    ( "grid.proc",
      [
        Alcotest.test_case "of_cores square" `Quick test_of_cores_square;
        Alcotest.test_case "of_cores power of two" `Quick test_of_cores_pow2;
        Alcotest.test_case "corners" `Quick test_corners;
        Alcotest.test_case "corner relations" `Quick test_corner_relations;
      ] );
    ( "grid.decomp",
      [
        Alcotest.test_case "cells per proc" `Quick test_cells_per_proc;
        Alcotest.test_case "balanced blocks" `Quick test_blocks_balanced;
        Alcotest.test_case "message size" `Quick test_message_size;
      ] );
    ( "grid.tile",
      [
        Alcotest.test_case "Sweep3D Htile" `Quick test_htile_sweep3d;
        Alcotest.test_case "ntiles" `Quick test_ntiles;
        Alcotest.test_case "kblocks" `Quick test_kblocks;
        Alcotest.test_case "invalid htile" `Quick test_htile_invalid;
      ] );
    ( "grid.cmp",
      [
        Alcotest.test_case "1x2 node pairs" `Quick test_same_node_1x2;
        Alcotest.test_case "2x2 localities" `Quick test_link_locality_2x2;
        Alcotest.test_case "Table 6 rules" `Quick test_table6_rules;
        Alcotest.test_case "of_cores_per_node" `Quick test_of_cores_per_node;
        Alcotest.test_case "nodes_for" `Quick test_nodes_for;
      ] );
    ("grid.properties", props);
  ]
