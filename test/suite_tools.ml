(* Tests for the tooling around the model: spec files, the explanation
   worksheet, and sensitivity analysis. *)

open Wavefront_core

let xt4 = Loggp.Params.xt4

(* --- Spec files --- *)

let full_spec =
  {|
# an imaginary code
name = hydra
nx = 480
ny = 480
nz = 320
wg = 1.4
wg_pre = 0.15
htile = 2
nsweeps = 4
nfull = 2
ndiag = 1
bytes_per_cell = 96
iterations = 200
nonwavefront = allreduce 2
|}

let test_spec_parses () =
  match Apps.Spec.of_string full_spec with
  | Error (`Msg m) -> Alcotest.fail m
  | Ok app ->
      Alcotest.(check string) "name" "hydra" app.App_params.name;
      Alcotest.(check int) "cells" (480 * 480 * 320)
        (Wgrid.Data_grid.cells app.grid);
      Alcotest.(check (float 1e-9)) "wg" 1.4 app.wg;
      Alcotest.(check (float 1e-9)) "wg_pre" 0.15 app.wg_pre;
      Alcotest.(check (float 1e-9)) "htile" 2.0 app.htile;
      Alcotest.(check int) "iterations" 200 app.iterations;
      let c = App_params.counts app in
      Alcotest.(check int) "nsweeps" 4 c.nsweeps;
      Alcotest.(check int) "nfull" 2 c.nfull;
      Alcotest.(check int) "ndiag" 1 c.ndiag;
      (match app.nonwavefront with
      | Allreduce { count = 2; _ } -> ()
      | _ -> Alcotest.fail "expected 2 all-reduces")

let test_spec_minimal () =
  match Apps.Spec.of_string "nx=8\nny=8\nnz=8\nwg=1.0" with
  | Error (`Msg m) -> Alcotest.fail m
  | Ok app ->
      Alcotest.(check (float 1e-9)) "default htile" 1.0 app.App_params.htile;
      Alcotest.(check int) "default iterations" 1 app.App_params.iterations

let expect_error ~substr spec =
  match Apps.Spec.of_string spec with
  | Ok _ -> Alcotest.fail ("expected an error mentioning " ^ substr)
  | Error (`Msg m) ->
      let contains () =
        let n = String.length substr and h = String.length m in
        let rec go i = i + n <= h && (String.sub m i n = substr || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (m ^ " mentions " ^ substr) true (contains ())

let test_spec_errors () =
  expect_error ~substr:"missing required" "nx=8\nny=8\nnz=8";
  expect_error ~substr:"unknown key" "nx=8\nny=8\nnz=8\nwg=1\nbogus=3";
  expect_error ~substr:"expected an integer" "nx=eight\nny=8\nnz=8\nwg=1";
  expect_error ~substr:"KEY = VALUE" "nx=8\nny=8\nnz=8\nwg=1\nnot a binding";
  expect_error ~substr:"nonwavefront"
    "nx=8\nny=8\nnz=8\nwg=1\nnonwavefront=sometimes";
  expect_error ~substr:"stencil"
    "nx=8\nny=8\nnz=8\nwg=1\nnonwavefront = stencil x y"

let test_spec_schedule () =
  (match
     Apps.Spec.of_string "nx=8\nny=8\nnz=8\nwg=1\nschedule = chimaera"
   with
  | Ok app ->
      let c = App_params.counts app in
      Alcotest.(check int) "chimaera nsweeps" 8 c.nsweeps;
      Alcotest.(check bool) "same sweeps as preset" true
        (Sweeps.Schedule.sweeps app.App_params.schedule
        = Sweeps.Schedule.sweeps Sweeps.Schedule.chimaera)
  | Error (`Msg m) -> Alcotest.fail m);
  expect_error ~substr:"schedule"
    "nx=8\nny=8\nnz=8\nwg=1\nschedule = zigzag";
  expect_error ~substr:"conflicts"
    "nx=8\nny=8\nnz=8\nwg=1\nschedule = lu\nnsweeps = 4"

let test_spec_allreduce_bytes () =
  (match
     Apps.Spec.of_string "nx=8\nny=8\nnz=8\nwg=1\nnonwavefront=allreduce 3 256"
   with
  | Ok app -> (
      match app.App_params.nonwavefront with
      | Allreduce { count; msg_size } ->
          Alcotest.(check int) "count" 3 count;
          Alcotest.(check int) "msg_size" 256 msg_size
      | _ -> Alcotest.fail "expected allreduce")
  | Error (`Msg m) -> Alcotest.fail m);
  (* The two-token form still defaults to 8-byte messages. *)
  (match
     Apps.Spec.of_string "nx=8\nny=8\nnz=8\nwg=1\nnonwavefront=allreduce 3"
   with
  | Ok app -> (
      match app.App_params.nonwavefront with
      | Allreduce { count = 3; msg_size = 8 } -> ()
      | _ -> Alcotest.fail "expected allreduce 3 x 8B")
  | Error (`Msg m) -> Alcotest.fail m);
  expect_error ~substr:"all-reduce"
    "nx=8\nny=8\nnz=8\nwg=1\nnonwavefront=allreduce 3 none"

let test_spec_stencil_and_fixed () =
  (match Apps.Spec.of_string "nx=8\nny=8\nnz=8\nwg=1\nnonwavefront=stencil 0.1 40" with
  | Ok app -> (
      match app.App_params.nonwavefront with
      | Stencil { wg_stencil; halo_bytes_per_cell } ->
          Alcotest.(check (float 1e-9)) "wg_stencil" 0.1 wg_stencil;
          Alcotest.(check (float 1e-9)) "halo" 40.0 halo_bytes_per_cell
      | _ -> Alcotest.fail "expected stencil")
  | Error (`Msg m) -> Alcotest.fail m);
  match Apps.Spec.of_string "nx=8\nny=8\nnz=8\nwg=1\nnonwavefront=fixed 123.5" with
  | Ok app -> (
      match app.App_params.nonwavefront with
      | Fixed t -> Alcotest.(check (float 1e-9)) "fixed" 123.5 t
      | _ -> Alcotest.fail "expected fixed")
  | Error (`Msg m) -> Alcotest.fail m

(* --- Explain --- *)

let test_worksheet_renders () =
  let app = Apps.Chimaera.p240 () in
  (* 64 cores: 2400-byte faces, so the rendezvous path shows up. *)
  let cfg = Plugplay.config xt4 ~cores:64 in
  let s = Fmt.str "%a" (fun ppf () -> Explain.worksheet ppf app cfg) () in
  List.iter
    (fun needle ->
      let contains =
        let n = String.length needle and h = String.length s in
        let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("worksheet mentions " ^ needle) true contains)
    [ "W (r1b)"; "Tdiagfill"; "Tfullfill"; "Tstack"; "Titer"; "rendezvous" ]

(* --- Sensitivity --- *)

let test_elasticities_homogeneous () =
  (* The model is homogeneous of degree one in its time-like inputs, so the
     elasticities of Wg, Wg_pre, G, L and o must sum to ~1. *)
  List.iter
    (fun (app, cores) ->
      let cfg = Plugplay.config xt4 ~cores in
      let e input = Sensitivity.elasticity app cfg input in
      let sum =
        e Sensitivity.Wg +. e Wg_pre +. e G +. e L +. e O
      in
      Alcotest.check (Alcotest.float 0.02)
        (Fmt.str "%s @%d" app.App_params.name cores)
        1.0 sum)
    [ (Apps.Chimaera.p240 (), 1024); (Apps.Lu.class_e (), 4096);
      (Apps.Sweep3d.p20m (), 4096) ]

let test_wg_elasticity_tracks_compute_share () =
  let app = Apps.Chimaera.p240 () in
  let cfg = Plugplay.config xt4 ~cores:1024 in
  let c = Plugplay.components app cfg in
  let e = Sensitivity.elasticity app cfg Sensitivity.Wg in
  Alcotest.check (Alcotest.float 0.03) "e_Wg ~ compute share"
    (c.computation /. c.total) e

let test_sensitivity_shifts_with_scale () =
  (* Communication-bound configurations care about o and L; compute-bound
     ones about Wg. *)
  let app = Apps.Chimaera.p240 () in
  let e cores input =
    Sensitivity.elasticity app (Plugplay.config xt4 ~cores) input
  in
  Alcotest.(check bool) "Wg matters more at small P" true
    (e 1024 Sensitivity.Wg > e 32768 Sensitivity.Wg);
  Alcotest.(check bool) "o matters more at large P" true
    (e 32768 Sensitivity.O > e 1024 Sensitivity.O)

let test_analyze_covers_all_inputs () =
  let rows =
    Sensitivity.analyze (Apps.Sweep3d.p20m ()) (Plugplay.config xt4 ~cores:1024)
  in
  Alcotest.(check int) "all inputs" (List.length Sensitivity.all_inputs)
    (List.length rows);
  List.iter
    (fun (r : Sensitivity.row) ->
      Alcotest.(check bool)
        (Sensitivity.input_name r.input ^ " finite")
        true
        (Float.is_finite r.elasticity))
    rows

let suite =
  [
    ( "tools.spec",
      [
        Alcotest.test_case "full spec parses" `Quick test_spec_parses;
        Alcotest.test_case "minimal spec + defaults" `Quick test_spec_minimal;
        Alcotest.test_case "errors are loud" `Quick test_spec_errors;
        Alcotest.test_case "stencil and fixed epilogues" `Quick
          test_spec_stencil_and_fixed;
        Alcotest.test_case "schedule presets" `Quick test_spec_schedule;
        Alcotest.test_case "allreduce message size" `Quick
          test_spec_allreduce_bytes;
      ] );
    ( "tools.explain",
      [ Alcotest.test_case "worksheet renders" `Quick test_worksheet_renders ]
    );
    ( "tools.sensitivity",
      [
        Alcotest.test_case "homogeneity: elasticities sum to 1" `Quick
          test_elasticities_homogeneous;
        Alcotest.test_case "Wg elasticity = compute share" `Quick
          test_wg_elasticity_tracks_compute_share;
        Alcotest.test_case "shifts with scale" `Quick
          test_sensitivity_shifts_with_scale;
        Alcotest.test_case "analyze covers inputs" `Quick
          test_analyze_covers_all_inputs;
      ] );
  ]
