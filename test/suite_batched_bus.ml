(* The contention-aware batched engine, held to the event simulator: a
   pinned cross-engine differential matrix (bus on/off x cores-per-node
   1/2/4 x eager/rendezvous message sizes x clean/perturbed/recovering
   runs, each cell with its own tolerance), the Table-6 closed-form bus
   layer of Wrun.Costs, and the QCheck contracts — bus off is bitwise
   PR-7 behavior for every domain count, bus delay is monotone in
   cores-per-node, and domain sharding never changes a bus-on result.

   Tolerance contract (also in DESIGN.md): the batched engine charges
   the paper's closed-form interference coeff * I per tile-loop
   operation where the event simulator queues a per-node bus clock, so
   with multi-core nodes (or the bus on) the two agree only within the
   per-cell bounds pinned below — measured divergence plus ~50%
   headroom. Both engines are deterministic, so these are regression
   pins, not flake margins. *)

open Wgrid

let xt4 = Loggp.Params.xt4
let sweep n = Apps.Sweep3d.params (Data_grid.cube n)

let spec s =
  match Perturb.Spec.of_string s with
  | Ok v -> v
  | Error (`Msg e) -> Alcotest.failf "bad spec %S: %s" s e

let cfg_for ~cores ~cpn =
  Wavefront_core.Plugplay.config
    ~cmp:(Cmp.of_cores_per_node cpn)
    (Loggp.Params.with_cores_per_node xt4 cpn)
    ~cores

let waves_of (app : Wavefront_core.App_params.t) =
  Sweeps.Schedule.nsweeps app.schedule
  * Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile

(* One engine's observed timeline, reconstructed from a span trace the
   same way every report does. *)
let observed ~model_bus ?perturb ?recover ~engine cfg app =
  let tr = Obs.Tracer.create ~capacity:2_000_000 () in
  let o =
    Harness.Engine.observed_run ~model_bus ?perturb ?recover ~obs:tr engine
      cfg app
  in
  (o, Obs.Timeline.of_spans ~waves:(waves_of app) (Obs.Tracer.spans tr))

(* Max abs per-cell divergence of window width and busy time. *)
let cell_divergence (a : Obs.Timeline.t) (b : Obs.Timeline.t) =
  let d = ref 0.0 in
  for r = 0 to a.ranks - 1 do
    for c = 0 to a.waves do
      let ca = a.cells.(r).(c) and cb = b.cells.(r).(c) in
      d :=
        Float.max !d
          (Float.max
             (abs_float
                (Obs.Timeline.cell_width ca -. Obs.Timeline.cell_width cb))
             (abs_float
                (Obs.Timeline.cell_busy ca -. Obs.Timeline.cell_busy cb)))
    done
  done;
  !d

(* --- The differential matrix --- *)

let policy =
  { Perturb.Recover.interval = 16; ckpt_cost = 25.0; restart_cost = 400.0 }

type mcase = {
  name : string;
  cores : int;
  cpn : int;
  nz : int;  (** cube edge: 16 -> 384 B eager msgs, 48 -> 1152 B rendezvous *)
  bus : bool;
  perturb : string option;
  recover : Perturb.Recover.policy option;
  tol_cell : float;  (** max abs per-cell width/busy divergence, us *)
  tol_elapsed : float;  (** relative elapsed divergence *)
}

let case ?(cores = 16) ?perturb ?recover ~cpn ~nz ~bus name tol_cell
    tol_elapsed =
  { name; cores; cpn; nz; bus; perturb; recover; tol_cell; tol_elapsed }

(* Measured max divergences (see EXPERIMENTS.md) with ~50% headroom.
   cpn 1 with the bus on is not a no-op for the event engine: a node's
   own back-to-back sends queue on its bus clock, while the closed-form
   coefficients are zero — the first column pins that gap too. *)
let matrix =
  [
    case "cpn1-eager-clean-buson" ~cpn:1 ~nz:16 ~bus:true 12.0 0.02;
    case "cpn1-eager-straggler-buson" ~cpn:1 ~nz:16 ~bus:true
      ~perturb:"seed=9 straggler=3:250" 20.0 0.01;
    case "cpn1-rendez-clean-buson" ~cpn:1 ~nz:48 ~bus:true 850.0 0.07;
    case "cpn2-eager-clean-buson" ~cpn:2 ~nz:16 ~bus:true 130.0 0.14;
    case "cpn2-rendez-clean-buson" ~cpn:2 ~nz:48 ~bus:true 750.0 0.07;
    case "cpn2-eager-straggler-buson" ~cpn:2 ~nz:16 ~bus:true
      ~perturb:"seed=9 straggler=3:250" 80.0 0.03;
    case "cpn2-eager-recover-buson" ~cpn:2 ~nz:16 ~bus:true
      ~perturb:"seed=5 fail=5:40" ~recover:policy 150.0 0.12;
    case "cpn4-eager-clean-buson" ~cpn:4 ~nz:16 ~bus:true 280.0 0.30;
    case "cpn4-rendez-clean-buson" ~cpn:4 ~nz:48 ~bus:true 1350.0 0.07;
    case "cpn4-eager-straggler-buson" ~cpn:4 ~nz:16 ~bus:true
      ~perturb:"seed=9 straggler=3:250" 120.0 0.04;
    case "cpn4-eager-recover-buson" ~cpn:4 ~nz:16 ~bus:true
      ~perturb:"seed=5 fail=5:40" ~recover:policy 280.0 0.25;
    case "cpn2-eager-clean-busoff" ~cpn:2 ~nz:16 ~bus:false 25.0 0.01;
    case "cpn4-eager-clean-busoff" ~cpn:4 ~nz:16 ~bus:false 100.0 0.03;
    case "cpn2-rendez-clean-busoff" ~cpn:2 ~nz:48 ~bus:false 1000.0 0.08;
    (* The pinned 64-rank acceptance case of the issue. *)
    case "64r-cpn2-eager-clean-buson" ~cores:64 ~cpn:2 ~nz:16 ~bus:true 150.0
      0.15;
    case "64r-cpn4-eager-clean-buson" ~cores:64 ~cpn:4 ~nz:16 ~bus:true 250.0
      0.35;
  ]

let test_matrix () =
  List.iter
    (fun c ->
      let cfg = cfg_for ~cores:c.cores ~cpn:c.cpn in
      let app = sweep c.nz in
      let perturb = Option.map spec c.perturb in
      let oe, tl_e =
        observed ~model_bus:c.bus ?perturb ?recover:c.recover
          ~engine:Harness.Engine.Event cfg app
      in
      let ob, tl_b =
        observed ~model_bus:c.bus ?perturb ?recover:c.recover
          ~engine:Harness.Engine.Batched cfg app
      in
      Alcotest.(check bool) (c.name ^ ": both completed") true
        (oe.completed && ob.completed);
      Alcotest.(check (pair int int))
        (c.name ^ ": same timeline shape")
        (tl_e.ranks, tl_e.waves)
        (tl_b.ranks, tl_b.waves);
      let d = cell_divergence tl_e tl_b in
      if d > c.tol_cell then
        Alcotest.failf "%s: per-cell divergence %.4f us exceeds pinned %.1f"
          c.name d c.tol_cell;
      let rel = abs_float (ob.elapsed -. oe.elapsed) /. oe.elapsed in
      if rel > c.tol_elapsed then
        Alcotest.failf "%s: elapsed divergence %.2f%% exceeds pinned %.0f%%"
          c.name (100.0 *. rel)
          (100.0 *. c.tol_elapsed))
    matrix

(* --- The Costs bus layer: coefficients x Table-6 quantum --- *)

let test_costs_bus_terms () =
  let pg = Proc_grid.of_cores 16 in
  let app = sweep 16 in
  let quantum_ew =
    Loggp.Comm_model.contention_i xt4.onchip
      (Wavefront_core.App_params.message_size_ew app pg)
  and quantum_ns =
    Loggp.Comm_model.contention_i xt4.onchip
      (Wavefront_core.App_params.message_size_ns app pg)
  in
  let terms ?model_bus cpn =
    let c =
      Wrun.Costs.loggp ?model_bus ~cmp:(Cmp.of_cores_per_node cpn) xt4 pg app
    in
    (Wrun.Costs.bus_ew c, Wrun.Costs.bus_ns c, Wrun.Costs.model_bus c)
  in
  (* Off by default, and a no-op on single-core nodes even when on. *)
  Alcotest.(check (triple (float 0.0) (float 0.0) bool))
    "default construction carries no bus" (0.0, 0.0, false) (terms 2);
  Alcotest.(check (triple (float 0.0) (float 0.0) bool))
    "explicitly off" (0.0, 0.0, false)
    (terms ~model_bus:false 4);
  Alcotest.(check (triple (float 0.0) (float 0.0) bool))
    "single-core nodes never contend" (0.0, 0.0, false)
    (terms ~model_bus:true 1);
  (* Table-6 rows: 1x2 charges the N/S axis, 2x2 both, 4x4 both at 4I. *)
  Alcotest.(check (triple (float 0.0) (float 0.0) bool))
    "1x2: I on the N/S axis only" (0.0, quantum_ns, true)
    (terms ~model_bus:true 2);
  Alcotest.(check (triple (float 0.0) (float 0.0) bool))
    "2x2: I on every operation" (quantum_ew, quantum_ns, true)
    (terms ~model_bus:true 4);
  Alcotest.(check (triple (float 0.0) (float 0.0) bool))
    "4x4: 4I on every operation"
    (4.0 *. quantum_ew, 4.0 *. quantum_ns, true)
    (terms ~model_bus:true 16);
  (* The quantum itself is o_dma + size * G_dma. *)
  Alcotest.(check (float 1e-9)) "quantum is o_dma + size * G_dma"
    (xt4.onchip.o_dma
    +. float_of_int (Wavefront_core.App_params.message_size_ew app pg)
       *. xt4.onchip.g_dma)
    quantum_ew

(* --- Rank ceiling regression: the advertised escape hatch works with
   the bus on, and the CLI still exits 2 --- *)

let has_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_rank_ceiling_names_batched () =
  let cfg = cfg_for ~cores:16 ~cpn:2 in
  let app = sweep 16 in
  (match
     Harness.Engine.observed_run ~model_bus:true ~max_ranks:4
       Harness.Engine.Event cfg app
   with
  | _ -> Alcotest.fail "expected Rank_ceiling"
  | exception Xtsim.Wavefront_sim.Rank_ceiling r ->
      let printed = Printexc.to_string (Xtsim.Wavefront_sim.Rank_ceiling r) in
      Alcotest.(check bool) "printer names --engine=batched" true
        (has_sub ~sub:"--engine=batched" printed);
      Alcotest.(check bool) "printer names --max-ranks" true
        (has_sub ~sub:"--max-ranks" printed));
  (* The engine the printer points at completes the same multi-core,
     bus-on configuration with no ceiling at all. *)
  let ob =
    Harness.Engine.observed_run ~model_bus:true ~max_ranks:4
      Harness.Engine.Batched cfg app
  in
  Alcotest.(check bool) "batched honors the spec past the ceiling" true
    ob.completed;
  (* The CLI path: or_rank_ceiling still maps the exception to exit 2.
     Under `dune runtest` the binary sits next to the test dir; under
     `dune exec` from the workspace root it sits in _build. *)
  match
    List.find_opt Sys.file_exists
      [ "../bin/main.exe"; "_build/default/bin/main.exe" ]
  with
  | None -> ()
  | Some exe ->
      Alcotest.(check int) "simulate past the ceiling exits 2" 2
        (Sys.command
           (exe ^ " simulate --cores 16 --max-ranks 4 >/dev/null 2>&1"))

(* --- QCheck contracts --- *)

let perturb_of kind seed =
  match kind with
  | 0 -> None
  | 1 -> Some (spec (Printf.sprintf "seed=%d noise=uniform:0.2" seed))
  | _ -> Some (spec (Printf.sprintf "seed=%d straggler=1:150" seed))

(* (a) bus off is bitwise the PR 7 engine, for every domain count. *)
let qcheck_bus_off_identity =
  QCheck.Test.make ~count:6
    ~name:"model_bus:false batched bitwise-unchanged for every domain count"
    QCheck.(
      triple
        (QCheck.make (QCheck.Gen.oneofl [ 4; 16; 64 ]))
        (QCheck.make (QCheck.Gen.oneofl [ 1; 2; 4 ]))
        (pair (int_range 0 999) (int_range 0 2)))
    (fun (cores, cpn, (seed, kind)) ->
      let pg = Proc_grid.of_cores cores in
      let app = sweep 12 in
      let cmp = Cmp.of_cores_per_node cpn in
      let platform = Loggp.Params.with_cores_per_node xt4 cpn in
      let perturb = perturb_of kind seed in
      (* The PR 7 construction spelled no [model_bus] at all. *)
      let costs_pr7 = Wrun.Costs.loggp ~cmp platform pg app in
      let costs_off =
        Wrun.Costs.loggp ~model_bus:false ~cmp platform pg app
      in
      let o0, tl0 =
        Wrun.Batched.run_timeline ?perturb ~costs:costs_pr7 pg app
      in
      List.for_all
        (fun domains ->
          let od, tld =
            Wrun.Batched.run_timeline ?perturb ~domains ~costs:costs_off pg
              app
          in
          od.elapsed = o0.elapsed
          && od.bus_wait = 0.0
          && Obs.Timeline.equal ~tol:0.0 tl0 tld)
        [ 1; 2; 3 ])

(* (b) the charged bus delay never decreases as cores share a node. *)
let qcheck_bus_monotone =
  QCheck.Test.make ~count:6
    ~name:"bus delay monotone non-decreasing in cores-per-node"
    QCheck.(
      pair
        (QCheck.make (QCheck.Gen.oneofl [ 12; 16; 20 ]))
        (pair (int_range 0 999) (int_range 0 2)))
    (fun (nz, (seed, kind)) ->
      let pg = Proc_grid.of_cores 16 in
      let app = sweep nz in
      let perturb = perturb_of kind seed in
      let bus_wait cpn =
        let costs =
          Wrun.Costs.loggp ~model_bus:true
            ~cmp:(Cmp.of_cores_per_node cpn)
            (Loggp.Params.with_cores_per_node xt4 cpn)
            pg app
        in
        (Wrun.Batched.run ?perturb ~costs pg app).Wrun.Batched.bus_wait
      in
      let waits = List.map bus_wait [ 1; 2; 4; 8; 16 ] in
      List.hd waits = 0.0
      && List.nth waits 1 > 0.0
      && fst
           (List.fold_left
              (fun (ok, prev) w -> (ok && w >= prev, w))
              (true, 0.0) waits))

(* (c) domain sharding never changes a bus-on result, tolerance 0.0. *)
let qcheck_bus_domain_invariance =
  QCheck.Test.make ~count:6
    ~name:"domain count never changes a bus-on result (tolerance 0.0)"
    QCheck.(
      triple
        (QCheck.make (QCheck.Gen.oneofl [ 16; 64 ]))
        (QCheck.make (QCheck.Gen.oneofl [ 2; 4 ]))
        (pair (int_range 0 999) (int_range 0 2)))
    (fun (cores, cpn, (seed, kind)) ->
      let pg = Proc_grid.of_cores cores in
      let app = sweep 12 in
      let costs =
        Wrun.Costs.loggp ~model_bus:true
          ~cmp:(Cmp.of_cores_per_node cpn)
          (Loggp.Params.with_cores_per_node xt4 cpn)
          pg app
      in
      let perturb = perturb_of kind seed in
      let o1, tl1 = Wrun.Batched.run_timeline ?perturb ~costs pg app in
      o1.bus_wait > 0.0
      && List.for_all
           (fun domains ->
             let od, tld =
               Wrun.Batched.run_timeline ?perturb ~domains ~costs pg app
             in
             od.elapsed = o1.elapsed
             && od.bus_wait = o1.bus_wait
             && Obs.Timeline.equal ~tol:0.0 tl1 tld)
           [ 2; 3; 5 ])

let suite =
  [
    ( "batched_bus.matrix",
      [
        Alcotest.test_case "event vs batched differential matrix" `Quick
          test_matrix;
      ] );
    ( "batched_bus.costs",
      [
        Alcotest.test_case "Table-6 coefficients and quantum" `Quick
          test_costs_bus_terms;
      ] );
    ( "batched_bus.ceiling",
      [
        Alcotest.test_case "rank ceiling names the bus-capable engine" `Quick
          test_rank_ceiling_names_batched;
      ] );
    ( "batched_bus.properties",
      [
        QCheck_alcotest.to_alcotest qcheck_bus_off_identity;
        QCheck_alcotest.to_alcotest qcheck_bus_monotone;
        QCheck_alcotest.to_alcotest qcheck_bus_domain_invariance;
      ] );
  ]
