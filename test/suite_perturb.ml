(* Tests for the perturbation & resilience layer: the PRNG and spec
   plumbing, the identity and determinism contracts (a zero spec injects
   nothing, a fixed seed injects the same thing twice), monotonicity of
   both the estimate and the simulator in every perturbation amplitude,
   and a golden `wavefront perturb` report. *)

open Wgrid

(* --- PRNG --- *)

let test_prng_deterministic () =
  let a = Perturb.Prng.create ~seed:42 ~stream:3 in
  let b = Perturb.Prng.create ~seed:42 ~stream:3 in
  for i = 0 to 63 do
    let x = Perturb.Prng.float a and y = Perturb.Prng.float b in
    Alcotest.(check (float 0.0)) (Fmt.str "draw %d" i) x y;
    Alcotest.(check bool) "in [0, 1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_streams_decorrelated () =
  let a = Perturb.Prng.create ~seed:42 ~stream:0 in
  let b = Perturb.Prng.create ~seed:42 ~stream:1 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Perturb.Prng.float a <> Perturb.Prng.float b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

(* The generator is our own SplitMix64 precisely so draws cannot drift
   across OCaml releases (Stdlib.Random's algorithm may); freeze the first
   words of one stream to pin the implementation itself. *)
let test_prng_version_stable () =
  let t = Perturb.Prng.create ~seed:1 ~stream:0 in
  List.iteri
    (fun i expected ->
      Alcotest.(check int64)
        (Fmt.str "word %d" i)
        expected (Perturb.Prng.next t))
    [ 2275386345650349254L; -157587074807616370L; 8149182546752613363L ]

(* --- Spec parsing --- *)

let test_spec_parse () =
  match
    Perturb.Spec.of_string "seed=42 noise=uniform:0.2 link=0.05:10 \
                            straggler=3:80; fail=1:10"
  with
  | Error (`Msg m) -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check int) "seed" 42 s.seed;
      (match s.noise with
      | Uniform a -> Alcotest.(check (float 1e-12)) "amplitude" 0.2 a
      | _ -> Alcotest.fail "expected uniform noise");
      (match s.link with
      | Some { prob; delay } ->
          Alcotest.(check (float 1e-12)) "prob" 0.05 prob;
          Alcotest.(check (float 1e-12)) "delay" 10.0 delay
      | None -> Alcotest.fail "expected a link clause");
      Alcotest.(check int) "stragglers" 1 (List.length s.stragglers);
      Alcotest.(check int) "failures" 1 (List.length s.failures);
      Alcotest.(check bool) "not zero" false (Perturb.Spec.is_zero s)

let test_spec_round_trip () =
  List.iter
    (fun text ->
      match Perturb.Spec.of_string text with
      | Error (`Msg m) -> Alcotest.fail m
      | Ok s -> (
          let printed = Perturb.Spec.to_string s in
          match Perturb.Spec.of_string printed with
          | Error (`Msg m) -> Alcotest.failf "reparse of %S: %s" printed m
          | Ok s' ->
              Alcotest.(check bool) (Fmt.str "round trip %S" text) true (s = s')))
    [
      "seed=7";
      "noise=exp:0.1";
      "noise=0.3 link=0.5:25";
      "seed=9 straggler=0:10 straggler=2:20 fail=1:4";
    ]

let test_spec_rejects () =
  List.iter
    (fun text ->
      match Perturb.Spec.of_string text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error (`Msg _) -> ())
    [ "bogus=1"; "noise=uniform:-0.5"; "link=2.0:5"; "fail=1:-1"; "seed=x" ]

let test_spec_zero () =
  Alcotest.(check bool) "zero is zero" true
    (Perturb.Spec.is_zero Perturb.Spec.zero);
  Alcotest.(check bool) "seed alone is still zero" true
    (match Perturb.Spec.of_string "seed=5" with
    | Ok s -> Perturb.Spec.is_zero s
    | Error _ -> false)

(* --- Zero-spec identity and seeded determinism on the simulator --- *)

module Sim_rec = Wrun.Record.Wrap (Xtsim.Wavefront_sim.Backend.Substrate)

(* Per-rank message sequences of a (possibly perturbed) simulator run. *)
let sim_events ?perturb pg app =
  let cores = Proc_grid.cores pg in
  let machine =
    Xtsim.Machine.v ~cmp:Wgrid.Cmp.single_core Loggp.Params.xt4 pg
  in
  let engine = Xtsim.Engine.create () in
  let b = Xtsim.Wavefront_sim.Backend.create ?perturb engine machine app in
  let cfg = Wrun.Program.of_app pg app in
  let recs = Wrun.Record.create ~ranks:cores in
  for rank = 0 to cores - 1 do
    Xtsim.Engine.spawn engine (fun () ->
        Wrun.Program.run_rank (module Sim_rec) (recs, b) cfg rank)
  done;
  ignore (Xtsim.Engine.run engine);
  Array.init cores (Wrun.Record.events recs)

let schedules =
  [ Sweeps.Schedule.sweep3d; Sweeps.Schedule.lu; Sweeps.Schedule.chimaera ]

let nonwavefronts : Wavefront_core.App_params.nonwavefront list =
  [
    No_op;
    Fixed 3.0;
    Allreduce { count = 2; msg_size = 16 };
    Stencil { wg_stencil = 0.01; halo_bytes_per_cell = 24.0 };
  ]

let app_gen =
  QCheck.Gen.(
    map
      (fun (((cols, rows), (nz, htile)), (sched, nwf)) ->
        let grid = Data_grid.v ~nx:(2 * cols) ~ny:(2 * rows) ~nz in
        let app =
          Apps.Custom.params ~name:"qcheck" ~schedule:(List.nth schedules sched)
            ~htile ~nonwavefront:(List.nth nonwavefronts nwf) ~wg:1.0 grid
        in
        ((cols, rows), app))
      (pair
         (pair (pair (int_range 1 3) (int_range 1 3))
            (pair (int_range 1 6) (float_range 0.5 4.0)))
         (pair (int_range 0 2) (int_range 0 3))))

let pp_app_case ((cols, rows), (app : Wavefront_core.App_params.t)) =
  Fmt.str "%dx%d %a htile=%.2f %s" cols rows Data_grid.pp app.grid app.htile
    app.name

let machine_of pg =
  Xtsim.Machine.v ~cmp:Wgrid.Cmp.single_core Loggp.Params.xt4 pg

(* Satellite: a zero spec is invisible — the whole outcome record (elapsed
   times bitwise, event counts, per-rank stats) and every rank's message
   sequence are identical to running without a spec at all. *)
let prop_zero_spec_identity =
  QCheck.Test.make ~name:"zero perturbation spec is bitwise invisible"
    ~count:20
    (QCheck.make ~print:pp_app_case app_gen)
    (fun ((cols, rows), app) ->
      let pg = Proc_grid.v ~cols ~rows in
      let machine = machine_of pg in
      let base = Xtsim.Wavefront_sim.run machine app in
      let zero =
        Xtsim.Wavefront_sim.run ~perturb:Perturb.Spec.zero machine app
      in
      base = zero
      && sim_events pg app = sim_events ~perturb:Perturb.Spec.zero pg app)

let spec_gen =
  QCheck.Gen.(
    map
      (fun ((seed, amp), (delay, exp_noise)) ->
        let noise : Perturb.Spec.noise =
          if exp_noise then Exponential (amp /. 2.0) else Uniform amp
        in
        Perturb.Spec.v ~seed ~noise
          ~link:{ prob = 0.2; delay = 5.0 }
          ~stragglers:[ { rank = 0; delay } ]
          ())
      (pair
         (pair (int_range 0 1000) (float_range 0.01 0.5))
         (pair (float_range 0.0 40.0) bool)))

let pp_spec_case ((c, app), spec) =
  Fmt.str "%s [%a]" (pp_app_case (c, app)) Perturb.Spec.pp spec

(* Satellite: the same seeded spec twice gives the same simulation —
   elapsed bitwise, stats bitwise, sequences identical. *)
let prop_seeded_determinism =
  QCheck.Test.make ~name:"same seed, same perturbed simulation" ~count:20
    (QCheck.make ~print:pp_spec_case QCheck.Gen.(pair app_gen spec_gen))
    (fun (((cols, rows), app), spec) ->
      let pg = Proc_grid.v ~cols ~rows in
      let machine = machine_of pg in
      let a = Xtsim.Wavefront_sim.run ~perturb:spec machine app in
      let b = Xtsim.Wavefront_sim.run ~perturb:spec machine app in
      a = b
      && sim_events ~perturb:spec pg app = sim_events ~perturb:spec pg app)

(* --- The real kernel stays bitwise under timing perturbation --- *)

(* Satellite: injected sleeps perturb when things happen, never what is
   computed — a straggling, noisy real run still equals the sequential
   reference bitwise. *)
let test_real_straggler_bitwise () =
  let grid = Data_grid.v ~nx:6 ~ny:4 ~nz:4 in
  let pg = Proc_grid.v ~cols:2 ~rows:2 in
  let spec =
    Perturb.Spec.v ~seed:11 ~noise:(Uniform 0.3)
      ~stragglers:[ { rank = 1; delay = 30.0 } ]
      ()
  in
  let plan = Kernels.Sweep_exec.plan ~htile:2 ~perturb:spec grid pg in
  let out = Kernels.Sweep_exec.run plan in
  Alcotest.(check bool) "bitwise vs sequential" true
    (Kernels.Sweep_exec.gather plan out.blocks
    = Kernels.Sweep_exec.run_sequential plan)

(* --- Monotonicity: more perturbation never helps --- *)

let fixed_app = Apps.Sweep3d.params (Data_grid.v ~nx:24 ~ny:24 ~nz:8)
let fixed_pg = Proc_grid.v ~cols:4 ~rows:4

let fixed_cfg =
  Wavefront_core.Plugplay.config ~cmp:Wgrid.Cmp.single_core Loggp.Params.xt4
    ~cores:16

let sim_elapsed spec =
  (Xtsim.Wavefront_sim.run ~perturb:spec (machine_of fixed_pg) fixed_app)
    .elapsed

let check_nondecreasing what values =
  ignore
    (List.fold_left
       (fun prev (label, v) ->
         Alcotest.(check bool)
           (Fmt.str "%s non-decreasing at %s" what label)
           true
           (v >= prev -. 1e-9);
         v)
       neg_infinity values)

let test_monotone_in_noise () =
  let amps = [ 0.0; 0.1; 0.2; 0.4 ] in
  let spec a = Perturb.Spec.v ~seed:5 ~noise:(Uniform a) () in
  check_nondecreasing "estimate"
    (List.map
       (fun a ->
         ( Fmt.str "amp %.1f" a,
           Perturb.Estimate.time_per_iteration fixed_app fixed_cfg (spec a) ))
       amps);
  check_nondecreasing "simulated"
    (List.map (fun a -> (Fmt.str "amp %.1f" a, sim_elapsed (spec a))) amps)

let test_monotone_in_straggler_delay () =
  let delays = [ 0.0; 10.0; 50.0; 100.0 ] in
  let spec d =
    Perturb.Spec.v ~seed:5 ~stragglers:[ { rank = 5; delay = d } ] ()
  in
  check_nondecreasing "estimate"
    (List.map
       (fun d ->
         ( Fmt.str "delay %.0f" d,
           Perturb.Estimate.time_per_iteration fixed_app fixed_cfg (spec d) ))
       delays);
  check_nondecreasing "simulated"
    (List.map (fun d -> (Fmt.str "delay %.0f" d, sim_elapsed (spec d))) delays)

let test_monotone_in_link_delay () =
  let delays = [ 0.0; 2.0; 8.0; 20.0 ] in
  let spec d = Perturb.Spec.v ~seed:5 ~link:{ prob = 0.3; delay = d } () in
  check_nondecreasing "estimate"
    (List.map
       (fun d ->
         ( Fmt.str "delay %.0f" d,
           Perturb.Estimate.time_per_iteration fixed_app fixed_cfg (spec d) ))
       delays);
  check_nondecreasing "simulated"
    (List.map (fun d -> (Fmt.str "delay %.0f" d, sim_elapsed (spec d))) delays)

(* --- Goldens --- *)

let golden = Alcotest.(float 1e-3)

(* The estimate's terms for one frozen configuration; a change here is a
   model change and must be deliberate. *)
let test_estimate_golden () =
  let spec =
    Perturb.Spec.v ~seed:3 ~noise:(Uniform 0.25)
      ~link:{ prob = 0.1; delay = 4.0 }
      ~stragglers:[ { rank = 1; delay = 40.0 } ]
      ()
  in
  let b = Perturb.Estimate.iteration fixed_app fixed_cfg spec in
  Alcotest.check golden "base" 2996.7208 b.base;
  Alcotest.check golden "noise" 270.0 b.noise;
  Alcotest.check golden "link" 40.0 b.link;
  Alcotest.check golden "straggler" 1280.0 b.straggler;
  Alcotest.check golden "total" 4586.7208 b.total

(* One full `wavefront perturb` report, frozen verbatim: the simulator is
   deterministic in simulated time and the PRNG is version-stable, so the
   rendered tables and rank x wave wait heatmaps are reproducible to the
   byte (real runs excluded). *)
let report_golden =
  {golden|
== [PERTURB-COMPARE] Perturbed iteration time: model estimate vs simulated vs real (us) ==
+--------------------+--------+-----------+------+
| quantity           | model  | simulated | real |
+====================+========+===========+======+
| unperturbed T_iter | 2996.7 | 2908.5    | -    |
| perturbed T_iter   | 4546.7 | 4302.3    | -    |
| slowdown           | +51.7% | +47.9%    | -    |
+--------------------+--------+-----------+------+
  note: spec: seed=3 noise=uniform:0.25 straggler=1:40
  note: dataflow (stragglers always last): 16 ranks completed, 768 messages


== [PERTURB-INJECTION] Injected delay: absorbed in pipeline slack vs propagated ==
+-----------------------------+-------+---------------+------------+
| source                      | spans | injected (us) | model (us) |
+=============================+=======+===============+============+
| perturb.noise               | 512   | 2712.9        | 270        |
| perturb.straggler           | 32    | 1280          | 1280       |
| perturb.link                | 0     | 0             | 0          |
| injected total              | -     | 3992.9        | 1550       |
| elapsed growth (propagated) | -     | 1393.8        | -          |
| absorbed in slack           | -     | 2599.1        | -          |
+-----------------------------+-------+---------------+------------+
  note: model column: the estimate's critical-path charge for the term
  note: absorbed = injected - elapsed growth; negative means the perturbation cost more than the injected time (lost overlap)

unperturbed wait by rank x wave:
wait per (rank, wave) cell, us; scale ' ' = 0 .. '@' = 751.99; last column = epilogue
r0      |        =       +       =        |
r1      |.       :       *       -        |
r2      |.       .       #       .        |
r3      |:               @                |
r4      |.       =       -       =        |
r5      |.       -       =       -        |
r6      |:       .       +       .        |
r7      |-               #                |
r8      |.       =       .       =        |
r9      |:       -       :       -        |
r10     |-       .       =       .        |
r11     |-               +                |
r12     |:       =               =        |
r13     |-       -       .       :        |
r14     |-       .       :       .        |
r15     |=               =                |

perturbed wait by rank x wave:
wait per (rank, wave) cell, us; scale ' ' = 0 .. '@' = 1103.03; last column = epilogue
r0      |        *       -       *        |
r1      |        :       =       :        |
r2      |.       .       %       .        |
r3      |:               @                |
r4      |.       +       :       -        |
r5      |.       :       -       :        |
r6      |:       .       *       .        |
r7      |:               #                |
r8      |.       +       .       -        |
r9      |:       :       :       :        |
r10     |:       .       +       .        |
r11     |-               *                |
r12     |:       +               -        |
r13     |:       :       .       :        |
r14     |-       .       =       .        |
r15     |-               +                |
|golden}

let test_report_golden () =
  let spec =
    Perturb.Spec.v ~seed:3 ~noise:(Uniform 0.25)
      ~stragglers:[ { rank = 1; delay = 40.0 } ]
      ()
  in
  let r = Harness.Perturb_report.run fixed_cfg fixed_app spec in
  let rendered = Fmt.str "%a" Harness.Perturb_report.pp r in
  (* The trailing runtime: section is host-side wall clock — real time,
     not simulated — so the golden stops where determinism stops. *)
  let deterministic =
    let sub = "\nruntime:" in
    let n = String.length rendered and m = String.length sub in
    let rec find i =
      if i + m > n then rendered
      else if String.sub rendered i m = sub then String.sub rendered 0 i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check string) "report" report_golden deterministic

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_zero_spec_identity; prop_seeded_determinism ]

let suite =
  [
    ( "perturb.prng",
      [
        Alcotest.test_case "deterministic per (seed, stream)" `Quick
          test_prng_deterministic;
        Alcotest.test_case "streams decorrelated" `Quick
          test_prng_streams_decorrelated;
        Alcotest.test_case "version-stable words" `Quick
          test_prng_version_stable;
      ] );
    ( "perturb.spec",
      [
        Alcotest.test_case "parses every clause" `Quick test_spec_parse;
        Alcotest.test_case "round-trips through to_string" `Quick
          test_spec_round_trip;
        Alcotest.test_case "rejects malformed clauses" `Quick test_spec_rejects;
        Alcotest.test_case "zero spec detection" `Quick test_spec_zero;
      ] );
    ( "perturb.real",
      [
        Alcotest.test_case "straggling run stays bitwise" `Quick
          test_real_straggler_bitwise;
      ] );
    ( "perturb.monotone",
      [
        Alcotest.test_case "noise amplitude" `Quick test_monotone_in_noise;
        Alcotest.test_case "straggler delay" `Quick
          test_monotone_in_straggler_delay;
        Alcotest.test_case "link delay" `Quick test_monotone_in_link_delay;
      ] );
    ( "perturb.golden",
      [
        Alcotest.test_case "estimate terms" `Quick test_estimate_golden;
        Alcotest.test_case "perturb report" `Quick test_report_golden;
      ] );
    ("perturb.properties", props);
  ]
