(* Tests for the wave-batched engine and its supporting layers: the
   cell-for-cell differential identities against the timed dataflow
   replay and the event-level simulator (perturbations, recovery and
   multi-iteration schedules included), bitwise determinism across
   domain counts, the streaming timeline accumulator, the SoA event
   heap, and the event engine's structured rank ceiling. *)

open Wgrid

let xt4 = Loggp.Params.xt4
let sweep n = Apps.Sweep3d.params (Data_grid.cube n)

let costs_for pg app = Wrun.Costs.loggp ~cmp:Cmp.single_core xt4 pg app

let spec s =
  match Perturb.Spec.of_string s with
  | Ok v -> v
  | Error (`Msg e) -> Alcotest.failf "bad spec %S: %s" s e

(* The dataflow reference timeline for a configuration, via a span
   tracer — the yardstick every batched timeline is held to. *)
let dataflow_timeline ?iterations ?perturb ?recover ~waves costs pg app =
  let tr = Obs.Tracer.create () in
  let o = Wrun.Dataflow.run ?iterations ?perturb ?recover ~costs ~obs:tr pg app in
  (o, Obs.Timeline.of_spans ~waves (Obs.Tracer.spans tr))

(* The batched engine's timeline reconstructed the same way (traced). *)
let batched_span_timeline ?iterations ?perturb ?recover ~waves costs pg app =
  let tr = Obs.Tracer.create () in
  let o = Wrun.Batched.run ?iterations ?perturb ?recover ~obs:tr ~costs pg app in
  (o, Obs.Timeline.of_spans ~waves (Obs.Tracer.spans tr))

(* --- Differential identity: batched = dataflow, cell for cell --- *)

let test_dataflow_identity () =
  let pg = Proc_grid.of_cores 16 in
  let app = sweep 16 in
  let costs = costs_for pg app in
  let ob, tl_spans = batched_span_timeline ~waves:0 costs pg app in
  let odf, tl_df = dataflow_timeline ~waves:ob.waves costs pg app in
  Alcotest.(check bool) "both completed" true (ob.completed && odf.completed);
  Alcotest.(check int) "same messages" odf.messages ob.messages;
  Alcotest.(check int) "no orphans" 0 ob.orphaned;
  Alcotest.(check bool) "traced timelines coincide" true
    (Obs.Timeline.equal ~tol:1e-6 tl_df tl_spans);
  (* The streaming cell path reconstructs the identical dense grid. *)
  let oc, tl_cells = Wrun.Batched.run_timeline ~costs pg app in
  Alcotest.(check bool) "cell-streamed timeline coincides" true
    (Obs.Timeline.equal ~tol:1e-6 tl_df tl_cells);
  Alcotest.(check (float 0.0)) "elapsed agrees bitwise with traced run"
    ob.elapsed oc.elapsed

let test_event_identity () =
  (* Same configuration the event-vs-dataflow identity test pins: with
     single-core nodes and the bus off, all three substrates coincide. *)
  let app =
    { (sweep 16) with
      Wavefront_core.App_params.nonwavefront = Wavefront_core.App_params.No_op
    }
  in
  let cfg =
    Wavefront_core.Plugplay.config ~cmp:Cmp.single_core xt4 ~cores:4
  in
  let ev = Harness.Timeline_report.run ~model_bus:false cfg app in
  let ba =
    Harness.Timeline_report.run ~model_bus:false ~engine:Harness.Engine.Batched
      cfg app
  in
  Alcotest.(check bool) "batched observed = its dataflow side" true
    (Obs.Timeline.equal ~tol:1e-6 ba.observed ba.model);
  Alcotest.(check bool) "batched observed = event observed" true
    (Obs.Timeline.equal ~tol:1e-6 ev.observed ba.observed)

let perturbed_cases =
  [
    ("noise+link", "seed=42 noise=uniform:0.15 link=0.02:5", None, 1);
    ("collnoise", "seed=7 collnoise=80", None, 1);
    ("straggler", "seed=9 straggler=3:250", None, 1);
    ("pulse+periodic", "seed=3 pulse=3:40:500 periodic=16:120", None, 1);
    ("fail", "seed=5 fail=5:40", None, 1);
    ( "fail+recover",
      "seed=5 fail=5:40",
      Some { Perturb.Recover.interval = 16; ckpt_cost = 25.0;
             restart_cost = 400.0 },
      1 );
    ("iter2+noise", "seed=11 noise=uniform:0.2", None, 2);
  ]

let test_perturbed_identities () =
  let pg = Proc_grid.of_cores 16 in
  let app = sweep 16 in
  let costs = costs_for pg app in
  List.iter
    (fun (name, s, recover, iterations) ->
      let perturb = spec s in
      let ob, tl_b =
        batched_span_timeline ~iterations ~perturb ?recover ~waves:0 costs pg
          app
      in
      let odf, tl_df =
        dataflow_timeline ~iterations ~perturb ?recover ~waves:ob.waves costs
          pg app
      in
      Alcotest.(check bool)
        (name ^ ": same completion") odf.completed ob.completed;
      Alcotest.(check (list int)) (name ^ ": same failed") odf.failed ob.failed;
      Alcotest.(check int) (name ^ ": same messages") odf.messages ob.messages;
      Alcotest.(check bool)
        (name ^ ": traced timelines coincide") true
        (Obs.Timeline.equal ~tol:1e-6 tl_df tl_b);
      (* The streaming cell contract merges multi-iteration visits, so the
         dense-grid identity is a single-iteration statement. *)
      if iterations = 1 then begin
        let _, tl_cells =
          Wrun.Batched.run_timeline ~iterations ~perturb ?recover ~costs pg
            app
        in
        Alcotest.(check bool)
          (name ^ ": cell-streamed timeline coincides") true
          (Obs.Timeline.equal ~tol:1e-6 tl_df tl_cells)
      end)
    perturbed_cases

let test_recovery_matches_dataflow () =
  let pg = Proc_grid.of_cores 16 in
  let app = sweep 16 in
  let costs = costs_for pg app in
  let perturb = spec "seed=5 fail=5:40" in
  let recover =
    { Perturb.Recover.interval = 16; ckpt_cost = 25.0; restart_cost = 400.0 }
  in
  let ob = Wrun.Batched.run ~perturb ~recover ~costs pg app in
  let odf = Wrun.Dataflow.run ~perturb ~recover ~costs pg app in
  Alcotest.(check bool) "batched completed" true ob.completed;
  Alcotest.(check (list int)) "same recovered set" odf.recovered ob.recovered;
  (* Every rank snapshots on the policy's schedule. *)
  Alcotest.(check int) "checkpoint count follows the schedule"
    (Perturb.Recover.checkpoints ~interval:recover.interval ~waves:ob.waves
    * ob.ranks)
    ob.checkpoints

(* --- Bitwise determinism across domain counts --- *)

let test_domain_determinism () =
  let pg = Proc_grid.of_cores 16 in
  let app = sweep 16 in
  let costs = costs_for pg app in
  let check_spec name perturb =
    let o1, tl1 = Wrun.Batched.run_timeline ?perturb ~costs pg app in
    List.iter
      (fun domains ->
        let od, tld =
          Wrun.Batched.run_timeline ?perturb ~domains ~costs pg app
        in
        Alcotest.(check (float 0.0))
          (Printf.sprintf "%s: elapsed bitwise-equal at %d domains" name
             domains)
          o1.elapsed od.elapsed;
        Alcotest.(check bool)
          (Printf.sprintf "%s: timeline bitwise-equal at %d domains" name
             domains)
          true
          (Obs.Timeline.equal ~tol:0.0 tl1 tld))
      [ 2; 3; 16 ]
  in
  check_spec "zero spec" None;
  check_spec "perturbed" (Some (spec "seed=3 pulse=3:40:500 straggler=2:100"))

(* --- The event engine's structured rank ceiling --- *)

let test_rank_ceiling () =
  let pg = Proc_grid.of_cores 16 in
  let machine = Xtsim.Machine.v ~cmp:Cmp.single_core xt4 pg in
  let app = sweep 16 in
  (match Xtsim.Wavefront_sim.run ~max_ranks:4 machine app with
  | _ -> Alcotest.fail "expected Rank_ceiling"
  | exception Xtsim.Wavefront_sim.Rank_ceiling r ->
      Alcotest.(check int) "carries the rank count" 16 r.ranks;
      Alcotest.(check int) "carries the ceiling" 4 r.max_ranks;
      Alcotest.(check bool) "estimates the event volume" true
        (r.estimated_events > 0);
      let printed = Printexc.to_string (Xtsim.Wavefront_sim.Rank_ceiling r) in
      let has_sub ~sub s =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "printer points at the batched engine" true
        (has_sub ~sub:"--engine=batched" printed));
  (* Below the ceiling nothing changes. *)
  let o = Xtsim.Wavefront_sim.run ~max_ranks:16 machine app in
  Alcotest.(check bool) "at the ceiling the run proceeds" true o.completed;
  Alcotest.(check bool) "default ceiling is past the test sizes" true
    (Xtsim.Wavefront_sim.default_max_ranks >= 65536)

(* --- The streaming timeline accumulator --- *)

let test_stream_lossless () =
  let pg = Proc_grid.of_cores 16 in
  let app = sweep 16 in
  let costs = costs_for pg app in
  let o0, dense = Wrun.Batched.run_timeline ~costs pg app in
  let st = Obs.Timeline_stream.create ~ranks:16 ~waves:o0.waves () in
  let o = Wrun.Batched.run ~cells:(Obs.Timeline_stream.sink st) ~costs pg app in
  Alcotest.(check bool) "run completed" true o.completed;
  Alcotest.(check int) "one cell per (rank, column)"
    (16 * (o0.waves + 1))
    (Obs.Timeline_stream.cells st);
  (* With buckets >= extents the fold is lossless: the accumulator's
     timeline is the dense grid, bit for bit. *)
  Alcotest.(check bool) "bucket grid = dense grid" true
    (Obs.Timeline.equal ~tol:0.0 dense (Obs.Timeline_stream.to_timeline st));
  for col = 0 to o0.waves do
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "column %d compute total exact" col)
      (Obs.Timeline.column_total dense Obs.Timeline.Compute col)
      (Obs.Timeline_stream.column_total st Obs.Timeline.Compute col)
  done

let test_stream_bucketized () =
  let pg = Proc_grid.of_cores 16 in
  let app = sweep 16 in
  let costs = costs_for pg app in
  let waves =
    Sweeps.Schedule.nsweeps app.schedule
    * Tile.ntiles_int ~nz:app.grid.nz ~htile:app.htile
  in
  let st =
    Obs.Timeline_stream.create ~max_rank_buckets:4 ~max_wave_buckets:8
      ~ranks:16 ~waves ()
  in
  let o =
    Wrun.Batched.run ~cells:(Obs.Timeline_stream.sink st) ~domains:3 ~costs pg
      app
  in
  Alcotest.(check bool) "multi-domain run completed" true o.completed;
  Alcotest.(check int) "rank buckets clamped" 4
    (Obs.Timeline_stream.rank_buckets st);
  (* The bucket bounds partition the rank range. *)
  let covered = ref 0 in
  for b = 0 to Obs.Timeline_stream.rank_buckets st - 1 do
    let lo, hi = Obs.Timeline_stream.rank_bucket_bounds st b in
    Alcotest.(check bool) "bucket non-empty" true (lo <= hi);
    covered := !covered + (hi - lo + 1)
  done;
  Alcotest.(check int) "rank buckets partition the ranks" 16 !covered;
  let lo, hi =
    Obs.Timeline_stream.wave_bucket_bounds st
      (Obs.Timeline_stream.wave_buckets st)
  in
  Alcotest.(check (pair int int)) "epilogue bucket is its own" (waves, waves)
    (lo, hi);
  let jb = Buffer.create 256 in
  Obs.Timeline_stream.emit_json ~label:"test" st (Buffer.add_string jb);
  let head = "{\"schema\":\"wavefront-timeline-stream/v1\"" in
  Alcotest.(check string) "JSON schema leads the document" head
    (String.sub (Buffer.contents jb) 0 (String.length head));
  (* Chunked emission: at full bucket resolution the 16 * (waves + 1)
     populated rows exceed the flush threshold, so the writer is called
     many times — never with one monolithic string. *)
  let full =
    Obs.Timeline_stream.create ~ranks:16 ~waves ()
  in
  ignore
    (Wrun.Batched.run ~cells:(Obs.Timeline_stream.sink full) ~costs pg app);
  let json_chunks = ref 0 in
  Obs.Timeline_stream.emit_json ~label:"full" full (fun _ -> incr json_chunks);
  Alcotest.(check bool) "JSON emitted in chunks" true (!json_chunks > 1);
  let cb = Buffer.create 256 in
  Obs.Timeline_stream.emit_csv st (Buffer.add_string cb);
  let rows =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Buffer.contents cb))
  in
  Alcotest.(check bool) "CSV has a header and bucket rows" true
    (List.length rows > 1);
  (* Out-of-range cells are rejected, not silently folded. *)
  Alcotest.check_raises "out-of-range rank rejected"
    (Invalid_argument "Timeline_stream.sink: cell out of range") (fun () ->
      Obs.Timeline_stream.sink st ~rank:99 ~col:0 (Obs.Timeline.zero_cell 0.0))

(* --- The SoA event heap --- *)

let test_heap_ordering () =
  let h = Xtsim.Heap.create () in
  Alcotest.(check bool) "fresh heap empty" true (Xtsim.Heap.is_empty h);
  Alcotest.check_raises "top_time on empty raises"
    (Invalid_argument "Heap.top_time: empty") (fun () ->
      ignore (Xtsim.Heap.top_time h));
  (* Equal times pop in insertion order; the growth path (past the initial
     capacity) preserves the ordering invariant. *)
  let n = 1000 in
  let entries =
    List.init n (fun i ->
        let time = float_of_int ((i * 7919) mod 97) in
        (time, i))
  in
  List.iter (fun (time, seq) -> Xtsim.Heap.push h ~time ~seq (time, seq)) entries;
  Alcotest.(check int) "all queued" n (Xtsim.Heap.length h);
  let sorted = List.sort compare entries in
  List.iter
    (fun expected ->
      let t = Xtsim.Heap.top_time h in
      let v = Xtsim.Heap.pop_top h in
      Alcotest.(check (float 0.0)) "top_time = popped time" (fst v) t;
      Alcotest.(check (pair (float 0.0) int)) "pop order (time, then seq)"
        expected v)
    sorted;
  Alcotest.(check bool) "drained" true (Xtsim.Heap.is_empty h)

let test_heap_compat () =
  (* The allocating entry API stays coherent with the SoA fast path. *)
  let h = Xtsim.Heap.create () in
  Xtsim.Heap.push h ~time:2.0 ~seq:0 "b";
  Xtsim.Heap.push h ~time:1.0 ~seq:1 "a";
  (match Xtsim.Heap.peek h with
  | Some e ->
      Alcotest.(check (float 0.0)) "peek time" 1.0 e.Xtsim.Heap.time;
      Alcotest.(check string) "peek value" "a" e.Xtsim.Heap.value
  | None -> Alcotest.fail "peek on non-empty");
  (match Xtsim.Heap.pop h with
  | Some e -> Alcotest.(check string) "pop entry value" "a" e.Xtsim.Heap.value
  | None -> Alcotest.fail "pop on non-empty");
  Alcotest.(check string) "remaining element" "b" (Xtsim.Heap.pop_top h);
  Alcotest.(check bool) "pop on empty" true (Xtsim.Heap.pop h = None)

(* --- Random differential property --- *)

let qcheck_differential =
  QCheck.Test.make ~count:8
    ~name:"batched = dataflow = domains-sharded on random configurations"
    QCheck.(
      triple
        (QCheck.make (QCheck.Gen.oneofl [ 4; 9; 16; 64; 256 ]))
        (QCheck.make (QCheck.Gen.oneofl [ 12; 16; 20 ]))
        (pair (int_range 0 1000) (int_range 0 3)))
    (fun (cores, nz, (seed, kind)) ->
      let pg = Proc_grid.of_cores cores in
      let app = sweep nz in
      let costs = costs_for pg app in
      let perturb =
        match kind with
        | 0 -> None
        | 1 -> Some (spec (Printf.sprintf "seed=%d noise=uniform:0.2" seed))
        | 2 -> Some (spec (Printf.sprintf "seed=%d straggler=1:150" seed))
        | _ -> Some (spec (Printf.sprintf "seed=%d pulse=0:10:300" seed))
      in
      let ob, tl_cells = Wrun.Batched.run_timeline ?perturb ~costs pg app in
      let _, tl_df =
        dataflow_timeline ?perturb ~waves:ob.waves costs pg app
      in
      let od, tl_dom =
        Wrun.Batched.run_timeline ?perturb ~domains:2 ~costs pg app
      in
      Obs.Timeline.equal ~tol:1e-6 tl_df tl_cells
      && Obs.Timeline.equal ~tol:0.0 tl_cells tl_dom
      && od.elapsed = ob.elapsed)

let suite =
  [
    ( "batched.identity",
      [
        Alcotest.test_case "batched = timed dataflow" `Quick
          test_dataflow_identity;
        Alcotest.test_case "batched = event simulator" `Quick
          test_event_identity;
        Alcotest.test_case "perturbed and recovering runs" `Quick
          test_perturbed_identities;
        Alcotest.test_case "recovery outcome matches dataflow" `Quick
          test_recovery_matches_dataflow;
        QCheck_alcotest.to_alcotest qcheck_differential;
      ] );
    ( "batched.domains",
      [
        Alcotest.test_case "bitwise determinism across domain counts" `Quick
          test_domain_determinism;
      ] );
    ( "batched.scale",
      [
        Alcotest.test_case "event engine rank ceiling" `Quick
          test_rank_ceiling;
        Alcotest.test_case "streaming accumulator lossless" `Quick
          test_stream_lossless;
        Alcotest.test_case "streaming accumulator bucketized" `Quick
          test_stream_bucketized;
      ] );
    ( "batched.heap",
      [
        Alcotest.test_case "SoA ordering and growth" `Quick test_heap_ordering;
        Alcotest.test_case "entry API compatibility" `Quick test_heap_compat;
      ] );
  ]
