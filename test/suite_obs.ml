(* Tests for the instrumentation layer: rings, histograms, tracers, the
   Chrome trace export (validated through a real JSON parse) and the
   critical-path walk, plus a stability check of the profile report. *)

(* --- Ring buffers --- *)

let test_ring_drop_newest () =
  let r = Obs.Ring.create ~capacity:3 () in
  for i = 1 to 7 do
    Obs.Ring.push r i
  done;
  Alcotest.(check (list int)) "keeps first" [ 1; 2; 3 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "pushed" 7 (Obs.Ring.pushed r);
  Alcotest.(check int) "dropped" 4 (Obs.Ring.dropped r);
  Alcotest.(check int) "length" 3 (Obs.Ring.length r)

let test_ring_overwrite_oldest () =
  let r = Obs.Ring.create ~policy:Obs.Ring.Overwrite_oldest ~capacity:3 () in
  for i = 1 to 7 do
    Obs.Ring.push r i
  done;
  Alcotest.(check (list int)) "keeps last" [ 5; 6; 7 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "dropped" 4 (Obs.Ring.dropped r);
  Obs.Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Obs.Ring.length r);
  Alcotest.(check int) "clear resets the counts too" 0 (Obs.Ring.pushed r);
  Alcotest.(check int) "no phantom drops" 0 (Obs.Ring.dropped r)

(* --- Histogram quantiles --- *)

let test_histogram_quantiles () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  for i = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "n" 1000 (Obs.Metrics.observations h);
  Alcotest.(check (float 1e-6)) "min" 1.0 (Obs.Metrics.min_value h);
  Alcotest.(check (float 1e-6)) "max" 1000.0 (Obs.Metrics.max_value h);
  Alcotest.(check (float 1e-6)) "mean" 500.5 (Obs.Metrics.mean h);
  (* Bucket resolution is 2^(1/8), so quantiles are within ~9% relative. *)
  let within q expected =
    let v = Obs.Metrics.quantile h q in
    let rel = Float.abs (v -. expected) /. expected in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f=%.1f within 9%% of %.1f" (100.0 *. q) v expected)
      true (rel < 0.09)
  in
  within 0.5 500.0;
  within 0.95 950.0;
  within 0.99 990.0

let test_histogram_edges () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs.Metrics.quantile h 0.5));
  Obs.Metrics.observe h 42.0;
  Obs.Metrics.observe h Float.nan;
  Alcotest.(check int) "nan ignored" 1 (Obs.Metrics.observations h);
  (* A single observation: every quantile clamps to it exactly. *)
  Alcotest.(check (float 1e-9)) "p50 clamps" 42.0 (Obs.Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p99 clamps" 42.0 (Obs.Metrics.quantile h 0.99)

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "c" in
  Obs.Metrics.inc c;
  Obs.Metrics.inc ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.count c);
  Alcotest.(check bool) "get-or-create" true
    (Obs.Metrics.count (Obs.Metrics.counter m "c") = 5);
  let g = Obs.Metrics.gauge m "g" in
  Obs.Metrics.set g 7.5;
  Alcotest.(check (float 0.0)) "gauge" 7.5 (Obs.Metrics.value g);
  ignore (Obs.Metrics.histogram m "h");
  Alcotest.(check (list string)) "insertion order" [ "c"; "g"; "h" ]
    (List.map fst (Obs.Metrics.snapshot m));
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.gauge: c is not a gauge") (fun () ->
      ignore (Obs.Metrics.gauge m "c"))

(* --- Tracer bounding and merging --- *)

let test_tracer_bounding () =
  let tr = Obs.Tracer.create ~capacity:2 () in
  for i = 0 to 4 do
    Obs.Tracer.record tr ~rank:0 ~start:(float_of_int i) ~dur:1.0 "s"
  done;
  Alcotest.(check int) "total" 5 (Obs.Tracer.total tr);
  Alcotest.(check int) "recorded" 2 (Obs.Tracer.recorded tr);
  Alcotest.(check int) "dropped" 3 (Obs.Tracer.dropped tr)

let test_tracer_merge () =
  let a = Obs.Tracer.create () and b = Obs.Tracer.create () in
  Obs.Tracer.record a ~rank:0 ~start:3.0 ~dur:1.0 "x";
  Obs.Tracer.record b ~rank:1 ~start:1.0 ~dur:1.0 "y";
  Obs.Tracer.record a ~rank:0 ~start:2.0 ~dur:1.0 "z";
  let names =
    List.map (fun (s : Obs.Span.t) -> s.name) (Obs.Tracer.merge [| a; b |])
  in
  Alcotest.(check (list string)) "sorted by start" [ "y"; "z"; "x" ] names

let test_tracer_span_clock () =
  let now, advance = Obs.Clock.manual () in
  let tr = Obs.Tracer.create ~clock:now () in
  let v = Obs.Tracer.span tr ~rank:3 "work" (fun () -> advance 5.0; 17) in
  Alcotest.(check int) "result" 17 v;
  match Obs.Tracer.spans tr with
  | [ s ] ->
      Alcotest.(check (float 0.0)) "start" 0.0 s.t_start;
      Alcotest.(check (float 0.0)) "dur" 5.0 s.dur;
      Alcotest.(check int) "rank" 3 s.rank
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

(* --- A minimal JSON parser, enough to validate the Chrome export. --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              Buffer.add_string b
                (Printf.sprintf "\\u%s" hex) (* kept verbatim: ASCII output *);
              go ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> pos := !pos + 4; Bool true
    | Some 'f' -> pos := !pos + 5; Bool false
    | Some 'n' -> pos := !pos + 4; Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let test_chrome_trace_roundtrip () =
  let spans =
    [
      Obs.Span.v ~cat:"compute" ~rank:0 ~start:100.0 ~dur:5.0 "tile";
      Obs.Span.v ~cat:"comm" ~rank:1 ~start:103.0 ~dur:2.5
        ~args:[ ("src", Obs.Span.Int 0); ("note", Str "a\"b\\c\nd") ]
        "recv";
    ]
  in
  let json =
    Obs.Chrome_trace.to_json
      [ { Obs.Chrome_trace.pid = 0; name = "simulated"; spans } ]
  in
  let doc = parse_json json in
  (match member "displayTimeUnit" doc with
  | Some (Str "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit");
  let events =
    match member "traceEvents" doc with
    | Some (List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let xs =
    List.filter (fun e -> member "ph" e = Some (Str "X")) events
  in
  Alcotest.(check int) "one X event per span" 2 (List.length xs);
  let metas =
    List.filter (fun e -> member "ph" e = Some (Str "M")) events
  in
  Alcotest.(check bool) "process + thread metadata" true
    (List.length metas = 3);
  (* Normalization: the earliest span starts at ts 0. *)
  let ts_of e = match member "ts" e with Some (Num f) -> f | _ -> nan in
  Alcotest.(check (float 1e-9)) "normalized to 0" 0.0
    (List.fold_left (fun a e -> Float.min a (ts_of e)) infinity xs);
  (* The escaped string survived the round trip. *)
  let recv =
    List.find (fun e -> member "name" e = Some (Str "recv")) xs
  in
  match member "args" recv with
  | Some args -> (
      match member "note" args with
      | Some (Str v) -> Alcotest.(check string) "escaping" "a\"b\\c\nd" v
      | _ -> Alcotest.fail "note arg missing")
  | None -> Alcotest.fail "args missing"

(* --- Critical path --- *)

let test_critical_path_walk () =
  (* Rank 0: compute [0,10], send [10,11] to rank 1.
     Rank 1: recv [5,12] (blocked before the send even starts), then
     compute [12,20]. The path must reach back to rank 0's compute. *)
  let spans =
    [
      Obs.Span.v ~cat:"compute" ~rank:0 ~start:0.0 ~dur:10.0 "compute";
      Obs.Span.v ~cat:"comm" ~rank:0 ~start:10.0 ~dur:1.0
        ~args:[ ("dst", Obs.Span.Int 1) ] "send";
      Obs.Span.v ~cat:"comm" ~rank:1 ~start:5.0 ~dur:7.0
        ~args:[ ("src", Obs.Span.Int 0) ] "recv";
      Obs.Span.v ~cat:"compute" ~rank:1 ~start:12.0 ~dur:8.0 "compute";
    ]
  in
  let edges = Obs.Critical_path.edges_of_spans spans in
  (match edges with
  | [ e ] ->
      Alcotest.(check int) "src" 0 e.src;
      Alcotest.(check int) "dst" 1 e.dst;
      Alcotest.(check (float 0.0)) "t_send" 10.0 e.t_send;
      Alcotest.(check (float 0.0)) "t_recv" 12.0 e.t_recv
  | l -> Alcotest.failf "expected one edge, got %d" (List.length l));
  let steps = Obs.Critical_path.walk ~spans ~edges in
  let first = List.hd steps and last = List.nth steps (List.length steps - 1) in
  Alcotest.(check int) "starts on rank 0" 0 first.span.rank;
  Alcotest.(check (float 0.0)) "starts at t=0" 0.0 first.span.t_start;
  Alcotest.(check string) "ends at last span" "compute" last.span.name;
  Alcotest.(check int) "ends on rank 1" 1 last.span.rank;
  Alcotest.(check bool) "crosses ranks via the message" true
    (List.exists (fun (s : Obs.Critical_path.step) -> s.via_message <> None)
       steps);
  let segs = Obs.Critical_path.summarize steps in
  Alcotest.(check bool) "compute dominates" true
    ((List.hd segs).name = "compute")

(* --- Profile report stability (golden) --- *)

let render_tables (p : Harness.Profile.t) =
  Fmt.str "%a\n%a\n%a" Harness.Table.render p.breakdown Harness.Table.render
    p.protocols Harness.Table.render p.path

let test_profile_stable () =
  let app = Apps.Sweep3d.params (Wgrid.Data_grid.cube 16) in
  let cfg =
    Wavefront_core.Plugplay.config ~cmp:(Wgrid.Cmp.v ~cx:2 ~cy:1)
      Loggp.Params.xt4 ~cores:4
  in
  let p1 = Harness.Profile.run cfg app in
  let p2 = Harness.Profile.run cfg app in
  Alcotest.(check string) "tables are deterministic" (render_tables p1)
    (render_tables p2);
  Alcotest.(check string) "trace JSON is deterministic"
    (Harness.Profile.trace_json p1)
    (Harness.Profile.trace_json p2);
  Alcotest.(check int) "no spans dropped" 0 p1.sim_dropped;
  (* The report carries the simulated elapsed time and the model terms. *)
  (match Obs.Metrics.find p1.metrics "sim.elapsed" with
  | Some (Obs.Metrics.Value v) ->
      Alcotest.(check (float 1e-9)) "sim.elapsed matches outcome"
        p1.sim.elapsed v
  | _ -> Alcotest.fail "sim.elapsed missing");
  (match Obs.Metrics.find p1.metrics "model.t_iteration" with
  | Some (Obs.Metrics.Value v) ->
      let expected = Wavefront_core.Plugplay.time_per_iteration app cfg in
      Alcotest.(check (float 1e-9)) "model.t_iteration" expected v
  | _ -> Alcotest.fail "model.t_iteration missing");
  (* And the trace JSON stays parseable. *)
  let doc = parse_json (Harness.Profile.trace_json p1) in
  match member "traceEvents" doc with
  | Some (List (_ :: _)) -> ()
  | _ -> Alcotest.fail "empty traceEvents"

(* --- Clocks and stepped-clock resilience --- *)

let test_clock_monotonic () =
  let t0 = Obs.Clock.monotonic () in
  let t1 = Obs.Clock.monotonic () in
  Alcotest.(check bool) "never steps backwards" true (t1 >= t0);
  Alcotest.(check bool) "wall is the monotonic clock" true
    (Obs.Clock.wall () >= t1);
  let now, advance = Obs.Clock.manual ~start:5.0 () in
  Alcotest.(check (float 0.0)) "manual start" 5.0 (now ());
  advance 2.5;
  Alcotest.(check (float 0.0)) "manual advance" 7.5 (now ());
  Alcotest.check_raises "negative advance rejected"
    (Invalid_argument "Clock.manual: cannot advance backwards") (fun () ->
      advance (-1.0))

let test_span_clamps_negative_duration () =
  let s = Obs.Span.v ~rank:0 ~start:10.0 ~dur:(-3.0) "stepped" in
  Alcotest.(check (float 0.0)) "duration clamped to zero" 0.0 s.dur;
  Alcotest.(check bool) "flagged" true (Obs.Span.clamped s);
  Alcotest.(check (option (float 0.0))) "raw value kept" (Some (-3.0))
    (Obs.Span.arg_float s "clamped_neg_dur");
  let ok = Obs.Span.v ~rank:0 ~start:10.0 ~dur:3.0 "fine" in
  Alcotest.(check bool) "normal spans unflagged" false (Obs.Span.clamped ok)

(* --- Overwrite_oldest wrap-around x tracer drop accounting --- *)

let test_tracer_overwrite_oldest () =
  let tr = Obs.Tracer.create ~capacity:4 ~policy:Obs.Ring.Overwrite_oldest () in
  for i = 0 to 9 do
    Obs.Tracer.record tr ~rank:0 ~start:(float_of_int i) ~dur:1.0
      (Printf.sprintf "s%d" i)
  done;
  Alcotest.(check int) "total counts every push" 10 (Obs.Tracer.total tr);
  Alcotest.(check int) "retained = capacity" 4 (Obs.Tracer.recorded tr);
  Alcotest.(check int) "dropped = evicted" 6 (Obs.Tracer.dropped tr);
  Alcotest.(check (list string)) "keeps the newest spans, in order"
    [ "s6"; "s7"; "s8"; "s9" ]
    (List.map (fun (s : Obs.Span.t) -> s.name) (Obs.Tracer.spans tr))

(* --- Critical-path truncation reporting --- *)

let test_critical_path_report () =
  let spans =
    [
      Obs.Span.v ~cat:"compute" ~rank:0 ~start:0.0 ~dur:4.0 "compute";
      Obs.Span.v ~cat:"compute" ~rank:0 ~start:4.0 ~dur:2.0 "compute";
    ]
  in
  let edges = Obs.Critical_path.edges_of_spans spans in
  let ok = Obs.Critical_path.report ~spans ~edges () in
  Alcotest.(check bool) "complete without drops" true ok.complete;
  Alcotest.(check bool) "no note" true
    (Obs.Critical_path.truncation_note ok = None);
  let cut = Obs.Critical_path.report ~dropped:5 ~spans ~edges () in
  Alcotest.(check bool) "incomplete when spans dropped" false cut.complete;
  Alcotest.(check int) "drop count carried" 5 cut.dropped;
  (match Obs.Critical_path.truncation_note cut with
  | Some note ->
      Alcotest.(check bool) "note mentions the count" true
        (String.length note > 0
        && String.exists (fun c -> c = '5') note)
  | None -> Alcotest.fail "expected a truncation note");
  Alcotest.(check int) "walk itself unchanged" (List.length ok.steps)
    (List.length cut.steps)

(* --- OpenMetrics exposition --- *)

let test_openmetrics_escaping () =
  Alcotest.(check string) "backslash, quote, newline"
    {|say \"hi\"\\\n done|}
    (Obs.Openmetrics.escape_label_value "say \"hi\"\\\n done");
  Alcotest.(check string) "clean value untouched" "batched"
    (Obs.Openmetrics.escape_label_value "batched")

let test_openmetrics_sanitize () =
  Alcotest.(check string) "dots become underscores" "sim_per_iteration"
    (Obs.Openmetrics.sanitize_name "sim.per_iteration");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Obs.Openmetrics.sanitize_name "9lives");
  Alcotest.(check string) "colon allowed" "ns:metric"
    (Obs.Openmetrics.sanitize_name "ns:metric");
  Alcotest.(check string) "empty name survives" "_"
    (Obs.Openmetrics.sanitize_name "")

let test_openmetrics_empty_registry () =
  Alcotest.(check string) "just the terminator" "# EOF\n"
    (Obs.Openmetrics.render (Obs.Metrics.create ()))

(* Counter and gauge families with base labels: the exact exposition is
   pinned, label escaping included. *)
let test_openmetrics_golden () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "sim.events" in
  Obs.Metrics.inc ~by:42 c;
  Obs.Metrics.set (Obs.Metrics.gauge m "gap") 1.5;
  Obs.Metrics.set (Obs.Metrics.gauge m "empty.gauge") Float.nan;
  let got =
    Obs.Openmetrics.render
      ~labels:[ ("subcommand", "simulate"); ("note", "a\"b") ]
      m
  in
  let expected =
    "# TYPE sim_events counter\n\
     sim_events_total{subcommand=\"simulate\",note=\"a\\\"b\"} 42.0\n\
     # TYPE gap gauge\n\
     gap{subcommand=\"simulate\",note=\"a\\\"b\"} 1.5\n\
     # TYPE empty_gauge gauge\n\
     empty_gauge{subcommand=\"simulate\",note=\"a\\\"b\"} NaN\n\
     # EOF\n"
  in
  Alcotest.(check string) "golden exposition" expected got

(* Histogram rendering: cumulative bucket counts are monotone, the
   mandatory +Inf bucket closes the series with the full observation
   count, and sum/count agree with the registry. *)
let test_openmetrics_histogram () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 2.0; 4.0; 250.0; 250.0 ];
  let text = Obs.Openmetrics.render m in
  let lines = String.split_on_char '\n' text in
  let bucket_counts =
    List.filter_map
      (fun l ->
        if String.length l > 11 && String.sub l 0 11 = "lat_bucket{" then
          match String.rindex_opt l ' ' with
          | Some i ->
              Some
                (float_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
          | None -> None
        else None)
      lines
  in
  Alcotest.(check bool) "at least two buckets" true
    (List.length bucket_counts >= 2);
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "cumulative counts monotone" true
    (monotone bucket_counts);
  Alcotest.(check bool) "has the +Inf bucket" true
    (List.exists
       (fun l ->
         String.length l > 11
         && String.sub l 0 11 = "lat_bucket{"
         && String.length l >= 14
         &&
         match String.index_opt l '}' with
         | Some _ ->
             (* the le label is the only label here *)
             String.sub l 11 (String.index l '}' - 11) = "le=\"+Inf\""
         | None -> false)
       lines);
  Alcotest.(check (float 0.0)) "+Inf carries every observation" 6.0
    (List.nth bucket_counts (List.length bucket_counts - 1));
  Alcotest.(check bool) "sum line present" true
    (List.exists
       (fun l -> String.length l >= 8 && String.sub l 0 8 = "lat_sum ")
       lines);
  Alcotest.(check bool) "count line correct" true
    (List.mem "lat_count 6.0" lines)

let suite =
  [
    ( "obs.ring",
      [
        Alcotest.test_case "drop newest" `Quick test_ring_drop_newest;
        Alcotest.test_case "overwrite oldest" `Quick test_ring_overwrite_oldest;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "histogram quantiles" `Quick
          test_histogram_quantiles;
        Alcotest.test_case "histogram edge cases" `Quick test_histogram_edges;
        Alcotest.test_case "registry" `Quick test_metrics_registry;
      ] );
    ( "obs.tracer",
      [
        Alcotest.test_case "bounding" `Quick test_tracer_bounding;
        Alcotest.test_case "merge" `Quick test_tracer_merge;
        Alcotest.test_case "span with manual clock" `Quick
          test_tracer_span_clock;
        Alcotest.test_case "overwrite-oldest drop accounting" `Quick
          test_tracer_overwrite_oldest;
      ] );
    ( "obs.clock",
      [
        Alcotest.test_case "monotonic and manual" `Quick test_clock_monotonic;
        Alcotest.test_case "negative duration clamped" `Quick
          test_span_clamps_negative_duration;
      ] );
    ( "obs.chrome_trace",
      [
        Alcotest.test_case "JSON round trip" `Quick
          test_chrome_trace_roundtrip;
      ] );
    ( "obs.critical_path",
      [
        Alcotest.test_case "walk" `Quick test_critical_path_walk;
        Alcotest.test_case "truncation report" `Quick test_critical_path_report;
      ] );
    ( "obs.profile",
      [ Alcotest.test_case "report stability" `Quick test_profile_stable ] );
    ( "obs.openmetrics",
      [
        Alcotest.test_case "label-value escaping" `Quick
          test_openmetrics_escaping;
        Alcotest.test_case "name sanitization" `Quick
          test_openmetrics_sanitize;
        Alcotest.test_case "empty registry is just # EOF" `Quick
          test_openmetrics_empty_registry;
        Alcotest.test_case "golden exposition" `Quick
          test_openmetrics_golden;
        Alcotest.test_case "histogram buckets cumulative to +Inf" `Quick
          test_openmetrics_histogram;
      ] );
  ]
