(* Tests for the continuous-benchmarking layer: robust statistics with a
   deterministic bootstrap, the versioned JSON report and its round trip,
   the runner's summaries, and the statistical regression gate. *)

let summary ~name ~median ~ci_low ~ci_high : Bench_stats.Runner.summary =
  {
    name;
    n = 20;
    batch = 8;
    median;
    mad = (ci_high -. ci_low) /. 4.0;
    mean = median;
    ci_low;
    ci_high;
  }

(* --- Stats --- *)

let test_stats_basics () =
  let xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "median odd" 3.0 (Bench_stats.Stats.median xs);
  Alcotest.(check (float 1e-9)) "median even" 2.5
    (Bench_stats.Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Bench_stats.Stats.mean xs);
  Alcotest.(check (float 1e-9)) "q0 = min" 1.0
    (Bench_stats.Stats.quantile xs 0.0);
  Alcotest.(check (float 1e-9)) "q1 = max" 5.0
    (Bench_stats.Stats.quantile xs 1.0);
  Alcotest.(check (float 1e-9)) "interpolated quartile" 2.0
    (Bench_stats.Stats.quantile xs 0.25);
  (* |x - 3| over 1..5 is [2; 1; 0; 1; 2], whose median is 1. *)
  Alcotest.(check (float 1e-9)) "mad" 1.0 (Bench_stats.Stats.mad xs);
  Alcotest.(check (float 1e-9)) "mad of constant data" 0.0
    (Bench_stats.Stats.mad [| 7.0; 7.0; 7.0 |]);
  Alcotest.check_raises "empty median"
    (Invalid_argument "Stats.quantile: empty") (fun () ->
      ignore (Bench_stats.Stats.median [||]))

let test_bootstrap_deterministic () =
  let xs = Array.init 40 (fun i -> float_of_int (i mod 7) +. 10.0) in
  let lo1, hi1 = Bench_stats.Stats.bootstrap_ci ~seed:42 xs in
  let lo2, hi2 = Bench_stats.Stats.bootstrap_ci ~seed:42 xs in
  Alcotest.(check (float 0.0)) "same seed, same low" lo1 lo2;
  Alcotest.(check (float 0.0)) "same seed, same high" hi1 hi2;
  Alcotest.(check bool) "interval is ordered" true (lo1 <= hi1);
  let m = Bench_stats.Stats.median xs in
  Alcotest.(check bool) "interval brackets the median" true
    (lo1 <= m && m <= hi1);
  let lo3, hi3 = Bench_stats.Stats.bootstrap_ci ~seed:43 xs in
  Alcotest.(check bool) "a different seed may move the interval" true
    (lo3 <= hi3);
  (* Constant data: the bootstrap collapses to a point. *)
  let lo, hi = Bench_stats.Stats.bootstrap_ci (Array.make 10 5.0) in
  Alcotest.(check (float 0.0)) "degenerate low" 5.0 lo;
  Alcotest.(check (float 0.0)) "degenerate high" 5.0 hi

(* --- Runner --- *)

let test_runner_measure () =
  let calls = ref 0 in
  let s =
    Bench_stats.Runner.measure ~warmup:1 ~repeats:5 ~min_batch_us:50.0
      ~name:"work" (fun () ->
        incr calls;
        ignore (Sys.opaque_identity (sin 1.0)))
  in
  Alcotest.(check string) "name" "work" s.name;
  Alcotest.(check int) "repetitions" 5 s.n;
  Alcotest.(check bool) "function actually ran" true (!calls > 0);
  Alcotest.(check bool) "batch calibrated" true (s.batch >= 1);
  Alcotest.(check bool) "median positive" true (s.median >= 0.0);
  Alcotest.(check bool) "CI ordered around the median" true
    (s.ci_low <= s.median && s.median <= s.ci_high);
  Alcotest.check_raises "too few repetitions"
    (Invalid_argument "Runner.measure: repeats >= 3") (fun () ->
      ignore (Bench_stats.Runner.measure ~repeats:2 ~name:"x" (fun () -> ())))

(* --- Report round trip --- *)

let test_report_roundtrip () =
  let results =
    [
      summary ~name:"a" ~median:10.0 ~ci_low:9.0 ~ci_high:11.0;
      summary ~name:"b" ~median:0.5 ~ci_low:0.4 ~ci_high:0.6;
    ]
  in
  let r =
    Bench_stats.Report.v ~label:"test" ~created_at:1234.5
      ~meta:[ ("host", "ci"); ("commit", "deadbeef") ]
      results
  in
  let r' = Bench_stats.Report.of_json (Bench_stats.Report.to_json r) in
  Alcotest.(check string) "label" r.label r'.label;
  Alcotest.(check (float 1e-9)) "created_at" r.created_at r'.created_at;
  Alcotest.(check (list (pair string string))) "meta" r.meta r'.meta;
  Alcotest.(check int) "result count" 2 (List.length r'.results);
  List.iter2
    (fun (a : Bench_stats.Runner.summary) (b : Bench_stats.Runner.summary) ->
      Alcotest.(check string) "name" a.name b.name;
      Alcotest.(check int) "n" a.n b.n;
      Alcotest.(check int) "batch" a.batch b.batch;
      Alcotest.(check (float 1e-9)) "median" a.median b.median;
      Alcotest.(check (float 1e-9)) "mad" a.mad b.mad;
      Alcotest.(check (float 1e-9)) "ci_low" a.ci_low b.ci_low;
      Alcotest.(check (float 1e-9)) "ci_high" a.ci_high b.ci_high)
    r.results r'.results

let test_report_schema_gate () =
  let bogus = {|{"schema": "wavefront-bench/v0", "label": "x",
                 "created_at": 0, "meta": {}, "results": []}|} in
  (match Bench_stats.Report.of_json bogus with
  | exception Bench_stats.Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "schema mismatch must be rejected");
  match Bench_stats.Report.of_json "not json at all" with
  | exception Bench_stats.Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "malformed input must be rejected"

(* --- The regression gate --- *)

let report results = Bench_stats.Report.v ~created_at:0.0 results

let find cmp name =
  match
    List.find_opt
      (fun (e : Bench_stats.Compare.entry) -> e.name = name)
      cmp.Bench_stats.Compare.entries
  with
  | Some e -> e
  | None -> Alcotest.failf "no entry for %s" name

let test_compare_verdicts () =
  let baseline =
    report
      [
        summary ~name:"slowed" ~median:10.0 ~ci_low:9.5 ~ci_high:10.5;
        summary ~name:"sped-up" ~median:10.0 ~ci_low:9.5 ~ci_high:10.5;
        summary ~name:"noisy" ~median:10.0 ~ci_low:5.0 ~ci_high:15.0;
        summary ~name:"tiny-shift" ~median:10.0 ~ci_low:9.99 ~ci_high:10.01;
        summary ~name:"gone" ~median:1.0 ~ci_low:0.9 ~ci_high:1.1;
      ]
  in
  let current =
    report
      [
        (* An artificially slowed run: 2x the baseline, disjoint CIs. *)
        summary ~name:"slowed" ~median:20.0 ~ci_low:19.0 ~ci_high:21.0;
        summary ~name:"sped-up" ~median:5.0 ~ci_low:4.8 ~ci_high:5.2;
        (* Also 2x, but the intervals overlap: statistically unresolved. *)
        summary ~name:"noisy" ~median:14.0 ~ci_low:8.0 ~ci_high:20.0;
        (* Disjoint CIs but the shift is under the 5% floor. *)
        summary ~name:"tiny-shift" ~median:10.2 ~ci_low:10.19
          ~ci_high:10.21;
        summary ~name:"new" ~median:3.0 ~ci_low:2.9 ~ci_high:3.1;
      ]
  in
  let cmp = Bench_stats.Compare.compare ~baseline ~current () in
  let verdict name = (find cmp name).verdict in
  Alcotest.(check string) "slowed run is flagged" "REGRESSION"
    (Bench_stats.Compare.verdict_name (verdict "slowed"));
  Alcotest.(check (float 1e-9)) "with its delta" 100.0
    (find cmp "slowed").delta_pct;
  Alcotest.(check string) "faster run is an improvement" "improvement"
    (Bench_stats.Compare.verdict_name (verdict "sped-up"));
  Alcotest.(check string) "overlapping CIs stay unchanged" "unchanged"
    (Bench_stats.Compare.verdict_name (verdict "noisy"));
  Alcotest.(check string) "sub-threshold shift stays unchanged" "unchanged"
    (Bench_stats.Compare.verdict_name (verdict "tiny-shift"));
  Alcotest.(check string) "new case" "added"
    (Bench_stats.Compare.verdict_name (verdict "new"));
  Alcotest.(check string) "dropped case" "removed"
    (Bench_stats.Compare.verdict_name (verdict "gone"));
  (match Bench_stats.Compare.regressions cmp with
  | [ e ] -> Alcotest.(check string) "only the slowed case" "slowed" e.name
  | l -> Alcotest.failf "expected one regression, got %d" (List.length l));
  (* A stricter threshold turns the sub-5% shift into a regression. *)
  let strict =
    Bench_stats.Compare.compare ~min_delta_pct:1.0 ~baseline ~current ()
  in
  Alcotest.(check string) "threshold is adjustable" "REGRESSION"
    (Bench_stats.Compare.verdict_name (find strict "tiny-shift").verdict)

let test_compare_self_is_clean () =
  let r =
    report [ summary ~name:"a" ~median:10.0 ~ci_low:9.0 ~ci_high:11.0 ]
  in
  let cmp = Bench_stats.Compare.compare ~baseline:r ~current:r () in
  Alcotest.(check int) "no regressions against itself" 0
    (List.length (Bench_stats.Compare.regressions cmp));
  Alcotest.(check string) "unchanged" "unchanged"
    (Bench_stats.Compare.verdict_name (find cmp "a").verdict)

let suite =
  [
    ( "bench.stats",
      [
        Alcotest.test_case "median / quantile / mad" `Quick test_stats_basics;
        Alcotest.test_case "bootstrap is deterministic" `Quick
          test_bootstrap_deterministic;
      ] );
    ( "bench.runner",
      [ Alcotest.test_case "measure" `Quick test_runner_measure ] );
    ( "bench.report",
      [
        Alcotest.test_case "JSON round trip" `Quick test_report_roundtrip;
        Alcotest.test_case "schema gate" `Quick test_report_schema_gate;
      ] );
    ( "bench.compare",
      [
        Alcotest.test_case "verdicts" `Quick test_compare_verdicts;
        Alcotest.test_case "self comparison is clean" `Quick
          test_compare_self_is_clean;
      ] );
  ]
